// Shared helpers for the figure-reproduction bench binaries: the four
// paper workloads (synthetic+logistic, MNIST-sim+MLP, FMNIST-sim+CNN,
// CIFAR10-sim+CNN), scale handling (--full for paper-scale parameters),
// and output conventions.
#ifndef COMFEDSV_BENCH_BENCH_COMMON_H_
#define COMFEDSV_BENCH_BENCH_COMMON_H_

#include <cmath>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "core/comfedsv_api.h"

namespace comfedsv {
namespace bench {

/// The four dataset/model pairs of the paper's evaluation (Sec. VII-A).
enum class PaperDataset { kSynthetic, kMnist, kFashionMnist, kCifar10 };

inline const std::vector<PaperDataset>& AllPaperDatasets() {
  static const std::vector<PaperDataset> kAll = {
      PaperDataset::kSynthetic, PaperDataset::kMnist,
      PaperDataset::kFashionMnist, PaperDataset::kCifar10};
  return kAll;
}

inline std::string DatasetName(PaperDataset d) {
  switch (d) {
    case PaperDataset::kSynthetic:
      return "synthetic";
    case PaperDataset::kMnist:
      return "mnist-sim";
    case PaperDataset::kFashionMnist:
      return "fmnist-sim";
    case PaperDataset::kCifar10:
      return "cifar10-sim";
  }
  return "?";
}

/// A ready-to-train federated workload: per-client data, central test
/// set, and the model the paper pairs with the dataset.
struct Workload {
  std::vector<Dataset> clients;
  Dataset test;
  std::unique_ptr<Model> model;
  std::string dataset_name;
  std::string model_name;
};

struct WorkloadOptions {
  int num_clients = 10;
  int samples_per_client = 120;
  int test_samples = 150;
  bool noniid = true;  ///< label shards for image data, alpha=beta=1 synth
  uint64_t seed = 0;
};

/// Builds one of the paper's four workloads.
inline Workload MakeWorkload(PaperDataset which,
                             const WorkloadOptions& opt) {
  Workload w;
  w.dataset_name = DatasetName(which);
  Rng rng(opt.seed ^ 0xBE4C4ULL);

  if (which == PaperDataset::kSynthetic) {
    SyntheticConfig cfg;
    cfg.num_clients = opt.num_clients;
    // Generate extra samples per client and pool a held-out fraction as
    // the central test set (the FedProx protocol).
    const int holdout =
        std::max(1, opt.test_samples / opt.num_clients + 1);
    cfg.samples_per_client = opt.samples_per_client + holdout;
    cfg.dim = 60;
    cfg.num_classes = 10;
    cfg.iid = !opt.noniid;
    cfg.alpha = opt.noniid ? 1.0 : 0.0;
    cfg.beta = opt.noniid ? 1.0 : 0.0;
    cfg.seed = opt.seed;
    std::vector<Dataset> raw = GenerateSyntheticFederated(cfg);
    std::vector<Dataset> tests;
    for (Dataset& d : raw) {
      auto [train, test] =
          d.RandomSplit(static_cast<double>(holdout) /
                            cfg.samples_per_client,
                        &rng);
      w.clients.push_back(std::move(train));
      tests.push_back(std::move(test));
    }
    std::vector<const Dataset*> parts;
    for (const Dataset& t : tests) parts.push_back(&t);
    w.test = Dataset::Concat(parts);
    w.model = std::make_unique<LogisticRegression>(60, 10, 1e-3);
  } else {
    SimulatedImageConfig icfg;
    icfg.family = which == PaperDataset::kMnist ? ImageFamily::kMnist
                  : which == PaperDataset::kFashionMnist
                      ? ImageFamily::kFashionMnist
                      : ImageFamily::kCifar10;
    icfg.image_side = 8;
    icfg.num_samples = opt.num_clients * opt.samples_per_client;
    icfg.seed = opt.seed;
    Dataset pool = GenerateSimulatedImages(icfg);
    icfg.num_samples = opt.test_samples;
    icfg.seed = opt.seed ^ 0x7E57ULL;  // fresh draw, same distribution
    w.test = GenerateSimulatedImages(icfg);

    if (opt.noniid) {
      w.clients = PartitionByLabelShards(pool, opt.num_clients, 2, &rng);
    } else {
      w.clients = PartitionIid(pool, opt.num_clients, &rng);
    }

    if (which == PaperDataset::kMnist) {
      w.model = std::make_unique<Mlp>(
          std::vector<size_t>{pool.dim(), 32, 10}, 1e-4);
    } else {
      CnnConfig ccfg;
      ccfg.image_side = 8;
      ccfg.channels = which == PaperDataset::kCifar10 ? 3 : 1;
      ccfg.num_filters = 6;
      ccfg.num_classes = 10;
      ccfg.l2_penalty = 1e-4;
      w.model = std::make_unique<Cnn>(ccfg);
    }
  }
  w.model_name = w.model->name();
  return w;
}

/// True if the binary was invoked with --full (paper-scale parameters).
inline bool FullScale(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--full") == 0) return true;
  }
  return false;
}

/// Prints the standard bench header: what the figure shows and at what
/// scale this run reproduces it.
inline void PrintHeader(const std::string& figure,
                        const std::string& description, bool full_scale) {
  std::printf("== %s ==\n%s\nscale: %s (pass --full for paper-scale)\n\n",
              figure.c_str(), description.c_str(),
              full_scale ? "paper (--full)" : "reduced default");
}

/// Value of an integer flag `--<name>=<v>`, or `fallback` when absent.
inline int IntFlag(int argc, char** argv, const std::string& name,
                   int fallback) {
  const std::string prefix = "--" + name + "=";
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], prefix.c_str(), prefix.size()) == 0) {
      return std::atoi(argv[i] + prefix.size());
    }
  }
  return fallback;
}

/// The thread count benches compare against single-threaded runs:
/// --threads=K if given, else 4 (the acceptance point of the perf
/// trajectory; oversubscription on smaller machines is harmless).
inline int BenchThreads(int argc, char** argv) {
  return IntFlag(argc, argv, "threads", 4);
}

/// Collects flat records of numeric/string fields and writes
/// machine-readable `BENCH_<name>.json` next to the binary's cwd — the
/// perf-trajectory artifact consumed by tooling (one file per bench).
class BenchJsonWriter {
 public:
  explicit BenchJsonWriter(std::string name) : name_(std::move(name)) {
    Meta("bench", name_);
    Meta("hardware_concurrency",
         static_cast<double>(std::thread::hardware_concurrency()));
  }

  void Meta(const std::string& key, const std::string& value) {
    meta_.emplace_back(key, Quote(value));
  }
  void Meta(const std::string& key, double value) {
    meta_.emplace_back(key, Num(value));
  }

  /// Starts a new record; subsequent Field() calls attach to it.
  void BeginRecord() { records_.emplace_back(); }
  void Field(const std::string& key, double value) {
    records_.back().emplace_back(key, Num(value));
  }
  void Field(const std::string& key, const std::string& value) {
    records_.back().emplace_back(key, Quote(value));
  }
  void Field(const std::string& key, bool value) {
    records_.back().emplace_back(key, value ? "true" : "false");
  }
  // Without this overload a string literal would convert to bool above.
  void Field(const std::string& key, const char* value) {
    records_.back().emplace_back(key, Quote(value));
  }

  std::string ToJson() const {
    std::ostringstream out;
    out << "{\n";
    for (const auto& [k, v] : meta_) {
      out << "  " << Quote(k) << ": " << v << ",\n";
    }
    out << "  \"results\": [";
    for (size_t r = 0; r < records_.size(); ++r) {
      out << (r == 0 ? "\n" : ",\n") << "    {";
      const auto& fields = records_[r];
      for (size_t f = 0; f < fields.size(); ++f) {
        if (f > 0) out << ", ";
        out << Quote(fields[f].first) << ": " << fields[f].second;
      }
      out << "}";
    }
    out << "\n  ]\n}\n";
    return out.str();
  }

  /// Writes BENCH_<name>.json; returns true on success and logs the path.
  bool WriteFile() const {
    const std::string path = "BENCH_" + name_ + ".json";
    std::ofstream file(path);
    if (!file) {
      std::fprintf(stderr, "failed to write %s\n", path.c_str());
      return false;
    }
    file << ToJson();
    std::printf("wrote %s\n", path.c_str());
    return true;
  }

 private:
  static std::string Num(double v) {
    if (!std::isfinite(v)) return "null";  // JSON has no inf/nan tokens
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.17g", v);
    return buf;
  }
  static std::string Quote(const std::string& s) {
    std::string out = "\"";
    for (char c : s) {
      if (c == '"' || c == '\\') out += '\\';
      out += c;
    }
    out += '"';
    return out;
  }

  std::string name_;
  std::vector<std::pair<std::string, std::string>> meta_;
  std::vector<std::vector<std::pair<std::string, std::string>>> records_;
};

}  // namespace bench
}  // namespace comfedsv

#endif  // COMFEDSV_BENCH_BENCH_COMMON_H_
