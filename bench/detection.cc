// Adversarial-client detection harness: can FedSV / ComFedSV valuations
// *find* the attackers? For each (attack kind, severity) cell, a small
// federated run is repeated over several seeds with two adversarial
// clients injected; every client is scored by its negated valuation
// (lower value => more suspicious) and the pooled scores are reduced to
// a Mann-Whitney ROC/AUC against the ground-truth adversary labels.
// AUC 1.0 means the valuation ranks every adversary below every honest
// client; 0.5 is chance.
//
// Three detectors share each training trajectory where possible:
//   * fedsv        — per-round exact restricted Shapley (Wang et al.)
//   * comfedsv     — completed-matrix Shapley, kFull observation
//   * comfedsv-spl — completed-matrix Shapley, kSampled observation
//
// Each scenario also reports the fairness shape of the valuation vector
// (Jain's index, coefficient of variation, worst-case gap — see
// src/metrics/fairness.h): a detectable attack should *lower* Jain and
// raise the spread relative to the honest baseline.
//
// BENCH_detection.json sections:
//   * "roc"      — one record per (attack, severity, detector) with the
//                  pooled AUC and per-repetition quarantine counts
//   * "fairness" — one record per (attack, severity, detector) plus the
//                  honest baseline rows
//   * "auc_gate" — per attack at max severity: best-detector AUC and a
//                  pass flag (AUC >= 0.9); a final summary record
//                  asserting >= 2 attack kinds pass. The binary aborts
//                  if the gate fails, so CI cannot silently regress
//                  detection power.
#include <algorithm>
#include <map>
#include <string>
#include <vector>

#include "bench_common.h"

namespace comfedsv {
namespace {

constexpr int kNumClients = 8;
// Two adversaries, deliberately not adjacent and not client 0 (client 0
// anchors the label-shard ordering in other benches; mid-range ids keep
// the cell generic).
const std::vector<int> kAdversaries = {1, 5};
const std::vector<const char*> kAttacks = {"free_rider", "grad_scaler",
                                           "label_flip", "nan_corrupter"};
const std::vector<double> kSeverities = {0.25, 0.5, 1.0};

/// Maps the normalized severity in (0, 1] onto each attack's natural
/// knob. Severity 1.0 is the most detectable variant of the attack,
/// lower severities are progressively stealthier.
AdversarySpec MakeSpec(const std::string& attack, double severity,
                       int client) {
  AdversarySpec spec;
  spec.client = client;
  if (attack == "free_rider") {
    // The pure free-rider echoes the global model; lower severity hides
    // it behind Gaussian camouflage noise.
    spec.kind = AdversaryKind::kFreeRider;
    spec.intensity = 1.0;
    spec.camouflage = 0.05 * (1.0 - severity);
  } else if (attack == "grad_scaler") {
    // Boosting attack: scale the honest delta by up to 10x.
    spec.kind = AdversaryKind::kGradientScaler;
    spec.intensity = 1.0 + 9.0 * severity;
  } else if (attack == "label_flip") {
    // Up to half the labels flipped (beyond 0.5 the class structure
    // inverts and the attack starts teaching a consistent wrong map).
    spec.kind = AdversaryKind::kLabelFlipper;
    spec.intensity = 0.5 * severity;
  } else {
    // Malformed updates: a severity-sized prefix of NaN/Inf. The
    // aggregation guard sanitizes these, so what detection sees is the
    // guard's zero-information substitute.
    spec.kind = AdversaryKind::kNanCorrupter;
    spec.intensity = severity;
  }
  return spec;
}

struct CellRun {
  Vector fedsv;
  Vector comfedsv_full;
  Vector comfedsv_sampled;
  int64_t rejected_updates = 0;   ///< guard rejections over the run
  int64_t quarantine_drops = 0;   ///< preemptive quarantine exclusions
};

/// One federated run of the cell. `attack` == nullptr is the honest
/// baseline. The training trajectory is shared by the fedsv and
/// comfedsv-full detectors; the sampled detector re-trains the same
/// deterministic trajectory with its own observation pattern.
CellRun RunCell(const bench::Workload& w, const char* attack,
                double severity, int rep) {
  FedAvgConfig fed_cfg;
  fed_cfg.num_rounds = 6;
  fed_cfg.local_steps = 3;
  fed_cfg.lr = LearningRateSchedule::Constant(0.3);
  fed_cfg.selector = SelectorKind::kUniform;
  fed_cfg.clients_per_round = kNumClients;  // full participation
  fed_cfg.select_all_first_round = true;    // Assumption 1 (kFull)
  fed_cfg.seed = 9100 + 17 * static_cast<uint64_t>(rep);
  // Guard defaults: reject_nonfinite on, quarantine after 3 strikes —
  // the nan_corrupter cell exercises the degraded path end to end.
  fed_cfg.guard.quarantine_after = 3;
  if (attack != nullptr) {
    for (int client : kAdversaries) {
      fed_cfg.adversary.specs.push_back(
          MakeSpec(attack, severity, client));
    }
    fed_cfg.adversary.seed = fed_cfg.seed ^ 0xAD5EEDULL;
  }

  ValuationRequest request;
  request.compute_fedsv = true;
  request.fedsv.mode = FedSvConfig::Mode::kExact;
  request.fedsv.seed = fed_cfg.seed + 1;
  request.compute_comfedsv = true;
  request.comfedsv.mode = ComFedSvConfig::Mode::kFull;
  request.comfedsv.completion.rank = 3;
  request.comfedsv.completion.lambda = 1e-4;
  request.comfedsv.completion.temporal_smoothing = 0.1;
  request.comfedsv.completion.max_iters = 120;
  request.comfedsv.completion.seed = fed_cfg.seed + 2;
  request.comfedsv.seed = fed_cfg.seed + 3;

  Result<ValuationOutcome> full = RunValuation(
      *w.model, w.clients, w.test, fed_cfg, request);
  COMFEDSV_CHECK_OK(full.status());

  request.compute_fedsv = false;
  request.comfedsv.mode = ComFedSvConfig::Mode::kSampled;
  request.comfedsv.num_permutations = 4 * kNumClients;
  Result<ValuationOutcome> sampled = RunValuation(
      *w.model, w.clients, w.test, fed_cfg, request);
  COMFEDSV_CHECK_OK(sampled.status());

  CellRun out;
  out.fedsv = *full.value().fedsv_values;
  out.comfedsv_full = full.value().comfedsv->values;
  out.comfedsv_sampled = sampled.value().comfedsv->values;
  const QuarantineReport& q = full.value().training.quarantine;
  for (int64_t r : q.rejected) out.rejected_updates += r;
  for (int64_t d : q.quarantine_drops) out.quarantine_drops += d;
  return out;
}

/// Mann-Whitney ROC/AUC of `scores` against binary `labels`, ties
/// resolved by average ranks (so a constant score vector yields exactly
/// 0.5, not an ordering artifact).
double RocAuc(const std::vector<double>& scores,
              const std::vector<int>& labels) {
  const std::vector<double> ranks = AverageRanks(scores);
  double rank_sum = 0.0;
  int positives = 0;
  for (size_t i = 0; i < scores.size(); ++i) {
    if (labels[i] == 1) {
      rank_sum += ranks[i];
      ++positives;
    }
  }
  const int negatives = static_cast<int>(scores.size()) - positives;
  COMFEDSV_CHECK(positives > 0 && negatives > 0);
  const double u = rank_sum - 0.5 * positives * (positives + 1.0);
  return u / (static_cast<double>(positives) * negatives);
}

struct DetectorPool {
  std::vector<double> scores;  ///< negated valuations, pooled over reps
  std::vector<int> labels;
  double jain_sum = 0.0;
  double cov_sum = 0.0;
  double gap_sum = 0.0;
  int fairness_runs = 0;

  void Absorb(const Vector& values) {
    for (int i = 0; i < kNumClients; ++i) {
      scores.push_back(-values[i]);
      labels.push_back(std::count(kAdversaries.begin(),
                                  kAdversaries.end(), i) > 0
                           ? 1
                           : 0);
    }
    const Result<FairnessReport> fairness = ComputeFairness(values);
    COMFEDSV_CHECK_OK(fairness.status());
    jain_sum += fairness.value().jain_index;
    // A degenerate zero-mean vector reports cov = +inf; clamp into the
    // JSON-representable range rather than dropping the record.
    cov_sum += std::min(fairness.value().coefficient_of_variation, 1e6);
    gap_sum += fairness.value().worst_case_gap;
    ++fairness_runs;
  }
};

int DetectionMain(int argc, char** argv) {
  const bool full = bench::FullScale(argc, argv);
  bench::PrintHeader(
      "Adversary detection",
      "ROC/AUC of FedSV vs ComFedSV valuations at flagging injected\n"
      "adversarial clients, per attack kind and severity.",
      full);
  const int repetitions = full ? 8 : 4;

  bench::WorkloadOptions opt;
  opt.num_clients = kNumClients;
  opt.samples_per_client = full ? 80 : 40;
  opt.test_samples = full ? 240 : 120;
  opt.noniid = false;  // IID partition isolates the *attack* signal
  opt.seed = 0xDE7EC7;
  const bench::Workload w =
      bench::MakeWorkload(bench::PaperDataset::kSynthetic, opt);

  bench::BenchJsonWriter json("detection");
  json.Meta("num_clients", static_cast<double>(kNumClients));
  json.Meta("num_adversaries", static_cast<double>(kAdversaries.size()));
  json.Meta("repetitions", static_cast<double>(repetitions));
  json.Meta("dataset", w.dataset_name);
  json.Meta("model", w.model_name);

  const std::vector<const char*> detectors = {"fedsv", "comfedsv",
                                              "comfedsv-spl"};

  // Honest baseline fairness rows (no ROC — there are no positives).
  {
    std::map<std::string, DetectorPool> pools;
    for (int rep = 0; rep < repetitions; ++rep) {
      const CellRun run = RunCell(w, nullptr, 0.0, rep);
      pools["fedsv"].Absorb(run.fedsv);
      pools["comfedsv"].Absorb(run.comfedsv_full);
      pools["comfedsv-spl"].Absorb(run.comfedsv_sampled);
    }
    for (const char* detector : detectors) {
      const DetectorPool& pool = pools[detector];
      json.BeginRecord();
      json.Field("section", "fairness");
      json.Field("attack", "honest");
      json.Field("severity", 0.0);
      json.Field("detector", detector);
      json.Field("jain_index", pool.jain_sum / pool.fairness_runs);
      json.Field("coefficient_of_variation",
                 pool.cov_sum / pool.fairness_runs);
      json.Field("worst_case_gap", pool.gap_sum / pool.fairness_runs);
    }
    std::printf("honest baseline: jain fedsv %.3f  comfedsv %.3f\n\n",
                pools["fedsv"].jain_sum / repetitions,
                pools["comfedsv"].jain_sum / repetitions);
  }

  // attack -> detector -> AUC at the highest severity.
  std::map<std::string, std::map<std::string, double>> max_severity_auc;

  std::printf("%-14s %8s %10s %10s %12s %10s\n", "attack", "severity",
              "fedsv", "comfedsv", "comfedsv-spl", "rejected");
  for (const char* attack : kAttacks) {
    for (double severity : kSeverities) {
      std::map<std::string, DetectorPool> pools;
      int64_t rejected = 0;
      int64_t drops = 0;
      for (int rep = 0; rep < repetitions; ++rep) {
        const CellRun run = RunCell(w, attack, severity, rep);
        pools["fedsv"].Absorb(run.fedsv);
        pools["comfedsv"].Absorb(run.comfedsv_full);
        pools["comfedsv-spl"].Absorb(run.comfedsv_sampled);
        rejected += run.rejected_updates;
        drops += run.quarantine_drops;
      }
      std::map<std::string, double> auc;
      for (const char* detector : detectors) {
        const DetectorPool& pool = pools[detector];
        auc[detector] = RocAuc(pool.scores, pool.labels);

        json.BeginRecord();
        json.Field("section", "roc");
        json.Field("attack", attack);
        json.Field("severity", severity);
        json.Field("detector", detector);
        json.Field("auc", auc[detector]);
        json.Field("pooled_points",
                   static_cast<double>(pool.scores.size()));
        json.Field("rejected_updates", static_cast<double>(rejected));
        json.Field("quarantine_drops", static_cast<double>(drops));

        json.BeginRecord();
        json.Field("section", "fairness");
        json.Field("attack", attack);
        json.Field("severity", severity);
        json.Field("detector", detector);
        json.Field("jain_index", pool.jain_sum / pool.fairness_runs);
        json.Field("coefficient_of_variation",
                   pool.cov_sum / pool.fairness_runs);
        json.Field("worst_case_gap", pool.gap_sum / pool.fairness_runs);
      }
      if (severity == kSeverities.back()) {
        max_severity_auc[attack] = auc;
      }
      std::printf("%-14s %8.2f %10.3f %10.3f %12.3f %10lld\n", attack,
                  severity, auc["fedsv"], auc["comfedsv"],
                  auc["comfedsv-spl"], static_cast<long long>(rejected));
    }
  }

  // The acceptance gate: at the highest severity, at least two attack
  // kinds must be detected with AUC >= 0.9 by the best detector.
  int attacks_passing = 0;
  std::printf("\nauc gate (best detector at severity %.2f):\n",
              kSeverities.back());
  for (const char* attack : kAttacks) {
    double best_auc = 0.0;
    std::string best_detector;
    for (const auto& [detector, auc] : max_severity_auc[attack]) {
      if (auc > best_auc) {
        best_auc = auc;
        best_detector = detector;
      }
    }
    const bool pass = best_auc >= 0.9;
    attacks_passing += pass ? 1 : 0;
    json.BeginRecord();
    json.Field("section", "auc_gate");
    json.Field("attack", attack);
    json.Field("severity", kSeverities.back());
    json.Field("best_detector", best_detector);
    json.Field("best_auc", best_auc);
    json.Field("pass", pass);
    std::printf("  %-14s best=%s auc=%.3f  %s\n", attack,
                best_detector.c_str(), best_auc,
                pass ? "PASS" : "fail");
  }
  json.BeginRecord();
  json.Field("section", "auc_gate");
  json.Field("attack", "summary");
  json.Field("attacks_passing", static_cast<double>(attacks_passing));
  json.Field("required", 2.0);
  json.Field("pass", attacks_passing >= 2);
  std::printf("attacks passing: %d (need >= 2)\n", attacks_passing);

  if (!json.WriteFile()) return 1;
  // Hard gate: regressions in detection power fail the bench run.
  COMFEDSV_CHECK(attacks_passing >= 2);
  return 0;
}

}  // namespace
}  // namespace comfedsv

int main(int argc, char** argv) {
  return comfedsv::DetectionMain(argc, argv);
}
