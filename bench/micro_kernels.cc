// Google-benchmark microbenchmarks for the kernels the experiments
// stress: dense linear algebra, model gradients, coalition utilities,
// Shapley enumeration, and completion sweeps.
//
// After the registered benchmarks run, main() times the two paper hot
// paths — Monte-Carlo permutation sampling and the ALS completion solve —
// at 1 thread and at --threads (default 4) on a shared ExecutionContext,
// and writes machine-readable BENCH_micro_kernels.json.
#include <benchmark/benchmark.h>

#include <cstdlib>

#include "bench_common.h"

namespace comfedsv {
namespace {

Matrix RandomMatrix(size_t rows, size_t cols, uint64_t seed) {
  Rng rng(seed);
  Matrix m(rows, cols);
  for (size_t i = 0; i < rows; ++i) {
    for (size_t j = 0; j < cols; ++j) m(i, j) = rng.NextGaussian();
  }
  return m;
}

Dataset RandomData(int samples, int dim, int classes, uint64_t seed) {
  Rng rng(seed);
  Matrix feats(samples, dim);
  std::vector<int> labels(samples);
  for (int i = 0; i < samples; ++i) {
    for (int j = 0; j < dim; ++j) feats(i, j) = rng.NextGaussian();
    labels[i] = static_cast<int>(rng.NextUint64(classes));
  }
  return Dataset(std::move(feats), std::move(labels), classes);
}

void BM_MatrixMultiply(benchmark::State& state) {
  const size_t n = state.range(0);
  Matrix a = RandomMatrix(n, n, 1);
  Matrix b = RandomMatrix(n, n, 2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(Matrix::Multiply(a, b));
  }
  state.SetComplexityN(n);
}
BENCHMARK(BM_MatrixMultiply)->Arg(32)->Arg(64)->Arg(128)->Complexity();

void BM_GramRows(benchmark::State& state) {
  Matrix a = RandomMatrix(state.range(0), 1024, 3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(a.GramRows());
  }
}
BENCHMARK(BM_GramRows)->Arg(20)->Arg(50)->Arg(100);

void BM_SingularValues(benchmark::State& state) {
  Matrix a = RandomMatrix(state.range(0), 1024, 4);
  for (auto _ : state) {
    benchmark::DoNotOptimize(SingularValues(a));
  }
}
BENCHMARK(BM_SingularValues)->Arg(20)->Arg(50)->Arg(100);

void BM_LogisticGradient(benchmark::State& state) {
  const int dim = 64;
  LogisticRegression model(dim, 10, 1e-3);
  Dataset data = RandomData(state.range(0), dim, 10, 5);
  Rng rng(6);
  Vector params;
  model.InitializeParams(&params, &rng);
  Vector grad;
  for (auto _ : state) {
    benchmark::DoNotOptimize(model.LossAndGradient(params, data, &grad));
  }
}
BENCHMARK(BM_LogisticGradient)->Arg(100)->Arg(400);

void BM_MlpGradient(benchmark::State& state) {
  Mlp model({64, 32, 10});
  Dataset data = RandomData(state.range(0), 64, 10, 7);
  Rng rng(8);
  Vector params;
  model.InitializeParams(&params, &rng);
  Vector grad;
  for (auto _ : state) {
    benchmark::DoNotOptimize(model.LossAndGradient(params, data, &grad));
  }
}
BENCHMARK(BM_MlpGradient)->Arg(100)->Arg(400);

void BM_CnnGradient(benchmark::State& state) {
  CnnConfig cfg;
  cfg.image_side = 8;
  cfg.channels = 3;
  cfg.num_filters = 6;
  Cnn model(cfg);
  Dataset data = RandomData(state.range(0), 192, 10, 9);
  Rng rng(10);
  Vector params;
  model.InitializeParams(&params, &rng);
  Vector grad;
  for (auto _ : state) {
    benchmark::DoNotOptimize(model.LossAndGradient(params, data, &grad));
  }
}
BENCHMARK(BM_CnnGradient)->Arg(50)->Arg(200);

void BM_MatrixMultiplyTransposedB(benchmark::State& state) {
  const size_t n = state.range(0);
  Matrix a = RandomMatrix(n, 512, 41);
  Matrix b = RandomMatrix(n, 512, 42);
  for (auto _ : state) {
    benchmark::DoNotOptimize(Matrix::MultiplyTransposedB(a, b));
  }
}
BENCHMARK(BM_MatrixMultiplyTransposedB)->Arg(32)->Arg(128);

void BM_PackRowSlices(benchmark::State& state) {
  const size_t batch = state.range(0);
  Matrix params = RandomMatrix(batch, 64 * 10 + 10, 43);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        Matrix::PackRowSlices(params, 0, batch, 0, 10, 64));
  }
}
BENCHMARK(BM_PackRowSlices)->Arg(8)->Arg(64);

Matrix StackedParams(const Model& model, int batch, uint64_t seed) {
  Rng rng(seed);
  Matrix rows(batch, model.num_params());
  Vector params;
  for (int b = 0; b < batch; ++b) {
    model.InitializeParams(&params, &rng);
    rows.SetRow(b, params);
  }
  return rows;
}

void BM_BatchLossLogistic(benchmark::State& state) {
  const int batch = state.range(0);
  const int dim = 64;
  LogisticRegression model(dim, 10, 1e-3);
  Dataset data = RandomData(256, dim, 10, 44);
  Matrix rows = StackedParams(model, batch, 45);
  std::vector<double> out;
  for (auto _ : state) {
    model.BatchLoss(rows, data, &out);
    benchmark::DoNotOptimize(out.data());
  }
}
BENCHMARK(BM_BatchLossLogistic)->Arg(1)->Arg(8)->Arg(64);

void BM_ScalarLossLoopLogistic(benchmark::State& state) {
  const int batch = state.range(0);
  const int dim = 64;
  LogisticRegression model(dim, 10, 1e-3);
  Dataset data = RandomData(256, dim, 10, 44);
  Matrix rows = StackedParams(model, batch, 45);
  std::vector<double> out(batch);
  for (auto _ : state) {
    for (int b = 0; b < batch; ++b) out[b] = model.Loss(rows.Row(b), data);
    benchmark::DoNotOptimize(out.data());
  }
}
BENCHMARK(BM_ScalarLossLoopLogistic)->Arg(1)->Arg(8)->Arg(64);

void BM_ExactShapley(benchmark::State& state) {
  const int m = state.range(0);
  std::vector<int> players(m);
  for (int i = 0; i < m; ++i) players[i] = i;
  UtilityFn game = [](const Coalition& c) {
    return static_cast<double>(c.Count() * c.Count());
  };
  for (auto _ : state) {
    benchmark::DoNotOptimize(ExactShapley(m, players, game));
  }
}
BENCHMARK(BM_ExactShapley)->Arg(5)->Arg(10)->Arg(15);

void BM_MonteCarloShapley(benchmark::State& state) {
  const int n = state.range(0);
  std::vector<int> players(n);
  for (int i = 0; i < n; ++i) players[i] = i;
  UtilityFn game = [](const Coalition& c) {
    return static_cast<double>(c.Count());
  };
  Rng rng(11);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        MonteCarloShapley(n, players, game, 50, &rng));
  }
}
BENCHMARK(BM_MonteCarloShapley)->Arg(20)->Arg(100);

void BM_CompletionAls(benchmark::State& state) {
  // 40 x 512 rank-3 matrix, 20% observed.
  Rng rng(12);
  Matrix a = RandomMatrix(40, 3, 13);
  Matrix b = RandomMatrix(3, 512, 14);
  Matrix truth = Matrix::Multiply(a, b);
  ObservationSet obs(40, 512);
  for (size_t i = 0; i < truth.rows(); ++i) {
    for (size_t j = 0; j < truth.cols(); ++j) {
      if (rng.NextBernoulli(0.2)) {
        obs.Add(static_cast<int>(i), static_cast<int>(j), truth(i, j));
      }
    }
  }
  obs.Finalize();
  CompletionConfig cfg;
  cfg.rank = 3;
  cfg.lambda = 1e-2;
  cfg.max_iters = state.range(0);
  cfg.tolerance = 0.0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(CompleteMatrix(obs, cfg));
  }
}
BENCHMARK(BM_CompletionAls)->Arg(10)->Arg(50);

void BM_CoalitionHashing(benchmark::State& state) {
  const int n = state.range(0);
  Rng rng(15);
  std::vector<Coalition> coalitions;
  for (int i = 0; i < 1000; ++i) {
    Coalition c(n);
    for (int j = 0; j < n; ++j) {
      if (rng.NextBernoulli(0.3)) c.Add(j);
    }
    coalitions.push_back(c);
  }
  for (auto _ : state) {
    size_t acc = 0;
    for (const Coalition& c : coalitions) acc ^= c.Hash();
    benchmark::DoNotOptimize(acc);
  }
}
BENCHMARK(BM_CoalitionHashing)->Arg(10)->Arg(100);

void BM_FedAvgRound(benchmark::State& state) {
  const int n = state.range(0);
  SimulatedImageConfig icfg;
  icfg.num_samples = 40 * n;
  icfg.seed = 16;
  Dataset pool = GenerateSimulatedImages(icfg);
  Rng rng(17);
  auto clients = PartitionIid(pool, n, &rng);
  icfg.num_samples = 100;
  icfg.seed = 18;
  Dataset test = GenerateSimulatedImages(icfg);
  LogisticRegression model(pool.dim(), 10, 1e-3);
  FedAvgConfig cfg;
  cfg.num_rounds = 1;
  cfg.clients_per_round = std::max(2, n / 3);
  cfg.seed = 19;
  for (auto _ : state) {
    FedAvgTrainer trainer(&model, clients, test, cfg);
    benchmark::DoNotOptimize(trainer.Train());
  }
}
BENCHMARK(BM_FedAvgRound)->Arg(10)->Arg(50);

// ---------------------------------------------------------------------
// Thread-scaling section: wall time of the paper's two hot paths at 1
// and N threads, reduced to machine-readable JSON.

// A loss-backed utility game of fig8-like cost: each coalition utility
// evaluates one logistic test loss, as RoundUtility does.
double TimeMonteCarlo(int players, int permutations, ExecutionContext* ctx) {
  const int dim = 64;
  LogisticRegression model(dim, 10, 1e-3);
  Dataset test = RandomData(400, dim, 10, 21);
  Rng rng(22);
  Vector params;
  model.InitializeParams(&params, &rng);

  std::vector<int> ids(players);
  for (int i = 0; i < players; ++i) ids[i] = i;
  UtilityFn game = [&](const Coalition& c) {
    // Perturb one parameter per coalition so evaluations are distinct.
    Vector p = params;
    p[c.Count() % p.size()] += 1e-3;
    return model.Loss(p, test);
  };

  Rng sample_rng(23);
  Stopwatch timer;
  Result<Vector> values =
      MonteCarloShapley(players, ids, game, permutations, &sample_rng,
                        ctx != nullptr ? &ctx->pool() : nullptr);
  COMFEDSV_CHECK_OK(values.status());
  return timer.ElapsedSeconds();
}

double TimeAlsCompletion(int rows, int cols, int iters,
                         ExecutionContext* ctx) {
  Rng rng(24);
  Matrix a = RandomMatrix(rows, 3, 25);
  Matrix b = RandomMatrix(3, cols, 26);
  Matrix truth = Matrix::Multiply(a, b);
  ObservationSet obs(rows, cols);
  for (size_t i = 0; i < truth.rows(); ++i) {
    for (size_t j = 0; j < truth.cols(); ++j) {
      if (rng.NextBernoulli(0.2)) {
        obs.Add(static_cast<int>(i), static_cast<int>(j), truth(i, j));
      }
    }
  }
  obs.Finalize();
  CompletionConfig cfg;
  cfg.rank = 3;
  cfg.lambda = 1e-2;
  cfg.max_iters = iters;
  cfg.tolerance = 0.0;
  Stopwatch timer;
  Result<CompletionResult> result = CompleteMatrix(obs, cfg, ctx);
  COMFEDSV_CHECK_OK(result.status());
  return timer.ElapsedSeconds();
}

// ---------------------------------------------------------------------
// Batched coalition-loss engine: amortized per-coalition cost of
// Model::BatchLoss vs the pre-batching scalar loop (one Model::Loss per
// coalition), single-threaded — the Fig. 8 unit cost. Emitted as
// batch_loss_* records in BENCH_micro_kernels.json.

struct BatchLossResult {
  double seconds_scalar = 0.0;
  double seconds_batched = 0.0;
  bool bit_identical = true;
};

BatchLossResult TimeBatchLoss(const Model& model, const Dataset& data,
                              int batch, uint64_t seed) {
  Matrix rows = StackedParams(model, batch, seed);
  std::vector<double> scalar_out(batch);
  std::vector<double> batched_out;
  auto scalar_pass = [&] {
    for (int b = 0; b < batch; ++b) {
      scalar_out[b] = model.Loss(rows.Row(b), data);
    }
  };
  auto batched_pass = [&] { model.BatchLoss(rows, data, &batched_out); };

  BatchLossResult result;
  result.seconds_scalar = 1e30;
  result.seconds_batched = 1e30;
  scalar_pass();
  batched_pass();  // warm both paths
  for (int rep = 0; rep < 3; ++rep) {
    Stopwatch scalar_timer;
    scalar_pass();
    result.seconds_scalar =
        std::min(result.seconds_scalar, scalar_timer.ElapsedSeconds());
    Stopwatch batched_timer;
    batched_pass();
    result.seconds_batched =
        std::min(result.seconds_batched, batched_timer.ElapsedSeconds());
  }
  for (int b = 0; b < batch; ++b) {
    if (batched_out[b] != scalar_out[b]) result.bit_identical = false;
  }
  return result;
}

// Returns false if any batched result diverged from the scalar loop —
// the bit-identity contract; the bench exits nonzero so CI fails.
bool AppendBatchLossRecords(bench::BenchJsonWriter* json) {
  struct Config {
    const char* kernel;
    const char* model;
    int dim;
    int batch;
  };
  // d >= 64 throughout; the large-d rows are where the GEMM dominates
  // the (identical-by-contract) softmax tail.
  const Config configs[] = {
      {"batch_loss_logistic_d64_b64", "logistic", 64, 64},
      {"batch_loss_logistic_d256_b64", "logistic", 256, 64},
      {"batch_loss_logistic_d1024_b64", "logistic", 1024, 64},
      {"batch_loss_logistic_d256_b8", "logistic", 256, 8},
      {"batch_loss_mlp_d192_b64", "mlp", 192, 64},
  };
  const int samples = 256;
  const int classes = 10;
  bool all_identical = true;
  for (const Config& cfg : configs) {
    Dataset data = RandomData(samples, cfg.dim, classes, 51);
    std::unique_ptr<Model> model;
    if (std::string(cfg.model) == "logistic") {
      model = std::make_unique<LogisticRegression>(cfg.dim, classes, 1e-3);
    } else {
      model = std::make_unique<Mlp>(
          std::vector<size_t>{static_cast<size_t>(cfg.dim), 32,
                              static_cast<size_t>(classes)},
          1e-4);
    }
    BatchLossResult r = TimeBatchLoss(*model, data, cfg.batch, 52);
    json->BeginRecord();
    json->Field("kernel", cfg.kernel);
    json->Field("model", cfg.model);
    json->Field("dim", static_cast<double>(cfg.dim));
    json->Field("classes", static_cast<double>(classes));
    json->Field("samples", static_cast<double>(samples));
    json->Field("batch", static_cast<double>(cfg.batch));
    json->Field("threads", 1.0);
    json->Field("seconds_scalar_loop", r.seconds_scalar);
    json->Field("seconds_batched", r.seconds_batched);
    json->Field("speedup", r.seconds_scalar / r.seconds_batched);
    json->Field("us_per_coalition_scalar",
                r.seconds_scalar / cfg.batch * 1e6);
    json->Field("us_per_coalition_batched",
                r.seconds_batched / cfg.batch * 1e6);
    json->Field("bit_identical", r.bit_identical);
    std::printf(
        "batch_loss %-32s scalar %8.3f ms  batched %8.3f ms  "
        "speedup %5.2fx  identical=%s\n",
        cfg.kernel, r.seconds_scalar * 1e3, r.seconds_batched * 1e3,
        r.seconds_scalar / r.seconds_batched,
        r.bit_identical ? "yes" : "NO");
    all_identical = all_identical && r.bit_identical;
  }
  return all_identical;
}

void WriteThreadScalingJson(int threads) {
  bench::BenchJsonWriter json("micro_kernels");
  json.Meta("threads_compared", static_cast<double>(threads));
  ExecutionContext ctx(threads);

  struct Kernel {
    const char* name;
    double seconds_1t;
    double seconds_nt;
  };
  const Kernel kernels[] = {
      {"monte_carlo_shapley_30p_60perm",
       TimeMonteCarlo(30, 60, nullptr), TimeMonteCarlo(30, 60, &ctx)},
      {"als_completion_40x512_r3_50it",
       TimeAlsCompletion(40, 512, 50, nullptr),
       TimeAlsCompletion(40, 512, 50, &ctx)},
  };
  for (const Kernel& k : kernels) {
    json.BeginRecord();
    json.Field("kernel", k.name);
    json.Field("seconds_1_thread", k.seconds_1t);
    json.Field("seconds_n_threads", k.seconds_nt);
    json.Field("speedup", k.seconds_1t / k.seconds_nt);
  }
  const bool identical = AppendBatchLossRecords(&json);
  json.WriteFile();
  if (!identical) {
    std::fprintf(stderr,
                 "FATAL: batched loss diverged from the scalar loop\n");
    std::exit(1);
  }
}

}  // namespace
}  // namespace comfedsv

int main(int argc, char** argv) {
  const int threads = comfedsv::bench::BenchThreads(argc, argv);
  ::benchmark::Initialize(&argc, argv);
  ::benchmark::RunSpecifiedBenchmarks();
  ::benchmark::Shutdown();
  comfedsv::WriteThreadScalingJson(threads);
  return 0;
}
