// Crash-recovery bench: what the durable checkpoint pipeline costs and
// what it buys.
//
// Three sections, all on the same streaming-valuation workload:
//
//   * write_overhead — per-save wall cost of the PR-5 single-file path
//     (WriteCheckpointFile straight to one destination) vs the
//     CheckpointManager in legacy mode (keep_generations=1, same layout)
//     and in rotated mode (keep_generations=3, rotation + pruning). The
//     claim: rotation's durability upgrade costs a small constant factor
//     per save, not a new asymptotic.
//   * salvage — corrupt the newest of >= 2 retained generations in a
//     different byte each trial and recover. The claim: salvage success
//     rate is 100% — the corrupt generation is quarantined and the run
//     resumes from the next-newest, every time.
//   * recovery — kill the "process" mid-save at each instrumented I/O
//     operation (failpoint kCrash), then measure the reboot path:
//     orphan sweep + salvage load + engine restore, in wall seconds.
//
// Writes BENCH_recovery.json (schema documented in README.md).
#include <algorithm>
#include <filesystem>
#include <string>
#include <vector>

#include "bench_common.h"
#include "common/failpoint.h"
#include "common/stopwatch.h"
#include "core/streaming.h"
#include "io/checkpoint_manager.h"
#include "io/file_env.h"

namespace comfedsv {
namespace bench {
namespace {

struct Scenario {
  Workload w;
  FedAvgConfig fed;
  StreamingConfig streaming;
  int num_clients = 0;
};

Scenario MakeScenario(bool full_scale) {
  Scenario s;
  WorkloadOptions opt;
  opt.num_clients = full_scale ? 10 : 6;
  opt.samples_per_client = full_scale ? 120 : 60;
  opt.seed = 5;
  s.w = MakeWorkload(PaperDataset::kSynthetic, opt);
  s.num_clients = opt.num_clients;

  s.fed.num_rounds = full_scale ? 16 : 8;
  s.fed.clients_per_round = std::max(2, opt.num_clients / 3);
  s.fed.select_all_first_round = true;
  s.fed.lr = LearningRateSchedule::Constant(0.1);
  s.fed.seed = 11;

  s.streaming.request.compute_fedsv = true;
  s.streaming.request.fedsv.mode = FedSvConfig::Mode::kMonteCarlo;
  s.streaming.request.fedsv.permutations_per_round = 6;
  s.streaming.request.fedsv.seed = 12;
  s.streaming.request.compute_comfedsv = true;
  s.streaming.request.comfedsv.mode = ComFedSvConfig::Mode::kSampled;
  s.streaming.request.comfedsv.num_permutations = full_scale ? 16 : 8;
  s.streaming.request.comfedsv.completion.rank = 3;
  s.streaming.request.comfedsv.completion.lambda = 1e-2;
  s.streaming.request.comfedsv.completion.max_iters = 200;
  s.streaming.request.comfedsv.seed = 13;
  s.streaming.resolve_cadence = 1;
  return s;
}

std::unique_ptr<StreamingValuationEngine> NewEngine(const Scenario& s) {
  return std::make_unique<StreamingValuationEngine>(
      s.w.model.get(), &s.w.test, s.num_clients, s.streaming);
}

CheckpointManagerOptions Options(int keep, FileEnv* env = nullptr) {
  CheckpointManagerOptions options;
  options.keep_generations = keep;
  options.max_retries = 1;
  options.retry_backoff_ms = 0;
  options.env = env;
  return options;
}

/// Feeds every round >= `first_round` into the engine, calling `save`
/// after each; returns false if `stop_when_crashed` saw the environment
/// die (the forward run "was killed").
template <typename SaveFn>
bool Drive(const Scenario& s, StreamingValuationEngine* engine,
           int first_round, const SaveFn& save,
           FaultInjectingFileEnv* fault = nullptr) {
  FedAvgTrainer trainer(s.w.model.get(), s.w.clients, s.w.test, s.fed);
  COMFEDSV_CHECK_OK(trainer.Begin());
  while (!trainer.Done()) {
    const RoundRecord& record = trainer.Step();
    if (record.round < first_round) continue;
    engine->OnRound(record);
    save(engine, record.round);
    if (fault != nullptr && fault->crashed()) return false;
  }
  return true;
}

// -- write_overhead ----------------------------------------------------

struct WritePath {
  const char* name;
  int keep;  ///< 0 = raw WriteCheckpointFile, no manager (the PR-5 path)
};

void WriteOverhead(const Scenario& s, const std::string& dir,
                   BenchJsonWriter* json) {
  const WritePath paths[] = {
      {"pr5_single_file", 0},
      {"manager_legacy", 1},
      {"manager_rotated", 3},
  };
  double pr5_avg_ms = 0.0;
  for (const WritePath& path : paths) {
    const std::string stem = dir + "/" + path.name + ".ckpt";
    CheckpointManager manager(stem, Options(std::max(path.keep, 1)));
    auto engine = NewEngine(s);
    double save_seconds = 0.0;
    double bytes = 0.0;
    int saves = 0;
    Drive(s, engine.get(), 0,
          [&](StreamingValuationEngine* e, int /*round*/) {
            Stopwatch timer;
            if (path.keep == 0) {
              BinaryWriter payload;
              e->SaveState(&payload);
              bytes = static_cast<double>(payload.buffer().size());
              COMFEDSV_CHECK_OK(WriteCheckpointFile(
                  stem, ChunkTag::kStreamingEngineState, payload.buffer()));
            } else {
              COMFEDSV_CHECK_OK(e->SaveCheckpoint(&manager));
            }
            save_seconds += timer.ElapsedSeconds();
            ++saves;
          });
    const double avg_ms = 1e3 * save_seconds / std::max(saves, 1);
    if (path.keep == 0) pr5_avg_ms = avg_ms;
    json->BeginRecord();
    json->Field("section", "write_overhead");
    json->Field("path", path.name);
    json->Field("keep_generations", static_cast<double>(path.keep));
    json->Field("saves", static_cast<double>(saves));
    json->Field("total_save_seconds", save_seconds);
    json->Field("avg_save_ms", avg_ms);
    json->Field("payload_bytes_final", bytes);
    json->Field("overhead_vs_pr5",
                pr5_avg_ms > 0.0 ? avg_ms / pr5_avg_ms : 1.0);
    std::printf("write  %-16s keep=%d  %2d saves  avg %.3f ms/save  "
                "(%.2fx vs pr5)\n",
                path.name, path.keep, saves, avg_ms,
                pr5_avg_ms > 0.0 ? avg_ms / pr5_avg_ms : 1.0);
  }
}

// -- salvage -----------------------------------------------------------

void SalvageRate(const Scenario& s, const std::string& root,
                 bool full_scale, BenchJsonWriter* json) {
  namespace fs = std::filesystem;
  const int trials = full_scale ? 16 : 8;
  const int keep = 3;
  int successes = 0;
  double retained_min = keep;
  for (int trial = 0; trial < trials; ++trial) {
    const std::string dir = root + "/salvage_" + std::to_string(trial);
    fs::create_directories(dir);
    const std::string stem = dir + "/stream.ckpt";
    {
      CheckpointManager manager(stem, Options(keep));
      auto engine = NewEngine(s);
      Drive(s, engine.get(), 0,
            [&](StreamingValuationEngine* e, int /*round*/) {
              COMFEDSV_CHECK_OK(e->SaveCheckpoint(&manager));
            });
    }
    // Corrupt a different byte of the newest generation each trial —
    // header, sequence field, payload head, payload tail all get hit
    // across the sweep of trials.
    CheckpointManager manager(stem, Options(keep));
    auto generations = manager.ListGenerations();
    retained_min =
        std::min(retained_min, static_cast<double>(generations.size()));
    const std::string newest = generations.back().second;
    Result<std::string> bytes = FileEnv::Real()->ReadFile(newest);
    COMFEDSV_CHECK_OK(bytes.status());
    std::string corrupted = bytes.value();
    const size_t pos =
        (corrupted.size() / trials) * trial % corrupted.size();
    corrupted[pos] ^= 0x5A;
    COMFEDSV_CHECK_OK(FileEnv::Real()->WriteFile(newest, corrupted));

    Stopwatch timer;
    auto engine = NewEngine(s);
    const bool recovered = engine->RestoreCheckpoint(&manager).ok();
    if (recovered) ++successes;
    json->BeginRecord();
    json->Field("section", "salvage");
    json->Field("trial", static_cast<double>(trial));
    json->Field("corrupted_byte", static_cast<double>(pos));
    json->Field("recovered", recovered);
    json->Field("quarantined",
                static_cast<double>(manager.quarantined_total()));
    json->Field("resumed_round",
                static_cast<double>(engine->rounds_consumed()));
    json->Field("recovery_seconds", timer.ElapsedSeconds());
  }
  const double rate = static_cast<double>(successes) / trials;
  json->BeginRecord();
  json->Field("section", "salvage");
  json->Field("summary", true);
  json->Field("trials", static_cast<double>(trials));
  json->Field("retained_generations", retained_min);
  json->Field("salvage_success_rate", rate);
  std::printf("salvage  %d/%d trials recovered (rate %.2f, >= %.0f "
              "generations retained)\n",
              successes, trials, rate, retained_min);
}

// -- recovery ----------------------------------------------------------

void RecoveryLatency(const Scenario& s, const std::string& root,
                     BenchJsonWriter* json) {
  namespace fs = std::filesystem;
  struct CrashPoint {
    const char* label;
    const char* failpoint;
    FaultAction action;
    int64_t arg;
    int kill_round;
  };
  const int mid = s.fed.num_rounds / 2;
  // The torn rename strikes the *last* save: no later clean save papers
  // over it, so recovery must quarantine the husk and salvage.
  const CrashPoint points[] = {
      {"write_file", failpoints::kWriteFile, FaultAction::kCrash, 9, mid},
      {"sync_file", failpoints::kSyncFile, FaultAction::kCrash, 0, mid},
      {"rename", failpoints::kRename, FaultAction::kCrash, 0, mid},
      {"sync_dir", failpoints::kSyncDir, FaultAction::kCrash, 0, mid},
      {"torn_rename", failpoints::kRename, FaultAction::kTornRename, 11,
       s.fed.num_rounds - 1},
  };
  int recovered_count = 0;
  double total_ms = 0.0, max_ms = 0.0;
  for (const CrashPoint& point : points) {
    const std::string dir = root + "/crash_" + point.label;
    fs::create_directories(dir);
    const std::string stem = dir + "/stream.ckpt";
    FaultInjectingFileEnv fault;
    {
      CheckpointManager manager(stem, Options(3, &fault));
      auto doomed = NewEngine(s);
      Drive(s, doomed.get(), 0,
            [&](StreamingValuationEngine* e, int round) {
              if (round == point.kill_round) {
                FailpointRegistry::Global().Arm(
                    point.failpoint, FailpointTrigger::OnHit(1),
                    static_cast<int>(point.action), point.arg);
              }
              (void)e->SaveCheckpoint(&manager);
            },
            &fault);
    }
    FailpointRegistry::Global().ClearAll();
    fault.ClearCrash();

    // The reboot path, timed end to end: sweep + salvage load + restore.
    Stopwatch timer;
    CheckpointManager manager(stem, Options(3, &fault));
    Result<int> swept = manager.SweepOrphans();
    auto engine = NewEngine(s);
    const bool recovered = engine->RestoreCheckpoint(&manager).ok();
    const double ms = 1e3 * timer.ElapsedSeconds();
    if (recovered) ++recovered_count;
    total_ms += ms;
    max_ms = std::max(max_ms, ms);
    json->BeginRecord();
    json->Field("section", "recovery");
    json->Field("crash_point", point.label);
    json->Field("recovered", recovered);
    json->Field("recovery_ms", ms);
    json->Field("resumed_round",
                static_cast<double>(engine->rounds_consumed()));
    json->Field("orphans_swept", static_cast<double>(swept.value_or(0)));
    json->Field("quarantined",
                static_cast<double>(manager.quarantined_total()));
    std::printf("crash @ %-12s recovered=%d  resumed at round %2d  "
                "%.3f ms  (%d orphans, %lld quarantined)\n",
                point.label, recovered ? 1 : 0, engine->rounds_consumed(),
                ms, swept.value_or(0),
                static_cast<long long>(manager.quarantined_total()));
  }
  const int num_points = static_cast<int>(std::size(points));
  json->BeginRecord();
  json->Field("section", "recovery");
  json->Field("summary", true);
  json->Field("crash_points", static_cast<double>(num_points));
  json->Field("salvage_success_rate",
              static_cast<double>(recovered_count) / num_points);
  json->Field("mean_recovery_ms", total_ms / num_points);
  json->Field("max_recovery_ms", max_ms);
  std::printf("recovery  %d/%d crash points recovered, mean %.3f ms, "
              "max %.3f ms\n",
              recovered_count, num_points, total_ms / num_points, max_ms);
}

}  // namespace
}  // namespace bench
}  // namespace comfedsv

int main(int argc, char** argv) {
  using namespace comfedsv::bench;
  namespace fs = std::filesystem;
  const bool full = FullScale(argc, argv);
  PrintHeader("crash recovery",
              "checkpoint write overhead vs the single-file path, salvage "
              "success under per-trial corruption, and crash-to-recovered "
              "latency at every instrumented I/O operation",
              full);
  const Scenario s = MakeScenario(full);
  const std::string root = "bench_recovery_scratch";
  fs::remove_all(root);
  fs::create_directories(root);

  BenchJsonWriter json("recovery");
  json.Meta("scale", full ? "full" : "reduced");
  json.Meta("rounds", static_cast<double>(s.fed.num_rounds));
  json.Meta("clients", static_cast<double>(s.num_clients));
  WriteOverhead(s, root, &json);
  SalvageRate(s, root, full, &json);
  RecoveryLatency(s, root, &json);

  fs::remove_all(root);
  return json.WriteFile() ? 0 : 1;
}
