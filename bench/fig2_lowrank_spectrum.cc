// Figure 2 / Example 2: the utility matrix is approximately low-rank.
//
// Trains the paper's three representative dataset/model pairs (logistic
// regression on synthetic, MLP on MNIST-sim, CNN on CIFAR10-sim), records
// the FULL utility matrix (all 2^N coalitions each round), and prints its
// leading singular values plus cumulative-energy and eps-rank summaries.
//
// Paper scale: 10 clients, 100 rounds, 3 selected per round (matrix
// 100 x 1024). Reduced default shrinks rounds to keep runtime small.
#include "bench_common.h"

namespace comfedsv {

int Fig2Main(int argc, char** argv) {
  const bool full = bench::FullScale(argc, argv);
  bench::PrintHeader(
      "Figure 2 (and Example 2)",
      "Singular-value decay of the full utility matrix U (T x 2^N):\n"
      "a handful of dominant singular values => approximately low-rank.",
      full);

  const int num_clients = 10;
  const int rounds = full ? 100 : 15;
  const int selected_per_round = 3;
  const std::vector<bench::PaperDataset> datasets = {
      bench::PaperDataset::kSynthetic, bench::PaperDataset::kMnist,
      bench::PaperDataset::kCifar10};

  for (bench::PaperDataset which : datasets) {
    bench::WorkloadOptions opt;
    opt.num_clients = num_clients;
    opt.samples_per_client = full ? 120 : 80;
    opt.test_samples = full ? 200 : 100;
    opt.noniid = true;
    opt.seed = 1000 + static_cast<uint64_t>(which);
    bench::Workload w = bench::MakeWorkload(which, opt);

    FedAvgConfig fcfg;
    fcfg.num_rounds = rounds;
    fcfg.clients_per_round = selected_per_round;
    // The full matrix is recorded for every round regardless of
    // selection, as in Example 2 ("we do compute the updates of all
    // clients in each round").
    fcfg.select_all_first_round = false;
    fcfg.lr = LearningRateSchedule::Constant(0.3);
    fcfg.seed = opt.seed + 7;

    GroundTruthEvaluator recorder(w.model.get(), &w.test, num_clients);
    FedAvgTrainer trainer(w.model.get(), w.clients, w.test, fcfg);
    Stopwatch timer;
    Result<TrainingResult> training = trainer.Train(&recorder);
    COMFEDSV_CHECK_OK(training.status());

    Matrix u = recorder.UtilityMatrix();
    Result<Vector> sv = SingularValues(u);
    COMFEDSV_CHECK_OK(sv.status());
    const Vector& s = sv.value();

    double total_energy = 0.0;
    for (size_t i = 0; i < s.size(); ++i) total_energy += s[i] * s[i];

    std::printf("dataset=%s model=%s  U is %zux%zu  (%.1fs, %lld loss "
                "evals)\n",
                w.dataset_name.c_str(), w.model_name.c_str(), u.rows(),
                u.cols(), timer.ElapsedSeconds(),
                static_cast<long long>(recorder.loss_calls()));
    Table table({"k", "sigma_k", "sigma_k/sigma_1", "cum. energy"});
    double cum = 0.0;
    for (size_t k = 0; k < std::min<size_t>(s.size(), 12); ++k) {
      cum += s[k] * s[k];
      table.AddRow({std::to_string(k + 1), Table::Num(s[k]),
                    Table::Num(s[k] / (s[0] + 1e-300)),
                    Table::Num(cum / (total_energy + 1e-300))});
    }
    std::printf("%s", table.ToText().c_str());

    // eps-rank at eps = 1% of the largest entry (Definition 3 scale).
    const double eps = 0.01 * u.MaxAbs();
    Result<int> eps_rank = EpsRankSpectralBound(u, eps);
    COMFEDSV_CHECK_OK(eps_rank.status());
    std::printf("eps-rank (spectral bound, eps = 1%% of max entry): %d of "
                "min(T, 2^N) = %zu\n\n",
                eps_rank.value(), std::min(u.rows(), u.cols()));
  }
  std::printf(
      "Shape check vs paper: in all three cases the spectrum collapses\n"
      "within a few components (nearly low-rank), matching Fig. 2.\n");
  return 0;
}

}  // namespace comfedsv

int main(int argc, char** argv) { return comfedsv::Fig2Main(argc, argv); }
