// Streaming valuation bench: warm-started re-solves vs cold re-solves
// along a streaming round sequence.
//
// The StreamingValuationEngine re-solves the completion every
// `resolve_cadence` rounds, warm-starting from the previous factors. At
// every re-solve point this bench runs both paths on the identical
// observation prefix — the engine's warm Snapshot() and the cold
// batch-equivalent Finalize() — and records sweep counts, wall seconds,
// and final objectives. The acceptance claim is that warm start reaches
// an equal final objective (same solver, same convergence tolerance) in
// measurably fewer sweeps and seconds.
//
// Writes BENCH_streaming.json (schema documented in README.md).
#include <string>
#include <vector>

#include "bench_common.h"
#include "common/stopwatch.h"
#include "core/streaming.h"

namespace comfedsv {
namespace bench {
namespace {

struct SolverCase {
  const char* name;
  CompletionSolver solver;
};

void RunStreamingBench(bool full_scale, BenchJsonWriter* json) {
  WorkloadOptions opt;
  opt.num_clients = full_scale ? 20 : 10;
  opt.samples_per_client = full_scale ? 200 : 80;
  opt.seed = 7;
  Workload w = MakeWorkload(PaperDataset::kSynthetic, opt);

  FedAvgConfig fed;
  fed.num_rounds = full_scale ? 60 : 24;
  fed.clients_per_round = std::max(2, opt.num_clients / 3);
  fed.select_all_first_round = true;
  fed.lr = LearningRateSchedule::Constant(0.1);
  fed.seed = 17;

  const int cadence = full_scale ? 6 : 4;
  const SolverCase solvers[] = {
      {"als", CompletionSolver::kAls},
      {"ccd++", CompletionSolver::kCcd},
      {"sgd", CompletionSolver::kSgd},
  };

  for (const SolverCase& sc : solvers) {
    ValuationRequest request;
    request.compute_fedsv = false;
    request.compute_comfedsv = true;
    request.comfedsv.mode = ComFedSvConfig::Mode::kSampled;
    // Keep the completion problem determined enough that every solver
    // converges inside the sweep budget (rows quickly exceed the rank,
    // lambda regularizes the early underdetermined prefixes): the bench
    // compares sweeps-to-convergence, so capped solves would measure
    // nothing.
    request.comfedsv.num_permutations = full_scale ? 24 : 10;
    request.comfedsv.completion.rank = 3;
    request.comfedsv.completion.lambda = 1e-2;
    request.comfedsv.completion.max_iters = 2000;
    // SGD's plateau criterion (|Δobj| per epoch under a decaying step)
    // needs a looser threshold than the alternating solvers' monotone
    // decrease to fire at all.
    request.comfedsv.completion.tolerance =
        sc.solver == CompletionSolver::kSgd ? 1e-6 : 1e-9;
    request.comfedsv.completion.solver = sc.solver;
    request.comfedsv.completion.seed = 23;
    request.comfedsv.seed = 29;

    StreamingConfig streaming;
    streaming.request = request;
    streaming.resolve_cadence = cadence;
    streaming.warm_start = true;

    StreamingValuationEngine engine(w.model.get(), &w.test,
                                    opt.num_clients, streaming);
    FedAvgTrainer trainer(w.model.get(), w.clients, w.test, fed);
    COMFEDSV_CHECK_OK(trainer.Begin());

    double warm_sweeps_total = 0.0, cold_sweeps_total = 0.0;
    double warm_seconds_total = 0.0, cold_seconds_total = 0.0;
    while (!trainer.Done()) {
      engine.OnRound(trainer.Step());
      if (engine.rounds_consumed() % cadence != 0) continue;

      // Warm path: the engine's snapshot solve (first one is cold — the
      // engine has no factors yet — so the cadence-point records below
      // start from the second re-solve point).
      Stopwatch warm_timer;
      Result<ValuationOutcome> warm = engine.Snapshot();
      const double warm_seconds = warm_timer.ElapsedSeconds();
      COMFEDSV_CHECK_OK(warm.status());

      // Cold path: identical observation prefix, fresh random init and
      // (for ALS) the staged rank-growth pre-phase.
      Stopwatch cold_timer;
      Result<ValuationOutcome> cold = engine.Finalize();
      const double cold_seconds = cold_timer.ElapsedSeconds();
      COMFEDSV_CHECK_OK(cold.status());

      const ComFedSvOutput& wout = *warm.value().comfedsv;
      const ComFedSvOutput& cout_ = *cold.value().comfedsv;
      const bool first_solve = engine.rounds_consumed() == cadence;
      if (!first_solve) {
        warm_sweeps_total += wout.completion.iterations;
        cold_sweeps_total += cout_.completion.iterations;
        warm_seconds_total += warm_seconds;
        cold_seconds_total += cold_seconds;
      }

      json->BeginRecord();
      json->Field("solver", sc.name);
      json->Field("rounds", static_cast<double>(engine.rounds_consumed()));
      json->Field("first_solve", first_solve);
      json->Field("warm_sweeps",
                  static_cast<double>(wout.completion.iterations));
      json->Field("cold_sweeps",
                  static_cast<double>(cout_.completion.iterations));
      json->Field("warm_seconds", warm_seconds);
      json->Field("cold_seconds", cold_seconds);
      json->Field("warm_objective", wout.completion.objective);
      json->Field("cold_objective", cout_.completion.objective);
      json->Field("warm_observed_rmse", wout.completion.observed_rmse);
      json->Field("cold_observed_rmse", cout_.completion.observed_rmse);
      const double obj_gap =
          std::fabs(wout.completion.objective -
                    cout_.completion.objective) /
          std::max(1e-300, std::fabs(cout_.completion.objective));
      json->Field("objective_rel_gap", obj_gap);
      std::printf(
          "%-6s rounds=%3d  warm %3d sweeps %.4fs  cold %3d sweeps %.4fs"
          "  obj gap %.2e%s\n",
          sc.name, engine.rounds_consumed(), wout.completion.iterations,
          warm_seconds, cout_.completion.iterations, cold_seconds,
          obj_gap, first_solve ? "  (first solve: warm==cold)" : "");
    }

    json->BeginRecord();
    json->Field("solver", sc.name);
    json->Field("summary", true);
    json->Field("warm_sweeps_total", warm_sweeps_total);
    json->Field("cold_sweeps_total", cold_sweeps_total);
    json->Field("warm_seconds_total", warm_seconds_total);
    json->Field("cold_seconds_total", cold_seconds_total);
    json->Field("sweep_ratio_warm_over_cold",
                cold_sweeps_total > 0 ? warm_sweeps_total / cold_sweeps_total
                                      : 1.0);
    json->Field("seconds_ratio_warm_over_cold",
                cold_seconds_total > 0
                    ? warm_seconds_total / cold_seconds_total
                    : 1.0);
    std::printf(
        "%-6s TOTAL (post-first re-solves): warm %.0f sweeps %.4fs vs "
        "cold %.0f sweeps %.4fs  (ratios %.2f sweeps, %.2f seconds)\n\n",
        sc.name, warm_sweeps_total, warm_seconds_total, cold_sweeps_total,
        cold_seconds_total,
        cold_sweeps_total > 0 ? warm_sweeps_total / cold_sweeps_total : 1.0,
        cold_seconds_total > 0 ? warm_seconds_total / cold_seconds_total
                               : 1.0);
  }
}

}  // namespace
}  // namespace bench
}  // namespace comfedsv

int main(int argc, char** argv) {
  using namespace comfedsv::bench;
  const bool full = FullScale(argc, argv);
  PrintHeader("streaming valuation",
              "warm-started completion re-solves vs cold re-solves along "
              "a streaming round sequence (equal tolerance => equal final "
              "objective)",
              full);
  BenchJsonWriter json("streaming");
  json.Meta("scale", full ? "full" : "reduced");
  RunStreamingBench(full, &json);
  return json.WriteFile() ? 0 : 1;
}
