// Figure 6: noisy-data detection. Client i receives Gaussian noise on
// 5*i % of its samples (so the true quality ranking is 9, 8, ..., 0 from
// noisiest to cleanest). The Spearman rank correlation between the true
// noise ranking and the valuation ranking is reported for the ground
// truth (ComFedSV on the full matrix), FedSV, and ComFedSV.
#include "bench_common.h"

namespace comfedsv {

int Fig6Main(int argc, char** argv) {
  const bool full = bench::FullScale(argc, argv);
  bench::PrintHeader(
      "Figure 6",
      "Noisy-data detection: Spearman correlation between the true\n"
      "noise ranking and each metric's ranking (higher is better).",
      full);

  const int num_clients = 10;
  const int rounds = 10;
  const int repeats = full ? 5 : 2;

  Table table({"dataset", "model", "ground-truth", "FedSV", "ComFedSV"});
  for (bench::PaperDataset which : bench::AllPaperDatasets()) {
    double sum_gt = 0.0, sum_fedsv = 0.0, sum_comfedsv = 0.0;
    std::string model_name;
    for (int rep = 0; rep < repeats; ++rep) {
      bench::WorkloadOptions opt;
      opt.num_clients = num_clients;
      opt.samples_per_client = full ? 120 : 80;
      opt.test_samples = full ? 200 : 120;
      opt.noniid = false;  // paper: start from the IID partitioning
      opt.seed = 600 + 17 * rep + static_cast<uint64_t>(which);
      bench::Workload w = bench::MakeWorkload(which, opt);
      model_name = w.model_name;

      // Client i gets noise on 5*i% of its samples. Noise = feature
      // replacement by column-matched Gaussian noise (the Ghorbani & Zou
      // corruption); see DESIGN.md for why plain additive noise does not
      // degrade quality on scale-heterogeneous features.
      Rng noise_rng(opt.seed ^ 0xF16ULL);
      for (int i = 0; i < num_clients; ++i) {
        ReplaceFeaturesWithNoise(&w.clients[i], 0.05 * i, &noise_rng);
      }

      FedAvgConfig fcfg;
      fcfg.num_rounds = rounds;
      fcfg.clients_per_round = 3;
      fcfg.select_all_first_round = true;
      fcfg.lr = LearningRateSchedule::Constant(0.3);
      fcfg.seed = opt.seed + 3;

      ValuationRequest req;
      req.compute_fedsv = true;
      req.fedsv.mode = FedSvConfig::Mode::kExact;
      req.compute_comfedsv = true;
      req.comfedsv.mode = ComFedSvConfig::Mode::kFull;
      req.comfedsv.completion.rank = 3;
      req.comfedsv.completion.lambda = 1e-4;
      req.comfedsv.completion.temporal_smoothing = 0.1;
      req.comfedsv.completion.max_iters = 150;
      req.compute_ground_truth = true;

      Result<ValuationOutcome> outcome = RunValuation(
          *w.model, w.clients, w.test, fcfg, req);
      COMFEDSV_CHECK_OK(outcome.status());

      // True quality scores: client i's quality decreases with i, so the
      // target ranking vector is -i.
      std::vector<double> truth(num_clients);
      for (int i = 0; i < num_clients; ++i) truth[i] = -i;
      auto spearman_vs_truth = [&](const Vector& values) {
        std::vector<double> v(values.begin(), values.end());
        Result<double> rho = SpearmanCorrelation(truth, v);
        COMFEDSV_CHECK_OK(rho.status());
        return rho.value();
      };
      sum_gt += spearman_vs_truth(*outcome.value().ground_truth_values);
      sum_fedsv += spearman_vs_truth(*outcome.value().fedsv_values);
      sum_comfedsv += spearman_vs_truth(outcome.value().comfedsv->values);
    }
    table.AddRow({bench::DatasetName(which), model_name,
                  Table::Num(sum_gt / repeats, 3),
                  Table::Num(sum_fedsv / repeats, 3),
                  Table::Num(sum_comfedsv / repeats, 3)});
  }
  std::printf("%s\n", table.ToText().c_str());
  std::printf(
      "Shape check vs paper: ComFedSV >= FedSV on (almost) every dataset\n"
      "and tracks the ground truth closely (Fig. 6).\n");
  return 0;
}

}  // namespace comfedsv

int main(int argc, char** argv) { return comfedsv::Fig6Main(argc, argv); }
