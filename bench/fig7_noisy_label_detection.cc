// Figure 7: noisy-label detection at scale (the Algorithm 1 regime).
// A 10% subset of clients has a large fraction of labels flipped; the
// metrics are compared by the Jaccard coefficient between the true noisy
// set and the set of clients with the lowest valuations, for several
// participation rates m%.
//
// Paper scale: 100 clients (10 noisy, 30% flips), 100 rounds,
// m in {10,...,50}%. Reduced default: 30 clients (3 noisy), 20 rounds.
#include "bench_common.h"

namespace comfedsv {

int Fig7Main(int argc, char** argv) {
  const bool full = bench::FullScale(argc, argv);
  bench::PrintHeader(
      "Figure 7",
      "Noisy-label detection: Jaccard between the true noisy-client set\n"
      "and the bottom-k valued clients, vs participation rate m%.",
      full);

  const int num_clients = full ? 100 : 30;
  const int num_noisy = num_clients / 10;
  const int rounds = full ? 100 : 20;

  for (bench::PaperDataset which : bench::AllPaperDatasets()) {
    bench::WorkloadOptions opt;
    opt.num_clients = num_clients;
    opt.samples_per_client = full ? 60 : 40;
    opt.test_samples = full ? 200 : 100;
    opt.noniid = false;  // paper: IID partition, then inject label noise
    opt.seed = 700 + static_cast<uint64_t>(which);
    bench::Workload w = bench::MakeWorkload(which, opt);

    // The first num_noisy clients get 30% flipped labels.
    Rng noise_rng(opt.seed ^ 0xF17ULL);
    std::vector<int> noisy_set;
    for (int i = 0; i < num_noisy; ++i) {
      FlipLabels(&w.clients[i], 0.30, &noise_rng);
      noisy_set.push_back(i);
    }

    std::printf("dataset=%s model=%s  (%d clients, %d noisy, %d rounds)\n",
                w.dataset_name.c_str(), w.model_name.c_str(), num_clients,
                num_noisy, rounds);
    Table table({"participation m%", "Jaccard FedSV", "Jaccard ComFedSV"});
    for (int percent = 10; percent <= 50; percent += 10) {
      const int per_round =
          std::max(2, num_clients * percent / 100);

      FedAvgConfig fcfg;
      fcfg.num_rounds = rounds;
      fcfg.clients_per_round = per_round;
      fcfg.select_all_first_round = true;  // Assumption 1
      fcfg.lr = LearningRateSchedule::Constant(0.3);
      fcfg.seed = opt.seed + percent;

      ValuationRequest req;
      req.compute_fedsv = true;
      req.fedsv.mode = FedSvConfig::Mode::kMonteCarlo;
      req.fedsv.permutations_per_round = full ? 0 : 2 * per_round;
      req.fedsv.seed = fcfg.seed + 1;
      req.compute_comfedsv = true;
      req.comfedsv.mode = ComFedSvConfig::Mode::kSampled;
      req.comfedsv.num_permutations =
          full ? 0 : 4 * num_clients;  // 0 = O(N log N) default
      req.comfedsv.completion.rank = 3;
      req.comfedsv.completion.lambda = 1e-4;
      req.comfedsv.completion.temporal_smoothing = 0.1;
      req.comfedsv.completion.max_iters = 120;
      req.comfedsv.seed = fcfg.seed + 2;
      req.compute_ground_truth = false;

      Result<ValuationOutcome> outcome = RunValuation(
          *w.model, w.clients, w.test, fcfg, req);
      COMFEDSV_CHECK_OK(outcome.status());

      const double jaccard_fedsv = JaccardIndex(
          noisy_set,
          BottomKIndices(*outcome.value().fedsv_values, num_noisy));
      const double jaccard_comfedsv = JaccardIndex(
          noisy_set,
          BottomKIndices(outcome.value().comfedsv->values, num_noisy));
      table.AddRow({std::to_string(percent),
                    Table::Num(jaccard_fedsv, 3),
                    Table::Num(jaccard_comfedsv, 3)});
    }
    std::printf("%s\n", table.ToText().c_str());
  }
  std::printf(
      "Shape check vs paper: ComFedSV matches or beats FedSV at most\n"
      "participation rates; both improve as participation grows "
      "(Fig. 7).\n");
  return 0;
}

}  // namespace comfedsv

int main(int argc, char** argv) { return comfedsv::Fig7Main(argc, argv); }
