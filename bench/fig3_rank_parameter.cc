// Figure 3 / Example 3: impact of the rank parameter r on the quality of
// the low-rank completion of the utility matrix.
//
// Trains the MLP on MNIST-sim (10 clients, 3 selected per round),
// records BOTH the full utility matrix (reference) and the observed
// entries, solves completion problem (9) for r in {1..10}, and prints the
// relative difference ||U - W H^T||_F / ||U||_F the paper plots.
#include <cmath>

#include "bench_common.h"

namespace comfedsv {

int Fig3Main(int argc, char** argv) {
  const bool full = bench::FullScale(argc, argv);
  bench::PrintHeader(
      "Figure 3 (and Example 3)",
      "Relative error of the rank-r completion of the utility matrix\n"
      "vs the fully observed reference, for r = 1..10.",
      full);

  const int num_clients = 10;
  const int rounds = full ? 100 : 30;
  // Exploration knobs (documented in --help spirit): --lambda=X and
  // --solver=als|ccd|sgd override the defaults below.
  double lambda = 1e-4;
  double mu = 0.1;  // temporal smoothing; see CompletionConfig
  CompletionSolver solver = CompletionSolver::kAls;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--lambda=", 9) == 0) {
      lambda = std::atof(argv[i] + 9);
    } else if (std::strncmp(argv[i], "--mu=", 5) == 0) {
      mu = std::atof(argv[i] + 5);
    } else if (std::strcmp(argv[i], "--solver=ccd") == 0) {
      solver = CompletionSolver::kCcd;
    } else if (std::strcmp(argv[i], "--solver=sgd") == 0) {
      solver = CompletionSolver::kSgd;
    }
  }

  bench::WorkloadOptions opt;
  opt.num_clients = num_clients;
  opt.samples_per_client = full ? 120 : 80;
  opt.test_samples = full ? 200 : 100;
  opt.noniid = true;
  opt.seed = 33;
  bench::Workload w =
      bench::MakeWorkload(bench::PaperDataset::kMnist, opt);

  FedAvgConfig fcfg;
  fcfg.num_rounds = rounds;
  fcfg.clients_per_round = 3;
  fcfg.select_all_first_round = true;  // Assumption 1
  // Decaying schedule (Prop. 2): successive global models move slowly,
  // which is what makes successive utility-matrix rows similar and the
  // completion well-posed.
  fcfg.lr = LearningRateSchedule::InverseDecay(/*mu=*/0.5,
                                               /*smoothness=*/1.0);
  fcfg.seed = 35;

  GroundTruthEvaluator full_recorder(w.model.get(), &w.test, num_clients);
  ObservedUtilityRecorder observed(w.model.get(), &w.test, num_clients);
  FanoutObserver fanout;
  fanout.Register(&full_recorder);
  fanout.Register(&observed);
  FedAvgTrainer trainer(w.model.get(), w.clients, w.test, fcfg);
  COMFEDSV_CHECK_OK(trainer.Train(&fanout).status());

  Matrix reference = full_recorder.UtilityMatrix();
  ObservationSet obs = observed.BuildObservations();
  std::printf("observed density: %.4f (%zu of %d x %d entries)\n\n",
              obs.Density(), obs.size(), obs.num_rows(), obs.num_cols());

  Table table({"rank r", "relative diff ||U-WH'||/||U||", "observed RMSE",
               "iters"});
  for (int r = 1; r <= 10; ++r) {
    CompletionConfig ccfg;
    ccfg.rank = r;
    ccfg.solver = solver;
    ccfg.lambda = lambda;
    ccfg.temporal_smoothing = mu;
    ccfg.max_iters = 300;
    ccfg.seed = 100 + r;
    Result<CompletionResult> fit = CompleteMatrix(obs, ccfg);
    COMFEDSV_CHECK_OK(fit.status());

    // Assemble W H^T in the reference's (bitmask) column order.
    double err_sq = 0.0;
    for (size_t t = 0; t < reference.rows(); ++t) {
      for (uint32_t mask = 0; mask < reference.cols(); ++mask) {
        Coalition c(num_clients);
        for (int i = 0; i < num_clients; ++i) {
          if (mask & (1u << i)) c.Add(i);
        }
        const int col = observed.interner().Find(c);
        COMFEDSV_CHECK_GE(col, 0);
        const double d =
            reference(t, mask) -
            fit.value().Predict(static_cast<int>(t), col);
        err_sq += d * d;
      }
    }
    const double rel = std::sqrt(err_sq) / reference.FrobeniusNorm();
    table.AddRow({std::to_string(r), Table::Num(rel),
                  Table::Num(fit.value().observed_rmse),
                  std::to_string(fit.value().iterations)});
  }
  std::printf("%s\n", table.ToText().c_str());
  std::printf(
      "Shape check vs paper: error drops steeply for small r, then\n"
      "flattens/worsens slightly for large r (overfitting), as in "
      "Fig. 3.\n");
  return 0;
}

}  // namespace comfedsv

int main(int argc, char** argv) { return comfedsv::Fig3Main(argc, argv); }
