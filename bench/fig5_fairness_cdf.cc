// Figure 5: fairness comparison. Clients 0 and 9 hold identical data.
// Across repeated runs, the empirical CDF of the relative difference
// d_{0,9} for ComFedSV should stochastically dominate FedSV's (i.e.
// P(d <= t) is uniformly higher): identical clients receive more similar
// evaluations under ComFedSV.
//
// Paper setting: non-IID, 10 clients (client 9 = copy of client 0), 10
// rounds, 3 clients per round, 50 repeats, four datasets.
#include "bench_common.h"

namespace comfedsv {

int Fig5Main(int argc, char** argv) {
  const bool full = bench::FullScale(argc, argv);
  bench::PrintHeader(
      "Figure 5",
      "Empirical CDF of d_{0,9} (identical clients) for FedSV vs "
      "ComFedSV.",
      full);

  const int repeats = full ? 50 : 12;
  const int rounds = 10;

  for (bench::PaperDataset which : bench::AllPaperDatasets()) {
    bench::WorkloadOptions opt;
    opt.num_clients = 9;
    opt.samples_per_client = full ? 120 : 70;
    opt.test_samples = full ? 200 : 100;
    opt.noniid = true;
    opt.seed = 500 + static_cast<uint64_t>(which);
    bench::Workload w = bench::MakeWorkload(which, opt);
    w.clients.push_back(w.clients[0]);  // client 9 duplicates client 0

    std::vector<double> fedsv_diffs, comfedsv_diffs;
    for (int rep = 0; rep < repeats; ++rep) {
      FedAvgConfig fcfg;
      fcfg.num_rounds = rounds;
      fcfg.clients_per_round = 3;
      fcfg.select_all_first_round = true;  // Assumption 1 for ComFedSV
      fcfg.lr = LearningRateSchedule::Constant(0.3);
      fcfg.seed = 9000 + rep;

      ValuationRequest req;
      req.compute_fedsv = true;
      req.fedsv.mode = FedSvConfig::Mode::kExact;
      req.compute_comfedsv = true;
      req.comfedsv.mode = ComFedSvConfig::Mode::kFull;
      req.comfedsv.completion.rank = 3;
      req.comfedsv.completion.lambda = 1e-4;
      req.comfedsv.completion.temporal_smoothing = 0.1;
      req.comfedsv.completion.max_iters = 150;
      req.comfedsv.completion.seed = rep;
      req.compute_ground_truth = false;

      Result<ValuationOutcome> outcome = RunValuation(
          *w.model, w.clients, w.test, fcfg, req);
      COMFEDSV_CHECK_OK(outcome.status());
      const Vector& sv = *outcome.value().fedsv_values;
      const Vector& cv = outcome.value().comfedsv->values;
      fedsv_diffs.push_back(RelativeDifference(sv[0], sv[9]));
      comfedsv_diffs.push_back(RelativeDifference(cv[0], cv[9]));
    }

    EmpiricalCdf fedsv_cdf(fedsv_diffs);
    EmpiricalCdf comfedsv_cdf(comfedsv_diffs);
    std::printf("dataset=%s model=%s (%d repeats)\n",
                w.dataset_name.c_str(), w.model_name.c_str(), repeats);
    Table table({"t", "P(d<=t) FedSV", "P(d<=t) ComFedSV"});
    for (double t = 0.0; t <= 1.0001; t += 0.125) {
      table.AddRow({Table::Num(t, 3), Table::Num(fedsv_cdf.At(t)),
                    Table::Num(comfedsv_cdf.At(t))});
    }
    std::printf("%s\n", table.ToText().c_str());
  }
  std::printf(
      "Shape check vs paper: the ComFedSV CDF sits on or above the FedSV\n"
      "CDF at every threshold (stochastic dominance) on every dataset.\n");
  return 0;
}

}  // namespace comfedsv

int main(int argc, char** argv) { return comfedsv::Fig5Main(argc, argv); }
