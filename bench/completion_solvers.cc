// Completion-engine bench: wall time and entries/sec of the ALS / CCD++ /
// SGD solvers on synthetic utility-matrix completion problems shaped like
// the sampled (Algorithm 1) pipeline — m ∈ {16,32,64} clients,
// T ∈ {50,200} rounds, observation density ∈ {1%,5%,20%} — at 1 thread
// and --threads (default 4), asserting bit-identical factors across
// thread counts.
//
// For ALS the bench also runs the pre-refactor solver (kept verbatim
// below under `legacy`: lazy vector<vector<int>> adjacency, per-entry
// Observation chasing, per-row heap-allocated normal equations, and a
// separate full objective pass per sweep) on the same problem and
// records the before/after entries-per-second datapoint of the perf
// trajectory. Observations are generated row-major, so the legacy
// solver's entry-order arithmetic matches the CSR sweeps' and the two
// implementations produce bit-identical factors at mu = 0 — the speedup
// is pure engineering, not a numerics change.
//
// Writes BENCH_completion.json.
#include <cmath>
#include <cstring>
#include <limits>
#include <vector>

#include "bench_common.h"
#include "linalg/cholesky.h"

namespace comfedsv {
namespace legacy {

// ----------------------------------------------------------------------
// The pre-refactor ALS path, preserved for the before/after comparison.
// Reads the (finalized) ObservationSet only through entries(), through a
// rebuilt per-row/per-column adjacency — exactly the data layout the
// refactor replaced.

struct Adjacency {
  std::vector<std::vector<int>> by_row;
  std::vector<std::vector<int>> by_col;
};

Adjacency BuildAdjacency(const ObservationSet& obs) {
  Adjacency adj;
  adj.by_row.assign(obs.num_rows(), {});
  adj.by_col.assign(obs.num_cols(), {});
  for (size_t i = 0; i < obs.entries().size(); ++i) {
    adj.by_row[obs.entries()[i].row].push_back(static_cast<int>(i));
    adj.by_col[obs.entries()[i].col].push_back(static_cast<int>(i));
  }
  return adj;
}

double ObjectiveAndRmse(const ObservationSet& obs, const Matrix& w,
                        const Matrix& h, double lambda, double* rmse) {
  const int rank = static_cast<int>(w.cols());
  double sq_err = 0.0;
  for (const Observation& e : obs.entries()) {
    const double* wr = w.RowPtr(e.row);
    const double* hr = h.RowPtr(e.col);
    double pred = 0.0;
    for (int k = 0; k < rank; ++k) pred += wr[k] * hr[k];
    const double d = e.value - pred;
    sq_err += d * d;
  }
  if (rmse != nullptr) {
    *rmse = obs.empty() ? 0.0
                        : std::sqrt(sq_err / static_cast<double>(obs.size()));
  }
  const double wf = w.FrobeniusNorm();
  const double hf = h.FrobeniusNorm();
  return sq_err + lambda * (wf * wf + hf * hf);
}

void AlsHalfSweep(const ObservationSet& obs, const Adjacency& adj,
                  bool solve_rows_side, const Matrix& fixed, double lambda,
                  Matrix* target) {
  const int rank = static_cast<int>(fixed.cols());
  const int n = solve_rows_side ? obs.num_rows() : obs.num_cols();
  for (int i = 0; i < n; ++i) {
    const std::vector<int>& idx =
        solve_rows_side ? adj.by_row[i] : adj.by_col[i];
    if (idx.empty()) continue;  // stays at its init
    Matrix normal(rank, rank);
    Vector rhs(rank);
    for (int a = 0; a < rank; ++a) normal(a, a) = lambda;
    for (int e : idx) {
      const Observation& o = obs.entries()[e];
      const int other = solve_rows_side ? o.col : o.row;
      const double* f = fixed.RowPtr(other);
      for (int a = 0; a < rank; ++a) {
        rhs[a] += o.value * f[a];
        for (int b = a; b < rank; ++b) normal(a, b) += f[a] * f[b];
      }
    }
    for (int a = 0; a < rank; ++a) {
      for (int b = 0; b < a; ++b) normal(a, b) = normal(b, a);
    }
    Result<Vector> solution = SolveSpd(normal, rhs);
    COMFEDSV_CHECK_OK(solution.status());
    target->SetRow(i, solution.value());
  }
}

void CopyLeadingColumns(const Matrix& src, int k, Matrix* dst) {
  for (size_t i = 0; i < src.rows(); ++i) {
    for (int c = 0; c < k; ++c) (*dst)(i, c) = src(i, c);
  }
}

// The full pre-refactor ALS solve (mu = 0), including the staged rank
// growth and the identical random init, so outputs are comparable bit
// for bit with the production solver on row-major observation sets.
CompletionResult CompleteAls(const ObservationSet& obs,
                             const CompletionConfig& cfg) {
  Rng rng(cfg.seed ^ 0x4D435000ULL);
  Matrix w(obs.num_rows(), cfg.rank);
  Matrix h(obs.num_cols(), cfg.rank);
  double init_scale = cfg.init_scale;
  if (init_scale <= 0.0) {
    double mean_abs = 0.0;
    for (const Observation& e : obs.entries()) {
      mean_abs += std::fabs(e.value);
    }
    mean_abs /= static_cast<double>(obs.size());
    init_scale =
        (mean_abs > 0.0) ? 0.1 * std::sqrt(mean_abs / cfg.rank) : 0.1;
  }
  for (size_t i = 0; i < w.rows(); ++i) {
    for (size_t j = 0; j < w.cols(); ++j) {
      w(i, j) = rng.NextGaussian(0.0, init_scale);
    }
  }
  for (size_t i = 0; i < h.rows(); ++i) {
    for (size_t j = 0; j < h.cols(); ++j) {
      h(i, j) = rng.NextGaussian(0.0, init_scale);
    }
  }

  const Adjacency adj = BuildAdjacency(obs);
  const int warm_iters = std::max(5, cfg.max_iters / (2 * cfg.rank));
  for (int k = 1; k < cfg.rank; ++k) {
    Matrix wk(w.rows(), k);
    Matrix hk(h.rows(), k);
    CopyLeadingColumns(w, k, &wk);
    CopyLeadingColumns(h, k, &hk);
    for (int it = 0; it < warm_iters; ++it) {
      AlsHalfSweep(obs, adj, /*solve_rows_side=*/true, hk, cfg.lambda, &wk);
      AlsHalfSweep(obs, adj, /*solve_rows_side=*/false, wk, cfg.lambda,
                   &hk);
    }
    CopyLeadingColumns(wk, k, &w);
    CopyLeadingColumns(hk, k, &h);
  }

  double prev_obj = ObjectiveAndRmse(obs, w, h, cfg.lambda, nullptr);
  int iters = 0;
  for (; iters < cfg.max_iters; ++iters) {
    AlsHalfSweep(obs, adj, /*solve_rows_side=*/true, h, cfg.lambda, &w);
    AlsHalfSweep(obs, adj, /*solve_rows_side=*/false, w, cfg.lambda, &h);
    const double obj = ObjectiveAndRmse(obs, w, h, cfg.lambda, nullptr);
    if (prev_obj - obj <= cfg.tolerance * std::max(1.0, prev_obj)) {
      ++iters;
      break;
    }
    prev_obj = obj;
  }
  CompletionResult out;
  out.w = std::move(w);
  out.h = std::move(h);
  out.iterations = iters;
  out.objective =
      ObjectiveAndRmse(obs, out.w, out.h, cfg.lambda, &out.observed_rmse);
  return out;
}

}  // namespace legacy

namespace {

// A sampled-mode-shaped completion problem: T rounds x (one column per
// distinct permutation prefix, ~ m log2(m) of them), rank-5 ground truth,
// row-major Bernoulli sampling with at least one observation per row.
ObservationSet MakeProblem(int rows, int cols, double density,
                           uint64_t seed) {
  const int true_rank = 5;
  Rng rng(seed);
  Matrix a(rows, true_rank), b(true_rank, cols);
  for (size_t i = 0; i < a.rows(); ++i) {
    for (int k = 0; k < true_rank; ++k) a(i, k) = rng.NextGaussian();
  }
  for (int k = 0; k < true_rank; ++k) {
    for (size_t j = 0; j < b.cols(); ++j) b(k, j) = rng.NextGaussian();
  }
  Matrix truth = Matrix::Multiply(a, b);
  ObservationSet obs(rows, cols);
  for (int i = 0; i < rows; ++i) {
    bool any = false;
    for (int j = 0; j < cols; ++j) {
      if (rng.NextBernoulli(density)) {
        obs.Add(i, j, truth(i, j));
        any = true;
      }
    }
    if (!any) {
      // Keep every round observed at least once, like the empty-
      // coalition anchor does in the real recorders; appended at the end
      // of the row so the set stays row-major.
      const int j = static_cast<int>(rng.NextUint64(cols));
      obs.Add(i, j, truth(i, j));
    }
  }
  obs.Finalize();
  return obs;
}

struct SolverVariant {
  const char* name;
  CompletionSolver solver;
  double mu;
};

}  // namespace

int CompletionSolversMain(int argc, char** argv) {
  const bool full = bench::FullScale(argc, argv);
  const int threads = bench::BenchThreads(argc, argv);
  bench::PrintHeader(
      "Completion solvers",
      "Throughput of the compressed-sparse completion engine (ALS,\n"
      "CCD++, SGD) across client counts, round counts and observation\n"
      "densities, vs the pre-refactor scalar ALS solver.",
      full);

  bench::BenchJsonWriter json("completion");
  json.Meta("threads_compared", static_cast<double>(threads));
  const int rank = 5;
  // Sweep cost is isolated by iteration differencing: each solver runs
  // at iters_lo and iters_hi sweeps (min wall time over `repeats` runs
  // each) and the per-sweep time is the slope. This removes the shared
  // init / staged-warm-start / final-report costs both the refactored
  // and the legacy solver pay, and min-of-N tames this container's
  // scheduler noise.
  const int iters_lo = 5;
  const int iters_hi = full ? 50 : 25;
  const int repeats = full ? 5 : 3;
  json.Meta("rank", static_cast<double>(rank));
  json.Meta("iters_lo", static_cast<double>(iters_lo));
  json.Meta("iters_hi", static_cast<double>(iters_hi));
  json.Meta("repeats", static_cast<double>(repeats));

  const SolverVariant variants[] = {
      {"als", CompletionSolver::kAls, 0.0},
      {"als+mu", CompletionSolver::kAls, 0.1},
      {"ccd++", CompletionSolver::kCcd, 0.0},
      {"sgd", CompletionSolver::kSgd, 0.0},
  };

  ExecutionContext threaded(threads);
  bool all_identical = true;
  bool acceptance_met = true;

  Table table({"m", "T", "cols", "density", "nnz", "solver", "1t secs",
               std::to_string(threads) + "t secs", "speedup", "entries/s",
               "legacy x"});
  for (int m : {16, 32, 64}) {
    // One column per distinct Algorithm-1 permutation prefix,
    // ~ m * log2(m), plus the empty-coalition anchor.
    const int cols =
        m * static_cast<int>(std::ceil(std::log2(static_cast<double>(m)))) +
        1;
    for (int rows : {50, 200}) {
      for (double density : {0.01, 0.05, 0.2}) {
        ObservationSet obs = MakeProblem(
            rows, cols, density,
            static_cast<uint64_t>(m * 1000 + rows + density * 100));
        const double nnz = static_cast<double>(obs.size());

        for (const SolverVariant& v : variants) {
          CompletionConfig cfg;
          cfg.rank = rank;
          cfg.lambda = 1e-3;
          cfg.max_iters = iters_hi;
          // Never converge early: the differenced sweep timing divides
          // by (iters_hi - iters_lo), so every run must execute exactly
          // max_iters sweeps (tolerance 0 would still stop once the
          // objective plateaus; -inf never fires).
          cfg.tolerance = -std::numeric_limits<double>::infinity();
          cfg.temporal_smoothing = v.mu;
          cfg.solver = v.solver;
          cfg.seed = 4242;
          CompletionConfig cfg_lo = cfg;
          cfg_lo.max_iters = iters_lo;

          auto min_secs = [&](const CompletionConfig& c,
                              ExecutionContext* ctx,
                              Result<CompletionResult>* last) {
            double best = 1e30;
            for (int r = 0; r < repeats; ++r) {
              Stopwatch t;
              Result<CompletionResult> fit = CompleteMatrix(obs, c, ctx);
              best = std::min(best, t.ElapsedSeconds());
              COMFEDSV_CHECK_OK(fit.status());
              if (last != nullptr) *last = std::move(fit);
            }
            return best;
          };

          Result<CompletionResult> fit1 = Status::Internal("unset");
          Result<CompletionResult> fitn = Status::Internal("unset");
          const double secs_lo = min_secs(cfg_lo, nullptr, nullptr);
          const double secs_1t = min_secs(cfg, nullptr, &fit1);
          const double secs_nt = min_secs(cfg, &threaded, &fitn);
          COMFEDSV_CHECK_EQ(fit1.value().iterations, iters_hi);
          const double sweep_secs =
              std::max(1e-9, (secs_1t - secs_lo) / (iters_hi - iters_lo));

          const bool identical = fit1.value().w == fitn.value().w &&
                                 fit1.value().h == fitn.value().h;
          all_identical = all_identical && identical;

          // Observed entries processed per second of one full
          // alternating sweep, single-threaded.
          const double entries_per_sec = nnz / sweep_secs;

          json.BeginRecord();
          json.Field("solver", v.name);
          json.Field("clients", static_cast<double>(m));
          json.Field("rows", static_cast<double>(rows));
          json.Field("cols", static_cast<double>(cols));
          json.Field("density", density);
          json.Field("observed_entries", nnz);
          json.Field("iterations",
                     static_cast<double>(fit1.value().iterations));
          json.Field("seconds_1_thread", secs_1t);
          json.Field("seconds_n_threads", secs_nt);
          json.Field("speedup", secs_1t / secs_nt);
          json.Field("sweep_seconds_1_thread", sweep_secs);
          json.Field("entries_per_sec_1_thread", entries_per_sec);
          json.Field("bit_identical_across_threads", identical);

          double legacy_ratio = 0.0;
          if (v.solver == CompletionSolver::kAls && v.mu == 0.0) {
            // Before/after datapoint: the pre-refactor solver on the
            // same problem, same init, same sweep counts. The refactored
            // engine solves its normal equations by register-resident
            // LDL^T with cached pivot reciprocals where the legacy
            // SolveSpd Cholesky divided, so agreement is checked at
            // accumulated-ulp tolerance rather than bit for bit.
            auto legacy_min_secs = [&](int iters,
                                       CompletionResult* last) {
              CompletionConfig c = cfg;
              c.max_iters = iters;
              double best = 1e30;
              for (int r = 0; r < repeats; ++r) {
                Stopwatch t;
                CompletionResult fit = legacy::CompleteAls(obs, c);
                best = std::min(best, t.ElapsedSeconds());
                if (last != nullptr) *last = std::move(fit);
              }
              return best;
            };
            CompletionResult legacy_fit;
            const double legacy_lo = legacy_min_secs(iters_lo, nullptr);
            const double legacy_hi = legacy_min_secs(iters_hi, &legacy_fit);
            COMFEDSV_CHECK_EQ(legacy_fit.iterations, iters_hi);
            const double legacy_sweep = std::max(
                1e-9, (legacy_hi - legacy_lo) / (iters_hi - iters_lo));
            const double w_rel =
                fit1.value().w.FrobeniusDistance(legacy_fit.w) /
                std::max(1e-30, legacy_fit.w.FrobeniusNorm());
            const double h_rel =
                fit1.value().h.FrobeniusDistance(legacy_fit.h) /
                std::max(1e-30, legacy_fit.h.FrobeniusNorm());
            const bool matches_legacy = w_rel < 1e-6 && h_rel < 1e-6;
            all_identical = all_identical && matches_legacy;
            legacy_ratio = legacy_sweep / sweep_secs;
            json.Field("seconds_legacy_1_thread", legacy_hi);
            json.Field("sweep_seconds_legacy_1_thread", legacy_sweep);
            json.Field("entries_per_sec_before", nnz / legacy_sweep);
            json.Field("entries_per_sec_after", entries_per_sec);
            json.Field("sweep_speedup_vs_legacy", legacy_ratio);
            json.Field("end_to_end_speedup_vs_legacy",
                       legacy_hi / secs_1t);
            json.Field("legacy_factor_rel_err", std::max(w_rel, h_rel));
            json.Field("matches_legacy", matches_legacy);
            // The acceptance cell of the perf trajectory.
            if (m == 32 && rows == 200 && density == 0.05) {
              json.Meta("acceptance_sweep_speedup_vs_legacy",
                        legacy_ratio);
              json.Meta("acceptance_end_to_end_speedup_vs_legacy",
                        legacy_hi / secs_1t);
              acceptance_met = legacy_ratio >= 2.0;
            }
          }

          table.AddRow(
              {std::to_string(m), std::to_string(rows),
               std::to_string(cols), Table::Num(density, 2),
               std::to_string(static_cast<int>(nnz)), v.name,
               Table::Num(secs_1t, 4), Table::Num(secs_nt, 4),
               Table::Num(secs_1t / secs_nt, 2),
               Table::Num(entries_per_sec, 0),
               legacy_ratio > 0.0 ? Table::Num(legacy_ratio, 2) : "-"});
        }
      }
    }
  }
  std::printf("%s\n", table.ToText().c_str());
  std::printf(
      "Factors bit-identical across thread counts (and ALS matching the\n"
      "pre-refactor solver at ulp tolerance): %s. ALS sweep speedup vs\n"
      "pre-refactor at the acceptance cell (m=32, T=200, 5%% density):\n"
      "%s.\n",
      all_identical ? "yes" : "NO — determinism regression",
      acceptance_met ? ">= 2x" : "BELOW 2x");
  json.Meta("bit_identical_everywhere", all_identical ? 1.0 : 0.0);
  json.WriteFile();
  // Exit status gates correctness only (determinism / legacy agreement).
  // The acceptance speedup is recorded in the JSON for the perf
  // trajectory but not turned into an exit code: wall-clock ratios on
  // shared CI runners are too noisy to fail a build on.
  return all_identical ? 0 : 1;
}

}  // namespace comfedsv

int main(int argc, char** argv) {
  return comfedsv::CompletionSolversMain(argc, argv);
}
