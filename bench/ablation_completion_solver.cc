// Ablation: completion-solver choice (ALS vs CCD++ vs SGD) and the
// temporal-smoothness extension, on a real utility-matrix completion
// problem. Reports the relative error against the fully observed matrix,
// the observed-entry RMSE, and the solve time.
#include <cmath>

#include "bench_common.h"

namespace comfedsv {

int AblationSolverMain(int argc, char** argv) {
  const bool full = bench::FullScale(argc, argv);
  bench::PrintHeader(
      "Ablation: completion solver",
      "ALS / CCD++ / SGD, each with and without temporal smoothing,\n"
      "on the MNIST-sim utility-matrix completion problem (rank 3).",
      full);

  const int num_clients = 10;
  const int rounds = full ? 60 : 25;

  bench::WorkloadOptions opt;
  opt.num_clients = num_clients;
  opt.samples_per_client = 80;
  opt.test_samples = 100;
  opt.noniid = true;
  opt.seed = 333;
  bench::Workload w =
      bench::MakeWorkload(bench::PaperDataset::kMnist, opt);

  FedAvgConfig fcfg;
  fcfg.num_rounds = rounds;
  fcfg.clients_per_round = 3;
  fcfg.select_all_first_round = true;
  fcfg.lr = LearningRateSchedule::InverseDecay(0.5, 1.0);
  fcfg.seed = 335;

  GroundTruthEvaluator full_recorder(w.model.get(), &w.test, num_clients);
  ObservedUtilityRecorder observed(w.model.get(), &w.test, num_clients);
  FanoutObserver fanout;
  fanout.Register(&full_recorder);
  fanout.Register(&observed);
  FedAvgTrainer trainer(w.model.get(), w.clients, w.test, fcfg);
  COMFEDSV_CHECK_OK(trainer.Train(&fanout).status());

  Matrix reference = full_recorder.UtilityMatrix();
  ObservationSet obs = observed.BuildObservations();

  auto relative_error = [&](const CompletionResult& fit) {
    double err_sq = 0.0;
    for (size_t t = 0; t < reference.rows(); ++t) {
      for (uint32_t mask = 0; mask < reference.cols(); ++mask) {
        Coalition c(num_clients);
        for (int i = 0; i < num_clients; ++i) {
          if (mask & (1u << i)) c.Add(i);
        }
        const double d =
            reference(t, mask) -
            fit.Predict(static_cast<int>(t),
                        observed.interner().Find(c));
        err_sq += d * d;
      }
    }
    return std::sqrt(err_sq) / reference.FrobeniusNorm();
  };

  Table table({"solver", "temporal mu", "rel. error", "observed RMSE",
               "iters", "secs"});
  for (CompletionSolver solver :
       {CompletionSolver::kAls, CompletionSolver::kCcd,
        CompletionSolver::kSgd}) {
    for (double mu : {0.0, 0.1}) {
      if (solver != CompletionSolver::kAls && mu > 0.0) {
        continue;  // smoothing is implemented for ALS only
      }
      CompletionConfig ccfg;
      ccfg.rank = 3;
      ccfg.lambda = 1e-4;
      ccfg.temporal_smoothing = mu;
      ccfg.max_iters = 300;
      ccfg.solver = solver;
      ccfg.seed = 99;
      Stopwatch timer;
      Result<CompletionResult> fit = CompleteMatrix(obs, ccfg);
      COMFEDSV_CHECK_OK(fit.status());
      table.AddRow({CompletionSolverName(solver), Table::Num(mu, 2),
                    Table::Num(relative_error(fit.value()), 4),
                    Table::Num(fit.value().observed_rmse, 4),
                    std::to_string(fit.value().iterations),
                    Table::Num(timer.ElapsedSeconds(), 3)});
    }
  }
  std::printf("%s\n", table.ToText().c_str());
  std::printf(
      "Check: temporal smoothing (mu=0.1) is the decisive stabilizer for\n"
      "ALS on this observation pattern; CCD++ is the robust paper-faithful\n"
      "fallback without it.\n");
  return 0;
}

}  // namespace comfedsv

int main(int argc, char** argv) {
  return comfedsv::AblationSolverMain(argc, argv);
}
