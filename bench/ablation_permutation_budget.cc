// Ablation: Monte-Carlo permutation budget M of Algorithm 1.
//
// Sweeps M and reports the Spearman correlation between the sampled
// ComFedSV and the exact (full Def. 4) ComFedSV computed on the same
// training run — quantifying the O(N log N) sample-complexity claim of
// Sec. VI-E empirically.
#include "bench_common.h"

namespace comfedsv {

int AblationPermutationsMain(int argc, char** argv) {
  const bool full = bench::FullScale(argc, argv);
  bench::PrintHeader(
      "Ablation: Algorithm 1 permutation budget",
      "Rank agreement (Spearman) of sampled ComFedSV with the exact\n"
      "Def. 4 values as the number of sampled permutations M grows.",
      full);

  const int num_clients = 8;
  const int rounds = full ? 20 : 12;

  bench::WorkloadOptions opt;
  opt.num_clients = num_clients;
  opt.samples_per_client = 70;
  opt.test_samples = 100;
  opt.noniid = true;
  opt.seed = 444;
  bench::Workload w =
      bench::MakeWorkload(bench::PaperDataset::kMnist, opt);
  // Heterogeneous client quality so there is a real ranking to recover.
  Rng noise_rng(445);
  for (int i = 0; i < num_clients; ++i) {
    FlipLabels(&w.clients[i], 0.1 * i, &noise_rng);
  }

  FedAvgConfig fcfg;
  fcfg.num_rounds = rounds;
  fcfg.clients_per_round = 3;
  fcfg.select_all_first_round = true;
  fcfg.lr = LearningRateSchedule::Constant(0.3);
  fcfg.seed = 447;

  CompletionConfig completion;
  completion.rank = 3;
  completion.lambda = 1e-4;
  completion.temporal_smoothing = 0.1;
  completion.max_iters = 150;

  // Exact reference on this run.
  ComFedSvConfig exact_cfg;
  exact_cfg.mode = ComFedSvConfig::Mode::kFull;
  exact_cfg.completion = completion;
  ComFedSvEvaluator exact_eval(w.model.get(), &w.test, num_clients,
                               exact_cfg);

  std::vector<int> budgets = {4, 8, 16, 32, 64, 128};
  std::vector<std::unique_ptr<ComFedSvEvaluator>> sampled_evals;
  FanoutObserver fanout;
  fanout.Register(&exact_eval);
  for (int m : budgets) {
    ComFedSvConfig cfg;
    cfg.mode = ComFedSvConfig::Mode::kSampled;
    cfg.num_permutations = m;
    cfg.completion = completion;
    cfg.seed = 1000 + m;
    sampled_evals.push_back(std::make_unique<ComFedSvEvaluator>(
        w.model.get(), &w.test, num_clients, cfg));
    fanout.Register(sampled_evals.back().get());
  }

  FedAvgTrainer trainer(w.model.get(), w.clients, w.test, fcfg);
  COMFEDSV_CHECK_OK(trainer.Train(&fanout).status());

  Result<ComFedSvOutput> exact = exact_eval.Finalize();
  COMFEDSV_CHECK_OK(exact.status());
  std::vector<double> exact_values(exact.value().values.begin(),
                                   exact.value().values.end());

  const int suggested = DefaultPermutationBudget(num_clients);
  Table table({"M", "spearman vs exact", "loss calls", "columns"});
  for (size_t b = 0; b < budgets.size(); ++b) {
    Result<ComFedSvOutput> out = sampled_evals[b]->Finalize();
    COMFEDSV_CHECK_OK(out.status());
    std::vector<double> v(out.value().values.begin(),
                          out.value().values.end());
    Result<double> rho = SpearmanCorrelation(exact_values, v);
    table.AddRow({std::to_string(budgets[b]),
                  rho.ok() ? Table::Num(rho.value(), 3) : "n/a",
                  std::to_string(out.value().loss_calls),
                  std::to_string(out.value().num_columns)});
  }
  std::printf("%s\n", table.ToText().c_str());
  std::printf("Sec. VI-E suggests M = O(N log N) ~ %d for N = %d.\n"
              "Check: agreement rises with M and saturates around the\n"
              "suggested budget.\n",
              suggested, num_clients);
  return 0;
}

}  // namespace comfedsv

int main(int argc, char** argv) {
  return comfedsv::AblationPermutationsMain(argc, argv);
}
