// Example 1: FedSV violates symmetry. Clients 0 and 9 hold identical
// data; across repeated runs with 3-of-10 selection the relative
// difference d_{0,9} between their FedSVs exceeds 0.5 with high
// probability (the paper reports ~65% on MNIST).
#include "bench_common.h"

namespace comfedsv {

int Example1Main(int argc, char** argv) {
  const bool full = bench::FullScale(argc, argv);
  bench::PrintHeader(
      "Example 1",
      "P(d_{0,9} > 0.5) for FedSV with duplicated clients 0 and 9\n"
      "(MNIST-sim, non-IID, 10 rounds, 3 of 10 clients per round).",
      full);

  const int repeats = full ? 50 : 20;
  const int rounds = 10;

  bench::WorkloadOptions opt;
  opt.num_clients = 9;  // client 9 is added as a copy of client 0
  opt.samples_per_client = full ? 120 : 80;
  opt.test_samples = full ? 200 : 120;
  opt.noniid = true;
  opt.seed = 42;
  bench::Workload w =
      bench::MakeWorkload(bench::PaperDataset::kMnist, opt);
  w.clients.push_back(w.clients[0]);

  int exceed = 0;
  std::vector<double> diffs;
  for (int rep = 0; rep < repeats; ++rep) {
    FedAvgConfig fcfg;
    fcfg.num_rounds = rounds;
    fcfg.clients_per_round = 3;
    fcfg.select_all_first_round = false;  // plain FedAvg, as in Example 1
    fcfg.lr = LearningRateSchedule::Constant(0.3);
    fcfg.seed = 1000 + rep;

    FedSvConfig scfg;
    scfg.mode = FedSvConfig::Mode::kExact;
    FedSvEvaluator fedsv(w.model.get(), &w.test, 10, scfg);
    FedAvgTrainer trainer(w.model.get(), w.clients, w.test, fcfg);
    COMFEDSV_CHECK_OK(trainer.Train(&fedsv).status());

    const double d =
        RelativeDifference(fedsv.values()[0], fedsv.values()[9]);
    diffs.push_back(d);
    if (d > 0.5) ++exceed;
  }

  EmpiricalCdf cdf(diffs);
  Table table({"threshold t", "P(d_{0,9} <= t)"});
  for (double t = 0.0; t <= 1.0001; t += 0.1) {
    table.AddRow({Table::Num(t, 2), Table::Num(cdf.At(t))});
  }
  std::printf("%s\n", table.ToText().c_str());
  std::printf("P(d_{0,9} > 0.5) = %.2f over %d repeats (paper: ~0.65)\n",
              static_cast<double>(exceed) / repeats, repeats);
  return 0;
}

}  // namespace comfedsv

int main(int argc, char** argv) {
  return comfedsv::Example1Main(argc, argv);
}
