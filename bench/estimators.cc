// Estimator-accuracy bench: MSE versus loss-call budget for every
// permutation sampler (shapley/sampler.h) on an 8-client reference game
// with exact ground truth.
//
// The paper's large-K regime (Sec. VII-D) is pure permutation-sampling
// Monte Carlo, and Fig. 8 measures cost in test-loss evaluations — so
// the question that matters is accuracy *per loss call*, not per
// permutation. This bench plays two closed-form games:
//
//   * "mixed"      — additive weights + curvature in |S| + pairwise
//                    synergies: the positional variance component that
//                    antithetic pairs and position-stratified blocks are
//                    built to cancel, plus identity noise so uniform IID
//                    has honest nonzero MSE.
//   * "saturating" — utility approaches U(grand) geometrically in |S|:
//                    the regime where truncated walks skip the tail's
//                    loss calls at a tolerance-bounded bias.
//
// Loss calls are counted the way the real pipeline counts them: one per
// *distinct* coalition (RoundUtility memoizes within a round), with the
// raw prefix-evaluation count recorded alongside.
//
// Writes BENCH_estimators.json (schema notes in README.md).
#include <cmath>
#include <cstdio>
#include <limits>
#include <unordered_map>
#include <vector>

#include "bench_common.h"

namespace comfedsv {
namespace bench {
namespace {

constexpr int kPlayers = 8;

// The mixed reference game. Marginal contribution of the player entering
// at position p splits into an identity part (its own weight + synergy
// completions) and a positional part from the curvature terms — the
// latter is what variance-reduced samplers cancel. The sqrt curvature
// (marginal nonlinear in p) and the triple synergy keep the antithetic
// cancellation partial, so every sampler has honest nonzero MSE.
double MixedGame(const Coalition& c) {
  static const double kWeights[kPlayers] = {0.50, 0.65, 0.80, 0.95,
                                            1.10, 1.25, 1.40, 1.55};
  double total = 0.0;
  for (int m : c.Members()) total += kWeights[m];
  const double k = static_cast<double>(c.Count());
  total += 4.0 * (k / kPlayers) * (k / kPlayers);
  total += 1.5 * std::sqrt(k / kPlayers);
  if (c.Contains(0) && c.Contains(7)) total += 0.6;
  if (c.Contains(2) && c.Contains(5)) total += 0.6;
  if (c.Contains(1) && c.Contains(3) && c.Contains(6)) total += 0.9;
  return total;
}

// The saturating reference game: U(S) = 1 - exp(-1.1 |S|) plus tiny
// per-player weights (so players are not fully symmetric) and one small
// pair synergy (so the position-stratified sampler's variance is finite
// instead of exactly zero — a purely positional game is solved exactly
// by one rotation block). Marginals decay geometrically, so a truncated
// walk with a moderate tolerance stops after a handful of positions; the
// synergy is kept below the tolerance so truncation still triggers.
double SaturatingGame(const Coalition& c) {
  const double k = static_cast<double>(c.Count());
  double total = 1.0 - std::exp(-1.1 * k);
  for (int m : c.Members()) total += 0.002 * (m + 1);
  if (c.Contains(0) && c.Contains(3)) total += 0.03;
  return total;
}

// Memoizing utility wrapper with pipeline-style accounting: `loss_calls`
// counts distinct coalitions (what RoundUtility's memo cache would
// charge), `prefix_evals` counts raw utility reads.
struct CountingUtility {
  UtilityFn game;
  std::unordered_map<Coalition, double, CoalitionHash> cache;
  int64_t loss_calls = 0;
  int64_t prefix_evals = 0;

  double operator()(const Coalition& c) {
    ++prefix_evals;
    auto it = cache.find(c);
    if (it != cache.end()) return it->second;
    ++loss_calls;
    const double u = game(c);
    cache.emplace(c, u);
    return u;
  }
};

struct SamplerRun {
  double mse = 0.0;
  double avg_loss_calls = 0.0;
  double avg_prefix_evals = 0.0;
};

// Runs `repetitions` independent estimates at `permutations` orderings
// and returns MSE vs `exact` (mean over players and repetitions) plus
// average spend.
SamplerRun RunSampler(const UtilityFn& game, const Vector& exact,
                      const SamplerConfig& cfg, int permutations,
                      int repetitions, uint64_t seed_base) {
  std::vector<int> players(kPlayers);
  for (int i = 0; i < kPlayers; ++i) players[i] = i;

  SamplerRun out;
  double sq_err = 0.0;
  for (int rep = 0; rep < repetitions; ++rep) {
    CountingUtility counting{game, {}, 0, 0};
    UtilityFn fn = [&counting](const Coalition& c) { return counting(c); };
    Rng rng(seed_base + static_cast<uint64_t>(rep));
    Result<Vector> est = MonteCarloShapley(kPlayers, players, fn,
                                           permutations, &rng,
                                           /*pool=*/nullptr,
                                           /*prefetch=*/nullptr, cfg);
    COMFEDSV_CHECK_OK(est.status());
    for (int i = 0; i < kPlayers; ++i) {
      const double d = est.value()[i] - exact[i];
      sq_err += d * d;
    }
    out.avg_loss_calls += static_cast<double>(counting.loss_calls);
    out.avg_prefix_evals += static_cast<double>(counting.prefix_evals);
  }
  out.mse = sq_err / (static_cast<double>(repetitions) * kPlayers);
  out.avg_loss_calls /= repetitions;
  out.avg_prefix_evals /= repetitions;
  return out;
}

struct GameSpec {
  const char* name;
  UtilityFn game;
  double truncation_tolerance;
};

}  // namespace

int Main(int argc, char** argv) {
  const bool full = FullScale(argc, argv);
  const int repetitions = IntFlag(argc, argv, "reps", full ? 2000 : 400);
  PrintHeader("estimator accuracy vs loss-call budget",
              "MSE of each permutation sampler against exact Shapley "
              "values on the 8-client reference games (Sec. VII-D cost "
              "model: one loss call per distinct coalition)",
              full);

  BenchJsonWriter json("estimators");
  json.Meta("players", static_cast<double>(kPlayers));
  json.Meta("repetitions", static_cast<double>(repetitions));

  std::vector<int> players(kPlayers);
  for (int i = 0; i < kPlayers; ++i) players[i] = i;

  const GameSpec games[] = {
      {"mixed", MixedGame, 1e-3},
      {"saturating", SaturatingGame, 0.08},
  };
  const SamplerKind kinds[] = {
      SamplerKind::kUniformIid, SamplerKind::kAntithetic,
      SamplerKind::kStratified, SamplerKind::kTruncated};
  const int budgets[] = {8, 16, 32, 64, 128};

  for (const GameSpec& spec : games) {
    Result<Vector> exact = ExactShapley(kPlayers, players, spec.game);
    COMFEDSV_CHECK_OK(exact.status());

    std::printf("[%s] tol=%g\n", spec.name, spec.truncation_tolerance);
    std::printf("  %-11s %6s %12s %12s %12s %14s\n", "sampler", "perms",
                "loss_calls", "prefix_evals", "mse", "mse_vs_uniform");
    for (int permutations : budgets) {
      SamplerRun uniform_run;
      for (SamplerKind kind : kinds) {
        SamplerConfig cfg;
        cfg.kind = kind;
        cfg.truncation_tolerance = spec.truncation_tolerance;
        const SamplerRun run =
            RunSampler(spec.game, exact.value(), cfg, permutations,
                       repetitions, /*seed_base=*/0xE57u);
        if (kind == SamplerKind::kUniformIid) uniform_run = run;
        const double ratio =
            run.mse > 0.0 ? uniform_run.mse / run.mse
                          : std::numeric_limits<double>::infinity();

        json.BeginRecord();
        json.Field("game", spec.name);
        json.Field("sampler", SamplerKindName(kind));
        json.Field("permutations", static_cast<double>(permutations));
        json.Field("truncation_tolerance",
                   kind == SamplerKind::kTruncated
                       ? spec.truncation_tolerance
                       : 0.0);
        json.Field("avg_loss_calls", run.avg_loss_calls);
        json.Field("avg_prefix_evals", run.avg_prefix_evals);
        json.Field("mse", run.mse);
        // Both relative fields are fractions of the uniform-IID run at
        // the same permutation budget: < 1 means fewer/less than uniform.
        json.Field("mse_fraction_of_uniform_iid",
                   uniform_run.mse > 0.0 ? run.mse / uniform_run.mse
                                         : 0.0);
        json.Field("loss_calls_fraction_of_uniform_iid",
                   uniform_run.avg_loss_calls > 0.0
                       ? run.avg_loss_calls / uniform_run.avg_loss_calls
                       : 0.0);

        std::printf("  %-11s %6d %12.1f %12.1f %12.4e %13.2fx\n",
                    SamplerKindName(kind), permutations,
                    run.avg_loss_calls, run.avg_prefix_evals, run.mse,
                    ratio);
      }
    }
    std::printf("\n");
  }

  return json.WriteFile() ? 0 : 1;
}

}  // namespace bench
}  // namespace comfedsv

int main(int argc, char** argv) {
  return comfedsv::bench::Main(argc, argv);
}
