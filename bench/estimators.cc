// Estimator-accuracy bench: MSE versus loss-call budget for every
// permutation sampler (shapley/sampler.h) on an 8-client reference game
// with exact ground truth.
//
// The paper's large-K regime (Sec. VII-D) is pure permutation-sampling
// Monte Carlo, and Fig. 8 measures cost in test-loss evaluations — so
// the question that matters is accuracy *per loss call*, not per
// permutation. This bench plays two closed-form games:
//
//   * "mixed"      — additive weights + curvature in |S| + pairwise
//                    synergies: the positional variance component that
//                    antithetic pairs and position-stratified blocks are
//                    built to cancel, plus identity noise so uniform IID
//                    has honest nonzero MSE.
//   * "saturating" — utility approaches U(grand) geometrically in |S|:
//                    the regime where truncated walks skip the tail's
//                    loss calls at a tolerance-bounded bias.
//
// Loss calls are counted the way the real pipeline counts them: one per
// *distinct* coalition (RoundUtility memoizes within a round), with the
// raw prefix-evaluation count recorded alongside.
//
// Writes BENCH_estimators.json (schema notes in README.md).
//
// PR-6 adds the adaptive-budget estimator (sampler "adaptive":
// Neyman reallocation waves over the (player, |S|) cell grid plus
// mirror-paired shared-subset draws, shapley/budget_allocator.h) and
// the surrogate-assisted estimator ("adaptive_surrogate"): fit a
// cheap utility surrogate from a Latin warm-up block, take the exact
// Shapley value of the surrogate for free, and correct it with an
// unbiased stratified estimate of the residual game, auditing and
// refitting until a fresh audit block agrees with the fit. The gate
// section compares both against the best PR-4 sampler per reference
// budget; the headline contract is equal accuracy at <= 0.5x the
// measured loss calls on the mixed game.
#include <cmath>
#include <cstdio>
#include <limits>
#include <map>
#include <set>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "shapley/budget_allocator.h"

#include "bench_common.h"
#include "common/thread_pool.h"

namespace comfedsv {
namespace bench {
namespace {

constexpr int kPlayers = 8;

// The mixed reference game. Marginal contribution of the player entering
// at position p splits into an identity part (its own weight + synergy
// completions) and a positional part from the curvature terms — the
// latter is what variance-reduced samplers cancel. The sqrt curvature
// (marginal nonlinear in p) and the triple synergy keep the antithetic
// cancellation partial, so every sampler has honest nonzero MSE.
double MixedGame(const Coalition& c) {
  static const double kWeights[kPlayers] = {0.50, 0.65, 0.80, 0.95,
                                            1.10, 1.25, 1.40, 1.55};
  double total = 0.0;
  for (int m : c.Members()) total += kWeights[m];
  const double k = static_cast<double>(c.Count());
  total += 4.0 * (k / kPlayers) * (k / kPlayers);
  total += 1.5 * std::sqrt(k / kPlayers);
  if (c.Contains(0) && c.Contains(7)) total += 0.6;
  if (c.Contains(2) && c.Contains(5)) total += 0.6;
  if (c.Contains(1) && c.Contains(3) && c.Contains(6)) total += 0.9;
  return total;
}

// The saturating reference game: U(S) = 1 - exp(-1.1 |S|) plus tiny
// per-player weights (so players are not fully symmetric) and one small
// pair synergy (so the position-stratified sampler's variance is finite
// instead of exactly zero — a purely positional game is solved exactly
// by one rotation block). Marginals decay geometrically, so a truncated
// walk with a moderate tolerance stops after a handful of positions; the
// synergy is kept below the tolerance so truncation still triggers.
double SaturatingGame(const Coalition& c) {
  const double k = static_cast<double>(c.Count());
  double total = 1.0 - std::exp(-1.1 * k);
  for (int m : c.Members()) total += 0.002 * (m + 1);
  if (c.Contains(0) && c.Contains(3)) total += 0.03;
  return total;
}

// Memoizing utility wrapper with pipeline-style accounting: `loss_calls`
// counts distinct coalitions (what RoundUtility's memo cache would
// charge), `prefix_evals` counts raw utility reads.
struct CountingUtility {
  UtilityFn game;
  std::unordered_map<Coalition, double, CoalitionHash> cache;
  int64_t loss_calls = 0;
  int64_t prefix_evals = 0;

  double operator()(const Coalition& c) {
    ++prefix_evals;
    auto it = cache.find(c);
    if (it != cache.end()) return it->second;
    ++loss_calls;
    const double u = game(c);
    cache.emplace(c, u);
    return u;
  }
};

struct SamplerRun {
  double mse = 0.0;
  double avg_loss_calls = 0.0;
  double avg_prefix_evals = 0.0;
};

// Runs `repetitions` independent estimates at `permutations` orderings
// and returns MSE vs `exact` (mean over players and repetitions) plus
// average spend.
SamplerRun RunSampler(const UtilityFn& game, const Vector& exact,
                      const SamplerConfig& cfg, int permutations,
                      int repetitions, uint64_t seed_base) {
  std::vector<int> players(kPlayers);
  for (int i = 0; i < kPlayers; ++i) players[i] = i;

  SamplerRun out;
  double sq_err = 0.0;
  for (int rep = 0; rep < repetitions; ++rep) {
    CountingUtility counting{game, {}, 0, 0};
    UtilityFn fn = [&counting](const Coalition& c) { return counting(c); };
    Rng rng(seed_base + static_cast<uint64_t>(rep));
    Result<Vector> est = MonteCarloShapley(kPlayers, players, fn,
                                           permutations, &rng,
                                           /*pool=*/nullptr,
                                           /*prefetch=*/nullptr, cfg);
    COMFEDSV_CHECK_OK(est.status());
    for (int i = 0; i < kPlayers; ++i) {
      const double d = est.value()[i] - exact[i];
      sq_err += d * d;
    }
    out.avg_loss_calls += static_cast<double>(counting.loss_calls);
    out.avg_prefix_evals += static_cast<double>(counting.prefix_evals);
  }
  out.mse = sq_err / (static_cast<double>(repetitions) * kPlayers);
  out.avg_loss_calls /= repetitions;
  out.avg_prefix_evals /= repetitions;
  return out;
}

struct GameSpec {
  const char* name;
  UtilityFn game;
  double truncation_tolerance;
};

// ---------------------------------------------------------------------
// Surrogate-assisted estimator ("adaptive_surrogate").
//
// The estimator realises the PR-6 surrogate contract at bench scale:
//
//   phi_hat = ExactShapley(U')  +  stratified-mean of (U - U') marginals
//
// where U' is a cheap fitted surrogate (additive weights + per-size
// offsets + greedily selected pair/triple interaction terms). Surrogate
// evaluations are free — only reads of the real game pay a loss call.
// By linearity of the Shapley value the correction term makes the
// estimate unbiased for ANY game: a bad fit costs variance, never bias.
// The audit/refit loop keeps even that cost bounded — a fresh Latin
// block of residual marginals either agrees with the fit (done) or its
// observations join the training set and the surrogate is refit.

// U'(S) = sum_{p in S} w[p] + g[|S|] + sum_j coef_j * 1{F_j subset S}.
struct FittedSurrogate {
  std::vector<double> w;
  std::vector<double> g;  // indexed by |S|, g[0] = 0
  std::vector<std::pair<Coalition, double>> interactions;

  double Predict(const Coalition& c) const {
    double u = g[static_cast<size_t>(c.Count())];
    c.ForEachMember([&](int p) { u += w[static_cast<size_t>(p)]; });
    for (const auto& [feature, coef] : interactions) {
      if (feature.IsSubsetOf(c)) u += coef;
    }
    return u;
  }
};

// Solves (A + lambda I) x = b for symmetric A by Gaussian elimination
// with partial pivoting. Sizes here are <= 16 + max interactions.
std::vector<double> SolveRidge(std::vector<std::vector<double>> a,
                               std::vector<double> b, double lambda) {
  const size_t n = b.size();
  for (size_t i = 0; i < n; ++i) a[i][i] += lambda;
  for (size_t col = 0; col < n; ++col) {
    size_t piv = col;
    for (size_t r = col + 1; r < n; ++r) {
      if (std::fabs(a[r][col]) > std::fabs(a[piv][col])) piv = r;
    }
    std::swap(a[col], a[piv]);
    std::swap(b[col], b[piv]);
    const double d = a[col][col];
    for (size_t r = col + 1; r < n; ++r) {
      const double f = a[r][col] / d;
      if (f == 0.0) continue;
      for (size_t k = col; k < n; ++k) a[r][k] -= f * a[col][k];
      b[r] -= f * b[col];
    }
  }
  std::vector<double> x(n, 0.0);
  for (size_t i = n; i-- > 0;) {
    double s = b[i];
    for (size_t k = i + 1; k < n; ++k) s -= a[i][k] * x[k];
    x[i] = s / a[i][i];
  }
  return x;
}

// Least-squares fit on observed (coalition, utility) pairs. Interaction
// terms are selected greedily on the residuals, pairs before triples —
// a pair needs only two players to co-occur in the observations, so it
// is identifiable from fewer samples than a triple.
FittedSurrogate FitSurrogate(
    const std::vector<std::pair<Coalition, double>>& obs,
    int max_interactions) {
  std::vector<Coalition> pairs, triples;
  for (int i = 0; i < kPlayers; ++i) {
    for (int j = i + 1; j < kPlayers; ++j) {
      pairs.push_back(Coalition::FromMembers(kPlayers, {i, j}));
      for (int k = j + 1; k < kPlayers; ++k) {
        triples.push_back(Coalition::FromMembers(kPlayers, {i, j, k}));
      }
    }
  }

  std::vector<Coalition> selected;
  std::vector<double> beta;
  const auto feature_row = [&](const Coalition& c) {
    std::vector<double> row(16 + selected.size(), 0.0);
    c.ForEachMember([&](int p) { row[static_cast<size_t>(p)] = 1.0; });
    const int size = c.Count();
    if (size >= 1) row[static_cast<size_t>(8 + size - 1)] = 1.0;
    for (size_t j = 0; j < selected.size(); ++j) {
      if (selected[j].IsSubsetOf(c)) row[16 + j] = 1.0;
    }
    return row;
  };
  const auto refit = [&]() {
    const size_t dim = 16 + selected.size();
    std::vector<std::vector<double>> ata(dim,
                                         std::vector<double>(dim, 0.0));
    std::vector<double> atb(dim, 0.0);
    for (const auto& [c, u] : obs) {
      const std::vector<double> row = feature_row(c);
      for (size_t i = 0; i < dim; ++i) {
        if (row[i] == 0.0) continue;
        atb[i] += row[i] * u;
        for (size_t j = 0; j < dim; ++j) ata[i][j] += row[i] * row[j];
      }
    }
    beta = SolveRidge(std::move(ata), std::move(atb), 1e-8);
  };
  refit();

  for (int round = 0; round < max_interactions; ++round) {
    std::vector<double> resid(obs.size(), 0.0);
    double max_resid = 0.0;
    double resid_ss = 0.0;
    for (size_t i = 0; i < obs.size(); ++i) {
      const std::vector<double> row = feature_row(obs[i].first);
      double pred = 0.0;
      for (size_t j = 0; j < row.size(); ++j) pred += row[j] * beta[j];
      resid[i] = obs[i].second - pred;
      max_resid = std::max(max_resid, std::fabs(resid[i]));
      resid_ss += resid[i] * resid[i];
    }
    if (max_resid < 1e-7) break;

    // Single-feature least-squares gain of a candidate indicator column
    // against the current residuals. Candidates firing in almost none
    // or almost all observations are unidentifiable and skipped.
    const auto pick = [&](const std::vector<Coalition>& candidates) {
      double best_gain = 0.0;
      int best = -1;
      for (size_t cand = 0; cand < candidates.size(); ++cand) {
        bool taken = false;
        for (const Coalition& s : selected) {
          if (s == candidates[cand]) taken = true;
        }
        if (taken) continue;
        double rx = 0.0, xx = 0.0;
        for (size_t i = 0; i < obs.size(); ++i) {
          if (candidates[cand].IsSubsetOf(obs[i].first)) {
            rx += resid[i];
            xx += 1.0;
          }
        }
        if (xx < 3.0 || xx > static_cast<double>(obs.size()) - 3.0) {
          continue;
        }
        const double gain = rx * rx / xx;
        if (gain > best_gain) {
          best_gain = gain;
          best = static_cast<int>(cand);
        }
      }
      return std::pair<int, double>(best, best_gain);
    };

    auto [best_pair, pair_gain] = pick(pairs);
    if (best_pair >= 0 && pair_gain >= 0.05 * resid_ss) {
      selected.push_back(pairs[static_cast<size_t>(best_pair)]);
      refit();
      continue;
    }
    auto [best_triple, triple_gain] = pick(triples);
    if (best_triple >= 0 && triple_gain > pair_gain) {
      selected.push_back(triples[static_cast<size_t>(best_triple)]);
      refit();
      continue;
    }
    if (best_pair < 0 || pair_gain < 1e-10) break;
    selected.push_back(pairs[static_cast<size_t>(best_pair)]);
    refit();
  }

  FittedSurrogate s;
  s.w.assign(kPlayers, 0.0);
  s.g.assign(kPlayers + 1, 0.0);
  for (int p = 0; p < kPlayers; ++p) {
    s.w[static_cast<size_t>(p)] = beta[static_cast<size_t>(p)];
  }
  for (int size = 1; size <= kPlayers; ++size) {
    s.g[static_cast<size_t>(size)] = beta[static_cast<size_t>(8 + size - 1)];
  }
  for (size_t j = 0; j < selected.size(); ++j) {
    s.interactions.emplace_back(selected[j], beta[16 + j]);
  }
  return s;
}

struct SurrogateRun {
  double mse = 0.0;
  double avg_loss_calls = 0.0;
  double avg_prefix_evals = 0.0;
  double avg_audit_blocks = 0.0;
  double avg_first_audit_max_residual = 0.0;
};

// One Latin block: the m cyclic rotations of one shuffled order, each
// evaluated as a chained prefix walk, so every (player, position) cell
// gets exactly one marginal at ~m*(m-1)+1 distinct coalitions.
SurrogateRun RunSurrogate(const UtilityFn& game, const Vector& exact,
                          int repetitions, uint64_t seed_base) {
  std::vector<int> players(kPlayers);
  for (int i = 0; i < kPlayers; ++i) players[i] = i;

  SurrogateRun out;
  double sq_err = 0.0;
  for (int rep = 0; rep < repetitions; ++rep) {
    CountingUtility counting{game, {}, 0, 0};
    Rng rng(seed_base + static_cast<uint64_t>(rep));

    // Warm-up block: training observations for the first fit.
    std::vector<std::pair<Coalition, double>> obs;
    std::set<Coalition> observed;
    std::vector<int> order = players;
    rng.Shuffle(&order);
    for (int r = 0; r < kPlayers; ++r) {
      Coalition c(kPlayers);
      for (int pos = 0; pos < kPlayers; ++pos) {
        c.Add(order[static_cast<size_t>((pos + r) % kPlayers)]);
        const double u = counting(c);
        if (observed.insert(c).second) obs.emplace_back(c, u);
      }
    }

    // Fit / audit / refit: each round fits on every observation so far
    // and audits with a fresh Latin block of residual marginals. Large
    // residuals mean missed structure — the block's observations join
    // the training set and the next round refits. The last audit block
    // is always drawn after the last fit, so the correction term below
    // is conditionally unbiased no matter how good the fit is. Per-cell
    // residual marginals stream through the adaptive allocator so the
    // spend decision uses the same Welford stats as the library path.
    FittedSurrogate surrogate;
    AdaptiveBudgetAllocator allocator(kPlayers * kPlayers, 1);
    std::vector<double> residual_sum(kPlayers, 0.0);
    for (int round = 0; round < 4; ++round) {
      surrogate = FitSurrogate(obs, 6);
      residual_sum.assign(kPlayers, 0.0);
      std::vector<int> audit_order = players;
      rng.Shuffle(&audit_order);
      double block_max = 0.0;
      std::vector<std::pair<Coalition, double>> block_obs;
      for (int r = 0; r < kPlayers; ++r) {
        Coalition c(kPlayers);
        double prev = 0.0;
        for (int pos = 0; pos < kPlayers; ++pos) {
          const int p = audit_order[static_cast<size_t>(
              (pos + r) % kPlayers)];
          c.Add(p);
          const double raw = counting(c);
          if (observed.insert(c).second) block_obs.emplace_back(c, raw);
          const double residual = raw - surrogate.Predict(c);
          const double marginal = residual - prev;
          prev = residual;
          residual_sum[static_cast<size_t>(p)] += marginal;
          allocator.Record(p * kPlayers + pos, marginal);
          block_max = std::max(block_max, std::fabs(marginal));
        }
      }
      out.avg_audit_blocks += 1.0;
      if (round == 0) out.avg_first_audit_max_residual += block_max;
      if (block_max < 1e-6) break;
      for (auto& o : block_obs) obs.push_back(o);
    }

    // Exact Shapley of the surrogate costs 2^m surrogate evaluations
    // and zero loss calls.
    const UtilityFn predict = [&surrogate](const Coalition& c) {
      return surrogate.Predict(c);
    };
    Result<Vector> base = ExactShapley(kPlayers, players, predict);
    COMFEDSV_CHECK_OK(base.status());
    for (int i = 0; i < kPlayers; ++i) {
      const double est =
          base.value()[i] + residual_sum[static_cast<size_t>(i)] / kPlayers;
      const double d = est - exact[i];
      sq_err += d * d;
    }
    out.avg_loss_calls += static_cast<double>(counting.loss_calls);
    out.avg_prefix_evals += static_cast<double>(counting.prefix_evals);
  }
  out.mse = sq_err / (static_cast<double>(repetitions) * kPlayers);
  out.avg_loss_calls /= repetitions;
  out.avg_prefix_evals /= repetitions;
  out.avg_audit_blocks /= repetitions;
  out.avg_first_audit_max_residual /= repetitions;
  return out;
}

}  // namespace

int Main(int argc, char** argv) {
  const bool full = FullScale(argc, argv);
  const int repetitions = IntFlag(argc, argv, "reps", full ? 2000 : 400);
  PrintHeader("estimator accuracy vs loss-call budget",
              "MSE of each permutation sampler against exact Shapley "
              "values on the 8-client reference games (Sec. VII-D cost "
              "model: one loss call per distinct coalition)",
              full);

  BenchJsonWriter json("estimators");
  json.Meta("players", static_cast<double>(kPlayers));
  json.Meta("repetitions", static_cast<double>(repetitions));

  std::vector<int> players(kPlayers);
  for (int i = 0; i < kPlayers; ++i) players[i] = i;

  const GameSpec games[] = {
      {"mixed", MixedGame, 1e-3},
      {"saturating", SaturatingGame, 0.08},
  };
  const SamplerKind kinds[] = {
      SamplerKind::kUniformIid, SamplerKind::kAntithetic,
      SamplerKind::kStratified, SamplerKind::kTruncated};
  const int budgets[] = {8, 16, 32, 64, 128};

  // Best PR-4 sampler (lowest MSE) per (game, budget), for the adaptive
  // match-MSE gate below.
  struct BestRun {
    std::string sampler;
    SamplerRun run;
  };
  std::map<std::string, std::map<int, BestRun>> best_pr4;

  for (const GameSpec& spec : games) {
    Result<Vector> exact = ExactShapley(kPlayers, players, spec.game);
    COMFEDSV_CHECK_OK(exact.status());

    std::printf("[%s] tol=%g\n", spec.name, spec.truncation_tolerance);
    std::printf("  %-11s %6s %12s %12s %12s %14s\n", "sampler", "perms",
                "loss_calls", "prefix_evals", "mse", "mse_vs_uniform");
    for (int permutations : budgets) {
      SamplerRun uniform_run;
      for (SamplerKind kind : kinds) {
        SamplerConfig cfg;
        cfg.kind = kind;
        cfg.truncation_tolerance = spec.truncation_tolerance;
        const SamplerRun run =
            RunSampler(spec.game, exact.value(), cfg, permutations,
                       repetitions, /*seed_base=*/0xE57u);
        if (kind == SamplerKind::kUniformIid) uniform_run = run;
        auto& best = best_pr4[spec.name];
        if (best.find(permutations) == best.end() ||
            run.mse < best[permutations].run.mse) {
          best[permutations] = {SamplerKindName(kind), run};
        }
        const double ratio =
            run.mse > 0.0 ? uniform_run.mse / run.mse
                          : std::numeric_limits<double>::infinity();

        json.BeginRecord();
        json.Field("game", spec.name);
        json.Field("sampler", SamplerKindName(kind));
        json.Field("permutations", static_cast<double>(permutations));
        json.Field("truncation_tolerance",
                   kind == SamplerKind::kTruncated
                       ? spec.truncation_tolerance
                       : 0.0);
        json.Field("avg_loss_calls", run.avg_loss_calls);
        json.Field("avg_prefix_evals", run.avg_prefix_evals);
        json.Field("mse", run.mse);
        // Both relative fields are fractions of the uniform-IID run at
        // the same permutation budget: < 1 means fewer/less than uniform.
        json.Field("mse_fraction_of_uniform_iid",
                   uniform_run.mse > 0.0 ? run.mse / uniform_run.mse
                                         : 0.0);
        json.Field("loss_calls_fraction_of_uniform_iid",
                   uniform_run.avg_loss_calls > 0.0
                       ? run.avg_loss_calls / uniform_run.avg_loss_calls
                       : 0.0);

        std::printf("  %-11s %6d %12.1f %12.1f %12.4e %13.2fx\n",
                    SamplerKindName(kind), permutations,
                    run.avg_loss_calls, run.avg_prefix_evals, run.mse,
                    ratio);
      }

      // The adaptive estimator at the same permutation budget, as a
      // regular row (sampler "adaptive") for apples-to-apples plots.
      SamplerConfig adaptive_cfg;
      adaptive_cfg.adaptive.enabled = true;
      const SamplerRun adaptive_run =
          RunSampler(spec.game, exact.value(), adaptive_cfg, permutations,
                     repetitions, /*seed_base=*/0xE57u);
      json.BeginRecord();
      json.Field("game", spec.name);
      json.Field("sampler", "adaptive");
      json.Field("permutations", static_cast<double>(permutations));
      json.Field("truncation_tolerance", 0.0);
      json.Field("avg_loss_calls", adaptive_run.avg_loss_calls);
      json.Field("avg_prefix_evals", adaptive_run.avg_prefix_evals);
      json.Field("mse", adaptive_run.mse);
      json.Field("mse_fraction_of_uniform_iid",
                 uniform_run.mse > 0.0
                     ? adaptive_run.mse / uniform_run.mse
                     : 0.0);
      json.Field("loss_calls_fraction_of_uniform_iid",
                 uniform_run.avg_loss_calls > 0.0
                     ? adaptive_run.avg_loss_calls /
                           uniform_run.avg_loss_calls
                     : 0.0);
      std::printf("  %-11s %6d %12.1f %12.1f %12.4e %13.2fx\n", "adaptive",
                  permutations, adaptive_run.avg_loss_calls,
                  adaptive_run.avg_prefix_evals, adaptive_run.mse,
                  adaptive_run.mse > 0.0
                      ? uniform_run.mse / adaptive_run.mse
                      : 0.0);
    }
    std::printf("\n");
  }

  // Thread-count bit-identity spot check: the adaptive path draws and
  // allocates on the calling thread only, so handing it a pool must not
  // change a single bit of the estimate.
  {
    SamplerConfig cfg;
    cfg.adaptive.enabled = true;
    Rng rng_a(0xBEEFu), rng_b(0xBEEFu);
    ThreadPool pool(4);
    const Result<Vector> solo =
        MonteCarloShapley(kPlayers, players, MixedGame, 64, &rng_a,
                          nullptr, nullptr, cfg);
    const Result<Vector> pooled =
        MonteCarloShapley(kPlayers, players, MixedGame, 64, &rng_b, &pool,
                          nullptr, cfg);
    COMFEDSV_CHECK_OK(solo.status());
    COMFEDSV_CHECK_OK(pooled.status());
    for (int i = 0; i < kPlayers; ++i) {
      COMFEDSV_CHECK(solo.value()[i] == pooled.value()[i]);
    }
  }

  // Match-MSE gate (the PR-6 headline) on the mixed game. Two rows of
  // evidence per reference budget, both with measured loss calls
  // (distinct-coalition counts from the memoizing wrapper), never
  // estimated:
  //
  //  * pure adaptive — the smallest adaptive budget whose MSE is at or
  //    below the best PR-4 sampler's, with the loss-call ratio. On an
  //    8-client game every sampler saturates toward the 254-coalition
  //    universe, so this ratio bottoms out well above 0.5 — reported
  //    for transparency.
  //  * adaptive_surrogate — the surrogate-assisted estimator, whose
  //    loss calls are the warm-up block plus audit blocks. This is the
  //    path that meets the <= 0.5x contract: surrogate evaluations are
  //    free, the residual correction keeps the estimate unbiased, and
  //    the audit residuals bound what the surrogate is trusted with.
  {
    const GameSpec& spec = games[0];  // mixed
    Result<Vector> exact = ExactShapley(kPlayers, players, spec.game);
    COMFEDSV_CHECK_OK(exact.status());
    const int ladder[] = {16, 20, 24, 32, 40, 48, 64, 80, 96, 128, 160,
                          192, 256};
    std::map<int, SamplerRun> adaptive_at;  // ladder budget -> run
    for (int b : ladder) {
      SamplerConfig cfg;
      cfg.adaptive.enabled = true;
      adaptive_at[b] = RunSampler(spec.game, exact.value(), cfg, b,
                                  repetitions, /*seed_base=*/0xADA7u);
    }
    const SurrogateRun surrogate = RunSurrogate(
        spec.game, exact.value(), repetitions, /*seed_base=*/0x5A6Eu);

    json.BeginRecord();
    json.Field("game", spec.name);
    json.Field("section", "adaptive_surrogate");
    json.Field("avg_loss_calls", surrogate.avg_loss_calls);
    json.Field("avg_prefix_evals", surrogate.avg_prefix_evals);
    json.Field("mse", surrogate.mse);
    json.Field("avg_audit_blocks", surrogate.avg_audit_blocks);
    json.Field("avg_first_audit_max_residual",
               surrogate.avg_first_audit_max_residual);
    std::printf(
        "[%s] adaptive_surrogate: calls %.1f  mse %.4e  "
        "audit_blocks %.2f  first_audit_max_residual %.3e\n",
        spec.name, surrogate.avg_loss_calls, surrogate.mse,
        surrogate.avg_audit_blocks,
        surrogate.avg_first_audit_max_residual);

    std::printf("[%s] match-MSE gate vs best PR-4 sampler\n", spec.name);
    std::printf("  %6s %-11s %12s %8s %10s %9s %10s %9s %6s\n", "perms",
                "best_pr4", "target_mse", "ad_perms", "ad_calls",
                "ad_ratio", "surr_calls", "surr_rat", "gate");
    for (int permutations : budgets) {
      const auto it = best_pr4[spec.name].find(permutations);
      if (it == best_pr4[spec.name].end()) continue;
      const BestRun& best = it->second;
      int matched_budget = -1;
      SamplerRun matched;
      for (int b : ladder) {
        if (adaptive_at[b].mse <= best.run.mse) {
          matched_budget = b;
          matched = adaptive_at[b];
          break;
        }
      }
      const double adaptive_ratio =
          (matched_budget > 0 && best.run.avg_loss_calls > 0.0)
              ? matched.avg_loss_calls / best.run.avg_loss_calls
              : -1.0;
      const double surrogate_ratio =
          best.run.avg_loss_calls > 0.0
              ? surrogate.avg_loss_calls / best.run.avg_loss_calls
              : -1.0;
      const bool surrogate_equal_mse = surrogate.mse <= best.run.mse;
      const bool gate_pass =
          surrogate_equal_mse && surrogate_ratio >= 0.0 &&
          surrogate_ratio <= 0.5;

      json.BeginRecord();
      json.Field("game", spec.name);
      json.Field("section", "adaptive_gate");
      json.Field("permutations", static_cast<double>(permutations));
      json.Field("best_pr4_sampler", best.sampler.c_str());
      json.Field("best_pr4_mse", best.run.mse);
      json.Field("best_pr4_loss_calls", best.run.avg_loss_calls);
      json.Field("adaptive_permutations",
                 static_cast<double>(matched_budget));
      json.Field("adaptive_mse", matched_budget > 0 ? matched.mse : -1.0);
      json.Field("adaptive_loss_calls",
                 matched_budget > 0 ? matched.avg_loss_calls : -1.0);
      json.Field("loss_calls_fraction_of_best_pr4", adaptive_ratio);
      json.Field("surrogate_mse", surrogate.mse);
      json.Field("surrogate_loss_calls", surrogate.avg_loss_calls);
      json.Field("surrogate_loss_calls_fraction_of_best_pr4",
                 surrogate_ratio);
      json.Field("surrogate_equal_mse", surrogate_equal_mse ? 1.0 : 0.0);
      json.Field("gate_half_loss_calls", gate_pass ? 1.0 : 0.0);

      std::printf(
          "  %6d %-11s %12.4e %8d %10.1f %8.2f%% %10.1f %8.2f%% %6s\n",
          permutations, best.sampler.c_str(), best.run.mse,
          matched_budget,
          matched_budget > 0 ? matched.avg_loss_calls : -1.0,
          adaptive_ratio * 100.0, surrogate.avg_loss_calls,
          surrogate_ratio * 100.0, gate_pass ? "PASS" : "FAIL");
    }
    std::printf("\n");
  }

  return json.WriteFile() ? 0 : 1;
}

}  // namespace bench
}  // namespace comfedsv

int main(int argc, char** argv) {
  return comfedsv::bench::Main(argc, argv);
}
