// Ablation / theory check: Propositions 1 and 2.
//
// For an L2-regularized logistic regression (Lipschitz-on-domain, smooth,
// strongly convex) trained with the Prop. 2 learning-rate schedule, the
// eps-rank of the utility matrix should (a) be small, (b) stay below the
// analytic bound computed from the observed trajectory (Prop. 1's bound
// with empirical constants), and (c) grow like log(T), not like T.
#include <cmath>

#include "bench_common.h"

namespace comfedsv {

namespace {
// Records the global parameter path so the Prop. 1 bound can be
// evaluated with the empirical sum of ||w^t - w^{t+1}||.
class PathRecorder : public RoundObserver {
 public:
  void OnRound(const RoundRecord& record) override {
    path_.push_back(record.global_before);
  }
  double PathLength() const {
    double acc = 0.0;
    for (size_t t = 0; t + 1 < path_.size(); ++t) {
      acc += Distance(path_[t], path_[t + 1]);
    }
    return acc;
  }

 private:
  std::vector<Vector> path_;
};
}  // namespace

int AblationRankBoundMain(int argc, char** argv) {
  const bool full = bench::FullScale(argc, argv);
  bench::PrintHeader(
      "Ablation: Prop. 1/2 rank bound",
      "Empirical eps-rank of the utility matrix vs the Prop. 1 bound\n"
      "computed from the observed trajectory, for growing T.",
      full);

  const int num_clients = 8;
  const std::vector<int> round_counts =
      full ? std::vector<int>{10, 20, 40, 80, 160}
           : std::vector<int>{10, 20, 40};

  Table table({"T", "eps", "eps-rank (svd)", "Prop.1 bound", "path len",
               "log(T)"});
  for (int rounds : round_counts) {
    bench::WorkloadOptions opt;
    opt.num_clients = num_clients;
    opt.samples_per_client = 60;
    opt.test_samples = 100;
    opt.noniid = true;
    opt.seed = 90 + rounds;
    bench::Workload w =
        bench::MakeWorkload(bench::PaperDataset::kSynthetic, opt);

    FedAvgConfig fcfg;
    fcfg.num_rounds = rounds;
    fcfg.clients_per_round = 3;
    fcfg.select_all_first_round = false;
    // Prop. 2 schedule (strongly convex, mu = the L2 penalty).
    const double mu = 1e-3;
    const double smoothness = 1.0;
    fcfg.lr = LearningRateSchedule::InverseDecay(mu, smoothness);
    fcfg.seed = opt.seed + 1;

    GroundTruthEvaluator recorder(w.model.get(), &w.test, num_clients);
    PathRecorder path;
    FanoutObserver fanout;
    fanout.Register(&recorder);
    fanout.Register(&path);
    FedAvgTrainer trainer(w.model.get(), w.clients, w.test, fcfg);
    COMFEDSV_CHECK_OK(trainer.Train(&fanout).status());

    Matrix u = recorder.UtilityMatrix();
    const double eps = 0.05 * u.MaxAbs();
    Result<int> measured = EpsRankUpperBound(u, eps);
    COMFEDSV_CHECK_OK(measured.status());

    // Prop. 1 bound with empirical constants: L1 ~ max gradient norm of
    // the test loss along the path (we use a conservative constant), L2
    // the assumed smoothness.
    const double l1 = 2.0;  // conservative Lipschitz constant of l(.;Dc)
    const double eta1 = fcfg.lr.At(0);
    const double etaT = fcfg.lr.At(rounds - 1);
    const double bound =
        std::ceil(((2.0 + eta1 * smoothness) * l1 * path.PathLength() +
                   (eta1 - etaT) * l1 * l1) /
                  eps);

    table.AddRow({std::to_string(rounds), Table::Num(eps, 3),
                  std::to_string(measured.value()), Table::Num(bound, 4),
                  Table::Num(path.PathLength(), 4),
                  Table::Num(std::log(rounds), 3)});
  }
  std::printf("%s\n", table.ToText().c_str());
  std::printf(
      "Check: measured eps-rank stays far below the Prop. 1 bound and\n"
      "grows sublinearly in T (log-like), as Prop. 2 predicts.\n");
  return 0;
}

}  // namespace comfedsv

int main(int argc, char** argv) {
  return comfedsv::AblationRankBoundMain(argc, argv);
}
