// Round-log bench: what spilling the training trajectory to disk costs
// and what it buys.
//
// Four sections, all on one real FedAvg trajectory (the records come
// from an actual spill run, not synthetic frames):
//
//   * append — entries/sec through RoundLogWriter per compression mode,
//     with the measured compression ratio (data bytes vs what the same
//     records occupy under kNone).
//   * read — entries/sec serving records back: an in-memory vector of
//     decoded records (the no-spill upper bound), the windowed-mmap
//     reader, and the pread (ReadFileRange) fallback path.
//   * valuation_drift — FedSV / ComFedSV computed from each log via
//     RunValuationFromLog vs the in-memory pipeline: lossless modes
//     must land at zero drift, kQuant16 trades bounded drift for its
//     ratio.
//   * memory_budget — the headline demo: re-value a trajectory whose
//     log is ~10x the reader's resident-memory window and prove the
//     FedSV output bit-identical to the in-memory run.
//
// Writes BENCH_roundlog.json (schema documented in README.md).
#include <algorithm>
#include <cmath>
#include <filesystem>
#include <string>
#include <vector>

#include "bench_common.h"
#include "common/stopwatch.h"
#include "core/streaming.h"
#include "io/round_log.h"

namespace comfedsv {
namespace bench {
namespace {

struct Scenario {
  Workload w;
  FedAvgConfig fed;
  ValuationRequest request;
  int num_clients = 0;
};

Scenario MakeScenario(bool full_scale) {
  Scenario s;
  WorkloadOptions opt;
  opt.num_clients = 8;
  opt.samples_per_client = full_scale ? 120 : 60;
  opt.seed = 23;
  s.w = MakeWorkload(PaperDataset::kSynthetic, opt);
  s.num_clients = opt.num_clients;

  // Enough rounds that the log dwarfs any sane resident window.
  s.fed.num_rounds = full_scale ? 80 : 40;
  s.fed.clients_per_round = 5;
  s.fed.lr = LearningRateSchedule::Constant(0.1);
  s.fed.seed = 31;

  s.request.compute_fedsv = true;
  s.request.fedsv.mode = FedSvConfig::Mode::kMonteCarlo;
  s.request.fedsv.permutations_per_round = 4;
  s.request.fedsv.seed = 32;
  s.request.compute_comfedsv = true;
  s.request.comfedsv.mode = ComFedSvConfig::Mode::kSampled;
  s.request.comfedsv.num_permutations = 4;
  s.request.comfedsv.completion.rank = 3;
  s.request.comfedsv.completion.lambda = 1e-2;
  s.request.comfedsv.completion.max_iters = 50;
  s.request.comfedsv.seed = 33;
  return s;
}

const char* ModeName(RoundLogCompression mode) {
  switch (mode) {
    case RoundLogCompression::kNone:
      return "none";
    case RoundLogCompression::kXorDelta:
      return "xor_delta";
    case RoundLogCompression::kQuant16:
      return "quant16";
  }
  return "?";
}

double MaxAbsDiff(const Vector& a, const Vector& b) {
  COMFEDSV_CHECK_EQ(a.size(), b.size());
  double max_diff = 0.0;
  for (size_t i = 0; i < a.size(); ++i) {
    max_diff = std::max(max_diff, std::abs(a[i] - b[i]));
  }
  return max_diff;
}

bool BitIdentical(const Vector& a, const Vector& b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (a[i] != b[i]) return false;
  }
  return true;
}

/// Writes `records` to a fresh log at `path`, timing the appends.
std::unique_ptr<RoundLogWriter> WriteLog(
    const std::string& path, const std::vector<RoundRecord>& records,
    RoundLogCompression mode, double* seconds) {
  RoundLogOptions options;
  options.compression = mode;
  Result<std::unique_ptr<RoundLogWriter>> writer =
      RoundLogWriter::Create(path, options);
  COMFEDSV_CHECK_OK(writer.status());
  Stopwatch timer;
  for (const RoundRecord& record : records) {
    COMFEDSV_CHECK_OK(writer.value()->Append(record));
  }
  COMFEDSV_CHECK_OK(writer.value()->Sync());
  *seconds = timer.ElapsedSeconds();
  return std::move(writer).value();
}

}  // namespace
}  // namespace bench
}  // namespace comfedsv

int main(int argc, char** argv) {
  using namespace comfedsv;
  using namespace comfedsv::bench;
  namespace fs = std::filesystem;
  const bool full = FullScale(argc, argv);
  PrintHeader("round-log spill",
              "append/read throughput of the on-disk round store, "
              "compression ratio vs valuation drift per encoding, and a "
              "re-valuation whose log is ~10x the resident-memory window",
              full);
  const Scenario s = MakeScenario(full);
  const std::string root = "bench_roundlog_scratch";
  fs::remove_all(root);
  fs::create_directories(root);

  BenchJsonWriter json("roundlog");
  json.Meta("scale", full ? "full" : "reduced");
  json.Meta("rounds", static_cast<double>(s.fed.num_rounds));
  json.Meta("clients", static_cast<double>(s.num_clients));

  // One checkpointed run with spill produces both the baseline values
  // and the reference (kNone) log of the exact trajectory.
  CheckpointConfig ckpt;
  ckpt.path = root + "/run.ckpt";
  ckpt.every_rounds = 8;
  ckpt.round_log_path = root + "/rounds_none.log";
  Result<ValuationOutcome> baseline = RunValuationCheckpointed(
      *s.w.model, s.w.clients, s.w.test, s.fed, s.request, ckpt);
  COMFEDSV_CHECK_OK(baseline.status());
  const Vector base_fedsv = *baseline.value().fedsv_values;
  const Vector base_comfedsv = baseline.value().comfedsv->values;

  // Decode the trajectory back into memory: the append/read sections
  // replay these exact records.
  std::vector<RoundRecord> records;
  {
    Result<std::unique_ptr<RoundLogReader>> reader =
        RoundLogReader::Open(ckpt.round_log_path);
    COMFEDSV_CHECK_OK(reader.status());
    records.resize(reader.value()->rounds());
    for (int pos = 0; pos < reader.value()->rounds(); ++pos) {
      COMFEDSV_CHECK_OK(reader.value()->Read(pos, &records[pos]));
    }
  }
  const int num_records = static_cast<int>(records.size());

  // -- append + valuation_drift per compression mode --------------------
  uint64_t none_log_bytes = 0;
  for (RoundLogCompression mode :
       {RoundLogCompression::kNone, RoundLogCompression::kXorDelta,
        RoundLogCompression::kQuant16}) {
    const std::string path =
        root + "/append_" + std::string(ModeName(mode)) + ".log";
    double seconds = 0.0;
    std::unique_ptr<RoundLogWriter> writer =
        WriteLog(path, records, mode, &seconds);
    const double ratio =
        static_cast<double>(writer->data_size()) /
        static_cast<double>(std::max<uint64_t>(
            writer->uncompressed_bytes(), 1));
    json.BeginRecord();
    json.Field("section", "append");
    json.Field("compression", ModeName(mode));
    json.Field("entries", static_cast<double>(num_records));
    json.Field("seconds", seconds);
    json.Field("entries_per_sec", num_records / std::max(seconds, 1e-12));
    json.Field("log_bytes", static_cast<double>(writer->data_size()));
    json.Field("compression_ratio", ratio);
    std::printf("append  %-9s %3d entries  %8.0f entries/s  %7.0f KB  "
                "ratio %.3f\n",
                ModeName(mode), num_records,
                num_records / std::max(seconds, 1e-12),
                writer->data_size() / 1024.0, ratio);
    if (mode == RoundLogCompression::kNone) {
      none_log_bytes = writer->data_size();
    }

    Result<ValuationOutcome> replayed = RunValuationFromLog(
        *s.w.model, s.w.test, s.num_clients, path, s.request);
    COMFEDSV_CHECK_OK(replayed.status());
    const double fedsv_drift =
        MaxAbsDiff(*replayed.value().fedsv_values, base_fedsv);
    const double comfedsv_drift =
        MaxAbsDiff(replayed.value().comfedsv->values, base_comfedsv);
    json.BeginRecord();
    json.Field("section", "valuation_drift");
    json.Field("compression", ModeName(mode));
    json.Field("compression_ratio", ratio);
    json.Field("fedsv_max_abs_drift", fedsv_drift);
    json.Field("comfedsv_max_abs_drift", comfedsv_drift);
    json.Field("bit_identical",
               BitIdentical(*replayed.value().fedsv_values, base_fedsv));
    std::printf("drift   %-9s ratio %.3f  fedsv %.3g  comfedsv %.3g\n",
                ModeName(mode), ratio, fedsv_drift, comfedsv_drift);
  }

  // -- read: in-memory vs windowed mmap vs pread ------------------------
  {
    const std::string path = root + "/append_none.log";
    const int passes = full ? 8 : 4;

    Stopwatch mem_timer;
    double sink = 0.0;
    for (int pass = 0; pass < passes; ++pass) {
      for (const RoundRecord& record : records) {
        sink += record.test_loss_before;  // the no-I/O upper bound
      }
    }
    const double mem_seconds = mem_timer.ElapsedSeconds();

    RoundLogReadOptions mmap_options;
    mmap_options.use_mmap = true;
    mmap_options.window_bytes = std::max<uint64_t>(none_log_bytes / 10, 1);
    Result<std::unique_ptr<RoundLogReader>> mapped =
        RoundLogReader::Open(path, mmap_options);
    COMFEDSV_CHECK_OK(mapped.status());
    Stopwatch mmap_timer;
    RoundRecord scratch;
    for (int pass = 0; pass < passes; ++pass) {
      for (int pos = 0; pos < num_records; ++pos) {
        COMFEDSV_CHECK_OK(mapped.value()->Read(pos, &scratch));
      }
    }
    const double mmap_seconds = mmap_timer.ElapsedSeconds();

    RoundLogReadOptions pread_options;
    pread_options.use_mmap = false;
    Result<std::unique_ptr<RoundLogReader>> pread =
        RoundLogReader::Open(path, pread_options);
    COMFEDSV_CHECK_OK(pread.status());
    Stopwatch pread_timer;
    for (int pass = 0; pass < passes; ++pass) {
      for (int pos = 0; pos < num_records; ++pos) {
        COMFEDSV_CHECK_OK(pread.value()->Read(pos, &scratch));
      }
    }
    const double pread_seconds = pread_timer.ElapsedSeconds();

    const double entries = static_cast<double>(num_records) * passes;
    struct ReadPath {
      const char* name;
      double seconds;
      double remaps;
      double fallbacks;
    };
    const ReadPath paths[] = {
        {"in_memory", mem_seconds, 0.0, 0.0},
        {"mmap_window", mmap_seconds,
         static_cast<double>(mapped.value()->remaps()),
         static_cast<double>(mapped.value()->fallback_reads())},
        {"pread", pread_seconds, 0.0,
         static_cast<double>(pread.value()->fallback_reads())},
    };
    for (const ReadPath& path_stats : paths) {
      json.BeginRecord();
      json.Field("section", "read");
      json.Field("path", path_stats.name);
      json.Field("entries", entries);
      json.Field("seconds", path_stats.seconds);
      json.Field("entries_per_sec",
                 entries / std::max(path_stats.seconds, 1e-12));
      json.Field("remaps", path_stats.remaps);
      json.Field("fallback_reads", path_stats.fallbacks);
      std::printf("read    %-12s %8.0f entries/s  (%.0f remaps, %.0f "
                  "preads)\n",
                  path_stats.name,
                  entries / std::max(path_stats.seconds, 1e-12),
                  path_stats.remaps, path_stats.fallbacks);
    }
    (void)sink;
  }

  // -- memory_budget: the 10x demo --------------------------------------
  {
    RoundLogReadOptions budget;
    budget.use_mmap = true;
    budget.window_bytes = std::max<uint64_t>(none_log_bytes / 10, 1);
    Stopwatch timer;
    Result<ValuationOutcome> replayed =
        RunValuationFromLog(*s.w.model, s.w.test, s.num_clients,
                            ckpt.round_log_path, s.request, budget);
    COMFEDSV_CHECK_OK(replayed.status());
    const double seconds = timer.ElapsedSeconds();
    const bool identical =
        BitIdentical(*replayed.value().fedsv_values, base_fedsv);
    const double budget_ratio = static_cast<double>(none_log_bytes) /
                                static_cast<double>(budget.window_bytes);
    json.BeginRecord();
    json.Field("section", "memory_budget");
    json.Field("log_bytes", static_cast<double>(none_log_bytes));
    json.Field("window_bytes", static_cast<double>(budget.window_bytes));
    json.Field("budget_ratio", budget_ratio);
    json.Field("rounds", static_cast<double>(num_records));
    json.Field("revaluation_seconds", seconds);
    json.Field("bit_identical", identical);
    std::printf("budget  log %.0f KB / window %.0f KB (%.1fx)  "
                "re-valued %d rounds in %.2f s  bit_identical=%d\n",
                none_log_bytes / 1024.0, budget.window_bytes / 1024.0,
                budget_ratio, num_records, seconds, identical ? 1 : 0);
    COMFEDSV_CHECK(identical);
    COMFEDSV_CHECK_GE(budget_ratio, 9.0);
  }

  fs::remove_all(root);
  return json.WriteFile() ? 0 : 1;
}
