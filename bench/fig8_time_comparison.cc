// Figure 8: computing-time comparison. For N = 10..100 clients with 30%
// participation, measures the wall time (and test-loss call counts) of
// FedSV (Monte-Carlo, O(T K^2 log K) calls) and ComFedSV (Algorithm 1,
// O(T N K log N) calls), and their ratio — which the paper shows
// approaching the participation rate K/N.
#include "bench_common.h"

namespace comfedsv {

int Fig8Main(int argc, char** argv) {
  const bool full = bench::FullScale(argc, argv);
  bench::PrintHeader(
      "Figure 8",
      "Valuation time of FedSV vs ComFedSV and their ratio, as the\n"
      "number of clients grows (30% participation).",
      full);

  const int max_clients = full ? 100 : 60;
  const int rounds = full ? 10 : 6;

  Table table({"N", "K", "FedSV secs", "ComFedSV secs", "ratio",
               "FedSV calls", "ComFedSV calls", "call ratio"});
  for (int n = 10; n <= max_clients; n += 10) {
    const int k = std::max(2, n * 30 / 100);

    bench::WorkloadOptions opt;
    opt.num_clients = n;
    opt.samples_per_client = 30;
    opt.test_samples = 100;
    opt.noniid = false;
    opt.seed = 800 + n;
    bench::Workload w =
        bench::MakeWorkload(bench::PaperDataset::kMnist, opt);

    // The two methods are timed as standalone pipelines, as in the
    // paper: FedSV runs plain FedAvg (it never needs the everyone-heard
    // round), while ComFedSV runs with Assumption 1 and pays for the
    // full first round — that is part of its honest cost.
    FedAvgConfig fedsv_cfg;
    fedsv_cfg.num_rounds = rounds;
    fedsv_cfg.clients_per_round = k;
    fedsv_cfg.select_all_first_round = false;
    fedsv_cfg.lr = LearningRateSchedule::Constant(0.3);
    fedsv_cfg.seed = opt.seed + 1;

    ValuationRequest fedsv_req;
    fedsv_req.compute_fedsv = true;
    fedsv_req.fedsv.mode = FedSvConfig::Mode::kMonteCarlo;
    fedsv_req.fedsv.permutations_per_round = 0;  // O(K log K), VII-D
    fedsv_req.fedsv.seed = opt.seed + 2;
    fedsv_req.compute_comfedsv = false;

    Result<ValuationOutcome> fedsv_run =
        RunValuation(*w.model, w.clients, w.test, fedsv_cfg, fedsv_req);
    COMFEDSV_CHECK_OK(fedsv_run.status());

    FedAvgConfig com_cfg = fedsv_cfg;
    com_cfg.select_all_first_round = true;  // Assumption 1
    com_cfg.seed = opt.seed + 1;

    ValuationRequest com_req;
    com_req.compute_fedsv = false;
    com_req.compute_comfedsv = true;
    com_req.comfedsv.mode = ComFedSvConfig::Mode::kSampled;
    com_req.comfedsv.num_permutations = 0;  // O(N log N), Sec. VI-E
    com_req.comfedsv.completion.rank = 3;
    com_req.comfedsv.completion.lambda = 1e-4;
    com_req.comfedsv.completion.temporal_smoothing = 0.1;
    com_req.comfedsv.completion.max_iters = 60;
    com_req.comfedsv.seed = opt.seed + 3;

    Result<ValuationOutcome> com_run =
        RunValuation(*w.model, w.clients, w.test, com_cfg, com_req);
    COMFEDSV_CHECK_OK(com_run.status());

    const double fedsv_secs = fedsv_run.value().fedsv_seconds;
    const double comfedsv_secs = com_run.value().comfedsv->seconds;
    const int64_t fedsv_calls = fedsv_run.value().fedsv_loss_calls;
    const int64_t comfedsv_calls = com_run.value().comfedsv->loss_calls;
    table.AddRow({std::to_string(n), std::to_string(k),
                  Table::Num(fedsv_secs, 3), Table::Num(comfedsv_secs, 3),
                  Table::Num(fedsv_secs / comfedsv_secs, 3),
                  std::to_string(fedsv_calls),
                  std::to_string(comfedsv_calls),
                  Table::Num(static_cast<double>(fedsv_calls) /
                                 static_cast<double>(comfedsv_calls),
                             3)});
  }
  std::printf("%s\n", table.ToText().c_str());
  std::printf(
      "Shape check vs paper: both costs grow with N; the FedSV/ComFedSV\n"
      "ratio settles near a constant on the order of the participation\n"
      "rate (0.3), as in Fig. 8.\n");
  return 0;
}

}  // namespace comfedsv

int main(int argc, char** argv) { return comfedsv::Fig8Main(argc, argv); }
