// Figure 8: computing-time comparison. For N = 10..100 clients with 30%
// participation, measures the wall time (and test-loss call counts) of
// FedSV (Monte-Carlo, O(T K^2 log K) calls) and ComFedSV (Algorithm 1,
// O(T N K log N) calls), and their ratio — which the paper shows
// approaching the participation rate K/N.
//
// Each method runs twice, on ExecutionContext(1) and ExecutionContext(T)
// (T from --threads, default 4), seeding the perf trajectory: the run
// emits machine-readable BENCH_fig8_time_comparison.json with both wall
// times, the speedup, and a check that the valuation outputs are
// bit-identical across thread counts.
#include "bench_common.h"

namespace comfedsv {
namespace {

struct TimedRun {
  double fedsv_seconds = 0.0;
  double comfedsv_seconds = 0.0;
  double completion_seconds = 0.0;
  double completion_entries = 0.0;
  int completion_iterations = 0;
  int64_t fedsv_calls = 0;
  int64_t comfedsv_calls = 0;
  Vector fedsv_values;
  Vector comfedsv_values;
};

TimedRun RunBothPipelines(const bench::Workload& w, int rounds, int k,
                          uint64_t seed, ExecutionContext* ctx) {
  // The two methods are timed as standalone pipelines, as in the
  // paper: FedSV runs plain FedAvg (it never needs the everyone-heard
  // round), while ComFedSV runs with Assumption 1 and pays for the
  // full first round — that is part of its honest cost.
  FedAvgConfig fedsv_cfg;
  fedsv_cfg.num_rounds = rounds;
  fedsv_cfg.clients_per_round = k;
  fedsv_cfg.select_all_first_round = false;
  fedsv_cfg.lr = LearningRateSchedule::Constant(0.3);
  fedsv_cfg.seed = seed + 1;

  ValuationRequest fedsv_req;
  fedsv_req.compute_fedsv = true;
  fedsv_req.fedsv.mode = FedSvConfig::Mode::kMonteCarlo;
  fedsv_req.fedsv.permutations_per_round = 0;  // O(K log K), VII-D
  fedsv_req.fedsv.seed = seed + 2;
  fedsv_req.compute_comfedsv = false;

  Result<ValuationOutcome> fedsv_run =
      RunValuation(*w.model, w.clients, w.test, fedsv_cfg, fedsv_req, ctx);
  COMFEDSV_CHECK_OK(fedsv_run.status());

  FedAvgConfig com_cfg = fedsv_cfg;
  com_cfg.select_all_first_round = true;  // Assumption 1
  com_cfg.seed = seed + 1;

  ValuationRequest com_req;
  com_req.compute_fedsv = false;
  com_req.compute_comfedsv = true;
  com_req.comfedsv.mode = ComFedSvConfig::Mode::kSampled;
  com_req.comfedsv.num_permutations = 0;  // O(N log N), Sec. VI-E
  com_req.comfedsv.completion.rank = 3;
  com_req.comfedsv.completion.lambda = 1e-4;
  com_req.comfedsv.completion.temporal_smoothing = 0.1;
  com_req.comfedsv.completion.max_iters = 60;
  com_req.comfedsv.seed = seed + 3;

  Result<ValuationOutcome> com_run =
      RunValuation(*w.model, w.clients, w.test, com_cfg, com_req, ctx);
  COMFEDSV_CHECK_OK(com_run.status());

  TimedRun out;
  out.fedsv_seconds = fedsv_run.value().fedsv_seconds;
  out.comfedsv_seconds = com_run.value().comfedsv->seconds;
  const ComFedSvOutput& com = *com_run.value().comfedsv;
  out.completion_seconds = com.completion_seconds;
  out.completion_entries = com.observed_density *
                           static_cast<double>(rounds) *
                           static_cast<double>(com.num_columns);
  out.completion_iterations = com.completion.iterations;
  out.fedsv_calls = fedsv_run.value().fedsv_loss_calls;
  out.comfedsv_calls = com_run.value().comfedsv->loss_calls;
  out.fedsv_values = *fedsv_run.value().fedsv_values;
  out.comfedsv_values = com_run.value().comfedsv->values;
  return out;
}

}  // namespace

int Fig8Main(int argc, char** argv) {
  const bool full = bench::FullScale(argc, argv);
  const int threads = bench::BenchThreads(argc, argv);
  bench::PrintHeader(
      "Figure 8",
      "Valuation time of FedSV vs ComFedSV and their ratio, as the\n"
      "number of clients grows (30% participation). Each method is run\n"
      "single-threaded and on a shared ExecutionContext.",
      full);

  const int max_clients = full ? 100 : 60;
  const int rounds = full ? 10 : 6;

  bench::BenchJsonWriter json("fig8_time_comparison");
  json.Meta("scale", full ? "paper" : "reduced");
  json.Meta("threads_compared", static_cast<double>(threads));
  json.Meta("rounds", static_cast<double>(rounds));

  ExecutionContext threaded(threads);
  bool all_outputs_identical = true;

  Table table({"N", "K", "FedSV secs", "ComFedSV secs", "ratio",
               "FedSV calls", "ComFedSV calls", "call ratio",
               std::to_string(threads) + "t speedup F/C"});
  for (int n = 10; n <= max_clients; n += 10) {
    const int k = std::max(2, n * 30 / 100);

    bench::WorkloadOptions opt;
    opt.num_clients = n;
    opt.samples_per_client = 30;
    opt.test_samples = 100;
    opt.noniid = false;
    opt.seed = 800 + n;
    bench::Workload w =
        bench::MakeWorkload(bench::PaperDataset::kMnist, opt);

    TimedRun single = RunBothPipelines(w, rounds, k, opt.seed, nullptr);
    TimedRun multi = RunBothPipelines(w, rounds, k, opt.seed, &threaded);

    const bool identical = single.fedsv_values == multi.fedsv_values &&
                           single.comfedsv_values == multi.comfedsv_values;
    all_outputs_identical = all_outputs_identical && identical;

    const double fedsv_speedup = single.fedsv_seconds / multi.fedsv_seconds;
    const double comfedsv_speedup =
        single.comfedsv_seconds / multi.comfedsv_seconds;

    for (const char* method : {"fedsv", "comfedsv"}) {
      const bool is_fedsv = std::strcmp(method, "fedsv") == 0;
      json.BeginRecord();
      json.Field("method", method);
      json.Field("clients", static_cast<double>(n));
      json.Field("selected_per_round", static_cast<double>(k));
      json.Field("seconds_1_thread", is_fedsv ? single.fedsv_seconds
                                              : single.comfedsv_seconds);
      json.Field("seconds_n_threads", is_fedsv ? multi.fedsv_seconds
                                               : multi.comfedsv_seconds);
      json.Field("speedup", is_fedsv ? fedsv_speedup : comfedsv_speedup);
      json.Field("loss_calls", static_cast<double>(is_fedsv
                                                       ? single.fedsv_calls
                                                       : single.comfedsv_calls));
      json.Field("outputs_identical_across_threads",
                 identical ? 1.0 : 0.0);
      if (!is_fedsv) {
        // The completion-engine datapoint of the perf trajectory: time
        // spent inside CompleteMatrix and its observed-entry throughput.
        json.Field("completion_seconds_1_thread",
                   single.completion_seconds);
        json.Field("completion_seconds_n_threads",
                   multi.completion_seconds);
        json.Field("completion_observed_entries",
                   single.completion_entries);
        json.Field("completion_iterations",
                   static_cast<double>(single.completion_iterations));
        json.Field("completion_entries_per_sec_1_thread",
                   single.completion_entries *
                       single.completion_iterations /
                       std::max(1e-12, single.completion_seconds));
      }
    }

    table.AddRow({std::to_string(n), std::to_string(k),
                  Table::Num(single.fedsv_seconds, 3),
                  Table::Num(single.comfedsv_seconds, 3),
                  Table::Num(single.fedsv_seconds / single.comfedsv_seconds,
                             3),
                  std::to_string(single.fedsv_calls),
                  std::to_string(single.comfedsv_calls),
                  Table::Num(static_cast<double>(single.fedsv_calls) /
                                 static_cast<double>(single.comfedsv_calls),
                             3),
                  Table::Num(fedsv_speedup, 2) + "/" +
                      Table::Num(comfedsv_speedup, 2)});
  }
  std::printf("%s\n", table.ToText().c_str());
  std::printf(
      "Shape check vs paper: both costs grow with N; the FedSV/ComFedSV\n"
      "ratio settles near a constant on the order of the participation\n"
      "rate (0.3), as in Fig. 8. Valuation outputs across thread counts\n"
      "identical: %s.\n",
      all_outputs_identical ? "yes" : "NO — determinism regression");
  json.Meta("outputs_identical_across_threads",
            all_outputs_identical ? 1.0 : 0.0);
  json.WriteFile();
  return all_outputs_identical ? 0 : 1;
}

}  // namespace comfedsv

int main(int argc, char** argv) { return comfedsv::Fig8Main(argc, argv); }
