// Figure 1: the probability bound P_s from Observation 1 — how likely two
// clients with identical data are to receive FedSVs differing by at least
// s*delta, as a function of s for several selection-split probabilities p.
//
// Prints, for each p, the series the paper plots, plus (a) the paper's
// literal series (which uses (1-p) instead of the exact (1-2p) zero-step
// factor) and (b) a Monte-Carlo simulation of the selection process as an
// empirical cross-check.
#include "bench_common.h"

namespace comfedsv {

namespace {
double SimulatedTail(int rounds, int num_clients, int num_selected, int s,
                     int trials, Rng* rng) {
  int hits = 0;
  for (int trial = 0; trial < trials; ++trial) {
    int gap = 0;
    for (int t = 0; t < rounds; ++t) {
      std::vector<int> sel =
          rng->SampleWithoutReplacement(num_clients, num_selected);
      bool has_i = false, has_j = false;
      for (int c : sel) {
        if (c == 0) has_i = true;
        if (c == 1) has_j = true;
      }
      if (has_i && !has_j) ++gap;
      if (has_j && !has_i) --gap;
    }
    if (gap >= s || -gap >= s) ++hits;
  }
  return static_cast<double>(hits) / trials;
}
}  // namespace

int Fig1Main(int argc, char** argv) {
  const bool full = bench::FullScale(argc, argv);
  bench::PrintHeader(
      "Figure 1",
      "P_s = P(|FedSV_i - FedSV_j| >= s*delta) for identical clients i, j\n"
      "under m-of-N selection; p = m(N-m)/(N(N-1)).",
      full);

  const int rounds = full ? 100 : 50;
  const int sim_trials = full ? 40000 : 10000;
  // The (N, m) pairs give the p values annotated in the paper's plot.
  const std::vector<std::pair<int, int>> configs = {
      {10, 1}, {10, 2}, {10, 3}, {10, 5}};

  Rng rng(2022);
  for (const auto& [n, m] : configs) {
    const double p = SelectionSplitProbability(n, m);
    std::printf("N=%d, m=%d  =>  p=%.4f   (T=%d rounds)\n", n, m, p,
                rounds);
    Table table({"s", "P_s exact", "P_s paper-literal", "P_s simulated"});
    for (int s = 0; s <= std::min(rounds, 20); s += 2) {
      table.AddRow({std::to_string(s),
                    Table::Num(Observation1TailProbability(rounds, p, s)),
                    Table::Num(Observation1TailProbability(rounds, p, s,
                                                           true)),
                    Table::Num(SimulatedTail(rounds, n, m, s, sim_trials,
                                             &rng))});
    }
    std::printf("%s\n", table.ToText().c_str());
  }
  std::printf(
      "Shape check vs paper: P_s stays near 1 for small s and decays\n"
      "with s; larger p (more asymmetric selection) keeps P_s high "
      "longer.\n");
  return 0;
}

}  // namespace comfedsv

int main(int argc, char** argv) { return comfedsv::Fig1Main(argc, argv); }
