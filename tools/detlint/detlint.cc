// detlint — the project's determinism/IO-discipline lint binary.
//
// Scans C++ sources for the project-specific hazard classes the compilers
// cannot see (README "Static analysis & correctness tooling"):
//
//   unordered-iter    iteration over std::unordered_{map,set,...} — their
//                     order is implementation-defined, so any iteration
//                     that feeds output, serialization or accumulation
//                     can break the bit-identical-output contract (the
//                     exact bug class PR 1 fixed by hand in the sampled
//                     recorder).
//   raw-rng           direct rand()/std::random_device/std::mt19937/
//                     time()/system_clock use outside common/rng.{h,cc}
//                     and common/stopwatch.h — all randomness must come
//                     from the seeded Rng sub-streams, all timing from
//                     the monotonic Stopwatch.
//   raw-file-io       std::ofstream/std::ifstream/fopen/std::filesystem
//                     in src/ outside io/file_env.{h,cc} — I/O that
//                     bypasses the FileEnv seam is invisible to the
//                     fault-injection harness (PR 8). Inactive under
//                     tests/ (test fixtures may write temp files).
//   discarded-status  a statement that is exactly a call to a function
//                     declared to return Status/Result and drops the
//                     value — the static net behind [[nodiscard]] for
//                     files built without warnings.
//   bad-allow         a detlint:allow pragma with a missing/empty
//                     justification or an unknown rule id.
//
// Allowlist pragma: an intentional site stays documented with
//
//   // detlint:allow(<rule-id>): <required justification text>
//
// on the same line as the finding, or alone on the immediately preceding
// line. A pragma without justification is itself a finding and does not
// suppress anything.
//
// Analysis model: line- and statement-level scanning over comment-,
// string- and preprocessor-stripped text. Deliberate non-goals (misses
// are documented, not bugs): no type inference across translation units
// (unordered-iter resolves names per file plus the same-stem header),
// and single-statement bodies of if/for (e.g. `if (x) Save();`) are not
// matched by discarded-status — the compiler's [[nodiscard]] warning
// covers those.
//
// Usage: detlint [--list-rules] <file-or-directory>...
// Exit codes: 0 = clean, 1 = findings, 2 = usage or I/O error.
//
// Directories are scanned recursively for .h/.hpp/.cc/.cpp files,
// skipping hidden directories, build* trees and detlint_fixtures (the
// seeded-violation corpus must not fail the repo-wide run; point detlint
// at a fixture file explicitly to scan it). Output lines are
// `path:line: [rule] message`, sorted by (path, line, rule) — detlint's
// own output is deterministic, of course.

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <vector>

namespace {

namespace fs = std::filesystem;

constexpr const char* kRuleUnorderedIter = "unordered-iter";
constexpr const char* kRuleRawRng = "raw-rng";
constexpr const char* kRuleRawFileIo = "raw-file-io";
constexpr const char* kRuleDiscardedStatus = "discarded-status";
constexpr const char* kRuleBadAllow = "bad-allow";

const std::set<std::string>& KnownRules() {
  static const std::set<std::string> kRules = {
      kRuleUnorderedIter, kRuleRawRng, kRuleRawFileIo, kRuleDiscardedStatus,
      kRuleBadAllow};
  return kRules;
}

struct Finding {
  std::string file;
  int line = 0;  // 1-based
  std::string rule;
  std::string message;

  bool operator<(const Finding& other) const {
    if (file != other.file) return file < other.file;
    if (line != other.line) return line < other.line;
    return rule < other.rule;
  }
};

enum class Scope { kSrc, kTests };

struct SourceFile {
  std::string path;       // as reported in findings
  std::string basename;   // for built-in seam exemptions
  std::string stem_key;   // parent-dir + stem, pairs foo.cc with foo.h
  Scope scope = Scope::kSrc;
  std::string code;                   // stripped text, newlines preserved
  std::vector<std::string> comments;  // per-line comment text
  std::vector<std::string> code_lines;
  // allow[line] = rules allowlisted for findings on that 1-based line.
  std::map<int, std::set<std::string>> allow;
  std::set<std::string> unordered_names;
};

bool IsIdentChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

bool IsIdentStart(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}

std::string Trim(const std::string& s) {
  size_t b = s.find_first_not_of(" \t\r\n");
  if (b == std::string::npos) return "";
  size_t e = s.find_last_not_of(" \t\r\n");
  return s.substr(b, e - b + 1);
}

// ---------------------------------------------------------------------
// Stripping: replaces comments, string/char literals and preprocessor
// directives with spaces (newlines kept, so offsets map to lines), and
// collects per-line comment text for pragma parsing.

struct Stripped {
  std::string code;
  std::vector<std::string> comments;
};

Stripped StripSource(const std::string& text) {
  Stripped out;
  out.code = text;
  size_t line_count = 1 + static_cast<size_t>(std::count(
                              text.begin(), text.end(), '\n'));
  out.comments.assign(line_count, "");

  size_t i = 0;
  int line = 0;
  bool at_line_start = true;  // only whitespace seen on this line so far
  auto blank = [&](size_t pos) {
    if (out.code[pos] != '\n') out.code[pos] = ' ';
  };
  while (i < text.size()) {
    char c = text[i];
    if (c == '\n') {
      ++line;
      at_line_start = true;
      ++i;
      continue;
    }
    if (at_line_start && c == '#') {
      // Preprocessor directive: blank to end of line, honoring trailing
      // backslash continuations. Pragmas on directive lines are not
      // supported.
      while (i < text.size()) {
        if (text[i] == '\n') {
          // Continuation if the last non-ws char before \n is a backslash.
          size_t j = i;
          while (j > 0 && (text[j - 1] == ' ' || text[j - 1] == '\t' ||
                           text[j - 1] == '\r')) {
            --j;
          }
          if (j > 0 && text[j - 1] == '\\') {
            ++line;
            ++i;
            continue;
          }
          break;
        }
        blank(i);
        ++i;
      }
      continue;
    }
    if (!std::isspace(static_cast<unsigned char>(c))) at_line_start = false;
    if (c == '/' && i + 1 < text.size() && text[i + 1] == '/') {
      // Line comment: blank to end of line, honoring backslash line
      // splices — phase-2 splicing joins a physical line ending in '\'
      // to the next, so the comment swallows that line too.
      size_t seg = i + 2;
      while (i < text.size()) {
        if (text[i] == '\n') {
          size_t j = i;
          while (j > 0 && (text[j - 1] == ' ' || text[j - 1] == '\t' ||
                           text[j - 1] == '\r')) {
            --j;
          }
          if (j > 0 && text[j - 1] == '\\') {
            out.comments[line] += text.substr(seg, i - seg);
            ++line;
            ++i;
            seg = i;
            continue;
          }
          break;
        }
        blank(i);
        ++i;
      }
      out.comments[line] += text.substr(seg, i - seg);
      continue;
    }
    if (c == '/' && i + 1 < text.size() && text[i + 1] == '*') {
      size_t k = i + 2;
      size_t seg_start = k;
      while (k + 1 < text.size() &&
             !(text[k] == '*' && text[k + 1] == '/')) {
        if (text[k] == '\n') {
          out.comments[line] += text.substr(seg_start, k - seg_start);
          ++line;
          seg_start = k + 1;
        }
        ++k;
      }
      size_t close = (k + 1 < text.size()) ? k + 2 : text.size();
      out.comments[line] += text.substr(
          seg_start, std::min(k, text.size()) - seg_start);
      // `line` already advanced at each newline above; blank() keeps
      // the newline characters in place.
      for (size_t p = i; p < close; ++p) blank(p);
      i = close;
      continue;
    }
    if (c == '"') {
      // Raw literal: R"..." with an optional encoding prefix (u8R, uR,
      // UR, LR), provided the prefix is not the tail of an identifier.
      bool raw = false;
      if (i > 0 && text[i - 1] == 'R') {
        size_t start = i - 1;  // first char of the literal prefix
        if (start >= 2 && text[start - 1] == '8' && text[start - 2] == 'u') {
          start -= 2;
        } else if (start >= 1 &&
                   (text[start - 1] == 'u' || text[start - 1] == 'U' ||
                    text[start - 1] == 'L')) {
          start -= 1;
        }
        raw = start == 0 || !IsIdentChar(text[start - 1]);
      }
      if (raw) {
        // R"delim( ... )delim"
        size_t open = text.find('(', i + 1);
        if (open == std::string::npos) {
          ++i;
          continue;
        }
        std::string delim = text.substr(i + 1, open - i - 1);
        std::string closer = ")" + delim + "\"";
        size_t end = text.find(closer, open + 1);
        size_t stop =
            end == std::string::npos ? text.size() : end + closer.size();
        for (size_t p = i; p < stop; ++p) {
          if (text[p] == '\n') ++line;
          blank(p);
        }
        i = stop;
        continue;
      }
      size_t k = i + 1;
      while (k < text.size() && text[k] != '"' && text[k] != '\n') {
        if (text[k] == '\\') ++k;
        ++k;
      }
      size_t stop = (k < text.size() && text[k] == '"') ? k + 1 : k;
      for (size_t p = i; p < stop; ++p) blank(p);
      i = stop;
      continue;
    }
    if (c == '\'') {
      // Guard against digit separators (1'000'000) and literal suffixes:
      // only treat as a char literal when not preceded by an ident char.
      if (i > 0 && IsIdentChar(text[i - 1])) {
        ++i;
        continue;
      }
      size_t k = i + 1;
      while (k < text.size() && text[k] != '\'' && text[k] != '\n') {
        if (text[k] == '\\') ++k;
        ++k;
      }
      size_t stop = (k < text.size() && text[k] == '\'') ? k + 1 : k;
      for (size_t p = i; p < stop; ++p) blank(p);
      i = stop;
      continue;
    }
    ++i;
  }
  return out;
}

// ---------------------------------------------------------------------
// Token helpers over stripped code.

bool TokenAt(const std::string& code, size_t pos, const std::string& token) {
  if (code.compare(pos, token.size(), token) != 0) return false;
  if (pos > 0 && IsIdentChar(code[pos - 1])) return false;
  size_t end = pos + token.size();
  return end >= code.size() || !IsIdentChar(code[end]);
}

int LineOf(const std::string& code, size_t pos) {
  return 1 + static_cast<int>(std::count(code.begin(), code.begin() + pos,
                                         '\n'));
}

size_t SkipWs(const std::string& s, size_t pos) {
  while (pos < s.size() &&
         std::isspace(static_cast<unsigned char>(s[pos]))) {
    ++pos;
  }
  return pos;
}

// Skips a balanced <...> starting at `pos` (which must point at '<').
// Returns the index one past the matching '>', or npos.
size_t SkipAngles(const std::string& s, size_t pos) {
  int depth = 0;
  for (size_t i = pos; i < s.size(); ++i) {
    if (s[i] == '<') ++depth;
    if (s[i] == '>') {
      --depth;
      if (depth == 0) return i + 1;
    }
    if (s[i] == ';') return std::string::npos;  // not a template arg list
  }
  return std::string::npos;
}

std::string ReadIdent(const std::string& s, size_t pos, size_t* end) {
  if (pos >= s.size() || !IsIdentStart(s[pos])) return "";
  size_t e = pos;
  while (e < s.size() && IsIdentChar(s[e])) ++e;
  *end = e;
  return s.substr(pos, e - pos);
}

// ---------------------------------------------------------------------
// Pragma parsing.

void ParsePragmas(SourceFile* file, std::vector<Finding>* findings) {
  for (size_t ln = 0; ln < file->comments.size(); ++ln) {
    const std::string& comment = file->comments[ln];
    size_t pos = 0;
    const int line = static_cast<int>(ln) + 1;
    while ((pos = comment.find("detlint:allow(", pos)) !=
           std::string::npos) {
      size_t open = pos + std::string("detlint:allow(").size();
      size_t close = comment.find(')', open);
      if (close == std::string::npos) {
        findings->push_back({file->path, line, kRuleBadAllow,
                             "malformed detlint:allow pragma (missing ')')"});
        break;
      }
      std::string rule = Trim(comment.substr(open, close - open));
      std::string rest = comment.substr(close + 1);
      // Justification: text after the ')' , allowing a ':' or '-' lead-in.
      size_t j = rest.find_first_not_of(" \t:-");
      std::string justification =
          j == std::string::npos ? "" : Trim(rest.substr(j));
      if (KnownRules().count(rule) == 0) {
        findings->push_back({file->path, line, kRuleBadAllow,
                             "detlint:allow names unknown rule '" + rule +
                                 "'"});
      } else if (justification.empty()) {
        findings->push_back(
            {file->path, line, kRuleBadAllow,
             "detlint:allow(" + rule +
                 ") requires a justification after the ')'"});
      } else {
        file->allow[line].insert(rule);
      }
      pos = close;
    }
  }
}

bool IsAllowed(const SourceFile& file, int line, const std::string& rule) {
  auto it = file.allow.find(line);
  if (it != file.allow.end() && it->second.count(rule)) return true;
  // A pragma in the comment block directly above covers the next code
  // line: walk up through blank and comment-only lines (so a multi-line
  // justification stays one pragma).
  for (int k = line - 1; k >= 1; --k) {
    const std::string& code = file.code_lines[static_cast<size_t>(k - 1)];
    if (!Trim(code).empty()) break;
    it = file.allow.find(k);
    if (it != file.allow.end() && it->second.count(rule)) return true;
  }
  return false;
}

// ---------------------------------------------------------------------
// Rule: unordered-iter.

void CollectUnorderedNames(SourceFile* file) {
  static const char* kContainers[] = {"unordered_map", "unordered_set",
                                      "unordered_multimap",
                                      "unordered_multiset"};
  const std::string& code = file->code;
  for (const char* container : kContainers) {
    size_t pos = 0;
    const std::string tok(container);
    while ((pos = code.find(tok, pos)) != std::string::npos) {
      if (!TokenAt(code, pos, tok)) {
        pos += tok.size();
        continue;
      }
      size_t p = SkipWs(code, pos + tok.size());
      if (p >= code.size() || code[p] != '<') {
        pos += tok.size();
        continue;
      }
      size_t after = SkipAngles(code, p);
      if (after == std::string::npos) {
        pos += tok.size();
        continue;
      }
      p = SkipWs(code, after);
      while (p < code.size() && (code[p] == '&' || code[p] == '*')) {
        p = SkipWs(code, p + 1);
      }
      size_t end = 0;
      std::string name = ReadIdent(code, p, &end);
      if (!name.empty()) {
        // `unordered_map<...> Fn(` declares a function returning the
        // container, not a variable.
        size_t q = SkipWs(code, end);
        if (q >= code.size() || code[q] != '(') {
          file->unordered_names.insert(name);
        }
      }
      pos = after;
    }
  }
}

// Trailing identifier of an expression like `foo.bar_`, `p->items()`,
// `ns::table`. Empty if the expression ends in something else.
std::string TrailingIdent(const std::string& expr) {
  std::string t = Trim(expr);
  if (t.empty() || !IsIdentChar(t.back())) return "";
  size_t b = t.size();
  while (b > 0 && IsIdentChar(t[b - 1])) --b;
  return t.substr(b);
}

void CheckUnorderedIter(const SourceFile& file,
                        const std::set<std::string>& names,
                        std::vector<Finding>* findings) {
  if (names.empty()) return;
  const std::string& code = file.code;
  auto report = [&](size_t pos, const std::string& name) {
    findings->push_back(
        {file.path, LineOf(code, pos), kRuleUnorderedIter,
         "iterating unordered container '" + name +
             "': order is implementation-defined and breaks bit-identical "
             "output; iterate a sorted copy or an order-preserving index"});
  };
  // Range-for over a collected name.
  size_t pos = 0;
  while ((pos = code.find("for", pos)) != std::string::npos) {
    if (!TokenAt(code, pos, "for")) {
      pos += 3;
      continue;
    }
    size_t open = SkipWs(code, pos + 3);
    if (open >= code.size() || code[open] != '(') {
      pos += 3;
      continue;
    }
    // Find the range-for ':' at paren depth 1 (':' not part of '::').
    int depth = 0;
    size_t colon = std::string::npos, close = std::string::npos;
    for (size_t i = open; i < code.size(); ++i) {
      char c = code[i];
      if (c == '(') ++depth;
      if (c == ')') {
        --depth;
        if (depth == 0) {
          close = i;
          break;
        }
      }
      if (c == ';') break;  // classic for loop
      if (c == ':' && depth == 1) {
        bool dbl = (i + 1 < code.size() && code[i + 1] == ':') ||
                   (i > 0 && code[i - 1] == ':');
        if (!dbl && colon == std::string::npos) colon = i;
      }
    }
    if (colon != std::string::npos && close != std::string::npos) {
      std::string range = code.substr(colon + 1, close - colon - 1);
      std::string name = TrailingIdent(range);
      if (!name.empty() && names.count(name)) report(pos, name);
    }
    pos += 3;
  }
  // Explicit iterator harvesting: name.begin()/cbegin()/rbegin().
  for (const std::string& name : names) {
    size_t p = 0;
    while ((p = code.find(name, p)) != std::string::npos) {
      if (!TokenAt(code, p, name)) {
        p += name.size();
        continue;
      }
      size_t q = SkipWs(code, p + name.size());
      if (q < code.size() && code[q] == '.') {
        size_t end = 0;
        std::string member = ReadIdent(code, SkipWs(code, q + 1), &end);
        if (member == "begin" || member == "cbegin" || member == "rbegin" ||
            member == "crbegin") {
          report(p, name);
        }
      }
      p += name.size();
    }
  }
}

// ---------------------------------------------------------------------
// Rule: raw-rng and raw-file-io (token scans).

struct TokenRule {
  const char* token;
  bool call_like;  // require a following '(' and a non-member context
  const char* what;
};

void CheckTokens(const SourceFile& file, const char* rule,
                 const std::vector<TokenRule>& tokens,
                 const std::string& remedy,
                 std::vector<Finding>* findings) {
  const std::string& code = file.code;
  for (const TokenRule& t : tokens) {
    const std::string tok(t.token);
    size_t pos = 0;
    while ((pos = code.find(tok, pos)) != std::string::npos) {
      if (!TokenAt(code, pos, tok)) {
        pos += tok.size();
        continue;
      }
      // Member accesses (`x.time(...)`, `d->rand(...)`) are not the
      // global facilities these rules police.
      bool member = false;
      if (pos > 0) {
        size_t b = pos;
        while (b > 0 && std::isspace(static_cast<unsigned char>(
                            code[b - 1]))) {
          --b;
        }
        if (b > 0 && code[b - 1] == '.') member = true;
        if (b > 1 && code[b - 2] == '-' && code[b - 1] == '>') member = true;
      }
      if (member) {
        pos += tok.size();
        continue;
      }
      if (t.call_like) {
        size_t q = SkipWs(code, pos + tok.size());
        if (q >= code.size() || code[q] != '(') {
          pos += tok.size();
          continue;
        }
      }
      findings->push_back({file.path, LineOf(code, pos), rule,
                           std::string(t.what) + "; " + remedy});
      pos += tok.size();
    }
  }
}

void CheckRawRng(const SourceFile& file, std::vector<Finding>* findings) {
  if (file.basename == "rng.h" || file.basename == "rng.cc" ||
      file.basename == "stopwatch.h") {
    return;
  }
  static const std::vector<TokenRule> kTokens = {
      {"rand", true, "rand() is unseeded global state"},
      {"srand", true, "srand() mutates unseeded global state"},
      {"random_device", false, "std::random_device is non-deterministic"},
      {"mt19937", false, "raw std::mt19937 bypasses the Rng sub-streams"},
      {"mt19937_64", false, "raw std::mt19937_64 bypasses the Rng sub-streams"},
      {"default_random_engine", false,
       "std::default_random_engine is implementation-defined"},
      {"system_clock", false, "wall-clock time is non-deterministic"},
      {"high_resolution_clock", false,
       "high_resolution_clock is an unspecified alias; use Stopwatch"},
      {"time", true, "time() reads the wall clock"},
      {"clock", true, "clock() reads process time"},
      {"localtime", true, "localtime() reads the wall clock"},
      {"gmtime", true, "gmtime() reads the wall clock"},
  };
  CheckTokens(file, kRuleRawRng, kTokens,
              "derive randomness from common/rng.h sub-streams and timing "
              "from common/stopwatch.h",
              findings);
}

void CheckRawFileIo(const SourceFile& file,
                    std::vector<Finding>* findings) {
  if (file.scope != Scope::kSrc) return;
  if (file.basename == "file_env.h" || file.basename == "file_env.cc") {
    return;
  }
  static const std::vector<TokenRule> kTokens = {
      {"ofstream", false, "std::ofstream bypasses the FileEnv seam"},
      {"ifstream", false, "std::ifstream bypasses the FileEnv seam"},
      {"fstream", false, "std::fstream bypasses the FileEnv seam"},
      {"fopen", true, "fopen() bypasses the FileEnv seam"},
      {"freopen", true, "freopen() bypasses the FileEnv seam"},
      {"filesystem", false,
       "direct std::filesystem calls bypass the FileEnv seam"},
  };
  CheckTokens(file, kRuleRawFileIo, kTokens,
              "route file I/O through io/file_env.h so fault injection "
              "(PR 8) sees it",
              findings);
}

// ---------------------------------------------------------------------
// Rule: discarded-status.

// Collects names declared with return type Status/Result<...> into
// `names`, and names with a void-returning declaration into `void_names`.
// A name appearing in both sets has conflicting overloads (e.g. the
// BinaryWriter/BinaryReader U32 pair: `void U32(uint32_t)` vs
// `Status U32(uint32_t*)`) that name-level matching cannot separate, so
// the caller drops it — the compiler's [[nodiscard]] still covers those
// sites.
void CollectStatusFunctions(const SourceFile& file,
                            std::set<std::string>* names,
                            std::set<std::string>* void_names) {
  const std::string& code = file.code;
  {
    const std::string tok("void");
    size_t pos = 0;
    while ((pos = code.find(tok, pos)) != std::string::npos) {
      if (!TokenAt(code, pos, tok)) {
        pos += tok.size();
        continue;
      }
      size_t p = SkipWs(code, pos + tok.size());
      size_t end = 0;
      std::string name = ReadIdent(code, p, &end);
      if (!name.empty()) {
        size_t q = SkipWs(code, end);
        // Qualified definitions: void Class::Method(...).
        while (q + 1 < code.size() && code[q] == ':' && code[q + 1] == ':') {
          std::string next = ReadIdent(code, SkipWs(code, q + 2), &end);
          if (next.empty()) break;
          name = next;
          q = SkipWs(code, end);
        }
        if (q < code.size() && code[q] == '(') void_names->insert(name);
      }
      pos += tok.size();
    }
  }
  for (const char* ret : {"Status", "Result"}) {
    const std::string tok(ret);
    size_t pos = 0;
    while ((pos = code.find(tok, pos)) != std::string::npos) {
      if (!TokenAt(code, pos, tok)) {
        pos += tok.size();
        continue;
      }
      size_t p = pos + tok.size();
      if (tok == "Result") {
        p = SkipWs(code, p);
        if (p >= code.size() || code[p] != '<') {
          pos += tok.size();
          continue;
        }
        p = SkipAngles(code, p);
        if (p == std::string::npos) {
          pos += tok.size();
          continue;
        }
      }
      p = SkipWs(code, p);
      // Reference/pointer returns are observed via the referent; only
      // by-value returns are discard hazards.
      if (p < code.size() && (code[p] == '&' || code[p] == '*')) {
        pos += tok.size();
        continue;
      }
      size_t end = 0;
      std::string name = ReadIdent(code, p, &end);
      if (name.empty()) {
        pos += tok.size();
        continue;
      }
      // Qualified definitions: Status Class::Method(...) — keep the last
      // component.
      size_t q = end;
      while (true) {
        size_t r = SkipWs(code, q);
        if (r + 1 < code.size() && code[r] == ':' && code[r + 1] == ':') {
          std::string next = ReadIdent(code, SkipWs(code, r + 2), &q);
          if (next.empty()) break;
          name = next;
        } else {
          q = r;
          break;
        }
      }
      if (q < code.size() && code[q] == '(') names->insert(name);
      pos += tok.size();
    }
  }
}

// True if `stmt` is exactly a (possibly qualified) call expression:
// `a.b->C::Name( ... )`. Writes the final callee name.
bool MatchWholeCall(const std::string& stmt, std::string* callee) {
  size_t pos = SkipWs(stmt, 0);
  std::string last;
  while (true) {
    size_t end = 0;
    std::string ident = ReadIdent(stmt, pos, &end);
    if (ident.empty()) return false;
    last = ident;
    pos = SkipWs(stmt, end);
    if (pos + 1 < stmt.size() && stmt[pos] == ':' && stmt[pos + 1] == ':') {
      pos = SkipWs(stmt, pos + 2);
      continue;
    }
    if (pos < stmt.size() && stmt[pos] == '.') {
      pos = SkipWs(stmt, pos + 1);
      continue;
    }
    if (pos + 1 < stmt.size() && stmt[pos] == '-' && stmt[pos + 1] == '>') {
      pos = SkipWs(stmt, pos + 2);
      continue;
    }
    if (pos < stmt.size() && stmt[pos] == '(') {
      int depth = 0;
      for (size_t i = pos; i < stmt.size(); ++i) {
        if (stmt[i] == '(') ++depth;
        if (stmt[i] == ')') {
          --depth;
          if (depth == 0) {
            if (SkipWs(stmt, i + 1) != stmt.size()) return false;
            *callee = last;
            return true;
          }
        }
      }
      return false;
    }
    return false;
  }
}

void CheckDiscardedStatus(const SourceFile& file,
                          const std::set<std::string>& status_fns,
                          std::vector<Finding>* findings) {
  if (status_fns.empty()) return;
  const std::string& code = file.code;
  size_t stmt_start = 0;
  int depth = 0;
  for (size_t i = 0; i < code.size(); ++i) {
    char c = code[i];
    if (c == '(') ++depth;
    if (c == ')') --depth;
    if (c == '{' || c == '}' || (c == ';' && depth == 0)) {
      if (c == ';') {
        std::string stmt = code.substr(stmt_start, i - stmt_start);
        std::string callee;
        if (MatchWholeCall(stmt, &callee) && status_fns.count(callee)) {
          // Report at the first non-ws char of the statement.
          size_t nws = code.find_first_not_of(" \t\r\n", stmt_start);
          size_t first = nws == std::string::npos ? stmt_start : nws;
          findings->push_back(
              {file.path, LineOf(code, first), kRuleDiscardedStatus,
               "result of '" + callee +
                   "' (returns Status/Result) is discarded; handle it or "
                   "write `(void)" +
                   callee + "(...);` with a comment saying why"});
        }
      }
      stmt_start = i + 1;
      if (c != ';') depth = 0;
    }
  }
}

// ---------------------------------------------------------------------
// File loading and directory walking.

bool HasSourceExtension(const fs::path& p) {
  std::string ext = p.extension().string();
  return ext == ".h" || ext == ".hpp" || ext == ".cc" || ext == ".cpp";
}

Scope ClassifyScope(const std::string& generic_path) {
  // Last marker wins, so tests/detlint_fixtures/src/x.cc scopes as src.
  auto last_of = [&](const std::string& marker) -> long {
    size_t p = generic_path.rfind("/" + marker + "/");
    if (p != std::string::npos) return static_cast<long>(p);
    if (generic_path.rfind(marker + "/", 0) == 0) return 0;
    return -1;
  };
  return last_of("tests") > last_of("src") ? Scope::kTests : Scope::kSrc;
}

bool LoadFile(const fs::path& path, SourceFile* out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  std::ostringstream buf;
  buf << in.rdbuf();
  std::string text = buf.str();

  out->path = path.generic_string();
  out->basename = path.filename().string();
  out->stem_key = (path.parent_path() / path.stem()).generic_string();
  out->scope = ClassifyScope(out->path);
  Stripped stripped = StripSource(text);
  out->code = std::move(stripped.code);
  out->comments = std::move(stripped.comments);
  out->code_lines.clear();
  std::istringstream lines(out->code);
  for (std::string line; std::getline(lines, line);) {
    out->code_lines.push_back(line);
  }
  out->code_lines.resize(out->comments.size());
  return true;
}

void CollectFiles(const fs::path& root, std::vector<fs::path>* files,
                  bool explicit_root) {
  std::error_code ec;
  if (fs::is_regular_file(root, ec)) {
    files->push_back(root);
    return;
  }
  if (!fs::is_directory(root, ec)) return;
  std::vector<fs::path> entries;
  for (const auto& entry : fs::directory_iterator(root, ec)) {
    entries.push_back(entry.path());
  }
  std::sort(entries.begin(), entries.end());
  for (const fs::path& p : entries) {
    std::string name = p.filename().string();
    if (fs::is_directory(p, ec)) {
      if (!name.empty() && name[0] == '.') continue;
      if (name.rfind("build", 0) == 0) continue;
      if (name == "detlint_fixtures" || name == "third_party") continue;
      CollectFiles(p, files, /*explicit_root=*/false);
    } else if (HasSourceExtension(p)) {
      files->push_back(p);
    }
  }
  (void)explicit_root;  // reserved: explicit roots are always scanned
}

void PrintRules() {
  std::printf("%-18s iteration over std::unordered_* containers\n",
              kRuleUnorderedIter);
  std::printf("%-18s rand()/random_device/mt19937/time()/system_clock "
              "outside common/rng, common/stopwatch\n",
              kRuleRawRng);
  std::printf("%-18s ofstream/ifstream/fopen/std::filesystem in src/ "
              "outside io/file_env\n",
              kRuleRawFileIo);
  std::printf("%-18s bare statement discarding a Status/Result return\n",
              kRuleDiscardedStatus);
  std::printf("%-18s detlint:allow pragma without justification or with "
              "unknown rule id\n",
              kRuleBadAllow);
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<fs::path> roots;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--list-rules") {
      PrintRules();
      return 0;
    }
    if (arg == "--help" || arg == "-h") {
      std::printf("usage: detlint [--list-rules] <file-or-dir>...\n");
      return 0;
    }
    roots.emplace_back(arg);
  }
  if (roots.empty()) {
    std::fprintf(stderr, "usage: detlint [--list-rules] <file-or-dir>...\n");
    return 2;
  }

  std::vector<fs::path> paths;
  for (const fs::path& root : roots) {
    std::error_code ec;
    if (!fs::exists(root, ec)) {
      std::fprintf(stderr, "detlint: no such path: %s\n",
                   root.string().c_str());
      return 2;
    }
    CollectFiles(root, &paths, /*explicit_root=*/true);
  }
  std::sort(paths.begin(), paths.end());
  paths.erase(std::unique(paths.begin(), paths.end()), paths.end());

  std::vector<SourceFile> files(paths.size());
  std::vector<Finding> findings;
  std::set<std::string> status_fns;
  std::set<std::string> void_fns;
  std::map<std::string, std::set<std::string>> names_by_stem;
  for (size_t i = 0; i < paths.size(); ++i) {
    if (!LoadFile(paths[i], &files[i])) {
      std::fprintf(stderr, "detlint: cannot read %s\n",
                   paths[i].string().c_str());
      return 2;
    }
    ParsePragmas(&files[i], &findings);
    CollectUnorderedNames(&files[i]);
    CollectStatusFunctions(files[i], &status_fns, &void_fns);
    names_by_stem[files[i].stem_key].insert(
        files[i].unordered_names.begin(), files[i].unordered_names.end());
  }
  // Drop names with conflicting (void) overloads — see
  // CollectStatusFunctions.
  for (const std::string& name : void_fns) status_fns.erase(name);

  for (const SourceFile& file : files) {
    // A .cc sees the unordered members its same-stem header declares.
    std::set<std::string> names = names_by_stem[file.stem_key];
    CheckUnorderedIter(file, names, &findings);
    CheckRawRng(file, &findings);
    CheckRawFileIo(file, &findings);
    CheckDiscardedStatus(file, status_fns, &findings);
  }

  std::vector<Finding> kept;
  for (const Finding& f : findings) {
    const SourceFile* file = nullptr;
    for (const SourceFile& s : files) {
      if (s.path == f.file) {
        file = &s;
        break;
      }
    }
    // bad-allow findings are never allowlistable.
    if (f.rule != kRuleBadAllow && file != nullptr &&
        IsAllowed(*file, f.line, f.rule)) {
      continue;
    }
    kept.push_back(f);
  }
  std::sort(kept.begin(), kept.end());
  kept.erase(std::unique(kept.begin(), kept.end(),
                         [](const Finding& a, const Finding& b) {
                           return a.file == b.file && a.line == b.line &&
                                  a.rule == b.rule && a.message == b.message;
                         }),
             kept.end());

  for (const Finding& f : kept) {
    std::printf("%s:%d: [%s] %s\n", f.file.c_str(), f.line, f.rule.c_str(),
                f.message.c_str());
  }
  std::printf("detlint: %zu finding(s) in %zu file(s) scanned.\n",
              kept.size(), files.size());
  return kept.empty() ? 0 : 1;
}
