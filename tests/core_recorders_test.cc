// Recorder tests: the three utility-matrix materializations agree with
// each other and with direct utility evaluation.
#include "core/recorders.h"

#include <gtest/gtest.h>

#include <set>

#include "data/image_sim.h"
#include "data/partition.h"
#include "fl/fedavg.h"
#include "models/logistic.h"
#include "shapley/utility.h"

namespace comfedsv {
namespace {

struct Workload {
  std::vector<Dataset> clients;
  Dataset test;
};

Workload MakeWorkload(int num_clients, uint64_t seed) {
  SimulatedImageConfig cfg;
  cfg.num_samples = 60 * num_clients + 100;
  cfg.seed = seed;
  Dataset pool = GenerateSimulatedImages(cfg);
  Rng rng(seed + 1);
  auto [train_pool, test] = pool.RandomSplit(0.25, &rng);
  return {PartitionIid(train_pool, num_clients, &rng), std::move(test)};
}

FedAvgConfig SmallFedConfig(int rounds, int per_round, uint64_t seed) {
  FedAvgConfig cfg;
  cfg.num_rounds = rounds;
  cfg.clients_per_round = per_round;
  cfg.select_all_first_round = true;
  cfg.lr = LearningRateSchedule::Constant(0.3);
  cfg.seed = seed;
  return cfg;
}

TEST(FullUtilityRecorderTest, MatrixShapeAndEmptyColumn) {
  Workload w = MakeWorkload(4, 3);
  LogisticRegression model(w.test.dim(), 10);
  FullUtilityRecorder recorder(&model, &w.test, 4);
  FedAvgTrainer trainer(&model, w.clients, w.test,
                        SmallFedConfig(3, 2, 7));
  ASSERT_TRUE(trainer.Train(&recorder).ok());
  Matrix u = recorder.ToMatrix();
  EXPECT_EQ(u.rows(), 3u);
  EXPECT_EQ(u.cols(), 16u);
  // Column 0 is the empty coalition: always zero.
  for (size_t t = 0; t < 3; ++t) EXPECT_DOUBLE_EQ(u(t, 0), 0.0);
  // 2^N - 1 utility evaluations per round.
  EXPECT_EQ(recorder.loss_calls(), 3 * 15);
}

TEST(FullUtilityRecorderTest, EntriesMatchDirectUtility) {
  Workload w = MakeWorkload(3, 5);
  LogisticRegression model(w.test.dim(), 10);
  FullUtilityRecorder recorder(&model, &w.test, 3);

  // Capture the records to recompute utilities independently.
  struct Capture : RoundObserver {
    std::vector<RoundRecord> records;
    void OnRound(const RoundRecord& r) override { records.push_back(r); }
  } capture;

  FanoutObserver both;
  both.Register(&recorder);
  both.Register(&capture);

  FedAvgTrainer trainer(&model, w.clients, w.test,
                        SmallFedConfig(2, 2, 9));
  ASSERT_TRUE(trainer.Train(&both).ok());
  Matrix u = recorder.ToMatrix();
  for (size_t t = 0; t < capture.records.size(); ++t) {
    RoundUtility util(&model, &w.test, &capture.records[t]);
    for (uint32_t mask = 0; mask < 8; ++mask) {
      Coalition c(3);
      for (int i = 0; i < 3; ++i) {
        if (mask & (1u << i)) c.Add(i);
      }
      EXPECT_NEAR(u(t, mask), util.Utility(c), 1e-12)
          << "t=" << t << " mask=" << mask;
    }
  }
}

TEST(ObservedUtilityRecorderTest, FirstRoundObservesAllColumns) {
  Workload w = MakeWorkload(4, 11);
  LogisticRegression model(w.test.dim(), 10);
  ObservedUtilityRecorder recorder(&model, &w.test, 4);
  FedAvgTrainer trainer(&model, w.clients, w.test,
                        SmallFedConfig(4, 2, 13));
  ASSERT_TRUE(trainer.Train(&recorder).ok());
  // Assumption 1: round 0 selects everyone, interning all 2^4 columns.
  EXPECT_EQ(recorder.interner().size(), 16);
  ObservationSet obs = recorder.BuildObservations();
  EXPECT_EQ(obs.num_rows(), 4);
  EXPECT_EQ(obs.num_cols(), 16);
  // Round 0 contributes 16 entries (incl. empty), later rounds 4 each.
  EXPECT_EQ(obs.size(), 16u + 3u * 4u);
}

TEST(ObservedUtilityRecorderTest, ObservedEntriesAreSubsetsOfSelected) {
  Workload w = MakeWorkload(5, 15);
  LogisticRegression model(w.test.dim(), 10);
  ObservedUtilityRecorder recorder(&model, &w.test, 5);

  struct Capture : RoundObserver {
    std::vector<std::vector<int>> selected;
    void OnRound(const RoundRecord& r) override {
      selected.push_back(r.selected);
    }
  } capture;
  FanoutObserver both;
  both.Register(&recorder);
  both.Register(&capture);

  FedAvgTrainer trainer(&model, w.clients, w.test,
                        SmallFedConfig(5, 2, 17));
  ASSERT_TRUE(trainer.Train(&both).ok());
  ObservationSet obs = recorder.BuildObservations();
  for (const Observation& o : obs.entries()) {
    const Coalition& c = recorder.interner().Get(o.col);
    Coalition sel = Coalition::FromMembers(5, capture.selected[o.row]);
    EXPECT_TRUE(c.IsSubsetOf(sel))
        << "round " << o.row << " coalition not within I_t";
  }
}

TEST(SampledUtilityRecorderTest, PrefixColumnStructure) {
  Workload w = MakeWorkload(6, 19);
  LogisticRegression model(w.test.dim(), 10);
  SampledUtilityRecorder recorder(&model, &w.test, 6,
                                  /*num_permutations=*/5, /*seed=*/21);
  // 5 permutations of 6 clients: prefix table is 5 x 7; all length-0
  // prefixes share the empty column; full-set prefixes share one column.
  const auto& pc = recorder.prefix_columns();
  ASSERT_EQ(pc.size(), 5u);
  for (const auto& row : pc) ASSERT_EQ(row.size(), 7u);
  std::set<int> empty_cols, full_cols;
  for (const auto& row : pc) {
    empty_cols.insert(row[0]);
    full_cols.insert(row[6]);
  }
  EXPECT_EQ(empty_cols.size(), 1u);
  EXPECT_EQ(full_cols.size(), 1u);
  // Columns <= 5 * 5 distinct non-trivial prefixes + empty + full.
  EXPECT_LE(recorder.interner().size(), 5 * 5 + 2);
}

TEST(SampledUtilityRecorderTest, RecordsOnlyPrefixesInsideSelected) {
  Workload w = MakeWorkload(6, 23);
  LogisticRegression model(w.test.dim(), 10);
  SampledUtilityRecorder recorder(&model, &w.test, 6, 8, 25);

  struct Capture : RoundObserver {
    std::vector<std::vector<int>> selected;
    void OnRound(const RoundRecord& r) override {
      selected.push_back(r.selected);
    }
  } capture;
  FanoutObserver both;
  both.Register(&recorder);
  both.Register(&capture);

  FedAvgTrainer trainer(&model, w.clients, w.test,
                        SmallFedConfig(4, 2, 27));
  ASSERT_TRUE(trainer.Train(&both).ok());
  ObservationSet obs = recorder.BuildObservations();
  EXPECT_GT(obs.size(), 0u);
  for (const Observation& o : obs.entries()) {
    const Coalition& c = recorder.interner().Get(o.col);
    Coalition sel = Coalition::FromMembers(6, capture.selected[o.row]);
    EXPECT_TRUE(c.IsSubsetOf(sel));
  }
  // Round 0 (everyone selected) must observe every prefix column.
  std::set<int> round0_cols;
  for (const Observation& o : obs.entries()) {
    if (o.row == 0) round0_cols.insert(o.col);
  }
  EXPECT_EQ(static_cast<int>(round0_cols.size()),
            recorder.interner().size());
}

TEST(SampledUtilityRecorderTest, SupportsManyClients) {
  // The Algorithm 1 path must work beyond the 2^N regime.
  Workload w = MakeWorkload(30, 29);
  LogisticRegression model(w.test.dim(), 10);
  SampledUtilityRecorder recorder(&model, &w.test, 30, 10, 31);
  FedAvgTrainer trainer(&model, w.clients, w.test,
                        SmallFedConfig(3, 5, 33));
  ASSERT_TRUE(trainer.Train(&recorder).ok());
  ObservationSet obs = recorder.BuildObservations();
  EXPECT_EQ(obs.num_rows(), 3);
  EXPECT_GT(obs.size(), 0u);
  EXPECT_GT(recorder.loss_calls(), 0);
}

}  // namespace
}  // namespace comfedsv
