// Recorder tests: the three utility-matrix materializations agree with
// each other and with direct utility evaluation.
#include "core/recorders.h"

#include <gtest/gtest.h>

#include <set>
#include <tuple>
#include <utility>

#include "data/image_sim.h"
#include "data/partition.h"
#include "fl/fedavg.h"
#include "models/logistic.h"
#include "shapley/utility.h"

namespace comfedsv {
namespace {

struct Workload {
  std::vector<Dataset> clients;
  Dataset test;
};

Workload MakeWorkload(int num_clients, uint64_t seed) {
  SimulatedImageConfig cfg;
  cfg.num_samples = 60 * num_clients + 100;
  cfg.seed = seed;
  Dataset pool = GenerateSimulatedImages(cfg);
  Rng rng(seed + 1);
  auto [train_pool, test] = pool.RandomSplit(0.25, &rng);
  return {PartitionIid(train_pool, num_clients, &rng), std::move(test)};
}

FedAvgConfig SmallFedConfig(int rounds, int per_round, uint64_t seed) {
  FedAvgConfig cfg;
  cfg.num_rounds = rounds;
  cfg.clients_per_round = per_round;
  cfg.select_all_first_round = true;
  cfg.lr = LearningRateSchedule::Constant(0.3);
  cfg.seed = seed;
  return cfg;
}

TEST(FullUtilityRecorderTest, MatrixShapeAndEmptyColumn) {
  Workload w = MakeWorkload(4, 3);
  LogisticRegression model(w.test.dim(), 10);
  FullUtilityRecorder recorder(&model, &w.test, 4);
  FedAvgTrainer trainer(&model, w.clients, w.test,
                        SmallFedConfig(3, 2, 7));
  ASSERT_TRUE(trainer.Train(&recorder).ok());
  Matrix u = recorder.ToMatrix();
  EXPECT_EQ(u.rows(), 3u);
  EXPECT_EQ(u.cols(), 16u);
  // Column 0 is the empty coalition: always zero.
  for (size_t t = 0; t < 3; ++t) EXPECT_DOUBLE_EQ(u(t, 0), 0.0);
  // 2^N - 1 utility evaluations per round.
  EXPECT_EQ(recorder.loss_calls(), 3 * 15);
}

TEST(FullUtilityRecorderTest, EntriesMatchDirectUtility) {
  Workload w = MakeWorkload(3, 5);
  LogisticRegression model(w.test.dim(), 10);
  FullUtilityRecorder recorder(&model, &w.test, 3);

  // Capture the records to recompute utilities independently.
  struct Capture : RoundObserver {
    std::vector<RoundRecord> records;
    void OnRound(const RoundRecord& r) override { records.push_back(r); }
  } capture;

  FanoutObserver both;
  both.Register(&recorder);
  both.Register(&capture);

  FedAvgTrainer trainer(&model, w.clients, w.test,
                        SmallFedConfig(2, 2, 9));
  ASSERT_TRUE(trainer.Train(&both).ok());
  Matrix u = recorder.ToMatrix();
  for (size_t t = 0; t < capture.records.size(); ++t) {
    RoundUtility util(&model, &w.test, &capture.records[t]);
    for (uint32_t mask = 0; mask < 8; ++mask) {
      Coalition c(3);
      for (int i = 0; i < 3; ++i) {
        if (mask & (1u << i)) c.Add(i);
      }
      EXPECT_NEAR(u(t, mask), util.Utility(c), 1e-12)
          << "t=" << t << " mask=" << mask;
    }
  }
}

TEST(ObservedUtilityRecorderTest, FirstRoundObservesAllColumns) {
  Workload w = MakeWorkload(4, 11);
  LogisticRegression model(w.test.dim(), 10);
  ObservedUtilityRecorder recorder(&model, &w.test, 4);
  FedAvgTrainer trainer(&model, w.clients, w.test,
                        SmallFedConfig(4, 2, 13));
  ASSERT_TRUE(trainer.Train(&recorder).ok());
  // Assumption 1: round 0 selects everyone, interning all 2^4 columns.
  EXPECT_EQ(recorder.interner().size(), 16);
  ObservationSet obs = recorder.BuildObservations();
  EXPECT_EQ(obs.num_rows(), 4);
  EXPECT_EQ(obs.num_cols(), 16);
  // Round 0 contributes 16 entries (incl. empty), later rounds 4 each.
  EXPECT_EQ(obs.size(), 16u + 3u * 4u);
}

TEST(ObservedUtilityRecorderTest, ObservedEntriesAreSubsetsOfSelected) {
  Workload w = MakeWorkload(5, 15);
  LogisticRegression model(w.test.dim(), 10);
  ObservedUtilityRecorder recorder(&model, &w.test, 5);

  struct Capture : RoundObserver {
    std::vector<std::vector<int>> selected;
    void OnRound(const RoundRecord& r) override {
      selected.push_back(r.selected);
    }
  } capture;
  FanoutObserver both;
  both.Register(&recorder);
  both.Register(&capture);

  FedAvgTrainer trainer(&model, w.clients, w.test,
                        SmallFedConfig(5, 2, 17));
  ASSERT_TRUE(trainer.Train(&both).ok());
  ObservationSet obs = recorder.BuildObservations();
  for (const Observation& o : obs.entries()) {
    const Coalition& c = recorder.interner().Get(o.col);
    Coalition sel = Coalition::FromMembers(5, capture.selected[o.row]);
    EXPECT_TRUE(c.IsSubsetOf(sel))
        << "round " << o.row << " coalition not within I_t";
  }
}

TEST(SampledUtilityRecorderTest, PrefixColumnStructure) {
  Workload w = MakeWorkload(6, 19);
  LogisticRegression model(w.test.dim(), 10);
  SampledUtilityRecorder recorder(&model, &w.test, 6,
                                  /*num_permutations=*/5, /*seed=*/21);
  // 5 permutations of 6 clients: prefix table is 5 x 7; all length-0
  // prefixes share the empty column; full-set prefixes share one column.
  const auto& pc = recorder.prefix_columns();
  ASSERT_EQ(pc.size(), 5u);
  for (const auto& row : pc) ASSERT_EQ(row.size(), 7u);
  std::set<int> empty_cols, full_cols;
  for (const auto& row : pc) {
    empty_cols.insert(row[0]);
    full_cols.insert(row[6]);
  }
  EXPECT_EQ(empty_cols.size(), 1u);
  EXPECT_EQ(full_cols.size(), 1u);
  // Columns <= 5 * 5 distinct non-trivial prefixes + empty + full.
  EXPECT_LE(recorder.interner().size(), 5 * 5 + 2);
}

TEST(SampledUtilityRecorderTest, RecordsOnlyPrefixesInsideSelected) {
  Workload w = MakeWorkload(6, 23);
  LogisticRegression model(w.test.dim(), 10);
  SampledUtilityRecorder recorder(&model, &w.test, 6, 8, 25);

  struct Capture : RoundObserver {
    std::vector<std::vector<int>> selected;
    void OnRound(const RoundRecord& r) override {
      selected.push_back(r.selected);
    }
  } capture;
  FanoutObserver both;
  both.Register(&recorder);
  both.Register(&capture);

  FedAvgTrainer trainer(&model, w.clients, w.test,
                        SmallFedConfig(4, 2, 27));
  ASSERT_TRUE(trainer.Train(&both).ok());
  ObservationSet obs = recorder.BuildObservations();
  EXPECT_GT(obs.size(), 0u);
  for (const Observation& o : obs.entries()) {
    const Coalition& c = recorder.interner().Get(o.col);
    Coalition sel = Coalition::FromMembers(6, capture.selected[o.row]);
    EXPECT_TRUE(c.IsSubsetOf(sel));
  }
  // Round 0 (everyone selected) must observe every prefix column.
  std::set<int> round0_cols;
  for (const Observation& o : obs.entries()) {
    if (o.row == 0) round0_cols.insert(o.col);
  }
  EXPECT_EQ(static_cast<int>(round0_cols.size()),
            recorder.interner().size());
}

TEST(RecorderEmptyRoundTest, EmptySelectedRoundsAreSkipped) {
  // Bernoulli-style selection can produce a round with no selected
  // clients; every recorder must skip it (no triplets, no row, no loss
  // calls) instead of emitting an empty observation row.
  Workload w = MakeWorkload(3, 91);
  LogisticRegression model(w.test.dim(), 10);
  Vector params;
  Rng rng(5);
  model.InitializeParams(&params, &rng);

  RoundRecord real;
  real.round = 0;
  real.global_before = params;
  for (int i = 0; i < 3; ++i) {
    Vector local = params;
    local[0] += 0.01 * (i + 1);
    real.local_models.push_back(std::move(local));
  }
  real.selected = {0, 1, 2};
  real.test_loss_before = model.Loss(params, w.test);
  RoundRecord empty = real;
  empty.selected.clear();

  FullUtilityRecorder full(&model, &w.test, 3);
  full.OnRound(empty);
  EXPECT_EQ(full.loss_calls(), 0);
  full.OnRound(real);
  full.OnRound(empty);
  EXPECT_EQ(full.ToMatrix().rows(), 1u);

  ObservedUtilityRecorder observed(&model, &w.test, 3);
  observed.OnRound(empty);
  EXPECT_EQ(observed.rounds_recorded(), 0);
  EXPECT_EQ(observed.loss_calls(), 0);
  observed.OnRound(real);
  EXPECT_EQ(observed.rounds_recorded(), 1);

  for (SamplerKind kind :
       {SamplerKind::kUniformIid, SamplerKind::kTruncated}) {
    SamplerConfig cfg;
    cfg.kind = kind;
    SampledUtilityRecorder sampled(&model, &w.test, 3, 4, 7, cfg);
    sampled.OnRound(empty);
    EXPECT_EQ(sampled.rounds_recorded(), 0) << SamplerKindName(kind);
    EXPECT_EQ(sampled.loss_calls(), 0) << SamplerKindName(kind);
    sampled.OnRound(real);
    EXPECT_EQ(sampled.rounds_recorded(), 1) << SamplerKindName(kind);
  }
}

TEST(SampledUtilityRecorderTest, TruncatedModeSkipsTailLossCalls) {
  // Same seed => same permutations; only the walk behavior differs.
  // With tolerance 0 the truncated recorder measures exactly the uniform
  // recorder's entry set (plus at most one reference loss call per
  // round); with an effectively-infinite tolerance every permutation
  // truncates after its first position — far fewer loss calls — while
  // still *recording* every observable prefix column (at the U_t(I_t)
  // reference value), so the completion never sees an unobserved column.
  Workload w = MakeWorkload(6, 95);
  LogisticRegression model(w.test.dim(), 10);

  SampledUtilityRecorder uniform(&model, &w.test, 6, 5, 43);
  SamplerConfig tight;
  tight.kind = SamplerKind::kTruncated;
  tight.truncation_tolerance = 0.0;
  SampledUtilityRecorder truncated_tight(&model, &w.test, 6, 5, 43, tight);
  SamplerConfig loose;
  loose.kind = SamplerKind::kTruncated;
  loose.truncation_tolerance = 1e300;
  SampledUtilityRecorder truncated_loose(&model, &w.test, 6, 5, 43, loose);

  FanoutObserver fanout;
  fanout.Register(&uniform);
  fanout.Register(&truncated_tight);
  fanout.Register(&truncated_loose);
  FedAvgTrainer trainer(&model, w.clients, w.test,
                        SmallFedConfig(4, 3, 47));
  ASSERT_TRUE(trainer.Train(&fanout).ok());
  EXPECT_EQ(truncated_tight.permutations(), uniform.permutations());

  auto entry_set = [](const ObservationSet& obs) {
    std::set<std::tuple<int, int, double>> s;
    for (const Observation& o : obs.entries()) {
      s.insert({o.row, o.col, o.value});
    }
    return s;
  };
  auto cell_set = [](const ObservationSet& obs) {
    std::set<std::pair<int, int>> s;
    for (const Observation& o : obs.entries()) s.insert({o.row, o.col});
    return s;
  };
  ObservationSet uniform_obs = uniform.BuildObservations();
  ObservationSet tight_obs = truncated_tight.BuildObservations();
  ObservationSet loose_obs = truncated_loose.BuildObservations();

  // Zero tolerance: same observable prefixes (exact-equality truncation
  // can only fire on the last position), discovered wave-order instead
  // of permutation-order — the entry sets must match exactly, values
  // included.
  EXPECT_EQ(entry_set(tight_obs), entry_set(uniform_obs));
  EXPECT_GE(truncated_tight.loss_calls(), uniform.loss_calls());
  // At most one extra U_t(I_t) reference call per recorded round.
  EXPECT_LE(truncated_tight.loss_calls(),
            uniform.loss_calls() + truncated_tight.rounds_recorded());

  // Effectively-infinite tolerance: every walk stops measuring after
  // position 0, but the observed (round, column) coverage is preserved —
  // the Assumption-1 anchor the completion relies on.
  EXPECT_LT(truncated_loose.loss_calls(), uniform.loss_calls());
  EXPECT_EQ(cell_set(loose_obs), cell_set(uniform_obs));
}

TEST(SampledUtilityRecorderTest, SupportsManyClients) {
  // The Algorithm 1 path must work beyond the 2^N regime.
  Workload w = MakeWorkload(30, 29);
  LogisticRegression model(w.test.dim(), 10);
  SampledUtilityRecorder recorder(&model, &w.test, 30, 10, 31);
  FedAvgTrainer trainer(&model, w.clients, w.test,
                        SmallFedConfig(3, 5, 33));
  ASSERT_TRUE(trainer.Train(&recorder).ok());
  ObservationSet obs = recorder.BuildObservations();
  EXPECT_EQ(obs.num_rows(), 3);
  EXPECT_GT(obs.size(), 0u);
  EXPECT_GT(recorder.loss_calls(), 0);
}

}  // namespace
}  // namespace comfedsv
