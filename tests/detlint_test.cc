// Tests for tools/detlint: runs the real binary over the seeded fixture
// corpus in tests/detlint_fixtures/ and asserts exact rule ids,
// file:line anchors and exit codes — one known violation per rule plus
// an allowlisted counterpart that must stay silent.
//
// The binary path and fixture directory are injected by
// tests/CMakeLists.txt as compile definitions.

#include <gtest/gtest.h>

#include <array>
#include <cstdio>
#include <string>

namespace {

struct RunResult {
  int exit_code = -1;
  std::string output;
};

// Runs the detlint binary with `args`, capturing stdout+stderr.
RunResult RunDetlint(const std::string& args) {
  const std::string cmd = std::string(DETLINT_BINARY) + " " + args + " 2>&1";
  RunResult result;
  FILE* pipe = popen(cmd.c_str(), "r");
  if (pipe == nullptr) return result;
  std::array<char, 4096> buf;
  size_t n;
  while ((n = fread(buf.data(), 1, buf.size(), pipe)) > 0) {
    result.output.append(buf.data(), n);
  }
  const int status = pclose(pipe);
  if (WIFEXITED(status)) result.exit_code = WEXITSTATUS(status);
  return result;
}

std::string Fixture(const std::string& rel) {
  return std::string(DETLINT_FIXTURES_DIR) + "/" + rel;
}

int CountOccurrences(const std::string& haystack, const std::string& needle) {
  int count = 0;
  for (size_t pos = haystack.find(needle); pos != std::string::npos;
       pos = haystack.find(needle, pos + needle.size())) {
    ++count;
  }
  return count;
}

TEST(DetlintTest, ListRulesNamesEveryRule) {
  RunResult r = RunDetlint("--list-rules");
  EXPECT_EQ(r.exit_code, 0);
  for (const char* rule : {"unordered-iter", "raw-rng", "raw-file-io",
                           "discarded-status", "bad-allow"}) {
    EXPECT_NE(r.output.find(rule), std::string::npos) << rule;
  }
}

TEST(DetlintTest, NoArgumentsIsAUsageError) {
  RunResult r = RunDetlint("");
  EXPECT_EQ(r.exit_code, 2);
}

TEST(DetlintTest, MissingPathIsAnIoError) {
  RunResult r = RunDetlint(Fixture("no_such_file.cc"));
  EXPECT_EQ(r.exit_code, 2);
}

TEST(DetlintTest, CleanFileExitsZero) {
  RunResult r = RunDetlint(Fixture("src/clean.cc"));
  EXPECT_EQ(r.exit_code, 0);
  EXPECT_NE(r.output.find("0 finding(s)"), std::string::npos) << r.output;
}

TEST(DetlintTest, UnorderedIterationIsFlaggedAndAllowlistable) {
  RunResult r = RunDetlint(Fixture("src/unordered_iter_violation.cc"));
  EXPECT_EQ(r.exit_code, 1);
  // The range-for at line 9 and the .begin() harvest at line 15.
  EXPECT_NE(r.output.find("unordered_iter_violation.cc:9: [unordered-iter]"),
            std::string::npos)
      << r.output;
  EXPECT_NE(r.output.find("unordered_iter_violation.cc:15: [unordered-iter]"),
            std::string::npos)
      << r.output;
  // The allowlisted loop at line 22 stays silent: exactly two findings.
  EXPECT_EQ(CountOccurrences(r.output, "[unordered-iter]"), 2) << r.output;
}

TEST(DetlintTest, RawRngIsFlaggedAndAllowlistable) {
  RunResult r = RunDetlint(Fixture("src/raw_rng_violation.cc"));
  EXPECT_EQ(r.exit_code, 1);
  EXPECT_NE(r.output.find("raw_rng_violation.cc:6: [raw-rng]"),
            std::string::npos)
      << r.output;
  EXPECT_NE(r.output.find("raw_rng_violation.cc:8: [raw-rng]"),
            std::string::npos)
      << r.output;
  // The allowlisted mt19937 at line 12 stays silent.
  EXPECT_EQ(CountOccurrences(r.output, "[raw-rng]"), 2) << r.output;
}

TEST(DetlintTest, RawFileIoIsFlaggedAndAllowlistable) {
  RunResult r = RunDetlint(Fixture("src/raw_file_io_violation.cc"));
  EXPECT_EQ(r.exit_code, 1);
  EXPECT_NE(r.output.find("raw_file_io_violation.cc:5: [raw-file-io]"),
            std::string::npos)
      << r.output;
  EXPECT_EQ(CountOccurrences(r.output, "[raw-file-io]"), 1) << r.output;
}

TEST(DetlintTest, RawFileIoIsScopedToSrc) {
  // The same std::ofstream use under a tests/ path must scan clean —
  // test helpers write temp files on purpose.
  RunResult r = RunDetlint(Fixture("tests/scoped_io_ok.cc"));
  EXPECT_EQ(r.exit_code, 0);
  EXPECT_EQ(CountOccurrences(r.output, "[raw-file-io]"), 0) << r.output;
}

TEST(DetlintTest, DiscardedStatusIsFlaggedAndAllowlistable) {
  RunResult r = RunDetlint(Fixture("src/discarded_status_violation.cc"));
  EXPECT_EQ(r.exit_code, 1);
  EXPECT_NE(
      r.output.find("discarded_status_violation.cc:10: [discarded-status]"),
      std::string::npos)
      << r.output;
  // (void)SaveThing(), the kept assignment, and the allowlisted call are
  // all silent: exactly one finding.
  EXPECT_EQ(CountOccurrences(r.output, "[discarded-status]"), 1) << r.output;
}

TEST(DetlintTest, BadAllowPragmasAreThemselvesFindings) {
  RunResult r = RunDetlint(Fixture("src/bad_allow_violation.cc"));
  EXPECT_EQ(r.exit_code, 1);
  // Justification-free pragma at line 5, unknown-rule pragma at line 8.
  EXPECT_NE(r.output.find("bad_allow_violation.cc:5: [bad-allow]"),
            std::string::npos)
      << r.output;
  EXPECT_NE(r.output.find("bad_allow_violation.cc:8: [bad-allow]"),
            std::string::npos)
      << r.output;
  // A justification-free pragma suppresses nothing: the rand() at line 6
  // is still reported.
  EXPECT_NE(r.output.find("bad_allow_violation.cc:6: [raw-rng]"),
            std::string::npos)
      << r.output;
}

TEST(DetlintTest, StrippingCornerCasesScanClean) {
  // Raw strings (all encoding prefixes) full of rule bait, and line
  // comments whose trailing backslash splices the next physical line
  // into the comment: none of it is code, so no false positives.
  RunResult r = RunDetlint(Fixture("src/stripping_ok.cc"));
  EXPECT_EQ(r.exit_code, 0) << r.output;
  EXPECT_NE(r.output.find("0 finding(s)"), std::string::npos) << r.output;
}

TEST(DetlintTest, StrippingDoesNotSwallowLiveCode) {
  // The flip side: code after a raw string on the same line, and code
  // on the line after a spliced comment ends, are still scanned — no
  // false negatives, with line numbers mapped through the splice.
  RunResult r = RunDetlint(Fixture("src/stripping_violation.cc"));
  EXPECT_EQ(r.exit_code, 1);
  EXPECT_NE(r.output.find("stripping_violation.cc:4: [raw-rng]"),
            std::string::npos)
      << r.output;
  EXPECT_NE(r.output.find("stripping_violation.cc:7: [raw-rng]"),
            std::string::npos)
      << r.output;
  EXPECT_EQ(CountOccurrences(r.output, "[raw-rng]"), 2) << r.output;
}

TEST(DetlintTest, WholeFixtureDirectoryAggregatesFindings) {
  // Explicitly pointing detlint at the fixture tree scans it even though
  // the repo-wide walk skips detlint_fixtures/.
  RunResult r = RunDetlint(Fixture("src"));
  EXPECT_EQ(r.exit_code, 1);
  for (const char* rule : {"[unordered-iter]", "[raw-rng]", "[raw-file-io]",
                           "[discarded-status]", "[bad-allow]"}) {
    EXPECT_NE(r.output.find(rule), std::string::npos) << rule << r.output;
  }
}

TEST(DetlintTest, RepoSourcesHaveZeroUnallowlistedFindings) {
  // The acceptance gate, also registered directly as the
  // detlint_repo_clean ctest: src/ and tests/ at HEAD are clean.
  RunResult r = RunDetlint(std::string(DETLINT_REPO_ROOT) + "/src " +
                           std::string(DETLINT_REPO_ROOT) + "/tests");
  EXPECT_EQ(r.exit_code, 0) << r.output;
  EXPECT_NE(r.output.find("0 finding(s)"), std::string::npos) << r.output;
}

}  // namespace
