// Matrix-completion tests: exact recovery of low-rank matrices from full
// and partial observations, solver agreement, and configuration guards.
#include "completion/solver.h"

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"
#include "completion/interner.h"
#include "completion/observations.h"
#include "linalg/matrix.h"

namespace comfedsv {
namespace {

Matrix RandomLowRank(int rows, int cols, int rank, uint64_t seed) {
  Rng rng(seed);
  Matrix a(rows, rank);
  Matrix b(rank, cols);
  for (int i = 0; i < rows; ++i) {
    for (int k = 0; k < rank; ++k) a(i, k) = rng.NextGaussian();
  }
  for (int k = 0; k < rank; ++k) {
    for (int j = 0; j < cols; ++j) b(k, j) = rng.NextGaussian();
  }
  return Matrix::Multiply(a, b);
}

ObservationSet FullObservations(const Matrix& m) {
  ObservationSet obs(m.rows(), m.cols());
  for (size_t i = 0; i < m.rows(); ++i) {
    for (size_t j = 0; j < m.cols(); ++j) {
      obs.Add(static_cast<int>(i), static_cast<int>(j), m(i, j));
    }
  }
  obs.Finalize();
  return obs;
}

ObservationSet SampledObservations(const Matrix& m, double keep,
                                   uint64_t seed) {
  Rng rng(seed);
  ObservationSet obs(m.rows(), m.cols());
  // Guarantee coverage: one random observation per row and per column,
  // then Bernoulli sampling on top.
  for (size_t i = 0; i < m.rows(); ++i) {
    size_t j = rng.NextUint64(m.cols());
    obs.Add(static_cast<int>(i), static_cast<int>(j), m(i, j));
  }
  for (size_t j = 0; j < m.cols(); ++j) {
    size_t i = rng.NextUint64(m.rows());
    obs.Add(static_cast<int>(i), static_cast<int>(j), m(i, j));
  }
  for (size_t i = 0; i < m.rows(); ++i) {
    for (size_t j = 0; j < m.cols(); ++j) {
      if (rng.NextBernoulli(keep)) {
        obs.Add(static_cast<int>(i), static_cast<int>(j), m(i, j));
      }
    }
  }
  obs.Finalize();
  return obs;
}

double RelativeError(const Matrix& reference, const CompletionResult& fit) {
  Matrix approx = Matrix::Multiply(fit.w, fit.h.Transpose());
  return approx.FrobeniusDistance(reference) / reference.FrobeniusNorm();
}

TEST(ObservationSetTest, IndexingAndDensity) {
  ObservationSet obs(3, 4);
  obs.Add(0, 1, 5.0);
  obs.Add(2, 1, 7.0);
  obs.Add(0, 3, 9.0);
  EXPECT_FALSE(obs.finalized());
  obs.Finalize();
  EXPECT_TRUE(obs.finalized());
  EXPECT_EQ(obs.size(), 3u);
  EXPECT_EQ(obs.RowNnz(0), 2);
  EXPECT_EQ(obs.RowNnz(1), 0);
  EXPECT_EQ(obs.ColNnz(1), 2);
  EXPECT_DOUBLE_EQ(obs.Density(), 3.0 / 12.0);
  // CSR row 0 holds (0,1,5) then (0,3,9) in insertion order.
  EXPECT_EQ(obs.row_offsets()[0], 0);
  EXPECT_EQ(obs.row_offsets()[1], 2);
  EXPECT_EQ(obs.csr_cols()[0], 1);
  EXPECT_EQ(obs.csr_cols()[1], 3);
  EXPECT_DOUBLE_EQ(obs.csr_values()[1], 9.0);
  // CSC column 3 holds the single entry (0,3,9).
  const int q = obs.col_offsets()[3];
  EXPECT_EQ(obs.csc_rows()[q], 0);
  EXPECT_DOUBLE_EQ(obs.csc_values()[q], 9.0);
}

// CSR/CSC views vs reference per-row / per-column index lists built
// straight from the triplets: random pattern with empty rows and
// columns, plus duplicate (row, col) observations (the same coalition
// observed in several permutations).
TEST(ObservationSetTest, CompressedViewsMatchReferenceLists) {
  const int rows = 17, cols = 23;
  Rng rng(77);
  ObservationSet obs(rows, cols);
  for (int i = 0; i < rows; ++i) {
    if (i % 5 == 3) continue;  // leave some rows empty
    for (int j = 0; j < cols; ++j) {
      if (j % 7 == 2) continue;  // leave some columns empty
      if (!rng.NextBernoulli(0.3)) continue;
      const double v = rng.NextGaussian();
      obs.Add(i, j, v);
      if (rng.NextBernoulli(0.2)) obs.Add(i, j, v + 1.0);  // duplicate cell
    }
  }
  obs.Finalize();
  const auto& entries = obs.entries();
  const size_t nnz = entries.size();
  ASSERT_GT(nnz, 0u);

  // Reference adjacency: indices into entries() in insertion order.
  std::vector<std::vector<int>> by_row(rows), by_col(cols);
  for (size_t e = 0; e < nnz; ++e) {
    by_row[entries[e].row].push_back(static_cast<int>(e));
    by_col[entries[e].col].push_back(static_cast<int>(e));
  }

  ASSERT_EQ(obs.row_offsets().size(), static_cast<size_t>(rows) + 1);
  EXPECT_EQ(obs.row_offsets()[rows], static_cast<int>(nnz));
  for (int i = 0; i < rows; ++i) {
    const int begin = obs.row_offsets()[i];
    ASSERT_EQ(obs.row_offsets()[i + 1] - begin,
              static_cast<int>(by_row[i].size()));
    for (size_t t = 0; t < by_row[i].size(); ++t) {
      const Observation& e = entries[by_row[i][t]];
      const int p = begin + static_cast<int>(t);
      EXPECT_EQ(obs.csr_cols()[p], e.col);
      EXPECT_EQ(obs.csr_values()[p], e.value);
      EXPECT_EQ(obs.csr_entry()[p], by_row[i][t]);
    }
  }

  ASSERT_EQ(obs.col_offsets().size(), static_cast<size_t>(cols) + 1);
  EXPECT_EQ(obs.col_offsets()[cols], static_cast<int>(nnz));
  for (int j = 0; j < cols; ++j) {
    const int begin = obs.col_offsets()[j];
    ASSERT_EQ(obs.col_offsets()[j + 1] - begin,
              static_cast<int>(by_col[j].size()));
    for (size_t t = 0; t < by_col[j].size(); ++t) {
      const Observation& e = entries[by_col[j][t]];
      const int q = begin + static_cast<int>(t);
      EXPECT_EQ(obs.csc_rows()[q], e.row);
      EXPECT_EQ(obs.csc_values()[q], e.value);
      // The CSC -> CSR map lands on the same underlying entry.
      const int p = obs.csc_to_csr()[q];
      EXPECT_EQ(obs.csr_entry()[p], by_col[j][t]);
      EXPECT_EQ(obs.csr_cols()[p], e.col);
      EXPECT_EQ(obs.csr_values()[p], e.value);
    }
  }
}

TEST(ObservationSetTest, FinalizeIsIdempotent) {
  ObservationSet obs(2, 2);
  obs.Add(0, 0, 1.0);
  obs.Finalize();
  obs.Finalize();  // no-op
  EXPECT_EQ(obs.RowNnz(0), 1);
}

TEST(ObservationSetDeathTest, MutationAfterFinalizeCheckFails) {
  ObservationSet obs(2, 2);
  obs.Add(0, 0, 1.0);
  obs.Finalize();
  EXPECT_DEATH(obs.Add(1, 1, 2.0), "Finalize");
  EXPECT_DEATH(obs.AddAll({{1, 1, 2.0}}), "finalized");
  EXPECT_DEATH(obs.Reserve(4), "finalized");
}

TEST(ObservationSetDeathTest, CompressedViewsRequireFinalize) {
  ObservationSet obs(2, 2);
  obs.Add(0, 0, 1.0);
  EXPECT_DEATH(obs.row_offsets(), "finalized");
  EXPECT_DEATH(obs.col_offsets(), "finalized");
}

class SolverParamTest : public ::testing::TestWithParam<CompletionSolver> {
};

TEST_P(SolverParamTest, RecoversLowRankFromFullObservations) {
  Matrix truth = RandomLowRank(20, 15, 3, 1);
  CompletionConfig cfg;
  cfg.rank = 3;
  cfg.lambda = 1e-6;
  cfg.max_iters = 300;
  cfg.solver = GetParam();
  cfg.seed = 2;
  Result<CompletionResult> fit =
      CompleteMatrix(FullObservations(truth), cfg);
  ASSERT_TRUE(fit.ok()) << fit.status().ToString();
  EXPECT_LT(RelativeError(truth, fit.value()), 1e-2)
      << CompletionSolverName(GetParam());
  EXPECT_LT(fit.value().observed_rmse, 1e-2);
}

TEST_P(SolverParamTest, RecoversLowRankFromPartialObservations) {
  Matrix truth = RandomLowRank(30, 25, 2, 3);
  ObservationSet obs = SampledObservations(truth, 0.5, 4);
  CompletionConfig cfg;
  cfg.rank = 2;
  // Moderate regularization: with ~50% sampling, a tiny lambda lets the
  // exact ALS row solves overfit sparsely observed rows.
  cfg.lambda = 1e-1;
  cfg.max_iters = 400;
  cfg.solver = GetParam();
  cfg.seed = 5;
  // Exercise the fused-objective cross-check in release builds too.
  cfg.verify_fused_objective = true;
  Result<CompletionResult> fit = CompleteMatrix(obs, cfg);
  ASSERT_TRUE(fit.ok());
  EXPECT_LT(RelativeError(truth, fit.value()), 0.1)
      << CompletionSolverName(GetParam());
}

TEST_P(SolverParamTest, OverparameterizedRankStillFits) {
  Matrix truth = RandomLowRank(15, 12, 2, 7);
  CompletionConfig cfg;
  cfg.rank = 6;  // more than the true rank
  cfg.lambda = 1e-4;
  cfg.max_iters = 200;
  cfg.solver = GetParam();
  Result<CompletionResult> fit =
      CompleteMatrix(FullObservations(truth), cfg);
  ASSERT_TRUE(fit.ok());
  EXPECT_LT(fit.value().observed_rmse, 0.05);
}

INSTANTIATE_TEST_SUITE_P(AllSolvers, SolverParamTest,
                         ::testing::Values(CompletionSolver::kAls,
                                           CompletionSolver::kCcd,
                                           CompletionSolver::kSgd),
                         [](const auto& info) {
                           return CompletionSolverName(info.param) ==
                                          "ccd++"
                                      ? std::string("ccd")
                                      : CompletionSolverName(info.param);
                         });

TEST(CompletionTest, StrongRegularizationShrinksFactors) {
  Matrix truth = RandomLowRank(10, 10, 2, 9);
  CompletionConfig weak;
  weak.rank = 2;
  weak.lambda = 1e-6;
  weak.max_iters = 100;
  CompletionConfig strong = weak;
  strong.lambda = 100.0;
  auto fit_weak = CompleteMatrix(FullObservations(truth), weak);
  auto fit_strong = CompleteMatrix(FullObservations(truth), strong);
  ASSERT_TRUE(fit_weak.ok() && fit_strong.ok());
  const double norm_weak = fit_weak.value().w.FrobeniusNorm() +
                           fit_weak.value().h.FrobeniusNorm();
  const double norm_strong = fit_strong.value().w.FrobeniusNorm() +
                             fit_strong.value().h.FrobeniusNorm();
  EXPECT_LT(norm_strong, norm_weak);
}

TEST(CompletionTest, PredictMatchesFactorProduct) {
  Matrix truth = RandomLowRank(6, 5, 2, 11);
  CompletionConfig cfg;
  cfg.rank = 2;
  cfg.lambda = 1e-5;
  auto fit = CompleteMatrix(FullObservations(truth), cfg);
  ASSERT_TRUE(fit.ok());
  Matrix product =
      Matrix::Multiply(fit.value().w, fit.value().h.Transpose());
  for (int i = 0; i < 6; ++i) {
    for (int j = 0; j < 5; ++j) {
      EXPECT_NEAR(fit.value().Predict(i, j), product(i, j), 1e-12);
    }
  }
}

TEST(CompletionTest, DeterministicGivenSeed) {
  Matrix truth = RandomLowRank(8, 8, 2, 13);
  CompletionConfig cfg;
  cfg.rank = 2;
  cfg.lambda = 1e-4;
  cfg.seed = 42;
  auto a = CompleteMatrix(FullObservations(truth), cfg);
  auto b = CompleteMatrix(FullObservations(truth), cfg);
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_TRUE(a.value().w == b.value().w);
  EXPECT_TRUE(a.value().h == b.value().h);
}

TEST(CompletionTest, ConfigGuards) {
  ObservationSet unfinalized(2, 2);
  unfinalized.Add(0, 0, 1.0);
  CompletionConfig cfg;
  EXPECT_FALSE(CompleteMatrix(unfinalized, cfg).ok());  // needs Finalize()

  ObservationSet obs(2, 2);
  obs.Add(0, 0, 1.0);
  obs.Finalize();
  cfg.rank = 0;
  EXPECT_FALSE(CompleteMatrix(obs, cfg).ok());
  cfg.rank = 2;
  cfg.lambda = -1.0;
  EXPECT_FALSE(CompleteMatrix(obs, cfg).ok());
  cfg.lambda = 0.0;  // ill-posed for ALS
  EXPECT_FALSE(CompleteMatrix(obs, cfg).ok());
  cfg.lambda = 0.1;
  EXPECT_TRUE(CompleteMatrix(obs, cfg).ok());
  ObservationSet empty(2, 2);
  empty.Finalize();
  EXPECT_FALSE(CompleteMatrix(empty, cfg).ok());
}

TEST(InternerTest, InternFindGetRoundTrip) {
  CoalitionInterner interner;
  Coalition a = Coalition::FromMembers(5, {1, 2});
  Coalition b = Coalition::FromMembers(5, {3});
  EXPECT_EQ(interner.Intern(a), 0);
  EXPECT_EQ(interner.Intern(b), 1);
  EXPECT_EQ(interner.Intern(a), 0);  // dedup
  EXPECT_EQ(interner.size(), 2);
  EXPECT_EQ(interner.Find(a), 0);
  EXPECT_EQ(interner.Find(Coalition::FromMembers(5, {0})), -1);
  EXPECT_EQ(interner.Get(1), b);
}

}  // namespace
}  // namespace comfedsv
