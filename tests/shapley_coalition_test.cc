#include "shapley/coalition.h"

#include <gtest/gtest.h>

#include <set>
#include <unordered_set>

namespace comfedsv {
namespace {

TEST(CoalitionTest, EmptyAndFull) {
  Coalition empty(10);
  EXPECT_TRUE(empty.IsEmpty());
  EXPECT_EQ(empty.Count(), 0);
  EXPECT_EQ(empty.universe_size(), 10);

  Coalition full = Coalition::Full(10);
  EXPECT_EQ(full.Count(), 10);
  for (int i = 0; i < 10; ++i) EXPECT_TRUE(full.Contains(i));
}

TEST(CoalitionTest, AddRemoveContains) {
  Coalition c(5);
  c.Add(2);
  c.Add(4);
  EXPECT_TRUE(c.Contains(2));
  EXPECT_TRUE(c.Contains(4));
  EXPECT_FALSE(c.Contains(0));
  EXPECT_EQ(c.Count(), 2);
  c.Remove(2);
  EXPECT_FALSE(c.Contains(2));
  EXPECT_EQ(c.Count(), 1);
  c.Remove(2);  // removing absent member is a no-op
  EXPECT_EQ(c.Count(), 1);
}

TEST(CoalitionTest, FromMembersAndMembersRoundTrip) {
  std::vector<int> members = {7, 1, 3};
  Coalition c = Coalition::FromMembers(8, members);
  EXPECT_EQ(c.Members(), (std::vector<int>{1, 3, 7}));
}

TEST(CoalitionTest, WorksBeyond64Clients) {
  // The dynamic bitset must handle the paper's 100-client experiments.
  Coalition c(130);
  c.Add(0);
  c.Add(63);
  c.Add(64);
  c.Add(129);
  EXPECT_EQ(c.Count(), 4);
  EXPECT_EQ(c.Members(), (std::vector<int>{0, 63, 64, 129}));
  EXPECT_TRUE(c.IsSubsetOf(Coalition::Full(130)));
  Coalition partial = Coalition::FromMembers(130, {0, 63, 64});
  EXPECT_TRUE(partial.IsSubsetOf(c));
  EXPECT_FALSE(c.IsSubsetOf(partial));
}

TEST(CoalitionTest, WithWithoutAreNonMutating) {
  Coalition c = Coalition::FromMembers(6, {1, 2});
  Coalition plus = c.With(5);
  Coalition minus = c.Without(1);
  EXPECT_EQ(c.Count(), 2);
  EXPECT_TRUE(plus.Contains(5));
  EXPECT_FALSE(minus.Contains(1));
}

TEST(CoalitionTest, SubsetReflexiveAndEmpty) {
  Coalition c = Coalition::FromMembers(9, {0, 4, 8});
  EXPECT_TRUE(c.IsSubsetOf(c));
  EXPECT_TRUE(Coalition(9).IsSubsetOf(c));
  EXPECT_FALSE(c.IsSubsetOf(Coalition(9)));
}

TEST(CoalitionTest, EqualityAndHash) {
  Coalition a = Coalition::FromMembers(20, {3, 7, 19});
  Coalition b = Coalition::FromMembers(20, {19, 3, 7});
  Coalition c = Coalition::FromMembers(20, {3, 7});
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
  EXPECT_EQ(a.Hash(), b.Hash());

  std::unordered_set<Coalition, CoalitionHash> set;
  set.insert(a);
  set.insert(b);
  set.insert(c);
  EXPECT_EQ(set.size(), 2u);
}

TEST(CoalitionTest, HashSpreadsOverSubsets) {
  // All 2^10 subsets of a 10-universe should hash with few collisions.
  std::set<size_t> hashes;
  for (uint32_t mask = 0; mask < 1024; ++mask) {
    Coalition c(10);
    for (int i = 0; i < 10; ++i) {
      if (mask & (1u << i)) c.Add(i);
    }
    hashes.insert(c.Hash());
  }
  EXPECT_GE(hashes.size(), 1020u);
}

TEST(CoalitionTest, OrderingIsStrictWeak) {
  Coalition a = Coalition::FromMembers(6, {0});
  Coalition b = Coalition::FromMembers(6, {1});
  Coalition c = Coalition::FromMembers(6, {0, 1});
  EXPECT_TRUE(a < b);
  EXPECT_TRUE(b < c);
  EXPECT_TRUE(a < c);
  EXPECT_FALSE(a < a);
}

}  // namespace
}  // namespace comfedsv
