#include "metrics/metrics.h"

#include <gtest/gtest.h>

#include <cmath>

namespace comfedsv {
namespace {

TEST(RelativeDifferenceTest, BasicCases) {
  EXPECT_DOUBLE_EQ(RelativeDifference(1.0, 1.0), 0.0);
  EXPECT_DOUBLE_EQ(RelativeDifference(0.0, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(RelativeDifference(2.0, 1.0), 0.5);
  EXPECT_DOUBLE_EQ(RelativeDifference(1.0, 2.0), 0.5);
  EXPECT_DOUBLE_EQ(RelativeDifference(3.0, 0.0), 1.0);
}

TEST(RelativeDifferenceTest, SymmetricInArguments) {
  for (double a : {0.5, 1.0, 7.0}) {
    for (double b : {0.25, 2.0, 9.0}) {
      EXPECT_DOUBLE_EQ(RelativeDifference(a, b), RelativeDifference(b, a));
    }
  }
}

TEST(AverageRanksTest, NoTies) {
  std::vector<double> v = {10.0, 30.0, 20.0};
  EXPECT_EQ(AverageRanks(v), (std::vector<double>{1.0, 3.0, 2.0}));
}

TEST(AverageRanksTest, TiesGetMeanRank) {
  std::vector<double> v = {5.0, 1.0, 5.0, 0.0};
  // sorted: 0.0(r1), 1.0(r2), 5.0, 5.0 (ranks 3,4 -> 3.5 each)
  EXPECT_EQ(AverageRanks(v), (std::vector<double>{3.5, 2.0, 3.5, 1.0}));
}

TEST(SpearmanTest, PerfectAgreementAndReversal) {
  std::vector<double> a = {1.0, 2.0, 3.0, 4.0};
  std::vector<double> monotone = {10.0, 20.0, 30.0, 40.0};
  std::vector<double> reversed = {4.0, 3.0, 2.0, 1.0};
  EXPECT_NEAR(SpearmanCorrelation(a, monotone).value(), 1.0, 1e-12);
  EXPECT_NEAR(SpearmanCorrelation(a, reversed).value(), -1.0, 1e-12);
}

TEST(SpearmanTest, InvariantUnderMonotoneTransform) {
  std::vector<double> a = {0.3, 1.5, -2.0, 0.9, 4.0};
  std::vector<double> b;
  for (double v : a) b.push_back(std::exp(v));  // strictly increasing map
  EXPECT_NEAR(SpearmanCorrelation(a, b).value(), 1.0, 1e-12);
}

TEST(SpearmanTest, KnownValueWithOneSwap) {
  // Permutation (1,2,3,4,5) vs (2,1,3,4,5): rho = 1 - 6*2/(5*24) = 0.9.
  std::vector<double> a = {1, 2, 3, 4, 5};
  std::vector<double> b = {2, 1, 3, 4, 5};
  EXPECT_NEAR(SpearmanCorrelation(a, b).value(), 0.9, 1e-12);
}

TEST(SpearmanTest, ErrorCases) {
  EXPECT_FALSE(SpearmanCorrelation({1.0}, {2.0}).ok());
  EXPECT_FALSE(SpearmanCorrelation({1.0, 2.0}, {1.0, 2.0, 3.0}).ok());
  EXPECT_FALSE(SpearmanCorrelation({1.0, 1.0}, {2.0, 3.0}).ok());
}

TEST(JaccardTest, StandardCases) {
  EXPECT_DOUBLE_EQ(JaccardIndex({1, 2, 3}, {1, 2, 3}), 1.0);
  EXPECT_DOUBLE_EQ(JaccardIndex({1, 2}, {3, 4}), 0.0);
  EXPECT_DOUBLE_EQ(JaccardIndex({1, 2, 3}, {2, 3, 4}), 0.5);
  EXPECT_DOUBLE_EQ(JaccardIndex({}, {}), 1.0);
  EXPECT_DOUBLE_EQ(JaccardIndex({1}, {}), 0.0);
}

TEST(JaccardTest, DuplicatesIgnored) {
  EXPECT_DOUBLE_EQ(JaccardIndex({1, 1, 2}, {2, 2, 1}), 1.0);
}

TEST(BottomKTest, FindsSmallest) {
  Vector v{5.0, -1.0, 3.0, 0.0, 7.0};
  EXPECT_EQ(BottomKIndices(v, 2), (std::vector<int>{1, 3}));
  EXPECT_EQ(BottomKIndices(v, 0), (std::vector<int>{}));
  EXPECT_EQ(BottomKIndices(v, 5), (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(EmpiricalCdfTest, StepFunctionValues) {
  EmpiricalCdf cdf({3.0, 1.0, 2.0, 2.0});
  EXPECT_DOUBLE_EQ(cdf.At(0.5), 0.0);
  EXPECT_DOUBLE_EQ(cdf.At(1.0), 0.25);
  EXPECT_DOUBLE_EQ(cdf.At(2.0), 0.75);
  EXPECT_DOUBLE_EQ(cdf.At(2.5), 0.75);
  EXPECT_DOUBLE_EQ(cdf.At(3.0), 1.0);
  EXPECT_DOUBLE_EQ(cdf.At(100.0), 1.0);
  EXPECT_EQ(cdf.size(), 4u);
}

TEST(EmpiricalCdfTest, SortedSamplesExposed) {
  EmpiricalCdf cdf({3.0, 1.0, 2.0});
  EXPECT_EQ(cdf.sorted_samples(), (std::vector<double>{1.0, 2.0, 3.0}));
}

TEST(EmpiricalCdfTest, MonotoneNonDecreasing) {
  EmpiricalCdf cdf({0.1, 0.9, 0.4, 0.3, 0.8});
  double prev = 0.0;
  for (double t = -0.5; t <= 1.5; t += 0.05) {
    const double cur = cdf.At(t);
    EXPECT_GE(cur, prev);
    prev = cur;
  }
}

}  // namespace
}  // namespace comfedsv
