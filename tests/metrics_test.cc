#include "metrics/metrics.h"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "metrics/fairness.h"

namespace comfedsv {
namespace {

TEST(RelativeDifferenceTest, BasicCases) {
  EXPECT_DOUBLE_EQ(RelativeDifference(1.0, 1.0), 0.0);
  EXPECT_DOUBLE_EQ(RelativeDifference(0.0, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(RelativeDifference(2.0, 1.0), 0.5);
  EXPECT_DOUBLE_EQ(RelativeDifference(1.0, 2.0), 0.5);
  EXPECT_DOUBLE_EQ(RelativeDifference(3.0, 0.0), 1.0);
}

TEST(RelativeDifferenceTest, SymmetricInArguments) {
  for (double a : {0.5, 1.0, 7.0}) {
    for (double b : {0.25, 2.0, 9.0}) {
      EXPECT_DOUBLE_EQ(RelativeDifference(a, b), RelativeDifference(b, a));
    }
  }
}

TEST(AverageRanksTest, NoTies) {
  std::vector<double> v = {10.0, 30.0, 20.0};
  EXPECT_EQ(AverageRanks(v), (std::vector<double>{1.0, 3.0, 2.0}));
}

TEST(AverageRanksTest, TiesGetMeanRank) {
  std::vector<double> v = {5.0, 1.0, 5.0, 0.0};
  // sorted: 0.0(r1), 1.0(r2), 5.0, 5.0 (ranks 3,4 -> 3.5 each)
  EXPECT_EQ(AverageRanks(v), (std::vector<double>{3.5, 2.0, 3.5, 1.0}));
}

TEST(SpearmanTest, PerfectAgreementAndReversal) {
  std::vector<double> a = {1.0, 2.0, 3.0, 4.0};
  std::vector<double> monotone = {10.0, 20.0, 30.0, 40.0};
  std::vector<double> reversed = {4.0, 3.0, 2.0, 1.0};
  EXPECT_NEAR(SpearmanCorrelation(a, monotone).value(), 1.0, 1e-12);
  EXPECT_NEAR(SpearmanCorrelation(a, reversed).value(), -1.0, 1e-12);
}

TEST(SpearmanTest, InvariantUnderMonotoneTransform) {
  std::vector<double> a = {0.3, 1.5, -2.0, 0.9, 4.0};
  std::vector<double> b;
  for (double v : a) b.push_back(std::exp(v));  // strictly increasing map
  EXPECT_NEAR(SpearmanCorrelation(a, b).value(), 1.0, 1e-12);
}

TEST(SpearmanTest, KnownValueWithOneSwap) {
  // Permutation (1,2,3,4,5) vs (2,1,3,4,5): rho = 1 - 6*2/(5*24) = 0.9.
  std::vector<double> a = {1, 2, 3, 4, 5};
  std::vector<double> b = {2, 1, 3, 4, 5};
  EXPECT_NEAR(SpearmanCorrelation(a, b).value(), 0.9, 1e-12);
}

TEST(SpearmanTest, ErrorCases) {
  EXPECT_FALSE(SpearmanCorrelation({1.0}, {2.0}).ok());
  EXPECT_FALSE(SpearmanCorrelation({1.0, 2.0}, {1.0, 2.0, 3.0}).ok());
  EXPECT_FALSE(SpearmanCorrelation({1.0, 1.0}, {2.0, 3.0}).ok());
}

TEST(JaccardTest, StandardCases) {
  EXPECT_DOUBLE_EQ(JaccardIndex({1, 2, 3}, {1, 2, 3}), 1.0);
  EXPECT_DOUBLE_EQ(JaccardIndex({1, 2}, {3, 4}), 0.0);
  EXPECT_DOUBLE_EQ(JaccardIndex({1, 2, 3}, {2, 3, 4}), 0.5);
  EXPECT_DOUBLE_EQ(JaccardIndex({}, {}), 1.0);
  EXPECT_DOUBLE_EQ(JaccardIndex({1}, {}), 0.0);
}

TEST(JaccardTest, DuplicatesIgnored) {
  EXPECT_DOUBLE_EQ(JaccardIndex({1, 1, 2}, {2, 2, 1}), 1.0);
}

TEST(BottomKTest, FindsSmallest) {
  Vector v{5.0, -1.0, 3.0, 0.0, 7.0};
  EXPECT_EQ(BottomKIndices(v, 2), (std::vector<int>{1, 3}));
  EXPECT_EQ(BottomKIndices(v, 0), (std::vector<int>{}));
  EXPECT_EQ(BottomKIndices(v, 5), (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(EmpiricalCdfTest, StepFunctionValues) {
  EmpiricalCdf cdf({3.0, 1.0, 2.0, 2.0});
  EXPECT_DOUBLE_EQ(cdf.At(0.5), 0.0);
  EXPECT_DOUBLE_EQ(cdf.At(1.0), 0.25);
  EXPECT_DOUBLE_EQ(cdf.At(2.0), 0.75);
  EXPECT_DOUBLE_EQ(cdf.At(2.5), 0.75);
  EXPECT_DOUBLE_EQ(cdf.At(3.0), 1.0);
  EXPECT_DOUBLE_EQ(cdf.At(100.0), 1.0);
  EXPECT_EQ(cdf.size(), 4u);
}

TEST(EmpiricalCdfTest, SortedSamplesExposed) {
  EmpiricalCdf cdf({3.0, 1.0, 2.0});
  EXPECT_EQ(cdf.sorted_samples(), (std::vector<double>{1.0, 2.0, 3.0}));
}

// --- Edge-convention audit of the paper metrics ------------------------

TEST(RelativeDifferenceTest, ZeroDenominatorEdges) {
  // max(a, b) == 0 with unequal values: defined as 1 (maximal
  // difference), never a division by zero.
  EXPECT_DOUBLE_EQ(RelativeDifference(0.0, -3.0), 1.0);
  EXPECT_DOUBLE_EQ(RelativeDifference(-3.0, 0.0), 1.0);
  // Both negative: the raw ratio against |max|.
  EXPECT_DOUBLE_EQ(RelativeDifference(-1.0, -2.0), 1.0);
  // Signed zeros still count as "both zero".
  EXPECT_DOUBLE_EQ(RelativeDifference(-0.0, 0.0), 0.0);
}

TEST(AverageRanksTest, DegenerateInputs) {
  EXPECT_TRUE(AverageRanks({}).empty());
  EXPECT_EQ(AverageRanks({7.0}), (std::vector<double>{1.0}));
  // All-equal vector (e.g. a zero valuation): every rank is the mean.
  EXPECT_EQ(AverageRanks({0.0, 0.0, 0.0}),
            (std::vector<double>{2.0, 2.0, 2.0}));
}

TEST(SpearmanTest, ZeroValuationVectorIsAnErrorNotACrash) {
  // A constant (e.g. all-zero) valuation has no rank variance; the
  // correlation is undefined and must surface as a Status.
  Result<double> r = SpearmanCorrelation({0.0, 0.0, 0.0}, {1.0, 2.0, 3.0});
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNumericalError);
}

TEST(JaccardTest, SingleElementGroups) {
  EXPECT_DOUBLE_EQ(JaccardIndex({3}, {3}), 1.0);
  EXPECT_DOUBLE_EQ(JaccardIndex({3}, {4}), 0.0);
}

// --- Fairness summary (metrics/fairness.h) -----------------------------

// Disambiguates the vector<double>/Vector overloads for braced lists.
Result<FairnessReport> Fair(std::vector<double> v) {
  return ComputeFairness(v);
}

TEST(FairnessTest, UniformVectorIsPerfectlyFair) {
  Result<FairnessReport> r = Fair({2.5, 2.5, 2.5, 2.5});
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value().n, 4);
  EXPECT_DOUBLE_EQ(r.value().mean, 2.5);
  EXPECT_DOUBLE_EQ(r.value().stddev, 0.0);
  EXPECT_DOUBLE_EQ(r.value().jain_index, 1.0);
  EXPECT_DOUBLE_EQ(r.value().coefficient_of_variation, 0.0);
  EXPECT_DOUBLE_EQ(r.value().worst_case_gap, 0.0);
}

TEST(FairnessTest, OneHotVectorIsMaximallyUnfair) {
  Result<FairnessReport> r = Fair({0.0, 0.0, 0.0, 4.0});
  ASSERT_TRUE(r.ok());
  EXPECT_DOUBLE_EQ(r.value().jain_index, 0.25);  // 1/n
  EXPECT_DOUBLE_EQ(r.value().worst_case_gap, 4.0);
  EXPECT_DOUBLE_EQ(r.value().min_value, 0.0);
  EXPECT_DOUBLE_EQ(r.value().max_value, 4.0);
}

TEST(FairnessTest, KnownHandComputedValues) {
  // {1, 3}: mean 2, stddev 1, jain (4)^2/(2*10) = 0.8, cov 0.5, gap 2.
  Result<FairnessReport> r = Fair({1.0, 3.0});
  ASSERT_TRUE(r.ok());
  EXPECT_DOUBLE_EQ(r.value().mean, 2.0);
  EXPECT_DOUBLE_EQ(r.value().stddev, 1.0);
  EXPECT_DOUBLE_EQ(r.value().jain_index, 0.8);
  EXPECT_DOUBLE_EQ(r.value().coefficient_of_variation, 0.5);
  EXPECT_DOUBLE_EQ(r.value().worst_case_gap, 2.0);
}

TEST(FairnessTest, ZeroValuationVectorEdges) {
  // All-zero: degenerate but perfectly even — jain 1, cov 0, no crash.
  Result<FairnessReport> r = Fair({0.0, 0.0, 0.0});
  ASSERT_TRUE(r.ok());
  EXPECT_DOUBLE_EQ(r.value().jain_index, 1.0);
  EXPECT_DOUBLE_EQ(r.value().coefficient_of_variation, 0.0);
  EXPECT_DOUBLE_EQ(r.value().worst_case_gap, 0.0);
}

TEST(FairnessTest, ZeroMeanNonzeroSpreadHasInfiniteCov) {
  Result<FairnessReport> r = Fair({-1.0, 1.0});
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(std::isinf(r.value().coefficient_of_variation));
  EXPECT_GT(r.value().coefficient_of_variation, 0.0);
  EXPECT_DOUBLE_EQ(r.value().jain_index, 0.0);  // (sum)^2 = 0
}

TEST(FairnessTest, SingleClientGroup) {
  Result<FairnessReport> r = Fair({7.0});
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value().n, 1);
  EXPECT_DOUBLE_EQ(r.value().jain_index, 1.0);
  EXPECT_DOUBLE_EQ(r.value().worst_case_gap, 0.0);
  EXPECT_DOUBLE_EQ(r.value().coefficient_of_variation, 0.0);
}

TEST(FairnessTest, EmptyAndNonFiniteInputsAreErrors) {
  EXPECT_EQ(ComputeFairness(std::vector<double>{}).status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(Fair({1.0, std::nan("")}).status().code(),
            StatusCode::kNumericalError);
  EXPECT_EQ(Fair({std::numeric_limits<double>::infinity()}).status().code(),
            StatusCode::kNumericalError);
}

TEST(FairnessTest, VectorOverloadMatches) {
  Vector v{1.0, 2.0, 3.0};
  Result<FairnessReport> a = ComputeFairness(v);
  Result<FairnessReport> b = Fair({1.0, 2.0, 3.0});
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_DOUBLE_EQ(a.value().jain_index, b.value().jain_index);
  EXPECT_DOUBLE_EQ(a.value().stddev, b.value().stddev);
}

TEST(EmpiricalCdfTest, MonotoneNonDecreasing) {
  EmpiricalCdf cdf({0.1, 0.9, 0.4, 0.3, 0.8});
  double prev = 0.0;
  for (double t = -0.5; t <= 1.5; t += 0.05) {
    const double cur = cdf.At(t);
    EXPECT_GE(cur, prev);
    prev = cur;
  }
}

}  // namespace
}  // namespace comfedsv
