#include "data/dataset.h"

#include <gtest/gtest.h>

#include <vector>

namespace comfedsv {
namespace {

Dataset MakeToy() {
  Matrix feats(4, 2);
  feats(0, 0) = 1.0;
  feats(1, 0) = 2.0;
  feats(2, 0) = 3.0;
  feats(3, 0) = 4.0;
  return Dataset(std::move(feats), {0, 1, 2, 0}, 3);
}

TEST(DatasetTest, BasicAccessors) {
  Dataset d = MakeToy();
  EXPECT_EQ(d.num_samples(), 4u);
  EXPECT_EQ(d.dim(), 2u);
  EXPECT_EQ(d.num_classes(), 3);
  EXPECT_FALSE(d.empty());
  EXPECT_EQ(d.label(2), 2);
  EXPECT_DOUBLE_EQ(d.sample(1)[0], 2.0);
}

TEST(DatasetTest, SubsetPreservesRowsAndLabels) {
  Dataset d = MakeToy();
  Dataset sub = d.Subset({3, 0});
  EXPECT_EQ(sub.num_samples(), 2u);
  EXPECT_DOUBLE_EQ(sub.sample(0)[0], 4.0);
  EXPECT_EQ(sub.label(0), 0);
  EXPECT_DOUBLE_EQ(sub.sample(1)[0], 1.0);
}

TEST(DatasetTest, SubsetWithRepeats) {
  Dataset d = MakeToy();
  Dataset sub = d.Subset({1, 1, 1});
  EXPECT_EQ(sub.num_samples(), 3u);
  for (size_t i = 0; i < 3; ++i) EXPECT_EQ(sub.label(i), 1);
}

TEST(DatasetTest, RandomSplitSizesAndDisjointness) {
  Matrix feats(100, 1);
  std::vector<int> labels(100);
  for (int i = 0; i < 100; ++i) {
    feats(i, 0) = i;
    labels[i] = i % 2;
  }
  Dataset d(std::move(feats), std::move(labels), 2);
  Rng rng(5);
  auto [train, test] = d.RandomSplit(0.25, &rng);
  EXPECT_EQ(train.num_samples(), 75u);
  EXPECT_EQ(test.num_samples(), 25u);
  // Feature values are unique ids; check the split partitions them.
  std::vector<bool> seen(100, false);
  for (size_t i = 0; i < train.num_samples(); ++i) {
    seen[static_cast<int>(train.sample(i)[0])] = true;
  }
  for (size_t i = 0; i < test.num_samples(); ++i) {
    int id = static_cast<int>(test.sample(i)[0]);
    EXPECT_FALSE(seen[id]) << "sample in both splits";
    seen[id] = true;
  }
  for (int i = 0; i < 100; ++i) EXPECT_TRUE(seen[i]);
}

TEST(DatasetTest, RandomSplitExtremes) {
  Dataset d = MakeToy();
  Rng rng(1);
  auto [all, none] = d.RandomSplit(0.0, &rng);
  EXPECT_EQ(all.num_samples(), 4u);
  EXPECT_EQ(none.num_samples(), 0u);
  EXPECT_TRUE(none.empty());
  // The empty side keeps the dataset's shape metadata.
  EXPECT_EQ(none.dim(), d.dim());
  EXPECT_EQ(none.num_classes(), d.num_classes());

  auto [empty, everything] = d.RandomSplit(1.0, &rng);
  EXPECT_TRUE(empty.empty());
  EXPECT_EQ(empty.dim(), d.dim());
  EXPECT_EQ(empty.num_classes(), d.num_classes());
  EXPECT_EQ(everything.num_samples(), 4u);
}

TEST(DatasetTest, RandomSplitExtremesPreserveOrderAndSkipTheRng) {
  // Degenerate fractions have exactly one outcome: they must not consume
  // RNG state (which would shift every later consumer of the stream) and
  // must hand the data back in its original order.
  Dataset d = MakeToy();
  Rng rng(42);
  auto [all, none] = d.RandomSplit(0.0, &rng);
  auto [empty, everything] = d.RandomSplit(1.0, &rng);
  Rng fresh(42);
  EXPECT_EQ(rng.NextUint64(), fresh.NextUint64()) << "stream advanced";
  for (size_t i = 0; i < d.num_samples(); ++i) {
    EXPECT_DOUBLE_EQ(all.sample(i)[0], d.sample(i)[0]);
    EXPECT_DOUBLE_EQ(everything.sample(i)[0], d.sample(i)[0]);
    EXPECT_EQ(all.label(i), d.label(i));
    EXPECT_EQ(everything.label(i), d.label(i));
  }
}

TEST(DatasetTest, RandomSplitOnEmptyAndDefaultDatasets) {
  // A default-constructed dataset (num_classes == 0) used to crash in
  // Subset's validating constructor; any fraction must now yield two
  // empty datasets and leave the RNG untouched.
  Dataset default_ds;
  Rng rng(7);
  for (double fraction : {0.0, 0.5, 1.0}) {
    auto [a, b] = default_ds.RandomSplit(fraction, &rng);
    EXPECT_TRUE(a.empty()) << fraction;
    EXPECT_TRUE(b.empty()) << fraction;
  }
  // An empty-but-typed dataset keeps its shape metadata on both sides.
  Dataset typed_empty(Matrix(0, 3), {}, 4);
  auto [a, b] = typed_empty.RandomSplit(0.5, &rng);
  EXPECT_TRUE(a.empty());
  EXPECT_TRUE(b.empty());
  EXPECT_EQ(a.dim(), 3u);
  EXPECT_EQ(a.num_classes(), 4);
  EXPECT_EQ(b.dim(), 3u);
  EXPECT_EQ(b.num_classes(), 4);
  Rng fresh(7);
  EXPECT_EQ(rng.NextUint64(), fresh.NextUint64()) << "stream advanced";
}

TEST(DatasetTest, ConcatStacksSamples) {
  Dataset a = MakeToy();
  Dataset b = MakeToy();
  Dataset c = Dataset::Concat({&a, &b});
  EXPECT_EQ(c.num_samples(), 8u);
  EXPECT_EQ(c.label(4), 0);
  EXPECT_DOUBLE_EQ(c.sample(5)[0], 2.0);
}

TEST(DatasetTest, ClassHistogram) {
  Dataset d = MakeToy();
  std::vector<int> hist = d.ClassHistogram();
  EXPECT_EQ(hist, (std::vector<int>{2, 1, 1}));
}

}  // namespace
}  // namespace comfedsv
