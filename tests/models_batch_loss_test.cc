// BatchLoss equivalence: the batched coalition-loss engine must return
// exactly the doubles the sequential Loss path returns — bit-identical,
// not approximately — for every model, batch size, and thread count
// (the model.h BatchLoss contract). The same holds one level up for
// RoundUtility::EvaluateBatch vs the unbatched Utility path.
#include <gtest/gtest.h>

#include <vector>

#include "common/execution_context.h"
#include "models/batch_kernels.h"
#include "models/cnn.h"
#include "models/logistic.h"
#include "models/mlp.h"
#include "shapley/utility.h"

namespace comfedsv {
namespace {

Dataset MakeData(int samples, int dim, int classes, uint64_t seed,
                 bool with_zeros) {
  Rng rng(seed);
  Matrix feats(samples, dim);
  std::vector<int> labels(samples);
  for (int i = 0; i < samples; ++i) {
    for (int j = 0; j < dim; ++j) {
      // Exact zeros exercise the skip-zero branch both paths share.
      const bool zero = with_zeros && rng.NextBernoulli(0.3);
      feats(i, j) = zero ? 0.0 : rng.NextGaussian();
    }
    labels[i] = static_cast<int>(rng.NextUint64(classes));
  }
  return Dataset(std::move(feats), std::move(labels), classes);
}

Matrix RandomParams(const Model& model, int batch, uint64_t seed) {
  Rng rng(seed);
  Matrix rows(batch, model.num_params());
  Vector params;
  for (int b = 0; b < batch; ++b) {
    model.InitializeParams(&params, &rng, 0.2);
    rows.SetRow(b, params);
  }
  return rows;
}

void ExpectBatchMatchesLoss(const Model& model, const Dataset& data,
                            uint64_t seed) {
  for (int batch : {1, 7, 64}) {
    const Matrix rows = RandomParams(model, batch, seed + batch);
    std::vector<double> sequential(batch);
    for (int b = 0; b < batch; ++b) {
      sequential[b] = model.Loss(rows.Row(b), data);
    }
    for (int threads : {1, 4}) {
      ExecutionContext ctx(threads);
      std::vector<double> batched;
      model.BatchLoss(rows, data, &batched, threads == 1 ? nullptr : &ctx);
      ASSERT_EQ(batched.size(), sequential.size());
      for (int b = 0; b < batch; ++b) {
        EXPECT_EQ(batched[b], sequential[b])
            << model.name() << " batch=" << batch << " threads=" << threads
            << " row=" << b;
      }
    }
  }
}

TEST(BatchLossTest, LogisticBitIdenticalToSequentialLoss) {
  const int dim = 67;  // awkward size: exercises tile remainder columns
  LogisticRegression model(dim, 10, 1e-3);
  ExpectBatchMatchesLoss(model, MakeData(101, dim, 10, 5, true), 11);
}

TEST(BatchLossTest, LogisticDenseNoRegularizer) {
  LogisticRegression model(64, 3, 0.0);
  ExpectBatchMatchesLoss(model, MakeData(64, 64, 3, 6, false), 12);
}

TEST(BatchLossTest, MlpBitIdenticalToSequentialLoss) {
  Mlp model({33, 17, 10}, 1e-4);  // odd widths: remainder paths
  ExpectBatchMatchesLoss(model, MakeData(75, 33, 10, 7, true), 13);
}

TEST(BatchLossTest, DeepMlpBitIdenticalToSequentialLoss) {
  Mlp model({24, 16, 8, 5}, 0.0);
  ExpectBatchMatchesLoss(model, MakeData(49, 24, 5, 8, true), 14);
}

TEST(BatchLossTest, SingleLayerMlpIsPureSoftmax) {
  Mlp model({20, 4}, 1e-3);  // no hidden layer: tail is softmax only
  ExpectBatchMatchesLoss(model, MakeData(31, 20, 4, 9, true), 15);
}

TEST(BatchLossTest, DefaultImplementationCoversCnn) {
  CnnConfig cfg;
  cfg.image_side = 6;
  cfg.channels = 1;
  cfg.num_filters = 3;
  cfg.num_classes = 4;
  Cnn model(cfg);
  ExpectBatchMatchesLoss(model, MakeData(20, 36, 4, 10, false), 16);
}

TEST(BatchLossTest, EmptyDatasetYieldsRegularizerOnly) {
  LogisticRegression model(16, 3, 1e-2);
  Dataset empty;
  Matrix feats(0, 16);
  empty = Dataset(std::move(feats), {}, 3);
  const Matrix rows = RandomParams(model, 7, 17);
  std::vector<double> batched;
  model.BatchLoss(rows, empty, &batched);
  for (int b = 0; b < 7; ++b) {
    EXPECT_EQ(batched[b], model.Loss(rows.Row(b), empty)) << b;
  }
}

// --- Tile kernels: every compiled width must agree with the scalar
// reference (the widths available depend on the build/CPU) ---

TEST(BatchLossTest, AllTileWidthsMatchScalarAffine) {
  const size_t dim = 37, width = 10, members = 8;
  const size_t pcols = dim * width + width;
  Rng rng(71);
  Matrix rows(members, pcols);
  for (size_t b = 0; b < members; ++b) {
    for (size_t k = 0; k < pcols; ++k) {
      rows(b, k) = rng.NextBernoulli(0.1) ? 0.0 : rng.NextGaussian();
    }
  }
  std::vector<double> x0(dim), x1(dim);
  for (size_t j = 0; j < dim; ++j) {
    x0[j] = rng.NextBernoulli(0.2) ? 0.0 : rng.NextGaussian();
    x1[j] = rng.NextBernoulli(0.2) ? 0.0 : rng.NextGaussian();
  }

  // Scalar reference: bias + ascending-j accumulation with zero skips.
  const size_t cols = members * width;
  auto reference = [&](const std::vector<double>& x) {
    std::vector<double> z(cols);
    for (size_t m = 0; m < members; ++m) {
      for (size_t u = 0; u < width; ++u) {
        double acc = rows(m, dim * width + u);
        for (size_t j = 0; j < dim; ++j) {
          const double xj = x[j];
          if (xj == 0.0) continue;
          acc += xj * rows(m, j * width + u);
        }
        z[m * width + u] = acc;
      }
    }
    return z;
  };
  const std::vector<double> ref0 = reference(x0);
  const std::vector<double> ref1 = reference(x1);

  for (size_t tile_cols : internal::SupportedTileCols()) {
    const internal::PackedAffineBlock pack = internal::PackAffineBlock(
        rows, 0, members, 0, dim * width, dim, width, tile_cols);
    ASSERT_EQ(pack.tile_cols, tile_cols);
    std::vector<double> z0(cols, -1.0), z1(cols, -1.0);
    internal::BatchedAffinePair(pack, x0.data(), x1.data(), z0.data(),
                                z1.data());
    for (size_t c = 0; c < cols; ++c) {
      EXPECT_EQ(z0[c], ref0[c]) << "tile_cols=" << tile_cols << " col=" << c;
      EXPECT_EQ(z1[c], ref1[c]) << "tile_cols=" << tile_cols << " col=" << c;
    }
    // Odd tail: x1 == nullptr writes only z0.
    std::vector<double> z0_only(cols, -1.0);
    internal::BatchedAffinePair(pack, x0.data(), nullptr, z0_only.data(),
                                nullptr);
    for (size_t c = 0; c < cols; ++c) {
      EXPECT_EQ(z0_only[c], ref0[c]) << "tile_cols=" << tile_cols;
    }
  }
}

// --- RoundUtility: batched engine vs the unbatched single path ---

RoundRecord MakeRoundRecord(const Model& model, const Dataset& test,
                            int num_clients, uint64_t seed) {
  RoundRecord rec;
  rec.round = 0;
  Rng rng(seed);
  Vector params;
  model.InitializeParams(&params, &rng, 0.2);
  rec.global_before = params;
  for (int k = 0; k < num_clients; ++k) {
    Vector local;
    model.InitializeParams(&local, &rng, 0.2);
    rec.local_models.push_back(std::move(local));
    rec.selected.push_back(k);
  }
  rec.test_loss_before = model.Loss(rec.global_before, test);
  return rec;
}

TEST(BatchLossTest, EvaluateBatchMatchesUnbatchedUtility) {
  const int n = 6;
  const int dim = 23;
  LogisticRegression model(dim, 5, 1e-3);
  Dataset test = MakeData(40, dim, 5, 21, true);
  RoundRecord rec = MakeRoundRecord(model, test, n, 22);

  // All non-empty coalitions of 6 clients, in mask order.
  std::vector<Coalition> coalitions;
  for (uint32_t mask = 1; mask < (1u << n); ++mask) {
    Coalition c(n);
    for (int k = 0; k < n; ++k) {
      if (mask & (1u << k)) c.Add(k);
    }
    coalitions.push_back(c);
  }

  int64_t unbatched_calls = 0;
  RoundUtility unbatched(&model, &test, &rec, &unbatched_calls);
  for (int threads : {1, 4}) {
    ExecutionContext ctx(threads);
    int64_t batched_calls = 0;
    RoundUtility batched(&model, &test, &rec, &batched_calls,
                         threads == 1 ? nullptr : &ctx);
    batched.EvaluateBatch(coalitions);
    for (const Coalition& c : coalitions) {
      EXPECT_EQ(batched.Utility(c), unbatched.Utility(c)) << "threads="
                                                          << threads;
    }
    // One loss call per distinct coalition, exactly like the single path.
    EXPECT_EQ(batched_calls, static_cast<int64_t>(coalitions.size()));
    EXPECT_EQ(batched.distinct_evaluations(),
              static_cast<int64_t>(coalitions.size()));
  }
  EXPECT_EQ(unbatched_calls, static_cast<int64_t>(coalitions.size()));
}

// Every non-empty submission — whether through Utility() or a batch —
// must land in exactly one UtilityStats counter: a loss call, a memo
// hit, or a surrogate skip. Duplicates inside one submitted batch and
// entries already cached before the batch resolve as memo hits, so
// loss_calls + memo_hits always equals the number of non-empty
// submissions, with loss_calls == distinct coalitions.
TEST(BatchLossTest, EvaluateBatchStatsAccountEverySubmissionOnce) {
  const int n = 4;
  LogisticRegression model(8, 3, 0.0);
  Dataset test = MakeData(20, 8, 3, 41, false);
  RoundRecord rec = MakeRoundRecord(model, test, n, 42);

  Coalition a = Coalition::FromMembers(n, {0, 2});
  Coalition b = Coalition::FromMembers(n, {1, 3});
  Coalition c = Coalition::FromMembers(n, {0, 1, 2});

  UtilityStats stats;
  int64_t calls = 0;
  RoundUtility utility(&model, &test, &rec, &calls, nullptr, &stats);
  utility.Utility(a);  // pre-cache one entry before the batch
  EXPECT_EQ(stats.loss_calls, 1);
  EXPECT_EQ(stats.memo_hits, 0);

  // Batch: {a (cached), b, b (in-batch duplicate), c, empty}.
  std::vector<Coalition> batch = {a, b, b, c, Coalition(n)};
  utility.EvaluateBatch(batch);
  EXPECT_EQ(stats.loss_calls, 3);           // a, b, c each measured once
  EXPECT_EQ(stats.distinct_coalitions, 3);
  EXPECT_EQ(stats.memo_hits, 2);            // cached a + duplicate b
  EXPECT_EQ(stats.batched_calls, 1);
  EXPECT_EQ(calls, 3);

  // Resubmitting the whole batch resolves every non-empty entry as a
  // hit: the submission count and the counter total stay in lockstep.
  utility.EvaluateBatch(batch);
  EXPECT_EQ(stats.loss_calls, 3);
  EXPECT_EQ(stats.memo_hits, 6);
  EXPECT_EQ(stats.batched_calls, 1);        // nothing left to chunk
}

// Racing EvaluateBatch against concurrent Utility() queries for the
// same coalitions must keep the accounting deterministic: no matter
// which thread wins each cache fill, loss_calls equals the distinct
// coalition count and loss_calls + memo_hits equals the total number
// of non-empty submissions. (Regression: a batch chunk losing the
// fill race to Utility() used to count that submission nowhere,
// making the totals scheduling-dependent.)
TEST(BatchLossTest, EvaluateBatchRacingUtilityKeepsCountsDeterministic) {
  const int n = 5;
  LogisticRegression model(12, 3, 0.0);
  Dataset test = MakeData(24, 12, 3, 51, false);
  RoundRecord rec = MakeRoundRecord(model, test, n, 52);

  std::vector<Coalition> coalitions;
  for (uint32_t mask = 1; mask < (1u << n); ++mask) {
    Coalition c(n);
    for (int k = 0; k < n; ++k) {
      if (mask & (1u << k)) c.Add(k);
    }
    coalitions.push_back(c);
  }
  const int64_t distinct = static_cast<int64_t>(coalitions.size());

  ExecutionContext ctx(4);
  const int kQueryTasks = 3;
  for (int iter = 0; iter < 20; ++iter) {
    UtilityStats stats;
    int64_t calls = 0;
    RoundUtility utility(&model, &test, &rec, &calls, nullptr, &stats);
    ctx.ParallelFor(kQueryTasks + 1, [&](int task) {
      if (task == 0) {
        utility.EvaluateBatch(coalitions);
      } else {
        for (const Coalition& c : coalitions) (void)utility.Utility(c);
      }
    });
    const int64_t submissions = distinct * (kQueryTasks + 1);
    EXPECT_EQ(stats.loss_calls, distinct) << "iter=" << iter;
    EXPECT_EQ(stats.distinct_coalitions, distinct) << "iter=" << iter;
    EXPECT_EQ(calls, distinct) << "iter=" << iter;
    EXPECT_EQ(stats.loss_calls + stats.memo_hits, submissions)
        << "iter=" << iter;
    EXPECT_EQ(utility.distinct_evaluations(), distinct) << "iter=" << iter;
  }
}

TEST(BatchLossTest, EvaluateBatchDedupsResubmissions) {
  const int n = 4;
  LogisticRegression model(8, 3, 0.0);
  Dataset test = MakeData(20, 8, 3, 31, false);
  RoundRecord rec = MakeRoundRecord(model, test, n, 32);

  std::vector<Coalition> batch;
  Coalition a = Coalition::FromMembers(n, {0, 2});
  Coalition b = Coalition::FromMembers(n, {1, 2, 3});
  batch.push_back(a);
  batch.push_back(b);
  batch.push_back(a);               // duplicate within the batch
  batch.push_back(Coalition(n));    // empty: skipped, utility 0
  int64_t calls = 0;
  RoundUtility utility(&model, &test, &rec, &calls);
  utility.EvaluateBatch(batch);
  EXPECT_EQ(calls, 2);
  utility.EvaluateBatch(batch);     // fully cached: no new calls
  EXPECT_EQ(calls, 2);
  EXPECT_EQ(utility.Utility(Coalition(n)), 0.0);
}

}  // namespace
}  // namespace comfedsv
