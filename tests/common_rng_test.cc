#include "common/rng.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <map>
#include <set>
#include <vector>

namespace comfedsv {
namespace {

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.NextUint64(), b.NextUint64());
  }
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.NextUint64() == b.NextUint64()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(RngTest, SeedZeroIsUsable) {
  Rng r(0);
  std::set<uint64_t> seen;
  for (int i = 0; i < 32; ++i) seen.insert(r.NextUint64());
  EXPECT_GT(seen.size(), 30u);  // not stuck at a fixed point
}

TEST(RngTest, BoundedUintWithinRange) {
  Rng r(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(r.NextUint64(10), 10u);
  }
}

TEST(RngTest, NextIntInclusiveRange) {
  Rng r(7);
  std::set<int> seen;
  for (int i = 0; i < 500; ++i) {
    int v = r.NextInt(-2, 2);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 2);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 5u);  // hits every value in the range
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng r(11);
  for (int i = 0; i < 1000; ++i) {
    double v = r.NextDouble();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(RngTest, GaussianMomentsApproximatelyStandard) {
  Rng r(99);
  const int n = 20000;
  double sum = 0.0, sum_sq = 0.0;
  for (int i = 0; i < n; ++i) {
    double v = r.NextGaussian();
    sum += v;
    sum_sq += v * v;
  }
  const double mean = sum / n;
  const double var = sum_sq / n - mean * mean;
  EXPECT_NEAR(mean, 0.0, 0.03);
  EXPECT_NEAR(var, 1.0, 0.05);
}

TEST(RngTest, GaussianWithParams) {
  Rng r(5);
  const int n = 20000;
  double sum = 0.0;
  for (int i = 0; i < n; ++i) sum += r.NextGaussian(3.0, 0.5);
  EXPECT_NEAR(sum / n, 3.0, 0.02);
}

TEST(RngTest, BernoulliFrequency) {
  Rng r(13);
  int hits = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    if (r.NextBernoulli(0.3)) ++hits;
  }
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.02);
}

TEST(RngTest, SplitStreamsAreIndependentOfParentUse) {
  // A child split with the same salt from the same parent state must be
  // identical regardless of what other children were created.
  Rng parent1(42), parent2(42);
  Rng child_a = parent1.Split(7);
  parent2.Split(3);  // different salt, discarded
  Rng child_b = parent2.Split(7);
  for (int i = 0; i < 20; ++i) {
    EXPECT_EQ(child_a.NextUint64(), child_b.NextUint64());
  }
}

TEST(RngTest, SplitDifferentSaltsDiffer) {
  Rng parent(42);
  Rng a = parent.Split(1);
  Rng b = parent.Split(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.NextUint64() == b.NextUint64()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(RngTest, PermutationIsAPermutation) {
  Rng r(3);
  std::vector<int> p = r.Permutation(50);
  std::vector<int> sorted = p;
  std::sort(sorted.begin(), sorted.end());
  for (int i = 0; i < 50; ++i) EXPECT_EQ(sorted[i], i);
}

TEST(RngTest, PermutationIsApproximatelyUniform) {
  // Position of element 0 should be uniform over 5 slots.
  Rng r(17);
  std::map<int, int> position_counts;
  const int trials = 5000;
  for (int t = 0; t < trials; ++t) {
    std::vector<int> p = r.Permutation(5);
    for (int i = 0; i < 5; ++i) {
      if (p[i] == 0) ++position_counts[i];
    }
  }
  for (int i = 0; i < 5; ++i) {
    EXPECT_NEAR(position_counts[i] / static_cast<double>(trials), 0.2,
                0.03);
  }
}

TEST(RngTest, SampleWithoutReplacementProperties) {
  Rng r(23);
  for (int trial = 0; trial < 50; ++trial) {
    std::vector<int> s = r.SampleWithoutReplacement(20, 7);
    EXPECT_EQ(s.size(), 7u);
    EXPECT_TRUE(std::is_sorted(s.begin(), s.end()));
    std::set<int> uniq(s.begin(), s.end());
    EXPECT_EQ(uniq.size(), 7u);
    for (int v : s) {
      EXPECT_GE(v, 0);
      EXPECT_LT(v, 20);
    }
  }
}

TEST(RngTest, SampleWithoutReplacementUniformInclusion) {
  // Each of 10 items appears in a size-3 sample with probability 0.3.
  Rng r(31);
  std::vector<int> counts(10, 0);
  const int trials = 10000;
  for (int t = 0; t < trials; ++t) {
    for (int v : r.SampleWithoutReplacement(10, 3)) ++counts[v];
  }
  for (int i = 0; i < 10; ++i) {
    EXPECT_NEAR(counts[i] / static_cast<double>(trials), 0.3, 0.03);
  }
}

TEST(RngTest, SampleEdgeCases) {
  Rng r(1);
  EXPECT_TRUE(r.SampleWithoutReplacement(5, 0).empty());
  std::vector<int> all = r.SampleWithoutReplacement(5, 5);
  EXPECT_EQ(all, (std::vector<int>{0, 1, 2, 3, 4}));
}

}  // namespace
}  // namespace comfedsv
