// End-to-end integration: one realistic non-IID federation with a
// duplicated client and one corrupted client, all three metrics computed
// on the same training run, checking the paper's headline claims jointly:
//   * training improves the model;
//   * ComFedSV is closer to symmetric for the twins than FedSV on
//     average over repeats;
//   * the corrupted client ranks at the bottom under ground truth;
//   * completion reconstructs the observed entries well.
#include <gtest/gtest.h>

#include <cmath>

#include "core/pipeline.h"
#include "data/image_sim.h"
#include "data/noise.h"
#include "data/partition.h"
#include "metrics/metrics.h"
#include "models/mlp.h"

namespace comfedsv {
namespace {

TEST(IntegrationTest, FullPipelineOnNonIidFederationWithTwinAndBadActor) {
  SimulatedImageConfig icfg;
  icfg.num_samples = 700;
  icfg.seed = 101;
  Dataset pool = GenerateSimulatedImages(icfg);
  icfg.num_samples = 150;
  icfg.seed = 102;
  Dataset test = GenerateSimulatedImages(icfg);

  const int kRepeats = 4;
  double fedsv_twin_gap = 0.0;
  double comfedsv_twin_gap = 0.0;
  int bad_actor_bottom2 = 0;

  for (int rep = 0; rep < kRepeats; ++rep) {
    Rng rng(103 + rep);
    // 7 base clients; client 7 twins client 0; client 3 is corrupted.
    std::vector<Dataset> clients = PartitionByLabelShards(pool, 7, 2, &rng);
    clients.push_back(clients[0]);
    FlipLabels(&clients[3], 0.8, &rng);
    const int n = static_cast<int>(clients.size());

    Mlp model({pool.dim(), 24, 10}, 1e-4);

    FedAvgConfig fed;
    fed.num_rounds = 10;
    fed.clients_per_round = 3;
    fed.select_all_first_round = true;
    fed.lr = LearningRateSchedule::Constant(0.3);
    fed.seed = 200 + rep;

    ValuationRequest req;
    req.compute_fedsv = true;
    req.fedsv.mode = FedSvConfig::Mode::kExact;
    req.compute_comfedsv = true;
    req.comfedsv.completion.rank = 3;
    req.comfedsv.completion.lambda = 1e-4;
    req.comfedsv.completion.temporal_smoothing = 0.1;
    req.comfedsv.completion.seed = rep;
    req.compute_ground_truth = true;

    Result<ValuationOutcome> outcome =
        RunValuation(model, clients, test, fed, req);
    ASSERT_TRUE(outcome.ok()) << outcome.status().ToString();
    const ValuationOutcome& o = outcome.value();

    // Model actually learns.
    EXPECT_LT(o.training.test_loss_history.back(),
              o.training.test_loss_history.front());

    // Twin symmetry gaps.
    fedsv_twin_gap +=
        RelativeDifference((*o.fedsv_values)[0], (*o.fedsv_values)[n - 1]);
    comfedsv_twin_gap += RelativeDifference(o.comfedsv->values[0],
                                            o.comfedsv->values[n - 1]);

    // The corrupted client should be in the ground-truth bottom 2.
    std::vector<int> bottom =
        BottomKIndices(*o.ground_truth_values, 2);
    if (bottom[0] == 3 || bottom[1] == 3) ++bad_actor_bottom2;

    // Completion fits the observed entries tightly.
    EXPECT_LT(o.comfedsv->completion.observed_rmse, 0.05);
    // All 2^8 coalition columns were interned (Assumption 1).
    EXPECT_EQ(o.comfedsv->num_columns, 256);
  }

  // Averaged over repeats, ComFedSV treats the twins more symmetrically.
  EXPECT_LT(comfedsv_twin_gap, fedsv_twin_gap);
  // The bad actor is detected in at least half the repeats.
  EXPECT_GE(bad_actor_bottom2, kRepeats / 2);
}

}  // namespace
}  // namespace comfedsv
