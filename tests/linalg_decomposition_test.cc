// Cholesky, symmetric eigendecomposition, SVD, and eps-rank tests.
#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"
#include "linalg/cholesky.h"
#include "linalg/eigen.h"
#include "linalg/eps_rank.h"
#include "linalg/matrix.h"
#include "linalg/svd.h"

namespace comfedsv {
namespace {

Matrix RandomMatrix(size_t rows, size_t cols, uint64_t seed) {
  Rng rng(seed);
  Matrix m(rows, cols);
  for (size_t i = 0; i < rows; ++i) {
    for (size_t j = 0; j < cols; ++j) m(i, j) = rng.NextGaussian();
  }
  return m;
}

Matrix RandomSpd(size_t n, uint64_t seed) {
  Matrix a = RandomMatrix(n, n + 2, seed);
  Matrix spd = a.GramRows();
  for (size_t i = 0; i < n; ++i) spd(i, i) += 0.5;  // ensure definite
  return spd;
}

TEST(CholeskyTest, FactorReconstructs) {
  Matrix a = RandomSpd(6, 11);
  Result<Matrix> l = CholeskyFactor(a);
  ASSERT_TRUE(l.ok()) << l.status().ToString();
  Matrix recon = Matrix::Multiply(l.value(), l.value().Transpose());
  EXPECT_LT(recon.FrobeniusDistance(a), 1e-9);
}

TEST(CholeskyTest, SolveSpdMatchesDirectCheck) {
  Matrix a = RandomSpd(8, 21);
  Vector b(8);
  for (size_t i = 0; i < 8; ++i) b[i] = static_cast<double>(i) - 3.0;
  Result<Vector> x = SolveSpd(a, b);
  ASSERT_TRUE(x.ok());
  Vector ax = a.MultiplyVec(x.value());
  EXPECT_LT(Distance(ax, b), 1e-8);
}

TEST(CholeskyTest, RejectsIndefiniteMatrix) {
  Matrix a(2, 2);
  a(0, 0) = 1.0;
  a(1, 1) = -1.0;
  EXPECT_FALSE(CholeskyFactor(a).ok());
}

TEST(CholeskyTest, RejectsNonSquare) {
  EXPECT_FALSE(CholeskyFactor(Matrix(2, 3)).ok());
  EXPECT_EQ(CholeskyFactor(Matrix(2, 3)).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(EigenTest, DiagonalMatrixEigenvalues) {
  Matrix d(3, 3);
  d(0, 0) = 3.0;
  d(1, 1) = 1.0;
  d(2, 2) = 2.0;
  Result<EigenDecomposition> eig = SymmetricEigen(d);
  ASSERT_TRUE(eig.ok());
  EXPECT_NEAR(eig.value().values[0], 3.0, 1e-12);
  EXPECT_NEAR(eig.value().values[1], 2.0, 1e-12);
  EXPECT_NEAR(eig.value().values[2], 1.0, 1e-12);
}

TEST(EigenTest, Known2x2) {
  // [[2,1],[1,2]] has eigenvalues 3 and 1.
  Matrix a(2, 2);
  a(0, 0) = 2.0;
  a(0, 1) = 1.0;
  a(1, 0) = 1.0;
  a(1, 1) = 2.0;
  Result<EigenDecomposition> eig = SymmetricEigen(a);
  ASSERT_TRUE(eig.ok());
  EXPECT_NEAR(eig.value().values[0], 3.0, 1e-10);
  EXPECT_NEAR(eig.value().values[1], 1.0, 1e-10);
}

TEST(EigenTest, ReconstructionAndOrthogonality) {
  Matrix a = RandomSpd(10, 33);
  Result<EigenDecomposition> eig = SymmetricEigen(a);
  ASSERT_TRUE(eig.ok());
  const Matrix& v = eig.value().vectors;
  // V diag(lambda) V^T == A.
  Matrix lam(10, 10);
  for (size_t i = 0; i < 10; ++i) lam(i, i) = eig.value().values[i];
  Matrix recon =
      Matrix::Multiply(Matrix::Multiply(v, lam), v.Transpose());
  EXPECT_LT(recon.FrobeniusDistance(a), 1e-8);
  // V^T V == I.
  Matrix vtv = Matrix::Multiply(v.Transpose(), v);
  EXPECT_LT(vtv.FrobeniusDistance(Matrix::Identity(10)), 1e-9);
}

TEST(EigenTest, RejectsNonSymmetric) {
  Matrix a(2, 2);
  a(0, 1) = 1.0;
  a(1, 0) = 2.0;
  EXPECT_FALSE(SymmetricEigen(a).ok());
}

TEST(SvdTest, SingularValuesOfKnownMatrix) {
  // diag(3, 2) embedded in 2x3.
  Matrix a(2, 3);
  a(0, 0) = 3.0;
  a(1, 1) = 2.0;
  Result<Vector> sv = SingularValues(a);
  ASSERT_TRUE(sv.ok());
  EXPECT_NEAR(sv.value()[0], 3.0, 1e-10);
  EXPECT_NEAR(sv.value()[1], 2.0, 1e-10);
}

TEST(SvdTest, ThinSvdReconstructsTallAndWide) {
  for (auto [rows, cols] : {std::pair<size_t, size_t>{12, 5},
                            std::pair<size_t, size_t>{5, 12}}) {
    Matrix a = RandomMatrix(rows, cols, rows * 100 + cols);
    Result<SvdDecomposition> svd = ThinSvd(a);
    ASSERT_TRUE(svd.ok());
    const SvdDecomposition& d = svd.value();
    Matrix sigma(d.singular.size(), d.singular.size());
    for (size_t i = 0; i < d.singular.size(); ++i) {
      sigma(i, i) = d.singular[i];
    }
    Matrix recon = Matrix::Multiply(Matrix::Multiply(d.u, sigma),
                                    d.v.Transpose());
    EXPECT_LT(recon.FrobeniusDistance(a), 1e-7)
        << rows << "x" << cols;
  }
}

TEST(SvdTest, SingularValuesDescendingNonNegative) {
  Matrix a = RandomMatrix(8, 20, 77);
  Result<Vector> sv = SingularValues(a);
  ASSERT_TRUE(sv.ok());
  for (size_t i = 0; i + 1 < sv.value().size(); ++i) {
    EXPECT_GE(sv.value()[i], sv.value()[i + 1] - 1e-12);
  }
  for (size_t i = 0; i < sv.value().size(); ++i) {
    EXPECT_GE(sv.value()[i], 0.0);
  }
}

TEST(SvdTest, FrobeniusNormIdentity) {
  // ||A||_F^2 == sum of squared singular values.
  Matrix a = RandomMatrix(6, 9, 5);
  Result<Vector> sv = SingularValues(a);
  ASSERT_TRUE(sv.ok());
  double sum_sq = 0.0;
  for (size_t i = 0; i < sv.value().size(); ++i) {
    sum_sq += sv.value()[i] * sv.value()[i];
  }
  EXPECT_NEAR(std::sqrt(sum_sq), a.FrobeniusNorm(), 1e-9);
}

TEST(SvdTest, TruncationErrorMatchesTailSingularValues) {
  Matrix a = RandomMatrix(10, 10, 8);
  Result<SvdDecomposition> svd = ThinSvd(a);
  ASSERT_TRUE(svd.ok());
  for (int k : {0, 3, 7, 10}) {
    Result<Matrix> approx = TruncatedSvdApproximation(a, k);
    ASSERT_TRUE(approx.ok());
    double tail = 0.0;
    for (size_t i = k; i < svd.value().singular.size(); ++i) {
      tail += svd.value().singular[i] * svd.value().singular[i];
    }
    EXPECT_NEAR(approx.value().FrobeniusDistance(a), std::sqrt(tail), 1e-8)
        << "k=" << k;
  }
}

TEST(SvdTest, ExactlyLowRankMatrixDetected) {
  // Outer product of two vectors has rank 1.
  Matrix u = RandomMatrix(9, 2, 3);
  Matrix v = RandomMatrix(2, 13, 4);
  Matrix a = Matrix::Multiply(u, v);  // rank <= 2
  Result<Vector> sv = SingularValues(a);
  ASSERT_TRUE(sv.ok());
  EXPECT_GT(sv.value()[1], 1e-8);
  // sigma_3 is numerically zero relative to sigma_1.
  EXPECT_LT(sv.value()[2], 1e-6 * sv.value()[0]);
}

TEST(EpsRankTest, SpectralAndExactBoundsOnLowRankPlusNoise) {
  Matrix u = RandomMatrix(20, 3, 13);
  Matrix v = RandomMatrix(3, 30, 14);
  Matrix a = Matrix::Multiply(u, v);
  Rng rng(15);
  for (size_t i = 0; i < a.rows(); ++i) {
    for (size_t j = 0; j < a.cols(); ++j) {
      a(i, j) += 1e-4 * rng.NextGaussian();
    }
  }
  Result<int> spectral = EpsRankSpectralBound(a, 0.05);
  Result<int> exact = EpsRankUpperBound(a, 0.05);
  ASSERT_TRUE(spectral.ok());
  ASSERT_TRUE(exact.ok());
  EXPECT_LE(exact.value(), 3);
  EXPECT_LE(exact.value(), spectral.value());
  EXPECT_GE(exact.value(), 1);
}

TEST(EpsRankTest, HugeEpsGivesRankZero) {
  Matrix a = RandomMatrix(5, 5, 2);
  Result<int> r = EpsRankUpperBound(a, 1e9);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 0);
}

TEST(EpsRankTest, RejectsNonPositiveEps) {
  Matrix a = RandomMatrix(3, 3, 2);
  EXPECT_FALSE(EpsRankUpperBound(a, 0.0).ok());
  EXPECT_FALSE(EpsRankSpectralBound(a, -1.0).ok());
}

}  // namespace
}  // namespace comfedsv
