#include "fl/adversary.h"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "data/image_sim.h"
#include "data/partition.h"
#include "fl/fedavg.h"
#include "fl/selection.h"
#include "models/logistic.h"

namespace comfedsv {
namespace {

struct Workload {
  std::vector<Dataset> clients;
  Dataset test;
};

Workload MakeWorkload(int num_clients, uint64_t seed) {
  SimulatedImageConfig cfg;
  cfg.num_samples = 60 * num_clients + 120;
  cfg.seed = seed;
  Dataset pool = GenerateSimulatedImages(cfg);
  Rng rng(seed + 1);
  auto [train_pool, test] = pool.RandomSplit(0.2, &rng);
  return {PartitionIid(train_pool, num_clients, &rng), std::move(test)};
}

AdversaryConfig OneSpec(int client, AdversaryKind kind, double intensity,
                        double camouflage = 0.0, int accomplice = -1) {
  AdversarySpec spec;
  spec.client = client;
  spec.kind = kind;
  spec.intensity = intensity;
  spec.camouflage = camouflage;
  spec.accomplice = accomplice;
  AdversaryConfig cfg;
  cfg.specs.push_back(spec);
  cfg.seed = 123;
  return cfg;
}

std::vector<Vector> HonestUpdates(int n, size_t dim) {
  std::vector<Vector> updates;
  for (int i = 0; i < n; ++i) {
    Vector u(dim);
    for (size_t j = 0; j < dim; ++j) {
      u[j] = static_cast<double>(i + 1) + 0.1 * static_cast<double>(j);
    }
    updates.push_back(std::move(u));
  }
  return updates;
}

TEST(AdversaryValidateTest, RejectsMalformedSpecs) {
  EXPECT_FALSE(AdversaryModel::Validate(
                   OneSpec(5, AdversaryKind::kFreeRider, 1.0), 4)
                   .ok());
  EXPECT_FALSE(AdversaryModel::Validate(
                   OneSpec(-1, AdversaryKind::kFreeRider, 1.0), 4)
                   .ok());
  AdversaryConfig dup = OneSpec(1, AdversaryKind::kFreeRider, 1.0);
  dup.specs.push_back(dup.specs[0]);
  EXPECT_FALSE(AdversaryModel::Validate(dup, 4).ok());
  EXPECT_FALSE(
      AdversaryModel::Validate(
          OneSpec(0, AdversaryKind::kGradientScaler,
                  std::numeric_limits<double>::infinity()),
          4)
          .ok());
  EXPECT_FALSE(AdversaryModel::Validate(
                   OneSpec(0, AdversaryKind::kFreeRider, 1.0, -0.5), 4)
                   .ok());
  EXPECT_FALSE(
      AdversaryModel::Validate(
          OneSpec(0, AdversaryKind::kColluder, 1.0, 0.0, /*accomplice=*/0),
          4)
          .ok());
  EXPECT_FALSE(
      AdversaryModel::Validate(
          OneSpec(0, AdversaryKind::kColluder, 1.0, 0.0, /*accomplice=*/9),
          4)
          .ok());
  EXPECT_FALSE(AdversaryModel::Validate(
                   OneSpec(0, AdversaryKind::kLabelFlipper, 1.5), 4)
                   .ok());
  EXPECT_FALSE(AdversaryModel::Validate(
                   OneSpec(0, AdversaryKind::kDropout, -0.1), 4)
                   .ok());
  EXPECT_FALSE(AdversaryModel::Validate(
                   OneSpec(0, AdversaryKind::kNanCorrupter, 0.0), 4)
                   .ok());
  EXPECT_TRUE(AdversaryModel::Validate(
                  OneSpec(0, AdversaryKind::kGradientScaler, -5.0), 4)
                  .ok());
}

TEST(AdversaryModelTest, FreeRiderSubmitsScaledGlobal) {
  AdversaryModel adv(OneSpec(1, AdversaryKind::kFreeRider, 0.5), 3);
  std::vector<Vector> updates = HonestUpdates(3, 4);
  Vector global{1.0, 2.0, 3.0, 4.0};
  const std::vector<Vector> before = updates;
  adv.TransformRound(0, global, &updates);
  for (size_t j = 0; j < 4; ++j) {
    EXPECT_DOUBLE_EQ(updates[1][j], 0.5 * global[j]);
    EXPECT_DOUBLE_EQ(updates[0][j], before[0][j]);
    EXPECT_DOUBLE_EQ(updates[2][j], before[2][j]);
  }
}

TEST(AdversaryModelTest, FreeRiderCamouflageIsRoundDeterministic) {
  AdversaryModel adv(OneSpec(0, AdversaryKind::kFreeRider, 1.0, 0.1), 2);
  Vector global{1.0, 2.0};
  std::vector<Vector> a = HonestUpdates(2, 2);
  std::vector<Vector> b = HonestUpdates(2, 2);
  adv.TransformRound(3, global, &a);
  adv.TransformRound(3, global, &b);
  EXPECT_TRUE(a[0] == b[0]);
  // Noise actually moved the update off the pure copy.
  EXPECT_FALSE(a[0] == global);
  // A different round draws different noise.
  std::vector<Vector> c = HonestUpdates(2, 2);
  adv.TransformRound(4, global, &c);
  EXPECT_FALSE(a[0] == c[0]);
}

TEST(AdversaryModelTest, GradientScalerScalesDelta) {
  AdversaryModel adv(OneSpec(0, AdversaryKind::kGradientScaler, -2.0), 2);
  std::vector<Vector> updates = HonestUpdates(2, 3);
  Vector global{1.0, 1.0, 1.0};
  const Vector honest = updates[0];
  adv.TransformRound(0, global, &updates);
  for (size_t j = 0; j < 3; ++j) {
    EXPECT_NEAR(updates[0][j], global[j] - 2.0 * (honest[j] - global[j]),
                1e-12);
  }
}

TEST(AdversaryModelTest, ColluderCopiesAccompliceHonestUpdate) {
  // The accomplice is itself a free-rider: the colluder must still copy
  // the accomplice's *honest* (pre-transform) update, independent of
  // client ordering.
  AdversaryConfig cfg = OneSpec(0, AdversaryKind::kFreeRider, 1.0);
  AdversarySpec colluder;
  colluder.client = 2;
  colluder.kind = AdversaryKind::kColluder;
  colluder.intensity = 1.0;
  colluder.accomplice = 0;
  cfg.specs.push_back(colluder);
  AdversaryModel adv(cfg, 3);
  std::vector<Vector> updates = HonestUpdates(3, 2);
  const Vector honest0 = updates[0];
  Vector global{5.0, 5.0};
  adv.TransformRound(0, global, &updates);
  EXPECT_TRUE(updates[2] == honest0);  // honest copy, not the free-ride
  EXPECT_TRUE(updates[0] == global);   // the accomplice still free-rides
}

TEST(AdversaryModelTest, PoisonDataFlipsRequestedFraction) {
  Workload w = MakeWorkload(3, 41);
  const std::vector<int> before = w.clients[1].labels();
  AdversaryModel adv(OneSpec(1, AdversaryKind::kLabelFlipper, 0.5), 3);
  const int flipped = adv.PoisonData(&w.clients);
  const std::vector<int>& after = w.clients[1].labels();
  int changed = 0;
  for (size_t i = 0; i < before.size(); ++i) {
    if (before[i] != after[i]) ++changed;
  }
  EXPECT_EQ(changed, flipped);
  EXPECT_EQ(flipped,
            static_cast<int>(0.5 * static_cast<double>(before.size())));
}

TEST(AdversaryModelTest, DropoutRemovesFromSelectedDeterministically) {
  AdversaryModel adv(OneSpec(1, AdversaryKind::kDropout, 1.0), 4);
  std::vector<int> selected = {0, 1, 2};
  std::vector<int> dropped = adv.ApplyDropouts(0, &selected);
  EXPECT_EQ(dropped, (std::vector<int>{1}));
  EXPECT_EQ(selected, (std::vector<int>{0, 2}));
  // Probability 0 never drops.
  AdversaryModel never(OneSpec(1, AdversaryKind::kDropout, 0.0), 4);
  selected = {0, 1, 2};
  EXPECT_TRUE(never.ApplyDropouts(0, &selected).empty());
  EXPECT_EQ(selected, (std::vector<int>{0, 1, 2}));
}

TEST(AdversaryModelTest, NanCorrupterPoisonsPrefix) {
  AdversaryModel adv(OneSpec(0, AdversaryKind::kNanCorrupter, 0.5), 1);
  std::vector<Vector> updates = HonestUpdates(1, 8);
  Vector global(8);
  adv.TransformRound(0, global, &updates);
  int bad = 0;
  for (size_t j = 0; j < 8; ++j) {
    if (!std::isfinite(updates[0][j])) ++bad;
  }
  EXPECT_EQ(bad, 4);
}

// --- Trainer integration: the aggregation guard ------------------------

class CaptureObserver : public RoundObserver {
 public:
  void OnRound(const RoundRecord& record) override {
    records.push_back(record);
  }
  std::vector<RoundRecord> records;
};

TEST(AggregationGuardTest, NanClientIsRejectedNotPropagated) {
  Workload w = MakeWorkload(4, 51);
  LogisticRegression model(w.test.dim(), 10);
  FedAvgConfig cfg;
  cfg.num_rounds = 5;
  cfg.clients_per_round = 4;
  cfg.seed = 52;
  cfg.adversary = OneSpec(2, AdversaryKind::kNanCorrupter, 1.0);

  CaptureObserver obs;
  FedAvgTrainer trainer(&model, w.clients, w.test, cfg);
  Result<TrainingResult> result = trainer.Train(&obs);
  ASSERT_TRUE(result.ok()) << result.status().ToString();

  const QuarantineReport& q = result.value().quarantine;
  ASSERT_EQ(q.rejected.size(), 4u);
  EXPECT_EQ(q.rejected[2], 5);  // rejected every round it was heard
  EXPECT_EQ(q.rejected[0] + q.rejected[1] + q.rejected[3], 0);
  EXPECT_EQ(q.rounds_degraded, 5);
  EXPECT_EQ(q.rounds_fully_rejected, 0);

  for (const RoundRecord& r : obs.records) {
    // The corrupter stays selected (Assumption 1 intact) but is listed
    // as rejected, and its recorded local model is the sanitized
    // zero-information copy of the broadcast global.
    EXPECT_EQ(r.rejected, (std::vector<int>{2}));
    ASSERT_TRUE(std::binary_search(r.selected.begin(), r.selected.end(), 2));
    EXPECT_TRUE(r.local_models[2] == r.global_before);
  }
  for (size_t i = 0; i < result.value().final_params.size(); ++i) {
    EXPECT_TRUE(std::isfinite(result.value().final_params[i]));
  }
}

TEST(AggregationGuardTest, UnguardedNanRunFailsWithNumericalError) {
  Workload w = MakeWorkload(3, 53);
  LogisticRegression model(w.test.dim(), 10);
  FedAvgConfig cfg;
  cfg.num_rounds = 3;
  cfg.clients_per_round = 3;
  cfg.seed = 54;
  cfg.adversary = OneSpec(0, AdversaryKind::kNanCorrupter, 1.0);
  cfg.guard.reject_nonfinite = false;

  FedAvgTrainer trainer(&model, w.clients, w.test, cfg);
  Result<TrainingResult> result = trainer.Train();
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kNumericalError);
}

TEST(AggregationGuardTest, AllRejectedRoundCarriesGlobalOver) {
  Workload w = MakeWorkload(2, 55);
  LogisticRegression model(w.test.dim(), 10);
  FedAvgConfig cfg;
  cfg.num_rounds = 2;
  cfg.clients_per_round = 2;
  cfg.seed = 56;
  cfg.adversary.seed = 57;
  for (int i = 0; i < 2; ++i) {
    AdversarySpec spec;
    spec.client = i;
    spec.kind = AdversaryKind::kNanCorrupter;
    cfg.adversary.specs.push_back(spec);
  }

  CaptureObserver obs;
  FedAvgTrainer trainer(&model, w.clients, w.test, cfg);
  Result<TrainingResult> result = trainer.Train(&obs);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result.value().quarantine.rounds_fully_rejected, 2);
  // Nothing was ever aggregated: the global model never moves.
  ASSERT_EQ(obs.records.size(), 2u);
  EXPECT_TRUE(obs.records[1].global_before == obs.records[0].global_before);
  EXPECT_TRUE(result.value().final_params == obs.records[0].global_before);
}

TEST(AggregationGuardTest, NormClippingBoundsTheDelta) {
  Workload w = MakeWorkload(3, 61);
  LogisticRegression model(w.test.dim(), 10);
  FedAvgConfig cfg;
  cfg.num_rounds = 3;
  cfg.clients_per_round = 3;
  cfg.seed = 62;
  cfg.adversary = OneSpec(1, AdversaryKind::kGradientScaler, 100.0);
  cfg.guard.clip_norm = 0.05;

  CaptureObserver obs;
  FedAvgTrainer trainer(&model, w.clients, w.test, cfg);
  Result<TrainingResult> result = trainer.Train(&obs);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_GT(result.value().quarantine.clipped[1], 0);
  for (const RoundRecord& r : obs.records) {
    for (int i : r.selected) {
      Vector delta = r.local_models[i];
      delta.Axpy(-1.0, r.global_before);
      EXPECT_LE(delta.Norm2(), cfg.guard.clip_norm * (1.0 + 1e-12));
    }
  }
}

TEST(AggregationGuardTest, QuarantineDropsRepeatOffenders) {
  Workload w = MakeWorkload(4, 63);
  LogisticRegression model(w.test.dim(), 10);
  FedAvgConfig cfg;
  cfg.num_rounds = 6;
  cfg.clients_per_round = 4;
  cfg.seed = 64;
  cfg.adversary = OneSpec(3, AdversaryKind::kNanCorrupter, 1.0);
  cfg.guard.quarantine_after = 2;

  CaptureObserver obs;
  FedAvgTrainer trainer(&model, w.clients, w.test, cfg);
  Result<TrainingResult> result = trainer.Train(&obs);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  const QuarantineReport& q = result.value().quarantine;
  EXPECT_EQ(q.rejected[3], 2);          // two strikes ...
  EXPECT_EQ(q.quarantine_drops[3], 4);  // ... then dropped for the rest
  ASSERT_EQ(obs.records.size(), 6u);
  for (size_t t = 0; t < 2; ++t) {
    EXPECT_EQ(obs.records[t].rejected, (std::vector<int>{3}));
    EXPECT_TRUE(obs.records[t].dropped.empty());
  }
  for (size_t t = 2; t < 6; ++t) {
    EXPECT_TRUE(obs.records[t].rejected.empty());
    EXPECT_EQ(obs.records[t].dropped, (std::vector<int>{3}));
    EXPECT_FALSE(std::binary_search(obs.records[t].selected.begin(),
                                    obs.records[t].selected.end(), 3));
  }
}

TEST(AggregationGuardTest, DropoutsAreRecordedAndExcluded) {
  Workload w = MakeWorkload(3, 65);
  LogisticRegression model(w.test.dim(), 10);
  FedAvgConfig cfg;
  cfg.num_rounds = 4;
  cfg.clients_per_round = 3;
  cfg.seed = 66;
  cfg.adversary = OneSpec(1, AdversaryKind::kDropout, 1.0);

  CaptureObserver obs;
  FedAvgTrainer trainer(&model, w.clients, w.test, cfg);
  ASSERT_TRUE(trainer.Train(&obs).ok());
  for (const RoundRecord& r : obs.records) {
    EXPECT_EQ(r.dropped, (std::vector<int>{1}));
    EXPECT_FALSE(
        std::binary_search(r.selected.begin(), r.selected.end(), 1));
  }
}

TEST(AggregationGuardTest, InvalidAdversaryConfigSurfacesFromTrain) {
  Workload w = MakeWorkload(3, 67);
  LogisticRegression model(w.test.dim(), 10);
  FedAvgConfig cfg;
  cfg.adversary = OneSpec(9, AdversaryKind::kFreeRider, 1.0);
  FedAvgTrainer trainer(&model, w.clients, w.test, cfg);
  Result<TrainingResult> result = trainer.Train();
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);

  FedAvgConfig bad_guard;
  bad_guard.guard.clip_norm = -1.0;
  FedAvgTrainer t2(&model, w.clients, w.test, bad_guard);
  EXPECT_FALSE(t2.Train().ok());
}

TEST(AggregationGuardTest, FreeRiderRunStaysHealthy) {
  Workload w = MakeWorkload(4, 71);
  LogisticRegression model(w.test.dim(), 10);
  FedAvgConfig cfg;
  cfg.num_rounds = 8;
  cfg.clients_per_round = 3;
  cfg.lr = LearningRateSchedule::Constant(0.5);
  cfg.seed = 72;
  cfg.adversary = OneSpec(0, AdversaryKind::kFreeRider, 1.0);
  FedAvgTrainer trainer(&model, w.clients, w.test, cfg);
  Result<TrainingResult> result = trainer.Train();
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  // An honest majority still learns despite the free-rider.
  const auto& history = result.value().test_loss_history;
  EXPECT_LT(history.back(), history.front());
  EXPECT_EQ(result.value().quarantine.rounds_degraded, 0);
}

}  // namespace
}  // namespace comfedsv
