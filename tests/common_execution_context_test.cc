// Tests for ExecutionContext: deterministic RNG sub-streams, parallel
// execution correctness under uneven loads (the shared-counter work
// distribution), and exception propagation out of parallel regions.
#include "common/execution_context.h"

#include <gtest/gtest.h>

#include <atomic>
#include <stdexcept>
#include <vector>

namespace comfedsv {
namespace {

TEST(ExecutionContextTest, InlineContextHasParallelismOne) {
  ExecutionContext ctx(0);
  EXPECT_EQ(ctx.parallelism(), 1);
  ExecutionContext ctx1(1);
  EXPECT_EQ(ctx1.parallelism(), 1);
  ExecutionContext ctx4(4);
  EXPECT_EQ(ctx4.parallelism(), 4);
}

TEST(ExecutionContextTest, SubStreamsDependOnlyOnSeedAndSalt) {
  ExecutionContext a(1, /*seed=*/42);
  ExecutionContext b(4, /*seed=*/42);  // thread count must not matter

  Rng ra = a.MakeRng(7);
  Rng rb = b.MakeRng(7);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(ra.NextUint64(), rb.NextUint64());
  }

  // Distinct salts give distinct streams.
  Rng r1 = a.MakeRng(1);
  Rng r2 = a.MakeRng(2);
  bool any_different = false;
  for (int i = 0; i < 16; ++i) {
    if (r1.NextUint64() != r2.NextUint64()) any_different = true;
  }
  EXPECT_TRUE(any_different);
}

TEST(ExecutionContextTest, SubStreamsAreIndependentOfCallOrder) {
  ExecutionContext a(1, 9);
  ExecutionContext b(1, 9);
  // a draws salt 5 after drawing many other salts; b draws it first.
  for (uint64_t s = 100; s < 150; ++s) a.MakeRng(s).NextUint64();
  Rng ra = a.MakeRng(5);
  Rng rb = b.MakeRng(5);
  for (int i = 0; i < 32; ++i) EXPECT_EQ(ra.NextUint64(), rb.NextUint64());
}

TEST(ExecutionContextTest, TaskRngsAreDeterministicPerIndex) {
  ExecutionContext a(2, 123);
  ExecutionContext b(8, 123);
  std::vector<Rng> sa = a.MakeTaskRngs(0xF00D, 16);
  std::vector<Rng> sb = b.MakeTaskRngs(0xF00D, 16);
  ASSERT_EQ(sa.size(), 16u);
  for (int i = 0; i < 16; ++i) {
    EXPECT_EQ(sa[i].NextUint64(), sb[i].NextUint64()) << "stream " << i;
  }
  // Adjacent task streams differ.
  std::vector<Rng> sc = a.MakeTaskRngs(0xF00D, 2);
  EXPECT_NE(sc[0].NextUint64(), sc[1].NextUint64());
}

TEST(ExecutionContextTest, ParallelForCoversUnevenLoadsExactlyOnce) {
  ExecutionContext ctx(3);
  const int n = 301;
  std::vector<std::atomic<int>> hits(n);
  ctx.ParallelFor(n, [&](int i) {
    // Deliberately uneven work so the shared-counter distribution has to
    // rebalance across workers.
    volatile double sink = 0.0;
    for (int k = 0; k < (i % 7) * 1000; ++k) sink = sink + k;
    hits[i].fetch_add(1);
  });
  for (int i = 0; i < n; ++i) EXPECT_EQ(hits[i].load(), 1) << i;
}

TEST(ExecutionContextTest, ParallelForPropagatesExceptions) {
  ExecutionContext ctx(4);
  EXPECT_THROW(
      ctx.ParallelFor(64,
                      [&](int i) {
                        if (i == 13) throw std::runtime_error("boom");
                      }),
      std::runtime_error);

  // The pool is intact after a failed region: the next region works and
  // covers everything.
  std::atomic<int> count{0};
  ctx.ParallelFor(32, [&](int) { count.fetch_add(1); });
  EXPECT_EQ(count.load(), 32);
}

TEST(ExecutionContextTest, InlineParallelForPropagatesExceptions) {
  ExecutionContext ctx(1);
  EXPECT_THROW(ctx.ParallelFor(4,
                               [&](int i) {
                                 if (i == 2) throw std::logic_error("x");
                               }),
               std::logic_error);
}

TEST(ExecutionContextTest, ExceptionAbandonsRemainingWorkQuickly) {
  // After a task throws, the region should not run all remaining indices.
  ExecutionContext ctx(2);
  std::atomic<int> executed{0};
  const int n = 100000;
  try {
    ctx.ParallelFor(n, [&](int i) {
      executed.fetch_add(1);
      if (i == 0) throw std::runtime_error("stop");
    });
    FAIL() << "expected exception";
  } catch (const std::runtime_error&) {
  }
  EXPECT_LT(executed.load(), n);
}

TEST(FreeParallelForTest, NullContextRunsInlineInOrder) {
  std::vector<int> order;
  ParallelFor(nullptr, 5, [&](int i) { order.push_back(i); });
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(FreeParallelForTest, ForwardsToContextPool) {
  ExecutionContext ctx(4);
  std::vector<std::atomic<int>> hits(64);
  ParallelFor(&ctx, 64, [&](int i) { hits[i].fetch_add(1); });
  for (int i = 0; i < 64; ++i) EXPECT_EQ(hits[i].load(), 1);
}

TEST(ExecutionContextTest, LogRespectsContextLevel) {
  ExecutionContext quiet(1, 0, LogLevel::kError);
  EXPECT_FALSE(quiet.ShouldLog(LogLevel::kInfo));
  EXPECT_TRUE(quiet.ShouldLog(LogLevel::kError));
  quiet.Log(LogLevel::kInfo, "dropped");  // must not crash
}

}  // namespace
}  // namespace comfedsv
