// Adaptive-budget estimator tests: WelfordStat numerics, the
// allocator's deterministic wave planning (top-up priority, Neyman
// split, largest-remainder rounding, degenerate budgets), checkpoint
// restore validation, and the adaptive MonteCarloShapley path
// (exactness on additive games, convergence on synergy games, the
// small-budget fallback, and single-player safety).
#include "shapley/budget_allocator.h"

#include <gtest/gtest.h>

#include <cmath>
#include <numeric>
#include <vector>

#include "common/rng.h"
#include "shapley/shapley.h"

namespace comfedsv {
namespace {

std::vector<int> Iota(int n) {
  std::vector<int> v(n);
  std::iota(v.begin(), v.end(), 0);
  return v;
}

UtilityFn AdditiveGame(const std::vector<double>& weights) {
  return [weights](const Coalition& c) {
    double total = 0.0;
    for (int m : c.Members()) total += weights[m];
    return total;
  };
}

TEST(WelfordStatTest, MatchesClosedFormMeanAndSampleVariance) {
  const std::vector<double> xs = {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0};
  WelfordStat stat;
  for (double x : xs) stat.Add(x);

  double mean = 0.0;
  for (double x : xs) mean += x;
  mean /= static_cast<double>(xs.size());
  double m2 = 0.0;
  for (double x : xs) m2 += (x - mean) * (x - mean);
  const double variance = m2 / static_cast<double>(xs.size() - 1);

  EXPECT_EQ(stat.count, static_cast<int64_t>(xs.size()));
  EXPECT_NEAR(stat.mean, mean, 1e-12);
  EXPECT_NEAR(stat.Variance(), variance, 1e-12);
  EXPECT_NEAR(stat.StdDev(), std::sqrt(variance), 1e-12);
}

TEST(WelfordStatTest, VarianceIsZeroBelowTwoSamples) {
  WelfordStat stat;
  EXPECT_EQ(stat.Variance(), 0.0);
  stat.Add(3.5);
  EXPECT_EQ(stat.Variance(), 0.0);
  EXPECT_EQ(stat.StdDev(), 0.0);
}

TEST(AdaptiveBudgetAllocatorTest, ZeroAndNegativeBudgetsPlanNothing) {
  AdaptiveBudgetAllocator alloc(4, /*min_cell_samples=*/2);
  for (int budget : {0, -1, -100}) {
    const std::vector<int> plan = alloc.PlanWave(budget);
    ASSERT_EQ(plan.size(), 4u);
    for (int p : plan) EXPECT_EQ(p, 0);
  }
}

TEST(AdaptiveBudgetAllocatorTest, BudgetSmallerThanStrataTopsUpInOrder) {
  // 5 empty cells, budget 3: the top-up pass hands one sample each to
  // the lowest-index cells and stops when the budget runs out.
  AdaptiveBudgetAllocator alloc(5, /*min_cell_samples=*/2);
  const std::vector<int> plan = alloc.PlanWave(3);
  EXPECT_EQ(plan, (std::vector<int>{1, 1, 1, 0, 0}));
  int total = 0;
  for (int p : plan) total += p;
  EXPECT_EQ(total, 3);
}

TEST(AdaptiveBudgetAllocatorTest, BudgetOfOneIsSafeOnSingleCell) {
  AdaptiveBudgetAllocator alloc(1, /*min_cell_samples=*/2);
  EXPECT_EQ(alloc.PlanWave(1), (std::vector<int>{1}));
  alloc.Record(0, 1.0);
  alloc.Record(0, 1.0);
  // Fully topped up, zero variance: even-spread fallback gets the rest.
  EXPECT_EQ(alloc.PlanWave(1), (std::vector<int>{1}));
}

TEST(AdaptiveBudgetAllocatorTest, NeymanSplitFollowsStdDev) {
  // Cell 0: high variance; cell 1: low variance; cell 2: zero variance.
  AdaptiveBudgetAllocator alloc(3, /*min_cell_samples=*/2);
  alloc.Record(0, 0.0);
  alloc.Record(0, 10.0);  // sd = sqrt(50)
  alloc.Record(1, 0.0);
  alloc.Record(1, 1.0);  // sd = sqrt(0.5)
  alloc.Record(2, 4.0);
  alloc.Record(2, 4.0);  // sd = 0

  const std::vector<int> plan = alloc.PlanWave(10);
  int total = 0;
  for (int p : plan) total += p;
  EXPECT_EQ(total, 10);
  // sqrt(50)/sqrt(0.5) = 10, so the high-variance cell dominates; the
  // zero-variance cell keeps only the exploration-floor trickle.
  EXPECT_GT(plan[0], plan[1]);
  EXPECT_GE(plan[1], plan[2]);
  EXPECT_LE(plan[2], 1);
  EXPECT_GE(plan[0], 8);
}

TEST(AdaptiveBudgetAllocatorTest, TopUpTakesPriorityOverNeyman) {
  // Cell 1 is still below min_cell_samples; it must be topped up before
  // the variance split even though cell 0 has all the variance.
  AdaptiveBudgetAllocator alloc(2, /*min_cell_samples=*/2);
  alloc.Record(0, 0.0);
  alloc.Record(0, 100.0);
  alloc.Record(1, 5.0);

  const std::vector<int> plan = alloc.PlanWave(4);
  EXPECT_GE(plan[1], 1);
  int total = 0;
  for (int p : plan) total += p;
  EXPECT_EQ(total, 4);
}

TEST(AdaptiveBudgetAllocatorTest, AllZeroVarianceSpreadsEvenly) {
  AdaptiveBudgetAllocator alloc(4, /*min_cell_samples=*/1);
  for (int c = 0; c < 4; ++c) {
    alloc.Record(c, 2.0);
    alloc.Record(c, 2.0);
  }
  const std::vector<int> plan = alloc.PlanWave(6);
  // 6 over 4 cells: even spread gives {2, 2, 1, 1} (remainder to the
  // lower indices).
  EXPECT_EQ(plan, (std::vector<int>{2, 2, 1, 1}));
}

TEST(AdaptiveBudgetAllocatorTest, PlanIsDeterministicAndPure) {
  AdaptiveBudgetAllocator alloc(6, /*min_cell_samples=*/2);
  Rng rng(7);
  for (int i = 0; i < 40; ++i) {
    alloc.Record(rng.NextInt(0, 5), rng.NextDouble());
  }
  const std::vector<int> first = alloc.PlanWave(17);
  for (int repeat = 0; repeat < 3; ++repeat) {
    EXPECT_EQ(alloc.PlanWave(17), first);
  }
}

TEST(AdaptiveBudgetAllocatorTest, RestoreCellsRoundTripsAndValidates) {
  AdaptiveBudgetAllocator alloc(3, /*min_cell_samples=*/2);
  alloc.Record(0, 1.0);
  alloc.Record(1, 2.0);
  alloc.Record(1, 4.0);

  AdaptiveBudgetAllocator restored(3, /*min_cell_samples=*/2);
  ASSERT_TRUE(restored.RestoreCells(alloc.cells()));
  EXPECT_EQ(restored.total_samples(), alloc.total_samples());
  EXPECT_EQ(restored.PlanWave(9), alloc.PlanWave(9));

  // Size mismatch and negative counts are rejected.
  AdaptiveBudgetAllocator wrong_size(4, /*min_cell_samples=*/2);
  EXPECT_FALSE(wrong_size.RestoreCells(alloc.cells()));
  std::vector<WelfordStat> corrupt = alloc.cells();
  corrupt[0].count = -1;
  AdaptiveBudgetAllocator corrupted(3, /*min_cell_samples=*/2);
  EXPECT_FALSE(corrupted.RestoreCells(corrupt));
}

TEST(AdaptiveMonteCarloTest, ExactOnAdditiveGames) {
  // Additive games have zero within-cell variance, so any allocation
  // (pilot alone included) recovers the weights exactly.
  const std::vector<double> weights = {0.5, -1.0, 2.0, 0.0, 3.25};
  const int m = static_cast<int>(weights.size());
  SamplerConfig cfg;
  cfg.adaptive.enabled = true;
  Rng rng(11);
  Result<Vector> got = MonteCarloShapley(m, Iota(m), AdditiveGame(weights),
                                         /*num_permutations=*/4 * m, &rng,
                                         nullptr, nullptr, cfg);
  ASSERT_TRUE(got.ok()) << got.status().message();
  for (int i = 0; i < m; ++i) {
    EXPECT_NEAR(got.value()[i], weights[i], 1e-9) << "player " << i;
  }
}

TEST(AdaptiveMonteCarloTest, ConvergesToExactOnSynergyGame) {
  // A game with pairwise synergy so cells carry real variance.
  const int m = 6;
  UtilityFn game = [](const Coalition& c) {
    const auto& members = c.Members();
    double v = 0.0;
    for (int p : members) v += 0.3 * (p + 1);
    v += 0.5 * static_cast<double>(members.size() * members.size());
    return v;
  };
  Result<Vector> exact = ExactShapley(m, Iota(m), game);
  ASSERT_TRUE(exact.ok());

  SamplerConfig cfg;
  cfg.adaptive.enabled = true;
  Rng rng(123);
  Result<Vector> got = MonteCarloShapley(m, Iota(m), game,
                                         /*num_permutations=*/400, &rng,
                                         nullptr, nullptr, cfg);
  ASSERT_TRUE(got.ok());
  for (int i = 0; i < m; ++i) {
    EXPECT_NEAR(got.value()[i], exact.value()[i], 0.15) << "player " << i;
  }
}

TEST(AdaptiveMonteCarloTest, SmallBudgetFallsBackToPlainSampler) {
  // Below 2*m permutations the adaptive branch must reproduce the plain
  // sampler draw-for-draw (same rng consumption).
  const int m = 5;
  const std::vector<double> weights = {1.0, 2.0, 3.0, 4.0, 5.0};
  SamplerConfig plain;
  SamplerConfig adaptive;
  adaptive.adaptive.enabled = true;

  Rng rng_plain(42);
  Rng rng_adaptive(42);
  Result<Vector> a =
      MonteCarloShapley(m, Iota(m), AdditiveGame(weights), /*perms=*/m,
                        &rng_plain, nullptr, nullptr, plain);
  Result<Vector> b =
      MonteCarloShapley(m, Iota(m), AdditiveGame(weights), /*perms=*/m,
                        &rng_adaptive, nullptr, nullptr, adaptive);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  for (int i = 0; i < m; ++i) {
    EXPECT_EQ(a.value()[i], b.value()[i]) << "player " << i;
  }
}

TEST(AdaptiveMonteCarloTest, SinglePlayerGameDoesNotCrash) {
  SamplerConfig cfg;
  cfg.adaptive.enabled = true;
  Rng rng(3);
  Result<Vector> got = MonteCarloShapley(
      1, {0}, AdditiveGame({7.5}), /*num_permutations=*/8, &rng, nullptr,
      nullptr, cfg);
  ASSERT_TRUE(got.ok());
  EXPECT_NEAR(got.value()[0], 7.5, 1e-12);
}

TEST(AdaptiveMonteCarloTest, SubsetOfUniversePlayersGetValuesOthersZero) {
  const std::vector<double> weights = {1.0, 2.0, 3.0, 4.0, 5.0, 6.0};
  SamplerConfig cfg;
  cfg.adaptive.enabled = true;
  Rng rng(17);
  const std::vector<int> players = {1, 3, 5};
  Result<Vector> got = MonteCarloShapley(6, players, AdditiveGame(weights),
                                         /*num_permutations=*/24, &rng,
                                         nullptr, nullptr, cfg);
  ASSERT_TRUE(got.ok());
  EXPECT_NEAR(got.value()[1], 2.0, 1e-9);
  EXPECT_NEAR(got.value()[3], 4.0, 1e-9);
  EXPECT_NEAR(got.value()[5], 6.0, 1e-9);
  EXPECT_EQ(got.value()[0], 0.0);
  EXPECT_EQ(got.value()[2], 0.0);
  EXPECT_EQ(got.value()[4], 0.0);
}

TEST(AdaptiveMonteCarloTest, InvalidAdaptiveKnobsAreRejected) {
  const std::vector<double> weights = {1.0, 2.0, 3.0};
  Rng rng(1);
  SamplerConfig cfg;
  cfg.adaptive.enabled = true;
  cfg.adaptive.waves = 0;
  EXPECT_FALSE(MonteCarloShapley(3, Iota(3), AdditiveGame(weights), 12,
                                 &rng, nullptr, nullptr, cfg)
                   .ok());
  cfg.adaptive.waves = 4;
  cfg.adaptive.min_cell_samples = 0;
  EXPECT_FALSE(MonteCarloShapley(3, Iota(3), AdditiveGame(weights), 12,
                                 &rng, nullptr, nullptr, cfg)
                   .ok());
  cfg.adaptive.min_cell_samples = 2;
  cfg.adaptive.pilot_permutations = -1;
  EXPECT_FALSE(MonteCarloShapley(3, Iota(3), AdditiveGame(weights), 12,
                                 &rng, nullptr, nullptr, cfg)
                   .ok());
}

}  // namespace
}  // namespace comfedsv
