// Golden end-to-end scenario matrix: a fixed-seed cross-product of
//   {selector: all / random / Bernoulli}
// x {sampler:  uniform / antithetic / stratified / truncated}
// x {solver:   ALS / CCD++ / SGD}
// x {noise:    clean / noisy-label}
// over a small synthetic game, with checked-in golden FedSV and ComFedSV
// values — so future refactors cannot silently move paper-facing numbers.
//
// Tolerance policy (the "exact vs documented tolerance" split):
//   * FedSV values are compared EXACTLY (EXPECT_EQ on the doubles). The
//     scenario uses a quadratic fixture model with a uniform-draw
//     parameter init, so the whole FedSV path — training, selection,
//     permutation sampling, utility evaluation — is pure IEEE +-*/
//     arithmetic with no libm transcendentals, which is bit-stable
//     across conforming toolchains (x86-64 baseline has no FMA
//     contraction).
//   * ComFedSV values are compared to a relative tolerance of 1e-9: the
//     completion solve's random factor init draws Gaussians through
//     Box–Muller (libm log/sin/cos), whose last-ulp behavior may vary
//     across C libraries. Any real regression moves the values by
//     orders of magnitude more than 1e-9.
//
// Regenerating goldens (after an *intentional* numerics change): run
//   COMFEDSV_GOLDEN_REGEN=1 ./scenario_golden_test
// and paste the emitted table over kGolden below. The regen run skips
// the comparisons.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <iterator>
#include <string>
#include <vector>

#include "common/check.h"
#include "core/pipeline.h"
#include "data/noise.h"

namespace comfedsv {
namespace {

constexpr int kNumClients = 4;
constexpr int kDim = 5;
constexpr int kClasses = 3;
constexpr int kRounds = 3;

// Quadratic one-vs-all least-squares classifier: Loss and gradient are
// polynomials in the parameters and data, so the model contributes no
// libm calls (see the tolerance policy above). Parameters are laid out
// as kClasses rows of [w (kDim) | b].
class QuadraticModel : public Model {
 public:
  size_t num_params() const override {
    return static_cast<size_t>(kClasses) * (kDim + 1);
  }
  size_t input_dim() const override { return kDim; }
  int num_classes() const override { return kClasses; }
  std::string name() const override { return "quadratic"; }

  double Loss(const Vector& params, const Dataset& data) const override {
    double total = 0.0;
    for (size_t i = 0; i < data.num_samples(); ++i) {
      const double* x = data.sample(i);
      for (int c = 0; c < kClasses; ++c) {
        const double err = Score(params, c, x) -
                           (data.label(i) == c ? 1.0 : 0.0);
        total += err * err;
      }
    }
    return total / static_cast<double>(data.num_samples());
  }

  double LossAndGradient(const Vector& params, const Dataset& data,
                         Vector* grad) const override {
    grad->Resize(num_params());
    grad->Fill(0.0);
    double total = 0.0;
    const double scale = 2.0 / static_cast<double>(data.num_samples());
    for (size_t i = 0; i < data.num_samples(); ++i) {
      const double* x = data.sample(i);
      for (int c = 0; c < kClasses; ++c) {
        const double err = Score(params, c, x) -
                           (data.label(i) == c ? 1.0 : 0.0);
        total += err * err;
        double* g = grad->data() + c * (kDim + 1);
        for (int j = 0; j < kDim; ++j) g[j] += scale * err * x[j];
        g[kDim] += scale * err;
      }
    }
    return total / static_cast<double>(data.num_samples());
  }

  int Predict(const Vector& params, const double* x) const override {
    int best = 0;
    double best_score = Score(params, 0, x);
    for (int c = 1; c < kClasses; ++c) {
      const double s = Score(params, c, x);
      if (s > best_score) {
        best_score = s;
        best = c;
      }
    }
    return best;
  }

  // Uniform draws only — the default init's Box–Muller would pull libm
  // transcendentals into the otherwise arithmetic-pure FedSV path.
  void InitializeParams(Vector* params, Rng* rng,
                        double scale = 0.05) const override {
    params->Resize(num_params());
    for (size_t i = 0; i < params->size(); ++i) {
      (*params)[i] = rng->NextDouble(-scale, scale);
    }
  }

 private:
  static double Score(const Vector& params, int c, const double* x) {
    const double* row = params.data() + c * (kDim + 1);
    double s = row[kDim];
    for (int j = 0; j < kDim; ++j) s += row[j] * x[j];
    return s;
  }
};

// Synthetic game data: uniform features (no libm), labels a fixed
// arithmetic function of the features, heterogeneous client sizes.
Dataset MakeClientData(int client, bool noisy, Rng* rng) {
  const size_t samples = 10 + 2 * client;
  Matrix feats(samples, kDim);
  std::vector<int> labels(samples);
  for (size_t i = 0; i < samples; ++i) {
    double sum = 0.0;
    for (int j = 0; j < kDim; ++j) {
      feats(i, j) = rng->NextDouble(-1.0, 1.0);
      sum += feats(i, j);
    }
    labels[i] = static_cast<int>(rng->NextUint64(kClasses));
    if (sum > 0.5) labels[i] = 0;  // learnable structure
  }
  Dataset d(std::move(feats), std::move(labels), kClasses);
  if (noisy && client == 0) {
    // The noisy-label scenario corrupts client 0 (30% flips, Fig. 7's
    // rate) — enough to move both metrics' value of that client.
    Rng flip_rng(rng->NextUint64());
    FlipLabels(&d, 0.3, &flip_rng);
  }
  return d;
}

struct Scenario {
  const char* selector;
  const char* sampler;
  const char* solver;
  const char* noise;
};

std::string ScenarioKey(const Scenario& s) {
  return std::string(s.selector) + "/" + s.sampler + "/" + s.solver + "/" +
         s.noise;
}

struct ScenarioResult {
  std::vector<double> fedsv;
  std::vector<double> comfedsv;
};

// `attack` (nullptr = honest) injects one adversarial client into the
// run. The adversarial cells stay on the exact-FedSV tolerance policy:
// free-rider uses camouflage 0 (the Gaussian camouflage path is the one
// libm-dependent adversary ingredient), gradient-scaler is pure IEEE
// arithmetic, and label-flip draws flip positions through the integer
// Rng only.
ScenarioResult RunScenario(const Scenario& s,
                           const char* attack = nullptr) {
  QuadraticModel model;
  Rng data_rng(20240731);
  const bool noisy = std::string(s.noise) == "noisy";
  std::vector<Dataset> clients;
  for (int i = 0; i < kNumClients; ++i) {
    clients.push_back(MakeClientData(i, noisy, &data_rng));
  }
  Rng test_rng(424242);
  Dataset test = MakeClientData(/*client=*/5, /*noisy=*/false, &test_rng);

  FedAvgConfig fed_cfg;
  fed_cfg.num_rounds = kRounds;
  fed_cfg.local_steps = 2;
  fed_cfg.lr = LearningRateSchedule::Constant(0.05);
  fed_cfg.select_all_first_round = true;
  fed_cfg.seed = 1001;
  const std::string selector = s.selector;
  if (selector == "all") {
    fed_cfg.selector = SelectorKind::kUniform;
    fed_cfg.clients_per_round = kNumClients;
  } else if (selector == "random") {
    fed_cfg.selector = SelectorKind::kUniform;
    fed_cfg.clients_per_round = 2;
  } else {
    fed_cfg.selector = SelectorKind::kBernoulli;
    fed_cfg.participation_prob = 0.6;
  }

  if (attack != nullptr) {
    AdversarySpec spec;
    spec.client = 1;
    const std::string kind = attack;
    if (kind == "free_rider") {
      spec.kind = AdversaryKind::kFreeRider;
      spec.intensity = 1.0;
      spec.camouflage = 0.0;  // keep the FedSV path libm-free
    } else if (kind == "grad_scaler") {
      spec.kind = AdversaryKind::kGradientScaler;
      spec.intensity = 8.0;
    } else {
      COMFEDSV_CHECK(kind == "label_flip");
      spec.kind = AdversaryKind::kLabelFlipper;
      spec.intensity = 0.4;
    }
    fed_cfg.adversary.specs.push_back(spec);
    fed_cfg.adversary.seed = 7007;
  }

  SamplerConfig sampler;
  const std::string sampler_name = s.sampler;
  sampler.kind = sampler_name == "antithetic" ? SamplerKind::kAntithetic
                 : sampler_name == "stratified"
                     ? SamplerKind::kStratified
                 : sampler_name == "truncated" ? SamplerKind::kTruncated
                                               : SamplerKind::kUniformIid;
  sampler.truncation_tolerance = 0.01;

  ValuationRequest request;
  request.compute_fedsv = true;
  request.fedsv.mode = FedSvConfig::Mode::kMonteCarlo;
  request.fedsv.permutations_per_round = 6;
  request.fedsv.sampler = sampler;
  request.fedsv.seed = 2002;
  request.compute_comfedsv = true;
  request.comfedsv.mode = ComFedSvConfig::Mode::kSampled;
  request.comfedsv.num_permutations = 6;
  request.comfedsv.sampler = sampler;
  request.comfedsv.completion.rank = 2;
  request.comfedsv.completion.lambda = 1e-3;
  request.comfedsv.completion.max_iters = 25;
  const std::string solver = s.solver;
  request.comfedsv.completion.solver =
      solver == "ccd"   ? CompletionSolver::kCcd
      : solver == "sgd" ? CompletionSolver::kSgd
                        : CompletionSolver::kAls;
  request.comfedsv.completion.seed = 3003;
  request.comfedsv.seed = 4004;

  Result<ValuationOutcome> run =
      RunValuation(model, clients, test, fed_cfg, request);
  COMFEDSV_CHECK_OK(run.status());
  ScenarioResult out;
  const ValuationOutcome& outcome = run.value();
  COMFEDSV_CHECK(outcome.fedsv_values.has_value());
  COMFEDSV_CHECK(outcome.comfedsv.has_value());
  for (int i = 0; i < kNumClients; ++i) {
    out.fedsv.push_back((*outcome.fedsv_values)[i]);
    out.comfedsv.push_back(outcome.comfedsv->values[i]);
  }
  return out;
}

std::vector<Scenario> AllScenarios() {
  std::vector<Scenario> scenarios;
  for (const char* selector : {"all", "random", "bernoulli"}) {
    for (const char* sampler :
         {"uniform", "antithetic", "stratified", "truncated"}) {
      for (const char* solver : {"als", "ccd", "sgd"}) {
        for (const char* noise : {"clean", "noisy"}) {
          scenarios.push_back({selector, sampler, solver, noise});
        }
      }
    }
  }
  return scenarios;
}

struct GoldenRow {
  const char* key;
  double fedsv[kNumClients];
  double comfedsv[kNumClients];
};

// Generated with COMFEDSV_GOLDEN_REGEN=1 (see the file header). Values
// are %.17g, which round-trips doubles exactly.
constexpr GoldenRow kGolden[] = {
    // COMFEDSV_GOLDEN_TABLE_BEGIN
    {"all/uniform/als/clean",
     {0.069541535250595365, 0.050246066953785543, 0.093169729814349414, 0.074484780373922824},
     {0.054229583258891823, 0.15400502366860158, 0.011508462021121869, 0.067566747449340631}},
    {"all/uniform/als/noisy",
     {0.057230496073435361, 0.046451547145840114, 0.045909176362861841, 0.11123676167263169},
     {0.034465173734923284, 0.14266183272143676, -0.014562843108892035, 0.098168224124771067}},
    {"all/uniform/ccd/clean",
     {0.069541535250595365, 0.050246066953785543, 0.093169729814349414, 0.074484780373922824},
     {0.054221261251013321, 0.15398227609442255, 0.011506627069445894, 0.067555373446600217}},
    {"all/uniform/ccd/noisy",
     {0.057230496073435361, 0.046451547145840114, 0.045909176362861841, 0.11123676167263169},
     {0.03445930688202526, 0.14263771820167054, -0.01456039685125122, 0.098151650879118438}},
    {"all/uniform/sgd/clean",
     {0.069541535250595365, 0.050246066953785543, 0.093169729814349414, 0.074484780373922824},
     {-1.4733574194737682e-05, 8.7248890992423374e-06, -0.00084065488114189191, 0.00019509734690448399}},
    {"all/uniform/sgd/noisy",
     {0.057230496073435361, 0.046451547145840114, 0.045909176362861841, 0.11123676167263169},
     {-1.7265459934357559e-05, 7.6171121467140802e-06, -0.00083675715537591551, 0.00019823389592835434}},
    {"all/antithetic/als/clean",
     {0.04194362535486057, 0.069283339474825983, 0.10946937036476299, 0.066745777198203585},
     {0.051506534218419386, 0.10408354513040141, 0.10842253990364825, 0.02326253917127287}},
    {"all/antithetic/als/noisy",
     {0.03462653400355914, 0.065813570338502131, 0.059116764142337512, 0.10127111277037021},
     {0.04032266570893818, 0.10216647093450983, 0.059094723168063697, 0.059077168695873705}},
    {"all/antithetic/ccd/clean",
     {0.04194362535486057, 0.069283339474825983, 0.10946937036476299, 0.066745777198203585},
     {0.051502305293114933, 0.1040758144461289, 0.10841283017536285, 0.02325980421685115}},
    {"all/antithetic/ccd/noisy",
     {0.03462653400355914, 0.065813570338502131, 0.059116764142337512, 0.10127111277037021},
     {0.040318232020992724, 0.10215618491607839, 0.059088240325235721, 0.059071479911512716}},
    {"all/antithetic/sgd/clean",
     {0.04194362535486057, 0.069283339474825983, 0.10946937036476299, 0.066745777198203585},
     {-0.00048198188666573338, -0.00014391717095275005, -4.8533226379956032e-05, -0.00015893251646819382}},
    {"all/antithetic/sgd/noisy",
     {0.03462653400355914, 0.065813570338502131, 0.059116764142337512, 0.10127111277037021},
     {-0.00043528380011224985, -0.00013565034084741281, -5.5286940630271772e-05, -0.00013557052726109311}},
    {"all/stratified/als/clean",
     {0.088130498005620297, 0.097112567928445387, 0.071070114393512129, 0.031128932065075332},
     {0.092067910326611282, 0.10368318206123042, 0.065988724716145836, 0.025548153813252844}},
    {"all/stratified/als/noisy",
     {0.075666883531535806, 0.092274087909746741, 0.027652486522153963, 0.065234523291332502},
     {0.080701024704841612, 0.10337222939311977, 0.020959636793811964, 0.055605167467643192}},
    {"all/stratified/ccd/clean",
     {0.088130498005620297, 0.097112567928445387, 0.071070114393512129, 0.031128932065075332},
     {0.092060007407904904, 0.10367306118868427, 0.065982928638811736, 0.025546623836889399}},
    {"all/stratified/ccd/noisy",
     {0.075666883531535806, 0.092274087909746741, 0.027652486522153963, 0.065234523291332502},
     {0.080692602235023003, 0.10336233086443636, 0.020957188102078673, 0.055600183011238154}},
    {"all/stratified/sgd/clean",
     {0.088130498005620297, 0.097112567928445387, 0.071070114393512129, 0.031128932065075332},
     {-0.0006018751529493539, 9.4385189697979288e-05, 1.6430102462038295e-05, -0.00032728451441605896}},
    {"all/stratified/sgd/noisy",
     {0.075666883531535806, 0.092274087909746741, 0.027652486522153963, 0.065234523291332502},
     {-0.00052004801287783254, 5.0808827145546492e-05, -4.3258405743047652e-05, -0.00027579052312136268}},
    {"all/truncated/als/clean",
     {0.068166257563590293, 0.044588571988682858, 0.085240189280134854, 0.085881819581407018},
     {0.051185083207816708, 0.15644230503967516, 0.0038779641769675168, 0.075791661183929174}},
    {"all/truncated/als/noisy",
     {0.059551456301574525, 0.038731439639505962, 0.058270581535268817, 0.10585982790449994},
     {0.027537238604697672, 0.13978726064719316, 0, 0.093402393327971026}},
    {"all/truncated/ccd/clean",
     {0.068166257563590293, 0.044588571988682858, 0.085240189280134854, 0.085881819581407018},
     {0.051176826841587253, 0.1564196721510559, 0.0038775194093436474, 0.075779274532513721}},
    {"all/truncated/ccd/noisy",
     {0.059551456301574525, 0.038731439639505962, 0.058270581535268817, 0.10585982790449994},
     {0.027532401435635241, 0.13976310893708382, -4.6259292692714852e-17, 0.093386279089742244}},
    {"all/truncated/sgd/clean",
     {0.068166257563590293, 0.044588571988682858, 0.085240189280134854, 0.085881819581407018},
     {-1.6197690604025519e-05, 9.784212414326891e-06, -0.00084928564538079793, 0.00019762171709944901}},
    {"all/truncated/sgd/noisy",
     {0.059551456301574525, 0.038731439639505962, 0.058270581535268817, 0.10585982790449994},
     {-1.758007073019001e-05, 6.826176761360464e-06, -0.00082082136740611183, 0.00019433139154321233}},
    {"random/uniform/als/clean",
     {0.089599069606077178, 0.12774749191714457, 0.030378924119876489, 0.03892646858829564},
     {0.036419063477671321, 0.15170073355655478, 0.0095646453761266854, 0.034398356621462206}},
    {"random/uniform/als/noisy",
     {0.073614228617091382, 0.1213908770956648, 0.012299043704114054, 0.06208877981356508},
     {0.016492849507906752, 0.14118789077520438, -0.010348724939518789, 0.06505084272734668}},
    {"random/uniform/ccd/clean",
     {0.089599069606077178, 0.12774749191714457, 0.030378924119876489, 0.03892646858829564},
     {0.030773540630801611, 0.15194648887305184, 0.0095898952973149602, 0.041336169131261438}},
    {"random/uniform/ccd/noisy",
     {0.073614228617091382, 0.1213908770956648, 0.012299043704114054, 0.06208877981356508},
     {0.013077648113995375, 0.1412668373553147, -0.010285509614014518, 0.066228898464480823}},
    {"random/uniform/sgd/clean",
     {0.089599069606077178, 0.12774749191714457, 0.030378924119876489, 0.03892646858829564},
     {-0.00010327354344895088, 3.2442324806016771e-05, -0.0011081073900098045, 0.00025148255489856029}},
    {"random/uniform/sgd/noisy",
     {0.073614228617091382, 0.1213908770956648, 0.012299043704114054, 0.06208877981356508},
     {-9.9639539295304675e-05, 2.969424991994689e-05, -0.0010683295541022084, 0.00024515291881361742}},
    {"random/antithetic/als/clean",
     {0.055804988322688487, 0.11038899595972124, 0.054010772858310144, 0.066447197090674009},
     {0.039303023683410321, 0.10081912177699505, 0.067990071261408658, 0.004186018387579574}},
    {"random/antithetic/als/noisy",
     {0.044965559190199546, 0.10309463638620821, 0.030224206447488244, 0.091108527206539336},
     {0.029081750039461216, 0.098621284194616937, 0.036493769433779868, 0.034326684635479762}},
    {"random/antithetic/ccd/clean",
     {0.055804988322688487, 0.11038899595972124, 0.054010772858310144, 0.066447197090674009},
     {0.04478867877826135, 0.10122303409509065, 0.091707104558612307, 0.017467720236004743}},
    {"random/antithetic/ccd/noisy",
     {0.044965559190199546, 0.10309463638620821, 0.030224206447488244, 0.091108527206539336},
     {0.034256517712139854, 0.099530106078117436, 0.049385081493002282, 0.046229443415974077}},
    {"random/antithetic/sgd/clean",
     {0.055804988322688487, 0.11038899595972124, 0.054010772858310144, 0.066447197090674009},
     {-0.00062624702120853658, -0.0002307841432557281, -0.00013311862557188988, -0.00017802921726727507}},
    {"random/antithetic/sgd/noisy",
     {0.044965559190199546, 0.10309463638620821, 0.030224206447488244, 0.091108527206539336},
     {-0.00056995983775555404, -0.00021602755550942084, -0.00012131009669295928, -0.00016078967208873806}},
    {"random/stratified/als/clean",
     {0.078092320022123574, 0.1342692899253132, 0.029905444602504362, 0.04438489968145274},
     {0.092691770784478503, 0.10042039232078399, 0.03845756921398491, -0.02004476745110343}},
    {"random/stratified/als/noisy",
     {0.065710857397962452, 0.12299976487422165, 0.01107709469908626, 0.069605212259164967},
     {0.079378733692518452, 0.099825562918965827, 0.0096768416810086196, 0.019812810697606716}},
    {"random/stratified/ccd/clean",
     {0.078092320022123574, 0.1342692899253132, 0.029905444602504362, 0.04438489968145274},
     {0.083348653540548656, 0.10080789440295131, 0.048697312740250888, 0.0075826131392356987}},
    {"random/stratified/ccd/noisy",
     {0.065710857397962452, 0.12299976487422165, 0.01107709469908626, 0.069605212259164967},
     {0.076142644333117418, 0.10039416447514117, 0.013608291672074019, 0.033441469428619294}},
    {"random/stratified/sgd/clean",
     {0.078092320022123574, 0.1342692899253132, 0.029905444602504362, 0.04438489968145274},
     {-0.00071241677725224391, 5.0521869366403072e-05, -9.5055329173344131e-05, -0.00034821653949784396}},
    {"random/stratified/sgd/noisy",
     {0.065710857397962452, 0.12299976487422165, 0.01107709469908626, 0.069605212259164967},
     {-0.00062824375807954641, 2.1964254213577945e-05, -0.0001194511139258142, -0.00030747882139212811}},
    {"random/truncated/als/clean",
     {0.08940215915680523, 0.1243979993243465, 0.024888435999251002, 0.051988052119776841},
     {0.035731372556604774, 0.15419749144953787, 0.0026713439062333076, 0.038803870996205525}},
    {"random/truncated/als/noisy",
     {0.07510439909146005, 0.11501478993887018, 0.017743243912475316, 0.060364981001387666},
     {0.012483755902614774, 0.13934278404304651, 0, 0.061183143067984641}},
    {"random/truncated/ccd/clean",
     {0.08940215915680523, 0.1243979993243465, 0.024888435999251002, 0.051988052119776841},
     {0.030507957202814469, 0.15448912032909115, 0.0026587955423039754, 0.046163383660313251}},
    {"random/truncated/ccd/noisy",
     {0.07510439909146005, 0.11501478993887018, 0.017743243912475316, 0.060364981001387666},
     {0.0095682906711771851, 0.13943526174562934, -3.4503427634067586e-05, 0.061210442365627282}},
    {"random/truncated/sgd/clean",
     {0.08940215915680523, 0.1243979993243465, 0.024888435999251002, 0.051988052119776841},
     {-0.00010397452749494215, 3.2765459631920261e-05, -0.0011143216045789244, 0.00025248536716719703}},
    {"random/truncated/sgd/noisy",
     {0.07510439909146005, 0.11501478993887018, 0.017743243912475316, 0.060364981001387666},
     {-9.8283560917313865e-05, 2.9422713786118133e-05, -0.0010582704062503515, 0.00024286717930012934}},
    {"bernoulli/uniform/als/clean",
     {0.12315008951812606, 0.0442902001362947, 0.075685452432870309, 0.045220278413524731},
     {0.051703633705813302, 0.11732285536823797, 0.0086176324253400497, 0.031459737101765195}},
    {"bernoulli/uniform/als/noisy",
     {0.1057264458096063, 0.044836902890636354, 0.037720208138437419, 0.074122042187331261},
     {0.03669138437549721, 0.10892932553205151, -0.0092740985980661224, 0.053982108199505496}},
    {"bernoulli/uniform/ccd/clean",
     {0.12315008951812606, 0.0442902001362947, 0.075685452432870309, 0.045220278413524731},
     {0.044221095114166942, 0.11800340954876276, 0.0092285241866108848, 0.05247390664367161}},
    {"bernoulli/uniform/ccd/noisy",
     {0.1057264458096063, 0.044836902890636354, 0.037720208138437419, 0.074122042187331261},
     {0.030336735274126662, 0.11128974777879333, -0.010038366217250886, 0.074425369853956758}},
    {"bernoulli/uniform/sgd/clean",
     {0.12315008951812606, 0.0442902001362947, 0.075685452432870309, 0.045220278413524731},
     {-3.8967958525217594e-05, 3.2143949816248825e-05, -0.0011342917727655325, 0.00019229512895164378}},
    {"bernoulli/uniform/sgd/noisy",
     {0.1057264458096063, 0.044836902890636354, 0.037720208138437419, 0.074122042187331261},
     {-3.7840455839474088e-05, 2.9482669030690114e-05, -0.0010961389389848907, 0.00018864288345011334}},
    {"bernoulli/antithetic/als/clean",
     {0.069421719527674175, 0.074341489448059739, 0.090629039640819378, 0.053953771884262515},
     {0.038885793171043084, 0.092245322127417498, 0.10173450511587712, 0.010615714495634924}},
    {"bernoulli/antithetic/als/noisy",
     {0.05837588912193379, 0.074051895890358446, 0.04722097093847899, 0.082756843075240116},
     {0.026537656133690871, 0.0956505185673239, 0.052877628679818912, 0.043488244135293896}},
    {"bernoulli/antithetic/ccd/clean",
     {0.069421719527674175, 0.074341489448059739, 0.090629039640819378, 0.053953771884262515},
     {0.043560792828298368, 0.095547001082878474, 0.10303859336405241, 0.013836058004625049}},
    {"bernoulli/antithetic/ccd/noisy",
     {0.05837588912193379, 0.074051895890358446, 0.04722097093847899, 0.082756843075240116},
     {0.030917992207486485, 0.098094095575565143, 0.053484083849705266, 0.045581387830394574}},
    {"bernoulli/antithetic/sgd/clean",
     {0.069421719527674175, 0.074341489448059739, 0.090629039640819378, 0.053953771884262515},
     {-0.00058246125796986199, -0.0002050197105328577, -0.00012463176674933947, -0.00022051535943705798}},
    {"bernoulli/antithetic/sgd/noisy",
     {0.05837588912193379, 0.074051895890358446, 0.04722097093847899, 0.082756843075240116},
     {-0.00052323268166335737, -0.0001902180249276625, -0.00011063286978779978, -0.00019613684469575867}},
    {"bernoulli/stratified/als/clean",
     {0.091709051227109262, 0.098221783413651703, 0.06652371138501359, 0.031891474475041239},
     {0.092880203340233281, 0.083565443909777784, 0.066268382550787763, -0.0040905469829873031}},
    {"bernoulli/stratified/als/noisy",
     {0.079121187329696696, 0.093957024378371889, 0.028073859190077006, 0.061253528127865754},
     {0.07143200262264407, 0.088169249502666927, 0.018922867594280184, 0.033170904801013701}},
    {"bernoulli/stratified/ccd/clean",
     {0.091709051227109262, 0.098221783413651703, 0.06652371138501359, 0.031891474475041239},
     {0.093064401379985146, 0.089054526127768791, 0.066177278192121575, 0.0036723298971386709}},
    {"bernoulli/stratified/ccd/noisy",
     {0.079121187329696696, 0.093957024378371889, 0.028073859190077006, 0.061253528127865754},
     {0.082011035892100126, 0.095170012082995026, 0.022310471994450388, 0.03709891399583877}},
    {"bernoulli/stratified/sgd/clean",
     {0.091709051227109262, 0.098221783413651703, 0.06652371138501359, 0.031891474475041239},
     {-0.00065985162355705488, 6.7840504572024815e-05, -6.3731427120198588e-05, -0.0004222238235388936}},
    {"bernoulli/stratified/sgd/noisy",
     {0.079121187329696696, 0.093957024378371889, 0.028073859190077006, 0.061253528127865754},
     {-0.00057962538903513251, 3.2434657834943387e-05, -9.5117598992450845e-05, -0.00036541865678195375}},
    {"bernoulli/truncated/als/clean",
     {0.1231501057776101, 0.039241366105785803, 0.070194964312244826, 0.054939800638704253},
     {0.020782118473741413, 0.13916534351648902, 0.0026017359379495405, 0.062825119051256387}},
    {"bernoulli/truncated/als/noisy",
     {0.10699600379670098, 0.03688823237827317, 0.045923220126467726, 0.072990523963700496},
     {0.0025623807830961647, 0.13144576218749521, 0, 0.075417165972846978}},
    {"bernoulli/truncated/ccd/clean",
     {0.1231501057776101, 0.039241366105785803, 0.070194964312244826, 0.054939800638704253},
     {0.043597346726952847, 0.12047603145521091, 0.0025833714530361187, 0.057126751439017479}},
    {"bernoulli/truncated/ccd/noisy",
     {0.10699600379670098, 0.03688823237827317, 0.045923220126467726, 0.072990523963700496},
     {0.0040388711904488315, 0.13301061364179959, -1.5927208538305905e-05, 0.067408483990182899}},
    {"bernoulli/truncated/sgd/clean",
     {0.1231501057776101, 0.039241366105785803, 0.070194964312244826, 0.054939800638704253},
     {-3.9432914536774596e-05, 3.246873287198333e-05, -0.001140736741169616, 0.00019305504220017291}},
    {"bernoulli/truncated/sgd/noisy",
     {0.10699600379670098, 0.03688823237827317, 0.045923220126467726, 0.072990523963700496},
     {-3.7013638593033792e-05, 2.9208784573805902e-05, -0.0010856119435893694, 0.00018685875636428019}},
    // COMFEDSV_GOLDEN_TABLE_END
};

// Adversarial golden cells: the honest base cell (all/uniform/als/clean)
// re-run with one attacking client (client 1) per attack kind. Checked
// in separately from the honest matrix so the attack layer cannot
// silently move detection-facing numbers either. Same tolerance policy
// as above: FedSV exact (all three attacks are libm-free — see
// RunScenario), ComFedSV to 1e-9 relative.
constexpr const char* kAdversarialAttacks[] = {"free_rider", "grad_scaler",
                                               "label_flip"};

struct AdversarialGoldenRow {
  const char* attack;
  double fedsv[kNumClients];
  double comfedsv[kNumClients];
};

constexpr AdversarialGoldenRow kAdversarialGolden[] = {
    // COMFEDSV_ADVERSARIAL_GOLDEN_TABLE_BEGIN
    {"free_rider",
     {0.10930272802749627, -0.085123119917020276, 0.1141167664714698, 0.098868560558722354},
     {0.14366478518947157, -0.041332792992165607, 0.033709354209335879, 0.10102639545693437}},
    {"grad_scaler",
     {0.10694785035575861, 0.20728475382724737, 0.040945766733776937, 0.028952723822437961},
     {0.22094433860921259, 0.14272966377526744, -0.016794017499468353, 0.03691330842605596}},
    {"label_flip",
     {0.077189258662472074, 0.030833143588298081, 0.094067200737007806, 0.074882418999899919},
     {0.069789058096651951, 0.12438709461920934, 0.013498136921511444, 0.069169317971802036}},
    // COMFEDSV_ADVERSARIAL_GOLDEN_TABLE_END
};

TEST(ScenarioGoldenTest, AdversarialCellsMatchCheckedInGoldens) {
  const Scenario base{"all", "uniform", "als", "clean"};

  if (std::getenv("COMFEDSV_GOLDEN_REGEN") != nullptr) {
    for (const char* attack : kAdversarialAttacks) {
      const ScenarioResult r = RunScenario(base, attack);
      std::printf("    {\"%s\",\n     {", attack);
      for (int i = 0; i < kNumClients; ++i) {
        std::printf("%s%.17g", i ? ", " : "", r.fedsv[i]);
      }
      std::printf("},\n     {");
      for (int i = 0; i < kNumClients; ++i) {
        std::printf("%s%.17g", i ? ", " : "", r.comfedsv[i]);
      }
      std::printf("}},\n");
    }
    GTEST_SKIP() << "golden regeneration run (adversarial table above)";
  }

  ASSERT_EQ(std::size(kAdversarialGolden), std::size(kAdversarialAttacks));
  for (size_t idx = 0; idx < std::size(kAdversarialAttacks); ++idx) {
    const char* attack = kAdversarialAttacks[idx];
    SCOPED_TRACE(attack);
    const AdversarialGoldenRow& golden = kAdversarialGolden[idx];
    ASSERT_EQ(std::string(attack), golden.attack)
        << "adversarial golden table order out of sync — regenerate";
    const ScenarioResult r = RunScenario(base, attack);
    for (int i = 0; i < kNumClients; ++i) {
      EXPECT_EQ(r.fedsv[i], golden.fedsv[i]) << "FedSV client " << i;
      const double tol =
          1e-9 * std::max(1.0, std::abs(golden.comfedsv[i]));
      EXPECT_NEAR(r.comfedsv[i], golden.comfedsv[i], tol)
          << "ComFedSV client " << i;
    }
  }
}

TEST(ScenarioGoldenTest, AdversarialCellsDivergeFromHonestBaseline) {
  // Sanity on the attack axis itself: each adversarial cell must move
  // the FedSV vector away from the honest base cell, i.e. every attack
  // is actually wired through the trainer.
  const Scenario base{"all", "uniform", "als", "clean"};
  const ScenarioResult honest = RunScenario(base);
  for (const char* attack : kAdversarialAttacks) {
    SCOPED_TRACE(attack);
    const ScenarioResult attacked = RunScenario(base, attack);
    bool any_difference = false;
    for (int i = 0; i < kNumClients; ++i) {
      if (honest.fedsv[i] != attacked.fedsv[i]) any_difference = true;
    }
    EXPECT_TRUE(any_difference)
        << "attack does not change the valuation at all";
  }
}

TEST(ScenarioGoldenTest, MatrixMatchesCheckedInGoldens) {
  const std::vector<Scenario> scenarios = AllScenarios();

  if (std::getenv("COMFEDSV_GOLDEN_REGEN") != nullptr) {
    for (const Scenario& s : scenarios) {
      const ScenarioResult r = RunScenario(s);
      std::printf("    {\"%s\",\n     {", ScenarioKey(s).c_str());
      for (int i = 0; i < kNumClients; ++i) {
        std::printf("%s%.17g", i ? ", " : "", r.fedsv[i]);
      }
      std::printf("},\n     {");
      for (int i = 0; i < kNumClients; ++i) {
        std::printf("%s%.17g", i ? ", " : "", r.comfedsv[i]);
      }
      std::printf("}},\n");
    }
    GTEST_SKIP() << "golden regeneration run (table printed above)";
  }

  ASSERT_EQ(std::size(kGolden), scenarios.size())
      << "golden table out of sync with the scenario axes — regenerate";

  for (size_t idx = 0; idx < scenarios.size(); ++idx) {
    const Scenario& s = scenarios[idx];
    SCOPED_TRACE(ScenarioKey(s));
    const GoldenRow& golden = kGolden[idx];
    ASSERT_EQ(ScenarioKey(s), golden.key)
        << "golden table order out of sync — regenerate";
    const ScenarioResult r = RunScenario(s);
    for (int i = 0; i < kNumClients; ++i) {
      // Exact: the FedSV path is libm-free (see file header).
      EXPECT_EQ(r.fedsv[i], golden.fedsv[i]) << "FedSV client " << i;
      // Documented tolerance: completion init draws via libm.
      const double tol =
          1e-9 * std::max(1.0, std::abs(golden.comfedsv[i]));
      EXPECT_NEAR(r.comfedsv[i], golden.comfedsv[i], tol)
          << "ComFedSV client " << i;
    }
  }
}

TEST(ScenarioGoldenTest, NoisyLabelClientLosesValue) {
  // Sanity on the noise axis itself (independent of the goldens): with
  // labels flipped on client 0, the clean-vs-noisy scenarios must
  // disagree, i.e. the axis is actually exercised.
  const ScenarioResult clean =
      RunScenario({"all", "uniform", "als", "clean"});
  const ScenarioResult noisy =
      RunScenario({"all", "uniform", "als", "noisy"});
  bool any_difference = false;
  for (int i = 0; i < kNumClients; ++i) {
    if (clean.fedsv[i] != noisy.fedsv[i]) any_difference = true;
  }
  EXPECT_TRUE(any_difference)
      << "noisy-label scenarios do not differ from clean ones";
}

}  // namespace
}  // namespace comfedsv
