// Serialization-layer robustness: round-trip property tests over
// randomized shapes/contents for every domain type, plus the malformed-
// input contract — truncated files, bad magic, wrong version, corrupted
// bytes, and semantically invalid fields must all return an error Status
// (never crash, never silently load garbage).
#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <limits>
#include <string>
#include <vector>

#include "core/checkpointing.h"
#include "io/checkpoint.h"
#include "io/serialize.h"

namespace comfedsv {
namespace {

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "comfedsv_io_test_" + name;
}

Matrix RandomMatrix(size_t rows, size_t cols, Rng* rng) {
  Matrix m(rows, cols);
  for (size_t i = 0; i < rows * cols; ++i) {
    m.data()[i] = rng->NextDouble(-100.0, 100.0);
  }
  return m;
}

Vector RandomVector(size_t n, Rng* rng) {
  Vector v(n);
  for (size_t i = 0; i < n; ++i) v[i] = rng->NextGaussian();
  return v;
}

TEST(BinaryFormatTest, PrimitivesAreLittleEndianOnDisk) {
  BinaryWriter w;
  w.U32(0x11223344u);
  w.U64(0x0102030405060708ULL);
  const std::string& b = w.buffer();
  ASSERT_EQ(b.size(), 12u);
  // Least significant byte first, regardless of host endianness.
  EXPECT_EQ(static_cast<uint8_t>(b[0]), 0x44);
  EXPECT_EQ(static_cast<uint8_t>(b[3]), 0x11);
  EXPECT_EQ(static_cast<uint8_t>(b[4]), 0x08);
  EXPECT_EQ(static_cast<uint8_t>(b[11]), 0x01);
}

TEST(BinaryFormatTest, PrimitiveRoundTripIncludingSpecialDoubles) {
  BinaryWriter w;
  w.U8(0xAB);
  w.I32(-123456);
  w.I64(-9876543210LL);
  w.F64(0.1);
  w.F64(-0.0);
  w.F64(std::numeric_limits<double>::infinity());
  w.F64(std::numeric_limits<double>::denorm_min());

  BinaryReader r(w.buffer());
  uint8_t u8 = 0;
  int32_t i32 = 0;
  int64_t i64 = 0;
  double d = 0.0;
  ASSERT_TRUE(r.U8(&u8).ok());
  EXPECT_EQ(u8, 0xAB);
  ASSERT_TRUE(r.I32(&i32).ok());
  EXPECT_EQ(i32, -123456);
  ASSERT_TRUE(r.I64(&i64).ok());
  EXPECT_EQ(i64, -9876543210LL);
  ASSERT_TRUE(r.F64(&d).ok());
  EXPECT_EQ(d, 0.1);
  ASSERT_TRUE(r.F64(&d).ok());
  EXPECT_EQ(d, -0.0);
  EXPECT_TRUE(std::signbit(d));
  ASSERT_TRUE(r.F64(&d).ok());
  EXPECT_EQ(d, std::numeric_limits<double>::infinity());
  ASSERT_TRUE(r.F64(&d).ok());
  EXPECT_EQ(d, std::numeric_limits<double>::denorm_min());
  EXPECT_EQ(r.remaining(), 0u);
}

TEST(BinaryFormatTest, TruncatedPrimitiveReadsReturnStatus) {
  BinaryWriter w;
  w.U32(7);
  for (size_t keep = 0; keep < 4; ++keep) {
    BinaryReader r(std::string_view(w.buffer()).substr(0, keep));
    uint32_t v = 0;
    EXPECT_EQ(r.U32(&v).code(), StatusCode::kOutOfRange) << keep;
  }
}

TEST(BinaryFormatTest, ChunkLengthBeyondBufferIsRejected) {
  BinaryWriter w;
  w.U32(static_cast<uint32_t>(ChunkTag::kVector));
  w.U64(1000);  // claims 1000 payload bytes; none follow
  BinaryReader r(w.buffer());
  size_t end = 0;
  EXPECT_EQ(r.BeginChunk(ChunkTag::kVector, &end).code(),
            StatusCode::kOutOfRange);
}

TEST(BinaryFormatTest, CorruptElementCountIsRejectedBeforeAllocation) {
  BinaryWriter w;
  w.U64(uint64_t{1} << 60);  // absurd count, nothing behind it
  BinaryReader r(w.buffer());
  uint64_t count = 0;
  EXPECT_EQ(r.Count(8, &count).code(), StatusCode::kOutOfRange);
}

TEST(RoundTripTest, VectorAndMatrixRandomizedShapes) {
  Rng rng(11);
  for (int trial = 0; trial < 20; ++trial) {
    const size_t n = rng.NextUint64(50);
    Vector v = RandomVector(n, &rng);
    BinaryWriter w;
    SaveVector(v, &w);
    BinaryReader r(w.buffer());
    Vector loaded;
    ASSERT_TRUE(LoadVector(&r, &loaded).ok());
    EXPECT_TRUE(v == loaded);

    const size_t rows = rng.NextUint64(12), cols = rng.NextUint64(12);
    Matrix m = RandomMatrix(rows, cols, &rng);
    BinaryWriter mw;
    SaveMatrix(m, &mw);
    BinaryReader mr(mw.buffer());
    Matrix mloaded;
    ASSERT_TRUE(LoadMatrix(&mr, &mloaded).ok());
    EXPECT_TRUE(m == mloaded);
  }
}

TEST(RoundTripTest, DatasetPreservesEverything) {
  Rng rng(22);
  for (int trial = 0; trial < 10; ++trial) {
    const size_t samples = 1 + rng.NextUint64(30);
    const size_t dim = 1 + rng.NextUint64(8);
    const int classes = 1 + static_cast<int>(rng.NextUint64(5));
    Matrix feats = RandomMatrix(samples, dim, &rng);
    std::vector<int> labels(samples);
    for (size_t i = 0; i < samples; ++i) {
      labels[i] = static_cast<int>(rng.NextUint64(classes));
    }
    Dataset d(std::move(feats), std::move(labels), classes);

    BinaryWriter w;
    SaveDataset(d, &w);
    BinaryReader r(w.buffer());
    Dataset loaded;
    ASSERT_TRUE(LoadDataset(&r, &loaded).ok());
    EXPECT_TRUE(loaded.features() == d.features());
    EXPECT_EQ(loaded.labels(), d.labels());
    EXPECT_EQ(loaded.num_classes(), d.num_classes());
  }
  // The default (empty, zero-class) dataset round-trips too.
  BinaryWriter w;
  SaveDataset(Dataset(), &w);
  BinaryReader r(w.buffer());
  Dataset loaded;
  ASSERT_TRUE(LoadDataset(&r, &loaded).ok());
  EXPECT_TRUE(loaded.empty());
  EXPECT_EQ(loaded.num_classes(), 0);
}

TEST(RoundTripTest, RngStateResumesTheSequenceBitForBit) {
  Rng rng(33);
  for (int i = 0; i < 17; ++i) rng.NextUint64();
  rng.NextGaussian();  // leaves a cached Box–Muller value behind

  BinaryWriter w;
  SaveRngState(rng.SaveState(), &w);
  BinaryReader r(w.buffer());
  RngState state;
  ASSERT_TRUE(LoadRngState(&r, &state).ok());
  Rng resumed = Rng::FromState(state);
  for (int i = 0; i < 50; ++i) {
    EXPECT_EQ(rng.NextUint64(), resumed.NextUint64());
  }
  EXPECT_EQ(rng.NextGaussian(), resumed.NextGaussian());
}

TEST(RoundTripTest, RoundRecordAndTrainingResult) {
  Rng rng(44);
  RoundRecord record;
  record.round = 7;
  record.test_loss_before = 1.25;
  record.global_before = RandomVector(9, &rng);
  for (int i = 0; i < 5; ++i) {
    record.local_models.push_back(RandomVector(9, &rng));
  }
  record.selected = {0, 2, 4};
  record.rejected = {2};
  record.dropped = {1, 3};

  BinaryWriter w;
  SaveRoundRecord(record, &w);
  BinaryReader r(w.buffer());
  RoundRecord loaded;
  ASSERT_TRUE(LoadRoundRecord(&r, &loaded).ok());
  EXPECT_EQ(loaded.round, record.round);
  EXPECT_EQ(loaded.test_loss_before, record.test_loss_before);
  EXPECT_TRUE(loaded.global_before == record.global_before);
  ASSERT_EQ(loaded.local_models.size(), record.local_models.size());
  for (size_t i = 0; i < record.local_models.size(); ++i) {
    EXPECT_TRUE(loaded.local_models[i] == record.local_models[i]);
  }
  EXPECT_EQ(loaded.selected, record.selected);
  EXPECT_EQ(loaded.rejected, record.rejected);
  EXPECT_EQ(loaded.dropped, record.dropped);

  TrainingResult result;
  result.final_params = RandomVector(9, &rng);
  result.test_loss_history = {0.9, 0.5, 0.3};
  result.final_test_accuracy = 0.75;
  result.rounds_run = 2;
  result.quarantine.rejected = {0, 3, 0};
  result.quarantine.clipped = {1, 0, 0};
  result.quarantine.quarantine_drops = {0, 2, 0};
  result.quarantine.rounds_degraded = 4;
  result.quarantine.rounds_fully_rejected = 1;
  BinaryWriter tw;
  SaveTrainingResult(result, &tw);
  BinaryReader tr(tw.buffer());
  TrainingResult tloaded;
  ASSERT_TRUE(LoadTrainingResult(&tr, &tloaded).ok());
  EXPECT_TRUE(tloaded.final_params == result.final_params);
  EXPECT_EQ(tloaded.test_loss_history, result.test_loss_history);
  EXPECT_EQ(tloaded.final_test_accuracy, result.final_test_accuracy);
  EXPECT_EQ(tloaded.rounds_run, result.rounds_run);
  EXPECT_EQ(tloaded.quarantine.rejected, result.quarantine.rejected);
  EXPECT_EQ(tloaded.quarantine.clipped, result.quarantine.clipped);
  EXPECT_EQ(tloaded.quarantine.quarantine_drops,
            result.quarantine.quarantine_drops);
  EXPECT_EQ(tloaded.quarantine.rounds_degraded,
            result.quarantine.rounds_degraded);
  EXPECT_EQ(tloaded.quarantine.rounds_fully_rejected,
            result.quarantine.rounds_fully_rejected);
}

TEST(RoundTripTest, TrainerStateCarriesQuarantineCounters) {
  Rng rng(45);
  FedAvgTrainerState state;
  state.config_fingerprint = 0xDEADBEEFu;
  state.next_round = 3;
  state.params = RandomVector(6, &rng);
  state.test_loss_history = {1.0, 0.8, 0.6};
  state.select_rng = Rng(99).SaveState();
  state.quarantine.rejected = {2, 0};
  state.quarantine.clipped = {0, 1};
  state.quarantine.quarantine_drops = {1, 0};
  state.quarantine.rounds_degraded = 3;
  state.quarantine.rounds_fully_rejected = 0;

  BinaryWriter w;
  SaveTrainerState(state, &w);
  BinaryReader r(w.buffer());
  FedAvgTrainerState loaded;
  ASSERT_TRUE(LoadTrainerState(&r, &loaded).ok());
  EXPECT_EQ(loaded.quarantine.rejected, state.quarantine.rejected);
  EXPECT_EQ(loaded.quarantine.clipped, state.quarantine.clipped);
  EXPECT_EQ(loaded.quarantine.quarantine_drops,
            state.quarantine.quarantine_drops);
  EXPECT_EQ(loaded.quarantine.rounds_degraded,
            state.quarantine.rounds_degraded);
  EXPECT_EQ(loaded.quarantine.rounds_fully_rejected,
            state.quarantine.rounds_fully_rejected);
}

TEST(MalformedFieldTest, RoundRecordGuardSetInvariantsEnforced) {
  Rng rng(46);
  RoundRecord record;
  record.round = 1;
  record.global_before = RandomVector(4, &rng);
  for (int i = 0; i < 4; ++i) {
    record.local_models.push_back(RandomVector(4, &rng));
  }
  record.selected = {0, 2};

  // rejected must be a subset of selected.
  record.rejected = {1};
  record.dropped = {};
  BinaryWriter w1;
  SaveRoundRecord(record, &w1);
  BinaryReader r1(w1.buffer());
  RoundRecord loaded;
  EXPECT_FALSE(LoadRoundRecord(&r1, &loaded).ok());

  // dropped must be disjoint from selected.
  record.rejected = {};
  record.dropped = {2};
  BinaryWriter w2;
  SaveRoundRecord(record, &w2);
  BinaryReader r2(w2.buffer());
  EXPECT_FALSE(LoadRoundRecord(&r2, &loaded).ok());

  // A well-formed degraded record loads.
  record.rejected = {0};
  record.dropped = {1};
  BinaryWriter w3;
  SaveRoundRecord(record, &w3);
  BinaryReader r3(w3.buffer());
  EXPECT_TRUE(LoadRoundRecord(&r3, &loaded).ok());
}

TEST(MalformedFieldTest, QuarantineCountersValidated) {
  Rng rng(47);
  FedAvgTrainerState state;
  state.next_round = 1;
  state.params = RandomVector(3, &rng);
  state.test_loss_history = {1.0};
  state.select_rng = Rng(7).SaveState();
  state.quarantine.rejected = {0, 0};
  state.quarantine.clipped = {0, 0};
  state.quarantine.quarantine_drops = {0, 0};

  // Negative counters are rejected.
  state.quarantine.rejected[0] = -1;
  BinaryWriter w1;
  SaveTrainerState(state, &w1);
  BinaryReader r1(w1.buffer());
  FedAvgTrainerState loaded;
  EXPECT_FALSE(LoadTrainerState(&r1, &loaded).ok());
  state.quarantine.rejected[0] = 0;

  // Per-client counter vectors must agree in length.
  state.quarantine.clipped = {0};
  BinaryWriter w2;
  SaveTrainerState(state, &w2);
  BinaryReader r2(w2.buffer());
  EXPECT_FALSE(LoadTrainerState(&r2, &loaded).ok());
  state.quarantine.clipped = {0, 0};

  // Fully-rejected rounds cannot exceed degraded rounds.
  state.quarantine.rounds_degraded = 1;
  state.quarantine.rounds_fully_rejected = 2;
  BinaryWriter w3;
  SaveTrainerState(state, &w3);
  BinaryReader r3(w3.buffer());
  EXPECT_FALSE(LoadTrainerState(&r3, &loaded).ok());
}

TEST(RoundTripTest, InternerKeepsColumnIdsAndRejectsDuplicates) {
  Rng rng(55);
  CoalitionInterner interner;
  const int universe = 9;
  interner.Intern(Coalition(universe));
  for (int i = 0; i < 40; ++i) {
    Coalition c(universe);
    for (int k = 0; k < universe; ++k) {
      if (rng.NextBernoulli(0.4)) c.Add(k);
    }
    interner.Intern(c);  // duplicates dedupe, order stays
  }

  BinaryWriter w;
  SaveInterner(interner, &w);
  BinaryReader r(w.buffer());
  CoalitionInterner loaded;
  ASSERT_TRUE(LoadInterner(&r, &loaded).ok());
  ASSERT_EQ(loaded.size(), interner.size());
  for (int col = 0; col < interner.size(); ++col) {
    EXPECT_TRUE(loaded.Get(col) == interner.Get(col)) << col;
    EXPECT_EQ(loaded.Find(interner.Get(col)), col);
  }

  // A hand-crafted interner chunk with the same coalition twice cannot
  // produce dense ids — the loader must reject it.
  BinaryWriter dup;
  const size_t handle = dup.BeginChunk(ChunkTag::kCoalitionInterner);
  dup.I32(3);   // universe
  dup.U64(2);   // two columns...
  dup.U64(1);   // ...both the coalition {1}
  dup.I32(1);
  dup.U64(1);
  dup.I32(1);
  dup.EndChunk(handle);
  BinaryReader dr(dup.buffer());
  CoalitionInterner rejected;
  EXPECT_EQ(LoadInterner(&dr, &rejected).code(),
            StatusCode::kDataLoss);
}

TEST(RoundTripTest, ObservationSetBothLifecyclePhases) {
  Rng rng(66);
  for (bool finalize : {false, true}) {
    ObservationSet obs(6, 11);
    for (int i = 0; i < 40; ++i) {
      obs.Add(static_cast<int>(rng.NextUint64(6)),
              static_cast<int>(rng.NextUint64(11)),
              rng.NextDouble(-5.0, 5.0));
    }
    if (finalize) obs.Finalize();

    BinaryWriter w;
    SaveObservationSet(obs, &w);
    BinaryReader r(w.buffer());
    ObservationSet loaded(1, 1);
    ASSERT_TRUE(LoadObservationSet(&r, &loaded).ok());
    EXPECT_EQ(loaded.num_rows(), obs.num_rows());
    EXPECT_EQ(loaded.num_cols(), obs.num_cols());
    EXPECT_EQ(loaded.finalized(), obs.finalized());
    ASSERT_EQ(loaded.size(), obs.size());
    for (size_t e = 0; e < obs.size(); ++e) {
      EXPECT_EQ(loaded.entries()[e].row, obs.entries()[e].row);
      EXPECT_EQ(loaded.entries()[e].col, obs.entries()[e].col);
      EXPECT_EQ(loaded.entries()[e].value, obs.entries()[e].value);
    }
    if (finalize) {
      // The rebuilt compressed views must match the original's.
      EXPECT_EQ(loaded.row_offsets(), obs.row_offsets());
      EXPECT_EQ(loaded.csr_cols(), obs.csr_cols());
      EXPECT_EQ(loaded.csr_values(), obs.csr_values());
      EXPECT_EQ(loaded.col_offsets(), obs.col_offsets());
      EXPECT_EQ(loaded.csc_rows(), obs.csc_rows());
      EXPECT_EQ(loaded.csc_to_csr(), obs.csc_to_csr());
    } else {
      // In-progress reloads in-progress: recording may continue.
      loaded.Add(0, 0, 1.5);
      EXPECT_EQ(loaded.size(), obs.size() + 1);
    }
  }
}

TEST(RoundTripTest, FactorPairRankMismatchIsRejected) {
  Rng rng(77);
  FactorPair f{RandomMatrix(5, 3, &rng), RandomMatrix(8, 3, &rng)};
  BinaryWriter w;
  SaveFactorPair(f, &w);
  BinaryReader r(w.buffer());
  FactorPair loaded;
  ASSERT_TRUE(LoadFactorPair(&r, &loaded).ok());
  EXPECT_TRUE(loaded.w == f.w);
  EXPECT_TRUE(loaded.h == f.h);

  FactorPair bad{RandomMatrix(5, 3, &rng), RandomMatrix(8, 2, &rng)};
  BinaryWriter bw;
  SaveFactorPair(bad, &bw);
  BinaryReader br(bw.buffer());
  EXPECT_EQ(LoadFactorPair(&br, &loaded).code(),
            StatusCode::kDataLoss);
}

TEST(MalformedFieldTest, DatasetLabelOutOfRangeReturnsStatus) {
  // Craft a dataset chunk whose label violates [0, num_classes): the
  // loader must catch it (the Dataset constructor would CHECK-abort).
  BinaryWriter w;
  const size_t handle = w.BeginChunk(ChunkTag::kDataset);
  w.I32(2);  // num_classes
  SaveMatrix(Matrix(1, 2), &w);
  w.U64(1);
  w.I32(5);  // label 5 out of range
  w.EndChunk(handle);
  BinaryReader r(w.buffer());
  Dataset loaded;
  EXPECT_EQ(LoadDataset(&r, &loaded).code(), StatusCode::kDataLoss);
}

TEST(MalformedFieldTest, ObservationOutOfBoundsReturnsStatus) {
  BinaryWriter w;
  const size_t handle = w.BeginChunk(ChunkTag::kObservationSet);
  w.I32(2);  // rows
  w.I32(2);  // cols
  w.U8(0);   // in progress
  w.U64(1);
  w.I32(0);
  w.I32(7);  // column 7 of 2
  w.F64(1.0);
  w.EndChunk(handle);
  BinaryReader r(w.buffer());
  ObservationSet loaded(1, 1);
  EXPECT_EQ(LoadObservationSet(&r, &loaded).code(),
            StatusCode::kDataLoss);
}

TEST(MalformedFieldTest, AllZeroRngStateReturnsStatus) {
  BinaryWriter w;
  const size_t handle = w.BeginChunk(ChunkTag::kRngState);
  for (int i = 0; i < 4; ++i) w.U64(0);  // xoshiro stuck-at-zero state
  w.U8(0);
  w.F64(0.0);
  w.EndChunk(handle);
  BinaryReader r(w.buffer());
  RngState state;
  EXPECT_EQ(LoadRngState(&r, &state).code(), StatusCode::kDataLoss);
}

TEST(MalformedFieldTest, WrongChunkTagReturnsStatus) {
  BinaryWriter w;
  SaveVector(Vector(3), &w);
  BinaryReader r(w.buffer());
  Matrix m;
  EXPECT_EQ(LoadMatrix(&r, &m).code(), StatusCode::kInvalidArgument);
}

class CheckpointFileTest : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = TempPath(
        ::testing::UnitTest::GetInstance()->current_test_info()->name());
    std::remove(path_.c_str());
  }
  void TearDown() override { std::remove(path_.c_str()); }

  // A representative payload: one serialized vector.
  std::string MakePayload() {
    BinaryWriter w;
    SaveVector(Vector({1.0, 2.0, 3.0}), &w);
    return w.buffer();
  }

  std::string ReadRawFile() {
    std::string bytes;
    FILE* f = fopen(path_.c_str(), "rb");
    EXPECT_NE(f, nullptr);
    char buf[4096];
    size_t n = 0;
    while ((n = fread(buf, 1, sizeof(buf), f)) > 0) bytes.append(buf, n);
    fclose(f);
    return bytes;
  }

  void WriteRawFile(const std::string& bytes) {
    FILE* f = fopen(path_.c_str(), "wb");
    ASSERT_NE(f, nullptr);
    fwrite(bytes.data(), 1, bytes.size(), f);
    fclose(f);
  }

  std::string path_;
};

TEST_F(CheckpointFileTest, RoundTrip) {
  const std::string payload = MakePayload();
  ASSERT_TRUE(
      WriteCheckpointFile(path_, ChunkTag::kVector, payload).ok());
  Result<std::string> loaded = ReadCheckpointFile(path_, ChunkTag::kVector);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded.value(), payload);
  // No stray temp file left behind.
  FILE* tmp = fopen((path_ + ".tmp").c_str(), "rb");
  EXPECT_EQ(tmp, nullptr);
}

TEST_F(CheckpointFileTest, MissingFileIsNotFound) {
  Result<std::string> loaded = ReadCheckpointFile(path_, ChunkTag::kVector);
  EXPECT_EQ(loaded.status().code(), StatusCode::kNotFound);
}

TEST_F(CheckpointFileTest, TruncationAtEveryLengthReturnsStatus) {
  ASSERT_TRUE(
      WriteCheckpointFile(path_, ChunkTag::kVector, MakePayload()).ok());
  const std::string full = ReadRawFile();
  for (size_t keep = 0; keep < full.size(); ++keep) {
    WriteRawFile(full.substr(0, keep));
    Result<std::string> loaded =
        ReadCheckpointFile(path_, ChunkTag::kVector);
    EXPECT_FALSE(loaded.ok()) << "accepted truncation to " << keep;
  }
}

TEST_F(CheckpointFileTest, EveryCorruptedByteReturnsStatus) {
  ASSERT_TRUE(
      WriteCheckpointFile(path_, ChunkTag::kVector, MakePayload()).ok());
  const std::string full = ReadRawFile();
  for (size_t pos = 0; pos < full.size(); ++pos) {
    std::string corrupted = full;
    corrupted[pos] = static_cast<char>(corrupted[pos] ^ 0x5A);
    WriteRawFile(corrupted);
    Result<std::string> loaded =
        ReadCheckpointFile(path_, ChunkTag::kVector);
    EXPECT_FALSE(loaded.ok()) << "accepted corrupt byte " << pos;
  }
}

TEST_F(CheckpointFileTest, BadMagicWrongVersionWrongTag) {
  ASSERT_TRUE(
      WriteCheckpointFile(path_, ChunkTag::kVector, MakePayload()).ok());
  const std::string full = ReadRawFile();

  std::string bad_magic = full;
  bad_magic[0] = 'X';
  WriteRawFile(bad_magic);
  EXPECT_EQ(ReadCheckpointFile(path_, ChunkTag::kVector).status().code(),
            StatusCode::kDataLoss);

  // A version change flips header bytes the checksum covers, so repair
  // the checksum to make the version check (not the checksum) decide.
  std::string bad_version = full;
  bad_version[4] = static_cast<char>(kCheckpointVersion + 1);
  {
    BinaryWriter fixed;
    fixed.U64(Fnv1a64(bad_version.substr(36),
                      Fnv1a64(std::string_view(bad_version).substr(0, 28))));
    bad_version.replace(28, 8, fixed.buffer());
  }
  WriteRawFile(bad_version);
  EXPECT_EQ(ReadCheckpointFile(path_, ChunkTag::kVector).status().code(),
            StatusCode::kFailedPrecondition);

  WriteRawFile(full);
  EXPECT_EQ(ReadCheckpointFile(path_, ChunkTag::kMatrix).status().code(),
            StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace comfedsv
