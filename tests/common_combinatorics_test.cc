#include "common/combinatorics.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "common/rng.h"

namespace comfedsv {
namespace {

TEST(CombinatoricsTest, LogFactorialSmallValues) {
  EXPECT_NEAR(LogFactorial(0), 0.0, 1e-12);
  EXPECT_NEAR(LogFactorial(1), 0.0, 1e-12);
  EXPECT_NEAR(LogFactorial(5), std::log(120.0), 1e-10);
  EXPECT_NEAR(LogFactorial(10), std::log(3628800.0), 1e-8);
}

TEST(CombinatoricsTest, BinomialKnownValues) {
  EXPECT_DOUBLE_EQ(Binomial(5, 0), 1.0);
  EXPECT_DOUBLE_EQ(Binomial(5, 2), 10.0);
  EXPECT_DOUBLE_EQ(Binomial(10, 5), 252.0);
  EXPECT_DOUBLE_EQ(Binomial(52, 5), 2598960.0);
}

TEST(CombinatoricsTest, BinomialOutOfRangeIsZero) {
  EXPECT_DOUBLE_EQ(Binomial(5, -1), 0.0);
  EXPECT_DOUBLE_EQ(Binomial(5, 6), 0.0);
}

TEST(CombinatoricsTest, BinomialSymmetry) {
  for (int n = 1; n <= 30; ++n) {
    for (int k = 0; k <= n; ++k) {
      EXPECT_DOUBLE_EQ(Binomial(n, k), Binomial(n, n - k))
          << "n=" << n << " k=" << k;
    }
  }
}

TEST(CombinatoricsTest, PascalRule) {
  for (int n = 2; n <= 25; ++n) {
    for (int k = 1; k < n; ++k) {
      EXPECT_NEAR(Binomial(n, k),
                  Binomial(n - 1, k - 1) + Binomial(n - 1, k), 1e-6)
          << "n=" << n << " k=" << k;
    }
  }
}

TEST(CombinatoricsTest, MultinomialMatchesBinomialForTwoParts) {
  EXPECT_NEAR(LogMultinomial(10, {4, 6}), LogBinomial(10, 4), 1e-10);
}

TEST(CombinatoricsTest, MultinomialKnownValue) {
  // 6! / (1! 2! 3!) = 60.
  EXPECT_NEAR(std::exp(LogMultinomial(6, {1, 2, 3})), 60.0, 1e-8);
}

TEST(Observation1Test, SIsZeroGivesProbabilityOne) {
  EXPECT_DOUBLE_EQ(Observation1TailProbability(10, 0.2, 0), 1.0);
}

TEST(Observation1Test, ZeroSplitProbabilityMeansNoDivergence) {
  // p = 0: the two clients are always treated the same, so the gap is 0.
  for (int s = 1; s <= 5; ++s) {
    EXPECT_NEAR(Observation1TailProbability(10, 0.0, s), 0.0, 1e-12);
  }
}

TEST(Observation1Test, MonotoneDecreasingInS) {
  double prev = 1.0;
  for (int s = 0; s <= 10; ++s) {
    double p = Observation1TailProbability(10, 0.21, s);
    EXPECT_LE(p, prev + 1e-12) << "s=" << s;
    prev = p;
  }
}

TEST(Observation1Test, MonotoneIncreasingInP) {
  // More selection asymmetry => larger divergence probability.
  double prev = 0.0;
  for (double p : {0.05, 0.1, 0.2, 0.3, 0.4}) {
    double tail = Observation1TailProbability(20, p, 3);
    EXPECT_GE(tail, prev - 1e-12) << "p=" << p;
    prev = tail;
  }
}

TEST(Observation1Test, SingleRoundClosedForm) {
  // T=1, s=1: |gap| >= 1 iff exactly one of the two clients is selected,
  // which happens with probability 2p.
  const double p = 0.21;
  EXPECT_NEAR(Observation1TailProbability(1, p, 1), 2.0 * p, 1e-12);
}

TEST(Observation1Test, MatchesDirectEnumerationSmallT) {
  // Exhaustive trinomial enumeration for T=4.
  const int T = 4;
  const double p = 0.15;
  for (int s = 1; s <= T; ++s) {
    double expect = 0.0;
    // Each round: +1 (p), -1 (p), 0 (1-2p). Enumerate counts.
    for (int plus = 0; plus <= T; ++plus) {
      for (int minus = 0; plus + minus <= T; ++minus) {
        const int zeros = T - plus - minus;
        if (std::abs(plus - minus) < s) continue;
        expect += std::exp(LogMultinomial(T, {plus, minus, zeros})) *
                  std::pow(p, plus + minus) * std::pow(1 - 2 * p, zeros);
      }
    }
    EXPECT_NEAR(Observation1TailProbability(T, p, s), expect, 1e-10)
        << "s=" << s;
  }
}

TEST(Observation1Test, PaperLiteralFormIsUpperEnvelope) {
  // The paper's printed (1-p) zero-step factor over-weights zero steps,
  // so its series is >= the exact one.
  for (int s = 1; s <= 6; ++s) {
    const double exact = Observation1TailProbability(15, 0.2, s, false);
    const double literal = Observation1TailProbability(15, 0.2, s, true);
    EXPECT_GE(literal, exact - 1e-12) << "s=" << s;
  }
}

TEST(SelectionSplitProbabilityTest, MatchesFormulaAndSymmetry) {
  // m=3, N=10: p = 3*7 / (10*9) = 7/30.
  EXPECT_NEAR(SelectionSplitProbability(10, 3), 7.0 / 30.0, 1e-12);
  // Selecting m or N-m is symmetric.
  EXPECT_NEAR(SelectionSplitProbability(10, 3),
              SelectionSplitProbability(10, 7), 1e-12);
  // Selecting everyone or no one never splits the pair.
  EXPECT_DOUBLE_EQ(SelectionSplitProbability(10, 10), 0.0);
  EXPECT_DOUBLE_EQ(SelectionSplitProbability(10, 0), 0.0);
}

class Observation1SimulationTest : public ::testing::TestWithParam<int> {};

TEST_P(Observation1SimulationTest, BoundIsALowerBoundOnSimulatedTail) {
  // Observation 1 claims P(|s_i - s_j| >= s delta) >= P_s. Simulate the
  // selection process with delta_t == delta (no noise): then the gap is
  // exactly delta * (sum of +/-1/0 steps) and equality holds.
  const int T = 12;
  const int N = 10;
  const int m = GetParam();
  const double p = SelectionSplitProbability(N, m);
  Rng rng(1234 + m);
  const int trials = 20000;
  std::vector<int> gap_counts(2 * T + 1, 0);
  for (int trial = 0; trial < trials; ++trial) {
    int gap = 0;
    for (int t = 0; t < T; ++t) {
      std::vector<int> sel = rng.SampleWithoutReplacement(N, m);
      bool has_i = std::find(sel.begin(), sel.end(), 0) != sel.end();
      bool has_j = std::find(sel.begin(), sel.end(), 1) != sel.end();
      if (has_i && !has_j) ++gap;
      if (has_j && !has_i) --gap;
    }
    ++gap_counts[gap + T];
  }
  for (int s = 1; s <= 4; ++s) {
    int tail_count = 0;
    for (int g = -T; g <= T; ++g) {
      if (std::abs(g) >= s) tail_count += gap_counts[g + T];
    }
    const double simulated = tail_count / static_cast<double>(trials);
    const double predicted = Observation1TailProbability(T, p, s);
    EXPECT_NEAR(simulated, predicted, 0.02) << "m=" << m << " s=" << s;
  }
}

INSTANTIATE_TEST_SUITE_P(SelectionSizes, Observation1SimulationTest,
                         ::testing::Values(2, 3, 5));

}  // namespace
}  // namespace comfedsv
