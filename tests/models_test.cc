// Model tests: analytic-vs-numeric gradients, loss decrease under GD,
// prediction consistency, and parameter-layout sanity for all three
// architectures.
#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "data/image_sim.h"
#include "data/synthetic.h"
#include "models/cnn.h"
#include "models/gradient_check.h"
#include "models/logistic.h"
#include "models/mlp.h"

namespace comfedsv {
namespace {

Dataset SmallData(int samples, int dim, int classes, uint64_t seed) {
  Rng rng(seed);
  Matrix feats(samples, dim);
  std::vector<int> labels(samples);
  for (int i = 0; i < samples; ++i) {
    for (int j = 0; j < dim; ++j) feats(i, j) = rng.NextGaussian();
    labels[i] = static_cast<int>(rng.NextUint64(classes));
  }
  return Dataset(std::move(feats), std::move(labels), classes);
}

// ---------------------------------------------------------------------
// Parameter counts.

TEST(ModelShapeTest, LogisticParamCount) {
  LogisticRegression m(20, 7);
  EXPECT_EQ(m.num_params(), 20u * 7u + 7u);
  EXPECT_EQ(m.input_dim(), 20u);
  EXPECT_EQ(m.num_classes(), 7);
  EXPECT_EQ(m.name(), "logistic");
}

TEST(ModelShapeTest, MlpParamCount) {
  Mlp m({10, 8, 4});
  // (10*8 + 8) + (8*4 + 4) = 88 + 36 = 124.
  EXPECT_EQ(m.num_params(), 124u);
  EXPECT_EQ(m.num_layers(), 2);
  EXPECT_EQ(m.name(), "mlp");
}

TEST(ModelShapeTest, CnnParamCount) {
  CnnConfig cfg;
  cfg.image_side = 8;
  cfg.channels = 1;
  cfg.num_filters = 4;
  cfg.num_classes = 10;
  Cnn m(cfg);
  // conv: 4*1*9 + 4 = 40; pooled: 4 * 3 * 3 = 36; fc: 36*10 + 10 = 370.
  EXPECT_EQ(m.conv_side(), 6);
  EXPECT_EQ(m.pool_side(), 3);
  EXPECT_EQ(m.pooled_dim(), 36u);
  EXPECT_EQ(m.num_params(), 40u + 370u);
  EXPECT_EQ(m.input_dim(), 64u);
}

// ---------------------------------------------------------------------
// Gradient checks (the decisive correctness tests).

TEST(GradientCheckTest, LogisticAnalyticMatchesNumeric) {
  LogisticRegression model(6, 4, /*l2_penalty=*/0.01);
  Dataset data = SmallData(12, 6, 4, 1);
  Rng rng(2);
  Vector params;
  model.InitializeParams(&params, &rng, 0.3);
  EXPECT_LT(MaxRelativeGradientError(model, params, data), 1e-6);
}

TEST(GradientCheckTest, LogisticWithoutRegularizer) {
  LogisticRegression model(5, 3, 0.0);
  Dataset data = SmallData(8, 5, 3, 3);
  Rng rng(4);
  Vector params;
  model.InitializeParams(&params, &rng, 0.5);
  EXPECT_LT(MaxRelativeGradientError(model, params, data), 1e-6);
}

TEST(GradientCheckTest, MlpOneHiddenLayer) {
  Mlp model({6, 5, 3}, /*l2_penalty=*/0.02);
  Dataset data = SmallData(10, 6, 3, 5);
  Rng rng(6);
  Vector params;
  model.InitializeParams(&params, &rng, 0.4);
  EXPECT_LT(MaxRelativeGradientError(model, params, data), 1e-5);
}

TEST(GradientCheckTest, MlpTwoHiddenLayers) {
  Mlp model({5, 7, 6, 4}, 0.0);
  Dataset data = SmallData(9, 5, 4, 7);
  Rng rng(8);
  Vector params;
  model.InitializeParams(&params, &rng, 0.4);
  EXPECT_LT(MaxRelativeGradientError(model, params, data), 1e-5);
}

TEST(GradientCheckTest, CnnSingleChannel) {
  CnnConfig cfg;
  cfg.image_side = 6;
  cfg.channels = 1;
  cfg.num_filters = 3;
  cfg.num_classes = 4;
  cfg.l2_penalty = 0.01;
  Cnn model(cfg);
  Dataset data = SmallData(6, 36, 4, 9);
  Rng rng(10);
  Vector params;
  model.InitializeParams(&params, &rng, 0.4);
  EXPECT_LT(MaxRelativeGradientError(model, params, data), 1e-5);
}

TEST(GradientCheckTest, CnnThreeChannels) {
  CnnConfig cfg;
  cfg.image_side = 6;
  cfg.channels = 3;
  cfg.num_filters = 2;
  cfg.num_classes = 3;
  Cnn model(cfg);
  Dataset data = SmallData(5, 108, 3, 11);
  Rng rng(12);
  Vector params;
  model.InitializeParams(&params, &rng, 0.4);
  EXPECT_LT(MaxRelativeGradientError(model, params, data), 1e-5);
}

// ---------------------------------------------------------------------
// Training behaviour.

template <typename ModelT>
void ExpectGradientDescentDecreasesLoss(const ModelT& model,
                                        const Dataset& data, double lr,
                                        int steps) {
  Rng rng(13);
  Vector params;
  model.InitializeParams(&params, &rng);
  Vector grad;
  double prev = model.Loss(params, data);
  const double initial = prev;
  for (int i = 0; i < steps; ++i) {
    model.LossAndGradient(params, data, &grad);
    params.Axpy(-lr, grad);
  }
  const double final_loss = model.Loss(params, data);
  EXPECT_LT(final_loss, initial * 0.9);
}

TEST(TrainingTest, LogisticLossDecreases) {
  SimulatedImageConfig cfg;
  cfg.num_samples = 300;
  cfg.seed = 21;
  Dataset data = GenerateSimulatedImages(cfg);
  LogisticRegression model(data.dim(), 10, 1e-4);
  ExpectGradientDescentDecreasesLoss(model, data, 0.5, 60);
}

TEST(TrainingTest, MlpLossDecreases) {
  SimulatedImageConfig cfg;
  cfg.num_samples = 300;
  cfg.seed = 22;
  Dataset data = GenerateSimulatedImages(cfg);
  Mlp model({data.dim(), 16, 10});
  ExpectGradientDescentDecreasesLoss(model, data, 0.3, 80);
}

TEST(TrainingTest, CnnLossDecreases) {
  SimulatedImageConfig cfg;
  cfg.num_samples = 200;
  cfg.seed = 23;
  cfg.family = ImageFamily::kCifar10;
  Dataset data = GenerateSimulatedImages(cfg);
  CnnConfig mcfg;
  mcfg.image_side = 8;
  mcfg.channels = 3;
  mcfg.num_filters = 4;
  Cnn model(mcfg);
  ExpectGradientDescentDecreasesLoss(model, data, 0.2, 60);
}

TEST(TrainingTest, LogisticReachesHighAccuracyOnSeparableData) {
  // Argmax-linear labels are realizable by the model class.
  SyntheticConfig cfg;
  cfg.num_clients = 1;
  cfg.samples_per_client = 400;
  cfg.iid = true;
  cfg.dim = 20;
  cfg.num_classes = 5;
  cfg.seed = 31;
  Dataset data = GenerateSyntheticFederated(cfg)[0];
  LogisticRegression model(20, 5, 0.0);
  Rng rng(32);
  Vector params;
  model.InitializeParams(&params, &rng);
  Vector grad;
  for (int i = 0; i < 300; ++i) {
    model.LossAndGradient(params, data, &grad);
    params.Axpy(-1.0, grad);
  }
  EXPECT_GT(model.Accuracy(params, data), 0.8);
}

// ---------------------------------------------------------------------
// Prediction / loss consistency.

TEST(PredictionTest, AccuracyOneWhenLossNearZero) {
  // Overfit a tiny dataset; predictions must match labels.
  Dataset data = SmallData(6, 4, 3, 41);
  Mlp model({4, 12, 3});
  Rng rng(42);
  Vector params;
  model.InitializeParams(&params, &rng, 0.3);
  Vector grad;
  for (int i = 0; i < 2000; ++i) {
    model.LossAndGradient(params, data, &grad);
    params.Axpy(-0.5, grad);
  }
  if (model.Loss(params, data) < 0.05) {
    EXPECT_DOUBLE_EQ(model.Accuracy(params, data), 1.0);
  }
}

TEST(PredictionTest, LossIsMeanNegativeLogLikelihood) {
  // With zero parameters, softmax is uniform: loss = log(C).
  LogisticRegression model(5, 4, 0.0);
  Dataset data = SmallData(10, 5, 4, 51);
  Vector zeros(model.num_params());
  EXPECT_NEAR(model.Loss(zeros, data), std::log(4.0), 1e-12);
}

TEST(PredictionTest, L2PenaltyAddsQuadraticTerm) {
  LogisticRegression with(4, 3, 0.5);
  LogisticRegression without(4, 3, 0.0);
  Dataset data = SmallData(6, 4, 3, 61);
  Rng rng(62);
  Vector params;
  with.InitializeParams(&params, &rng, 0.3);
  EXPECT_NEAR(with.Loss(params, data),
              without.Loss(params, data) + 0.25 * params.Dot(params),
              1e-12);
}

TEST(PredictionTest, EmptyDatasetLossIsRegularizerOnly) {
  LogisticRegression model(3, 2, 0.2);
  Dataset empty(Matrix(0, 3), {}, 2);
  Vector params(model.num_params(), 0.5);
  EXPECT_NEAR(model.Loss(params, empty), 0.1 * params.Dot(params), 1e-12);
}

}  // namespace
}  // namespace comfedsv
