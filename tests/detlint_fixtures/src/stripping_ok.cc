// detlint fixture: stripping corner cases that must scan clean — raw
// strings and backslash-spliced comments are not code. Never compiled.
const char* kPlainRaw = R"(rand() // mt19937 bait inside a raw string)";
const char* kWideRaw = LR"sep(
std::random_device in_wide_raw;
srand(7);
)sep";
const char* kU8Raw = u8R"(
std::ifstream in_u8_raw("f");
fopen("g");
)";
const char* kU16Raw = uR"(time(nullptr))";
const char* kU32Raw = UR"x(clock() // call-like bait)x";
// A spliced comment swallows the next physical line too: \
rand();
// Two splices chain across three physical lines: \
std::random_device spliced_bait; \
srand(9);
int CleanStripping() { return 0; }
