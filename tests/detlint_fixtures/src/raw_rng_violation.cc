// detlint fixture: raw-rng. Never compiled; line numbers are asserted
// exactly by tests/detlint_test.cc.
#include <cstdlib>
#include <random>

int BadDraw() { return rand(); }

std::random_device g_entropy;

// detlint:allow(raw-rng): fixture counterpart — documents that a justified
// pragma suppresses the finding.
std::mt19937 g_allowed_engine;
