// detlint fixture: unordered-iter. Never compiled; scanned by
// tests/detlint_test.cc. Line numbers are asserted exactly — keep them
// stable.
#include <unordered_map>

void Emit(int v);

void BadDump(const std::unordered_map<int, int>& histogram) {
  for (const auto& entry : histogram) {
    Emit(entry.second);
  }
}

void BadHarvest(const std::unordered_map<int, int>& histogram) {
  auto it = histogram.begin();
  Emit(it->second);
}

void OkDump(const std::unordered_map<int, int>& histogram) {
  // detlint:allow(unordered-iter): caller sorts the emitted pairs before
  // any output or serialization touches them.
  for (const auto& entry : histogram) {
    Emit(entry.second);
  }
}
