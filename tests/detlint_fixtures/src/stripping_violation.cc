// detlint fixture: stripping must not swallow live code around raw
// strings or spliced comments. Never compiled; line numbers are
// asserted exactly by tests/detlint_test.cc.
const char* kBait = R"(// not a comment)"; int Live() { return rand(); }
// A splice ends where the backslash stops: \
still inside the comment, scanned as nothing
std::random_device g_after_splice;
