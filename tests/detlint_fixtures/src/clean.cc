// detlint fixture: a file with nothing to report (exit code 0).
int Add(int a, int b) { return a + b; }
