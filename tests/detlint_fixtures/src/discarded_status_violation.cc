// detlint fixture: discarded-status. Never compiled; line numbers are
// asserted exactly by tests/detlint_test.cc.
struct Status {
  bool ok() const;
};

Status SaveThing();

void Caller() {
  SaveThing();
  (void)SaveThing();
  Status kept = SaveThing();
  if (kept.ok()) {
  }
  // detlint:allow(discarded-status): fixture counterpart — failure is
  // surfaced by the health probe on the next tick.
  SaveThing();
}
