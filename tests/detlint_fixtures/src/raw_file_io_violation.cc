// detlint fixture: raw-file-io. Never compiled; line numbers are
// asserted exactly by tests/detlint_test.cc.
#include <fstream>

void BadWrite() { std::ofstream out("orphan.bin"); }

// detlint:allow(raw-file-io): fixture counterpart — a debug artifact that
// deliberately stays outside the checkpoint fault surface.
void OkWrite() { std::ofstream out("debug.txt"); }
