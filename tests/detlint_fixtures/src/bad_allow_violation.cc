// detlint fixture: bad-allow. A pragma without justification is itself a
// finding and suppresses nothing, so the rand() below stays flagged too.
#include <cstdlib>

// detlint:allow(raw-rng)
int BadDraw() { return rand(); }

// detlint:allow(no-such-rule): justification for a rule that is unknown.
int AlsoBad() { return 7; }
