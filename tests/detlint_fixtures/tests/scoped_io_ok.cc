// detlint fixture: raw-file-io is scoped to src/ — test helpers may
// write temp files directly, so this file must scan clean.
#include <fstream>

void WriteGolden() { std::ofstream out("golden.tmp"); }
