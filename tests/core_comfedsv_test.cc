// ComFedSV formula and fairness-property tests (Theorem 1):
//   * with a perfectly completed matrix, ComFedSV == ground truth;
//   * symmetry: identical clients get (near-)identical values;
//   * zero element: a client whose update never changes utilities gets 0;
//   * the sampled estimator (Eq. 12) converges to Def. 4.
#include <gtest/gtest.h>

#include <cmath>

#include "core/comfedsv_values.h"
#include "core/evaluator.h"
#include "core/recorders.h"
#include "data/image_sim.h"
#include "data/noise.h"
#include "data/partition.h"
#include "fl/fedavg.h"
#include "metrics/metrics.h"
#include "models/logistic.h"
#include "shapley/shapley.h"

namespace comfedsv {
namespace {

struct Workload {
  std::vector<Dataset> clients;
  Dataset test;
};

Workload MakeWorkload(int num_clients, uint64_t seed) {
  SimulatedImageConfig cfg;
  cfg.num_samples = 60 * num_clients + 100;
  cfg.seed = seed;
  Dataset pool = GenerateSimulatedImages(cfg);
  Rng rng(seed + 1);
  auto [train_pool, test] = pool.RandomSplit(0.25, &rng);
  return {PartitionIid(train_pool, num_clients, &rng), std::move(test)};
}

FedAvgConfig SmallFedConfig(int rounds, int per_round, uint64_t seed) {
  FedAvgConfig cfg;
  cfg.num_rounds = rounds;
  cfg.clients_per_round = per_round;
  cfg.select_all_first_round = true;
  cfg.lr = LearningRateSchedule::Constant(0.3);
  cfg.seed = seed;
  return cfg;
}

// ---------------------------------------------------------------------
// Formula-level tests on hand-constructed matrices.

TEST(ComFedSvFormulaTest, GroundTruthOnAdditiveUtilities) {
  // U_t(S) = sum of per-client weights: ComFedSV_i = T * weight_i / ...
  // Actually for additive utility the Shapley value per round is the own
  // weight, and values sum over rounds.
  const int n = 3;
  const std::vector<double> weights = {1.0, 2.0, 4.0};
  const int rounds = 2;
  Matrix u(rounds, 1u << n);
  for (int t = 0; t < rounds; ++t) {
    for (uint32_t mask = 0; mask < (1u << n); ++mask) {
      double total = 0.0;
      for (int i = 0; i < n; ++i) {
        if (mask & (1u << i)) total += weights[i];
      }
      u(t, mask) = total;
    }
  }
  Result<Vector> values = ComFedSvFromFullMatrix(u, n);
  ASSERT_TRUE(values.ok());
  for (int i = 0; i < n; ++i) {
    EXPECT_NEAR(values.value()[i], rounds * weights[i], 1e-10) << i;
  }
}

TEST(ComFedSvFormulaTest, GroundTruthMatchesExactShapleyPerRound) {
  // For a single round the ComFedSV ground truth must equal the classical
  // Shapley value of the round's utility game.
  const int n = 4;
  Rng rng(5);
  Matrix u(1, 1u << n);
  for (uint32_t mask = 1; mask < (1u << n); ++mask) {
    u(0, mask) = rng.NextGaussian();
  }
  Result<Vector> comfedsv = ComFedSvFromFullMatrix(u, n);
  ASSERT_TRUE(comfedsv.ok());

  UtilityFn game = [&](const Coalition& c) {
    uint32_t mask = 0;
    for (int m : c.Members()) mask |= (1u << m);
    return u(0, mask);
  };
  Result<Vector> shapley = ExactShapley(n, {0, 1, 2, 3}, game);
  ASSERT_TRUE(shapley.ok());
  for (int i = 0; i < n; ++i) {
    EXPECT_NEAR(comfedsv.value()[i], shapley.value()[i], 1e-10) << i;
  }
}

TEST(ComFedSvFormulaTest, FactorsReproduceFullMatrixValues) {
  // Build a rank-2 utility matrix, factor it exactly, and check that the
  // factor-based Def. 4 equals the full-matrix Eq. 14.
  const int n = 3;
  const int rounds = 5;
  Rng rng(7);
  Matrix w(rounds, 2);
  Matrix h(1u << n, 2);
  for (int t = 0; t < rounds; ++t) {
    w(t, 0) = rng.NextGaussian();
    w(t, 1) = rng.NextGaussian();
  }
  CoalitionInterner interner;
  for (uint32_t mask = 0; mask < (1u << n); ++mask) {
    Coalition c(n);
    for (int i = 0; i < n; ++i) {
      if (mask & (1u << i)) c.Add(i);
    }
    const int col = interner.Intern(c);
    ASSERT_EQ(col, static_cast<int>(mask));
    h(col, 0) = rng.NextGaussian();
    h(col, 1) = rng.NextGaussian();
  }
  Matrix u = Matrix::Multiply(w, h.Transpose());
  Result<Vector> from_factors = ComFedSvFromFactors(w, h, interner, n);
  Result<Vector> from_matrix = ComFedSvFromFullMatrix(u, n);
  ASSERT_TRUE(from_factors.ok());
  ASSERT_TRUE(from_matrix.ok());
  for (int i = 0; i < n; ++i) {
    EXPECT_NEAR(from_factors.value()[i], from_matrix.value()[i], 1e-9);
  }
}

TEST(ComFedSvFormulaTest, SampledEstimatorConvergesToExact) {
  // Eq. 12 with many permutations ~ Def. 4 on the same factors.
  const int n = 5;
  const int rounds = 3;
  Rng rng(11);
  Matrix w(rounds, 2);
  Matrix h(1u << n, 2);
  CoalitionInterner interner;
  for (int t = 0; t < rounds; ++t) {
    w(t, 0) = rng.NextGaussian();
    w(t, 1) = rng.NextGaussian();
  }
  for (uint32_t mask = 0; mask < (1u << n); ++mask) {
    Coalition c(n);
    for (int i = 0; i < n; ++i) {
      if (mask & (1u << i)) c.Add(i);
    }
    int col = interner.Intern(c);
    h(col, 0) = rng.NextGaussian();
    h(col, 1) = rng.NextGaussian();
  }
  Result<Vector> exact = ComFedSvFromFactors(w, h, interner, n);
  ASSERT_TRUE(exact.ok());

  // Sample permutations and build prefix-column tables via the interner.
  const int num_perms = 20000;
  Rng prng(13);
  std::vector<std::vector<int>> perms;
  std::vector<std::vector<int>> prefix_cols;
  for (int m = 0; m < num_perms; ++m) {
    perms.push_back(prng.Permutation(n));
    std::vector<int> cols;
    Coalition prefix(n);
    cols.push_back(interner.Find(prefix));
    for (int member : perms.back()) {
      prefix.Add(member);
      cols.push_back(interner.Find(prefix));
    }
    prefix_cols.push_back(std::move(cols));
  }
  Result<Vector> sampled =
      ComFedSvSampled(w, h, perms, prefix_cols, n);
  ASSERT_TRUE(sampled.ok());
  for (int i = 0; i < n; ++i) {
    EXPECT_NEAR(sampled.value()[i], exact.value()[i],
                0.05 * (1.0 + std::fabs(exact.value()[i])))
        << i;
  }
}

TEST(ComFedSvFormulaTest, SampledAndExactAgreeOnNonzeroEmptyColumn) {
  // The U(empty) = 0 audit, formula level: ComFedSvSampled's walk
  // baseline is the factor-predicted empty value — the same value the
  // exact Def. 4 sum uses — so the two stay consistent even when the
  // factors predict a *nonzero* empty column (as unconverged CCD++/SGD
  // completions can). Rank-1 factors with every permutation sampled
  // make the Monte-Carlo average exact, so agreement is to rounding.
  const int n = 3;
  Rng rng(71);
  Matrix w(2, 1), h(1u << n, 1);
  w(0, 0) = 0.8;
  w(1, 0) = 1.3;
  CoalitionInterner interner;
  for (uint32_t mask = 0; mask < (1u << n); ++mask) {
    Coalition c(n);
    for (int i = 0; i < n; ++i) {
      if (mask & (1u << i)) c.Add(i);
    }
    ASSERT_EQ(interner.Intern(c), static_cast<int>(mask));
    h(mask, 0) = rng.NextGaussian();
  }
  h(0, 0) = 2.5;  // nonzero predicted empty value

  Result<Vector> exact = ComFedSvFromFactors(w, h, interner, n);
  ASSERT_TRUE(exact.ok());

  // All 3! = 6 permutations, once each: the estimator averages every
  // ordering, which is exactly the Shapley sum of the predicted game.
  std::vector<std::vector<int>> perms = {{0, 1, 2}, {0, 2, 1}, {1, 0, 2},
                                         {1, 2, 0}, {2, 0, 1}, {2, 1, 0}};
  std::vector<std::vector<int>> prefix_cols;
  for (const std::vector<int>& perm : perms) {
    std::vector<int> cols;
    Coalition prefix(n);
    cols.push_back(interner.Find(prefix));
    for (int member : perm) {
      prefix.Add(member);
      cols.push_back(interner.Find(prefix));
    }
    prefix_cols.push_back(std::move(cols));
  }
  Result<Vector> sampled = ComFedSvSampled(w, h, perms, prefix_cols, n);
  ASSERT_TRUE(sampled.ok());
  for (int i = 0; i < n; ++i) {
    EXPECT_NEAR(sampled.value()[i], exact.value()[i], 1e-12) << i;
  }

  // The nonzero empty value shifts the first-entrant marginal of every
  // walk: zeroing it must change the values (this is what the evaluator
  // pin corrects for pipeline inputs).
  Matrix h_pinned = h;
  h_pinned(0, 0) = 0.0;
  Result<Vector> pinned = ComFedSvSampled(w, h_pinned, perms, prefix_cols, n);
  ASSERT_TRUE(pinned.ok());
  const double wsum = w(0, 0) + w(1, 0);
  for (int i = 0; i < n; ++i) {
    // Each player is first in 2 of the 6 permutations: the baseline
    // shift is wsum * h_empty * (2/6).
    EXPECT_NEAR(pinned.value()[i] - sampled.value()[i],
                wsum * 2.5 / 3.0, 1e-12)
        << i;
  }
}

TEST(ComFedSvFormulaTest, GuardsAndErrors) {
  Matrix u(2, 8);
  EXPECT_FALSE(ComFedSvFromFullMatrix(u, 4).ok());  // 2^4 != 8
  EXPECT_FALSE(ComFedSvFromFullMatrix(u, 0).ok());
  EXPECT_FALSE(ComFedSvFromFullMatrix(u, 20).ok());

  Matrix w(2, 2), h(8, 3);
  CoalitionInterner interner;
  EXPECT_FALSE(ComFedSvFromFactors(w, h, interner, 3).ok());  // rank mismatch

  Matrix h2(8, 2);
  // Interner missing coalitions -> FailedPrecondition.
  Result<Vector> r = ComFedSvFromFactors(w, h2, interner, 3);
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kFailedPrecondition);
}

// ---------------------------------------------------------------------
// End-to-end evaluator tests (Theorem 1 properties).

TEST(ComFedSvEvaluatorTest, FullySelectedTrainingMatchesGroundTruth) {
  // When every round selects every client, the observed matrix IS the
  // full matrix: ComFedSV (with near-exact completion) must match the
  // ground truth up to completion error.
  Workload w = MakeWorkload(4, 41);
  LogisticRegression model(w.test.dim(), 10);
  FedAvgConfig fcfg = SmallFedConfig(4, 4, 43);  // all 4 clients per round

  ComFedSvConfig ccfg;
  ccfg.mode = ComFedSvConfig::Mode::kFull;
  ccfg.completion.rank = 4;
  ccfg.completion.lambda = 1e-6;
  ccfg.completion.max_iters = 500;
  ComFedSvEvaluator comfedsv(&model, &w.test, 4, ccfg);
  GroundTruthEvaluator ground_truth(&model, &w.test, 4);

  FanoutObserver fanout;
  fanout.Register(&comfedsv);
  fanout.Register(&ground_truth);
  FedAvgTrainer trainer(&model, w.clients, w.test, fcfg);
  ASSERT_TRUE(trainer.Train(&fanout).ok());

  Result<ComFedSvOutput> out = comfedsv.Finalize();
  ASSERT_TRUE(out.ok()) << out.status().ToString();
  Result<Vector> truth = ground_truth.Finalize();
  ASSERT_TRUE(truth.ok());

  const double scale = truth.value().MaxAbs() + 1e-12;
  for (int i = 0; i < 4; ++i) {
    EXPECT_NEAR(out.value().values[i], truth.value()[i], 0.05 * scale)
        << i;
  }
  EXPECT_DOUBLE_EQ(out.value().observed_density, 1.0);
}

TEST(ComFedSvEvaluatorTest, SymmetryForIdenticalClients) {
  // Theorem 1 symmetry: clients 0 and 3 share identical data; their
  // ComFedSVs should be close even under partial selection (while FedSV
  // diverges, as shown in shapley_fedsv_test).
  Workload w = MakeWorkload(3, 47);
  w.clients.push_back(w.clients[0]);  // client 3 == client 0
  LogisticRegression model(w.test.dim(), 10);
  FedAvgConfig fcfg = SmallFedConfig(6, 2, 49);

  ComFedSvConfig ccfg;
  ccfg.mode = ComFedSvConfig::Mode::kFull;
  ccfg.completion.rank = 3;
  ccfg.completion.lambda = 1e-4;
  ccfg.completion.max_iters = 300;
  ComFedSvEvaluator evaluator(&model, &w.test, 4, ccfg);
  FedAvgTrainer trainer(&model, w.clients, w.test, fcfg);
  ASSERT_TRUE(trainer.Train(&evaluator).ok());
  Result<ComFedSvOutput> out = evaluator.Finalize();
  ASSERT_TRUE(out.ok());
  // Identical clients produce identical local models, so every coalition
  // column treats them interchangeably up to completion error.
  const double scale = out.value().values.MaxAbs() + 1e-12;
  EXPECT_LT(std::fabs(out.value().values[0] - out.value().values[3]),
            0.25 * scale);
}

TEST(ComFedSvEvaluatorTest, ZeroElementForNullClient) {
  // A client whose local model never moves (empty gradient => w_i = w^t
  // would need zero data; instead give it a tiny learning contribution by
  // duplicating the global: emulate with a client whose dataset makes the
  // gradient zero is impractical, so test the formula-level property).
  //
  // Build a synthetic full matrix in which client 2 never changes any
  // coalition utility; its ground-truth ComFedSV must be exactly 0.
  const int n = 3;
  const int rounds = 4;
  Rng rng(51);
  // Assign utility by the subset of {0, 1} only.
  std::vector<double> base(4);
  for (auto& b : base) b = rng.NextGaussian();
  Matrix u(rounds, 1u << n);
  for (int t = 0; t < rounds; ++t) {
    for (uint32_t mask = 0; mask < (1u << n); ++mask) {
      const uint32_t reduced = mask & 0b011;  // ignore client 2
      u(t, mask) = base[reduced] * (t + 1);
    }
  }
  Result<Vector> values = ComFedSvFromFullMatrix(u, n);
  ASSERT_TRUE(values.ok());
  EXPECT_NEAR(values.value()[2], 0.0, 1e-10);
}

TEST(ComFedSvEvaluatorTest, SampledModeRunsAndCorrelatesWithFull) {
  // Give clients genuinely different quality (graded label noise), so the
  // two estimators have real signal to agree on; with IID clients all
  // values are near-equal and rank correlation is undefined noise.
  Workload w = MakeWorkload(6, 53);
  Rng noise_rng(54);
  for (int i = 0; i < 6; ++i) {
    FlipLabels(&w.clients[i], 0.15 * i, &noise_rng);
  }
  LogisticRegression model(w.test.dim(), 10);
  FedAvgConfig fcfg = SmallFedConfig(8, 3, 57);

  ComFedSvConfig full_cfg;
  full_cfg.mode = ComFedSvConfig::Mode::kFull;
  full_cfg.completion.rank = 4;
  full_cfg.completion.lambda = 1e-4;
  ComFedSvEvaluator full_eval(&model, &w.test, 6, full_cfg);

  ComFedSvConfig sampled_cfg;
  sampled_cfg.mode = ComFedSvConfig::Mode::kSampled;
  sampled_cfg.num_permutations = 200;
  sampled_cfg.completion.rank = 4;
  sampled_cfg.completion.lambda = 1e-4;
  sampled_cfg.seed = 59;
  ComFedSvEvaluator sampled_eval(&model, &w.test, 6, sampled_cfg);

  FanoutObserver fanout;
  fanout.Register(&full_eval);
  fanout.Register(&sampled_eval);
  FedAvgTrainer trainer(&model, w.clients, w.test, fcfg);
  ASSERT_TRUE(trainer.Train(&fanout).ok());

  Result<ComFedSvOutput> full_out = full_eval.Finalize();
  Result<ComFedSvOutput> sampled_out = sampled_eval.Finalize();
  ASSERT_TRUE(full_out.ok()) << full_out.status().ToString();
  ASSERT_TRUE(sampled_out.ok()) << sampled_out.status().ToString();

  std::vector<double> a(full_out.value().values.begin(),
                        full_out.value().values.end());
  std::vector<double> b(sampled_out.value().values.begin(),
                        sampled_out.value().values.end());
  Result<double> rho = SpearmanCorrelation(a, b);
  ASSERT_TRUE(rho.ok());
  EXPECT_GT(rho.value(), 0.5);
}

TEST(ComFedSvEvaluatorTest, FinalizePinsEmptyFactorRowToZero) {
  // The U(empty) = 0 audit, pipeline level: the empty coalition is
  // observed at 0 every round, and under the default ALS solver its
  // factor row already solves to exactly zero (zero right-hand side
  // through the ridge normal equations). SGD only decays the random
  // initialization toward zero, so Finalize pins the row — the returned
  // factors must honor the convention for every solver, keeping the
  // sampled walk baseline aligned with MonteCarloShapley's hardcoded
  // U(empty) = 0.
  Workload w = MakeWorkload(4, 73);
  LogisticRegression model(w.test.dim(), 10);
  FedAvgConfig fcfg = SmallFedConfig(4, 2, 79);

  for (CompletionSolver solver :
       {CompletionSolver::kAls, CompletionSolver::kSgd,
        CompletionSolver::kCcd}) {
    ComFedSvConfig ccfg;
    ccfg.mode = ComFedSvConfig::Mode::kSampled;
    ccfg.num_permutations = 6;
    ccfg.completion.rank = 2;
    ccfg.completion.lambda = 1e-3;
    ccfg.completion.max_iters = 15;
    ccfg.completion.solver = solver;
    ccfg.seed = 83;
    ComFedSvEvaluator evaluator(&model, &w.test, 4, ccfg);
    FedAvgTrainer trainer(&model, w.clients, w.test, fcfg);
    ASSERT_TRUE(trainer.Train(&evaluator).ok());
    Result<ComFedSvOutput> out = evaluator.Finalize();
    ASSERT_TRUE(out.ok()) << out.status().ToString();
    // The sampled recorder interns the empty prefix first: column 0.
    const Matrix& h = out.value().completion.h;
    for (size_t k = 0; k < h.cols(); ++k) {
      EXPECT_EQ(h(0, k), 0.0)
          << CompletionSolverName(solver) << " k=" << k;
    }
  }
}

TEST(ComFedSvEvaluatorTest, TruncatedSamplingStaysCloseToUniform) {
  // Regression for the truncated recorder's completion input: truncated
  // tails are recorded at the U_t(I_t) reference (not dropped), so every
  // prefix column keeps an Assumption-1 anchor and the factor rows never
  // stay at their random initialization. With a tolerance comparable to
  // the utility scale, the truncated estimate must remain close to the
  // uniform-sampler estimate from the same seed (identical permutations
  // — only tail measurements are approximated).
  Workload w = MakeWorkload(5, 101);
  Rng noise_rng(102);
  for (int i = 0; i < 5; ++i) {
    FlipLabels(&w.clients[i], 0.2 * i, &noise_rng);
  }
  LogisticRegression model(w.test.dim(), 10);
  FedAvgConfig fcfg = SmallFedConfig(6, 3, 103);

  ComFedSvConfig uniform_cfg;
  uniform_cfg.mode = ComFedSvConfig::Mode::kSampled;
  uniform_cfg.num_permutations = 12;
  uniform_cfg.completion.rank = 3;
  uniform_cfg.completion.lambda = 1e-4;
  uniform_cfg.seed = 104;
  ComFedSvEvaluator uniform_eval(&model, &w.test, 5, uniform_cfg);

  ComFedSvConfig truncated_cfg = uniform_cfg;
  truncated_cfg.sampler.kind = SamplerKind::kTruncated;
  truncated_cfg.sampler.truncation_tolerance = 0.05;
  ComFedSvEvaluator truncated_eval(&model, &w.test, 5, truncated_cfg);

  FanoutObserver fanout;
  fanout.Register(&uniform_eval);
  fanout.Register(&truncated_eval);
  FedAvgTrainer trainer(&model, w.clients, w.test, fcfg);
  ASSERT_TRUE(trainer.Train(&fanout).ok());

  Result<ComFedSvOutput> uniform_out = uniform_eval.Finalize();
  Result<ComFedSvOutput> truncated_out = truncated_eval.Finalize();
  ASSERT_TRUE(uniform_out.ok()) << uniform_out.status().ToString();
  ASSERT_TRUE(truncated_out.ok()) << truncated_out.status().ToString();

  EXPECT_LE(truncated_out.value().loss_calls,
            uniform_out.value().loss_calls + 6);  // <= 1 reference/round
  const double scale = uniform_out.value().values.MaxAbs() + 1e-12;
  for (int i = 0; i < 5; ++i) {
    EXPECT_LT(std::fabs(truncated_out.value().values[i] -
                        uniform_out.value().values[i]),
              0.5 * scale)
        << i;
  }
}

TEST(ComFedSvEvaluatorTest, FinalizeWithoutRoundsFails) {
  Workload w = MakeWorkload(3, 61);
  LogisticRegression model(w.test.dim(), 10);
  ComFedSvConfig ccfg;
  ComFedSvEvaluator evaluator(&model, &w.test, 3, ccfg);
  EXPECT_FALSE(evaluator.Finalize().ok());
}

TEST(GroundTruthEvaluatorTest, FinalizeWithoutRecordedRoundsFails) {
  // Bernoulli-style selection can leave every round empty-selected; the
  // recorder then records nothing and Finalize must return an error
  // instead of CHECK-aborting in ToMatrix.
  Workload w = MakeWorkload(3, 67);
  LogisticRegression model(w.test.dim(), 10);
  GroundTruthEvaluator evaluator(&model, &w.test, 3);
  RoundRecord empty;  // no selected clients: skipped by the recorder
  evaluator.OnRound(empty);
  Result<Vector> out = evaluator.Finalize();
  EXPECT_FALSE(out.ok());
  EXPECT_EQ(out.status().code(), StatusCode::kFailedPrecondition);
}

}  // namespace
}  // namespace comfedsv
