#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "data/image_sim.h"
#include "data/noise.h"
#include "data/partition.h"

namespace comfedsv {
namespace {

Dataset MakePool(int samples, uint64_t seed) {
  SimulatedImageConfig cfg;
  cfg.num_samples = samples;
  cfg.seed = seed;
  return GenerateSimulatedImages(cfg);
}

TEST(PartitionTest, IidCoversAllSamplesDisjointly) {
  Dataset pool = MakePool(103, 3);
  Rng rng(1);
  auto parts = PartitionIid(pool, 4, &rng);
  ASSERT_EQ(parts.size(), 4u);
  size_t total = 0;
  for (const Dataset& p : parts) total += p.num_samples();
  EXPECT_EQ(total, 103u);
  // Sizes are near-equal (26, 26, 26, 25 in some order).
  for (const Dataset& p : parts) {
    EXPECT_GE(p.num_samples(), 25u);
    EXPECT_LE(p.num_samples(), 26u);
  }
}

TEST(PartitionTest, IidPreservesClassBalanceApproximately) {
  Dataset pool = MakePool(1000, 5);
  Rng rng(2);
  auto parts = PartitionIid(pool, 5, &rng);
  for (const Dataset& p : parts) {
    std::vector<int> hist = p.ClassHistogram();
    for (int c = 0; c < 10; ++c) {
      // Each client should see roughly 20 of each class.
      EXPECT_GE(hist[c], 8) << "class " << c;
      EXPECT_LE(hist[c], 35) << "class " << c;
    }
  }
}

TEST(PartitionTest, LabelShardsConcentrateClasses) {
  Dataset pool = MakePool(1000, 7);
  Rng rng(3);
  auto parts = PartitionByLabelShards(pool, 10, /*shards_per_client=*/2,
                                      &rng);
  ASSERT_EQ(parts.size(), 10u);
  // With 2 shards per client over label-sorted data, each client sees at
  // most ~3 distinct classes (2 shards can straddle a boundary each).
  for (const Dataset& p : parts) {
    std::set<int> classes(p.labels().begin(), p.labels().end());
    EXPECT_LE(classes.size(), 4u);
    EXPECT_GE(classes.size(), 1u);
  }
}

TEST(PartitionTest, LabelShardsCoverAllSamples) {
  Dataset pool = MakePool(200, 9);
  Rng rng(4);
  auto parts = PartitionByLabelShards(pool, 5, 2, &rng);
  size_t total = 0;
  for (const Dataset& p : parts) total += p.num_samples();
  EXPECT_EQ(total, 200u);
}

TEST(PartitionTest, DeterministicGivenRngSeed) {
  Dataset pool = MakePool(100, 11);
  Rng rng_a(5), rng_b(5);
  auto a = PartitionIid(pool, 3, &rng_a);
  auto b = PartitionIid(pool, 3, &rng_b);
  for (size_t k = 0; k < a.size(); ++k) {
    EXPECT_TRUE(a[k].features() == b[k].features());
  }
}

TEST(NoiseTest, GaussianNoiseCorruptsRequestedFraction) {
  Dataset d = MakePool(200, 13);
  Dataset original = d;
  Rng rng(6);
  const int corrupted = AddGaussianFeatureNoise(&d, 0.25, 2.0, &rng);
  EXPECT_EQ(corrupted, 50);
  // Exactly `corrupted` rows should differ.
  int differing = 0;
  for (size_t i = 0; i < d.num_samples(); ++i) {
    for (size_t j = 0; j < d.dim(); ++j) {
      if (d.sample(i)[j] != original.sample(i)[j]) {
        ++differing;
        break;
      }
    }
  }
  EXPECT_EQ(differing, 50);
  // Labels untouched.
  EXPECT_EQ(d.labels(), original.labels());
}

TEST(NoiseTest, ZeroFractionIsNoOp) {
  Dataset d = MakePool(50, 15);
  Dataset original = d;
  Rng rng(7);
  EXPECT_EQ(AddGaussianFeatureNoise(&d, 0.0, 1.0, &rng), 0);
  EXPECT_TRUE(d.features() == original.features());
  EXPECT_EQ(FlipLabels(&d, 0.0, &rng), 0);
  EXPECT_EQ(d.labels(), original.labels());
}

TEST(NoiseTest, FlipLabelsChangesExactlyChosenFraction) {
  Dataset d = MakePool(300, 17);
  Dataset original = d;
  Rng rng(8);
  const int flipped = FlipLabels(&d, 0.3, &rng);
  EXPECT_EQ(flipped, 90);
  int changed = 0;
  for (size_t i = 0; i < d.num_samples(); ++i) {
    if (d.label(i) != original.label(i)) ++changed;
  }
  // Every flipped label must actually change class.
  EXPECT_EQ(changed, 90);
  // Features untouched.
  EXPECT_TRUE(d.features() == original.features());
}

TEST(NoiseTest, FlippedLabelsStayInRange) {
  Dataset d = MakePool(100, 19);
  Rng rng(9);
  FlipLabels(&d, 1.0, &rng);
  for (int y : d.labels()) {
    EXPECT_GE(y, 0);
    EXPECT_LT(y, d.num_classes());
  }
}

}  // namespace
}  // namespace comfedsv
