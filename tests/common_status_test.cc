#include "common/status.h"

#include <gtest/gtest.h>

#include <string>

namespace comfedsv {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, FactoryConstructorsSetCodeAndMessage) {
  EXPECT_EQ(Status::InvalidArgument("bad").code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(Status::OutOfRange("x").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(Status::FailedPrecondition("x").code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(Status::NotFound("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(Status::Internal("x").code(), StatusCode::kInternal);
  EXPECT_EQ(Status::NotImplemented("x").code(), StatusCode::kNotImplemented);
  EXPECT_EQ(Status::NumericalError("x").code(), StatusCode::kNumericalError);
  EXPECT_EQ(Status::DataLoss("x").code(), StatusCode::kDataLoss);
  EXPECT_EQ(Status::Unavailable("x").code(), StatusCode::kUnavailable);
  EXPECT_EQ(Status::InvalidArgument("bad").message(), "bad");
}

TEST(StatusTest, ToStringIncludesCodeNameAndMessage) {
  Status s = Status::NotFound("missing key");
  EXPECT_EQ(s.ToString(), "NotFound: missing key");
}

TEST(StatusTest, EqualityComparesCodeAndMessage) {
  EXPECT_EQ(Status::Internal("a"), Status::Internal("a"));
  EXPECT_FALSE(Status::Internal("a") == Status::Internal("b"));
  EXPECT_FALSE(Status::Internal("a") == Status::NotFound("a"));
}

TEST(StatusTest, StatusCodeNameCoversAllCodes) {
  EXPECT_STREQ(StatusCodeName(StatusCode::kOk), "OK");
  EXPECT_STREQ(StatusCodeName(StatusCode::kNumericalError),
               "NumericalError");
  EXPECT_STREQ(StatusCodeName(StatusCode::kDataLoss), "DataLoss");
  EXPECT_STREQ(StatusCodeName(StatusCode::kUnavailable), "Unavailable");
}

TEST(ResultTest, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 42);
  EXPECT_TRUE(r.status().ok());
}

TEST(ResultTest, HoldsError) {
  Result<int> r(Status::NotFound("nope"));
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
  EXPECT_EQ(r.value_or(-1), -1);
}

TEST(ResultTest, ValueOrReturnsValueOnSuccess) {
  Result<std::string> r(std::string("hello"));
  EXPECT_EQ(r.value_or("fallback"), "hello");
}

TEST(ResultTest, ConstructingFromOkStatusBecomesInternalError) {
  Result<int> r{Status::Ok()};
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInternal);
}

TEST(ResultTest, MoveOutValue) {
  Result<std::string> r(std::string("payload"));
  std::string moved = std::move(r).value();
  EXPECT_EQ(moved, "payload");
}

Status FailsThenPropagates(bool fail) {
  COMFEDSV_RETURN_IF_ERROR(fail ? Status::Internal("inner") : Status::Ok());
  return Status::NotFound("outer");
}

TEST(StatusTest, ReturnIfErrorMacroPropagates) {
  EXPECT_EQ(FailsThenPropagates(true).code(), StatusCode::kInternal);
  EXPECT_EQ(FailsThenPropagates(false).code(), StatusCode::kNotFound);
}

}  // namespace
}  // namespace comfedsv
