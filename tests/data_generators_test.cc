// Tests for the synthetic (FedProx-style) and simulated-image generators.
#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "data/image_sim.h"
#include "data/synthetic.h"
#include "models/logistic.h"

namespace comfedsv {
namespace {

TEST(SyntheticTest, ShapesAndDeterminism) {
  SyntheticConfig cfg;
  cfg.num_clients = 5;
  cfg.samples_per_client = 40;
  cfg.dim = 10;
  cfg.num_classes = 4;
  cfg.seed = 9;
  auto clients = GenerateSyntheticFederated(cfg);
  ASSERT_EQ(clients.size(), 5u);
  for (const Dataset& d : clients) {
    EXPECT_EQ(d.num_samples(), 40u);
    EXPECT_EQ(d.dim(), 10u);
    EXPECT_EQ(d.num_classes(), 4);
  }
  auto clients2 = GenerateSyntheticFederated(cfg);
  EXPECT_TRUE(clients[2].features() == clients2[2].features());
  EXPECT_EQ(clients[2].labels(), clients2[2].labels());
}

TEST(SyntheticTest, SeedChangesData) {
  SyntheticConfig cfg;
  cfg.seed = 1;
  auto a = GenerateSyntheticFederated(cfg);
  cfg.seed = 2;
  auto b = GenerateSyntheticFederated(cfg);
  EXPECT_FALSE(a[0].features() == b[0].features());
}

TEST(SyntheticTest, IidClientsShareLabelDistribution) {
  SyntheticConfig cfg;
  cfg.iid = true;
  cfg.alpha = 0.0;
  cfg.beta = 0.0;
  cfg.num_clients = 6;
  cfg.samples_per_client = 600;
  cfg.seed = 4;
  auto clients = GenerateSyntheticFederated(cfg);
  // Under the shared model, per-class frequencies should be similar
  // across clients (total-variation distance small).
  auto freq = [&](const Dataset& d) {
    std::vector<double> f(d.num_classes(), 0.0);
    for (int y : d.labels()) f[y] += 1.0 / d.num_samples();
    return f;
  };
  auto f0 = freq(clients[0]);
  for (size_t k = 1; k < clients.size(); ++k) {
    auto fk = freq(clients[k]);
    double tv = 0.0;
    for (size_t c = 0; c < f0.size(); ++c) tv += std::fabs(f0[c] - fk[c]);
    EXPECT_LT(tv / 2.0, 0.15) << "client " << k;
  }
}

TEST(SyntheticTest, NonIidClientsDivergeMoreThanIid) {
  auto label_divergence = [](const std::vector<Dataset>& clients) {
    // Mean pairwise total-variation distance between label histograms.
    std::vector<std::vector<double>> freqs;
    for (const Dataset& d : clients) {
      std::vector<double> f(d.num_classes(), 0.0);
      for (int y : d.labels()) f[y] += 1.0 / d.num_samples();
      freqs.push_back(f);
    }
    double total = 0.0;
    int pairs = 0;
    for (size_t a = 0; a < freqs.size(); ++a) {
      for (size_t b = a + 1; b < freqs.size(); ++b) {
        double tv = 0.0;
        for (size_t c = 0; c < freqs[a].size(); ++c) {
          tv += std::fabs(freqs[a][c] - freqs[b][c]);
        }
        total += tv / 2.0;
        ++pairs;
      }
    }
    return total / pairs;
  };

  SyntheticConfig iid;
  iid.iid = true;
  iid.num_clients = 8;
  iid.samples_per_client = 300;
  iid.seed = 3;
  SyntheticConfig noniid;
  noniid.iid = false;
  noniid.alpha = 1.0;
  noniid.beta = 1.0;
  noniid.num_clients = 8;
  noniid.samples_per_client = 300;
  noniid.seed = 3;
  EXPECT_GT(label_divergence(GenerateSyntheticFederated(noniid)),
            label_divergence(GenerateSyntheticFederated(iid)));
}

TEST(ImageSimTest, DimsAndBalance) {
  SimulatedImageConfig cfg;
  cfg.family = ImageFamily::kMnist;
  cfg.num_samples = 500;
  cfg.image_side = 8;
  cfg.seed = 7;
  EXPECT_EQ(SimulatedImageDim(cfg), 64);
  Dataset d = GenerateSimulatedImages(cfg);
  EXPECT_EQ(d.num_samples(), 500u);
  EXPECT_EQ(d.dim(), 64u);
  std::vector<int> hist = d.ClassHistogram();
  for (int c = 0; c < 10; ++c) EXPECT_EQ(hist[c], 50) << "class " << c;
}

TEST(ImageSimTest, CifarHasThreeChannels) {
  SimulatedImageConfig cfg;
  cfg.family = ImageFamily::kCifar10;
  cfg.image_side = 8;
  EXPECT_EQ(SimulatedImageDim(cfg), 192);
}

TEST(ImageSimTest, FamilyNames) {
  EXPECT_EQ(ImageFamilyName(ImageFamily::kMnist), "mnist-sim");
  EXPECT_EQ(ImageFamilyName(ImageFamily::kFashionMnist), "fmnist-sim");
  EXPECT_EQ(ImageFamilyName(ImageFamily::kCifar10), "cifar10-sim");
}

TEST(ImageSimTest, SameSeedReproduces) {
  SimulatedImageConfig cfg;
  cfg.num_samples = 100;
  cfg.seed = 42;
  Dataset a = GenerateSimulatedImages(cfg);
  Dataset b = GenerateSimulatedImages(cfg);
  EXPECT_TRUE(a.features() == b.features());
  EXPECT_EQ(a.labels(), b.labels());
}

TEST(ImageSimTest, DifferentSeedsShareDistributionNotSamples) {
  SimulatedImageConfig cfg;
  cfg.num_samples = 200;
  cfg.seed = 1;
  Dataset a = GenerateSimulatedImages(cfg);
  cfg.seed = 2;
  Dataset b = GenerateSimulatedImages(cfg);
  EXPECT_FALSE(a.features() == b.features());
  // Prototypes are seed-independent: class means should be close.
  auto class_mean = [](const Dataset& d, int cls) {
    Vector mean(d.dim());
    int count = 0;
    for (size_t i = 0; i < d.num_samples(); ++i) {
      if (d.label(i) != cls) continue;
      for (size_t j = 0; j < d.dim(); ++j) mean[j] += d.sample(i)[j];
      ++count;
    }
    mean.Scale(1.0 / count);
    return mean;
  };
  for (int cls : {0, 5, 9}) {
    Vector ma = class_mean(a, cls);
    Vector mb = class_mean(b, cls);
    EXPECT_LT(Distance(ma, mb) / std::max(1.0, ma.Norm2()), 0.8)
        << "class " << cls;
  }
}

class ImageFamilyLearnabilityTest
    : public ::testing::TestWithParam<ImageFamily> {};

TEST_P(ImageFamilyLearnabilityTest, LogisticBeatsChanceByWideMargin) {
  SimulatedImageConfig cfg;
  cfg.family = GetParam();
  cfg.num_samples = 800;
  cfg.seed = 11;
  Dataset all = GenerateSimulatedImages(cfg);
  Rng rng(12);
  auto [train, test] = all.RandomSplit(0.25, &rng);

  LogisticRegression model(train.dim(), 10, /*l2_penalty=*/1e-4);
  Vector params;
  model.InitializeParams(&params, &rng);
  Vector grad;
  for (int it = 0; it < 150; ++it) {
    model.LossAndGradient(params, train, &grad);
    params.Axpy(-0.5, grad);
  }
  // Chance is 0.1; every family should be clearly learnable.
  EXPECT_GT(model.Accuracy(params, test), 0.5)
      << ImageFamilyName(GetParam());
}

INSTANTIATE_TEST_SUITE_P(AllFamilies, ImageFamilyLearnabilityTest,
                         ::testing::Values(ImageFamily::kMnist,
                                           ImageFamily::kFashionMnist,
                                           ImageFamily::kCifar10));

}  // namespace
}  // namespace comfedsv
