// FedSV (Definition 2) tests: hand-computed rounds, properties within a
// round, and the unfairness phenomenon from Observation 1 / Example 1.
#include "shapley/fedsv.h"

#include <gtest/gtest.h>

#include <cmath>

#include "data/image_sim.h"
#include "data/partition.h"
#include "fl/fedavg.h"
#include "metrics/metrics.h"
#include "models/logistic.h"
#include "shapley/utility.h"

namespace comfedsv {
namespace {

// A 1-parameter "model" whose loss is (w - target)^2 over a dataset with
// a single scalar feature acting as the target. This makes round
// utilities analytically computable.
class QuadraticModel : public Model {
 public:
  size_t num_params() const override { return 1; }
  size_t input_dim() const override { return 1; }
  int num_classes() const override { return 2; }
  std::string name() const override { return "quadratic"; }

  double Loss(const Vector& params, const Dataset& data) const override {
    double acc = 0.0;
    for (size_t i = 0; i < data.num_samples(); ++i) {
      const double d = params[0] - data.sample(i)[0];
      acc += d * d;
    }
    return data.empty() ? 0.0 : acc / data.num_samples();
  }

  double LossAndGradient(const Vector& params, const Dataset& data,
                         Vector* grad) const override {
    grad->Resize(1);
    (*grad)[0] = 0.0;
    for (size_t i = 0; i < data.num_samples(); ++i) {
      (*grad)[0] += 2.0 * (params[0] - data.sample(i)[0]);
    }
    if (!data.empty()) (*grad)[0] /= data.num_samples();
    return Loss(params, data);
  }

  int Predict(const Vector&, const double*) const override { return 0; }
};

Dataset ScalarDataset(std::vector<double> targets) {
  Matrix feats(targets.size(), 1);
  std::vector<int> labels(targets.size(), 0);
  for (size_t i = 0; i < targets.size(); ++i) feats(i, 0) = targets[i];
  return Dataset(std::move(feats), std::move(labels), 2);
}

RoundRecord MakeRecord(double global, std::vector<double> locals,
                       std::vector<int> selected, const Model& model,
                       const Dataset& test) {
  RoundRecord rec;
  rec.round = 0;
  rec.global_before = Vector{global};
  for (double w : locals) rec.local_models.push_back(Vector{w});
  rec.selected = std::move(selected);
  rec.test_loss_before = model.Loss(rec.global_before, test);
  return rec;
}

TEST(RoundUtilityTest, MatchesHandComputation) {
  QuadraticModel model;
  Dataset test = ScalarDataset({1.0});  // loss(w) = (w-1)^2
  // Global w=0 (loss 1). Locals: w0=1 (loss 0), w1=0.5 (loss 0.25).
  RoundRecord rec = MakeRecord(0.0, {1.0, 0.5}, {0, 1}, model, test);
  int64_t calls = 0;
  RoundUtility util(&model, &test, &rec, &calls);

  EXPECT_DOUBLE_EQ(util.Utility(Coalition(2)), 0.0);  // empty
  // U({0}) = 1 - 0 = 1.
  EXPECT_DOUBLE_EQ(util.Utility(Coalition::FromMembers(2, {0})), 1.0);
  // U({1}) = 1 - 0.25 = 0.75.
  EXPECT_DOUBLE_EQ(util.Utility(Coalition::FromMembers(2, {1})), 0.75);
  // U({0,1}): mean model = 0.75, loss = 0.0625, utility = 0.9375.
  EXPECT_DOUBLE_EQ(util.Utility(Coalition::FromMembers(2, {0, 1})),
                   0.9375);
  EXPECT_EQ(calls, 3);  // empty coalition costs nothing
}

TEST(RoundUtilityTest, MemoizesRepeatedQueries) {
  QuadraticModel model;
  Dataset test = ScalarDataset({2.0});
  RoundRecord rec = MakeRecord(0.0, {1.0, 2.0}, {0, 1}, model, test);
  int64_t calls = 0;
  RoundUtility util(&model, &test, &rec, &calls);
  Coalition c = Coalition::FromMembers(2, {0, 1});
  const double u1 = util.Utility(c);
  const double u2 = util.Utility(c);
  EXPECT_DOUBLE_EQ(u1, u2);
  EXPECT_EQ(calls, 1);
  EXPECT_EQ(util.distinct_evaluations(), 1);
}

TEST(FedSvRoundTest, HandComputedTwoClientRound) {
  // Round Shapley over I_t = {0, 1}:
  //   phi_0 = 1/2 [U({0}) - U({})] + 1/2 [U({0,1}) - U({1})]
  QuadraticModel model;
  Dataset test = ScalarDataset({1.0});
  RoundRecord rec = MakeRecord(0.0, {1.0, 0.5}, {0, 1}, model, test);
  FedSvConfig cfg;
  cfg.mode = FedSvConfig::Mode::kExact;
  FedSvEvaluator eval(&model, &test, 2, cfg);
  eval.OnRound(rec);
  const double u0 = 1.0, u1 = 0.75, u01 = 0.9375;
  EXPECT_NEAR(eval.values()[0], 0.5 * u0 + 0.5 * (u01 - u1), 1e-12);
  EXPECT_NEAR(eval.values()[1], 0.5 * u1 + 0.5 * (u01 - u0), 1e-12);
}

TEST(FedSvRoundTest, UnselectedClientGetsZero) {
  QuadraticModel model;
  Dataset test = ScalarDataset({1.0});
  RoundRecord rec = MakeRecord(0.0, {1.0, 0.5, 0.9}, {0, 2}, model, test);
  FedSvConfig cfg;
  FedSvEvaluator eval(&model, &test, 3, cfg);
  eval.OnRound(rec);
  EXPECT_DOUBLE_EQ(eval.values()[1], 0.0);
  EXPECT_NE(eval.values()[0], 0.0);
}

TEST(FedSvRoundTest, ValuesAccumulateAcrossRounds) {
  QuadraticModel model;
  Dataset test = ScalarDataset({1.0});
  RoundRecord rec = MakeRecord(0.0, {1.0, 0.5}, {0, 1}, model, test);
  FedSvConfig cfg;
  FedSvEvaluator eval(&model, &test, 2, cfg);
  eval.OnRound(rec);
  const double after_one = eval.values()[0];
  eval.OnRound(rec);
  EXPECT_NEAR(eval.values()[0], 2.0 * after_one, 1e-12);
}

TEST(FedSvRoundTest, RoundBalanceEqualsSelectedUtility) {
  // Within a round, sum of FedSVs over I_t equals U_t(I_t).
  QuadraticModel model;
  Dataset test = ScalarDataset({1.0, 3.0});
  RoundRecord rec =
      MakeRecord(0.2, {1.1, 0.4, 2.2}, {0, 1, 2}, model, test);
  FedSvConfig cfg;
  FedSvEvaluator eval(&model, &test, 3, cfg);
  eval.OnRound(rec);
  int64_t calls = 0;
  RoundUtility util(&model, &test, &rec, &calls);
  const double full = util.Utility(Coalition::FromMembers(3, {0, 1, 2}));
  EXPECT_NEAR(eval.values().Sum(), full, 1e-10);
}

TEST(FedSvRoundTest, EmptySelectedRoundIsSkippedInBothModes) {
  // Bernoulli-style selection can produce a round with no selected
  // clients; the evaluator must record zero contribution for it instead
  // of crashing on the estimators' "no players" guard, and later rounds
  // must keep accumulating normally.
  QuadraticModel model;
  Dataset test = ScalarDataset({1.0});
  RoundRecord empty_rec = MakeRecord(0.0, {1.0, 0.5}, {}, model, test);
  RoundRecord real_rec = MakeRecord(0.0, {1.0, 0.5}, {0, 1}, model, test);

  for (FedSvConfig::Mode mode :
       {FedSvConfig::Mode::kExact, FedSvConfig::Mode::kMonteCarlo}) {
    FedSvConfig cfg;
    cfg.mode = mode;
    cfg.permutations_per_round = 8;
    FedSvEvaluator eval(&model, &test, 2, cfg);
    eval.OnRound(empty_rec);
    EXPECT_DOUBLE_EQ(eval.values()[0], 0.0);
    EXPECT_DOUBLE_EQ(eval.values()[1], 0.0);
    EXPECT_EQ(eval.loss_calls(), 0);

    eval.OnRound(real_rec);
    EXPECT_NE(eval.values()[0], 0.0);
    const double after_real = eval.values()[0];
    eval.OnRound(empty_rec);  // still a no-op between real rounds
    EXPECT_DOUBLE_EQ(eval.values()[0], after_real);
  }
}

TEST(FedSvRoundTest, MonteCarloApproximatesExact) {
  QuadraticModel model;
  Dataset test = ScalarDataset({1.0});
  RoundRecord rec =
      MakeRecord(0.0, {0.9, 0.5, 0.2, 0.7}, {0, 1, 2, 3}, model, test);
  FedSvConfig exact_cfg;
  exact_cfg.mode = FedSvConfig::Mode::kExact;
  FedSvEvaluator exact(&model, &test, 4, exact_cfg);
  exact.OnRound(rec);

  FedSvConfig mc_cfg;
  mc_cfg.mode = FedSvConfig::Mode::kMonteCarlo;
  mc_cfg.permutations_per_round = 4000;
  mc_cfg.seed = 3;
  FedSvEvaluator mc(&model, &test, 4, mc_cfg);
  mc.OnRound(rec);
  for (int i = 0; i < 4; ++i) {
    EXPECT_NEAR(mc.values()[i], exact.values()[i], 0.01) << i;
  }
}

TEST(FedSvUnfairnessTest, IdenticalClientsDivergeUnderPartialSelection) {
  // Example 1 scaled down: clients 0 and N-1 share identical data; under
  // 3-of-10 selection their FedSVs differ in most runs while full
  // participation keeps them exactly equal.
  SimulatedImageConfig icfg;
  icfg.num_samples = 660;
  icfg.seed = 55;
  Dataset pool = GenerateSimulatedImages(icfg);
  Rng rng(56);
  auto [train_pool, test] = pool.RandomSplit(0.2, &rng);
  auto clients = PartitionByLabelShards(train_pool, 9, 2, &rng);
  clients.push_back(clients[0]);  // client 9 duplicates client 0

  LogisticRegression model(test.dim(), 10, 1e-4);

  auto run_trial = [&](int clients_per_round, uint64_t seed) {
    FedAvgConfig fcfg;
    fcfg.num_rounds = 5;
    fcfg.clients_per_round = clients_per_round;
    fcfg.select_all_first_round = false;
    fcfg.lr = LearningRateSchedule::Constant(0.3);
    fcfg.seed = seed;
    FedSvConfig scfg;
    FedSvEvaluator eval(&model, &test, 10, scfg);
    FedAvgTrainer trainer(&model, clients, test, fcfg);
    COMFEDSV_CHECK_OK(trainer.Train(&eval).status());
    return RelativeDifference(eval.values()[0], eval.values()[9]);
  };

  // Full participation: identical data => identical values (symmetry of
  // the exact per-round Shapley).
  EXPECT_NEAR(run_trial(10, 100), 0.0, 1e-9);

  // Partial participation: the relative difference is large in most
  // trials (Example 1 reports P(d > 0.5) ~ 65%).
  int large = 0;
  const int trials = 8;
  for (int t = 0; t < trials; ++t) {
    if (run_trial(3, 200 + t) > 0.5) ++large;
  }
  EXPECT_GE(large, trials / 2);
}

}  // namespace
}  // namespace comfedsv
