// Parameterized property sweeps across configurations:
//   * gradient correctness across model families and sizes;
//   * Shapley axioms (efficiency, symmetry, dummy) across game types;
//   * completion recovery across ranks and densities;
//   * FedAvg determinism across thread counts.
#include <gtest/gtest.h>

#include <cmath>
#include <tuple>

#include "completion/solver.h"
#include "data/image_sim.h"
#include "data/partition.h"
#include "fl/fedavg.h"
#include "models/cnn.h"
#include "models/gradient_check.h"
#include "models/logistic.h"
#include "models/mlp.h"
#include "shapley/shapley.h"

namespace comfedsv {
namespace {

// ---------------------------------------------------------------------
// Gradient sweeps: (model family, input dim proxy, classes).

class GradientSweep
    : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(GradientSweep, LogisticGradientMatchesFiniteDifference) {
  auto [dim, classes, seed] = GetParam();
  LogisticRegression model(dim, classes, 0.5e-2);
  Rng rng(seed);
  Matrix feats(7, dim);
  std::vector<int> labels(7);
  for (int i = 0; i < 7; ++i) {
    for (int j = 0; j < dim; ++j) feats(i, j) = rng.NextGaussian();
    labels[i] = static_cast<int>(rng.NextUint64(classes));
  }
  Dataset data(std::move(feats), std::move(labels), classes);
  Vector params;
  model.InitializeParams(&params, &rng, 0.4);
  EXPECT_LT(MaxRelativeGradientError(model, params, data), 1e-6);
}

TEST_P(GradientSweep, MlpGradientMatchesFiniteDifference) {
  auto [dim, classes, seed] = GetParam();
  Mlp model({static_cast<size_t>(dim), 6, static_cast<size_t>(classes)},
            1e-3);
  Rng rng(seed + 100);
  Matrix feats(6, dim);
  std::vector<int> labels(6);
  for (int i = 0; i < 6; ++i) {
    for (int j = 0; j < dim; ++j) feats(i, j) = rng.NextGaussian();
    labels[i] = static_cast<int>(rng.NextUint64(classes));
  }
  Dataset data(std::move(feats), std::move(labels), classes);
  Vector params;
  model.InitializeParams(&params, &rng, 0.4);
  EXPECT_LT(MaxRelativeGradientError(model, params, data), 1e-5);
}

INSTANTIATE_TEST_SUITE_P(
    DimsAndClasses, GradientSweep,
    ::testing::Values(std::make_tuple(3, 2, 1), std::make_tuple(8, 3, 2),
                      std::make_tuple(12, 5, 3),
                      std::make_tuple(20, 10, 4)));

// ---------------------------------------------------------------------
// Shapley axioms across random games.

class ShapleyAxiomSweep : public ::testing::TestWithParam<int> {};

TEST_P(ShapleyAxiomSweep, EfficiencyHoldsForRandomGames) {
  const int seed = GetParam();
  Rng rng(seed);
  const int m = 5;
  // Random game: value indexed by coalition bitmask over the players.
  std::vector<double> values(1u << m);
  for (auto& v : values) v = rng.NextGaussian();
  values[0] = 0.0;
  std::vector<int> players = {0, 1, 2, 3, 4};
  UtilityFn game = [&](const Coalition& c) {
    uint32_t mask = 0;
    for (int p : c.Members()) mask |= (1u << p);
    return values[mask];
  };
  Result<Vector> phi = ExactShapley(m, players, game);
  ASSERT_TRUE(phi.ok());
  EXPECT_NEAR(phi.value().Sum(), values[(1u << m) - 1], 1e-10);
}

TEST_P(ShapleyAxiomSweep, DummyAxiomHoldsForRandomGames) {
  const int seed = GetParam();
  Rng rng(seed + 31);
  const int m = 5;
  // Game that ignores player 2 entirely.
  std::vector<double> values(1u << (m - 1));
  for (auto& v : values) v = rng.NextGaussian();
  values[0] = 0.0;
  std::vector<int> players = {0, 1, 2, 3, 4};
  UtilityFn game = [&](const Coalition& c) {
    uint32_t mask = 0;
    int bit = 0;
    for (int p : {0, 1, 3, 4}) {
      if (c.Contains(p)) mask |= (1u << bit);
      ++bit;
    }
    return values[mask];
  };
  Result<Vector> phi = ExactShapley(m, players, game);
  ASSERT_TRUE(phi.ok());
  EXPECT_NEAR(phi.value()[2], 0.0, 1e-10);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ShapleyAxiomSweep,
                         ::testing::Range(1, 9));

// ---------------------------------------------------------------------
// Completion recovery sweep: (rank, density).

class CompletionSweep
    : public ::testing::TestWithParam<std::tuple<int, double>> {};

TEST_P(CompletionSweep, AlsWithSmoothingRecoversLowRank) {
  auto [rank, density] = GetParam();
  Rng rng(static_cast<uint64_t>(rank * 100 + density * 10));
  Matrix a(25, rank), b(rank, 20);
  for (size_t i = 0; i < a.rows(); ++i) {
    for (int k = 0; k < rank; ++k) a(i, k) = rng.NextGaussian();
  }
  for (int k = 0; k < rank; ++k) {
    for (size_t j = 0; j < b.cols(); ++j) b(k, j) = rng.NextGaussian();
  }
  Matrix truth = Matrix::Multiply(a, b);
  // Coverage guarantees (one entry per row and column) + Bernoulli
  // sampling on top.
  ObservationSet clean(25, 20);
  for (int i = 0; i < 25; ++i) {
    int j = static_cast<int>(rng.NextUint64(20));
    clean.Add(i, j, truth(i, j));
  }
  for (int j = 0; j < 20; ++j) {
    int i = static_cast<int>(rng.NextUint64(25));
    clean.Add(i, j, truth(i, j));
  }
  for (int i = 0; i < 25; ++i) {
    for (int j = 0; j < 20; ++j) {
      if (rng.NextBernoulli(density)) clean.Add(i, j, truth(i, j));
    }
  }
  clean.Finalize();
  CompletionConfig cfg;
  cfg.rank = rank;
  cfg.lambda = 1e-1;
  cfg.max_iters = 300;
  Result<CompletionResult> fit = CompleteMatrix(clean, cfg);
  ASSERT_TRUE(fit.ok());
  Matrix approx =
      Matrix::Multiply(fit.value().w, fit.value().h.Transpose());
  EXPECT_LT(approx.FrobeniusDistance(truth) / truth.FrobeniusNorm(), 0.2)
      << "rank=" << rank << " density=" << density;
}

INSTANTIATE_TEST_SUITE_P(
    RankDensity, CompletionSweep,
    ::testing::Values(std::make_tuple(1, 0.4), std::make_tuple(2, 0.5),
                      std::make_tuple(3, 0.6), std::make_tuple(2, 0.8)));

// ---------------------------------------------------------------------
// FedAvg determinism across thread counts.

class ThreadSweep : public ::testing::TestWithParam<int> {};

TEST_P(ThreadSweep, TrainingIsThreadCountInvariant) {
  SimulatedImageConfig icfg;
  icfg.num_samples = 300;
  icfg.seed = 77;
  Dataset pool = GenerateSimulatedImages(icfg);
  Rng rng(78);
  auto [train_pool, test] = pool.RandomSplit(0.2, &rng);
  auto clients = PartitionIid(train_pool, 4, &rng);
  LogisticRegression model(pool.dim(), 10);

  FedAvgConfig cfg;
  cfg.num_rounds = 3;
  cfg.clients_per_round = 2;
  cfg.seed = 79;
  FedAvgTrainer reference(&model, clients, test, cfg);
  Result<TrainingResult> ref = reference.Train();
  ASSERT_TRUE(ref.ok());

  ExecutionContext ctx(GetParam());
  FedAvgTrainer threaded(&model, clients, test, cfg, &ctx);
  Result<TrainingResult> got = threaded.Train();
  ASSERT_TRUE(got.ok());
  EXPECT_TRUE(ref.value().final_params == got.value().final_params);
}

INSTANTIATE_TEST_SUITE_P(Threads, ThreadSweep, ::testing::Values(2, 3, 8));

}  // namespace
}  // namespace comfedsv
