// Tests for ThreadPool, Stopwatch, Table, and logging.
#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <vector>

#include "common/logging.h"
#include "common/stopwatch.h"
#include "common/table.h"
#include "common/thread_pool.h"

namespace comfedsv {
namespace {

TEST(ThreadPoolTest, InlinePoolRunsTasksImmediately) {
  ThreadPool pool(0);
  int counter = 0;
  pool.Submit([&] { ++counter; });
  EXPECT_EQ(counter, 1);
  pool.Wait();  // no-op
  EXPECT_EQ(pool.num_threads(), 0);
}

TEST(ThreadPoolTest, RunsAllSubmittedTasks) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; ++i) {
    pool.Submit([&counter] { counter.fetch_add(1); });
  }
  pool.Wait();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPoolTest, ParallelForCoversAllIndicesExactlyOnce) {
  ThreadPool pool(3);
  std::vector<std::atomic<int>> hits(257);
  pool.ParallelFor(257, [&](int i) { hits[i].fetch_add(1); });
  for (int i = 0; i < 257; ++i) EXPECT_EQ(hits[i].load(), 1) << i;
}

TEST(ThreadPoolTest, ParallelForInlineMatchesThreaded) {
  ThreadPool inline_pool(1);
  ThreadPool threaded(4);
  std::vector<double> a(100, 0.0), b(100, 0.0);
  inline_pool.ParallelFor(100, [&](int i) { a[i] = i * i; });
  threaded.ParallelFor(100, [&](int i) { b[i] = i * i; });
  EXPECT_EQ(a, b);
}

TEST(ThreadPoolTest, ParallelForZeroAndNegativeAreNoOps) {
  ThreadPool pool(2);
  int counter = 0;
  pool.ParallelFor(0, [&](int) { ++counter; });
  pool.ParallelFor(-3, [&](int) { ++counter; });
  EXPECT_EQ(counter, 0);
}

TEST(ThreadPoolTest, WaitCanBeCalledRepeatedly) {
  ThreadPool pool(2);
  std::atomic<int> counter{0};
  pool.Submit([&] { counter.fetch_add(1); });
  pool.Wait();
  pool.Wait();
  pool.Submit([&] { counter.fetch_add(1); });
  pool.Wait();
  EXPECT_EQ(counter.load(), 2);
}

TEST(StopwatchTest, MeasuresNonNegativeIncreasingTime) {
  Stopwatch sw;
  const double t1 = sw.ElapsedSeconds();
  EXPECT_GE(t1, 0.0);
  volatile double sink = 0.0;
  for (int i = 0; i < 100000; ++i) sink = sink + i;
  const double t2 = sw.ElapsedSeconds();
  EXPECT_GE(t2, t1);
  sw.Reset();
  EXPECT_LE(sw.ElapsedSeconds(), t2 + 1.0);
}

TEST(TableTest, TextRenderingAlignsColumns) {
  Table t({"name", "value"});
  t.AddRow({"alpha", "1"});
  t.AddRow({"b", "22"});
  const std::string text = t.ToText();
  EXPECT_NE(text.find("| name  | value |"), std::string::npos);
  EXPECT_NE(text.find("| alpha | 1     |"), std::string::npos);
  EXPECT_EQ(t.num_rows(), 2u);
}

TEST(TableTest, CsvEscapesSpecialCells) {
  Table t({"a", "b"});
  t.AddRow({"x,y", "say \"hi\""});
  const std::string csv = t.ToCsv();
  EXPECT_NE(csv.find("\"x,y\""), std::string::npos);
  EXPECT_NE(csv.find("\"say \"\"hi\"\"\""), std::string::npos);
}

TEST(TableTest, NumFormatsWithPrecision) {
  EXPECT_EQ(Table::Num(1.0 / 3.0, 3), "0.333");
  EXPECT_EQ(Table::Num(1234567.0, 3), "1.23e+06");
}

TEST(LoggingTest, LevelFilteringIsRestorable) {
  const LogLevel original = GetLogLevel();
  SetLogLevel(LogLevel::kError);
  EXPECT_EQ(GetLogLevel(), LogLevel::kError);
  COMFEDSV_LOG(kInfo) << "suppressed message";
  SetLogLevel(original);
  EXPECT_EQ(GetLogLevel(), original);
}

}  // namespace
}  // namespace comfedsv
