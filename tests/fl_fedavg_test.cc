#include "fl/fedavg.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "data/image_sim.h"
#include "data/partition.h"
#include "data/synthetic.h"
#include "fl/selection.h"
#include "models/logistic.h"

namespace comfedsv {
namespace {

struct Workload {
  std::vector<Dataset> clients;
  Dataset test;
};

Workload MakeWorkload(int num_clients, uint64_t seed) {
  SimulatedImageConfig cfg;
  cfg.num_samples = 100 * num_clients + 200;
  cfg.seed = seed;
  Dataset pool = GenerateSimulatedImages(cfg);
  Rng rng(seed + 1);
  auto [train_pool, test] = pool.RandomSplit(0.2, &rng);
  return {PartitionIid(train_pool, num_clients, &rng), std::move(test)};
}

TEST(SelectionTest, UniformSelectorSizeAndRange) {
  UniformSelector sel(3);
  Rng rng(1);
  for (int round = 0; round < 20; ++round) {
    std::vector<int> picked = sel.Select(round, 10, &rng);
    EXPECT_EQ(picked.size(), 3u);
    std::set<int> uniq(picked.begin(), picked.end());
    EXPECT_EQ(uniq.size(), 3u);
    for (int c : picked) {
      EXPECT_GE(c, 0);
      EXPECT_LT(c, 10);
    }
  }
}

TEST(SelectionTest, UniformSelectorClampsToPopulation) {
  UniformSelector sel(10);
  Rng rng(2);
  EXPECT_EQ(sel.Select(0, 4, &rng).size(), 4u);
}

TEST(SelectionTest, EveryoneHeardFirstRoundIsFull) {
  auto sel = EveryoneHeardSelector(std::make_unique<UniformSelector>(2));
  Rng rng(3);
  std::vector<int> round0 = sel.Select(0, 6, &rng);
  EXPECT_EQ(round0.size(), 6u);
  for (int i = 0; i < 6; ++i) EXPECT_EQ(round0[i], i);
  EXPECT_EQ(sel.Select(1, 6, &rng).size(), 2u);
}

TEST(SelectionTest, UniformInclusionFrequency) {
  UniformSelector sel(3);
  Rng rng(5);
  std::vector<int> counts(10, 0);
  const int trials = 5000;
  for (int t = 0; t < trials; ++t) {
    for (int c : sel.Select(t, 10, &rng)) ++counts[c];
  }
  for (int c = 0; c < 10; ++c) {
    EXPECT_NEAR(counts[c] / static_cast<double>(trials), 0.3, 0.03);
  }
}

TEST(SelectionTest, BernoulliSelectorRangeAndEdgeProbabilities) {
  BernoulliSelector sel(0.4);
  Rng rng(3);
  int total = 0;
  for (int round = 0; round < 200; ++round) {
    std::vector<int> picked = sel.Select(round, 10, &rng);
    EXPECT_TRUE(std::is_sorted(picked.begin(), picked.end()));
    for (int c : picked) {
      EXPECT_GE(c, 0);
      EXPECT_LT(c, 10);
    }
    total += static_cast<int>(picked.size());
  }
  // 200 rounds x 10 clients x p=0.4: mean 800, far from the tails.
  EXPECT_GT(total, 650);
  EXPECT_LT(total, 950);

  BernoulliSelector none(0.0);
  EXPECT_TRUE(none.Select(0, 5, &rng).empty());
  BernoulliSelector all(1.0);
  EXPECT_EQ(all.Select(0, 5, &rng).size(), 5u);
}

TEST(FedAvgTest, SurvivesEmptySelectionRounds) {
  // A Bernoulli selector with p = 0 never selects anyone: the trainer
  // must carry the global model through unchanged (no aggregation, no
  // division by zero) while still notifying observers, which record zero
  // contribution for such rounds.
  Workload w = MakeWorkload(3, 77);
  LogisticRegression model(w.test.dim(), 10);
  FedAvgConfig cfg;
  cfg.num_rounds = 3;
  cfg.clients_per_round = 2;
  cfg.seed = 78;

  struct Capture : RoundObserver {
    std::vector<size_t> selected_sizes;
    std::vector<Vector> globals;
    void OnRound(const RoundRecord& r) override {
      selected_sizes.push_back(r.selected.size());
      globals.push_back(r.global_before);
    }
  } capture;

  BernoulliSelector never(0.0);
  FedAvgTrainer trainer(&model, w.clients, w.test, cfg);
  Result<TrainingResult> result = trainer.Train(&capture, &never);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_EQ(capture.selected_sizes.size(), 3u);
  for (size_t s : capture.selected_sizes) EXPECT_EQ(s, 0u);
  // The global model never moves.
  for (const Vector& g : capture.globals) {
    ASSERT_EQ(g.size(), capture.globals[0].size());
    for (size_t i = 0; i < g.size(); ++i) {
      EXPECT_EQ(g[i], capture.globals[0][i]);
    }
  }
  for (size_t i = 0; i < result.value().final_params.size(); ++i) {
    EXPECT_EQ(result.value().final_params[i], capture.globals[0][i]);
  }
}

TEST(FedAvgTest, RunsAndImprovesTestLoss) {
  Workload w = MakeWorkload(5, 11);
  LogisticRegression model(w.test.dim(), 10, 1e-4);
  FedAvgConfig cfg;
  cfg.num_rounds = 15;
  cfg.clients_per_round = 3;
  cfg.lr = LearningRateSchedule::Constant(0.5);
  cfg.seed = 12;
  FedAvgTrainer trainer(&model, w.clients, w.test, cfg);
  Result<TrainingResult> result = trainer.Train();
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  const auto& history = result.value().test_loss_history;
  ASSERT_EQ(history.size(), 16u);
  EXPECT_LT(history.back(), history.front() * 0.9);
  EXPECT_GT(result.value().final_test_accuracy, 0.3);
}

TEST(FedAvgTest, DeterministicGivenSeed) {
  Workload w = MakeWorkload(4, 13);
  LogisticRegression model(w.test.dim(), 10);
  FedAvgConfig cfg;
  cfg.num_rounds = 5;
  cfg.clients_per_round = 2;
  cfg.seed = 99;
  FedAvgTrainer t1(&model, w.clients, w.test, cfg);
  FedAvgTrainer t2(&model, w.clients, w.test, cfg);
  Result<TrainingResult> r1 = t1.Train();
  Result<TrainingResult> r2 = t2.Train();
  ASSERT_TRUE(r1.ok() && r2.ok());
  EXPECT_TRUE(r1.value().final_params == r2.value().final_params);
}

TEST(FedAvgTest, ThreadedMatchesSingleThreaded) {
  Workload w = MakeWorkload(6, 17);
  LogisticRegression model(w.test.dim(), 10);
  FedAvgConfig cfg;
  cfg.num_rounds = 4;
  cfg.clients_per_round = 3;
  cfg.seed = 7;
  FedAvgTrainer single(&model, w.clients, w.test, cfg);
  ExecutionContext ctx(4);
  FedAvgTrainer threaded(&model, w.clients, w.test, cfg, &ctx);
  Result<TrainingResult> r1 = single.Train();
  Result<TrainingResult> r2 = threaded.Train();
  ASSERT_TRUE(r1.ok() && r2.ok());
  EXPECT_TRUE(r1.value().final_params == r2.value().final_params);
}

// Records what the trainer reports to observers for structural checks.
class RecordingObserver : public RoundObserver {
 public:
  void OnRound(const RoundRecord& record) override {
    rounds.push_back(record.round);
    selected_sets.push_back(record.selected);
    num_local_models.push_back(record.local_models.size());
    global_norms.push_back(record.global_before.Norm2());
  }
  std::vector<int> rounds;
  std::vector<std::vector<int>> selected_sets;
  std::vector<size_t> num_local_models;
  std::vector<double> global_norms;
};

TEST(FedAvgTest, ObserverSeesAllRoundsAndAllClients) {
  Workload w = MakeWorkload(5, 19);
  LogisticRegression model(w.test.dim(), 10);
  FedAvgConfig cfg;
  cfg.num_rounds = 6;
  cfg.clients_per_round = 2;
  cfg.select_all_first_round = true;
  cfg.seed = 3;
  FedAvgTrainer trainer(&model, w.clients, w.test, cfg);
  RecordingObserver obs;
  ASSERT_TRUE(trainer.Train(&obs).ok());
  ASSERT_EQ(obs.rounds.size(), 6u);
  for (int t = 0; t < 6; ++t) EXPECT_EQ(obs.rounds[t], t);
  // Assumption 1: first round selects everyone.
  EXPECT_EQ(obs.selected_sets[0].size(), 5u);
  for (size_t t = 1; t < 6; ++t) {
    EXPECT_EQ(obs.selected_sets[t].size(), 2u);
  }
  // Every round exposes every client's local model.
  for (size_t t = 0; t < 6; ++t) EXPECT_EQ(obs.num_local_models[t], 5u);
}

TEST(FedAvgTest, AggregationIsMeanOfSelected) {
  // With one round and a custom observer we can recompute the aggregate.
  Workload w = MakeWorkload(4, 23);
  LogisticRegression model(w.test.dim(), 10);
  FedAvgConfig cfg;
  cfg.num_rounds = 1;
  cfg.clients_per_round = 4;
  cfg.seed = 5;

  class CaptureObserver : public RoundObserver {
   public:
    void OnRound(const RoundRecord& record) override { captured = record; }
    RoundRecord captured;
  } obs;

  FedAvgTrainer trainer(&model, w.clients, w.test, cfg);
  Result<TrainingResult> result = trainer.Train(&obs);
  ASSERT_TRUE(result.ok());
  Vector expected(obs.captured.global_before.size());
  for (int i : obs.captured.selected) {
    expected.Axpy(1.0, obs.captured.local_models[i]);
  }
  expected.Scale(1.0 / obs.captured.selected.size());
  EXPECT_LT(Distance(expected, result.value().final_params), 1e-12);
}

TEST(FedAvgTest, InvalidConfigsRejected) {
  Workload w = MakeWorkload(3, 29);
  LogisticRegression model(w.test.dim(), 10);
  FedAvgConfig cfg;
  cfg.num_rounds = 0;
  FedAvgTrainer t1(&model, w.clients, w.test, cfg);
  EXPECT_FALSE(t1.Train().ok());
  cfg.num_rounds = 2;
  cfg.clients_per_round = 99;
  FedAvgTrainer t2(&model, w.clients, w.test, cfg);
  EXPECT_FALSE(t2.Train().ok());
}

TEST(FedAvgTest, MiniBatchModeRuns) {
  Workload w = MakeWorkload(3, 31);
  LogisticRegression model(w.test.dim(), 10);
  FedAvgConfig cfg;
  cfg.num_rounds = 5;
  cfg.clients_per_round = 2;
  cfg.batch_size = 16;
  cfg.local_steps = 3;
  cfg.lr = LearningRateSchedule::Constant(0.3);
  cfg.seed = 6;
  FedAvgTrainer trainer(&model, w.clients, w.test, cfg);
  Result<TrainingResult> result = trainer.Train();
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value().rounds_run, 5);
}

TEST(LearningRateScheduleTest, ConstantAndInverseDecay) {
  auto constant = LearningRateSchedule::Constant(0.25);
  EXPECT_DOUBLE_EQ(constant.At(0), 0.25);
  EXPECT_DOUBLE_EQ(constant.At(100), 0.25);

  auto decay = LearningRateSchedule::InverseDecay(/*mu=*/2.0,
                                                  /*smoothness=*/4.0);
  // gamma = max(8*4/2, 1) = 16; eta_t = 2 / (2 * (16 + t + 1)).
  EXPECT_DOUBLE_EQ(decay.At(0), 2.0 / (2.0 * 17.0));
  EXPECT_GT(decay.At(0), decay.At(1));
  EXPECT_GT(decay.At(1), decay.At(10));
}

}  // namespace
}  // namespace comfedsv
