// Crash-consistency suite for the checkpoint pipeline: the failpoint
// registry, the fault-injecting FileEnv, the CheckpointManager's
// rotation / retry / salvage behaviors, and — the centerpiece — a
// crash-sweep harness that kills a checkpointed streaming run at every
// instrumented I/O operation, "reboots", recovers, and proves the final
// valuation bit-identical to an uninterrupted run.
#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/failpoint.h"
#include "core/pipeline.h"
#include "core/streaming.h"
#include "data/image_sim.h"
#include "data/partition.h"
#include "io/checkpoint_manager.h"
#include "io/file_env.h"
#include "io/serialize.h"
#include "models/logistic.h"

namespace comfedsv {
namespace {

namespace fs = std::filesystem;

class IoRecoveryTest : public ::testing::Test {
 protected:
  void SetUp() override {
    FailpointRegistry::Global().ClearAll();
    root_ = fs::path(::testing::TempDir()) /
            ("io_recovery_" +
             std::string(::testing::UnitTest::GetInstance()
                             ->current_test_info()
                             ->name()));
    fs::remove_all(root_);
    fs::create_directories(root_);
  }
  void TearDown() override {
    FailpointRegistry::Global().ClearAll();
    fs::remove_all(root_);
  }

  /// A fresh empty subdirectory of this test's scratch space.
  std::string Dir(const std::string& name) {
    const fs::path dir = root_ / name;
    fs::create_directories(dir);
    return dir.string();
  }

  fs::path root_;
};

CheckpointManagerOptions FastOptions(FileEnv* env, int keep = 2,
                                     int max_retries = 1,
                                     std::vector<int>* delays = nullptr) {
  CheckpointManagerOptions options;
  options.keep_generations = keep;
  options.max_retries = max_retries;
  options.retry_backoff_ms = 5;
  options.sleeper = [delays](int ms) {
    if (delays != nullptr) delays->push_back(ms);
  };
  options.env = env;
  return options;
}

void Arm(const char* name, FailpointTrigger trigger, FaultAction action,
         int64_t arg = 0) {
  FailpointRegistry::Global().Arm(name, trigger, static_cast<int>(action),
                                  arg);
}

// ---------------------------------------------------------------------
// Failpoint policy determinism.
// ---------------------------------------------------------------------

TEST_F(IoRecoveryTest, FailpointPoliciesAreDeterministic) {
  auto& registry = FailpointRegistry::Global();

  registry.Arm("t/onhit", FailpointTrigger::OnHit(3), 1, 42);
  for (int hit = 1; hit <= 6; ++hit) {
    auto fire = registry.Hit("t/onhit");
    if (hit == 3) {
      ASSERT_TRUE(fire.has_value());
      EXPECT_EQ(fire->action, 1);
      EXPECT_EQ(fire->arg, 42);
    } else {
      EXPECT_FALSE(fire.has_value()) << "hit " << hit;  // one-shot disarms
    }
  }

  registry.Arm("t/every", FailpointTrigger::EveryN(2), 1);
  for (int hit = 1; hit <= 6; ++hit) {
    EXPECT_EQ(registry.Hit("t/every").has_value(), hit % 2 == 0)
        << "hit " << hit;
  }

  // A seeded coin flip is replayable: re-arming with the same spec
  // reproduces the firing pattern bit for bit.
  std::vector<bool> first_pass;
  registry.Arm("t/coin", FailpointTrigger::WithProbability(0.5, 1234), 1);
  for (int hit = 0; hit < 64; ++hit) {
    first_pass.push_back(registry.Hit("t/coin").has_value());
  }
  registry.Arm("t/coin", FailpointTrigger::WithProbability(0.5, 1234), 1);
  for (int hit = 0; hit < 64; ++hit) {
    EXPECT_EQ(registry.Hit("t/coin").has_value(), first_pass[hit])
        << "hit " << hit;
  }
  const int fires = static_cast<int>(
      std::count(first_pass.begin(), first_pass.end(), true));
  EXPECT_GT(fires, 0);
  EXPECT_LT(fires, 64);
}

// ---------------------------------------------------------------------
// Checkpoint-load edge cases: each failure shape maps to the one status
// code the salvage logic keys off.
// ---------------------------------------------------------------------

TEST_F(IoRecoveryTest, LoadEdgeCasesMapToDistinctCodes) {
  const std::string dir = Dir("edges");

  // ENOENT: nothing was ever written.
  EXPECT_EQ(ReadCheckpointFile(dir + "/missing.ckpt", ChunkTag::kVector)
                .status()
                .code(),
            StatusCode::kNotFound);

  // Zero-length file: a crash right after open — corrupt, not missing.
  const std::string empty = dir + "/empty.ckpt";
  ASSERT_TRUE(FileEnv::Real()->WriteFile(empty, "").ok());
  EXPECT_EQ(ReadCheckpointFile(empty, ChunkTag::kVector).status().code(),
            StatusCode::kDataLoss);

  // The path names a directory: caller error, never salvageable.
  EXPECT_EQ(ReadCheckpointFile(dir, ChunkTag::kVector).status().code(),
            StatusCode::kInvalidArgument);

  // A directory holding only `.tmp` debris: the sweep clears it and the
  // load correctly reports "no checkpoint" rather than corruption.
  const std::string stem = dir + "/stream.ckpt";
  ASSERT_TRUE(FileEnv::Real()->WriteFile(stem + ".tmp", "debris").ok());
  CheckpointManager manager(stem, FastOptions(FileEnv::Real()));
  Result<int> swept = manager.SweepOrphans();
  ASSERT_TRUE(swept.ok());
  EXPECT_EQ(swept.value(), 1);
  EXPECT_FALSE(FileEnv::Real()->Exists(stem + ".tmp"));
  EXPECT_EQ(manager.Load(ChunkTag::kVector).status().code(),
            StatusCode::kNotFound);
}

TEST_F(IoRecoveryTest, SweepRemovesOnlyThisFamilysTempFiles) {
  const std::string dir = Dir("sweep");
  const std::string stem = dir + "/run.ckpt";
  FileEnv* real = FileEnv::Real();
  ASSERT_TRUE(real->WriteFile(stem + ".tmp", "a").ok());
  ASSERT_TRUE(real->WriteFile(stem + ".00000007.tmp", "b").ok());
  ASSERT_TRUE(real->WriteFile(dir + "/other.ckpt.tmp", "c").ok());
  ASSERT_TRUE(real->WriteFile(stem + ".notaseq.tmp", "d").ok());

  CheckpointManager manager(stem, FastOptions(real));
  Result<int> swept = manager.SweepOrphans();
  ASSERT_TRUE(swept.ok());
  EXPECT_EQ(swept.value(), 2);
  EXPECT_TRUE(real->Exists(dir + "/other.ckpt.tmp"));
  EXPECT_TRUE(real->Exists(stem + ".notaseq.tmp"));
}

// ---------------------------------------------------------------------
// Rotation, retry, salvage.
// ---------------------------------------------------------------------

TEST_F(IoRecoveryTest, RotationKeepsNewestGenerations) {
  const std::string stem = Dir("rotate") + "/v.ckpt";
  CheckpointManager manager(stem, FastOptions(FileEnv::Real(), 3));
  for (int i = 1; i <= 5; ++i) {
    ASSERT_TRUE(
        manager.Write(ChunkTag::kVector, "gen" + std::to_string(i)).ok());
  }
  auto generations = manager.ListGenerations();
  ASSERT_EQ(generations.size(), 3u);
  EXPECT_EQ(generations.front().first, 3u);
  EXPECT_EQ(generations.back().first, 5u);
  EXPECT_FALSE(FileEnv::Real()->Exists(stem));  // rotated, no bare file

  Result<CheckpointManager::LoadInfo> loaded =
      manager.Load(ChunkTag::kVector);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded.value().payload, "gen5");
  EXPECT_EQ(loaded.value().sequence, 5u);
  EXPECT_EQ(loaded.value().quarantined, 0);

  // A fresh manager over the same directory continues the sequence
  // instead of restarting at 1.
  CheckpointManager reopened(stem, FastOptions(FileEnv::Real(), 3));
  ASSERT_TRUE(reopened.Write(ChunkTag::kVector, "gen6").ok());
  EXPECT_EQ(reopened.ListGenerations().back().first, 6u);
}

TEST_F(IoRecoveryTest, LegacyFileMigratesIntoRotation) {
  const std::string stem = Dir("migrate") + "/v.ckpt";
  {
    CheckpointManager legacy(stem, FastOptions(FileEnv::Real(), 1));
    ASSERT_TRUE(legacy.Write(ChunkTag::kVector, "old").ok());
    ASSERT_TRUE(FileEnv::Real()->Exists(stem));
  }
  CheckpointManager rotated(stem, FastOptions(FileEnv::Real(), 2));
  Result<CheckpointManager::LoadInfo> loaded =
      rotated.Load(ChunkTag::kVector);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded.value().payload, "old");

  // The next write lands in a rotated generation that outranks the bare
  // legacy file.
  ASSERT_TRUE(rotated.Write(ChunkTag::kVector, "new").ok());
  Result<CheckpointManager::LoadInfo> newest =
      rotated.Load(ChunkTag::kVector);
  ASSERT_TRUE(newest.ok());
  EXPECT_EQ(newest.value().payload, "new");
  EXPECT_NE(newest.value().file, stem);
}

TEST_F(IoRecoveryTest, LoweredKeepGenerationsStillResumesRotatedState) {
  const std::string stem = Dir("lowered") + "/v.ckpt";
  {
    CheckpointManager manager(stem, FastOptions(FileEnv::Real(), 3));
    ASSERT_TRUE(manager.Write(ChunkTag::kVector, "gen1").ok());
    ASSERT_TRUE(manager.Write(ChunkTag::kVector, "gen2").ok());
    ASSERT_TRUE(manager.Write(ChunkTag::kVector, "gen3").ok());
  }

  // A later run lowers keep_generations to 1 (the legacy single-file
  // layout). The rotated generations on disk must still be resumable —
  // never a silent fresh start.
  CheckpointManager legacy(stem, FastOptions(FileEnv::Real(), 1));
  Result<CheckpointManager::LoadInfo> loaded = legacy.Load(ChunkTag::kVector);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded.value().payload, "gen3");
  EXPECT_EQ(loaded.value().sequence, 3u);

  // The next write continues the sequence into the bare file and
  // rotates the stale generations away — except the one the load just
  // restored from, which pruning must never delete.
  ASSERT_TRUE(legacy.Write(ChunkTag::kVector, "gen4").ok());
  ASSERT_TRUE(FileEnv::Real()->Exists(stem));
  EXPECT_TRUE(FileEnv::Real()->Exists(loaded.value().file));

  // Raising the knob back up resumes from the newest state — the bare
  // file at sequence 4 — not a stale leftover generation.
  CheckpointManager raised(stem, FastOptions(FileEnv::Real(), 3));
  Result<CheckpointManager::LoadInfo> newest = raised.Load(ChunkTag::kVector);
  ASSERT_TRUE(newest.ok()) << newest.status().ToString();
  EXPECT_EQ(newest.value().payload, "gen4");
  EXPECT_EQ(newest.value().sequence, 4u);
  EXPECT_EQ(newest.value().file, stem);
}

TEST_F(IoRecoveryTest, PruneNeverDeletesTheSalvagedGeneration) {
  const std::string stem = Dir("salvage_keep") + "/v.ckpt";
  {
    CheckpointManager manager(stem, FastOptions(FileEnv::Real(), 4));
    for (int i = 1; i <= 4; ++i) {
      ASSERT_TRUE(
          manager.Write(ChunkTag::kVector, "gen" + std::to_string(i)).ok());
    }
  }

  // Corrupt the newest two generations, then resume with a lowered
  // retention window: salvage falls back to gen2.
  CheckpointManager lowered(stem, FastOptions(FileEnv::Real(), 2));
  auto generations = lowered.ListGenerations();
  ASSERT_EQ(generations.size(), 4u);
  const std::string oldest = generations.front().second;
  for (size_t i = 2; i < 4; ++i) {
    Result<std::string> bytes = FileEnv::Real()->ReadFile(
        generations[i].second);
    ASSERT_TRUE(bytes.ok());
    std::string corrupted = bytes.value();
    corrupted.back() ^= 0x40;
    ASSERT_TRUE(
        FileEnv::Real()->WriteFile(generations[i].second, corrupted).ok());
  }
  Result<CheckpointManager::LoadInfo> loaded = lowered.Load(ChunkTag::kVector);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded.value().payload, "gen2");
  EXPECT_EQ(loaded.value().quarantined, 2);

  // Two fresh writes would normally rotate gen2 out of a keep-2 window;
  // the generation salvage fell back to must survive both, while the
  // older non-salvage generation is pruned normally.
  ASSERT_TRUE(lowered.Write(ChunkTag::kVector, "gen5").ok());
  ASSERT_TRUE(lowered.Write(ChunkTag::kVector, "gen6").ok());
  EXPECT_TRUE(FileEnv::Real()->Exists(loaded.value().file));
  EXPECT_FALSE(FileEnv::Real()->Exists(oldest));
  Result<CheckpointManager::LoadInfo> newest = lowered.Load(ChunkTag::kVector);
  ASSERT_TRUE(newest.ok());
  EXPECT_EQ(newest.value().payload, "gen6");
}

TEST_F(IoRecoveryTest, SalvageQuarantinesCorruptNewestGeneration) {
  const std::string stem = Dir("salvage") + "/v.ckpt";
  CheckpointManager manager(stem, FastOptions(FileEnv::Real(), 3));
  ASSERT_TRUE(manager.Write(ChunkTag::kVector, "gen1").ok());
  ASSERT_TRUE(manager.Write(ChunkTag::kVector, "gen2").ok());
  ASSERT_TRUE(manager.Write(ChunkTag::kVector, "gen3").ok());

  // Flip a payload byte of the newest generation: checksum mismatch.
  const std::string newest = manager.ListGenerations().back().second;
  Result<std::string> bytes = FileEnv::Real()->ReadFile(newest);
  ASSERT_TRUE(bytes.ok());
  std::string corrupted = bytes.value();
  corrupted.back() ^= 0x40;
  ASSERT_TRUE(FileEnv::Real()->WriteFile(newest, corrupted).ok());

  Result<CheckpointManager::LoadInfo> loaded =
      manager.Load(ChunkTag::kVector);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded.value().payload, "gen2");
  EXPECT_EQ(loaded.value().quarantined, 1);
  EXPECT_EQ(manager.quarantined_total(), 1);
  EXPECT_TRUE(FileEnv::Real()->Exists(newest + ".corrupt"));
  EXPECT_FALSE(FileEnv::Real()->Exists(newest));

  // Every generation corrupt -> DataLoss, never a silent fresh start.
  for (const auto& [seq, file] : manager.ListGenerations()) {
    Result<std::string> good = FileEnv::Real()->ReadFile(file);
    ASSERT_TRUE(good.ok());
    std::string bad = good.value();
    bad.back() ^= 0x40;
    ASSERT_TRUE(FileEnv::Real()->WriteFile(file, bad).ok());
  }
  EXPECT_EQ(manager.Load(ChunkTag::kVector).status().code(),
            StatusCode::kDataLoss);
}

TEST_F(IoRecoveryTest, TornRenameIsAbsorbedBySalvage) {
  const std::string stem = Dir("torn") + "/v.ckpt";
  FaultInjectingFileEnv fault;
  CheckpointManager manager(stem, FastOptions(&fault, 2));
  ASSERT_TRUE(manager.Write(ChunkTag::kVector, "good").ok());

  // The rename entry goes durable but the data blocks don't: the write
  // reports success, yet the newest generation is a truncated husk.
  Arm(failpoints::kRename, FailpointTrigger::OnHit(1), FaultAction::kTornRename,
      /*arg=*/10);
  ASSERT_TRUE(manager.Write(ChunkTag::kVector, "torn-away").ok());
  FailpointRegistry::Global().ClearAll();

  Result<CheckpointManager::LoadInfo> loaded =
      manager.Load(ChunkTag::kVector);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded.value().payload, "good");
  EXPECT_EQ(loaded.value().quarantined, 1);
}

TEST_F(IoRecoveryTest, TransientWriteErrorsRetryWithDeterministicBackoff) {
  const std::string stem = Dir("retry") + "/v.ckpt";
  FaultInjectingFileEnv fault;
  std::vector<int> delays;
  CheckpointManager manager(
      stem, FastOptions(&fault, 2, /*max_retries=*/2, &delays));

  // One transient EIO: the retry succeeds after one backoff step.
  Arm(failpoints::kWriteFile, FailpointTrigger::OnHit(1), FaultAction::kError);
  ASSERT_TRUE(manager.Write(ChunkTag::kVector, "v1").ok());
  EXPECT_EQ(manager.write_retries(), 1);
  EXPECT_EQ(delays, std::vector<int>({5}));

  // A persistent failure exhausts the budget on the documented
  // exponential schedule and surfaces as Unavailable.
  delays.clear();
  Arm(failpoints::kWriteFile, FailpointTrigger::EveryN(1), FaultAction::kError);
  Status st = manager.Write(ChunkTag::kVector, "v2");
  EXPECT_EQ(st.code(), StatusCode::kUnavailable);
  EXPECT_EQ(manager.write_retries(), 3);
  EXPECT_EQ(delays, std::vector<int>({5, 10}));
  FailpointRegistry::Global().ClearAll();

  // The failed write left no new resumable generation.
  Result<CheckpointManager::LoadInfo> loaded =
      manager.Load(ChunkTag::kVector);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded.value().payload, "v1");
}

TEST_F(IoRecoveryTest, EnospcShortWriteIsRetriedThenSalvageable) {
  const std::string stem = Dir("enospc") + "/v.ckpt";
  FaultInjectingFileEnv fault;
  CheckpointManager manager(stem, FastOptions(&fault, 2, /*max_retries=*/1));
  ASSERT_TRUE(manager.Write(ChunkTag::kVector, "first").ok());

  // Disk full on every attempt: the write fails after retrying, leaving
  // only a torn `.tmp` that the next startup sweep clears.
  Arm(failpoints::kWriteFile, FailpointTrigger::EveryN(1), FaultAction::kEnospc,
      /*arg=*/4);
  EXPECT_EQ(manager.Write(ChunkTag::kVector, "second").code(),
            StatusCode::kUnavailable);
  FailpointRegistry::Global().ClearAll();

  CheckpointManager recovered(stem, FastOptions(&fault, 2));
  Result<int> swept = recovered.SweepOrphans();
  ASSERT_TRUE(swept.ok());
  EXPECT_EQ(swept.value(), 0);  // WriteCheckpointFile removed its own tmp
  Result<CheckpointManager::LoadInfo> loaded =
      recovered.Load(ChunkTag::kVector);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded.value().payload, "first");
}

// ---------------------------------------------------------------------
// Streaming-engine degradation and the crash-sweep harness.
// ---------------------------------------------------------------------

struct Workload {
  std::vector<Dataset> clients;
  Dataset test;
};

Workload MakeWorkload(int num_clients, uint64_t seed) {
  SimulatedImageConfig cfg;
  cfg.num_samples = 40 * num_clients + 120;
  cfg.seed = seed;
  Dataset pool = GenerateSimulatedImages(cfg);
  Rng rng(seed + 1);
  auto [train_pool, test] = pool.RandomSplit(0.25, &rng);
  return {PartitionIid(train_pool, num_clients, &rng), std::move(test)};
}

void ExpectBitIdentical(const Vector& a, const Vector& b, const char* what) {
  ASSERT_EQ(a.size(), b.size()) << what;
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i], b[i]) << what << " diverges at client " << i;
  }
}

/// The small deterministic scenario every recovery test streams.
struct StreamScenario {
  static constexpr int kClients = 3;

  StreamScenario()
      : w(MakeWorkload(kClients, 4242)), model(w.test.dim(), 10) {
    fed_cfg.num_rounds = 3;
    fed_cfg.clients_per_round = 2;
    fed_cfg.seed = 17;
    streaming.request.compute_fedsv = true;
    streaming.request.fedsv.mode = FedSvConfig::Mode::kMonteCarlo;
    streaming.request.fedsv.permutations_per_round = 4;
    streaming.request.fedsv.seed = 18;
    streaming.request.compute_comfedsv = true;
    streaming.request.comfedsv.mode = ComFedSvConfig::Mode::kSampled;
    streaming.request.comfedsv.num_permutations = 4;
    streaming.request.comfedsv.completion.rank = 2;
    streaming.request.comfedsv.completion.lambda = 1e-3;
    streaming.request.comfedsv.completion.max_iters = 20;
    streaming.request.comfedsv.seed = 19;
    streaming.resolve_cadence = 1;
  }

  std::unique_ptr<StreamingValuationEngine> NewEngine() const {
    return std::make_unique<StreamingValuationEngine>(&model, &w.test,
                                                      kClients, streaming);
  }

  /// Replays the training trajectory from scratch, feeding the engine
  /// every round >= `first_round` and checkpointing after each. Save
  /// failures degrade rather than abort; a sticky environment crash
  /// ends the run early (the "process" died).
  void Run(StreamingValuationEngine* engine, CheckpointManager* manager,
           FaultInjectingFileEnv* fault, int first_round) const {
    FedAvgTrainer trainer(&model, w.clients, w.test, fed_cfg);
    ASSERT_TRUE(trainer.Begin().ok());
    while (!trainer.Done()) {
      const RoundRecord& record = trainer.Step();
      if (record.round < first_round) continue;
      engine->OnRound(record);
      (void)engine->SaveCheckpoint(manager);
      if (fault != nullptr && fault->crashed()) return;
    }
  }

  Workload w;
  LogisticRegression model;
  FedAvgConfig fed_cfg;
  StreamingConfig streaming;
};

TEST_F(IoRecoveryTest, StreamingHealthDegradesAndRecovers) {
  StreamScenario s;
  const std::string stem = Dir("health") + "/stream.ckpt";
  FaultInjectingFileEnv fault;
  CheckpointManager manager(stem, FastOptions(&fault, 2, /*max_retries=*/0));

  auto engine = s.NewEngine();
  FedAvgTrainer trainer(&s.model, s.w.clients, s.w.test, s.fed_cfg);
  ASSERT_TRUE(trainer.Begin().ok());
  Arm(failpoints::kWriteFile, FailpointTrigger::EveryN(1), FaultAction::kError);

  engine->OnRound(trainer.Step());
  EXPECT_EQ(engine->SaveCheckpoint(&manager).code(),
            StatusCode::kUnavailable);
  EXPECT_TRUE(engine->health().degraded);
  EXPECT_EQ(engine->health().checkpoint_failures, 1);
  EXPECT_EQ(engine->health().consecutive_failures, 1);
  EXPECT_EQ(engine->health().rounds_since_durable, 1);
  EXPECT_FALSE(engine->health().last_error.empty());

  // The engine keeps streaming on its in-memory state; once the
  // environment heals, the next save recovers full durability.
  engine->OnRound(trainer.Step());
  EXPECT_FALSE(engine->SaveCheckpoint(&manager).ok());
  EXPECT_EQ(engine->health().consecutive_failures, 2);

  FailpointRegistry::Global().ClearAll();
  ASSERT_TRUE(engine->SaveCheckpoint(&manager).ok());
  EXPECT_FALSE(engine->health().degraded);
  EXPECT_EQ(engine->health().consecutive_failures, 0);
  EXPECT_EQ(engine->health().rounds_since_durable, 0);
  EXPECT_EQ(engine->health().checkpoint_failures, 2);  // history remains

  // And the saved state round-trips into a fresh engine.
  auto resumed = s.NewEngine();
  ASSERT_TRUE(resumed->RestoreCheckpoint(&manager).ok());
  EXPECT_EQ(resumed->rounds_consumed(), 2);
  EXPECT_EQ(resumed->health().rounds_since_durable, 0);
}

TEST_F(IoRecoveryTest, CrashSweepRecoversBitIdenticalAtEveryFailpoint) {
  StreamScenario s;

  // Uninterrupted baseline (no checkpoint I/O at all).
  Vector baseline_fedsv;
  Vector baseline_comfedsv;
  std::vector<double> baseline_history;
  {
    auto engine = s.NewEngine();
    FedAvgTrainer trainer(&s.model, s.w.clients, s.w.test, s.fed_cfg);
    ASSERT_TRUE(trainer.Begin().ok());
    while (!trainer.Done()) engine->OnRound(trainer.Step());
    Result<ValuationOutcome> out = engine->Finalize();
    ASSERT_TRUE(out.ok()) << out.status().ToString();
    ASSERT_TRUE(out.value().fedsv_values.has_value());
    ASSERT_TRUE(out.value().comfedsv.has_value());
    baseline_fedsv = *out.value().fedsv_values;
    baseline_comfedsv = out.value().comfedsv->values;
    baseline_history = out.value().training.test_loss_history;
  }

  // Pilot run with tracing: one checkpointed run plus one recovery,
  // faithfully counting every I/O hit. This enumerates the fault
  // surface the sweep then schedules against.
  FailpointRegistry::Global().set_tracing(true);
  {
    const std::string stem = Dir("pilot") + "/stream.ckpt";
    FaultInjectingFileEnv fault;
    {
      CheckpointManager manager(stem, FastOptions(&fault, 2));
      ASSERT_TRUE(manager.SweepOrphans().ok());
      auto engine = s.NewEngine();
      s.Run(engine.get(), &manager, &fault, 0);
    }
    CheckpointManager manager(stem, FastOptions(&fault, 2));
    ASSERT_TRUE(manager.SweepOrphans().ok());
    auto engine = s.NewEngine();
    ASSERT_TRUE(engine->RestoreCheckpoint(&manager).ok());
    EXPECT_EQ(engine->rounds_consumed(), s.fed_cfg.num_rounds);
  }
  std::map<std::string, int64_t> surface;
  for (const auto& [name, hits] : FailpointRegistry::Global().HitCounts()) {
    surface[name] = hits;
  }
  FailpointRegistry::Global().ClearAll();
  ASSERT_GT(surface[failpoints::kWriteFile], 0);
  ASSERT_GT(surface[failpoints::kSyncFile], 0);
  ASSERT_GT(surface[failpoints::kRename], 0);
  ASSERT_GT(surface[failpoints::kSyncDir], 0);
  ASSERT_GT(surface[failpoints::kReadFile], 0);
  ASSERT_GT(surface[failpoints::kListDir], 0);

  // The sweep: for every instrumented operation and every opportunity
  // it had, kill the process exactly there, reboot, recover, replay,
  // and demand the final valuation bit-identical to the baseline.
  int sweeps = 0;
  for (const std::string& name : failpoints::All()) {
    for (int64_t k = 1; k <= surface[name]; ++k) {
      SCOPED_TRACE(name + " @ hit " + std::to_string(k));
      ++sweeps;
      std::string label = name + "_" + std::to_string(k);
      for (char& c : label) {
        if (c == '/') c = '_';
      }
      const std::string stem = Dir(label) + "/stream.ckpt";
      FaultInjectingFileEnv fault;
      Arm(name.c_str(), FailpointTrigger::OnHit(k), FaultAction::kCrash,
          /*arg=*/7);  // a write dies mid-flight, leaving 7 torn bytes

      // Phase 1: run until the crash (or to completion when hit k
      // belongs to the recovery segment of the schedule).
      {
        CheckpointManager manager(stem, FastOptions(&fault, 2));
        (void)manager.SweepOrphans();
        auto doomed = s.NewEngine();
        s.Run(doomed.get(), &manager, &fault, 0);
      }

      // Reboot: the crashed state clears, the disk keeps whatever the
      // crash left. The one-shot trigger stays armed in case hit k
      // lands inside recovery.
      fault.ClearCrash();

      // Phase 2: recover. A crash mid-recovery gets one more reboot
      // and a clean second attempt — recovery itself must be
      // restartable.
      int resume_round = -1;
      std::unique_ptr<StreamingValuationEngine> engine;
      for (int attempt = 0; attempt < 2 && resume_round < 0; ++attempt) {
        engine = s.NewEngine();
        CheckpointManager manager(stem, FastOptions(&fault, 2));
        (void)manager.SweepOrphans();
        Status restored = engine->RestoreCheckpoint(&manager);
        if (restored.ok()) {
          resume_round = engine->rounds_consumed();
        } else if (restored.code() == StatusCode::kNotFound &&
                   !fault.crashed()) {
          resume_round = 0;  // clean reported fallback: fresh start
        } else {
          fault.ClearCrash();
          FailpointRegistry::Global().ClearAll();
        }
      }
      ASSERT_GE(resume_round, 0) << "recovery never settled";
      ASSERT_LE(resume_round, s.fed_cfg.num_rounds);
      FailpointRegistry::Global().ClearAll();

      // Phase 3: replay the missing rounds on the healed environment.
      {
        CheckpointManager manager(stem, FastOptions(&fault, 2));
        s.Run(engine.get(), &manager, &fault, resume_round);
      }
      ASSERT_EQ(engine->rounds_consumed(), s.fed_cfg.num_rounds);
      Result<ValuationOutcome> out = engine->Finalize();
      ASSERT_TRUE(out.ok()) << out.status().ToString();
      ASSERT_TRUE(out.value().fedsv_values.has_value());
      ASSERT_TRUE(out.value().comfedsv.has_value());
      ExpectBitIdentical(*out.value().fedsv_values, baseline_fedsv,
                         "FedSV after crash-recovery");
      ExpectBitIdentical(out.value().comfedsv->values, baseline_comfedsv,
                         "ComFedSV after crash-recovery");
      EXPECT_EQ(out.value().training.test_loss_history, baseline_history);
    }
  }
  // The sweep must actually have swept: every registered failpoint had
  // at least one scheduled kill.
  EXPECT_GE(sweeps, static_cast<int>(failpoints::All().size()));
}

// The round-log extension of the crash sweep: the schedule now spills
// every consumed round to a log, gets interrupted mid-run, resumes (the
// OpenForAppend truncation realigns the log), and finally re-values the
// whole trajectory from the log through the windowed mmap reader. Every
// new I/O failpoint — io/append_file, io/read_range, io/truncate,
// io/mmap — gets a kill at every opportunity; recovery must leave both
// the streamed valuation and the log-replayed valuation bit-identical
// to an uninterrupted run, and the log itself byte-identical.
TEST_F(IoRecoveryTest, CrashSweepCoversRoundLogFailpoints) {
  StreamScenario s;
  s.streaming.spill.enabled = true;
  constexpr int kInterruptRound = 2;  // the planned mid-run "kill"

  auto spill_engine = [&s](const std::string& log, FileEnv* env) {
    StreamingConfig cfg = s.streaming;
    cfg.spill.path = log;
    cfg.spill.env = env;
    return std::make_unique<StreamingValuationEngine>(
        &s.model, &s.w.test, StreamScenario::kClients, cfg);
  };
  RoundLogReadOptions read_options;
  read_options.use_mmap = true;
  read_options.window_bytes = 4096;  // smaller than the log: remaps happen

  // Feeds the engine rounds [first_round, stop_round), checkpointing
  // after each; bails out when the environment died.
  auto feed = [&s](StreamingValuationEngine* engine,
                   CheckpointManager* manager, FaultInjectingFileEnv* fault,
                   int first_round, int stop_round) {
    FedAvgTrainer trainer(&s.model, s.w.clients, s.w.test, s.fed_cfg);
    ASSERT_TRUE(trainer.Begin().ok());
    while (!trainer.Done()) {
      const RoundRecord& record = trainer.Step();
      if (record.round < first_round) continue;
      if (record.round >= stop_round) break;
      engine->OnRound(record);
      (void)engine->SaveCheckpoint(manager);
      if (fault != nullptr && fault->crashed()) return;
    }
  };

  // Uninterrupted spill run on the real environment: baseline values
  // and the byte-exact log a crash-recovered run must reproduce.
  Vector baseline_fedsv;
  Vector baseline_comfedsv;
  std::string baseline_log_bytes;
  const std::string clean_log = Dir("clean") + "/rounds.log";
  {
    auto engine = spill_engine(clean_log, nullptr);
    FedAvgTrainer trainer(&s.model, s.w.clients, s.w.test, s.fed_cfg);
    ASSERT_TRUE(trainer.Begin().ok());
    while (!trainer.Done()) engine->OnRound(trainer.Step());
    ASSERT_TRUE(engine->SyncSpill().ok());
    Result<ValuationOutcome> out = engine->Finalize();
    ASSERT_TRUE(out.ok()) << out.status().ToString();
    baseline_fedsv = *out.value().fedsv_values;
    baseline_comfedsv = out.value().comfedsv->values;
    Result<std::string> bytes = FileEnv::Real()->ReadFile(clean_log);
    ASSERT_TRUE(bytes.ok());
    baseline_log_bytes = bytes.value();
  }

  // Pilot with tracing: interrupted run -> resume (truncate + re-append)
  // -> log replay through the mmap window. This is the fault surface.
  FailpointRegistry::Global().set_tracing(true);
  {
    const std::string dir = Dir("pilot");
    const std::string stem = dir + "/stream.ckpt";
    const std::string log = dir + "/rounds.log";
    FaultInjectingFileEnv fault;
    {
      CheckpointManager manager(stem, FastOptions(&fault, 2));
      auto engine = spill_engine(log, &fault);
      feed(engine.get(), &manager, &fault, 0, kInterruptRound);
    }
    CheckpointManager manager(stem, FastOptions(&fault, 2));
    auto engine = spill_engine(log, &fault);
    ASSERT_TRUE(engine->RestoreCheckpoint(&manager).ok());
    ASSERT_EQ(engine->rounds_consumed(), kInterruptRound);
    feed(engine.get(), &manager, &fault, kInterruptRound,
         s.fed_cfg.num_rounds);
    ASSERT_EQ(engine->rounds_consumed(), s.fed_cfg.num_rounds);
    RoundLogReadOptions pilot_read = read_options;
    pilot_read.env = &fault;
    Result<ValuationOutcome> replayed =
        RunValuationFromLog(s.model, s.w.test, StreamScenario::kClients,
                            log, s.streaming.request, pilot_read);
    ASSERT_TRUE(replayed.ok()) << replayed.status().ToString();
  }
  std::map<std::string, int64_t> surface;
  for (const auto& [name, hits] : FailpointRegistry::Global().HitCounts()) {
    surface[name] = hits;
  }
  FailpointRegistry::Global().ClearAll();
  const std::vector<std::string> swept_names = {
      failpoints::kAppendFile, failpoints::kReadRange, failpoints::kTruncate,
      failpoints::kMmap};
  for (const std::string& name : swept_names) {
    ASSERT_GT(surface[name], 0) << name << " never hit in the pilot";
  }

  int sweeps = 0;
  for (const std::string& name : swept_names) {
    for (int64_t k = 1; k <= surface[name]; ++k) {
      SCOPED_TRACE(name + " @ hit " + std::to_string(k));
      ++sweeps;
      std::string label = name + "_" + std::to_string(k);
      for (char& c : label) {
        if (c == '/') c = '_';
      }
      const std::string dir = Dir(label);
      const std::string stem = dir + "/stream.ckpt";
      const std::string log = dir + "/rounds.log";
      FaultInjectingFileEnv fault;
      Arm(name.c_str(), FailpointTrigger::OnHit(k), FaultAction::kCrash,
          /*arg=*/7);

      // Phase 1: the interrupted run (the scheduled kill may land
      // earlier than the planned interruption).
      {
        CheckpointManager manager(stem, FastOptions(&fault, 2));
        auto doomed = spill_engine(log, &fault);
        feed(doomed.get(), &manager, &fault, 0, kInterruptRound);
      }

      // Phase 2: recover and replay, keeping the trigger armed — hit k
      // may belong to the resume's truncate/append segment. A crash
      // there gets another reboot and a clean retry.
      std::unique_ptr<StreamingValuationEngine> engine;
      bool replay_done = false;
      for (int attempt = 0; attempt < 3 && !replay_done; ++attempt) {
        fault.ClearCrash();
        engine = spill_engine(log, &fault);
        CheckpointManager manager(stem, FastOptions(&fault, 2));
        Status restored = engine->RestoreCheckpoint(&manager);
        int resume_round = -1;
        if (restored.ok()) {
          resume_round = engine->rounds_consumed();
        } else if (restored.code() == StatusCode::kNotFound &&
                   !fault.crashed()) {
          resume_round = 0;
        } else {
          continue;
        }
        feed(engine.get(), &manager, &fault, resume_round,
             s.fed_cfg.num_rounds);
        replay_done = !fault.crashed() &&
                      engine->rounds_consumed() == s.fed_cfg.num_rounds &&
                      engine->health().spill_failures == 0;
      }
      ASSERT_TRUE(replay_done) << "replay never settled";
      ASSERT_TRUE(engine->SyncSpill().ok());

      // Phase 3: re-value from the log, still under the armed trigger —
      // hit k may belong to the reader's mmap/pread segment.
      Vector log_fedsv;
      Vector log_comfedsv;
      bool read_done = false;
      for (int attempt = 0; attempt < 2 && !read_done; ++attempt) {
        fault.ClearCrash();
        RoundLogReadOptions sweep_read = read_options;
        sweep_read.env = &fault;
        Result<ValuationOutcome> replayed = RunValuationFromLog(
            s.model, s.w.test, StreamScenario::kClients, log,
            s.streaming.request, sweep_read);
        if (replayed.ok()) {
          log_fedsv = *replayed.value().fedsv_values;
          log_comfedsv = replayed.value().comfedsv->values;
          read_done = true;
        } else {
          FailpointRegistry::Global().ClearAll();
        }
      }
      ASSERT_TRUE(read_done) << "log replay never settled";
      FailpointRegistry::Global().ClearAll();

      // The streamed valuation, the log-replayed valuation, and the log
      // bytes themselves all match the uninterrupted run exactly.
      Result<ValuationOutcome> out = engine->Finalize();
      ASSERT_TRUE(out.ok()) << out.status().ToString();
      ExpectBitIdentical(*out.value().fedsv_values, baseline_fedsv,
                         "streamed FedSV after crash-recovery");
      ExpectBitIdentical(out.value().comfedsv->values, baseline_comfedsv,
                         "streamed ComFedSV after crash-recovery");
      ExpectBitIdentical(log_fedsv, baseline_fedsv,
                         "log-replayed FedSV after crash-recovery");
      ExpectBitIdentical(log_comfedsv, baseline_comfedsv,
                         "log-replayed ComFedSV after crash-recovery");
      Result<std::string> bytes = FileEnv::Real()->ReadFile(log);
      ASSERT_TRUE(bytes.ok());
      EXPECT_EQ(bytes.value(), baseline_log_bytes)
          << "recovered log diverges from the uninterrupted run's";
    }
  }
  EXPECT_GE(sweeps, static_cast<int>(swept_names.size()));
}

// ---------------------------------------------------------------------
// Pipeline-level degradation.
// ---------------------------------------------------------------------

TEST_F(IoRecoveryTest, PipelineSurvivesCheckpointWriteFailures) {
  const int n = 3;
  Workload w = MakeWorkload(n, 606);
  LogisticRegression model(w.test.dim(), 10);

  FedAvgConfig fed_cfg;
  fed_cfg.num_rounds = 3;
  fed_cfg.clients_per_round = 2;
  fed_cfg.seed = 61;

  ValuationRequest request;
  request.compute_fedsv = true;
  request.fedsv.mode = FedSvConfig::Mode::kExact;
  request.fedsv.seed = 62;
  request.compute_comfedsv = false;

  Result<ValuationOutcome> straight =
      RunValuation(model, w.clients, w.test, fed_cfg, request);
  ASSERT_TRUE(straight.ok());

  FaultInjectingFileEnv fault;
  Arm(failpoints::kWriteFile, FailpointTrigger::EveryN(1), FaultAction::kError);

  CheckpointConfig ckpt;
  ckpt.path = Dir("pipeline") + "/run.ckpt";
  ckpt.every_rounds = 1;
  ckpt.keep_generations = 2;
  ckpt.max_retries = 0;
  ckpt.env = &fault;
  Result<ValuationOutcome> degraded = RunValuationCheckpointed(
      model, w.clients, w.test, fed_cfg, request, ckpt);
  ASSERT_TRUE(degraded.ok()) << degraded.status().ToString();

  // Every save failed, yet the run finished with correct values and an
  // honest health report.
  ASSERT_TRUE(degraded.value().checkpoint_health.has_value());
  const CheckpointHealth& health = *degraded.value().checkpoint_health;
  EXPECT_TRUE(health.degraded);
  EXPECT_EQ(health.write_failures, fed_cfg.num_rounds);
  EXPECT_EQ(health.consecutive_failures, fed_cfg.num_rounds);
  EXPECT_EQ(health.rounds_since_durable, fed_cfg.num_rounds);
  EXPECT_FALSE(health.last_error.empty());
  ExpectBitIdentical(*degraded.value().fedsv_values,
                     *straight.value().fedsv_values,
                     "degraded-mode FedSV");

  // The strict policy turns the same failure into an abort.
  CheckpointConfig strict = ckpt;
  strict.path = Dir("pipeline_strict") + "/run.ckpt";
  strict.require_durable = true;
  Arm(failpoints::kWriteFile, FailpointTrigger::EveryN(1), FaultAction::kError);
  Result<ValuationOutcome> aborted = RunValuationCheckpointed(
      model, w.clients, w.test, fed_cfg, request, strict);
  ASSERT_FALSE(aborted.ok());
  EXPECT_EQ(aborted.status().code(), StatusCode::kUnavailable);
}

TEST_F(IoRecoveryTest, PipelineResumeSalvagesOlderGeneration) {
  const int n = 3;
  Workload w = MakeWorkload(n, 707);
  LogisticRegression model(w.test.dim(), 10);

  FedAvgConfig fed_cfg;
  fed_cfg.num_rounds = 3;
  fed_cfg.clients_per_round = 2;
  fed_cfg.seed = 71;

  ValuationRequest request;
  request.compute_fedsv = true;
  request.fedsv.mode = FedSvConfig::Mode::kExact;
  request.fedsv.seed = 72;
  request.compute_comfedsv = false;

  Result<ValuationOutcome> straight =
      RunValuation(model, w.clients, w.test, fed_cfg, request);
  ASSERT_TRUE(straight.ok());

  CheckpointConfig ckpt;
  ckpt.path = Dir("resume") + "/run.ckpt";
  ckpt.every_rounds = 1;
  ckpt.keep_generations = 3;
  ckpt.inject_crash_after_round = 2;
  ASSERT_FALSE(RunValuationCheckpointed(model, w.clients, w.test, fed_cfg,
                                        request, ckpt)
                   .ok());  // the injected crash

  // Corrupt the newest generation: resume must fall back to the
  // round-1 checkpoint, quarantine the husk, and still finish
  // bit-identical.
  CheckpointManager inspect(ckpt.path, FastOptions(FileEnv::Real(), 3));
  auto generations = inspect.ListGenerations();
  ASSERT_EQ(generations.size(), 2u);  // rounds 1 and 2
  const std::string newest = generations.back().second;
  Result<std::string> bytes = FileEnv::Real()->ReadFile(newest);
  ASSERT_TRUE(bytes.ok());
  std::string corrupted = bytes.value();
  corrupted.back() ^= 0x40;
  ASSERT_TRUE(FileEnv::Real()->WriteFile(newest, corrupted).ok());

  ckpt.inject_crash_after_round = -1;
  Result<ValuationOutcome> resumed = RunValuationCheckpointed(
      model, w.clients, w.test, fed_cfg, request, ckpt);
  ASSERT_TRUE(resumed.ok()) << resumed.status().ToString();
  ASSERT_TRUE(resumed.value().checkpoint_health.has_value());
  EXPECT_EQ(resumed.value().checkpoint_health->quarantined_on_resume, 1);
  EXPECT_EQ(resumed.value().checkpoint_health->resumed_sequence, 1u);
  ExpectBitIdentical(*resumed.value().fedsv_values,
                     *straight.value().fedsv_values,
                     "salvaged resume FedSV");
}

}  // namespace
}  // namespace comfedsv
