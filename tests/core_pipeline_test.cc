// End-to-end RunValuation pipeline tests.
#include "core/pipeline.h"

#include <gtest/gtest.h>

#include "data/image_sim.h"
#include "data/noise.h"
#include "data/partition.h"
#include "metrics/metrics.h"
#include "models/logistic.h"

namespace comfedsv {
namespace {

struct Workload {
  std::vector<Dataset> clients;
  Dataset test;
};

Workload MakeWorkload(int num_clients, uint64_t seed) {
  SimulatedImageConfig cfg;
  cfg.num_samples = 60 * num_clients + 100;
  cfg.seed = seed;
  Dataset pool = GenerateSimulatedImages(cfg);
  Rng rng(seed + 1);
  auto [train_pool, test] = pool.RandomSplit(0.25, &rng);
  return {PartitionIid(train_pool, num_clients, &rng), std::move(test)};
}

ValuationRequest DefaultRequest() {
  ValuationRequest req;
  req.compute_fedsv = true;
  req.compute_comfedsv = true;
  req.comfedsv.completion.rank = 4;
  req.comfedsv.completion.lambda = 1e-4;
  req.compute_ground_truth = true;
  return req;
}

FedAvgConfig FedConfig(int rounds, int per_round, uint64_t seed) {
  FedAvgConfig cfg;
  cfg.num_rounds = rounds;
  cfg.clients_per_round = per_round;
  cfg.lr = LearningRateSchedule::Constant(0.3);
  cfg.seed = seed;
  return cfg;
}

TEST(PipelineTest, ComputesAllRequestedMetrics) {
  Workload w = MakeWorkload(5, 71);
  LogisticRegression model(w.test.dim(), 10);
  Result<ValuationOutcome> outcome =
      RunValuation(model, w.clients, w.test, FedConfig(5, 2, 73),
                   DefaultRequest());
  ASSERT_TRUE(outcome.ok()) << outcome.status().ToString();
  const ValuationOutcome& o = outcome.value();
  ASSERT_TRUE(o.fedsv_values.has_value());
  ASSERT_TRUE(o.comfedsv.has_value());
  ASSERT_TRUE(o.ground_truth_values.has_value());
  EXPECT_EQ(o.fedsv_values->size(), 5u);
  EXPECT_EQ(o.comfedsv->values.size(), 5u);
  EXPECT_EQ(o.ground_truth_values->size(), 5u);
  EXPECT_GT(o.fedsv_loss_calls, 0);
  EXPECT_GT(o.comfedsv->loss_calls, 0);
  EXPECT_GT(o.ground_truth_loss_calls, o.comfedsv->loss_calls);
  EXPECT_EQ(o.training.rounds_run, 5);
}

TEST(PipelineTest, SubsetsOfMetricsCanBeRequested) {
  Workload w = MakeWorkload(4, 75);
  LogisticRegression model(w.test.dim(), 10);
  ValuationRequest req;
  req.compute_fedsv = true;
  req.compute_comfedsv = false;
  req.compute_ground_truth = false;
  Result<ValuationOutcome> outcome = RunValuation(
      model, w.clients, w.test, FedConfig(3, 2, 77), req);
  ASSERT_TRUE(outcome.ok());
  EXPECT_TRUE(outcome.value().fedsv_values.has_value());
  EXPECT_FALSE(outcome.value().comfedsv.has_value());
  EXPECT_FALSE(outcome.value().ground_truth_values.has_value());
}

TEST(PipelineTest, RequiresAssumption1ForFullComFedSv) {
  Workload w = MakeWorkload(4, 79);
  LogisticRegression model(w.test.dim(), 10);
  FedAvgConfig cfg = FedConfig(3, 2, 81);
  cfg.select_all_first_round = false;
  Result<ValuationOutcome> outcome =
      RunValuation(model, w.clients, w.test, cfg, DefaultRequest());
  ASSERT_FALSE(outcome.ok());
  EXPECT_EQ(outcome.status().code(), StatusCode::kFailedPrecondition);
}

TEST(PipelineTest, SampledModeWorksWithoutAssumption1Requirement) {
  Workload w = MakeWorkload(5, 83);
  LogisticRegression model(w.test.dim(), 10);
  FedAvgConfig cfg = FedConfig(4, 2, 85);
  // Keep Assumption 1 on (Algorithm 1 requires it for observability),
  // but use the sampled pipeline and no ground truth.
  ValuationRequest req;
  req.compute_fedsv = false;
  req.compute_comfedsv = true;
  req.comfedsv.mode = ComFedSvConfig::Mode::kSampled;
  req.comfedsv.num_permutations = 50;
  req.comfedsv.completion.rank = 3;
  req.comfedsv.completion.lambda = 1e-4;
  req.compute_ground_truth = false;
  Result<ValuationOutcome> outcome =
      RunValuation(model, w.clients, w.test, cfg, req);
  ASSERT_TRUE(outcome.ok()) << outcome.status().ToString();
  EXPECT_TRUE(outcome.value().comfedsv.has_value());
  EXPECT_GT(outcome.value().comfedsv->num_columns, 0);
  EXPECT_LT(outcome.value().comfedsv->observed_density, 1.0);
}

TEST(PipelineTest, RejectsEmptyClientList) {
  Workload w = MakeWorkload(3, 87);
  LogisticRegression model(w.test.dim(), 10);
  Result<ValuationOutcome> outcome = RunValuation(
      model, {}, w.test, FedConfig(3, 2, 89), DefaultRequest());
  EXPECT_FALSE(outcome.ok());
}

TEST(PipelineTest, DeterministicAcrossRuns) {
  Workload w = MakeWorkload(4, 91);
  LogisticRegression model(w.test.dim(), 10);
  ValuationRequest req = DefaultRequest();
  req.compute_ground_truth = false;
  Result<ValuationOutcome> a = RunValuation(
      model, w.clients, w.test, FedConfig(4, 2, 93), req);
  Result<ValuationOutcome> b = RunValuation(
      model, w.clients, w.test, FedConfig(4, 2, 93), req);
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_TRUE(*a.value().fedsv_values == *b.value().fedsv_values);
  EXPECT_TRUE(a.value().comfedsv->values == b.value().comfedsv->values);
}

TEST(PipelineTest, NoisyClientRanksLowInGroundTruth) {
  // Quality-detection smoke test: corrupt one client's labels heavily;
  // the ground-truth valuation should rank it at (or near) the bottom.
  Workload w = MakeWorkload(5, 95);
  Rng rng(97);
  FlipLabels(&w.clients[2], 0.9, &rng);
  LogisticRegression model(w.test.dim(), 10);
  ValuationRequest req;
  req.compute_fedsv = false;
  req.compute_comfedsv = false;
  req.compute_ground_truth = true;
  Result<ValuationOutcome> outcome = RunValuation(
      model, w.clients, w.test, FedConfig(8, 3, 99), req);
  ASSERT_TRUE(outcome.ok());
  const Vector& values = *outcome.value().ground_truth_values;
  std::vector<int> bottom = BottomKIndices(values, 2);
  EXPECT_TRUE(bottom[0] == 2 || bottom[1] == 2)
      << "noisy client not in bottom 2";
}

}  // namespace
}  // namespace comfedsv
