// Exact and Monte-Carlo Shapley on analytically solvable games.
#include "shapley/shapley.h"

#include <gtest/gtest.h>

#include <bit>
#include <cmath>

#include "common/combinatorics.h"

namespace comfedsv {
namespace {

// Additive game: U(S) = sum of per-player weights. Shapley = own weight.
UtilityFn AdditiveGame(const std::vector<double>& weights) {
  return [weights](const Coalition& c) {
    double total = 0.0;
    for (int m : c.Members()) total += weights[m];
    return total;
  };
}

// Unanimity game on a carrier set R: U(S) = 1 iff R subseteq S.
// Shapley: 1/|R| for members of R, 0 otherwise.
UtilityFn UnanimityGame(const Coalition& carrier) {
  return [carrier](const Coalition& c) {
    return carrier.IsSubsetOf(c) ? 1.0 : 0.0;
  };
}

TEST(ExactShapleyTest, AdditiveGameGivesOwnWeight) {
  std::vector<double> weights = {1.0, -2.0, 3.5, 0.0};
  std::vector<int> players = {0, 1, 2, 3};
  Result<Vector> v = ExactShapley(4, players, AdditiveGame(weights));
  ASSERT_TRUE(v.ok());
  for (int i = 0; i < 4; ++i) {
    EXPECT_NEAR(v.value()[i], weights[i], 1e-12) << i;
  }
}

TEST(ExactShapleyTest, UnanimityGame) {
  Coalition carrier = Coalition::FromMembers(5, {1, 3});
  std::vector<int> players = {0, 1, 2, 3, 4};
  Result<Vector> v = ExactShapley(5, players, UnanimityGame(carrier));
  ASSERT_TRUE(v.ok());
  EXPECT_NEAR(v.value()[1], 0.5, 1e-12);
  EXPECT_NEAR(v.value()[3], 0.5, 1e-12);
  EXPECT_NEAR(v.value()[0], 0.0, 1e-12);
  EXPECT_NEAR(v.value()[2], 0.0, 1e-12);
  EXPECT_NEAR(v.value()[4], 0.0, 1e-12);
}

TEST(ExactShapleyTest, EfficiencyBalanceProperty) {
  // sum_i phi_i == U(full) - U(empty) for any game.
  std::vector<int> players = {0, 1, 2, 3, 4, 5};
  UtilityFn game = [](const Coalition& c) {
    // Arbitrary supermodular-ish game.
    const double k = static_cast<double>(c.Count());
    double bonus = c.Contains(2) && c.Contains(4) ? 3.0 : 0.0;
    return k * k + bonus;
  };
  Result<Vector> v = ExactShapley(6, players, game);
  ASSERT_TRUE(v.ok());
  const double full = game(Coalition::Full(6));
  const double empty = game(Coalition(6));
  EXPECT_NEAR(v.value().Sum(), full - empty, 1e-10);
}

TEST(ExactShapleyTest, SymmetryProperty) {
  // Players 0 and 1 are interchangeable: identical values.
  std::vector<int> players = {0, 1, 2};
  UtilityFn game = [](const Coalition& c) {
    const int a = c.Contains(0) ? 1 : 0;
    const int b = c.Contains(1) ? 1 : 0;
    const int z = c.Contains(2) ? 1 : 0;
    return static_cast<double>((a + b) * 2 + z * 5 + a * b);
  };
  Result<Vector> v = ExactShapley(3, players, game);
  ASSERT_TRUE(v.ok());
  EXPECT_NEAR(v.value()[0], v.value()[1], 1e-12);
}

TEST(ExactShapleyTest, DummyPlayerGetsZero) {
  std::vector<int> players = {0, 1, 2};
  UtilityFn game = [](const Coalition& c) {
    return c.Contains(1) ? 7.0 : 0.0;  // players 0, 2 are dummies
  };
  Result<Vector> v = ExactShapley(3, players, game);
  ASSERT_TRUE(v.ok());
  EXPECT_NEAR(v.value()[0], 0.0, 1e-12);
  EXPECT_NEAR(v.value()[2], 0.0, 1e-12);
  EXPECT_NEAR(v.value()[1], 7.0, 1e-12);
}

TEST(ExactShapleyTest, SubsetOfUniversePlayers) {
  // Only players {1, 3} participate; others must get zero.
  std::vector<double> weights = {9.0, 2.0, 9.0, 4.0};
  Result<Vector> v = ExactShapley(4, {1, 3}, AdditiveGame(weights));
  ASSERT_TRUE(v.ok());
  EXPECT_NEAR(v.value()[1], 2.0, 1e-12);
  EXPECT_NEAR(v.value()[3], 4.0, 1e-12);
  EXPECT_DOUBLE_EQ(v.value()[0], 0.0);
  EXPECT_DOUBLE_EQ(v.value()[2], 0.0);
}

TEST(ExactShapleyTest, GuardsAgainstExponentialBlowup) {
  std::vector<int> players(30);
  for (int i = 0; i < 30; ++i) players[i] = i;
  Result<Vector> v =
      ExactShapley(30, players, AdditiveGame(std::vector<double>(30, 1.0)));
  EXPECT_FALSE(v.ok());
  EXPECT_EQ(v.status().code(), StatusCode::kInvalidArgument);
}

TEST(ExactShapleyTest, EmptyPlayersRejected) {
  EXPECT_FALSE(ExactShapley(3, {}, AdditiveGame({1, 1, 1})).ok());
}

TEST(ExactShapleyTest, HoistedWeightTableIsBitIdenticalToInlineDivision) {
  // ExactShapley precomputes 1 / C(m-1, |S|) per coalition size instead
  // of dividing inside the 2^m * m mask loop. Recompute with the inline
  // division here and require exact (bit-level) agreement.
  const int m = 6;
  std::vector<int> players = {0, 1, 2, 3, 4, 5};
  UtilityFn game = [](const Coalition& c) {
    double v = 0.0;
    for (int i : c.Members()) v += std::sqrt(i + 2.0) * 0.37;
    const double k = static_cast<double>(c.Count());
    v += 0.21 * k * k;
    if (c.Contains(1) && c.Contains(4)) v += 0.5;
    return v;
  };
  Result<Vector> hoisted = ExactShapley(m, players, game);
  ASSERT_TRUE(hoisted.ok());

  const uint32_t num_subsets = 1u << m;
  std::vector<double> subset_utility(num_subsets);
  for (uint32_t mask = 0; mask < num_subsets; ++mask) {
    Coalition c(m);
    for (int p = 0; p < m; ++p) {
      if (mask & (1u << p)) c.Add(players[p]);
    }
    subset_utility[mask] = game(c);
  }
  for (int p = 0; p < m; ++p) {
    const uint32_t bit = 1u << p;
    double acc = 0.0;
    for (uint32_t mask = 0; mask < num_subsets; ++mask) {
      if (mask & bit) continue;
      const int s = std::popcount(mask);
      const double weight = 1.0 / Binomial(m - 1, s);
      acc += weight * (subset_utility[mask | bit] - subset_utility[mask]);
    }
    EXPECT_EQ(hoisted.value()[players[p]], acc / static_cast<double>(m))
        << "player " << p;
  }
}

TEST(MonteCarloShapleyTest, ConvergesToExactOnRandomGame) {
  // A fixed nonlinear game; MC with many permutations ~ exact.
  std::vector<int> players = {0, 1, 2, 3, 4};
  UtilityFn game = [](const Coalition& c) {
    double v = 0.0;
    for (int m : c.Members()) v += std::sqrt(m + 1.0);
    if (c.Count() >= 3) v += 2.0;
    return v;
  };
  Result<Vector> exact = ExactShapley(5, players, game);
  ASSERT_TRUE(exact.ok());
  Rng rng(77);
  Result<Vector> mc = MonteCarloShapley(5, players, game, 20000, &rng);
  ASSERT_TRUE(mc.ok());
  for (int i = 0; i < 5; ++i) {
    EXPECT_NEAR(mc.value()[i], exact.value()[i], 0.03) << i;
  }
}

TEST(MonteCarloShapleyTest, ExactForAdditiveGamesWithOnePermutation) {
  // For additive games every permutation's marginal is the own weight.
  std::vector<double> weights = {2.0, -1.0, 0.5};
  Rng rng(5);
  Result<Vector> mc =
      MonteCarloShapley(3, {0, 1, 2}, AdditiveGame(weights), 1, &rng);
  ASSERT_TRUE(mc.ok());
  for (int i = 0; i < 3; ++i) EXPECT_NEAR(mc.value()[i], weights[i], 1e-12);
}

TEST(MonteCarloShapleyTest, BalancePreservedPerSample) {
  // Telescoping marginals along each permutation sum to U(full) exactly,
  // so the MC estimate preserves balance for any number of samples.
  std::vector<int> players = {0, 1, 2, 3};
  UtilityFn game = [](const Coalition& c) {
    return static_cast<double>(c.Count() * c.Count());
  };
  Rng rng(9);
  Result<Vector> mc = MonteCarloShapley(4, players, game, 13, &rng);
  ASSERT_TRUE(mc.ok());
  EXPECT_NEAR(mc.value().Sum(), 16.0, 1e-10);
}

TEST(MonteCarloShapleyTest, InvalidArguments) {
  Rng rng(1);
  EXPECT_FALSE(
      MonteCarloShapley(3, {}, AdditiveGame({1, 1, 1}), 10, &rng).ok());
  EXPECT_FALSE(
      MonteCarloShapley(3, {0}, AdditiveGame({1, 1, 1}), 0, &rng).ok());
}

TEST(PermutationBudgetTest, GrowsSuperlinearly) {
  EXPECT_GE(DefaultPermutationBudget(1), 8);
  EXPECT_GE(DefaultPermutationBudget(10), 10 * 2);
  EXPECT_GT(DefaultPermutationBudget(100), DefaultPermutationBudget(10));
}

}  // namespace
}  // namespace comfedsv
