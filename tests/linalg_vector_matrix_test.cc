#include <gtest/gtest.h>

#include <cmath>

#include "linalg/matrix.h"
#include "linalg/vector.h"

namespace comfedsv {
namespace {

TEST(VectorTest, ConstructionAndAccess) {
  Vector zero(4);
  EXPECT_EQ(zero.size(), 4u);
  for (size_t i = 0; i < 4; ++i) EXPECT_DOUBLE_EQ(zero[i], 0.0);

  Vector filled(3, 2.5);
  EXPECT_DOUBLE_EQ(filled[2], 2.5);

  Vector init{1.0, 2.0, 3.0};
  EXPECT_DOUBLE_EQ(init[1], 2.0);
  EXPECT_DOUBLE_EQ(init.at(2), 3.0);
}

TEST(VectorTest, DotAndNorm) {
  Vector a{1.0, 2.0, 3.0};
  Vector b{4.0, -5.0, 6.0};
  EXPECT_DOUBLE_EQ(a.Dot(b), 4.0 - 10.0 + 18.0);
  EXPECT_DOUBLE_EQ(a.Norm2(), std::sqrt(14.0));
}

TEST(VectorTest, AxpyAndScale) {
  Vector y{1.0, 1.0};
  Vector x{2.0, 3.0};
  y.Axpy(2.0, x);
  EXPECT_DOUBLE_EQ(y[0], 5.0);
  EXPECT_DOUBLE_EQ(y[1], 7.0);
  y.Scale(0.5);
  EXPECT_DOUBLE_EQ(y[0], 2.5);
}

TEST(VectorTest, ArithmeticOperators) {
  Vector a{1.0, 2.0};
  Vector b{3.0, 5.0};
  Vector sum = a + b;
  Vector diff = b - a;
  Vector scaled = a * 3.0;
  EXPECT_DOUBLE_EQ(sum[1], 7.0);
  EXPECT_DOUBLE_EQ(diff[0], 2.0);
  EXPECT_DOUBLE_EQ(scaled[1], 6.0);
  a += b;
  EXPECT_DOUBLE_EQ(a[0], 4.0);
  a -= b;
  EXPECT_DOUBLE_EQ(a[0], 1.0);
  a *= 2.0;
  EXPECT_DOUBLE_EQ(a[1], 4.0);
}

TEST(VectorTest, MaxAbsAndSum) {
  Vector v{-3.0, 2.0, 1.0};
  EXPECT_DOUBLE_EQ(v.MaxAbs(), 3.0);
  EXPECT_DOUBLE_EQ(v.Sum(), 0.0);
  EXPECT_DOUBLE_EQ(Vector().MaxAbs(), 0.0);
}

TEST(VectorTest, DistanceAndMean) {
  Vector a{0.0, 0.0};
  Vector b{3.0, 4.0};
  EXPECT_DOUBLE_EQ(Distance(a, b), 5.0);
  Vector c{6.0, 8.0};
  Vector m = Mean({&b, &c});
  EXPECT_DOUBLE_EQ(m[0], 4.5);
  EXPECT_DOUBLE_EQ(m[1], 6.0);
}

TEST(VectorTest, FillAndResize) {
  Vector v(2);
  v.Fill(7.0);
  v.Resize(4);
  EXPECT_DOUBLE_EQ(v[1], 7.0);
  EXPECT_DOUBLE_EQ(v[3], 0.0);
}

TEST(MatrixTest, IdentityAndAccess) {
  Matrix eye = Matrix::Identity(3);
  EXPECT_DOUBLE_EQ(eye(1, 1), 1.0);
  EXPECT_DOUBLE_EQ(eye(0, 2), 0.0);
  EXPECT_EQ(eye.rows(), 3u);
  EXPECT_EQ(eye.cols(), 3u);
}

TEST(MatrixTest, RowColSetRow) {
  Matrix m(2, 3);
  m.SetRow(0, Vector{1.0, 2.0, 3.0});
  m.SetRow(1, Vector{4.0, 5.0, 6.0});
  EXPECT_EQ(m.Row(1), (Vector{4.0, 5.0, 6.0}));
  EXPECT_EQ(m.Col(2), (Vector{3.0, 6.0}));
}

TEST(MatrixTest, MultiplyKnownProduct) {
  Matrix a(2, 3);
  a.SetRow(0, Vector{1.0, 2.0, 3.0});
  a.SetRow(1, Vector{4.0, 5.0, 6.0});
  Matrix b(3, 2);
  b.SetRow(0, Vector{7.0, 8.0});
  b.SetRow(1, Vector{9.0, 10.0});
  b.SetRow(2, Vector{11.0, 12.0});
  Matrix c = Matrix::Multiply(a, b);
  EXPECT_DOUBLE_EQ(c(0, 0), 58.0);
  EXPECT_DOUBLE_EQ(c(0, 1), 64.0);
  EXPECT_DOUBLE_EQ(c(1, 0), 139.0);
  EXPECT_DOUBLE_EQ(c(1, 1), 154.0);
}

TEST(MatrixTest, MultiplyByIdentityIsNoOp) {
  Matrix a(3, 3);
  for (size_t i = 0; i < 3; ++i) {
    for (size_t j = 0; j < 3; ++j) a(i, j) = i * 3.0 + j;
  }
  Matrix prod = Matrix::Multiply(a, Matrix::Identity(3));
  EXPECT_TRUE(prod == a);
}

TEST(MatrixTest, MultiplyVecAndTransposeVec) {
  Matrix a(2, 3);
  a.SetRow(0, Vector{1.0, 0.0, 2.0});
  a.SetRow(1, Vector{0.0, 3.0, 0.0});
  Vector x{1.0, 1.0, 1.0};
  Vector y = a.MultiplyVec(x);
  EXPECT_EQ(y, (Vector{3.0, 3.0}));
  Vector z{2.0, 1.0};
  Vector w = a.MultiplyTransposeVec(z);
  EXPECT_EQ(w, (Vector{2.0, 3.0, 4.0}));
}

TEST(MatrixTest, TransposeInvolution) {
  Matrix a(2, 3);
  a.SetRow(0, Vector{1.0, 2.0, 3.0});
  a.SetRow(1, Vector{4.0, 5.0, 6.0});
  Matrix att = a.Transpose().Transpose();
  EXPECT_TRUE(att == a);
  EXPECT_DOUBLE_EQ(a.Transpose()(2, 1), 6.0);
}

TEST(MatrixTest, GramRowsIsSymmetricPsd) {
  Matrix a(3, 5);
  for (size_t i = 0; i < 3; ++i) {
    for (size_t j = 0; j < 5; ++j) {
      a(i, j) = std::sin(static_cast<double>(i * 5 + j));
    }
  }
  Matrix g = a.GramRows();
  EXPECT_EQ(g.rows(), 3u);
  for (size_t i = 0; i < 3; ++i) {
    EXPECT_GE(g(i, i), 0.0);
    for (size_t j = 0; j < 3; ++j) {
      EXPECT_DOUBLE_EQ(g(i, j), g(j, i));
      EXPECT_NEAR(g(i, j), a.Row(i).Dot(a.Row(j)), 1e-12);
    }
  }
}

TEST(MatrixTest, Norms) {
  Matrix m(2, 2);
  m(0, 0) = 3.0;
  m(0, 1) = -4.0;
  m(1, 0) = 0.0;
  m(1, 1) = 12.0;
  EXPECT_DOUBLE_EQ(m.FrobeniusNorm(), 13.0);
  EXPECT_DOUBLE_EQ(m.MaxAbs(), 12.0);
  // Column sums of |.|: col0 = 3, col1 = 16.
  EXPECT_DOUBLE_EQ(m.MaxAbsColumnSum(), 16.0);
}

TEST(MatrixTest, AddScaleFrobeniusDistance) {
  Matrix a(2, 2, 1.0);
  Matrix b(2, 2, 3.0);
  EXPECT_DOUBLE_EQ(a.FrobeniusDistance(b), 4.0);
  a.Add(0.5, b);
  EXPECT_DOUBLE_EQ(a(0, 0), 2.5);
  a.Scale(2.0);
  EXPECT_DOUBLE_EQ(a(1, 1), 5.0);
}

}  // namespace
}  // namespace comfedsv
