#include <gtest/gtest.h>

#include <cmath>

#include "linalg/matrix.h"
#include "linalg/vector.h"

namespace comfedsv {
namespace {

TEST(VectorTest, ConstructionAndAccess) {
  Vector zero(4);
  EXPECT_EQ(zero.size(), 4u);
  for (size_t i = 0; i < 4; ++i) EXPECT_DOUBLE_EQ(zero[i], 0.0);

  Vector filled(3, 2.5);
  EXPECT_DOUBLE_EQ(filled[2], 2.5);

  Vector init{1.0, 2.0, 3.0};
  EXPECT_DOUBLE_EQ(init[1], 2.0);
  EXPECT_DOUBLE_EQ(init.at(2), 3.0);
}

TEST(VectorTest, DotAndNorm) {
  Vector a{1.0, 2.0, 3.0};
  Vector b{4.0, -5.0, 6.0};
  EXPECT_DOUBLE_EQ(a.Dot(b), 4.0 - 10.0 + 18.0);
  EXPECT_DOUBLE_EQ(a.Norm2(), std::sqrt(14.0));
}

TEST(VectorTest, AxpyAndScale) {
  Vector y{1.0, 1.0};
  Vector x{2.0, 3.0};
  y.Axpy(2.0, x);
  EXPECT_DOUBLE_EQ(y[0], 5.0);
  EXPECT_DOUBLE_EQ(y[1], 7.0);
  y.Scale(0.5);
  EXPECT_DOUBLE_EQ(y[0], 2.5);
}

TEST(VectorTest, ArithmeticOperators) {
  Vector a{1.0, 2.0};
  Vector b{3.0, 5.0};
  Vector sum = a + b;
  Vector diff = b - a;
  Vector scaled = a * 3.0;
  EXPECT_DOUBLE_EQ(sum[1], 7.0);
  EXPECT_DOUBLE_EQ(diff[0], 2.0);
  EXPECT_DOUBLE_EQ(scaled[1], 6.0);
  a += b;
  EXPECT_DOUBLE_EQ(a[0], 4.0);
  a -= b;
  EXPECT_DOUBLE_EQ(a[0], 1.0);
  a *= 2.0;
  EXPECT_DOUBLE_EQ(a[1], 4.0);
}

TEST(VectorTest, MaxAbsAndSum) {
  Vector v{-3.0, 2.0, 1.0};
  EXPECT_DOUBLE_EQ(v.MaxAbs(), 3.0);
  EXPECT_DOUBLE_EQ(v.Sum(), 0.0);
  EXPECT_DOUBLE_EQ(Vector().MaxAbs(), 0.0);
}

TEST(VectorTest, DistanceAndMean) {
  Vector a{0.0, 0.0};
  Vector b{3.0, 4.0};
  EXPECT_DOUBLE_EQ(Distance(a, b), 5.0);
  Vector c{6.0, 8.0};
  Vector m = Mean({&b, &c});
  EXPECT_DOUBLE_EQ(m[0], 4.5);
  EXPECT_DOUBLE_EQ(m[1], 6.0);
}

TEST(VectorTest, FillAndResize) {
  Vector v(2);
  v.Fill(7.0);
  v.Resize(4);
  EXPECT_DOUBLE_EQ(v[1], 7.0);
  EXPECT_DOUBLE_EQ(v[3], 0.0);
}

TEST(MatrixTest, IdentityAndAccess) {
  Matrix eye = Matrix::Identity(3);
  EXPECT_DOUBLE_EQ(eye(1, 1), 1.0);
  EXPECT_DOUBLE_EQ(eye(0, 2), 0.0);
  EXPECT_EQ(eye.rows(), 3u);
  EXPECT_EQ(eye.cols(), 3u);
}

TEST(MatrixTest, RowColSetRow) {
  Matrix m(2, 3);
  m.SetRow(0, Vector{1.0, 2.0, 3.0});
  m.SetRow(1, Vector{4.0, 5.0, 6.0});
  EXPECT_EQ(m.Row(1), (Vector{4.0, 5.0, 6.0}));
  EXPECT_EQ(m.Col(2), (Vector{3.0, 6.0}));
}

TEST(MatrixTest, MultiplyKnownProduct) {
  Matrix a(2, 3);
  a.SetRow(0, Vector{1.0, 2.0, 3.0});
  a.SetRow(1, Vector{4.0, 5.0, 6.0});
  Matrix b(3, 2);
  b.SetRow(0, Vector{7.0, 8.0});
  b.SetRow(1, Vector{9.0, 10.0});
  b.SetRow(2, Vector{11.0, 12.0});
  Matrix c = Matrix::Multiply(a, b);
  EXPECT_DOUBLE_EQ(c(0, 0), 58.0);
  EXPECT_DOUBLE_EQ(c(0, 1), 64.0);
  EXPECT_DOUBLE_EQ(c(1, 0), 139.0);
  EXPECT_DOUBLE_EQ(c(1, 1), 154.0);
}

TEST(MatrixTest, MultiplyByIdentityIsNoOp) {
  Matrix a(3, 3);
  for (size_t i = 0; i < 3; ++i) {
    for (size_t j = 0; j < 3; ++j) a(i, j) = i * 3.0 + j;
  }
  Matrix prod = Matrix::Multiply(a, Matrix::Identity(3));
  EXPECT_TRUE(prod == a);
}

TEST(MatrixTest, MultiplyVecAndTransposeVec) {
  Matrix a(2, 3);
  a.SetRow(0, Vector{1.0, 0.0, 2.0});
  a.SetRow(1, Vector{0.0, 3.0, 0.0});
  Vector x{1.0, 1.0, 1.0};
  Vector y = a.MultiplyVec(x);
  EXPECT_EQ(y, (Vector{3.0, 3.0}));
  Vector z{2.0, 1.0};
  Vector w = a.MultiplyTransposeVec(z);
  EXPECT_EQ(w, (Vector{2.0, 3.0, 4.0}));
}

TEST(MatrixTest, TransposeInvolution) {
  Matrix a(2, 3);
  a.SetRow(0, Vector{1.0, 2.0, 3.0});
  a.SetRow(1, Vector{4.0, 5.0, 6.0});
  Matrix att = a.Transpose().Transpose();
  EXPECT_TRUE(att == a);
  EXPECT_DOUBLE_EQ(a.Transpose()(2, 1), 6.0);
}

TEST(MatrixTest, GramRowsIsSymmetricPsd) {
  Matrix a(3, 5);
  for (size_t i = 0; i < 3; ++i) {
    for (size_t j = 0; j < 5; ++j) {
      a(i, j) = std::sin(static_cast<double>(i * 5 + j));
    }
  }
  Matrix g = a.GramRows();
  EXPECT_EQ(g.rows(), 3u);
  for (size_t i = 0; i < 3; ++i) {
    EXPECT_GE(g(i, i), 0.0);
    for (size_t j = 0; j < 3; ++j) {
      EXPECT_DOUBLE_EQ(g(i, j), g(j, i));
      EXPECT_NEAR(g(i, j), a.Row(i).Dot(a.Row(j)), 1e-12);
    }
  }
}

TEST(MatrixTest, Norms) {
  Matrix m(2, 2);
  m(0, 0) = 3.0;
  m(0, 1) = -4.0;
  m(1, 0) = 0.0;
  m(1, 1) = 12.0;
  EXPECT_DOUBLE_EQ(m.FrobeniusNorm(), 13.0);
  EXPECT_DOUBLE_EQ(m.MaxAbs(), 12.0);
  // Column sums of |.|: col0 = 3, col1 = 16.
  EXPECT_DOUBLE_EQ(m.MaxAbsColumnSum(), 16.0);
}

TEST(MatrixTest, AddScaleFrobeniusDistance) {
  Matrix a(2, 2, 1.0);
  Matrix b(2, 2, 3.0);
  EXPECT_DOUBLE_EQ(a.FrobeniusDistance(b), 4.0);
  a.Add(0.5, b);
  EXPECT_DOUBLE_EQ(a(0, 0), 2.5);
  a.Scale(2.0);
  EXPECT_DOUBLE_EQ(a(1, 1), 5.0);
}

TEST(MatrixTest, MultiplyTransposedBMatchesExplicitTranspose) {
  // Sizes straddle the 4-row accumulator block (7 = 4 + 3 remainder).
  Matrix a(5, 9);
  Matrix b(7, 9);
  for (size_t i = 0; i < a.rows(); ++i) {
    for (size_t j = 0; j < a.cols(); ++j) {
      a(i, j) = std::sin(static_cast<double>(i * 9 + j));
    }
  }
  for (size_t i = 0; i < b.rows(); ++i) {
    for (size_t j = 0; j < b.cols(); ++j) {
      b(i, j) = std::cos(static_cast<double>(i * 9 + j));
    }
  }
  Matrix direct = Matrix::MultiplyTransposedB(a, b);
  Matrix via_transpose = Matrix::Multiply(a, b.Transpose());
  ASSERT_EQ(direct.rows(), 5u);
  ASSERT_EQ(direct.cols(), 7u);
  for (size_t i = 0; i < direct.rows(); ++i) {
    for (size_t j = 0; j < direct.cols(); ++j) {
      // Same ascending-k accumulation order in both kernels.
      EXPECT_EQ(direct(i, j), via_transpose(i, j)) << i << "," << j;
    }
  }
}

TEST(MatrixTest, BlockedMultiplyCrossesKBlockBoundary) {
  // 130 inner columns exercise the k-blocking (two full 64-blocks plus a
  // remainder); validate against a plain triple loop.
  Matrix a(3, 130);
  Matrix b(130, 4);
  for (size_t i = 0; i < a.rows(); ++i) {
    for (size_t k = 0; k < a.cols(); ++k) {
      a(i, k) = (k % 17 == 0) ? 0.0 : std::sin(static_cast<double>(i + k));
    }
  }
  for (size_t k = 0; k < b.rows(); ++k) {
    for (size_t j = 0; j < b.cols(); ++j) {
      b(k, j) = std::cos(static_cast<double>(k * 4 + j));
    }
  }
  Matrix fast = Matrix::Multiply(a, b);
  for (size_t i = 0; i < a.rows(); ++i) {
    for (size_t j = 0; j < b.cols(); ++j) {
      double acc = 0.0;
      for (size_t k = 0; k < a.cols(); ++k) {
        const double aik = a(i, k);
        if (aik == 0.0) continue;
        acc += aik * b(k, j);
      }
      EXPECT_EQ(fast(i, j), acc) << i << "," << j;
    }
  }
}

TEST(MatrixTest, PackRowSlicesInterleavesMemberSlices) {
  // 3 member rows, layout [W row-major (4 x 2) | bias (2)].
  const size_t dim = 4, width = 2, members = 3;
  Matrix src(members, dim * width + width);
  for (size_t m = 0; m < members; ++m) {
    for (size_t c = 0; c < src.cols(); ++c) {
      src(m, c) = static_cast<double>(m * 100 + c);
    }
  }
  Matrix packed = Matrix::PackRowSlices(src, 0, members, 0, width, dim);
  ASSERT_EQ(packed.rows(), dim);
  ASSERT_EQ(packed.cols(), members * width);
  for (size_t j = 0; j < dim; ++j) {
    for (size_t m = 0; m < members; ++m) {
      for (size_t u = 0; u < width; ++u) {
        EXPECT_EQ(packed(j, m * width + u), src(m, j * width + u));
      }
    }
  }
  // Sub-range of rows with a column offset (the bias block).
  Matrix bias = Matrix::PackRowSlices(src, 1, 2, dim * width, width, 1);
  ASSERT_EQ(bias.rows(), 1u);
  ASSERT_EQ(bias.cols(), 2 * width);
  EXPECT_EQ(bias(0, 0), src(1, dim * width));
  EXPECT_EQ(bias(0, 3), src(2, dim * width + 1));
}

}  // namespace
}  // namespace comfedsv
