// Tests for the scale-aware noise injectors used by the Fig. 6 workload.
#include <gtest/gtest.h>

#include <cmath>

#include "data/image_sim.h"
#include "data/noise.h"

namespace comfedsv {
namespace {

Dataset MakePool(int samples, uint64_t seed) {
  SimulatedImageConfig cfg;
  cfg.num_samples = samples;
  cfg.seed = seed;
  return GenerateSimulatedImages(cfg);
}

std::vector<double> ColumnStddev(const Dataset& d) {
  std::vector<double> mean(d.dim(), 0.0), var(d.dim(), 0.0);
  for (size_t i = 0; i < d.num_samples(); ++i) {
    for (size_t j = 0; j < d.dim(); ++j) mean[j] += d.sample(i)[j];
  }
  for (double& m : mean) m /= static_cast<double>(d.num_samples());
  for (size_t i = 0; i < d.num_samples(); ++i) {
    for (size_t j = 0; j < d.dim(); ++j) {
      const double x = d.sample(i)[j] - mean[j];
      var[j] += x * x;
    }
  }
  std::vector<double> out(d.dim());
  for (size_t j = 0; j < d.dim(); ++j) {
    out[j] = std::sqrt(var[j] / static_cast<double>(d.num_samples()));
  }
  return out;
}

TEST(RelativeNoiseTest, CorruptsRequestedFractionOnly) {
  Dataset d = MakePool(200, 1);
  Dataset original = d;
  Rng rng(2);
  EXPECT_EQ(AddRelativeGaussianFeatureNoise(&d, 0.3, 1.0, &rng), 60);
  int differing = 0;
  for (size_t i = 0; i < d.num_samples(); ++i) {
    for (size_t j = 0; j < d.dim(); ++j) {
      if (d.sample(i)[j] != original.sample(i)[j]) {
        ++differing;
        break;
      }
    }
  }
  EXPECT_EQ(differing, 60);
  EXPECT_EQ(d.labels(), original.labels());
}

TEST(RelativeNoiseTest, PreservesColumnScaleRoughly) {
  // Relative noise at factor f inflates column variance by ~(1 + p f^2)
  // where p is the corrupted fraction — never by orders of magnitude.
  Dataset d = MakePool(2000, 3);
  std::vector<double> before = ColumnStddev(d);
  Rng rng(4);
  AddRelativeGaussianFeatureNoise(&d, 0.5, 1.0, &rng);
  std::vector<double> after = ColumnStddev(d);
  for (size_t j = 0; j < d.dim(); ++j) {
    EXPECT_LT(after[j], 2.0 * before[j]) << "column " << j;
    EXPECT_GT(after[j], 0.8 * before[j]) << "column " << j;
  }
}

TEST(RelativeNoiseTest, ZeroFractionAndEmptyDatasetAreNoOps) {
  Dataset d = MakePool(30, 5);
  Dataset original = d;
  Rng rng(6);
  EXPECT_EQ(AddRelativeGaussianFeatureNoise(&d, 0.0, 2.0, &rng), 0);
  EXPECT_TRUE(d.features() == original.features());
  Dataset empty(Matrix(0, 4), {}, 2);
  EXPECT_EQ(AddRelativeGaussianFeatureNoise(&empty, 0.5, 1.0, &rng), 0);
}

TEST(ReplaceWithNoiseTest, ReplacedSamplesMatchColumnMoments) {
  Dataset d = MakePool(2000, 7);
  std::vector<double> before = ColumnStddev(d);
  Rng rng(8);
  EXPECT_EQ(ReplaceFeaturesWithNoise(&d, 1.0, &rng), 2000);
  std::vector<double> after = ColumnStddev(d);
  // Fully replaced data has (approximately) the same per-column spread.
  for (size_t j = 0; j < d.dim(); ++j) {
    EXPECT_NEAR(after[j] / before[j], 1.0, 0.15) << "column " << j;
  }
}

TEST(ReplaceWithNoiseTest, DestroysClassStructure) {
  // Class means collapse to the global mean once features are replaced.
  Dataset d = MakePool(1000, 9);
  auto class_mean_spread = [](const Dataset& data) {
    // Average distance between class-0 and class-1 mean vectors.
    Vector m0(data.dim()), m1(data.dim());
    int c0 = 0, c1 = 0;
    for (size_t i = 0; i < data.num_samples(); ++i) {
      if (data.label(i) == 0) {
        for (size_t j = 0; j < data.dim(); ++j) m0[j] += data.sample(i)[j];
        ++c0;
      } else if (data.label(i) == 1) {
        for (size_t j = 0; j < data.dim(); ++j) m1[j] += data.sample(i)[j];
        ++c1;
      }
    }
    m0.Scale(1.0 / c0);
    m1.Scale(1.0 / c1);
    return Distance(m0, m1);
  };
  const double spread_before = class_mean_spread(d);
  Rng rng(10);
  ReplaceFeaturesWithNoise(&d, 1.0, &rng);
  EXPECT_LT(class_mean_spread(d), 0.4 * spread_before);
}

TEST(ReplaceWithNoiseTest, PartialReplacementKeepsLabels) {
  Dataset d = MakePool(100, 11);
  Dataset original = d;
  Rng rng(12);
  EXPECT_EQ(ReplaceFeaturesWithNoise(&d, 0.25, &rng), 25);
  EXPECT_EQ(d.labels(), original.labels());
}

}  // namespace
}  // namespace comfedsv
