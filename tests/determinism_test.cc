// Determinism regression: the full valuation pipeline must produce
// bit-identical FedSV / ComFedSV / ground-truth vectors whether it runs
// inline (no context), on a single-threaded context, or on a
// multi-threaded one. This is the contract that makes the
// ExecutionContext parallelism safe to enable everywhere.
#include <gtest/gtest.h>

#include <optional>
#include <vector>

#include "common/execution_context.h"
#include "completion/solver.h"
#include "core/pipeline.h"
#include "data/image_sim.h"
#include "data/partition.h"
#include "models/logistic.h"
#include "models/mlp.h"

namespace comfedsv {
namespace {

struct Workload {
  std::vector<Dataset> clients;
  Dataset test;
};

Workload MakeWorkload(int num_clients, uint64_t seed) {
  SimulatedImageConfig cfg;
  cfg.num_samples = 40 * num_clients + 120;
  cfg.seed = seed;
  Dataset pool = GenerateSimulatedImages(cfg);
  Rng rng(seed + 1);
  auto [train_pool, test] = pool.RandomSplit(0.25, &rng);
  return {PartitionIid(train_pool, num_clients, &rng), std::move(test)};
}

void ExpectBitIdentical(const Vector& a, const Vector& b,
                        const char* what) {
  ASSERT_EQ(a.size(), b.size()) << what;
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i], b[i]) << what << " diverges at client " << i;
  }
}

ValuationOutcome RunWith(const Workload& w, const Model& model,
                         const FedAvgConfig& fed_cfg,
                         const ValuationRequest& request,
                         ExecutionContext* ctx) {
  Result<ValuationOutcome> run =
      RunValuation(model, w.clients, w.test, fed_cfg, request, ctx);
  EXPECT_TRUE(run.ok()) << run.status().ToString();
  return std::move(run).value();
}

TEST(DeterminismTest, SampledPipelineIsThreadCountInvariant) {
  const int n = 5;
  Workload w = MakeWorkload(n, 321);
  LogisticRegression model(w.test.dim(), 10);

  FedAvgConfig fed_cfg;
  fed_cfg.num_rounds = 4;
  fed_cfg.clients_per_round = 3;
  fed_cfg.seed = 11;

  ValuationRequest request;
  request.compute_fedsv = true;
  request.fedsv.mode = FedSvConfig::Mode::kMonteCarlo;
  request.fedsv.permutations_per_round = 8;
  request.fedsv.seed = 12;
  request.compute_comfedsv = true;
  request.comfedsv.mode = ComFedSvConfig::Mode::kSampled;
  request.comfedsv.num_permutations = 6;
  request.comfedsv.completion.rank = 2;
  request.comfedsv.completion.lambda = 1e-3;
  request.comfedsv.completion.max_iters = 40;
  request.comfedsv.seed = 13;

  ValuationOutcome inline_run = RunWith(w, model, fed_cfg, request, nullptr);
  ExecutionContext single(1, 99);
  ValuationOutcome single_run = RunWith(w, model, fed_cfg, request, &single);
  ExecutionContext threaded(4, 99);
  ValuationOutcome threaded_run =
      RunWith(w, model, fed_cfg, request, &threaded);

  ASSERT_TRUE(inline_run.fedsv_values.has_value());
  ASSERT_TRUE(threaded_run.fedsv_values.has_value());
  ExpectBitIdentical(*inline_run.fedsv_values, *single_run.fedsv_values,
                     "FedSV inline vs threads=1");
  ExpectBitIdentical(*inline_run.fedsv_values, *threaded_run.fedsv_values,
                     "FedSV inline vs threads=4");

  ASSERT_TRUE(inline_run.comfedsv.has_value());
  ASSERT_TRUE(threaded_run.comfedsv.has_value());
  ExpectBitIdentical(inline_run.comfedsv->values,
                     single_run.comfedsv->values,
                     "ComFedSV inline vs threads=1");
  ExpectBitIdentical(inline_run.comfedsv->values,
                     threaded_run.comfedsv->values,
                     "ComFedSV inline vs threads=4");

  // Loss-call accounting counts distinct coalitions, which is also
  // thread-count invariant.
  EXPECT_EQ(inline_run.fedsv_loss_calls, threaded_run.fedsv_loss_calls);
  EXPECT_EQ(inline_run.comfedsv->loss_calls,
            threaded_run.comfedsv->loss_calls);

  // Training itself must match too (pre-split per-client RNG streams).
  ExpectBitIdentical(inline_run.training.final_params,
                     threaded_run.training.final_params,
                     "final params inline vs threads=4");
}

TEST(DeterminismTest, SamplerPipelinesAreThreadCountInvariant) {
  // Every non-default permutation sampler (antithetic pairs, stratified
  // rotation blocks, truncated walks) must keep the whole pipeline —
  // Monte-Carlo FedSV walks and the sampled ComFedSV recorder —
  // bit-identical across thread counts {1, 4} and inline execution.
  // Orderings are drawn up front from the seed, and the truncated wave
  // walk decides from utilities only, so nothing may depend on
  // scheduling.
  const int n = 5;
  Workload w = MakeWorkload(n, 555);
  LogisticRegression model(w.test.dim(), 10);

  FedAvgConfig fed_cfg;
  fed_cfg.num_rounds = 4;
  fed_cfg.clients_per_round = 3;
  fed_cfg.seed = 61;

  for (SamplerKind kind :
       {SamplerKind::kAntithetic, SamplerKind::kStratified,
        SamplerKind::kTruncated}) {
    SCOPED_TRACE(SamplerKindName(kind));
    ValuationRequest request;
    request.compute_fedsv = true;
    request.fedsv.mode = FedSvConfig::Mode::kMonteCarlo;
    request.fedsv.permutations_per_round = 7;
    request.fedsv.sampler.kind = kind;
    request.fedsv.sampler.truncation_tolerance = 0.02;
    request.fedsv.seed = 62;
    request.compute_comfedsv = true;
    request.comfedsv.mode = ComFedSvConfig::Mode::kSampled;
    request.comfedsv.num_permutations = 6;
    request.comfedsv.sampler.kind = kind;
    request.comfedsv.sampler.truncation_tolerance = 0.02;
    request.comfedsv.completion.rank = 2;
    request.comfedsv.completion.lambda = 1e-3;
    request.comfedsv.completion.max_iters = 30;
    request.comfedsv.seed = 63;

    ValuationOutcome inline_run =
        RunWith(w, model, fed_cfg, request, nullptr);
    ExecutionContext single(1, 64);
    ValuationOutcome single_run =
        RunWith(w, model, fed_cfg, request, &single);
    ExecutionContext threaded(4, 64);
    ValuationOutcome threaded_run =
        RunWith(w, model, fed_cfg, request, &threaded);

    ASSERT_TRUE(inline_run.fedsv_values.has_value());
    ExpectBitIdentical(*inline_run.fedsv_values, *single_run.fedsv_values,
                       "sampler FedSV inline vs threads=1");
    ExpectBitIdentical(*inline_run.fedsv_values,
                       *threaded_run.fedsv_values,
                       "sampler FedSV inline vs threads=4");
    ASSERT_TRUE(inline_run.comfedsv.has_value());
    ExpectBitIdentical(inline_run.comfedsv->values,
                       single_run.comfedsv->values,
                       "sampler ComFedSV inline vs threads=1");
    ExpectBitIdentical(inline_run.comfedsv->values,
                       threaded_run.comfedsv->values,
                       "sampler ComFedSV inline vs threads=4");
    EXPECT_EQ(inline_run.fedsv_loss_calls, threaded_run.fedsv_loss_calls);
    EXPECT_EQ(inline_run.comfedsv->loss_calls,
              threaded_run.comfedsv->loss_calls);
  }
}

TEST(DeterminismTest, BatchedEngineMlpPipelineIsThreadCountInvariant) {
  // Runs the full pipeline through the batched coalition-loss engine
  // with the Mlp override (packed layer-0 kernel + shared forward tail):
  // exact FedSV prefetches the subset lattice, the sampled recorder
  // batches its permutation prefixes, and every output must stay
  // bit-identical across thread counts.
  const int n = 4;
  Workload w = MakeWorkload(n, 432);
  Mlp model({w.test.dim(), 12, 10}, 1e-4);

  FedAvgConfig fed_cfg;
  fed_cfg.num_rounds = 3;
  fed_cfg.clients_per_round = 3;
  fed_cfg.seed = 41;

  ValuationRequest request;
  request.compute_fedsv = true;
  request.fedsv.mode = FedSvConfig::Mode::kExact;
  request.fedsv.seed = 42;
  request.compute_comfedsv = true;
  request.comfedsv.mode = ComFedSvConfig::Mode::kSampled;
  request.comfedsv.num_permutations = 5;
  request.comfedsv.completion.rank = 2;
  request.comfedsv.completion.lambda = 1e-3;
  request.comfedsv.completion.max_iters = 30;
  request.comfedsv.seed = 43;

  ValuationOutcome inline_run = RunWith(w, model, fed_cfg, request, nullptr);
  ExecutionContext single(1, 44);
  ValuationOutcome single_run = RunWith(w, model, fed_cfg, request, &single);
  ExecutionContext threaded(4, 44);
  ValuationOutcome threaded_run =
      RunWith(w, model, fed_cfg, request, &threaded);

  ASSERT_TRUE(inline_run.fedsv_values.has_value());
  ExpectBitIdentical(*inline_run.fedsv_values, *single_run.fedsv_values,
                     "MLP FedSV inline vs threads=1");
  ExpectBitIdentical(*inline_run.fedsv_values, *threaded_run.fedsv_values,
                     "MLP FedSV inline vs threads=4");
  ASSERT_TRUE(inline_run.comfedsv.has_value());
  ExpectBitIdentical(inline_run.comfedsv->values,
                     threaded_run.comfedsv->values,
                     "MLP ComFedSV inline vs threads=4");
  EXPECT_EQ(inline_run.fedsv_loss_calls, threaded_run.fedsv_loss_calls);
  EXPECT_EQ(inline_run.comfedsv->loss_calls,
            threaded_run.comfedsv->loss_calls);
}

TEST(DeterminismTest, SmoothedAlsCompletionIsThreadCountInvariant) {
  // Temporal smoothing forces the W-side Gauss–Seidel sweep down its
  // sequential path while the H-side still fans out; the mix must stay
  // deterministic.
  const int n = 5;
  Workload w = MakeWorkload(n, 654);
  LogisticRegression model(w.test.dim(), 10);

  FedAvgConfig fed_cfg;
  fed_cfg.num_rounds = 3;
  fed_cfg.clients_per_round = 3;
  fed_cfg.seed = 21;

  ValuationRequest request;
  request.compute_fedsv = false;
  request.compute_comfedsv = true;
  request.comfedsv.mode = ComFedSvConfig::Mode::kSampled;
  request.comfedsv.num_permutations = 5;
  request.comfedsv.completion.rank = 2;
  request.comfedsv.completion.lambda = 1e-3;
  request.comfedsv.completion.temporal_smoothing = 0.1;
  request.comfedsv.completion.max_iters = 30;
  request.comfedsv.seed = 22;

  ValuationOutcome inline_run = RunWith(w, model, fed_cfg, request, nullptr);
  ExecutionContext threaded(4);
  ValuationOutcome threaded_run =
      RunWith(w, model, fed_cfg, request, &threaded);

  ASSERT_TRUE(inline_run.comfedsv.has_value());
  ASSERT_TRUE(threaded_run.comfedsv.has_value());
  ExpectBitIdentical(inline_run.comfedsv->values,
                     threaded_run.comfedsv->values,
                     "smoothed ComFedSV inline vs threads=4");
}

TEST(DeterminismTest, CompletionSolversAreThreadCountInvariant) {
  // Every completion solver (ALS, ALS + temporal smoothing with its
  // red-black W-side, CCD++'s phased residual refits, SGD's stratified
  // grid schedule) must produce bit-identical factors inline, on a
  // single-threaded context, and on a 4-thread context. The observation
  // set is large enough that the parallel sweeps span several fixed
  // blocks.
  const int rows = 70, cols = 90, true_rank = 3;
  Rng rng(2024);
  Matrix a(rows, true_rank), b(true_rank, cols);
  for (size_t i = 0; i < a.rows(); ++i) {
    for (int k = 0; k < true_rank; ++k) a(i, k) = rng.NextGaussian();
  }
  for (int k = 0; k < true_rank; ++k) {
    for (size_t j = 0; j < b.cols(); ++j) b(k, j) = rng.NextGaussian();
  }
  Matrix truth = Matrix::Multiply(a, b);
  ObservationSet obs(rows, cols);
  for (int i = 0; i < rows; ++i) {
    for (int j = 0; j < cols; ++j) {
      if (rng.NextBernoulli(0.2)) obs.Add(i, j, truth(i, j));
    }
  }
  obs.Finalize();

  struct Variant {
    const char* name;
    CompletionSolver solver;
    double mu;
  };
  const Variant variants[] = {
      {"als", CompletionSolver::kAls, 0.0},
      {"als+mu", CompletionSolver::kAls, 0.1},
      {"ccd++", CompletionSolver::kCcd, 0.0},
      {"sgd", CompletionSolver::kSgd, 0.0},
  };
  for (const Variant& v : variants) {
    CompletionConfig cfg;
    cfg.rank = 4;
    cfg.lambda = 1e-3;
    cfg.max_iters = 15;
    cfg.temporal_smoothing = v.mu;
    cfg.solver = v.solver;
    cfg.seed = 7;
    cfg.verify_fused_objective = true;

    Result<CompletionResult> inline_fit = CompleteMatrix(obs, cfg, nullptr);
    ASSERT_TRUE(inline_fit.ok()) << v.name;
    ExecutionContext single(1);
    Result<CompletionResult> single_fit = CompleteMatrix(obs, cfg, &single);
    ASSERT_TRUE(single_fit.ok()) << v.name;
    ExecutionContext threaded(4);
    Result<CompletionResult> threaded_fit =
        CompleteMatrix(obs, cfg, &threaded);
    ASSERT_TRUE(threaded_fit.ok()) << v.name;

    EXPECT_TRUE(inline_fit.value().w == single_fit.value().w)
        << v.name << " W inline vs threads=1";
    EXPECT_TRUE(inline_fit.value().h == single_fit.value().h)
        << v.name << " H inline vs threads=1";
    EXPECT_TRUE(inline_fit.value().w == threaded_fit.value().w)
        << v.name << " W inline vs threads=4";
    EXPECT_TRUE(inline_fit.value().h == threaded_fit.value().h)
        << v.name << " H inline vs threads=4";
    EXPECT_EQ(inline_fit.value().iterations,
              threaded_fit.value().iterations)
        << v.name;
    EXPECT_EQ(inline_fit.value().objective,
              threaded_fit.value().objective)
        << v.name;
  }
}

TEST(DeterminismTest, FullModeAndGroundTruthAreThreadCountInvariant) {
  // kFull exercises ObservedUtilityRecorder (parallel subset evaluation +
  // sequential interning) and the ground truth exercises
  // FullUtilityRecorder and the exact per-round Shapley.
  const int n = 4;
  Workload w = MakeWorkload(n, 987);
  LogisticRegression model(w.test.dim(), 10);

  FedAvgConfig fed_cfg;
  fed_cfg.num_rounds = 3;
  fed_cfg.clients_per_round = 2;
  fed_cfg.select_all_first_round = true;
  fed_cfg.seed = 31;

  ValuationRequest request;
  request.compute_fedsv = true;
  request.fedsv.mode = FedSvConfig::Mode::kExact;
  request.fedsv.seed = 32;
  request.compute_comfedsv = true;
  request.comfedsv.mode = ComFedSvConfig::Mode::kFull;
  request.comfedsv.completion.rank = 2;
  request.comfedsv.completion.lambda = 1e-3;
  request.comfedsv.completion.max_iters = 30;
  request.comfedsv.seed = 33;
  request.compute_ground_truth = true;

  ValuationOutcome inline_run = RunWith(w, model, fed_cfg, request, nullptr);
  ExecutionContext threaded(4);
  ValuationOutcome threaded_run =
      RunWith(w, model, fed_cfg, request, &threaded);

  ExpectBitIdentical(*inline_run.fedsv_values, *threaded_run.fedsv_values,
                     "exact FedSV inline vs threads=4");
  ExpectBitIdentical(inline_run.comfedsv->values,
                     threaded_run.comfedsv->values,
                     "full ComFedSV inline vs threads=4");
  ExpectBitIdentical(*inline_run.ground_truth_values,
                     *threaded_run.ground_truth_values,
                     "ground truth inline vs threads=4");
}

}  // namespace
}  // namespace comfedsv
