// Determinism regression: the full valuation pipeline must produce
// bit-identical FedSV / ComFedSV / ground-truth vectors whether it runs
// inline (no context), on a single-threaded context, or on a
// multi-threaded one. This is the contract that makes the
// ExecutionContext parallelism safe to enable everywhere.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <optional>
#include <string>
#include <vector>

#include "common/execution_context.h"
#include "completion/solver.h"
#include "core/pipeline.h"
#include "core/streaming.h"
#include "data/image_sim.h"
#include "data/partition.h"
#include "models/logistic.h"
#include "models/mlp.h"

namespace comfedsv {
namespace {

struct Workload {
  std::vector<Dataset> clients;
  Dataset test;
};

Workload MakeWorkload(int num_clients, uint64_t seed) {
  SimulatedImageConfig cfg;
  cfg.num_samples = 40 * num_clients + 120;
  cfg.seed = seed;
  Dataset pool = GenerateSimulatedImages(cfg);
  Rng rng(seed + 1);
  auto [train_pool, test] = pool.RandomSplit(0.25, &rng);
  return {PartitionIid(train_pool, num_clients, &rng), std::move(test)};
}

void ExpectBitIdentical(const Vector& a, const Vector& b,
                        const char* what) {
  ASSERT_EQ(a.size(), b.size()) << what;
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i], b[i]) << what << " diverges at client " << i;
  }
}

ValuationOutcome RunWith(const Workload& w, const Model& model,
                         const FedAvgConfig& fed_cfg,
                         const ValuationRequest& request,
                         ExecutionContext* ctx) {
  Result<ValuationOutcome> run =
      RunValuation(model, w.clients, w.test, fed_cfg, request, ctx);
  EXPECT_TRUE(run.ok()) << run.status().ToString();
  return std::move(run).value();
}

TEST(DeterminismTest, SampledPipelineIsThreadCountInvariant) {
  const int n = 5;
  Workload w = MakeWorkload(n, 321);
  LogisticRegression model(w.test.dim(), 10);

  FedAvgConfig fed_cfg;
  fed_cfg.num_rounds = 4;
  fed_cfg.clients_per_round = 3;
  fed_cfg.seed = 11;

  ValuationRequest request;
  request.compute_fedsv = true;
  request.fedsv.mode = FedSvConfig::Mode::kMonteCarlo;
  request.fedsv.permutations_per_round = 8;
  request.fedsv.seed = 12;
  request.compute_comfedsv = true;
  request.comfedsv.mode = ComFedSvConfig::Mode::kSampled;
  request.comfedsv.num_permutations = 6;
  request.comfedsv.completion.rank = 2;
  request.comfedsv.completion.lambda = 1e-3;
  request.comfedsv.completion.max_iters = 40;
  request.comfedsv.seed = 13;

  ValuationOutcome inline_run = RunWith(w, model, fed_cfg, request, nullptr);
  ExecutionContext single(1, 99);
  ValuationOutcome single_run = RunWith(w, model, fed_cfg, request, &single);
  ExecutionContext threaded(4, 99);
  ValuationOutcome threaded_run =
      RunWith(w, model, fed_cfg, request, &threaded);

  ASSERT_TRUE(inline_run.fedsv_values.has_value());
  ASSERT_TRUE(threaded_run.fedsv_values.has_value());
  ExpectBitIdentical(*inline_run.fedsv_values, *single_run.fedsv_values,
                     "FedSV inline vs threads=1");
  ExpectBitIdentical(*inline_run.fedsv_values, *threaded_run.fedsv_values,
                     "FedSV inline vs threads=4");

  ASSERT_TRUE(inline_run.comfedsv.has_value());
  ASSERT_TRUE(threaded_run.comfedsv.has_value());
  ExpectBitIdentical(inline_run.comfedsv->values,
                     single_run.comfedsv->values,
                     "ComFedSV inline vs threads=1");
  ExpectBitIdentical(inline_run.comfedsv->values,
                     threaded_run.comfedsv->values,
                     "ComFedSV inline vs threads=4");

  // Loss-call accounting counts distinct coalitions, which is also
  // thread-count invariant.
  EXPECT_EQ(inline_run.fedsv_loss_calls, threaded_run.fedsv_loss_calls);
  EXPECT_EQ(inline_run.comfedsv->loss_calls,
            threaded_run.comfedsv->loss_calls);

  // Training itself must match too (pre-split per-client RNG streams).
  ExpectBitIdentical(inline_run.training.final_params,
                     threaded_run.training.final_params,
                     "final params inline vs threads=4");
}

TEST(DeterminismTest, SamplerPipelinesAreThreadCountInvariant) {
  // Every non-default permutation sampler (antithetic pairs, stratified
  // rotation blocks, truncated walks) must keep the whole pipeline —
  // Monte-Carlo FedSV walks and the sampled ComFedSV recorder —
  // bit-identical across thread counts {1, 4} and inline execution.
  // Orderings are drawn up front from the seed, and the truncated wave
  // walk decides from utilities only, so nothing may depend on
  // scheduling.
  const int n = 5;
  Workload w = MakeWorkload(n, 555);
  LogisticRegression model(w.test.dim(), 10);

  FedAvgConfig fed_cfg;
  fed_cfg.num_rounds = 4;
  fed_cfg.clients_per_round = 3;
  fed_cfg.seed = 61;

  for (SamplerKind kind :
       {SamplerKind::kAntithetic, SamplerKind::kStratified,
        SamplerKind::kTruncated}) {
    SCOPED_TRACE(SamplerKindName(kind));
    ValuationRequest request;
    request.compute_fedsv = true;
    request.fedsv.mode = FedSvConfig::Mode::kMonteCarlo;
    request.fedsv.permutations_per_round = 7;
    request.fedsv.sampler.kind = kind;
    request.fedsv.sampler.truncation_tolerance = 0.02;
    request.fedsv.seed = 62;
    request.compute_comfedsv = true;
    request.comfedsv.mode = ComFedSvConfig::Mode::kSampled;
    request.comfedsv.num_permutations = 6;
    request.comfedsv.sampler.kind = kind;
    request.comfedsv.sampler.truncation_tolerance = 0.02;
    request.comfedsv.completion.rank = 2;
    request.comfedsv.completion.lambda = 1e-3;
    request.comfedsv.completion.max_iters = 30;
    request.comfedsv.seed = 63;

    ValuationOutcome inline_run =
        RunWith(w, model, fed_cfg, request, nullptr);
    ExecutionContext single(1, 64);
    ValuationOutcome single_run =
        RunWith(w, model, fed_cfg, request, &single);
    ExecutionContext threaded(4, 64);
    ValuationOutcome threaded_run =
        RunWith(w, model, fed_cfg, request, &threaded);

    ASSERT_TRUE(inline_run.fedsv_values.has_value());
    ExpectBitIdentical(*inline_run.fedsv_values, *single_run.fedsv_values,
                       "sampler FedSV inline vs threads=1");
    ExpectBitIdentical(*inline_run.fedsv_values,
                       *threaded_run.fedsv_values,
                       "sampler FedSV inline vs threads=4");
    ASSERT_TRUE(inline_run.comfedsv.has_value());
    ExpectBitIdentical(inline_run.comfedsv->values,
                       single_run.comfedsv->values,
                       "sampler ComFedSV inline vs threads=1");
    ExpectBitIdentical(inline_run.comfedsv->values,
                       threaded_run.comfedsv->values,
                       "sampler ComFedSV inline vs threads=4");
    EXPECT_EQ(inline_run.fedsv_loss_calls, threaded_run.fedsv_loss_calls);
    EXPECT_EQ(inline_run.comfedsv->loss_calls,
              threaded_run.comfedsv->loss_calls);
  }
}

TEST(DeterminismTest, BatchedEngineMlpPipelineIsThreadCountInvariant) {
  // Runs the full pipeline through the batched coalition-loss engine
  // with the Mlp override (packed layer-0 kernel + shared forward tail):
  // exact FedSV prefetches the subset lattice, the sampled recorder
  // batches its permutation prefixes, and every output must stay
  // bit-identical across thread counts.
  const int n = 4;
  Workload w = MakeWorkload(n, 432);
  Mlp model({w.test.dim(), 12, 10}, 1e-4);

  FedAvgConfig fed_cfg;
  fed_cfg.num_rounds = 3;
  fed_cfg.clients_per_round = 3;
  fed_cfg.seed = 41;

  ValuationRequest request;
  request.compute_fedsv = true;
  request.fedsv.mode = FedSvConfig::Mode::kExact;
  request.fedsv.seed = 42;
  request.compute_comfedsv = true;
  request.comfedsv.mode = ComFedSvConfig::Mode::kSampled;
  request.comfedsv.num_permutations = 5;
  request.comfedsv.completion.rank = 2;
  request.comfedsv.completion.lambda = 1e-3;
  request.comfedsv.completion.max_iters = 30;
  request.comfedsv.seed = 43;

  ValuationOutcome inline_run = RunWith(w, model, fed_cfg, request, nullptr);
  ExecutionContext single(1, 44);
  ValuationOutcome single_run = RunWith(w, model, fed_cfg, request, &single);
  ExecutionContext threaded(4, 44);
  ValuationOutcome threaded_run =
      RunWith(w, model, fed_cfg, request, &threaded);

  ASSERT_TRUE(inline_run.fedsv_values.has_value());
  ExpectBitIdentical(*inline_run.fedsv_values, *single_run.fedsv_values,
                     "MLP FedSV inline vs threads=1");
  ExpectBitIdentical(*inline_run.fedsv_values, *threaded_run.fedsv_values,
                     "MLP FedSV inline vs threads=4");
  ASSERT_TRUE(inline_run.comfedsv.has_value());
  ExpectBitIdentical(inline_run.comfedsv->values,
                     threaded_run.comfedsv->values,
                     "MLP ComFedSV inline vs threads=4");
  EXPECT_EQ(inline_run.fedsv_loss_calls, threaded_run.fedsv_loss_calls);
  EXPECT_EQ(inline_run.comfedsv->loss_calls,
            threaded_run.comfedsv->loss_calls);
}

TEST(DeterminismTest, SmoothedAlsCompletionIsThreadCountInvariant) {
  // Temporal smoothing forces the W-side Gauss–Seidel sweep down its
  // sequential path while the H-side still fans out; the mix must stay
  // deterministic.
  const int n = 5;
  Workload w = MakeWorkload(n, 654);
  LogisticRegression model(w.test.dim(), 10);

  FedAvgConfig fed_cfg;
  fed_cfg.num_rounds = 3;
  fed_cfg.clients_per_round = 3;
  fed_cfg.seed = 21;

  ValuationRequest request;
  request.compute_fedsv = false;
  request.compute_comfedsv = true;
  request.comfedsv.mode = ComFedSvConfig::Mode::kSampled;
  request.comfedsv.num_permutations = 5;
  request.comfedsv.completion.rank = 2;
  request.comfedsv.completion.lambda = 1e-3;
  request.comfedsv.completion.temporal_smoothing = 0.1;
  request.comfedsv.completion.max_iters = 30;
  request.comfedsv.seed = 22;

  ValuationOutcome inline_run = RunWith(w, model, fed_cfg, request, nullptr);
  ExecutionContext threaded(4);
  ValuationOutcome threaded_run =
      RunWith(w, model, fed_cfg, request, &threaded);

  ASSERT_TRUE(inline_run.comfedsv.has_value());
  ASSERT_TRUE(threaded_run.comfedsv.has_value());
  ExpectBitIdentical(inline_run.comfedsv->values,
                     threaded_run.comfedsv->values,
                     "smoothed ComFedSV inline vs threads=4");
}

TEST(DeterminismTest, CompletionSolversAreThreadCountInvariant) {
  // Every completion solver (ALS, ALS + temporal smoothing with its
  // red-black W-side, CCD++'s phased residual refits, SGD's stratified
  // grid schedule) must produce bit-identical factors inline, on a
  // single-threaded context, and on a 4-thread context. The observation
  // set is large enough that the parallel sweeps span several fixed
  // blocks.
  const int rows = 70, cols = 90, true_rank = 3;
  Rng rng(2024);
  Matrix a(rows, true_rank), b(true_rank, cols);
  for (size_t i = 0; i < a.rows(); ++i) {
    for (int k = 0; k < true_rank; ++k) a(i, k) = rng.NextGaussian();
  }
  for (int k = 0; k < true_rank; ++k) {
    for (size_t j = 0; j < b.cols(); ++j) b(k, j) = rng.NextGaussian();
  }
  Matrix truth = Matrix::Multiply(a, b);
  ObservationSet obs(rows, cols);
  for (int i = 0; i < rows; ++i) {
    for (int j = 0; j < cols; ++j) {
      if (rng.NextBernoulli(0.2)) obs.Add(i, j, truth(i, j));
    }
  }
  obs.Finalize();

  struct Variant {
    const char* name;
    CompletionSolver solver;
    double mu;
  };
  const Variant variants[] = {
      {"als", CompletionSolver::kAls, 0.0},
      {"als+mu", CompletionSolver::kAls, 0.1},
      {"ccd++", CompletionSolver::kCcd, 0.0},
      {"sgd", CompletionSolver::kSgd, 0.0},
  };
  for (const Variant& v : variants) {
    CompletionConfig cfg;
    cfg.rank = 4;
    cfg.lambda = 1e-3;
    cfg.max_iters = 15;
    cfg.temporal_smoothing = v.mu;
    cfg.solver = v.solver;
    cfg.seed = 7;
    cfg.verify_fused_objective = true;

    Result<CompletionResult> inline_fit = CompleteMatrix(obs, cfg, nullptr);
    ASSERT_TRUE(inline_fit.ok()) << v.name;
    ExecutionContext single(1);
    Result<CompletionResult> single_fit = CompleteMatrix(obs, cfg, &single);
    ASSERT_TRUE(single_fit.ok()) << v.name;
    ExecutionContext threaded(4);
    Result<CompletionResult> threaded_fit =
        CompleteMatrix(obs, cfg, &threaded);
    ASSERT_TRUE(threaded_fit.ok()) << v.name;

    EXPECT_TRUE(inline_fit.value().w == single_fit.value().w)
        << v.name << " W inline vs threads=1";
    EXPECT_TRUE(inline_fit.value().h == single_fit.value().h)
        << v.name << " H inline vs threads=1";
    EXPECT_TRUE(inline_fit.value().w == threaded_fit.value().w)
        << v.name << " W inline vs threads=4";
    EXPECT_TRUE(inline_fit.value().h == threaded_fit.value().h)
        << v.name << " H inline vs threads=4";
    EXPECT_EQ(inline_fit.value().iterations,
              threaded_fit.value().iterations)
        << v.name;
    EXPECT_EQ(inline_fit.value().objective,
              threaded_fit.value().objective)
        << v.name;
  }
}

void ExpectOutcomesBitIdentical(const ValuationOutcome& a,
                                const ValuationOutcome& b,
                                const char* what) {
  ASSERT_EQ(a.fedsv_values.has_value(), b.fedsv_values.has_value()) << what;
  if (a.fedsv_values.has_value()) {
    ExpectBitIdentical(*a.fedsv_values, *b.fedsv_values, what);
    EXPECT_EQ(a.fedsv_loss_calls, b.fedsv_loss_calls) << what;
  }
  ASSERT_EQ(a.comfedsv.has_value(), b.comfedsv.has_value()) << what;
  if (a.comfedsv.has_value()) {
    ExpectBitIdentical(a.comfedsv->values, b.comfedsv->values, what);
    EXPECT_EQ(a.comfedsv->loss_calls, b.comfedsv->loss_calls) << what;
    EXPECT_TRUE(a.comfedsv->completion.w == b.comfedsv->completion.w)
        << what << " completion W";
    EXPECT_TRUE(a.comfedsv->completion.h == b.comfedsv->completion.h)
        << what << " completion H";
  }
  ASSERT_EQ(a.ground_truth_values.has_value(),
            b.ground_truth_values.has_value())
      << what;
  if (a.ground_truth_values.has_value()) {
    ExpectBitIdentical(*a.ground_truth_values, *b.ground_truth_values,
                       what);
    EXPECT_EQ(a.ground_truth_loss_calls, b.ground_truth_loss_calls) << what;
  }
}

TEST(DeterminismTest, ResumeFromCheckpointIsBitIdentical) {
  // Kill-at-round-t → resume must equal the straight run bit for bit,
  // for every evaluator (MC FedSV, sampled ComFedSV, ground truth), on
  // both a single-threaded and a 4-thread context: per-round RNG streams
  // re-derive from (seed, round, client) and every sequential stream —
  // client selection, the FedSV permutation stream, recorder
  // accumulations — is part of the checkpoint.
  const int n = 5;
  Workload w = MakeWorkload(n, 777);
  LogisticRegression model(w.test.dim(), 10);

  FedAvgConfig fed_cfg;
  fed_cfg.num_rounds = 5;
  fed_cfg.clients_per_round = 3;
  fed_cfg.seed = 71;

  ValuationRequest request;
  request.compute_fedsv = true;
  request.fedsv.mode = FedSvConfig::Mode::kMonteCarlo;
  request.fedsv.permutations_per_round = 6;
  request.fedsv.seed = 72;
  request.compute_comfedsv = true;
  request.comfedsv.mode = ComFedSvConfig::Mode::kSampled;
  request.comfedsv.num_permutations = 6;
  request.comfedsv.completion.rank = 2;
  request.comfedsv.completion.lambda = 1e-3;
  request.comfedsv.completion.max_iters = 30;
  request.comfedsv.seed = 73;
  request.compute_ground_truth = true;

  for (int threads : {1, 4}) {
    SCOPED_TRACE("threads=" + std::to_string(threads));
    ExecutionContext straight_ctx(threads, 70);
    ValuationOutcome straight =
        RunWith(w, model, fed_cfg, request, &straight_ctx);

    for (int crash_round : {1, 3}) {
      SCOPED_TRACE("crash after round " + std::to_string(crash_round));
      const std::string path = ::testing::TempDir() +
                               "comfedsv_resume_t" +
                               std::to_string(threads) + "_r" +
                               std::to_string(crash_round) + ".ckpt";
      std::remove(path.c_str());

      CheckpointConfig ckpt;
      ckpt.path = path;
      ckpt.every_rounds = 1;
      ckpt.inject_crash_after_round = crash_round;
      ExecutionContext crash_ctx(threads, 70);
      Result<ValuationOutcome> crashed = RunValuationCheckpointed(
          model, w.clients, w.test, fed_cfg, request, ckpt, &crash_ctx);
      ASSERT_FALSE(crashed.ok());  // the injected crash

      CheckpointConfig resume = ckpt;
      resume.inject_crash_after_round = -1;
      ExecutionContext resume_ctx(threads, 70);
      Result<ValuationOutcome> resumed = RunValuationCheckpointed(
          model, w.clients, w.test, fed_cfg, request, resume, &resume_ctx);
      ASSERT_TRUE(resumed.ok()) << resumed.status().ToString();

      ExpectOutcomesBitIdentical(resumed.value(), straight,
                                 "resumed vs straight");
      ExpectBitIdentical(resumed.value().training.final_params,
                         straight.training.final_params,
                         "resumed final params");
      EXPECT_EQ(resumed.value().training.test_loss_history,
                straight.training.test_loss_history);
      std::remove(path.c_str());
    }
  }
}

TEST(DeterminismTest, CheckpointedRunWithoutCrashMatchesPlainRun) {
  // The checkpoint writes themselves must not perturb the run, and a
  // completed checkpointed run equals the plain pipeline bit for bit.
  const int n = 4;
  Workload w = MakeWorkload(n, 888);
  LogisticRegression model(w.test.dim(), 10);

  FedAvgConfig fed_cfg;
  fed_cfg.num_rounds = 3;
  fed_cfg.clients_per_round = 2;
  fed_cfg.seed = 81;

  ValuationRequest request;
  request.compute_fedsv = true;
  request.fedsv.mode = FedSvConfig::Mode::kExact;
  request.fedsv.seed = 82;
  request.compute_comfedsv = true;
  request.comfedsv.mode = ComFedSvConfig::Mode::kFull;
  request.comfedsv.completion.rank = 2;
  request.comfedsv.completion.lambda = 1e-3;
  request.comfedsv.completion.max_iters = 30;
  request.comfedsv.seed = 83;

  ValuationOutcome plain = RunWith(w, model, fed_cfg, request, nullptr);

  const std::string path =
      ::testing::TempDir() + "comfedsv_nocrash.ckpt";
  std::remove(path.c_str());
  CheckpointConfig ckpt;
  ckpt.path = path;
  ckpt.every_rounds = 2;
  Result<ValuationOutcome> checkpointed = RunValuationCheckpointed(
      model, w.clients, w.test, fed_cfg, request, ckpt, nullptr);
  ASSERT_TRUE(checkpointed.ok()) << checkpointed.status().ToString();
  ExpectOutcomesBitIdentical(checkpointed.value(), plain,
                             "checkpointed vs plain");

  // Full-mode resume too: re-running from the final checkpoint replays
  // zero rounds and finalizes identically.
  Result<ValuationOutcome> resumed = RunValuationCheckpointed(
      model, w.clients, w.test, fed_cfg, request, ckpt, nullptr);
  ASSERT_TRUE(resumed.ok()) << resumed.status().ToString();
  ExpectOutcomesBitIdentical(resumed.value(), plain, "resumed-complete");
  std::remove(path.c_str());
}

TEST(DeterminismTest, ResumeUnderDifferentDataOrModelIsRejected) {
  // The checkpoint fingerprint hashes full data contents and model
  // identity (incl. hyperparameters): a checkpoint saved under one run
  // must refuse to resume under regenerated data of the same shape or a
  // model with a different penalty — silently mixing two trajectories
  // would produce values wrong for both.
  const int n = 4;
  Workload w = MakeWorkload(n, 121);
  LogisticRegression model(w.test.dim(), 10);

  FedAvgConfig fed_cfg;
  fed_cfg.num_rounds = 3;
  fed_cfg.clients_per_round = 2;
  fed_cfg.seed = 122;

  ValuationRequest request;
  request.compute_fedsv = true;
  request.fedsv.mode = FedSvConfig::Mode::kExact;
  request.compute_comfedsv = false;

  const std::string path =
      ::testing::TempDir() + "comfedsv_fingerprint.ckpt";
  std::remove(path.c_str());
  CheckpointConfig ckpt;
  ckpt.path = path;
  ckpt.inject_crash_after_round = 1;
  ASSERT_FALSE(RunValuationCheckpointed(model, w.clients, w.test, fed_cfg,
                                        request, ckpt)
                   .ok());
  ckpt.inject_crash_after_round = -1;

  // Same shapes, different data contents.
  Workload other = MakeWorkload(n, 131);
  ASSERT_EQ(other.clients[0].num_samples(), w.clients[0].num_samples());
  Result<ValuationOutcome> wrong_data = RunValuationCheckpointed(
      model, other.clients, other.test, fed_cfg, request, ckpt);
  ASSERT_FALSE(wrong_data.ok());
  EXPECT_EQ(wrong_data.status().code(), StatusCode::kFailedPrecondition);

  // Same parameter count, different hyperparameter.
  LogisticRegression other_model(w.test.dim(), 10, /*l2_penalty=*/0.5);
  Result<ValuationOutcome> wrong_model = RunValuationCheckpointed(
      other_model, w.clients, w.test, fed_cfg, request, ckpt);
  ASSERT_FALSE(wrong_model.ok());
  EXPECT_EQ(wrong_model.status().code(), StatusCode::kFailedPrecondition);

  // The original inputs still resume fine.
  Result<ValuationOutcome> ok_resume = RunValuationCheckpointed(
      model, w.clients, w.test, fed_cfg, request, ckpt);
  EXPECT_TRUE(ok_resume.ok()) << ok_resume.status().ToString();
  std::remove(path.c_str());
}

TEST(DeterminismTest, StreamingEngineMatchesBatchRunOnFullPrefix) {
  // Feeding the trainer's rounds through the StreamingValuationEngine —
  // taking a warm-started snapshot after every round along the way, and
  // a mid-stream save/restore through the engine's own checkpoint — must
  // leave Finalize() bit-identical to the batch RunValuation outputs on
  // the same trajectory.
  const int n = 4;
  Workload w = MakeWorkload(n, 999);
  LogisticRegression model(w.test.dim(), 10);

  FedAvgConfig fed_cfg;
  fed_cfg.num_rounds = 4;
  fed_cfg.clients_per_round = 2;
  fed_cfg.seed = 91;

  ValuationRequest request;
  request.compute_fedsv = true;
  request.fedsv.mode = FedSvConfig::Mode::kMonteCarlo;
  request.fedsv.permutations_per_round = 5;
  request.fedsv.seed = 92;
  request.compute_comfedsv = true;
  request.comfedsv.mode = ComFedSvConfig::Mode::kSampled;
  request.comfedsv.num_permutations = 5;
  request.comfedsv.completion.rank = 2;
  request.comfedsv.completion.lambda = 1e-3;
  request.comfedsv.completion.max_iters = 30;
  request.comfedsv.seed = 93;
  request.compute_ground_truth = true;

  for (int threads : {1, 4}) {
    SCOPED_TRACE("threads=" + std::to_string(threads));
    ExecutionContext batch_ctx(threads, 90);
    ValuationOutcome batch =
        RunWith(w, model, fed_cfg, request, &batch_ctx);

    ExecutionContext stream_ctx(threads, 90);
    StreamingConfig streaming;
    streaming.request = request;
    streaming.resolve_cadence = 1;
    streaming.warm_start = true;
    StreamingValuationEngine engine(&model, &w.test, n, streaming,
                                    &stream_ctx);
    FedAvgTrainer trainer(&model, w.clients, w.test, fed_cfg, &stream_ctx);
    ASSERT_TRUE(trainer.Begin().ok());
    int snapshots_ok = 0;
    std::string engine_checkpoint;
    while (!trainer.Done()) {
      engine.OnRound(trainer.Step());
      // Warm-started intermediate snapshots must not disturb the final
      // batch-equivalent read.
      Result<ValuationOutcome> snap = engine.Snapshot();
      if (snap.ok()) {
        ++snapshots_ok;
        EXPECT_EQ(snap.value().training.rounds_run,
                  engine.rounds_consumed());
      }
      if (trainer.next_round() == 2) {
        BinaryWriter writer;
        engine.SaveState(&writer);
        engine_checkpoint = writer.buffer();
      }
    }
    EXPECT_EQ(engine.rounds_consumed(), fed_cfg.num_rounds);
    EXPECT_GE(snapshots_ok, fed_cfg.num_rounds - 1);

    Result<ValuationOutcome> streamed = engine.Finalize();
    ASSERT_TRUE(streamed.ok()) << streamed.status().ToString();
    ExpectOutcomesBitIdentical(streamed.value(), batch,
                               "streaming vs batch");

    // Restore the round-2 engine state into a fresh engine, replay the
    // remaining rounds, and check the same equivalence.
    ExecutionContext resume_ctx(threads, 90);
    StreamingValuationEngine resumed_engine(&model, &w.test, n, streaming,
                                            &resume_ctx);
    BinaryReader reader(engine_checkpoint);
    ASSERT_TRUE(resumed_engine.RestoreState(&reader).ok());
    EXPECT_EQ(resumed_engine.rounds_consumed(), 2);
    FedAvgTrainer replay_trainer(&model, w.clients, w.test, fed_cfg,
                                 &resume_ctx);
    ASSERT_TRUE(replay_trainer.Begin().ok());
    while (!replay_trainer.Done()) {
      const RoundRecord& record = replay_trainer.Step();
      if (record.round >= 2) resumed_engine.OnRound(record);
    }
    Result<ValuationOutcome> resumed_streamed = resumed_engine.Finalize();
    ASSERT_TRUE(resumed_streamed.ok())
        << resumed_streamed.status().ToString();
    ExpectOutcomesBitIdentical(resumed_streamed.value(), batch,
                               "restored streaming vs batch");
  }
}

TEST(DeterminismTest, StreamingWarmSnapshotsTrackColdSolvesInFullMode) {
  // kFull mode is the case where the warm-start positional-row
  // alignment is subtle: the ObservedUtilityRecorder's interner grows
  // between re-solves, and CompleteMatrixWarm copies previous H rows by
  // column id — correct only because interned ids form a stable prefix
  // across round prefixes. Detection: cap warm re-solves at a handful
  // of sweeps. Correctly aligned warm factors (last round's fit plus
  // one new round) are already near a minimum, so a few sweeps reach a
  // fit comparable to a fully converged cold solve; misaligned rows
  // would start from effectively random factors and be nowhere near
  // converged after so few sweeps. (Exact value equality is not
  // expected — the sparse problem has multiple minima and warm/cold may
  // settle in different ones.)
  const int n = 4;
  Workload w = MakeWorkload(n, 246);
  LogisticRegression model(w.test.dim(), 10);

  FedAvgConfig fed_cfg;
  fed_cfg.num_rounds = 5;
  fed_cfg.clients_per_round = 3;
  fed_cfg.select_all_first_round = true;
  fed_cfg.seed = 51;

  ValuationRequest request;
  request.compute_fedsv = false;
  request.compute_comfedsv = true;
  request.comfedsv.mode = ComFedSvConfig::Mode::kFull;
  request.comfedsv.completion.rank = 2;
  request.comfedsv.completion.lambda = 1e-3;
  request.comfedsv.completion.max_iters = 300;
  request.comfedsv.completion.tolerance = 1e-10;
  request.comfedsv.seed = 52;

  StreamingConfig streaming;
  streaming.request = request;
  streaming.resolve_cadence = 1;
  streaming.warm_start = true;
  streaming.warm_max_iters = 10;
  StreamingValuationEngine engine(&model, &w.test, n, streaming);
  FedAvgTrainer trainer(&model, w.clients, w.test, fed_cfg);
  ASSERT_TRUE(trainer.Begin().ok());
  while (!trainer.Done()) {
    engine.OnRound(trainer.Step());
    Result<ValuationOutcome> warm = engine.Snapshot();
    ASSERT_TRUE(warm.ok()) << warm.status().ToString();
    if (engine.rounds_consumed() < 2) continue;  // first solve is cold
    Result<ValuationOutcome> cold = engine.Finalize();
    ASSERT_TRUE(cold.ok()) << cold.status().ToString();
    ASSERT_TRUE(warm.value().comfedsv.has_value());
    ASSERT_TRUE(cold.value().comfedsv.has_value());
    const double warm_rmse =
        warm.value().comfedsv->completion.observed_rmse;
    const double cold_rmse =
        cold.value().comfedsv->completion.observed_rmse;
    // 10x covers legitimate early-round immaturity (the round-2 warm
    // factors have seen one round of data); a misaligned init would sit
    // orders of magnitude above the converged fit after 10 sweeps.
    EXPECT_LE(warm_rmse, 10.0 * cold_rmse + 1e-4)
        << "round " << engine.rounds_consumed()
        << ": 10 warm sweeps nowhere near the cold fit — misaligned "
           "warm-start rows?";
  }
}

// Drives the trainer through a StreamingValuationEngine, snapshotting
// after every round (which re-solves the completion and re-arms the
// utility surrogate when screening is configured), then finalizes.
ValuationOutcome RunStreaming(const Workload& w, const Model& model,
                              const FedAvgConfig& fed_cfg,
                              const StreamingConfig& streaming,
                              ExecutionContext* ctx) {
  StreamingValuationEngine engine(&model, &w.test,
                                  static_cast<int>(w.clients.size()),
                                  streaming, ctx);
  FedAvgTrainer trainer(&model, w.clients, w.test, fed_cfg, ctx);
  EXPECT_TRUE(trainer.Begin().ok());
  while (!trainer.Done()) {
    engine.OnRound(trainer.Step());
    Result<ValuationOutcome> snap = engine.Snapshot();
    EXPECT_TRUE(snap.ok()) << snap.status().ToString();
  }
  Result<ValuationOutcome> out = engine.Finalize();
  EXPECT_TRUE(out.ok()) << out.status().ToString();
  return std::move(out).value();
}

TEST(DeterminismTest, AdaptiveAndScreenedPipelineIsThreadCountInvariant) {
  // The two PR-6 paths that make data-dependent decisions — adaptive
  // Neyman budget waves in Monte-Carlo FedSV and surrogate screening in
  // the sampled ComFedSV recorder — must stay bit-identical across
  // inline, 1-thread, and 4-thread execution: every allocation plan and
  // every skip/measure/audit decision is taken on the calling thread in
  // fixed wave/permutation order, with parallelism confined to the
  // batched loss evaluator.
  const int n = 5;
  Workload w = MakeWorkload(n, 1111);
  LogisticRegression model(w.test.dim(), 10);

  FedAvgConfig fed_cfg;
  fed_cfg.num_rounds = 5;
  fed_cfg.clients_per_round = 3;
  fed_cfg.seed = 101;

  ValuationRequest request;
  request.compute_fedsv = true;
  request.fedsv.mode = FedSvConfig::Mode::kMonteCarlo;
  request.fedsv.permutations_per_round = 8;
  request.fedsv.sampler.adaptive.enabled = true;
  request.fedsv.seed = 102;
  request.compute_comfedsv = true;
  request.comfedsv.mode = ComFedSvConfig::Mode::kSampled;
  request.comfedsv.num_permutations = 6;
  request.comfedsv.sampler.screen_threshold = 0.5;
  request.comfedsv.sampler.screen_confidence = 1.0;
  request.comfedsv.sampler.screen_audit_every = 4;
  request.comfedsv.sampler.screen_min_audits = 2;
  request.comfedsv.completion.rank = 2;
  request.comfedsv.completion.lambda = 1e-3;
  request.comfedsv.completion.max_iters = 40;
  request.comfedsv.seed = 103;

  StreamingConfig streaming;
  streaming.request = request;
  streaming.resolve_cadence = 1;
  streaming.warm_start = true;
  streaming.surrogate_screening = true;

  ValuationOutcome inline_run =
      RunStreaming(w, model, fed_cfg, streaming, nullptr);
  ExecutionContext single(1, 100);
  ValuationOutcome single_run =
      RunStreaming(w, model, fed_cfg, streaming, &single);
  ExecutionContext threaded(4, 100);
  ValuationOutcome threaded_run =
      RunStreaming(w, model, fed_cfg, streaming, &threaded);

  ASSERT_TRUE(inline_run.fedsv_values.has_value());
  ExpectBitIdentical(*inline_run.fedsv_values, *single_run.fedsv_values,
                     "adaptive FedSV inline vs threads=1");
  ExpectBitIdentical(*inline_run.fedsv_values, *threaded_run.fedsv_values,
                     "adaptive FedSV inline vs threads=4");
  ASSERT_TRUE(inline_run.comfedsv.has_value());
  ExpectBitIdentical(inline_run.comfedsv->values,
                     single_run.comfedsv->values,
                     "screened ComFedSV inline vs threads=1");
  ExpectBitIdentical(inline_run.comfedsv->values,
                     threaded_run.comfedsv->values,
                     "screened ComFedSV inline vs threads=4");

  // The full accounting — loss calls, memo hits, skips, and the bias
  // bound — is part of the determinism contract too.
  EXPECT_EQ(inline_run.fedsv_loss_calls, threaded_run.fedsv_loss_calls);
  EXPECT_EQ(inline_run.comfedsv->loss_calls,
            threaded_run.comfedsv->loss_calls);
  EXPECT_EQ(inline_run.comfedsv->stats.loss_calls,
            threaded_run.comfedsv->stats.loss_calls);
  EXPECT_EQ(inline_run.comfedsv->stats.memo_hits,
            threaded_run.comfedsv->stats.memo_hits);
  EXPECT_EQ(inline_run.comfedsv->stats.surrogate_skips,
            threaded_run.comfedsv->stats.surrogate_skips);
  EXPECT_EQ(inline_run.comfedsv->stats.surrogate_bias_bound,
            threaded_run.comfedsv->stats.surrogate_bias_bound);

  // The run must actually exercise the screened path, or this test
  // proves nothing.
  EXPECT_GT(inline_run.comfedsv->stats.surrogate_skips, 0);
}

TEST(DeterminismTest, ScreenedComFedSvStaysCloseToUniformBudget) {
  // Regression pin for the surrogate's accuracy contract: screening
  // perturbs each skipped utility by at most its confidence bound, and
  // the resulting ComFedSV vector must stay within a small L-inf
  // distance of the unscreened (uniform-budget) run on the same
  // trajectory — while spending strictly fewer loss calls. The 0.1
  // tolerance is the documented contract (README, "Utility surrogates").
  const int n = 5;
  Workload w = MakeWorkload(n, 2222);
  LogisticRegression model(w.test.dim(), 10);

  FedAvgConfig fed_cfg;
  fed_cfg.num_rounds = 6;
  fed_cfg.clients_per_round = 3;
  fed_cfg.seed = 111;

  ValuationRequest request;
  request.compute_fedsv = false;
  request.compute_comfedsv = true;
  request.comfedsv.mode = ComFedSvConfig::Mode::kSampled;
  request.comfedsv.num_permutations = 6;
  request.comfedsv.completion.rank = 2;
  request.comfedsv.completion.lambda = 1e-3;
  request.comfedsv.completion.max_iters = 40;
  request.comfedsv.seed = 113;

  StreamingConfig uniform;
  uniform.request = request;
  uniform.resolve_cadence = 1;
  uniform.warm_start = true;
  ValuationOutcome baseline =
      RunStreaming(w, model, fed_cfg, uniform, nullptr);

  StreamingConfig screened = uniform;
  screened.surrogate_screening = true;
  screened.request.comfedsv.sampler.screen_threshold = 0.2;
  screened.request.comfedsv.sampler.screen_confidence = 1.0;
  screened.request.comfedsv.sampler.screen_audit_every = 4;
  screened.request.comfedsv.sampler.screen_min_audits = 2;
  ValuationOutcome run =
      RunStreaming(w, model, fed_cfg, screened, nullptr);

  ASSERT_TRUE(baseline.comfedsv.has_value());
  ASSERT_TRUE(run.comfedsv.has_value());
  const Vector& base = baseline.comfedsv->values;
  const Vector& got = run.comfedsv->values;
  ASSERT_EQ(base.size(), got.size());
  double linf = 0.0;
  for (size_t i = 0; i < base.size(); ++i) {
    linf = std::max(linf, std::fabs(base[i] - got[i]));
  }
  EXPECT_LE(linf, 0.1) << "screened ComFedSV drifted past the documented "
                          "tolerance of the uniform-budget run";

  // Screening must pay for itself: skips happened, every skip saved a
  // distinct-coalition loss call, and the recorded bias stayed within
  // the accumulated per-skip bounds.
  EXPECT_GT(run.comfedsv->stats.surrogate_skips, 0);
  EXPECT_LT(run.comfedsv->stats.loss_calls,
            baseline.comfedsv->stats.loss_calls);
  EXPECT_GE(run.comfedsv->stats.surrogate_bias_bound, 0.0);
}

AdversaryConfig OneAdversary(int client, AdversaryKind kind,
                             double intensity, double camouflage = 0.0,
                             int accomplice = -1) {
  AdversarySpec spec;
  spec.client = client;
  spec.kind = kind;
  spec.intensity = intensity;
  spec.camouflage = camouflage;
  spec.accomplice = accomplice;
  AdversaryConfig cfg;
  cfg.specs.push_back(spec);
  cfg.seed = 4242;
  return cfg;
}

TEST(DeterminismTest, AdversarialScenariosAreThreadCountInvariant) {
  // Every adversarial behavior — including the degraded aggregation-guard
  // paths it triggers — must keep the full valuation pipeline
  // bit-identical across inline, 1-thread, and 4-thread execution: the
  // transforms and the guard run sequentially after the parallel local
  // updates, and all adversary randomness derives from
  // (seed, round, client).
  const int n = 5;
  Workload w = MakeWorkload(n, 3434);
  LogisticRegression model(w.test.dim(), 10);

  struct Scenario {
    const char* name;
    AdversaryConfig adversary;
    AggregationGuardConfig guard;
  };
  std::vector<Scenario> scenarios = {
      {"free-rider",
       OneAdversary(1, AdversaryKind::kFreeRider, 1.0, /*camouflage=*/0.05),
       {}},
      {"gradient-scaler",
       OneAdversary(2, AdversaryKind::kGradientScaler, 25.0),
       {true, /*clip_norm=*/0.5, 0}},
      {"colluder",
       OneAdversary(3, AdversaryKind::kColluder, 1.0, 0.0,
                    /*accomplice=*/0),
       {}},
      {"label-flipper",
       OneAdversary(0, AdversaryKind::kLabelFlipper, 0.4), {}},
      {"dropout", OneAdversary(4, AdversaryKind::kDropout, 0.5), {}},
      {"nan-corrupter",
       OneAdversary(2, AdversaryKind::kNanCorrupter, 1.0),
       {true, 0.0, /*quarantine_after=*/2}},
  };

  for (const Scenario& scenario : scenarios) {
    SCOPED_TRACE(scenario.name);
    FedAvgConfig fed_cfg;
    fed_cfg.num_rounds = 4;
    fed_cfg.clients_per_round = 3;
    fed_cfg.seed = 3535;
    fed_cfg.adversary = scenario.adversary;
    fed_cfg.guard = scenario.guard;

    ValuationRequest request;
    request.compute_fedsv = true;
    request.fedsv.mode = FedSvConfig::Mode::kMonteCarlo;
    request.fedsv.permutations_per_round = 6;
    request.fedsv.seed = 3636;
    request.compute_comfedsv = true;
    request.comfedsv.mode = ComFedSvConfig::Mode::kSampled;
    request.comfedsv.num_permutations = 5;
    request.comfedsv.completion.rank = 2;
    request.comfedsv.completion.lambda = 1e-3;
    request.comfedsv.completion.max_iters = 30;
    request.comfedsv.seed = 3737;

    ValuationOutcome inline_run =
        RunWith(w, model, fed_cfg, request, nullptr);
    ExecutionContext single(1, 30);
    ValuationOutcome single_run =
        RunWith(w, model, fed_cfg, request, &single);
    ExecutionContext threaded(4, 30);
    ValuationOutcome threaded_run =
        RunWith(w, model, fed_cfg, request, &threaded);

    ExpectOutcomesBitIdentical(inline_run, single_run,
                               "adversarial inline vs threads=1");
    ExpectOutcomesBitIdentical(inline_run, threaded_run,
                               "adversarial inline vs threads=4");
    ExpectBitIdentical(inline_run.training.final_params,
                       threaded_run.training.final_params,
                       "adversarial final params inline vs threads=4");
    EXPECT_EQ(inline_run.training.quarantine.rounds_degraded,
              threaded_run.training.quarantine.rounds_degraded);
    EXPECT_EQ(inline_run.training.quarantine.rejected,
              threaded_run.training.quarantine.rejected);
  }
}

TEST(DeterminismTest, AdversarialResumeFromCheckpointIsBitIdentical) {
  // The degraded path is checkpoint/resume-safe: a NaN-corrupting client
  // under an active quarantine policy accumulates per-client rejection
  // counters, and the round-t preemptive-drop decision depends on the
  // counters accumulated before t — so a kill/resume straddling the
  // quarantine trigger must still match the straight run bit for bit.
  const int n = 5;
  Workload w = MakeWorkload(n, 4646);
  LogisticRegression model(w.test.dim(), 10);

  FedAvgConfig fed_cfg;
  fed_cfg.num_rounds = 5;
  fed_cfg.clients_per_round = 4;
  fed_cfg.seed = 4747;
  fed_cfg.adversary = OneAdversary(2, AdversaryKind::kNanCorrupter, 1.0);
  fed_cfg.guard.quarantine_after = 2;

  ValuationRequest request;
  request.compute_fedsv = true;
  request.fedsv.mode = FedSvConfig::Mode::kMonteCarlo;
  request.fedsv.permutations_per_round = 6;
  request.fedsv.seed = 4848;
  request.compute_comfedsv = true;
  request.comfedsv.mode = ComFedSvConfig::Mode::kSampled;
  request.comfedsv.num_permutations = 5;
  request.comfedsv.completion.rank = 2;
  request.comfedsv.completion.lambda = 1e-3;
  request.comfedsv.completion.max_iters = 30;
  request.comfedsv.seed = 4949;

  for (int threads : {1, 4}) {
    SCOPED_TRACE("threads=" + std::to_string(threads));
    ExecutionContext straight_ctx(threads, 46);
    ValuationOutcome straight =
        RunWith(w, model, fed_cfg, request, &straight_ctx);
    // The scenario actually exercises quarantine: two rejections, then
    // preemptive drops for the remaining rounds.
    EXPECT_EQ(straight.training.quarantine.rejected[2], 2);
    EXPECT_GT(straight.training.quarantine.quarantine_drops[2], 0);

    // Crash after round 1 (pre-quarantine) and round 3 (post-trigger):
    // the resumed run must re-derive the same drop decisions.
    for (int crash_round : {1, 3}) {
      SCOPED_TRACE("crash after round " + std::to_string(crash_round));
      const std::string path = ::testing::TempDir() +
                               "comfedsv_adv_resume_t" +
                               std::to_string(threads) + "_r" +
                               std::to_string(crash_round) + ".ckpt";
      std::remove(path.c_str());

      CheckpointConfig ckpt;
      ckpt.path = path;
      ckpt.every_rounds = 1;
      ckpt.inject_crash_after_round = crash_round;
      ExecutionContext crash_ctx(threads, 46);
      ASSERT_FALSE(RunValuationCheckpointed(model, w.clients, w.test,
                                            fed_cfg, request, ckpt,
                                            &crash_ctx)
                       .ok());

      CheckpointConfig resume = ckpt;
      resume.inject_crash_after_round = -1;
      ExecutionContext resume_ctx(threads, 46);
      Result<ValuationOutcome> resumed = RunValuationCheckpointed(
          model, w.clients, w.test, fed_cfg, request, resume, &resume_ctx);
      ASSERT_TRUE(resumed.ok()) << resumed.status().ToString();

      ExpectOutcomesBitIdentical(resumed.value(), straight,
                                 "adversarial resumed vs straight");
      ExpectBitIdentical(resumed.value().training.final_params,
                         straight.training.final_params,
                         "adversarial resumed final params");
      EXPECT_EQ(resumed.value().training.quarantine.rejected,
                straight.training.quarantine.rejected);
      EXPECT_EQ(resumed.value().training.quarantine.quarantine_drops,
                straight.training.quarantine.quarantine_drops);
      EXPECT_EQ(resumed.value().training.quarantine.rounds_degraded,
                straight.training.quarantine.rounds_degraded);
      std::remove(path.c_str());
    }
  }
}

TEST(DeterminismTest, FullModeAndGroundTruthAreThreadCountInvariant) {
  // kFull exercises ObservedUtilityRecorder (parallel subset evaluation +
  // sequential interning) and the ground truth exercises
  // FullUtilityRecorder and the exact per-round Shapley.
  const int n = 4;
  Workload w = MakeWorkload(n, 987);
  LogisticRegression model(w.test.dim(), 10);

  FedAvgConfig fed_cfg;
  fed_cfg.num_rounds = 3;
  fed_cfg.clients_per_round = 2;
  fed_cfg.select_all_first_round = true;
  fed_cfg.seed = 31;

  ValuationRequest request;
  request.compute_fedsv = true;
  request.fedsv.mode = FedSvConfig::Mode::kExact;
  request.fedsv.seed = 32;
  request.compute_comfedsv = true;
  request.comfedsv.mode = ComFedSvConfig::Mode::kFull;
  request.comfedsv.completion.rank = 2;
  request.comfedsv.completion.lambda = 1e-3;
  request.comfedsv.completion.max_iters = 30;
  request.comfedsv.seed = 33;
  request.compute_ground_truth = true;

  ValuationOutcome inline_run = RunWith(w, model, fed_cfg, request, nullptr);
  ExecutionContext threaded(4);
  ValuationOutcome threaded_run =
      RunWith(w, model, fed_cfg, request, &threaded);

  ExpectBitIdentical(*inline_run.fedsv_values, *threaded_run.fedsv_values,
                     "exact FedSV inline vs threads=4");
  ExpectBitIdentical(inline_run.comfedsv->values,
                     threaded_run.comfedsv->values,
                     "full ComFedSV inline vs threads=4");
  ExpectBitIdentical(*inline_run.ground_truth_values,
                     *threaded_run.ground_truth_values,
                     "ground truth inline vs threads=4");
}

}  // namespace
}  // namespace comfedsv
