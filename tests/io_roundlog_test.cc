// Round-log suite: payload encodings (lossless XOR-delta, lossy u16
// quantization), writer/reader round trips, footer-index recovery, torn
// tails, resume truncation — and the golden equality gate: valuation
// replayed from a spilled log (mmap and pread, compressed and not) must
// match the in-memory pipeline bit-for-bit on lossless encodings, for
// any thread count.
#include <gtest/gtest.h>

#include <cmath>
#include <filesystem>
#include <memory>
#include <string>
#include <vector>

#include "common/failpoint.h"
#include "core/pipeline.h"
#include "core/streaming.h"
#include "data/image_sim.h"
#include "data/partition.h"
#include "io/checkpoint_manager.h"
#include "io/file_env.h"
#include "io/round_log.h"
#include "models/logistic.h"

namespace comfedsv {
namespace {

namespace fs = std::filesystem;

class RoundLogTest : public ::testing::Test {
 protected:
  void SetUp() override {
    FailpointRegistry::Global().ClearAll();
    root_ = fs::path(::testing::TempDir()) /
            ("io_roundlog_" +
             std::string(::testing::UnitTest::GetInstance()
                             ->current_test_info()
                             ->name()));
    fs::remove_all(root_);
    fs::create_directories(root_);
  }
  void TearDown() override {
    FailpointRegistry::Global().ClearAll();
    fs::remove_all(root_);
  }

  std::string Path(const std::string& name) {
    return (root_ / name).string();
  }

  fs::path root_;
};

/// A deterministic record with `quiet` of the clients left exactly at
/// the global model (a sanitized / unselected update) — the shape the
/// XOR-delta encoding exists for.
RoundRecord MakeRecord(int round, int num_clients, size_t dim, int quiet) {
  RoundRecord r;
  r.round = round;
  r.test_loss_before = 1.25 + 0.125 * round;
  r.global_before.Resize(dim);
  for (size_t j = 0; j < dim; ++j) {
    r.global_before[j] = 0.37 * static_cast<double>(j) - 0.5 * round;
  }
  r.local_models.assign(static_cast<size_t>(num_clients),
                        r.global_before);
  for (int i = quiet; i < num_clients; ++i) {
    Vector& local = r.local_models[static_cast<size_t>(i)];
    for (size_t j = 0; j < dim; ++j) {
      local[j] += 1e-3 * static_cast<double>(i + 1) *
                  (static_cast<double>(j % 7) - 3.0);
    }
    r.selected.push_back(i);
  }
  if (num_clients > quiet + 1) r.rejected.push_back(quiet + 1);
  if (quiet > 0) r.dropped.push_back(0);
  return r;
}

void ExpectRecordBitIdentical(const RoundRecord& a, const RoundRecord& b) {
  EXPECT_EQ(a.round, b.round);
  EXPECT_EQ(a.test_loss_before, b.test_loss_before);
  EXPECT_EQ(a.selected, b.selected);
  EXPECT_EQ(a.rejected, b.rejected);
  EXPECT_EQ(a.dropped, b.dropped);
  ASSERT_EQ(a.global_before.size(), b.global_before.size());
  for (size_t j = 0; j < a.global_before.size(); ++j) {
    EXPECT_EQ(a.global_before[j], b.global_before[j]) << "global[" << j
                                                      << "]";
  }
  ASSERT_EQ(a.local_models.size(), b.local_models.size());
  for (size_t i = 0; i < a.local_models.size(); ++i) {
    ASSERT_EQ(a.local_models[i].size(), b.local_models[i].size());
    for (size_t j = 0; j < a.local_models[i].size(); ++j) {
      EXPECT_EQ(a.local_models[i][j], b.local_models[i][j])
          << "local[" << i << "][" << j << "]";
    }
  }
}

// ---------------------------------------------------------------------
// Payload encodings.
// ---------------------------------------------------------------------

TEST_F(RoundLogTest, LosslessEncodingsRoundTripBitExact) {
  const RoundRecord record = MakeRecord(3, 6, 64, /*quiet=*/4);
  for (RoundLogCompression mode :
       {RoundLogCompression::kNone, RoundLogCompression::kXorDelta}) {
    SCOPED_TRACE(static_cast<int>(mode));
    const std::string payload = EncodeRoundRecordPayload(record, mode);
    RoundRecord decoded;
    ASSERT_TRUE(DecodeRoundRecordPayload(payload, mode, &decoded).ok());
    ExpectRecordBitIdentical(record, decoded);
  }
  // With most clients quiet, the XOR streams are almost all zeros and
  // the run-length encoding must actually compress.
  const size_t plain =
      EncodeRoundRecordPayload(record, RoundLogCompression::kNone).size();
  const size_t xored =
      EncodeRoundRecordPayload(record, RoundLogCompression::kXorDelta)
          .size();
  EXPECT_LT(xored, plain / 2) << "plain=" << plain << " xor=" << xored;
}

TEST_F(RoundLogTest, Quant16RoundTripsWithinOneGridStep) {
  const RoundRecord record = MakeRecord(1, 5, 48, /*quiet=*/2);
  const std::string payload =
      EncodeRoundRecordPayload(record, RoundLogCompression::kQuant16);
  RoundRecord decoded;
  ASSERT_TRUE(
      DecodeRoundRecordPayload(payload, RoundLogCompression::kQuant16,
                               &decoded)
          .ok());
  // Everything except the local models is exact.
  EXPECT_EQ(record.round, decoded.round);
  EXPECT_EQ(record.test_loss_before, decoded.test_loss_before);
  EXPECT_EQ(record.selected, decoded.selected);
  for (size_t j = 0; j < record.global_before.size(); ++j) {
    EXPECT_EQ(record.global_before[j], decoded.global_before[j]);
  }
  // Local models land within one quantization step of the truth.
  for (size_t i = 0; i < record.local_models.size(); ++i) {
    double lo = 0.0, hi = 0.0;
    for (size_t j = 0; j < record.local_models[i].size(); ++j) {
      const double d =
          record.local_models[i][j] - record.global_before[j];
      if (j == 0 || d < lo) lo = d;
      if (j == 0 || d > hi) hi = d;
    }
    const double step = (hi - lo) / 65535.0;
    for (size_t j = 0; j < record.local_models[i].size(); ++j) {
      EXPECT_NEAR(record.local_models[i][j], decoded.local_models[i][j],
                  step + 1e-15)
          << "local[" << i << "][" << j << "]";
    }
  }
  // And it is much smaller than the exact encoding (u16 vs f64 per
  // element, minus the shared prelude).
  EXPECT_LT(payload.size(),
            EncodeRoundRecordPayload(record, RoundLogCompression::kNone)
                .size());
}

// ---------------------------------------------------------------------
// Writer / reader round trips and recovery.
// ---------------------------------------------------------------------

TEST_F(RoundLogTest, WriterReaderRoundTripAcrossIndexCadences) {
  for (RoundLogCompression mode :
       {RoundLogCompression::kNone, RoundLogCompression::kXorDelta}) {
    const std::string path =
        Path("log_" + std::to_string(static_cast<int>(mode)));
    RoundLogOptions options;
    options.compression = mode;
    options.index_every = 3;  // leaves an unindexed tail to scan
    auto writer = RoundLogWriter::Create(path, options);
    ASSERT_TRUE(writer.ok()) << writer.status().ToString();
    for (int t = 0; t < 7; ++t) {
      ASSERT_TRUE(writer.value()->Append(MakeRecord(t, 4, 32, 2)).ok());
    }
    EXPECT_EQ(writer.value()->rounds(), 7);

    auto reader = RoundLogReader::Open(path);
    ASSERT_TRUE(reader.ok()) << reader.status().ToString();
    EXPECT_EQ(reader.value()->compression(), mode);
    ASSERT_EQ(reader.value()->rounds(), 7);
    for (int t = 0; t < 7; ++t) {
      RoundRecord decoded;
      ASSERT_TRUE(reader.value()->Read(t, &decoded).ok());
      ExpectRecordBitIdentical(MakeRecord(t, 4, 32, 2), decoded);
    }
  }
}

TEST_F(RoundLogTest, ReaderRebuildsFromScanWhenIndexIsMissing) {
  const std::string path = Path("log");
  auto writer = RoundLogWriter::Create(path, {});
  ASSERT_TRUE(writer.ok());
  for (int t = 0; t < 5; ++t) {
    ASSERT_TRUE(writer.value()->Append(MakeRecord(t, 3, 16, 1)).ok());
  }
  ASSERT_TRUE(FileEnv::Real()->Remove(path + ".idx").ok());

  auto reader = RoundLogReader::Open(path);
  ASSERT_TRUE(reader.ok()) << reader.status().ToString();
  ASSERT_EQ(reader.value()->rounds(), 5);
  RoundRecord decoded;
  ASSERT_TRUE(reader.value()->Read(4, &decoded).ok());
  ExpectRecordBitIdentical(MakeRecord(4, 3, 16, 1), decoded);
}

TEST_F(RoundLogTest, TornTailFrameIsIgnoredOnOpen) {
  const std::string path = Path("log");
  RoundLogOptions options;
  options.index_every = 100;  // keep the index out of the picture
  auto writer = RoundLogWriter::Create(path, options);
  ASSERT_TRUE(writer.ok());
  for (int t = 0; t < 4; ++t) {
    ASSERT_TRUE(writer.value()->Append(MakeRecord(t, 3, 16, 1)).ok());
  }
  // A crash mid-append: half a frame header plus garbage.
  ASSERT_TRUE(
      FileEnv::Real()
          ->AppendFile(path, std::string(29, '\xAB'))
          .ok());

  auto reader = RoundLogReader::Open(path);
  ASSERT_TRUE(reader.ok()) << reader.status().ToString();
  EXPECT_EQ(reader.value()->rounds(), 4);
}

TEST_F(RoundLogTest, CorruptIndexedFrameFailsTheReadNotTheOpen) {
  const std::string path = Path("log");
  auto writer = RoundLogWriter::Create(path, {});
  ASSERT_TRUE(writer.ok());
  for (int t = 0; t < 3; ++t) {
    ASSERT_TRUE(writer.value()->Append(MakeRecord(t, 3, 16, 1)).ok());
  }
  // Flip one payload byte inside the middle frame. The index still
  // lists it; the frame checksum catches it at Read time.
  auto bytes = FileEnv::Real()->ReadFile(path);
  ASSERT_TRUE(bytes.ok());
  std::string corrupted = bytes.value();
  corrupted[corrupted.size() / 2] ^= 0x40;
  ASSERT_TRUE(FileEnv::Real()->WriteFile(path, corrupted).ok());

  auto reader = RoundLogReader::Open(path);
  ASSERT_TRUE(reader.ok()) << reader.status().ToString();
  ASSERT_EQ(reader.value()->rounds(), 3);
  RoundRecord decoded;
  EXPECT_EQ(reader.value()->Read(1, &decoded).code(),
            StatusCode::kDataLoss);
  EXPECT_TRUE(reader.value()->Read(0, &decoded).ok());
}

TEST_F(RoundLogTest, OpenForAppendReplaysToAByteIdenticalLog) {
  // Log A: five rounds, uninterrupted. Log B: five rounds, then a
  // "resume" from round 3 — truncate and re-append rounds 3 and 4.
  const std::string a = Path("a.log");
  const std::string b = Path("b.log");
  for (const std::string& path : {a, b}) {
    auto writer = RoundLogWriter::Create(path, {});
    ASSERT_TRUE(writer.ok());
    for (int t = 0; t < 5; ++t) {
      ASSERT_TRUE(writer.value()->Append(MakeRecord(t, 4, 24, 2)).ok());
    }
  }
  auto resumed = RoundLogWriter::OpenForAppend(b, 3, {});
  ASSERT_TRUE(resumed.ok()) << resumed.status().ToString();
  EXPECT_EQ(resumed.value()->rounds(), 3);
  for (int t = 3; t < 5; ++t) {
    ASSERT_TRUE(resumed.value()->Append(MakeRecord(t, 4, 24, 2)).ok());
  }
  auto bytes_a = FileEnv::Real()->ReadFile(a);
  auto bytes_b = FileEnv::Real()->ReadFile(b);
  ASSERT_TRUE(bytes_a.ok());
  ASSERT_TRUE(bytes_b.ok());
  EXPECT_EQ(bytes_a.value(), bytes_b.value());

  // Asking for more intact frames than exist is data loss, not a
  // silent short log.
  EXPECT_EQ(RoundLogWriter::OpenForAppend(b, 9, {}).status().code(),
            StatusCode::kDataLoss);
  // And a compression-mode mismatch is a config error, not corruption.
  RoundLogOptions other;
  other.compression = RoundLogCompression::kXorDelta;
  EXPECT_EQ(RoundLogWriter::OpenForAppend(b, 3, other).status().code(),
            StatusCode::kFailedPrecondition);
}

TEST_F(RoundLogTest, WindowedMmapAndPreadServeIdenticalRecords) {
  const std::string path = Path("log");
  auto writer = RoundLogWriter::Create(path, {});
  ASSERT_TRUE(writer.ok());
  for (int t = 0; t < 12; ++t) {
    ASSERT_TRUE(writer.value()->Append(MakeRecord(t, 4, 64, 2)).ok());
  }
  const uint64_t total = writer.value()->data_size();

  RoundLogReadOptions mmap_options;
  mmap_options.use_mmap = true;
  mmap_options.window_bytes = total / 6;  // well under the file size
  auto mapped = RoundLogReader::Open(path, mmap_options);
  ASSERT_TRUE(mapped.ok());

  RoundLogReadOptions pread_options;
  pread_options.use_mmap = false;
  auto pread = RoundLogReader::Open(path, pread_options);
  ASSERT_TRUE(pread.ok());

  for (int t = 0; t < 12; ++t) {
    RoundRecord via_map, via_pread;
    ASSERT_TRUE(mapped.value()->Read(t, &via_map).ok());
    ASSERT_TRUE(pread.value()->Read(t, &via_pread).ok());
    ExpectRecordBitIdentical(via_map, via_pread);
  }
  // The window actually slid (resident memory stayed bounded), and the
  // pread reader never mapped anything.
  EXPECT_GT(mapped.value()->remaps(), 1);
  EXPECT_LE(mapped.value()->window_resident_bytes(),
            std::max<uint64_t>(mmap_options.window_bytes, total / 6) +
                4096);
  EXPECT_EQ(mapped.value()->fallback_reads(), 0);
  EXPECT_EQ(pread.value()->remaps(), 0);
  EXPECT_EQ(pread.value()->fallback_reads(), 12);
}

TEST_F(RoundLogTest, MmapFaultFallsBackToPread) {
  const std::string path = Path("log");
  auto writer = RoundLogWriter::Create(path, {});
  ASSERT_TRUE(writer.ok());
  for (int t = 0; t < 3; ++t) {
    ASSERT_TRUE(writer.value()->Append(MakeRecord(t, 3, 16, 1)).ok());
  }
  FaultInjectingFileEnv fault;
  FailpointRegistry::Global().Arm(failpoints::kMmap,
                                  FailpointTrigger::EveryN(1),
                                  static_cast<int>(FaultAction::kError));
  RoundLogReadOptions options;
  options.use_mmap = true;
  options.env = &fault;
  auto reader = RoundLogReader::Open(path, options);
  ASSERT_TRUE(reader.ok()) << reader.status().ToString();
  for (int t = 0; t < 3; ++t) {
    RoundRecord decoded;
    ASSERT_TRUE(reader.value()->Read(t, &decoded).ok());
    ExpectRecordBitIdentical(MakeRecord(t, 3, 16, 1), decoded);
  }
  EXPECT_EQ(reader.value()->remaps(), 0);
  EXPECT_EQ(reader.value()->fallback_reads(), 3);
}

// ---------------------------------------------------------------------
// Golden equality: spill-to-log valuation vs the in-memory pipeline.
// ---------------------------------------------------------------------

struct GoldenWorkload {
  std::vector<Dataset> clients;
  Dataset test;
};

GoldenWorkload MakeGoldenWorkload(int num_clients, uint64_t seed) {
  SimulatedImageConfig cfg;
  cfg.num_samples = 40 * num_clients + 120;
  cfg.seed = seed;
  Dataset pool = GenerateSimulatedImages(cfg);
  Rng rng(seed + 1);
  auto [train_pool, test] = pool.RandomSplit(0.25, &rng);
  return {PartitionIid(train_pool, num_clients, &rng), std::move(test)};
}

ValuationRequest GoldenRequest() {
  ValuationRequest request;
  request.compute_fedsv = true;
  request.fedsv.mode = FedSvConfig::Mode::kMonteCarlo;
  request.fedsv.permutations_per_round = 4;
  request.fedsv.seed = 18;
  request.compute_comfedsv = true;
  request.comfedsv.mode = ComFedSvConfig::Mode::kSampled;
  request.comfedsv.num_permutations = 4;
  request.comfedsv.completion.rank = 2;
  request.comfedsv.completion.lambda = 1e-3;
  request.comfedsv.completion.max_iters = 20;
  request.comfedsv.seed = 19;
  return request;
}

void ExpectVectorsBitIdentical(const Vector& a, const Vector& b,
                               const char* what) {
  ASSERT_EQ(a.size(), b.size()) << what;
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i], b[i]) << what << " diverges at client " << i;
  }
}

TEST_F(RoundLogTest, SpilledValuationMatchesInMemoryAcrossModesAndThreads) {
  constexpr int kClients = 4;
  GoldenWorkload w = MakeGoldenWorkload(kClients, 7117);
  LogisticRegression model(w.test.dim(), 10);
  FedAvgConfig fed_cfg;
  fed_cfg.num_rounds = 4;
  fed_cfg.clients_per_round = 3;
  fed_cfg.seed = 17;
  const ValuationRequest request = GoldenRequest();

  for (int threads : {1, 4}) {
    SCOPED_TRACE("threads=" + std::to_string(threads));
    ExecutionContext ctx(threads);
    Result<ValuationOutcome> baseline = RunValuation(
        model, w.clients, w.test, fed_cfg, request, &ctx);
    ASSERT_TRUE(baseline.ok()) << baseline.status().ToString();
    const Vector base_fedsv = *baseline.value().fedsv_values;
    const Vector base_comfedsv = baseline.value().comfedsv->values;

    for (RoundLogCompression mode :
         {RoundLogCompression::kNone, RoundLogCompression::kXorDelta}) {
      SCOPED_TRACE("compression=" + std::to_string(static_cast<int>(mode)));
      const std::string tag = std::to_string(threads) + "_" +
                              std::to_string(static_cast<int>(mode));
      CheckpointConfig ckpt;
      ckpt.path = Path("ckpt_" + tag);
      ckpt.keep_generations = 2;
      ckpt.round_log_path = Path("spill_" + tag + ".log");
      ckpt.round_log_compression = mode;
      Result<ValuationOutcome> spilled = RunValuationCheckpointed(
          model, w.clients, w.test, fed_cfg, request, ckpt, &ctx);
      ASSERT_TRUE(spilled.ok()) << spilled.status().ToString();
      ASSERT_TRUE(spilled.value().checkpoint_health.has_value());
      EXPECT_EQ(spilled.value().checkpoint_health->round_log_failures, 0);
      EXPECT_EQ(spilled.value().checkpoint_health->round_log_rounds,
                fed_cfg.num_rounds);
      // The spill run itself is untouched by the logging.
      ExpectVectorsBitIdentical(*spilled.value().fedsv_values, base_fedsv,
                                "FedSV of the spilling run");

      for (bool use_mmap : {true, false}) {
        SCOPED_TRACE(use_mmap ? "mmap" : "pread");
        RoundLogReadOptions read_options;
        read_options.use_mmap = use_mmap;
        read_options.window_bytes = 4096;  // force the window to slide
        Result<ValuationOutcome> replayed = RunValuationFromLog(
            model, w.test, kClients, ckpt.round_log_path, request,
            read_options, &ctx);
        ASSERT_TRUE(replayed.ok()) << replayed.status().ToString();
        EXPECT_EQ(replayed.value().training.rounds_run,
                  fed_cfg.num_rounds);
        // Lossless log replay is the same trajectory: bit-identical
        // FedSV, and the ComFedSV solve sees bit-identical inputs (so
        // well inside the issue's 1e-9 envelope — it is exact).
        ExpectVectorsBitIdentical(*replayed.value().fedsv_values,
                                  base_fedsv, "FedSV from log");
        ASSERT_EQ(replayed.value().comfedsv->values.size(),
                  base_comfedsv.size());
        for (size_t i = 0; i < base_comfedsv.size(); ++i) {
          EXPECT_NEAR(replayed.value().comfedsv->values[i],
                      base_comfedsv[i], 1e-9)
              << "ComFedSV client " << i;
          EXPECT_EQ(replayed.value().comfedsv->values[i],
                    base_comfedsv[i])
              << "lossless replay should be exact, client " << i;
        }
      }
    }

    // The lossy mode replays to a *nearby* valuation: everything
    // finite, drift bounded well away from the signal scale.
    {
      CheckpointConfig ckpt;
      ckpt.path = Path("ckpt_q_" + std::to_string(threads));
      ckpt.round_log_path =
          Path("spill_q_" + std::to_string(threads) + ".log");
      ckpt.round_log_compression = RoundLogCompression::kQuant16;
      Result<ValuationOutcome> spilled = RunValuationCheckpointed(
          model, w.clients, w.test, fed_cfg, request, ckpt, &ctx);
      ASSERT_TRUE(spilled.ok()) << spilled.status().ToString();
      Result<ValuationOutcome> replayed = RunValuationFromLog(
          model, w.test, kClients, ckpt.round_log_path, request, {}, &ctx);
      ASSERT_TRUE(replayed.ok()) << replayed.status().ToString();
      for (size_t i = 0; i < base_fedsv.size(); ++i) {
        const double diff =
            std::abs((*replayed.value().fedsv_values)[i] - base_fedsv[i]);
        EXPECT_TRUE(std::isfinite(diff)) << "client " << i;
        EXPECT_LT(diff, 1e-2) << "quantization drift, client " << i;
      }
    }
  }
}

// ---------------------------------------------------------------------
// Engine-level spill: checkpoint/restore realigns the log.
// ---------------------------------------------------------------------

TEST_F(RoundLogTest, EngineRestoreTruncatesLogBackToCheckpointedRound) {
  constexpr int kClients = 3;
  GoldenWorkload w = MakeGoldenWorkload(kClients, 4242);
  LogisticRegression model(w.test.dim(), 10);
  FedAvgConfig fed_cfg;
  fed_cfg.num_rounds = 3;
  fed_cfg.clients_per_round = 2;
  fed_cfg.seed = 17;
  StreamingConfig streaming;
  streaming.request = GoldenRequest();
  streaming.spill.enabled = true;

  // Uninterrupted baseline log.
  const std::string clean_log = Path("clean.log");
  {
    StreamingConfig cfg = streaming;
    cfg.spill.path = clean_log;
    StreamingValuationEngine engine(&model, &w.test, kClients, cfg);
    FedAvgTrainer trainer(&model, w.clients, w.test, fed_cfg);
    ASSERT_TRUE(trainer.Begin().ok());
    while (!trainer.Done()) engine.OnRound(trainer.Step());
    ASSERT_TRUE(engine.SyncSpill().ok());
    EXPECT_EQ(engine.spill_writer()->rounds(), fed_cfg.num_rounds);
  }

  // Interrupted run: checkpoint after round 2, keep streaming round 3
  // into the log, then "crash" (drop the engine without another save).
  const std::string crash_log = Path("crash.log");
  const std::string stem = Path("stream.ckpt");
  CheckpointManagerOptions mgr_options;
  mgr_options.keep_generations = 2;
  CheckpointManager manager(stem, mgr_options);
  {
    StreamingConfig cfg = streaming;
    cfg.spill.path = crash_log;
    StreamingValuationEngine engine(&model, &w.test, kClients, cfg);
    FedAvgTrainer trainer(&model, w.clients, w.test, fed_cfg);
    ASSERT_TRUE(trainer.Begin().ok());
    while (!trainer.Done()) {
      const RoundRecord& record = trainer.Step();
      engine.OnRound(record);
      if (engine.rounds_consumed() == 2) {
        ASSERT_TRUE(engine.SaveCheckpoint(&manager).ok());
      }
    }
    EXPECT_EQ(engine.spill_writer()->rounds(), 3);  // round 3 is extra
  }

  // Resume: restore at round 2, replay round 3. The first spilled
  // round truncates the log back to the checkpointed position, so the
  // final file is byte-identical to the uninterrupted one.
  {
    StreamingConfig cfg = streaming;
    cfg.spill.path = crash_log;
    StreamingValuationEngine engine(&model, &w.test, kClients, cfg);
    ASSERT_TRUE(engine.RestoreCheckpoint(&manager).ok());
    ASSERT_EQ(engine.rounds_consumed(), 2);
    FedAvgTrainer trainer(&model, w.clients, w.test, fed_cfg);
    ASSERT_TRUE(trainer.Begin().ok());
    while (!trainer.Done()) {
      const RoundRecord& record = trainer.Step();
      if (record.round < 2) continue;
      engine.OnRound(record);
    }
    ASSERT_TRUE(engine.SyncSpill().ok());
    EXPECT_EQ(engine.health().spill_failures, 0);
    EXPECT_EQ(engine.spill_writer()->rounds(), fed_cfg.num_rounds);
  }
  auto clean_bytes = FileEnv::Real()->ReadFile(clean_log);
  auto crash_bytes = FileEnv::Real()->ReadFile(crash_log);
  ASSERT_TRUE(clean_bytes.ok());
  ASSERT_TRUE(crash_bytes.ok());
  EXPECT_EQ(clean_bytes.value(), crash_bytes.value());
}

}  // namespace
}  // namespace comfedsv
