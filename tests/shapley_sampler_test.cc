// PermutationSampler tests: legacy-sequence conformance (the uniform
// mode must reproduce the pre-sampler draws bit for bit in both
// conventions), structural properties of antithetic pairs and stratified
// blocks, unbiasedness on closed-form games, and the truncated walk's
// tolerance / loss-call contract.
#include "shapley/sampler.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>

#include "shapley/shapley.h"

namespace comfedsv {
namespace {

UtilityFn AdditiveGame(const std::vector<double>& weights) {
  return [weights](const Coalition& c) {
    double total = 0.0;
    for (int m : c.Members()) total += weights[m];
    return total;
  };
}

// Wraps a game and counts utility evaluations (the loss-call analog).
struct CountingGame {
  UtilityFn game;
  int64_t evals = 0;
  UtilityFn Fn() {
    return [this](const Coalition& c) {
      ++evals;
      return game(c);
    };
  }
};

std::vector<int> Iota(int n) {
  std::vector<int> v(n);
  for (int i = 0; i < n; ++i) v[i] = i;
  return v;
}

TEST(DrawOrderingsTest, UniformChainedMatchesLegacyMonteCarloDraws) {
  // MonteCarloShapley's historical convention: one working vector
  // re-shuffled in place per draw.
  const std::vector<int> players = {3, 1, 4, 0, 2};
  Rng legacy(42);
  std::vector<std::vector<int>> expected;
  std::vector<int> order(players);
  for (int s = 0; s < 6; ++s) {
    legacy.Shuffle(&order);
    expected.push_back(order);
  }

  Rng rng(42);
  SamplerConfig cfg;  // uniform
  std::vector<std::vector<int>> got =
      DrawOrderings(cfg, players, 6, &rng, /*reset_between_draws=*/false);
  EXPECT_EQ(got, expected);
}

TEST(DrawOrderingsTest, UniformResetMatchesLegacyPermutationDraws) {
  // SampledUtilityRecorder's historical convention: Rng::Permutation per
  // draw (identity reset, then shuffle).
  const int n = 7;
  Rng legacy(99);
  std::vector<std::vector<int>> expected;
  for (int s = 0; s < 5; ++s) expected.push_back(legacy.Permutation(n));

  Rng rng(99);
  SamplerConfig cfg;  // uniform
  std::vector<std::vector<int>> got =
      DrawOrderings(cfg, Iota(n), 5, &rng, /*reset_between_draws=*/true);
  EXPECT_EQ(got, expected);
}

TEST(DrawOrderingsTest, EveryOrderingIsAPermutationOfThePlayers) {
  const std::vector<int> players = {5, 2, 8, 0, 11, 3};
  std::vector<int> sorted_players(players);
  std::sort(sorted_players.begin(), sorted_players.end());
  for (SamplerKind kind :
       {SamplerKind::kUniformIid, SamplerKind::kAntithetic,
        SamplerKind::kStratified, SamplerKind::kTruncated}) {
    SamplerConfig cfg;
    cfg.kind = kind;
    Rng rng(7);
    // 13 is deliberately not a multiple of the pair/block sizes.
    std::vector<std::vector<int>> orders =
        DrawOrderings(cfg, players, 13, &rng);
    ASSERT_EQ(orders.size(), 13u) << SamplerKindName(kind);
    for (const std::vector<int>& order : orders) {
      std::vector<int> sorted(order);
      std::sort(sorted.begin(), sorted.end());
      EXPECT_EQ(sorted, sorted_players) << SamplerKindName(kind);
    }
  }
}

TEST(DrawOrderingsTest, AntitheticOrderingsComeInReversedPairs) {
  SamplerConfig cfg;
  cfg.kind = SamplerKind::kAntithetic;
  Rng rng(11);
  std::vector<std::vector<int>> orders =
      DrawOrderings(cfg, Iota(6), 10, &rng);
  ASSERT_EQ(orders.size(), 10u);
  for (size_t p = 0; p + 1 < orders.size(); p += 2) {
    std::vector<int> reversed(orders[p].rbegin(), orders[p].rend());
    EXPECT_EQ(orders[p + 1], reversed) << "pair " << p;
  }
}

TEST(DrawOrderingsTest, StratifiedBlocksCoverEveryPositionOnce) {
  // Within one block of m rotations, every player occupies every
  // position exactly once (a cyclic Latin square).
  const int m = 5;
  SamplerConfig cfg;
  cfg.kind = SamplerKind::kStratified;
  Rng rng(13);
  std::vector<std::vector<int>> orders =
      DrawOrderings(cfg, Iota(m), 2 * m, &rng);
  ASSERT_EQ(orders.size(), static_cast<size_t>(2 * m));
  for (int block = 0; block < 2; ++block) {
    for (int pos = 0; pos < m; ++pos) {
      std::vector<int> players_at_pos;
      for (int r = 0; r < m; ++r) {
        players_at_pos.push_back(orders[block * m + r][pos]);
      }
      std::sort(players_at_pos.begin(), players_at_pos.end());
      EXPECT_EQ(players_at_pos, Iota(m))
          << "block " << block << " position " << pos;
    }
  }
}

TEST(DrawOrderingsTest, DefaultBudgetRoundsUpToAntitheticPairs) {
  SamplerConfig antithetic;
  antithetic.kind = SamplerKind::kAntithetic;
  EXPECT_EQ(RoundBudgetForSampler(antithetic, 9), 10);
  EXPECT_EQ(RoundBudgetForSampler(antithetic, 10), 10);
  SamplerConfig uniform;
  EXPECT_EQ(RoundBudgetForSampler(uniform, 9), 9);
}

TEST(DrawOrderingsTest, DegenerateBudgetsAreFlooredNotDropped) {
  // Budget 0 (or negative, from integer division upstream) must still
  // yield at least one draw — a zero budget would make the estimate an
  // empty average (NaN / silent zeros). Antithetic floors at one full
  // forward/reverse pair.
  SamplerConfig uniform;
  EXPECT_EQ(RoundBudgetForSampler(uniform, 0), 1);
  EXPECT_EQ(RoundBudgetForSampler(uniform, -5), 1);
  EXPECT_EQ(RoundBudgetForSampler(uniform, 1), 1);
  SamplerConfig antithetic;
  antithetic.kind = SamplerKind::kAntithetic;
  EXPECT_EQ(RoundBudgetForSampler(antithetic, 0), 2);
  EXPECT_EQ(RoundBudgetForSampler(antithetic, -5), 2);
  EXPECT_EQ(RoundBudgetForSampler(antithetic, 1), 2);
  SamplerConfig stratified;
  stratified.kind = SamplerKind::kStratified;
  EXPECT_EQ(RoundBudgetForSampler(stratified, 0), 1);
  SamplerConfig truncated;
  truncated.kind = SamplerKind::kTruncated;
  EXPECT_EQ(RoundBudgetForSampler(truncated, 0), 1);
}

TEST(SamplerEstimatesTest, SingleClientGameWorksForEverySampler) {
  // A single-player game is all edge case: one ordering, one stratum,
  // antithetic pairs that are their own reverse. No sampler may crash,
  // deadlock, or mis-estimate the lone player's value.
  for (SamplerKind kind :
       {SamplerKind::kUniformIid, SamplerKind::kAntithetic,
        SamplerKind::kStratified, SamplerKind::kTruncated}) {
    SamplerConfig cfg;
    cfg.kind = kind;
    Rng rng(5);
    const int budget = RoundBudgetForSampler(cfg, 0);
    Result<Vector> est = MonteCarloShapley(
        1, {0}, AdditiveGame({4.25}), budget, &rng, nullptr, nullptr, cfg);
    ASSERT_TRUE(est.ok()) << "kind " << static_cast<int>(kind);
    EXPECT_NEAR(est.value()[0], 4.25, 1e-12)
        << "kind " << static_cast<int>(kind);
  }
}

TEST(SamplerEstimatesTest, AllSamplersExactOnAdditiveGames) {
  // For additive games every ordering's marginal is the own weight, so
  // every sampler (including truncated walks — partial sums of positive
  // weights never hit the total early) is exact with any budget.
  const std::vector<double> weights = {2.0, 0.5, 1.25, 3.0};
  for (SamplerKind kind :
       {SamplerKind::kUniformIid, SamplerKind::kAntithetic,
        SamplerKind::kStratified, SamplerKind::kTruncated}) {
    SamplerConfig cfg;
    cfg.kind = kind;
    cfg.truncation_tolerance = 0.0;
    Rng rng(17);
    Result<Vector> est =
        MonteCarloShapley(4, {0, 1, 2, 3}, AdditiveGame(weights), 6, &rng,
                          nullptr, nullptr, cfg);
    ASSERT_TRUE(est.ok()) << SamplerKindName(kind);
    for (int i = 0; i < 4; ++i) {
      EXPECT_NEAR(est.value()[i], weights[i], 1e-12)
          << SamplerKindName(kind) << " player " << i;
    }
  }
}

TEST(SamplerEstimatesTest, VarianceReducedSamplersConvergeToExact) {
  // Unbiasedness check on a nonlinear game: every sampler's estimate
  // approaches the exact values as the budget grows.
  std::vector<int> players = {0, 1, 2, 3, 4};
  UtilityFn game = [](const Coalition& c) {
    double v = 0.0;
    for (int m : c.Members()) v += std::sqrt(m + 1.0);
    if (c.Count() >= 3) v += 2.0;
    if (c.Contains(1) && c.Contains(4)) v += 1.0;
    return v;
  };
  Result<Vector> exact = ExactShapley(5, players, game);
  ASSERT_TRUE(exact.ok());

  for (SamplerKind kind :
       {SamplerKind::kAntithetic, SamplerKind::kStratified}) {
    SamplerConfig cfg;
    cfg.kind = kind;
    Rng rng(19);
    Result<Vector> est = MonteCarloShapley(5, players, game, 20000, &rng,
                                           nullptr, nullptr, cfg);
    ASSERT_TRUE(est.ok()) << SamplerKindName(kind);
    for (int i = 0; i < 5; ++i) {
      EXPECT_NEAR(est.value()[i], exact.value()[i], 0.03)
          << SamplerKindName(kind) << " player " << i;
    }
  }
}

TEST(TruncatedWalkTest, PlateauGameSkipsTailLossCallsExactly) {
  // U(S) = min(|S|, 2): the walk saturates at position 1, so a zero
  // tolerance already truncates there — and because the skipped tail's
  // marginals are exactly 0, the estimate matches the untruncated one
  // bit for bit (same rng, same orderings).
  const int m = 6;
  const int perms = 13;
  UtilityFn plateau = [](const Coalition& c) {
    return std::min<double>(c.Count(), 2.0);
  };
  std::vector<int> players = Iota(m);

  CountingGame uniform_count{plateau};
  Rng uniform_rng(23);
  Result<Vector> uniform_est = MonteCarloShapley(
      m, players, uniform_count.Fn(), perms, &uniform_rng);
  ASSERT_TRUE(uniform_est.ok());
  EXPECT_EQ(uniform_count.evals, perms * m);

  CountingGame truncated_count{plateau};
  SamplerConfig cfg;
  cfg.kind = SamplerKind::kTruncated;
  cfg.truncation_tolerance = 0.0;
  Rng truncated_rng(23);
  Result<Vector> truncated_est =
      MonteCarloShapley(m, players, truncated_count.Fn(), perms,
                        &truncated_rng, nullptr, nullptr, cfg);
  ASSERT_TRUE(truncated_est.ok());
  // One grand-coalition reference + two prefixes per permutation.
  EXPECT_EQ(truncated_count.evals, 1 + perms * 2);
  for (int i = 0; i < m; ++i) {
    EXPECT_EQ(truncated_est.value()[i], uniform_est.value()[i]) << i;
  }
}

TEST(TruncatedWalkTest, BiasIsBoundedByTheTolerance) {
  // U(S) = 1 - 2^{-|S|} over 5 players: the gap to U(grand) after c
  // players is 2^{-c} - 2^{-5}, so tolerance 0.1 truncates every walk
  // after exactly 3 positions. The telescoped total is then 1 - 2^{-3}
  // for every permutation: the estimate's balance deficit vs U(grand)
  // is exactly the truncated mass, which the tolerance bounds.
  const int m = 5;
  UtilityFn game = [](const Coalition& c) {
    return 1.0 - std::pow(2.0, -static_cast<double>(c.Count()));
  };
  const double grand = 1.0 - std::pow(2.0, -5.0);

  CountingGame counting{game};
  SamplerConfig cfg;
  cfg.kind = SamplerKind::kTruncated;
  cfg.truncation_tolerance = 0.1;
  const int perms = 40;
  Rng rng(29);
  Result<Vector> est = MonteCarloShapley(m, Iota(m), counting.Fn(), perms,
                                         &rng, nullptr, nullptr, cfg);
  ASSERT_TRUE(est.ok());
  EXPECT_NEAR(est.value().Sum(), 1.0 - std::pow(2.0, -3.0), 1e-12);
  EXPECT_LE(std::fabs(est.value().Sum() - grand),
            cfg.truncation_tolerance);
  // Three prefixes per permutation plus the grand reference.
  EXPECT_EQ(counting.evals, 1 + perms * 3);
}

TEST(TruncatedWalkTest, NegativeToleranceRejected) {
  SamplerConfig cfg;
  cfg.kind = SamplerKind::kTruncated;
  cfg.truncation_tolerance = -1.0;
  Rng rng(1);
  Result<Vector> est = MonteCarloShapley(
      3, {0, 1, 2}, AdditiveGame({1, 1, 1}), 4, &rng, nullptr, nullptr,
      cfg);
  EXPECT_FALSE(est.ok());
  EXPECT_EQ(est.status().code(), StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace comfedsv
