// Quickstart: value five clients' contributions to a federated model in
// ~40 lines of user code.
//
//   1. build per-client datasets and a central test set,
//   2. pick a model,
//   3. call RunValuation with the metrics you want,
//   4. read per-client FedSV and ComFedSV.
//
// Build & run:  ./build/examples/quickstart
#include <cstdio>

#include "core/comfedsv_api.h"

int main() {
  using namespace comfedsv;

  // 1. Data: a simulated MNIST-like pool, split IID across 5 clients,
  //    plus a fresh draw as the server's test set.
  SimulatedImageConfig data_cfg;
  data_cfg.family = ImageFamily::kMnist;
  data_cfg.num_samples = 600;
  data_cfg.seed = 1;
  Dataset pool = GenerateSimulatedImages(data_cfg);
  data_cfg.num_samples = 150;
  data_cfg.seed = 2;
  Dataset test = GenerateSimulatedImages(data_cfg);
  Rng rng(3);
  std::vector<Dataset> clients = PartitionIid(pool, 5, &rng);

  // 2. Model: multinomial logistic regression (any Model works).
  LogisticRegression model(pool.dim(), 10, /*l2_penalty=*/1e-3);

  // 3. Federated training + valuation in one call.
  FedAvgConfig fed;
  fed.num_rounds = 8;
  fed.clients_per_round = 2;
  fed.select_all_first_round = true;  // Assumption 1 (ComFedSV needs it)
  fed.lr = LearningRateSchedule::Constant(0.3);
  fed.seed = 4;

  ValuationRequest request;
  request.compute_fedsv = true;
  request.compute_comfedsv = true;
  request.comfedsv.completion.rank = 3;
  request.comfedsv.completion.lambda = 1e-4;
  request.comfedsv.completion.temporal_smoothing = 0.1;

  Result<ValuationOutcome> outcome =
      RunValuation(model, clients, test, fed, request);
  if (!outcome.ok()) {
    std::fprintf(stderr, "valuation failed: %s\n",
                 outcome.status().ToString().c_str());
    return 1;
  }

  // 4. Read the results.
  const ValuationOutcome& o = outcome.value();
  std::printf("final test accuracy: %.3f\n",
              o.training.final_test_accuracy);
  Table table({"client", "FedSV", "ComFedSV"});
  for (int i = 0; i < 5; ++i) {
    table.AddRow({std::to_string(i),
                  Table::Num((*o.fedsv_values)[i], 4),
                  Table::Num(o.comfedsv->values[i], 4)});
  }
  std::printf("%s", table.ToText().c_str());
  std::printf("(utility-matrix completion: %d columns, density %.3f)\n",
              o.comfedsv->num_columns, o.comfedsv->observed_density);
  return 0;
}
