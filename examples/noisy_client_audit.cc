// Data-quality audit: a federation operator suspects some clients upload
// low-quality (mislabeled) data. This example corrupts two of eight
// clients, runs ComFedSV, and flags the lowest-valued clients — the
// Fig. 6/7 use case as a downstream application.
//
// Build & run:  ./build/examples/noisy_client_audit
#include <cstdio>

#include "core/comfedsv_api.h"

int main() {
  using namespace comfedsv;
  const int kNumClients = 8;
  const std::vector<int> kCorrupted = {2, 5};

  // Non-IID federation over FashionMNIST-like data.
  SimulatedImageConfig data_cfg;
  data_cfg.family = ImageFamily::kFashionMnist;
  data_cfg.num_samples = 640;
  data_cfg.seed = 11;
  Dataset pool = GenerateSimulatedImages(data_cfg);
  data_cfg.num_samples = 150;
  data_cfg.seed = 12;
  Dataset test = GenerateSimulatedImages(data_cfg);
  Rng rng(13);
  std::vector<Dataset> clients = PartitionIid(pool, kNumClients, &rng);

  // Clients 2 and 5 have 40% of their labels flipped.
  for (int bad : kCorrupted) {
    int flipped = FlipLabels(&clients[bad], 0.4, &rng);
    std::printf("injected %d flipped labels into client %d\n", flipped,
                bad);
  }

  Mlp model({pool.dim(), 24, 10}, 1e-4);

  FedAvgConfig fed;
  fed.num_rounds = 12;
  fed.clients_per_round = 3;
  fed.select_all_first_round = true;
  fed.lr = LearningRateSchedule::Constant(0.3);
  fed.seed = 14;

  ValuationRequest request;
  request.compute_fedsv = false;
  request.compute_comfedsv = true;
  request.comfedsv.completion.rank = 3;
  request.comfedsv.completion.lambda = 1e-4;
  request.comfedsv.completion.temporal_smoothing = 0.1;

  Result<ValuationOutcome> outcome =
      RunValuation(model, clients, test, fed, request);
  if (!outcome.ok()) {
    std::fprintf(stderr, "valuation failed: %s\n",
                 outcome.status().ToString().c_str());
    return 1;
  }
  const Vector& values = outcome.value().comfedsv->values;

  Table table({"client", "ComFedSV", "status"});
  std::vector<int> flagged =
      BottomKIndices(values, static_cast<int>(kCorrupted.size()));
  for (int i = 0; i < kNumClients; ++i) {
    const bool is_flagged =
        std::find(flagged.begin(), flagged.end(), i) != flagged.end();
    table.AddRow({std::to_string(i), Table::Num(values[i], 4),
                  is_flagged ? "FLAGGED (lowest values)" : ""});
  }
  std::printf("%s", table.ToText().c_str());

  const double jaccard = JaccardIndex(flagged, kCorrupted);
  std::printf(
      "audit quality: Jaccard(flagged, truly corrupted) = %.2f\n"
      "(1.0 means the audit flagged exactly the corrupted clients)\n",
      jaccard);
  return 0;
}
