// Fair revenue split: a data marketplace rewards clients proportionally
// to their contribution. Two participants hold identical data — a fair
// split must pay them (nearly) the same. This example contrasts FedSV
// (which can pay twins very differently under partial participation,
// Observation 1) with ComFedSV.
//
// Build & run:  ./build/examples/fair_payout
#include <algorithm>
#include <cmath>
#include <cstdio>

#include "core/comfedsv_api.h"

int main() {
  using namespace comfedsv;
  const double kRevenuePool = 10000.0;  // amount to distribute

  // Seven clients with non-IID (label-shard) MNIST-like data; client 7
  // joins with an exact copy of client 0's dataset ("twins").
  SimulatedImageConfig data_cfg;
  data_cfg.family = ImageFamily::kMnist;
  data_cfg.num_samples = 700;
  data_cfg.seed = 21;
  Dataset pool = GenerateSimulatedImages(data_cfg);
  data_cfg.num_samples = 150;
  data_cfg.seed = 22;
  Dataset test = GenerateSimulatedImages(data_cfg);
  Rng rng(23);
  std::vector<Dataset> clients = PartitionByLabelShards(pool, 7, 2, &rng);
  clients.push_back(clients[0]);  // the twin
  const int n = static_cast<int>(clients.size());

  Mlp model({pool.dim(), 24, 10}, 1e-4);

  // Payout share: value clipped at zero, normalized to the pool.
  auto payouts = [&](const Vector& values) {
    std::vector<double> pay(values.size());
    double total = 0.0;
    for (size_t i = 0; i < values.size(); ++i) {
      pay[i] = std::max(0.0, values[i]);
      total += pay[i];
    }
    for (double& p : pay) p = total > 0 ? p / total * kRevenuePool : 0.0;
    return pay;
  };

  // Selection randomness makes any single run anecdotal (that is
  // Observation 1!), so we average the twin payout gap over several
  // independent training runs and show the payout table of the last one.
  const int kRuns = 6;
  double gap_fedsv_sum = 0.0, gap_comfedsv_sum = 0.0;
  std::vector<double> pay_fedsv, pay_comfedsv;
  for (int run = 0; run < kRuns; ++run) {
    FedAvgConfig fed;
    fed.num_rounds = 10;
    fed.clients_per_round = 3;
    fed.select_all_first_round = true;
    fed.lr = LearningRateSchedule::Constant(0.3);
    fed.seed = 23 + run;

    ValuationRequest request;
    request.compute_fedsv = true;
    request.compute_comfedsv = true;
    request.comfedsv.completion.rank = 3;
    request.comfedsv.completion.lambda = 1e-4;
    request.comfedsv.completion.temporal_smoothing = 0.1;
    request.comfedsv.completion.seed = run;

    Result<ValuationOutcome> outcome =
        RunValuation(model, clients, test, fed, request);
    if (!outcome.ok()) {
      std::fprintf(stderr, "valuation failed: %s\n",
                   outcome.status().ToString().c_str());
      return 1;
    }
    pay_fedsv = payouts(*outcome.value().fedsv_values);
    pay_comfedsv = payouts(outcome.value().comfedsv->values);
    gap_fedsv_sum += std::fabs(pay_fedsv[0] - pay_fedsv[n - 1]);
    gap_comfedsv_sum += std::fabs(pay_comfedsv[0] - pay_comfedsv[n - 1]);
  }

  Table table({"client", "FedSV payout", "ComFedSV payout", "note"});
  for (int i = 0; i < n; ++i) {
    std::string note;
    if (i == 0 || i == n - 1) note = "identical data (twins)";
    table.AddRow({std::to_string(i), Table::Num(pay_fedsv[i], 5),
                  Table::Num(pay_comfedsv[i], 5), note});
  }
  std::printf("payouts from the last run:\n%s", table.ToText().c_str());

  std::printf(
      "mean twin payout gap over %d runs: FedSV %.0f vs ComFedSV %.0f\n"
      "(smaller = fairer: identical data should earn identical pay)\n",
      kRuns, gap_fedsv_sum / kRuns, gap_comfedsv_sum / kRuns);
  return 0;
}
