// Resume after a crash: kill a checkpointed valuation run mid-training,
// restart it from the checkpoint file, and verify the final values are
// bit-identical to an uninterrupted run.
//
//   1. run RunValuationCheckpointed with crash injection at round 4 of 8
//      (stands in for a real kill -9 — the process state is discarded
//      either way; only the checkpoint file survives),
//   2. call RunValuationCheckpointed again with the same inputs: it
//      finds the round-4 checkpoint and replays only rounds 5..8,
//   3. compare against a straight (never-interrupted) run,
//   4. repeat with rotated generations (keep_generations=3) and a
//      deliberately corrupted newest checkpoint: the resume quarantines
//      the corrupt file to `*.corrupt`, falls back to the next-newest
//      generation, and still finishes bit-identical.
//
// Build & run:  ./build/examples/example_resume_after_crash
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "core/comfedsv_api.h"
#include "io/checkpoint_manager.h"
#include "io/file_env.h"

int main() {
  using namespace comfedsv;

  // Small federated workload (see quickstart.cc for the walkthrough).
  SimulatedImageConfig data_cfg;
  data_cfg.family = ImageFamily::kMnist;
  data_cfg.num_samples = 500;
  data_cfg.seed = 1;
  Dataset pool = GenerateSimulatedImages(data_cfg);
  data_cfg.num_samples = 120;
  data_cfg.seed = 2;
  Dataset test = GenerateSimulatedImages(data_cfg);
  Rng rng(3);
  std::vector<Dataset> clients = PartitionIid(pool, 5, &rng);
  LogisticRegression model(pool.dim(), 10, /*l2_penalty=*/1e-3);

  FedAvgConfig fed;
  fed.num_rounds = 8;
  fed.clients_per_round = 3;
  fed.select_all_first_round = true;
  fed.lr = LearningRateSchedule::Constant(0.3);
  fed.seed = 4;

  ValuationRequest request;
  request.compute_fedsv = true;
  request.fedsv.mode = FedSvConfig::Mode::kMonteCarlo;
  request.fedsv.permutations_per_round = 8;
  request.compute_comfedsv = true;
  request.comfedsv.mode = ComFedSvConfig::Mode::kSampled;
  request.comfedsv.num_permutations = 8;
  request.comfedsv.completion.rank = 3;
  request.comfedsv.completion.lambda = 1e-4;

  CheckpointConfig checkpoint;
  checkpoint.path = "resume_example.ckpt";
  checkpoint.every_rounds = 1;
  std::remove(checkpoint.path.c_str());

  // 1. First attempt "crashes" after round 4. Every completed round was
  //    checkpointed (atomically: write + rename), so the round-4 state
  //    is on disk when the process dies.
  CheckpointConfig crashing = checkpoint;
  crashing.inject_crash_after_round = 4;
  Result<ValuationOutcome> crashed = RunValuationCheckpointed(
      model, clients, test, fed, request, crashing);
  std::printf("first run:  %s\n", crashed.status().ToString().c_str());

  // 2. Second attempt resumes from the checkpoint: rounds 1..4 are not
  //    recomputed; training and every valuation stream continue from
  //    the saved state.
  Result<ValuationOutcome> resumed = RunValuationCheckpointed(
      model, clients, test, fed, request, checkpoint);
  if (!resumed.ok()) {
    std::fprintf(stderr, "resume failed: %s\n",
                 resumed.status().ToString().c_str());
    return 1;
  }
  std::printf("second run: resumed from round 4 and finished %d rounds\n",
              resumed.value().training.rounds_run);

  // 3. Reference: the same run never interrupted.
  Result<ValuationOutcome> straight =
      RunValuation(model, clients, test, fed, request);
  if (!straight.ok()) {
    std::fprintf(stderr, "straight run failed: %s\n",
                 straight.status().ToString().c_str());
    return 1;
  }

  Table table({"client", "FedSV (resumed)", "FedSV (straight)",
               "ComFedSV (resumed)", "ComFedSV (straight)"});
  bool identical = true;
  for (int i = 0; i < 5; ++i) {
    const double f_resumed = (*resumed.value().fedsv_values)[i];
    const double f_straight = (*straight.value().fedsv_values)[i];
    const double c_resumed = resumed.value().comfedsv->values[i];
    const double c_straight = straight.value().comfedsv->values[i];
    identical = identical && std::memcmp(&f_resumed, &f_straight, 8) == 0 &&
                std::memcmp(&c_resumed, &c_straight, 8) == 0;
    table.AddRow({std::to_string(i), Table::Num(f_resumed, 12),
                  Table::Num(f_straight, 12), Table::Num(c_resumed, 12),
                  Table::Num(c_straight, 12)});
  }
  std::printf("\n%s", table.ToText().c_str());
  std::printf("\nresumed == straight, bit for bit: %s\n",
              identical ? "yes" : "NO (bug!)");
  std::remove(checkpoint.path.c_str());

  // 4. Generation fallback: with keep_generations >= 2 each save lands
  //    in its own rotated file, so even a checkpoint that goes bad *on
  //    disk* (bit rot, torn rename) costs one generation of progress,
  //    not the run.
  CheckpointConfig rotated = checkpoint;
  rotated.path = "resume_example_rotated.ckpt";
  rotated.keep_generations = 3;
  CheckpointConfig rotated_crashing = rotated;
  rotated_crashing.inject_crash_after_round = 4;
  Result<ValuationOutcome> crashed2 = RunValuationCheckpointed(
      model, clients, test, fed, request, rotated_crashing);
  std::printf("\nrotated run: %s\n", crashed2.status().ToString().c_str());

  // Corrupt the newest generation the crash left behind.
  CheckpointManagerOptions inspect_options;
  inspect_options.keep_generations = rotated.keep_generations;
  CheckpointManager inspect(rotated.path, inspect_options);
  const auto generations = inspect.ListGenerations();
  const std::string& newest = generations.back().second;
  Result<std::string> bytes = FileEnv::Real()->ReadFile(newest);
  if (!bytes.ok()) {
    std::fprintf(stderr, "read failed: %s\n",
                 bytes.status().ToString().c_str());
    return 1;
  }
  std::string corrupted = bytes.value();
  corrupted[corrupted.size() / 2] ^= 0x40;
  if (!FileEnv::Real()->WriteFile(newest, corrupted).ok()) return 1;
  std::printf("corrupted newest generation %s (%zu generations on disk)\n",
              newest.c_str(), generations.size());

  Result<ValuationOutcome> salvaged = RunValuationCheckpointed(
      model, clients, test, fed, request, rotated);
  if (!salvaged.ok()) {
    std::fprintf(stderr, "salvaged resume failed: %s\n",
                 salvaged.status().ToString().c_str());
    return 1;
  }
  const CheckpointHealth& health = *salvaged.value().checkpoint_health;
  std::printf(
      "salvaged resume: quarantined %d corrupt generation(s), resumed "
      "from sequence %llu, finished %d rounds\n",
      health.quarantined_on_resume,
      static_cast<unsigned long long>(health.resumed_sequence),
      salvaged.value().training.rounds_run);

  bool salvage_identical = true;
  for (int i = 0; i < 5; ++i) {
    const double f_salvaged = (*salvaged.value().fedsv_values)[i];
    const double f_straight = (*straight.value().fedsv_values)[i];
    salvage_identical =
        salvage_identical && std::memcmp(&f_salvaged, &f_straight, 8) == 0;
  }
  std::printf("salvaged == straight, bit for bit: %s\n",
              salvage_identical ? "yes" : "NO (bug!)");
  for (const auto& [seq, file] : inspect.ListGenerations()) {
    std::remove(file.c_str());
  }
  std::remove((newest + ".corrupt").c_str());
  return salvage_identical ? 0 : 1;
}
