#include "metrics/metrics.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <set>

#include "common/check.h"

namespace comfedsv {

double RelativeDifference(double a, double b) {
  const double denom = std::max(a, b);
  if (denom == 0.0) {
    return (a == 0.0 && b == 0.0) ? 0.0 : 1.0;
  }
  return std::fabs(a - b) / std::fabs(denom);
}

std::vector<double> AverageRanks(const std::vector<double>& values) {
  const size_t n = values.size();
  std::vector<size_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(),
            [&](size_t x, size_t y) { return values[x] < values[y]; });
  std::vector<double> ranks(n, 0.0);
  size_t i = 0;
  while (i < n) {
    size_t j = i;
    while (j + 1 < n && values[order[j + 1]] == values[order[i]]) ++j;
    // Tie group [i, j] gets the average of ranks i+1 ... j+1.
    const double avg_rank = 0.5 * static_cast<double>(i + j) + 1.0;
    for (size_t k = i; k <= j; ++k) ranks[order[k]] = avg_rank;
    i = j + 1;
  }
  return ranks;
}

Result<double> SpearmanCorrelation(const std::vector<double>& a,
                                   const std::vector<double>& b) {
  if (a.size() != b.size()) {
    return Status::InvalidArgument("samples differ in length");
  }
  if (a.size() < 2) {
    return Status::InvalidArgument("need at least two samples");
  }
  const std::vector<double> ra = AverageRanks(a);
  const std::vector<double> rb = AverageRanks(b);
  const double n = static_cast<double>(a.size());
  double mean = (n + 1.0) / 2.0;
  double cov = 0.0, var_a = 0.0, var_b = 0.0;
  for (size_t i = 0; i < a.size(); ++i) {
    const double da = ra[i] - mean;
    const double db = rb[i] - mean;
    cov += da * db;
    var_a += da * da;
    var_b += db * db;
  }
  if (var_a == 0.0 || var_b == 0.0) {
    return Status::NumericalError("zero rank variance");
  }
  return cov / std::sqrt(var_a * var_b);
}

double JaccardIndex(const std::vector<int>& a, const std::vector<int>& b) {
  const std::set<int> sa(a.begin(), a.end());
  const std::set<int> sb(b.begin(), b.end());
  if (sa.empty() && sb.empty()) return 1.0;
  size_t intersection = 0;
  for (int x : sa) {
    if (sb.count(x)) ++intersection;
  }
  const size_t unions = sa.size() + sb.size() - intersection;
  return static_cast<double>(intersection) / static_cast<double>(unions);
}

std::vector<int> BottomKIndices(const Vector& values, int k) {
  COMFEDSV_CHECK_GE(k, 0);
  COMFEDSV_CHECK_LE(static_cast<size_t>(k), values.size());
  std::vector<int> order(values.size());
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(),
            [&](int x, int y) { return values[x] < values[y]; });
  order.resize(k);
  std::sort(order.begin(), order.end());
  return order;
}

EmpiricalCdf::EmpiricalCdf(std::vector<double> samples)
    : sorted_(std::move(samples)) {
  COMFEDSV_CHECK(!sorted_.empty());
  std::sort(sorted_.begin(), sorted_.end());
}

double EmpiricalCdf::At(double t) const {
  const auto it = std::upper_bound(sorted_.begin(), sorted_.end(), t);
  return static_cast<double>(it - sorted_.begin()) /
         static_cast<double>(sorted_.size());
}

}  // namespace comfedsv
