// Distributional fairness statistics over a valuation vector — how
// evenly a Shapley-style valuation spreads credit across clients. Used
// by bench/detection.cc to report how each attack scenario distorts the
// value distribution, alongside the paper's pairwise fairness statistic
// (metrics.h RelativeDifference, Eq. 7).
#ifndef COMFEDSV_METRICS_FAIRNESS_H_
#define COMFEDSV_METRICS_FAIRNESS_H_

#include <vector>

#include "common/status.h"
#include "linalg/vector.h"

namespace comfedsv {

/// Summary of how evenly a valuation vector distributes value.
///
/// Edge conventions (unit-tested in metrics_test.cc):
///   * the all-zero vector is perfectly even: jain_index = 1, cov = 0;
///   * a single client is trivially fair: jain_index = 1, gap = 0;
///   * zero mean with nonzero spread makes cov = +infinity (the honest
///     answer — any finite value would understate the imbalance).
struct FairnessReport {
  int n = 0;
  double mean = 0.0;
  /// Population standard deviation (divide by n, not n - 1).
  double stddev = 0.0;
  /// Jain's fairness index (sum v)^2 / (n * sum v^2), in [0, 1]:
  /// 1 = perfectly even, 1/n = all value on one client. Most meaningful
  /// for non-negative valuations; defined for any input.
  double jain_index = 1.0;
  /// Coefficient of variation stddev / |mean| (0 when stddev is 0).
  double coefficient_of_variation = 0.0;
  /// Worst-case gap max - min: the spread between the best- and
  /// worst-valued client.
  double worst_case_gap = 0.0;
  double min_value = 0.0;
  double max_value = 0.0;
};

/// Computes the fairness summary of a valuation vector. Fails with
/// InvalidArgument on an empty vector and NumericalError on non-finite
/// entries (a poisoned valuation must not silently launder into finite
/// fairness numbers).
Result<FairnessReport> ComputeFairness(const std::vector<double>& values);
Result<FairnessReport> ComputeFairness(const Vector& values);

}  // namespace comfedsv

#endif  // COMFEDSV_METRICS_FAIRNESS_H_
