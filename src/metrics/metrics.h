// Evaluation metrics used by the paper's experiment section:
//   * relative difference d_{i,j} (Eq. 7) — the fairness statistic;
//   * empirical CDF (Fig. 5);
//   * Spearman's rank correlation (Fig. 6);
//   * Jaccard coefficient between index sets (Fig. 7).
#ifndef COMFEDSV_METRICS_METRICS_H_
#define COMFEDSV_METRICS_METRICS_H_

#include <vector>

#include "common/status.h"
#include "linalg/vector.h"

namespace comfedsv {

/// Relative difference d_{i,j} = |a - b| / max{a, b} (Eq. 7 of the paper).
/// By the paper's convention the denominator is the (signed) max of the
/// two values; when both are 0 the difference is defined as 0. Values are
/// clamped into [0, 1] only when both inputs are non-negative; for mixed
/// signs the raw ratio is returned.
double RelativeDifference(double a, double b);

/// Average ranks of `values` (1-based, ties get the mean of their ranks).
std::vector<double> AverageRanks(const std::vector<double>& values);

/// Spearman's rank correlation between two equal-length samples.
/// Fails on length < 2 or zero rank variance.
Result<double> SpearmanCorrelation(const std::vector<double>& a,
                                   const std::vector<double>& b);

/// Jaccard coefficient |A ∩ B| / |A ∪ B| between two index sets
/// (duplicates ignored). The Jaccard of two empty sets is defined as 1.
double JaccardIndex(const std::vector<int>& a, const std::vector<int>& b);

/// Indices of the k smallest values (the "bottom-k clients" of Fig. 7).
std::vector<int> BottomKIndices(const Vector& values, int k);

/// Empirical cumulative distribution: P(X <= t) for a sample.
class EmpiricalCdf {
 public:
  explicit EmpiricalCdf(std::vector<double> samples);

  /// P(X <= t) under the empirical distribution.
  double At(double t) const;

  /// Number of samples.
  size_t size() const { return sorted_.size(); }

  /// The sorted sample.
  const std::vector<double>& sorted_samples() const { return sorted_; }

 private:
  std::vector<double> sorted_;
};

}  // namespace comfedsv

#endif  // COMFEDSV_METRICS_METRICS_H_
