#include "metrics/fairness.h"

#include <algorithm>
#include <cmath>
#include <limits>

namespace comfedsv {

Result<FairnessReport> ComputeFairness(const std::vector<double>& values) {
  if (values.empty()) {
    return Status::InvalidArgument(
        "fairness of an empty valuation is undefined");
  }
  for (double v : values) {
    if (!std::isfinite(v)) {
      return Status::NumericalError(
          "valuation vector contains non-finite entries");
    }
  }

  FairnessReport report;
  report.n = static_cast<int>(values.size());
  const double n = static_cast<double>(values.size());

  double sum = 0.0, sum_sq = 0.0;
  report.min_value = values[0];
  report.max_value = values[0];
  for (double v : values) {
    sum += v;
    sum_sq += v * v;
    report.min_value = std::min(report.min_value, v);
    report.max_value = std::max(report.max_value, v);
  }
  report.mean = sum / n;
  report.worst_case_gap = report.max_value - report.min_value;

  // Two-pass variance: numerically safer than sum_sq - n*mean^2 for
  // near-constant vectors, and exact zero for constant ones.
  double var = 0.0;
  for (double v : values) {
    const double d = v - report.mean;
    var += d * d;
  }
  var /= n;
  report.stddev = std::sqrt(var);

  // Jain: (sum v)^2 / (n * sum v^2). sum_sq == 0 means every entry is 0
  // — a degenerate but perfectly even allocation, index 1 by convention.
  report.jain_index =
      sum_sq == 0.0 ? 1.0 : (sum * sum) / (n * sum_sq);

  if (report.stddev == 0.0) {
    report.coefficient_of_variation = 0.0;
  } else if (report.mean == 0.0) {
    report.coefficient_of_variation =
        std::numeric_limits<double>::infinity();
  } else {
    report.coefficient_of_variation = report.stddev / std::abs(report.mean);
  }
  return report;
}

Result<FairnessReport> ComputeFairness(const Vector& values) {
  return ComputeFairness(
      std::vector<double>(values.data(), values.data() + values.size()));
}

}  // namespace comfedsv
