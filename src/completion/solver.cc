#include "completion/solver.h"

#include <algorithm>
#include <cmath>
#include <functional>
#include <vector>

#include "common/check.h"
#include "common/rng.h"
#include "linalg/cholesky.h"
#include "linalg/gram_kernels.h"
#include "linalg/vector.h"

namespace comfedsv {
namespace {

// Rows (or columns) per parallel task of a solver sweep. Each task reuses
// one scratch allocation across its block; fixed (never derived from the
// thread count) so block-local state stays schedule-independent.
constexpr int kSolveBlock = 64;

// Grid dimension B of the SGD stratified schedule: entries are bucketed
// into a B x B grid of (row-block, column-block) cells and each epoch
// sweeps the B diagonal strata; the cells of one stratum touch disjoint
// factor rows. Fixed so the update sequence never depends on threads.
constexpr int kSgdGrid = 8;

// Runs fn(begin, end) over fixed blocks of [0, n): on the pool when one
// is supplied, as a single inline range otherwise.
void RunBlocked(ThreadPool* pool, int n, int block,
                const std::function<void(int, int)>& fn) {
  if (n <= 0) return;
  if (pool == nullptr) {
    fn(0, n);
    return;
  }
  pool->ParallelForBlocked(n, block, fn);
}

bool VerifyFusedObjective(const CompletionConfig& cfg) {
#ifndef NDEBUG
  (void)cfg;
  return true;
#else
  return cfg.verify_fused_objective;
#endif
}

// Direct objective: one pass over the CSR arrays. The solvers call this
// once up front and once at termination (plus per iteration when the
// fused-objective cross-check is on); iteration-loop objectives come from
// sweep-maintained state instead.
double ObjectiveAndRmse(const ObservationSet& obs, const Matrix& w,
                        const Matrix& h, double lambda, double* rmse) {
  const int rank = static_cast<int>(w.cols());
  const std::vector<int>& offsets = obs.row_offsets();
  const std::vector<int>& cols = obs.csr_cols();
  const std::vector<double>& values = obs.csr_values();
  double sq_err = 0.0;
  for (int i = 0; i < obs.num_rows(); ++i) {
    const double* wr = w.RowPtr(i);
    for (int p = offsets[i]; p < offsets[i + 1]; ++p) {
      const double* hr = h.RowPtr(cols[p]);
      double pred = 0.0;
      for (int k = 0; k < rank; ++k) pred += wr[k] * hr[k];
      const double d = values[p] - pred;
      sq_err += d * d;
    }
  }
  if (rmse != nullptr) {
    *rmse = obs.empty() ? 0.0
                        : std::sqrt(sq_err / static_cast<double>(obs.size()));
  }
  const double wf = w.FrobeniusNorm();
  const double hf = h.FrobeniusNorm();
  return sq_err + lambda * (wf * wf + hf * hf);
}

// Fused objectives accumulate in a different (but fixed) order than the
// direct pass and, for CCD++, against an incrementally maintained
// residual — so the cross-check allows accumulated-rounding slack.
void CrossCheckObjective(const ObservationSet& obs, const Matrix& w,
                         const Matrix& h, double lambda, double fused) {
  const double direct = ObjectiveAndRmse(obs, w, h, lambda, nullptr);
  const double tol =
      1e-6 * std::max({1.0, std::fabs(direct), std::fabs(fused)});
  COMFEDSV_CHECK_MSG(std::fabs(direct - fused) <= tol,
                     "fused objective " << fused << " vs direct " << direct);
}

void RandomInit(Matrix* m, double scale, Rng* rng) {
  for (size_t i = 0; i < m->rows(); ++i) {
    double* row = m->RowPtr(i);
    for (size_t j = 0; j < m->cols(); ++j) {
      row[j] = rng->NextGaussian(0.0, scale);
    }
  }
}

// Per-task scratch of the ALS sweeps: the gather panel, the smoothing
// RHS terms, and (rank > kMaxRidgeRank only) the materialized normal
// equations — reused across every row of the task's block.
struct AlsScratch {
  explicit AlsScratch(int rank)
      : normal(static_cast<size_t>(rank) * rank),
        rhs(rank),
        extra(rank) {}
  GramRhsScratch gram;
  std::vector<double> normal;
  std::vector<double> rhs;
  std::vector<double> extra;
};

// One ALS half-sweep over the CSR (rows side) or CSC (columns side)
// view: re-solve every row of `target` against the fixed factor. For row
// i with observed entries (i, j, v):
//   (sum_j h_j h_j^T + lambda I [+ c_i mu I]) w_i
//       = sum_j v h_j [+ mu sum_{neighbours} w_nb],
// where the mu terms implement the optional temporal-smoothness coupling
// between adjacent round rows (rows side only).
//
// Row solves read only `fixed` (and, under mu, neighbour rows of the
// opposite red-black color) and write disjoint rows of `target`, so the
// sweep fans out over `pool` in fixed blocks and is bit-identical for
// any thread count. The normal equations accumulate through the fused
// gather/Gram kernel; on the columns side the gathered panel is reused
// to bank each column's residual sum of squares into `col_sq_err`
// (the fused objective).
void AlsHalfSweep(const ObservationSet& obs, bool solve_rows_side,
                  const Matrix& fixed, double lambda, double mu,
                  ThreadPool* pool, Matrix* target,
                  std::vector<double>* col_sq_err) {
  const int rank = static_cast<int>(fixed.cols());
  const int n = solve_rows_side ? obs.num_rows() : obs.num_cols();
  const std::vector<int>& offsets =
      solve_rows_side ? obs.row_offsets() : obs.col_offsets();
  const std::vector<int>& index =
      solve_rows_side ? obs.csr_cols() : obs.csc_rows();
  const std::vector<double>& values =
      solve_rows_side ? obs.csr_values() : obs.csc_values();
  const bool smooth = solve_rows_side && mu > 0.0 && n > 1;

  auto solve_one = [&](int i, AlsScratch* s) {
    const int begin = offsets[i];
    const int count = offsets[i + 1] - begin;
    if (count == 0 && !smooth) {
      // Stays at its init; contributes no observed entries.
      if (col_sq_err != nullptr) (*col_sq_err)[i] = 0.0;
      return;
    }
    int num_neighbours = 0;
    if (smooth) num_neighbours = (i == 0 || i == n - 1) ? 1 : 2;
    const double diag_init = lambda + mu * num_neighbours;
    const double* rhs_extra = nullptr;
    if (smooth) {
      double* extra = s->extra.data();
      for (int a = 0; a < rank; ++a) extra[a] = 0.0;
      if (i > 0) {
        const double* prev = target->RowPtr(i - 1);
        for (int a = 0; a < rank; ++a) extra[a] += mu * prev[a];
      }
      if (i < n - 1) {
        const double* next = target->RowPtr(i + 1);
        for (int a = 0; a < rank; ++a) extra[a] += mu * next[a];
      }
      rhs_extra = extra;
    }
    // The panel is only kept when this sweep banks the fused objective.
    double* panel = nullptr;
    if (col_sq_err != nullptr) {
      s->gram.panel.resize(static_cast<size_t>(count) * rank);
      panel = s->gram.panel.data();
    }
    double* out = target->RowPtr(i);
    if (rank <= kMaxRidgeRank) {
      COMFEDSV_CHECK_MSG(
          SolveRidgeRow(fixed, index.data() + begin, values.data() + begin,
                        count, diag_init, rhs_extra, panel, out),
          "ALS normal equations not positive definite");
    } else {
      double* normal = s->normal.data();
      double* rhs = s->rhs.data();
      AccumulateGramRhs(fixed, index.data() + begin, values.data() + begin,
                        count, diag_init, &s->gram, normal, rhs);
      if (rhs_extra != nullptr) {
        for (int a = 0; a < rank; ++a) rhs[a] += rhs_extra[a];
      }
      COMFEDSV_CHECK_MSG(SolveSpdInPlace(rank, normal, rhs),
                         "ALS normal equations not positive definite");
      for (int a = 0; a < rank; ++a) out[a] = rhs[a];
      // AccumulateGramRhs always packs; reuse its panel for the fused
      // objective on this off-hot-path rank.
      panel = s->gram.panel.data();
    }
    if (col_sq_err != nullptr) {
      (*col_sq_err)[i] = PanelResidualSq(panel, values.data() + begin,
                                         count, rank, out);
    }
  };

  // map(t) enumerates the pass's row indices; under temporal smoothing
  // the sweep is split into a red (even) and a black (odd) pass. A row's
  // neighbours i +- 1 are always the opposite color, so each pass reads
  // only rows the other pass wrote — Gauss–Seidel coupling with a
  // schedule-independent result.
  auto run_pass = [&](int count, const std::function<int(int)>& map) {
    RunBlocked(pool, count, kSolveBlock, [&](int t_begin, int t_end) {
      AlsScratch scratch(rank);
      for (int t = t_begin; t < t_end; ++t) solve_one(map(t), &scratch);
    });
  };
  if (smooth) {
    run_pass((n + 1) / 2, [](int t) { return 2 * t; });
    run_pass(n / 2, [](int t) { return 2 * t + 1; });
  } else {
    run_pass(n, [](int t) { return t; });
  }
}

// Copies the leading `k` columns of `src` into `dst` (same row count).
void CopyLeadingColumns(const Matrix& src, int k, Matrix* dst) {
  for (size_t i = 0; i < src.rows(); ++i) {
    for (int c = 0; c < k; ++c) (*dst)(i, c) = src(i, c);
  }
}

Result<CompletionResult> SolveAls(const ObservationSet& obs,
                                  const CompletionConfig& cfg, Matrix w,
                                  Matrix h, bool staged_growth,
                                  ThreadPool* pool) {
  // Staged rank growth: fit one latent dimension at a time, warm-starting
  // each stage from the previous fit. Plain joint ALS from a random init
  // is prone to poor basins when observations are sparse and unevenly
  // distributed (the utility matrix's single Everyone-Being-Heard row);
  // growing the rank mimics the spectral ordering (dominant directions
  // first) while keeping ALS's exact row solves. Warm-started solves
  // (CompleteMatrixWarm) skip the pre-phase: their factors already
  // select a basin.
  const int warm_iters = std::max(5, cfg.max_iters / (2 * cfg.rank));
  for (int k = staged_growth ? 1 : cfg.rank; k < cfg.rank; ++k) {
    Matrix wk(w.rows(), k);
    Matrix hk(h.rows(), k);
    CopyLeadingColumns(w, k, &wk);
    CopyLeadingColumns(h, k, &hk);
    for (int it = 0; it < warm_iters; ++it) {
      AlsHalfSweep(obs, /*solve_rows_side=*/true, hk, cfg.lambda,
                   cfg.temporal_smoothing, pool, &wk, nullptr);
      AlsHalfSweep(obs, /*solve_rows_side=*/false, wk, cfg.lambda, 0.0,
                   pool, &hk, nullptr);
    }
    CopyLeadingColumns(wk, k, &w);
    CopyLeadingColumns(hk, k, &h);
  }

  const bool verify = VerifyFusedObjective(cfg);
  // Fused objective: the H-side sweep banks each column's residual sum
  // of squares (every observed entry belongs to exactly one column), so
  // no solver iteration re-walks the observations. The per-column array
  // is reduced in ascending column order — deterministic for any thread
  // count.
  std::vector<double> col_sq_err(obs.num_cols(), 0.0);
  double prev_obj = ObjectiveAndRmse(obs, w, h, cfg.lambda, nullptr);
  int iters = 0;
  for (; iters < cfg.max_iters; ++iters) {
    AlsHalfSweep(obs, /*solve_rows_side=*/true, h, cfg.lambda,
                 cfg.temporal_smoothing, pool, &w, nullptr);
    AlsHalfSweep(obs, /*solve_rows_side=*/false, w, cfg.lambda, 0.0, pool,
                 &h, &col_sq_err);
    double sq_err = 0.0;
    for (int j = 0; j < obs.num_cols(); ++j) sq_err += col_sq_err[j];
    const double wf = w.FrobeniusNorm();
    const double hf = h.FrobeniusNorm();
    const double obj = sq_err + cfg.lambda * (wf * wf + hf * hf);
    if (verify) CrossCheckObjective(obs, w, h, cfg.lambda, obj);
    if (prev_obj - obj <= cfg.tolerance * std::max(1.0, prev_obj)) {
      ++iters;
      break;
    }
    prev_obj = obj;
  }
  CompletionResult out;
  out.w = std::move(w);
  out.h = std::move(h);
  out.iterations = iters;
  out.objective =
      ObjectiveAndRmse(obs, out.w, out.h, cfg.lambda, &out.observed_rmse);
  return out;
}

// CCD++ (Yu et al. 2014, the LIBPMF algorithm): optimize one latent
// dimension at a time against an explicitly maintained residual, cycling
// coordinate updates on w_{:,k} and h_{:,k}. The residual lives in CSR
// order; row phases sweep it via the CSR arrays and column phases via
// the csc_to_csr position map. Each phase writes disjoint slots (or
// disjoint residual ranges) and phases are separated by pool barriers,
// so the solve is bit-identical for any thread count.
Result<CompletionResult> SolveCcd(const ObservationSet& obs,
                                  const CompletionConfig& cfg, Matrix w,
                                  Matrix h, ThreadPool* pool) {
  const int rank = cfg.rank;
  const int num_rows = obs.num_rows();
  const int num_cols = obs.num_cols();
  const std::vector<int>& row_off = obs.row_offsets();
  const std::vector<int>& csr_cols = obs.csr_cols();
  const std::vector<double>& csr_values = obs.csr_values();
  const std::vector<int>& col_off = obs.col_offsets();
  const std::vector<int>& csc_rows = obs.csc_rows();
  const std::vector<int>& csc_to_csr = obs.csc_to_csr();

  // residual[p] = value_p - w_row . h_col, maintained across updates.
  std::vector<double> residual(obs.size());
  RunBlocked(pool, num_rows, kSolveBlock, [&](int i_begin, int i_end) {
    for (int i = i_begin; i < i_end; ++i) {
      const double* wr = w.RowPtr(i);
      for (int p = row_off[i]; p < row_off[i + 1]; ++p) {
        const double* hr = h.RowPtr(csr_cols[p]);
        double pred = 0.0;
        for (int k = 0; k < rank; ++k) pred += wr[k] * hr[k];
        residual[p] = csr_values[p] - pred;
      }
    }
  });

  const bool verify = VerifyFusedObjective(cfg);
  // Fused objective: the squared error is the squared norm of the
  // maintained residual — summed in CSR order, no extra observation
  // pass.
  auto fused_objective = [&]() {
    double sq_err = 0.0;
    for (double r : residual) sq_err += r * r;
    const double wf = w.FrobeniusNorm();
    const double hf = h.FrobeniusNorm();
    return sq_err + cfg.lambda * (wf * wf + hf * hf);
  };

  double prev_obj = fused_objective();
  int iters = 0;
  for (; iters < cfg.max_iters; ++iters) {
    for (int k = 0; k < rank; ++k) {
      // Fold dimension k back into the residual: r_p += w_ik * h_jk.
      RunBlocked(pool, num_rows, kSolveBlock, [&](int i_begin, int i_end) {
        for (int i = i_begin; i < i_end; ++i) {
          const double wik = w(i, k);
          for (int p = row_off[i]; p < row_off[i + 1]; ++p) {
            residual[p] += wik * h(csr_cols[p], k);
          }
        }
      });
      // A few inner alternations of the rank-1 fit (CCD++ uses a small
      // constant; 2 suffices in practice). The residual is fixed during
      // the alternations, so the row phase reads h(:,k) and writes only
      // w(:,k) rows, and vice versa.
      for (int inner = 0; inner < 2; ++inner) {
        RunBlocked(pool, num_rows, kSolveBlock, [&](int i_begin, int i_end) {
          for (int i = i_begin; i < i_end; ++i) {
            const int begin = row_off[i];
            const int end = row_off[i + 1];
            if (begin == end) continue;
            double num = 0.0, den = cfg.lambda;
            for (int p = begin; p < end; ++p) {
              const double hv = h(csr_cols[p], k);
              num += residual[p] * hv;
              den += hv * hv;
            }
            w(i, k) = num / den;
          }
        });
        RunBlocked(pool, num_cols, kSolveBlock, [&](int j_begin, int j_end) {
          for (int j = j_begin; j < j_end; ++j) {
            const int begin = col_off[j];
            const int end = col_off[j + 1];
            if (begin == end) continue;
            double num = 0.0, den = cfg.lambda;
            for (int q = begin; q < end; ++q) {
              const double wv = w(csc_rows[q], k);
              num += residual[csc_to_csr[q]] * wv;
              den += wv * wv;
            }
            h(j, k) = num / den;
          }
        });
      }
      // Subtract the refit dimension back out of the residual.
      RunBlocked(pool, num_rows, kSolveBlock, [&](int i_begin, int i_end) {
        for (int i = i_begin; i < i_end; ++i) {
          const double wik = w(i, k);
          for (int p = row_off[i]; p < row_off[i + 1]; ++p) {
            residual[p] -= wik * h(csr_cols[p], k);
          }
        }
      });
    }
    const double obj = fused_objective();
    if (verify) CrossCheckObjective(obs, w, h, cfg.lambda, obj);
    if (prev_obj - obj <= cfg.tolerance * std::max(1.0, prev_obj)) {
      ++iters;
      break;
    }
    prev_obj = obj;
  }
  CompletionResult out;
  out.w = std::move(w);
  out.h = std::move(h);
  out.iterations = iters;
  out.objective =
      ObjectiveAndRmse(obs, out.w, out.h, cfg.lambda, &out.observed_rmse);
  return out;
}

Result<CompletionResult> SolveSgd(const ObservationSet& obs,
                                  const CompletionConfig& cfg, Matrix w,
                                  Matrix h, ThreadPool* pool) {
  const int rank = cfg.rank;
  const int num_rows = obs.num_rows();
  const int num_cols = obs.num_cols();
  const std::vector<int>& row_off = obs.row_offsets();
  const std::vector<int>& csr_cols = obs.csr_cols();
  const std::vector<double>& csr_values = obs.csr_values();

  // DSGD-style stratified schedule: bucket the entries into a B x B grid
  // of (row-block, column-block) cells. Epochs sweep the B diagonal
  // strata {(b, (b + s) mod B)}; within a stratum no two cells share a
  // row or column block, so their updates touch disjoint rows of W and H
  // and run concurrently without races — and, because the grid, the
  // stratum order, and each cell's shuffled visit order are all fixed by
  // the config seed, the update sequence per parameter is identical for
  // any thread count.
  const int grid = std::max(1, std::min({kSgdGrid, num_rows, num_cols}));
  auto row_block = [&](int i) {
    return static_cast<int>(static_cast<int64_t>(i) * grid / num_rows);
  };
  auto col_block = [&](int j) {
    return static_cast<int>(static_cast<int64_t>(j) * grid / num_cols);
  };
  std::vector<std::vector<int>> cells(static_cast<size_t>(grid) * grid);
  std::vector<int> pos_row(obs.size());
  for (int i = 0; i < num_rows; ++i) {
    for (int p = row_off[i]; p < row_off[i + 1]; ++p) {
      pos_row[p] = i;
      cells[row_block(i) * grid + col_block(csr_cols[p])].push_back(p);
    }
  }
  // Per-entry regularization scaled by observation counts so the epoch-
  // level objective matches the global lambda ||.||_F^2.
  std::vector<double> reg_w_of_row(num_rows, 0.0);
  for (int i = 0; i < num_rows; ++i) {
    const int nnz = row_off[i + 1] - row_off[i];
    if (nnz > 0) reg_w_of_row[i] = cfg.lambda / static_cast<double>(nnz);
  }
  std::vector<double> reg_h_of_col(num_cols, 0.0);
  for (int j = 0; j < num_cols; ++j) {
    const int nnz = obs.ColNnz(j);
    if (nnz > 0) reg_h_of_col[j] = cfg.lambda / static_cast<double>(nnz);
  }

  Rng rng(cfg.seed ^ 0x53474400ULL);
  double prev_obj = ObjectiveAndRmse(obs, w, h, cfg.lambda, nullptr);
  int iters = 0;
  for (; iters < cfg.max_iters; ++iters) {
    const double lr = cfg.sgd_learning_rate /
                      (1.0 + 0.01 * static_cast<double>(iters));
    const Rng epoch_rng = rng.Split(static_cast<uint64_t>(iters));
    for (int s = 0; s < grid; ++s) {
      auto update_cell = [&](int b) {
        const int cb = (b + s) % grid;
        // Exactly one task owns a cell per epoch (cb is a bijection of
        // b within the stratum), so its visit order can be reshuffled in
        // place — no per-epoch copy. The shuffle stream is derived from
        // (seed, epoch, cell) only, never from scheduling, so the
        // resulting order sequence is thread-count invariant.
        std::vector<int>& order = cells[b * grid + cb];
        if (order.empty()) return;
        Rng cell_rng = epoch_rng.Split(static_cast<uint64_t>(b * grid + cb));
        cell_rng.Shuffle(&order);
        for (int p : order) {
          const int i = pos_row[p];
          const int j = csr_cols[p];
          double* wr = w.RowPtr(i);
          double* hr = h.RowPtr(j);
          double pred = 0.0;
          for (int k = 0; k < rank; ++k) pred += wr[k] * hr[k];
          const double err = csr_values[p] - pred;
          const double reg_w = reg_w_of_row[i];
          const double reg_h = reg_h_of_col[j];
          for (int k = 0; k < rank; ++k) {
            const double wk = wr[k];
            wr[k] += lr * (err * hr[k] - reg_w * wk);
            hr[k] += lr * (err * wk - reg_h * hr[k]);
          }
        }
      };
      if (pool == nullptr) {
        for (int b = 0; b < grid; ++b) update_cell(b);
      } else {
        pool->ParallelFor(grid, update_cell);
      }
    }
    const double obj = ObjectiveAndRmse(obs, w, h, cfg.lambda, nullptr);
    if (std::fabs(prev_obj - obj) <=
        cfg.tolerance * std::max(1.0, prev_obj)) {
      ++iters;
      break;
    }
    prev_obj = obj;
  }
  CompletionResult out;
  out.w = std::move(w);
  out.h = std::move(h);
  out.iterations = iters;
  out.objective =
      ObjectiveAndRmse(obs, out.w, out.h, cfg.lambda, &out.observed_rmse);
  return out;
}

}  // namespace

std::string CompletionSolverName(CompletionSolver solver) {
  switch (solver) {
    case CompletionSolver::kAls:
      return "als";
    case CompletionSolver::kCcd:
      return "ccd++";
    case CompletionSolver::kSgd:
      return "sgd";
  }
  return "unknown";
}

double CompletionResult::Predict(int row, int col) const {
  COMFEDSV_CHECK_LT(static_cast<size_t>(row), w.rows());
  COMFEDSV_CHECK_LT(static_cast<size_t>(col), h.rows());
  const double* wr = w.RowPtr(row);
  const double* hr = h.RowPtr(col);
  double acc = 0.0;
  for (size_t k = 0; k < w.cols(); ++k) acc += wr[k] * hr[k];
  return acc;
}

double PredictedUtility(const FactorPair& factors, int round, int col) {
  if (factors.w.rows() == 0 || factors.h.rows() == 0) return 0.0;
  COMFEDSV_CHECK_GE(round, 0);
  COMFEDSV_CHECK_GE(col, 0);
  COMFEDSV_CHECK_LT(static_cast<size_t>(col), factors.h.rows());
  COMFEDSV_CHECK_EQ(factors.w.cols(), factors.h.cols());
  // Rounds beyond the fitted horizon clamp to the last fitted row
  // (temporal smoothness, Proposition 1).
  const size_t row = std::min(static_cast<size_t>(round),
                              factors.w.rows() - 1);
  const double* wr = factors.w.RowPtr(row);
  const double* hr = factors.h.RowPtr(static_cast<size_t>(col));
  double acc = 0.0;
  for (size_t k = 0; k < factors.w.cols(); ++k) acc += wr[k] * hr[k];
  return acc;
}

namespace {

// Shared entry point of the cold and warm solves: `warm` (optional)
// seeds the leading factor rows and disables ALS staged rank growth.
Result<CompletionResult> CompleteMatrixImpl(
    const ObservationSet& observations, const CompletionConfig& config,
    const FactorPair* warm, ExecutionContext* ctx) {
  if (config.rank <= 0) {
    return Status::InvalidArgument("completion rank must be positive");
  }
  if (config.lambda < 0.0) {
    return Status::InvalidArgument("lambda must be non-negative");
  }
  if (!observations.finalized()) {
    return Status::FailedPrecondition(
        "observations must be finalized (ObservationSet::Finalize()) "
        "before solving");
  }
  if (observations.empty()) {
    return Status::InvalidArgument("no observed entries to complete from");
  }
  if ((config.solver == CompletionSolver::kAls ||
       config.solver == CompletionSolver::kCcd) &&
      config.lambda == 0.0) {
    return Status::InvalidArgument(
        "ALS/CCD require lambda > 0 for well-posed row solves");
  }
  if (warm != nullptr) {
    if (warm->w.cols() != static_cast<size_t>(config.rank) ||
        warm->h.cols() != static_cast<size_t>(config.rank)) {
      return Status::InvalidArgument(
          "warm-start factor rank does not match config.rank");
    }
    if (warm->w.rows() > static_cast<size_t>(observations.num_rows()) ||
        warm->h.rows() > static_cast<size_t>(observations.num_cols())) {
      return Status::InvalidArgument(
          "warm-start factors have more rows than the problem");
    }
  }

  Rng rng(config.seed ^ 0x4D435000ULL);
  Matrix w(observations.num_rows(), config.rank);
  Matrix h(observations.num_cols(), config.rank);
  // Initialization scale. Small-relative-to-data inits let the
  // alternating methods grow the dominant factor directions first
  // (a spectral-like dynamic) and avoid poor local basins; a scale far
  // above the data is equally harmful. Auto mode uses 10% of the scale
  // that would reproduce the mean observed magnitude.
  double init_scale = config.init_scale;
  if (init_scale <= 0.0) {
    double mean_abs = 0.0;
    for (double v : observations.csr_values()) mean_abs += std::fabs(v);
    mean_abs /= static_cast<double>(observations.size());
    init_scale =
        (mean_abs > 0.0) ? 0.1 * std::sqrt(mean_abs / config.rank) : 0.1;
  }
  RandomInit(&w, init_scale, &rng);
  RandomInit(&h, init_scale, &rng);
  if (warm != nullptr) {
    // Rows fitted in the previous (prefix) solve carry over; rows the
    // prefix never saw keep the seeded random init drawn above.
    for (size_t i = 0; i < warm->w.rows(); ++i) {
      std::copy(warm->w.RowPtr(i), warm->w.RowPtr(i) + config.rank,
                w.RowPtr(i));
    }
    for (size_t j = 0; j < warm->h.rows(); ++j) {
      std::copy(warm->h.RowPtr(j), warm->h.RowPtr(j) + config.rank,
                h.RowPtr(j));
    }
  }

  ThreadPool* pool = ctx != nullptr ? &ctx->pool() : nullptr;
  switch (config.solver) {
    case CompletionSolver::kAls:
      return SolveAls(observations, config, std::move(w), std::move(h),
                      /*staged_growth=*/warm == nullptr, pool);
    case CompletionSolver::kCcd:
      return SolveCcd(observations, config, std::move(w), std::move(h),
                      pool);
    case CompletionSolver::kSgd:
      return SolveSgd(observations, config, std::move(w), std::move(h),
                      pool);
  }
  return Status::InvalidArgument("unknown completion solver");
}

}  // namespace

Result<CompletionResult> CompleteMatrix(const ObservationSet& observations,
                                        const CompletionConfig& config,
                                        ExecutionContext* ctx) {
  return CompleteMatrixImpl(observations, config, nullptr, ctx);
}

Result<CompletionResult> CompleteMatrixWarm(
    const ObservationSet& observations, const CompletionConfig& config,
    const FactorPair& warm, ExecutionContext* ctx) {
  return CompleteMatrixImpl(observations, config, &warm, ctx);
}

}  // namespace comfedsv
