#include "completion/solver.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"
#include "common/rng.h"
#include "linalg/cholesky.h"
#include "linalg/vector.h"

namespace comfedsv {
namespace {

double ObjectiveAndRmse(const ObservationSet& obs, const Matrix& w,
                        const Matrix& h, double lambda, double* rmse) {
  const int rank = static_cast<int>(w.cols());
  double sq_err = 0.0;
  for (const Observation& e : obs.entries()) {
    const double* wr = w.RowPtr(e.row);
    const double* hr = h.RowPtr(e.col);
    double pred = 0.0;
    for (int k = 0; k < rank; ++k) pred += wr[k] * hr[k];
    const double d = e.value - pred;
    sq_err += d * d;
  }
  if (rmse != nullptr) {
    *rmse = obs.empty() ? 0.0
                        : std::sqrt(sq_err / static_cast<double>(obs.size()));
  }
  const double wf = w.FrobeniusNorm();
  const double hf = h.FrobeniusNorm();
  return sq_err + lambda * (wf * wf + hf * hf);
}

void RandomInit(Matrix* m, double scale, Rng* rng) {
  for (size_t i = 0; i < m->rows(); ++i) {
    double* row = m->RowPtr(i);
    for (size_t j = 0; j < m->cols(); ++j) {
      row[j] = rng->NextGaussian(0.0, scale);
    }
  }
}

// One ALS half-sweep: re-solve every row of `target` (factor for the
// `solve_rows_of_first ? rows : cols` side) against the fixed `fixed`
// factor. For row i with observed entries (i, j, v):
//   (sum_j h_j h_j^T + lambda I [+ c_i mu I]) w_i
//       = sum_j v h_j [+ mu sum_{neighbours} w_nb],
// where the mu terms implement the optional temporal-smoothness coupling
// between adjacent round rows (rows side only, Gauss–Seidel style).
//
// Without the mu coupling, row solves are mutually independent and run on
// `pool` when given — each row reads only `fixed` and writes only its own
// row of `target`, so the sweep is bit-identical for any thread count.
// The Gauss–Seidel smoothed sweep reads freshly updated neighbour rows
// and must stay sequential.
void AlsHalfSweep(const ObservationSet& obs, bool solve_rows_side,
                  const Matrix& fixed, double lambda, double mu,
                  ThreadPool* pool, Matrix* target) {
  const int rank = static_cast<int>(fixed.cols());
  const int n = solve_rows_side ? obs.num_rows() : obs.num_cols();
  const bool smooth = solve_rows_side && mu > 0.0 && n > 1;
  auto solve_row = [&](int i) {
    const std::vector<int>& idx =
        solve_rows_side ? obs.RowEntries(i) : obs.ColEntries(i);
    if (idx.empty() && !smooth) return;  // stays at its init
    // Build the rank x rank normal equations.
    Matrix normal(rank, rank);
    Vector rhs(rank);
    int num_neighbours = 0;
    if (smooth) num_neighbours = (i == 0 || i == n - 1) ? 1 : 2;
    for (int a = 0; a < rank; ++a) {
      normal(a, a) = lambda + mu * num_neighbours;
    }
    for (int e : idx) {
      const Observation& o = obs.entries()[e];
      const int other = solve_rows_side ? o.col : o.row;
      const double* f = fixed.RowPtr(other);
      for (int a = 0; a < rank; ++a) {
        rhs[a] += o.value * f[a];
        for (int b = a; b < rank; ++b) normal(a, b) += f[a] * f[b];
      }
    }
    if (smooth) {
      if (i > 0) {
        const double* prev = target->RowPtr(i - 1);
        for (int a = 0; a < rank; ++a) rhs[a] += mu * prev[a];
      }
      if (i < n - 1) {
        const double* next = target->RowPtr(i + 1);
        for (int a = 0; a < rank; ++a) rhs[a] += mu * next[a];
      }
    }
    for (int a = 0; a < rank; ++a) {
      for (int b = 0; b < a; ++b) normal(a, b) = normal(b, a);
    }
    Result<Vector> solution = SolveSpd(normal, rhs);
    COMFEDSV_CHECK_OK(solution.status());
    target->SetRow(i, solution.value());
  };
  if (smooth || pool == nullptr) {
    for (int i = 0; i < n; ++i) solve_row(i);
  } else {
    obs.EnsureIndex();  // the lazy adjacency build is not thread-safe
    pool->ParallelFor(n, solve_row);
  }
}

// Copies the leading `k` columns of `src` into `dst` (same row count).
void CopyLeadingColumns(const Matrix& src, int k, Matrix* dst) {
  for (size_t i = 0; i < src.rows(); ++i) {
    for (int c = 0; c < k; ++c) (*dst)(i, c) = src(i, c);
  }
}

Result<CompletionResult> SolveAls(const ObservationSet& obs,
                                  const CompletionConfig& cfg, Matrix w,
                                  Matrix h, ThreadPool* pool) {
  // Staged rank growth: fit one latent dimension at a time, warm-starting
  // each stage from the previous fit. Plain joint ALS from a random init
  // is prone to poor basins when observations are sparse and unevenly
  // distributed (the utility matrix's single Everyone-Being-Heard row);
  // growing the rank mimics the spectral ordering (dominant directions
  // first) while keeping ALS's exact row solves.
  const int warm_iters = std::max(5, cfg.max_iters / (2 * cfg.rank));
  Rng stage_rng(cfg.seed ^ 0x57A6EDULL);
  for (int k = 1; k < cfg.rank; ++k) {
    Matrix wk(w.rows(), k);
    Matrix hk(h.rows(), k);
    CopyLeadingColumns(w, k, &wk);
    CopyLeadingColumns(h, k, &hk);
    for (int it = 0; it < warm_iters; ++it) {
      AlsHalfSweep(obs, /*solve_rows_side=*/true, hk, cfg.lambda,
                   cfg.temporal_smoothing, pool, &wk);
      AlsHalfSweep(obs, /*solve_rows_side=*/false, wk, cfg.lambda, 0.0,
                   pool, &hk);
    }
    CopyLeadingColumns(wk, k, &w);
    CopyLeadingColumns(hk, k, &h);
  }

  double prev_obj = ObjectiveAndRmse(obs, w, h, cfg.lambda, nullptr);
  int iters = 0;
  for (; iters < cfg.max_iters; ++iters) {
    AlsHalfSweep(obs, /*solve_rows_side=*/true, h, cfg.lambda,
                 cfg.temporal_smoothing, pool, &w);
    AlsHalfSweep(obs, /*solve_rows_side=*/false, w, cfg.lambda, 0.0, pool,
                 &h);
    const double obj = ObjectiveAndRmse(obs, w, h, cfg.lambda, nullptr);
    if (prev_obj - obj <= cfg.tolerance * std::max(1.0, prev_obj)) {
      ++iters;
      break;
    }
    prev_obj = obj;
  }
  CompletionResult out;
  out.w = std::move(w);
  out.h = std::move(h);
  out.iterations = iters;
  out.objective =
      ObjectiveAndRmse(obs, out.w, out.h, cfg.lambda, &out.observed_rmse);
  return out;
}

// CCD++ (Yu et al. 2014, the LIBPMF algorithm): optimize one latent
// dimension at a time against an explicitly maintained residual, cycling
// coordinate updates on w_{:,k} and h_{:,k}.
Result<CompletionResult> SolveCcd(const ObservationSet& obs,
                                  const CompletionConfig& cfg, Matrix w,
                                  Matrix h) {
  const int rank = cfg.rank;
  // residual_e = value_e - w_row . h_col, maintained across updates.
  std::vector<double> residual(obs.size());
  for (size_t e = 0; e < obs.size(); ++e) {
    const Observation& o = obs.entries()[e];
    const double* wr = w.RowPtr(o.row);
    const double* hr = h.RowPtr(o.col);
    double pred = 0.0;
    for (int k = 0; k < rank; ++k) pred += wr[k] * hr[k];
    residual[e] = o.value - pred;
  }

  double prev_obj = ObjectiveAndRmse(obs, w, h, cfg.lambda, nullptr);
  int iters = 0;
  for (; iters < cfg.max_iters; ++iters) {
    for (int k = 0; k < rank; ++k) {
      // Fold dimension k back into the residual: r_e += w_ik * h_jk.
      for (size_t e = 0; e < obs.size(); ++e) {
        const Observation& o = obs.entries()[e];
        residual[e] += w(o.row, k) * h(o.col, k);
      }
      // A few inner alternations of the rank-1 fit (CCD++ uses small
      // constant; 2 suffices in practice).
      for (int inner = 0; inner < 2; ++inner) {
        for (int i = 0; i < obs.num_rows(); ++i) {
          double num = 0.0, den = cfg.lambda;
          for (int e : obs.RowEntries(i)) {
            const Observation& o = obs.entries()[e];
            const double hv = h(o.col, k);
            num += residual[e] * hv;
            den += hv * hv;
          }
          if (!obs.RowEntries(i).empty()) w(i, k) = num / den;
        }
        for (int j = 0; j < obs.num_cols(); ++j) {
          double num = 0.0, den = cfg.lambda;
          for (int e : obs.ColEntries(j)) {
            const Observation& o = obs.entries()[e];
            const double wv = w(o.row, k);
            num += residual[e] * wv;
            den += wv * wv;
          }
          if (!obs.ColEntries(j).empty()) h(j, k) = num / den;
        }
      }
      // Subtract the refit dimension back out of the residual.
      for (size_t e = 0; e < obs.size(); ++e) {
        const Observation& o = obs.entries()[e];
        residual[e] -= w(o.row, k) * h(o.col, k);
      }
    }
    const double obj = ObjectiveAndRmse(obs, w, h, cfg.lambda, nullptr);
    if (prev_obj - obj <= cfg.tolerance * std::max(1.0, prev_obj)) {
      ++iters;
      break;
    }
    prev_obj = obj;
  }
  CompletionResult out;
  out.w = std::move(w);
  out.h = std::move(h);
  out.iterations = iters;
  out.objective =
      ObjectiveAndRmse(obs, out.w, out.h, cfg.lambda, &out.observed_rmse);
  return out;
}

Result<CompletionResult> SolveSgd(const ObservationSet& obs,
                                  const CompletionConfig& cfg, Matrix w,
                                  Matrix h) {
  const int rank = cfg.rank;
  Rng rng(cfg.seed ^ 0x53474400ULL);
  std::vector<int> order(obs.size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = static_cast<int>(i);

  // Per-entry regularization scaled by observation counts so the epoch-
  // level objective matches the global lambda ||.||_F^2.
  double prev_obj = ObjectiveAndRmse(obs, w, h, cfg.lambda, nullptr);
  int iters = 0;
  for (; iters < cfg.max_iters; ++iters) {
    rng.Shuffle(&order);
    const double lr = cfg.sgd_learning_rate /
                      (1.0 + 0.01 * static_cast<double>(iters));
    for (int e : order) {
      const Observation& o = obs.entries()[e];
      double* wr = w.RowPtr(o.row);
      double* hr = h.RowPtr(o.col);
      double pred = 0.0;
      for (int k = 0; k < rank; ++k) pred += wr[k] * hr[k];
      const double err = o.value - pred;
      const double reg_w =
          cfg.lambda / static_cast<double>(obs.RowEntries(o.row).size());
      const double reg_h =
          cfg.lambda / static_cast<double>(obs.ColEntries(o.col).size());
      for (int k = 0; k < rank; ++k) {
        const double wk = wr[k];
        wr[k] += lr * (err * hr[k] - reg_w * wk);
        hr[k] += lr * (err * wk - reg_h * hr[k]);
      }
    }
    const double obj = ObjectiveAndRmse(obs, w, h, cfg.lambda, nullptr);
    if (std::fabs(prev_obj - obj) <=
        cfg.tolerance * std::max(1.0, prev_obj)) {
      ++iters;
      break;
    }
    prev_obj = obj;
  }
  CompletionResult out;
  out.w = std::move(w);
  out.h = std::move(h);
  out.iterations = iters;
  out.objective =
      ObjectiveAndRmse(obs, out.w, out.h, cfg.lambda, &out.observed_rmse);
  return out;
}

}  // namespace

std::string CompletionSolverName(CompletionSolver solver) {
  switch (solver) {
    case CompletionSolver::kAls:
      return "als";
    case CompletionSolver::kCcd:
      return "ccd++";
    case CompletionSolver::kSgd:
      return "sgd";
  }
  return "unknown";
}

double CompletionResult::Predict(int row, int col) const {
  COMFEDSV_CHECK_LT(static_cast<size_t>(row), w.rows());
  COMFEDSV_CHECK_LT(static_cast<size_t>(col), h.rows());
  const double* wr = w.RowPtr(row);
  const double* hr = h.RowPtr(col);
  double acc = 0.0;
  for (size_t k = 0; k < w.cols(); ++k) acc += wr[k] * hr[k];
  return acc;
}

Result<CompletionResult> CompleteMatrix(const ObservationSet& observations,
                                        const CompletionConfig& config,
                                        ExecutionContext* ctx) {
  if (config.rank <= 0) {
    return Status::InvalidArgument("completion rank must be positive");
  }
  if (config.lambda < 0.0) {
    return Status::InvalidArgument("lambda must be non-negative");
  }
  if (observations.empty()) {
    return Status::InvalidArgument("no observed entries to complete from");
  }
  if ((config.solver == CompletionSolver::kAls ||
       config.solver == CompletionSolver::kCcd) &&
      config.lambda == 0.0) {
    return Status::InvalidArgument(
        "ALS/CCD require lambda > 0 for well-posed row solves");
  }

  Rng rng(config.seed ^ 0x4D435000ULL);
  Matrix w(observations.num_rows(), config.rank);
  Matrix h(observations.num_cols(), config.rank);
  // Initialization scale. Small-relative-to-data inits let the
  // alternating methods grow the dominant factor directions first
  // (a spectral-like dynamic) and avoid poor local basins; a scale far
  // above the data is equally harmful. Auto mode uses 10% of the scale
  // that would reproduce the mean observed magnitude.
  double init_scale = config.init_scale;
  if (init_scale <= 0.0) {
    double mean_abs = 0.0;
    for (const Observation& e : observations.entries()) {
      mean_abs += std::fabs(e.value);
    }
    mean_abs /= static_cast<double>(observations.size());
    init_scale =
        (mean_abs > 0.0) ? 0.1 * std::sqrt(mean_abs / config.rank) : 0.1;
  }
  RandomInit(&w, init_scale, &rng);
  RandomInit(&h, init_scale, &rng);

  switch (config.solver) {
    case CompletionSolver::kAls:
      return SolveAls(observations, config, std::move(w), std::move(h),
                      ctx != nullptr ? &ctx->pool() : nullptr);
    case CompletionSolver::kCcd:
      return SolveCcd(observations, config, std::move(w), std::move(h));
    case CompletionSolver::kSgd:
      return SolveSgd(observations, config, std::move(w), std::move(h));
  }
  return Status::InvalidArgument("unknown completion solver");
}

}  // namespace comfedsv
