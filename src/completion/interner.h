// CoalitionInterner: assigns stable, dense column ids to coalitions so the
// (possibly sampled) utility matrix can be stored as a standard sparse
// rows x cols problem. Both the full Def. 4 path (columns = all 2^N
// subsets) and Algorithm 1 (columns = permutation prefixes, which the
// interner automatically dedupes) go through this mapping.
#ifndef COMFEDSV_COMPLETION_INTERNER_H_
#define COMFEDSV_COMPLETION_INTERNER_H_

#include <unordered_map>
#include <vector>

#include "shapley/coalition.h"

namespace comfedsv {

/// Bijection between interned coalitions and dense column ids.
class CoalitionInterner {
 public:
  CoalitionInterner() = default;

  /// Returns the column id for `c`, interning it if new.
  int Intern(const Coalition& c);

  /// Column id of `c`, or -1 if never interned.
  int Find(const Coalition& c) const;

  /// The coalition with column id `col`.
  const Coalition& Get(int col) const;

  int size() const { return static_cast<int>(coalitions_.size()); }

 private:
  std::unordered_map<Coalition, int, CoalitionHash> ids_;
  std::vector<Coalition> coalitions_;
};

}  // namespace comfedsv

#endif  // COMFEDSV_COMPLETION_INTERNER_H_
