// Sparse observation set for matrix completion: the observed entries
// (t, S) -> U_t(S) of the utility matrix, stored as raw triplets during
// recording and compiled into immutable compressed-sparse views (CSR and
// CSC) by Finalize() for the solver sweeps.
#ifndef COMFEDSV_COMPLETION_OBSERVATIONS_H_
#define COMFEDSV_COMPLETION_OBSERVATIONS_H_

#include <cstddef>
#include <vector>

#include "common/check.h"

namespace comfedsv {

/// One observed matrix entry.
struct Observation {
  int row = 0;
  int col = 0;
  double value = 0.0;
};

/// A set of observed entries of a rows x cols matrix with a two-phase
/// lifecycle:
///
///   1. *Recording*: Add / AddAll append triplets (duplicates allowed —
///      the same (row, col) may be observed in several permutations).
///   2. *Finalized*: Finalize() compiles the triplets, once, into flat
///      CSR and CSC arrays (offsets / index / value, plus the CSC -> CSR
///      position map that lets column sweeps address CSR-ordered
///      per-entry state such as CCD++ residuals). After Finalize() the
///      set is immutable: Add / AddAll / Reserve CHECK-fail, and the
///      compressed views never go stale. Finalize() is idempotent.
///
/// The solvers (CompleteMatrix) require a finalized set; the compressed
/// accessors CHECK that Finalize() has run. Within one row the CSR view
/// preserves insertion order, and likewise for columns in the CSC view,
/// so sweeps accumulate in the same entry order as a scalar pass over
/// entries() filtered to that row/column.
class ObservationSet {
 public:
  ObservationSet(int num_rows, int num_cols);

  /// Appends one observation. CHECK-fails after Finalize().
  void Add(int row, int col, double value);

  /// Reserves capacity for `n` additional observations. CHECK-fails
  /// after Finalize().
  void Reserve(size_t n) {
    COMFEDSV_CHECK(!finalized_);
    entries_.reserve(entries_.size() + n);
  }

  /// Bulk append: reserves once and validates each entry like Add.
  /// CHECK-fails after Finalize().
  void AddAll(const std::vector<Observation>& observations);

  /// Compiles the CSR and CSC views from the recorded triplets. Stable:
  /// within a row (column), entries keep their insertion order. May be
  /// called on an empty set; calling it again is a no-op.
  void Finalize();

  bool finalized() const { return finalized_; }

  int num_rows() const { return num_rows_; }
  int num_cols() const { return num_cols_; }
  size_t size() const { return entries_.size(); }
  bool empty() const { return entries_.empty(); }

  /// The raw triplets in insertion order (valid in both phases). CSR
  /// position p corresponds to entry csr_entry()[p] of this list.
  const std::vector<Observation>& entries() const { return entries_; }

  // CSR view (all CHECK that Finalize() has run). Row r's entries live
  // at CSR positions [row_offsets()[r], row_offsets()[r + 1]).
  const std::vector<int>& row_offsets() const {
    COMFEDSV_CHECK(finalized_);
    return row_offsets_;
  }
  /// Column of the entry at each CSR position.
  const std::vector<int>& csr_cols() const {
    COMFEDSV_CHECK(finalized_);
    return csr_cols_;
  }
  /// Value of the entry at each CSR position.
  const std::vector<double>& csr_values() const {
    COMFEDSV_CHECK(finalized_);
    return csr_values_;
  }
  /// Index into entries() of the entry at each CSR position.
  const std::vector<int>& csr_entry() const {
    COMFEDSV_CHECK(finalized_);
    return csr_entry_;
  }

  // CSC view. Column c's entries live at CSC positions
  // [col_offsets()[c], col_offsets()[c + 1]).
  const std::vector<int>& col_offsets() const {
    COMFEDSV_CHECK(finalized_);
    return col_offsets_;
  }
  /// Row of the entry at each CSC position.
  const std::vector<int>& csc_rows() const {
    COMFEDSV_CHECK(finalized_);
    return csc_rows_;
  }
  /// Value of the entry at each CSC position.
  const std::vector<double>& csc_values() const {
    COMFEDSV_CHECK(finalized_);
    return csc_values_;
  }
  /// CSR position of the entry at each CSC position — column sweeps use
  /// this to read/write per-entry state kept in CSR order (e.g. the
  /// CCD++ residual array).
  const std::vector<int>& csc_to_csr() const {
    COMFEDSV_CHECK(finalized_);
    return csc_to_csr_;
  }

  /// Number of observations in row `r` / column `c` (finalized only).
  int RowNnz(int r) const {
    COMFEDSV_CHECK(finalized_);
    COMFEDSV_CHECK_GE(r, 0);
    COMFEDSV_CHECK_LT(r, num_rows_);
    return row_offsets_[r + 1] - row_offsets_[r];
  }
  int ColNnz(int c) const {
    COMFEDSV_CHECK(finalized_);
    COMFEDSV_CHECK_GE(c, 0);
    COMFEDSV_CHECK_LT(c, num_cols_);
    return col_offsets_[c + 1] - col_offsets_[c];
  }

  /// Fraction of the full matrix that is observed.
  double Density() const;

 private:
  int num_rows_;
  int num_cols_;
  std::vector<Observation> entries_;
  bool finalized_ = false;
  // CSR: entries sorted by row, insertion order within a row.
  std::vector<int> row_offsets_;     // num_rows + 1
  std::vector<int> csr_cols_;        // nnz
  std::vector<double> csr_values_;   // nnz
  std::vector<int> csr_entry_;       // nnz, CSR position -> entries() index
  // CSC: entries sorted by column, insertion order within a column.
  std::vector<int> col_offsets_;     // num_cols + 1
  std::vector<int> csc_rows_;        // nnz
  std::vector<double> csc_values_;   // nnz
  std::vector<int> csc_to_csr_;      // nnz, CSC position -> CSR position
};

}  // namespace comfedsv

#endif  // COMFEDSV_COMPLETION_OBSERVATIONS_H_
