// Sparse observation set for matrix completion: the observed entries
// (t, S) -> U_t(S) of the utility matrix, indexed both by row (round) and
// by column (coalition id) so the alternating solvers can sweep either
// side.
#ifndef COMFEDSV_COMPLETION_OBSERVATIONS_H_
#define COMFEDSV_COMPLETION_OBSERVATIONS_H_

#include <cstddef>
#include <vector>

#include "common/check.h"

namespace comfedsv {

/// One observed matrix entry.
struct Observation {
  int row = 0;
  int col = 0;
  double value = 0.0;
};

/// An append-only set of observed entries of a rows x cols matrix, with
/// per-row and per-column adjacency built lazily on first use.
class ObservationSet {
 public:
  ObservationSet(int num_rows, int num_cols);

  void Add(int row, int col, double value);

  /// Reserves capacity for `n` additional observations.
  void Reserve(size_t n) { entries_.reserve(entries_.size() + n); }

  /// Bulk append: reserves once and validates each entry like Add.
  void AddAll(const std::vector<Observation>& observations);

  int num_rows() const { return num_rows_; }
  int num_cols() const { return num_cols_; }
  size_t size() const { return entries_.size(); }
  bool empty() const { return entries_.empty(); }

  const std::vector<Observation>& entries() const { return entries_; }

  /// Indices (into entries()) of the observations in row `r`.
  const std::vector<int>& RowEntries(int r) const;

  /// Indices (into entries()) of the observations in column `c`.
  const std::vector<int>& ColEntries(int c) const;

  /// Builds the row/column adjacency now if it is stale. RowEntries /
  /// ColEntries build it lazily, which is not safe from several threads;
  /// parallel solvers call this once before fanning out.
  void EnsureIndex() const { BuildIndexIfNeeded(); }

  /// Fraction of the full matrix that is observed.
  double Density() const;

 private:
  void BuildIndexIfNeeded() const;

  int num_rows_;
  int num_cols_;
  std::vector<Observation> entries_;
  // Lazily built adjacency. Mutable: building the index does not change
  // the logical state.
  mutable bool index_built_ = false;
  mutable std::vector<std::vector<int>> by_row_;
  mutable std::vector<std::vector<int>> by_col_;
};

}  // namespace comfedsv

#endif  // COMFEDSV_COMPLETION_OBSERVATIONS_H_
