#include "completion/observations.h"

namespace comfedsv {

ObservationSet::ObservationSet(int num_rows, int num_cols)
    : num_rows_(num_rows), num_cols_(num_cols) {
  COMFEDSV_CHECK_GT(num_rows, 0);
  COMFEDSV_CHECK_GT(num_cols, 0);
}

void ObservationSet::Add(int row, int col, double value) {
  COMFEDSV_CHECK_GE(row, 0);
  COMFEDSV_CHECK_LT(row, num_rows_);
  COMFEDSV_CHECK_GE(col, 0);
  COMFEDSV_CHECK_LT(col, num_cols_);
  entries_.push_back({row, col, value});
  index_built_ = false;
}

void ObservationSet::AddAll(const std::vector<Observation>& observations) {
  Reserve(observations.size());
  for (const Observation& o : observations) {
    COMFEDSV_CHECK_GE(o.row, 0);
    COMFEDSV_CHECK_LT(o.row, num_rows_);
    COMFEDSV_CHECK_GE(o.col, 0);
    COMFEDSV_CHECK_LT(o.col, num_cols_);
    entries_.push_back(o);
  }
  index_built_ = false;
}

void ObservationSet::BuildIndexIfNeeded() const {
  if (index_built_) return;
  by_row_.assign(num_rows_, {});
  by_col_.assign(num_cols_, {});
  for (size_t i = 0; i < entries_.size(); ++i) {
    by_row_[entries_[i].row].push_back(static_cast<int>(i));
    by_col_[entries_[i].col].push_back(static_cast<int>(i));
  }
  index_built_ = true;
}

const std::vector<int>& ObservationSet::RowEntries(int r) const {
  COMFEDSV_CHECK_GE(r, 0);
  COMFEDSV_CHECK_LT(r, num_rows_);
  BuildIndexIfNeeded();
  return by_row_[r];
}

const std::vector<int>& ObservationSet::ColEntries(int c) const {
  COMFEDSV_CHECK_GE(c, 0);
  COMFEDSV_CHECK_LT(c, num_cols_);
  BuildIndexIfNeeded();
  return by_col_[c];
}

double ObservationSet::Density() const {
  return static_cast<double>(entries_.size()) /
         (static_cast<double>(num_rows_) * static_cast<double>(num_cols_));
}

}  // namespace comfedsv
