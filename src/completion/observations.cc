#include "completion/observations.h"

namespace comfedsv {

ObservationSet::ObservationSet(int num_rows, int num_cols)
    : num_rows_(num_rows), num_cols_(num_cols) {
  COMFEDSV_CHECK_GT(num_rows, 0);
  COMFEDSV_CHECK_GT(num_cols, 0);
}

void ObservationSet::Add(int row, int col, double value) {
  COMFEDSV_CHECK_MSG(!finalized_, "ObservationSet mutated after Finalize()");
  COMFEDSV_CHECK_GE(row, 0);
  COMFEDSV_CHECK_LT(row, num_rows_);
  COMFEDSV_CHECK_GE(col, 0);
  COMFEDSV_CHECK_LT(col, num_cols_);
  entries_.push_back({row, col, value});
}

void ObservationSet::AddAll(const std::vector<Observation>& observations) {
  Reserve(observations.size());
  for (const Observation& o : observations) {
    COMFEDSV_CHECK_GE(o.row, 0);
    COMFEDSV_CHECK_LT(o.row, num_rows_);
    COMFEDSV_CHECK_GE(o.col, 0);
    COMFEDSV_CHECK_LT(o.col, num_cols_);
    entries_.push_back(o);
  }
}

void ObservationSet::Finalize() {
  if (finalized_) return;
  const size_t nnz = entries_.size();

  // CSR: stable counting sort by row.
  row_offsets_.assign(num_rows_ + 1, 0);
  for (const Observation& o : entries_) ++row_offsets_[o.row + 1];
  for (int r = 0; r < num_rows_; ++r) {
    row_offsets_[r + 1] += row_offsets_[r];
  }
  csr_cols_.resize(nnz);
  csr_values_.resize(nnz);
  csr_entry_.resize(nnz);
  std::vector<int> cursor(row_offsets_.begin(), row_offsets_.end() - 1);
  for (size_t e = 0; e < nnz; ++e) {
    const Observation& o = entries_[e];
    const int p = cursor[o.row]++;
    csr_cols_[p] = o.col;
    csr_values_[p] = o.value;
    csr_entry_[p] = static_cast<int>(e);
  }

  // CSC: stable counting sort by column, remembering each entry's CSR
  // position so column sweeps can address CSR-ordered per-entry state.
  col_offsets_.assign(num_cols_ + 1, 0);
  for (const Observation& o : entries_) ++col_offsets_[o.col + 1];
  for (int c = 0; c < num_cols_; ++c) {
    col_offsets_[c + 1] += col_offsets_[c];
  }
  csc_rows_.resize(nnz);
  csc_values_.resize(nnz);
  csc_to_csr_.resize(nnz);
  std::vector<int> csr_of_entry(nnz);
  for (size_t p = 0; p < nnz; ++p) {
    csr_of_entry[csr_entry_[p]] = static_cast<int>(p);
  }
  cursor.assign(col_offsets_.begin(), col_offsets_.end() - 1);
  for (size_t e = 0; e < nnz; ++e) {
    const Observation& o = entries_[e];
    const int p = cursor[o.col]++;
    csc_rows_[p] = o.row;
    csc_values_[p] = o.value;
    csc_to_csr_[p] = csr_of_entry[e];
  }

  finalized_ = true;
}

double ObservationSet::Density() const {
  return static_cast<double>(entries_.size()) /
         (static_cast<double>(num_rows_) * static_cast<double>(num_cols_));
}

}  // namespace comfedsv
