#include "completion/interner.h"

#include "common/check.h"

namespace comfedsv {

int CoalitionInterner::Intern(const Coalition& c) {
  auto [it, inserted] =
      ids_.emplace(c, static_cast<int>(coalitions_.size()));
  if (inserted) coalitions_.push_back(c);
  return it->second;
}

int CoalitionInterner::Find(const Coalition& c) const {
  auto it = ids_.find(c);
  return it == ids_.end() ? -1 : it->second;
}

const Coalition& CoalitionInterner::Get(int col) const {
  COMFEDSV_CHECK_GE(col, 0);
  COMFEDSV_CHECK_LT(static_cast<size_t>(col), coalitions_.size());
  return coalitions_[col];
}

}  // namespace comfedsv
