// Factorization-based low-rank matrix completion (problem (9)/(13) of the
// paper):
//
//   minimize_{W, H}  sum_observed (U_{t,S} - w_t^T h_S)^2
//                    + lambda (||W||_F^2 + ||H||_F^2)
//
// Three solvers are provided, all sweeping the compressed-sparse (CSR /
// CSC) views that ObservationSet::Finalize() builds:
//   * kAls:  alternating least squares — each factor row has a closed-form
//            ridge solution; robust default. Row solves accumulate their
//            rank x rank normal equations with the register-tiled
//            gather/Gram kernels (linalg/gram_kernels.h) and run in
//            parallel blocks; under temporal smoothing the W-side uses a
//            red-black (even/odd) ordering so both colors parallelize.
//   * kCcd:  CCD++-style coordinate descent with residual maintenance —
//            the algorithm inside LIBPMF, the solver the paper used. The
//            residual is kept in CSR order; row and column refit phases
//            each parallelize with a barrier in between.
//   * kSgd:  stochastic gradient over observed entries — cheapest per
//            pass, used for very large sampled problems. Epochs follow a
//            DSGD-style stratified grid schedule: the fixed B x B cell
//            grid is swept one diagonal stratum at a time, cells of a
//            stratum touch disjoint row and column factors (safe to run
//            concurrently), and each cell's entries are visited in a
//            fixed sub-stream shuffle — so updates are identical for any
//            thread count.
// The ablation bench (bench/ablation_completion_solver) compares their
// fits; bench/completion_solvers records their throughput.
#ifndef COMFEDSV_COMPLETION_SOLVER_H_
#define COMFEDSV_COMPLETION_SOLVER_H_

#include <cstdint>
#include <string>

#include "common/execution_context.h"
#include "common/status.h"
#include "completion/observations.h"
#include "linalg/matrix.h"

namespace comfedsv {

/// Which optimizer solves the completion problem.
enum class CompletionSolver { kAls, kCcd, kSgd };

/// Human-readable solver name.
std::string CompletionSolverName(CompletionSolver solver);

/// Hyper-parameters of the completion problem and its solver.
struct CompletionConfig {
  /// Rank parameter r of the factorization. Propositions 1/2 bound the
  /// eps-rank of the utility matrix by O(log T / eps); Example 3 probes
  /// the sensitivity empirically.
  int rank = 5;
  /// Regularization weight lambda.
  double lambda = 1e-3;
  /// Maximum alternating sweeps / epochs.
  int max_iters = 100;
  /// Stop when the relative decrease of the objective falls below this.
  double tolerance = 1e-8;
  CompletionSolver solver = CompletionSolver::kAls;
  /// SGD-only: step size.
  double sgd_learning_rate = 0.02;
  /// Standard deviation of the random factor initialization; 0 = auto
  /// (a small fraction of the data scale, which empirically steers ALS
  /// to good basins — see the init-scale ablation bench).
  double init_scale = 0.0;
  /// Temporal-smoothness weight mu: adds mu * sum_t ||w_t - w_{t+1}||^2
  /// to the objective, exploiting the paper's Proposition 1 (utilities of
  /// the same coalition change slowly across successive rounds). Rows of
  /// W index training rounds, so coupling adjacent rows stabilizes the
  /// row factors of sparsely observed rounds. 0 disables (the literal
  /// problem (9)); ALS only.
  double temporal_smoothing = 0.0;
  uint64_t seed = 0;
  /// ALS / CCD++ compute the stopping objective from state the sweep
  /// already maintains (per-column residuals / the CCD++ residual array)
  /// instead of a second full pass over the observations. Setting this
  /// cross-checks the fused value against a direct recomputation every
  /// iteration (CHECK-fails on mismatch beyond accumulated-rounding
  /// tolerance). Always on in debug (!NDEBUG) builds.
  bool verify_fused_objective = false;
};

/// A completion factorization (W, H): the warm-start unit the streaming
/// valuation engine carries between re-solves and the checkpoint layer
/// (io/checkpoint.h) persists. Row counts may differ (rounds vs
/// columns); the rank (cols) must match.
struct FactorPair {
  Matrix w;
  Matrix h;
};

/// Factor-predicted utility w_round . h_col — the surrogate the adaptive
/// estimators use to pre-screen coalitions (a coalition column whose
/// predicted marginal is confidently negligible skips its real BatchLoss
/// call). `round` is clamped to the last fitted W row: the paper's
/// Proposition 1 (temporal smoothness — a coalition's utility changes
/// slowly across successive rounds) makes the latest fitted row the
/// natural extrapolation for rounds the factors have not seen yet.
/// `col` must be a fitted column. Returns 0 for empty factors.
double PredictedUtility(const FactorPair& factors, int round, int col);

/// Result of a completion solve.
struct CompletionResult {
  Matrix w;  ///< num_rows x rank
  Matrix h;  ///< num_cols x rank
  int iterations = 0;
  /// Root-mean-square error over the observed entries at termination.
  double observed_rmse = 0.0;
  /// Final value of the regularized objective.
  double objective = 0.0;

  /// Predicted value of entry (row, col): w_row . h_col.
  double Predict(int row, int col) const;
};

/// Solves the completion problem over `observations`, which must be
/// finalized (ObservationSet::Finalize()) so the CSR/CSC views exist.
/// `ctx` (optional) parallelizes every solver; outputs are bit-identical
/// for any thread count:
///   * ALS row solves write disjoint factor rows; under temporal
///     smoothing (mu > 0) the W-side sweeps even rows then odd rows
///     (red-black), each color reading only the other color's rows.
///   * CCD++ runs its residual updates and per-row / per-column rank-1
///     refits in parallel phases separated by barriers.
///   * SGD processes one stratum of its fixed grid schedule at a time;
///     concurrent cells touch disjoint factor rows.
Result<CompletionResult> CompleteMatrix(const ObservationSet& observations,
                                        const CompletionConfig& config,
                                        ExecutionContext* ctx = nullptr);

/// Warm-started solve: the leading rows of the factor initialization are
/// copied from `warm.w` / `warm.h` (a fit of a *prefix* of the current
/// problem — fewer or equal rows/columns; the remainder keeps the usual
/// seeded random init), and ALS skips its staged rank-growth pre-phase
/// because the warm factors already select a basin. With factors carried
/// over from the previous streaming re-solve this reaches the same final
/// objective in measurably fewer sweeps than a cold CompleteMatrix
/// (bench/streaming.cc records the gap). `warm` ranks must equal
/// config.rank.
Result<CompletionResult> CompleteMatrixWarm(
    const ObservationSet& observations, const CompletionConfig& config,
    const FactorPair& warm, ExecutionContext* ctx = nullptr);

}  // namespace comfedsv

#endif  // COMFEDSV_COMPLETION_SOLVER_H_
