// The ComFedSV formulas:
//   * Definition 4 — exact sum over all coalitions, from completion
//     factors (W, H);
//   * Eq. (14)     — the same sum computed from the true (fully observed)
//     utility matrix: the paper's "ground truth" metric;
//   * Eq. (12)     — the Monte-Carlo estimator over sampled permutations
//     used by Algorithm 1.
#ifndef COMFEDSV_CORE_COMFEDSV_VALUES_H_
#define COMFEDSV_CORE_COMFEDSV_VALUES_H_

#include <vector>

#include "common/status.h"
#include "completion/interner.h"
#include "linalg/matrix.h"
#include "linalg/vector.h"

namespace comfedsv {

/// Exact ComFedSV (Def. 4) from completion factors. `w` is T x r, `h` is
/// C x r with columns indexed by `interner`; every one of the 2^N
/// coalitions must be interned (guaranteed under Assumption 1 with the
/// ObservedUtilityRecorder). Uses the factor-predicted value of every
/// column including the empty one (generic Shapley semantics); the
/// pipeline's U(empty) = 0 convention is enforced upstream by
/// ComFedSvEvaluator::Finalize zeroing the empty factor row.
/// Exponential in num_clients; guarded to num_clients <= 16.
Result<Vector> ComFedSvFromFactors(const Matrix& w, const Matrix& h,
                                   const CoalitionInterner& interner,
                                   int num_clients);

/// Ground-truth ComFedSV (Eq. 14) from the dense full utility matrix
/// (column c = coalition with membership bitmask c, as produced by
/// FullUtilityRecorder).
Result<Vector> ComFedSvFromFullMatrix(const Matrix& utility_matrix,
                                      int num_clients);

/// Monte-Carlo ComFedSV (Eq. 12): averages factor-predicted marginal
/// contributions along the sampled permutations. `prefix_columns[m][l]`
/// is the column id of the length-l prefix of permutation m, as kept by
/// SampledUtilityRecorder. Each walk's baseline is the factor-predicted
/// value of the empty-prefix column — exactly 0 for pipeline inputs,
/// because ComFedSvEvaluator::Finalize pins the completed factors' empty
/// row to the U(empty) = 0 convention (see there for the audit).
Result<Vector> ComFedSvSampled(
    const Matrix& w, const Matrix& h,
    const std::vector<std::vector<int>>& permutations,
    const std::vector<std::vector<int>>& prefix_columns, int num_clients);

}  // namespace comfedsv

#endif  // COMFEDSV_CORE_COMFEDSV_VALUES_H_
