#include "core/pipeline.h"

#include <memory>

#include "common/stopwatch.h"

namespace comfedsv {

Result<ValuationOutcome> RunValuation(const Model& model,
                                      std::vector<Dataset> client_data,
                                      Dataset test_data,
                                      const FedAvgConfig& fed_config,
                                      const ValuationRequest& request,
                                      ExecutionContext* ctx) {
  const int n = static_cast<int>(client_data.size());
  if (n == 0) return Status::InvalidArgument("no clients");

  const bool needs_assumption1 =
      request.compute_ground_truth ||
      (request.compute_comfedsv &&
       request.comfedsv.mode == ComFedSvConfig::Mode::kFull);
  if (needs_assumption1 && !fed_config.select_all_first_round) {
    return Status::FailedPrecondition(
        "full ComFedSV / ground truth require select_all_first_round "
        "(Assumption 1)");
  }

  FedAvgTrainer trainer(&model, std::move(client_data),
                        std::move(test_data), fed_config, ctx);

  std::unique_ptr<FedSvEvaluator> fedsv;
  std::unique_ptr<ComFedSvEvaluator> comfedsv;
  std::unique_ptr<GroundTruthEvaluator> ground_truth;
  FanoutObserver fanout;

  // Wall-time per observer, accumulated with a timing shim.
  struct TimedObserver : RoundObserver {
    RoundObserver* inner = nullptr;
    double seconds = 0.0;
    void OnRound(const RoundRecord& record) override {
      Stopwatch timer;
      inner->OnRound(record);
      seconds += timer.ElapsedSeconds();
    }
  };
  TimedObserver fedsv_timed;

  if (request.compute_fedsv) {
    fedsv = std::make_unique<FedSvEvaluator>(
        &model, &trainer.test_data(), n, request.fedsv, ctx);
    fedsv_timed.inner = fedsv.get();
    fanout.Register(&fedsv_timed);
  }
  if (request.compute_comfedsv) {
    comfedsv = std::make_unique<ComFedSvEvaluator>(
        &model, &trainer.test_data(), n, request.comfedsv, ctx);
    fanout.Register(comfedsv.get());
  }
  if (request.compute_ground_truth) {
    ground_truth = std::make_unique<GroundTruthEvaluator>(
        &model, &trainer.test_data(), n, ctx);
    fanout.Register(ground_truth.get());
  }

  Result<TrainingResult> training = trainer.Train(&fanout);
  if (!training.ok()) return training.status();

  ValuationOutcome outcome;
  outcome.training = std::move(training).value();
  if (fedsv != nullptr) {
    outcome.fedsv_values = fedsv->values();
    outcome.fedsv_loss_calls = fedsv->loss_calls();
    outcome.fedsv_seconds = fedsv_timed.seconds;
  }
  if (comfedsv != nullptr) {
    Result<ComFedSvOutput> finalized = comfedsv->Finalize();
    if (!finalized.ok()) return finalized.status();
    outcome.comfedsv = std::move(finalized).value();
  }
  if (ground_truth != nullptr) {
    Result<Vector> values = ground_truth->Finalize();
    if (!values.ok()) return values.status();
    outcome.ground_truth_values = std::move(values).value();
    outcome.ground_truth_loss_calls = ground_truth->loss_calls();
  }
  return outcome;
}

}  // namespace comfedsv
