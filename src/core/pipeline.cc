#include "core/pipeline.h"

#include <memory>

#include "common/stopwatch.h"
#include "core/streaming.h"

namespace comfedsv {
namespace {

// Shared driver of the plain and checkpointed pipelines. The trainer is
// driven through its streaming lifecycle (Begin / Step / Finish) so the
// checkpointed variant can persist and restore mid-run state between
// rounds; the plain variant is the same loop with `checkpoint` null.
Result<ValuationOutcome> RunValuationImpl(const Model& model,
                                          std::vector<Dataset> client_data,
                                          Dataset test_data,
                                          const FedAvgConfig& fed_config,
                                          const ValuationRequest& request,
                                          const CheckpointConfig* checkpoint,
                                          ExecutionContext* ctx) {
  const int n = static_cast<int>(client_data.size());
  if (n == 0) return Status::InvalidArgument("no clients");

  const bool needs_assumption1 =
      request.compute_ground_truth ||
      (request.compute_comfedsv &&
       request.comfedsv.mode == ComFedSvConfig::Mode::kFull);
  if (needs_assumption1 && !fed_config.select_all_first_round) {
    return Status::FailedPrecondition(
        "full ComFedSV / ground truth require select_all_first_round "
        "(Assumption 1)");
  }
  if (checkpoint != nullptr) {
    if (checkpoint->path.empty()) {
      return Status::InvalidArgument("checkpoint path must be non-empty");
    }
    if (checkpoint->every_rounds <= 0) {
      return Status::InvalidArgument(
          "checkpoint every_rounds must be positive");
    }
    if (checkpoint->round_log_index_every <= 0) {
      return Status::InvalidArgument(
          "checkpoint round_log_index_every must be positive");
    }
  }

  FedAvgTrainer trainer(&model, std::move(client_data),
                        std::move(test_data), fed_config, ctx);

  std::unique_ptr<FedSvEvaluator> fedsv;
  std::unique_ptr<ComFedSvEvaluator> comfedsv;
  std::unique_ptr<GroundTruthEvaluator> ground_truth;
  FanoutObserver fanout;

  // Wall-time per observer, accumulated with a timing shim. (On a
  // resumed run this counts only the resumed rounds.)
  struct TimedObserver : RoundObserver {
    RoundObserver* inner = nullptr;
    double seconds = 0.0;
    void OnRound(const RoundRecord& record) override {
      Stopwatch timer;
      inner->OnRound(record);
      seconds += timer.ElapsedSeconds();
    }
  };
  TimedObserver fedsv_timed;

  if (request.compute_fedsv) {
    fedsv = std::make_unique<FedSvEvaluator>(
        &model, &trainer.test_data(), n, request.fedsv, ctx);
    fedsv_timed.inner = fedsv.get();
    fanout.Register(&fedsv_timed);
  }
  if (request.compute_comfedsv) {
    comfedsv = std::make_unique<ComFedSvEvaluator>(
        &model, &trainer.test_data(), n, request.comfedsv, ctx);
    fanout.Register(comfedsv.get());
  }
  if (request.compute_ground_truth) {
    ground_truth = std::make_unique<GroundTruthEvaluator>(
        &model, &trainer.test_data(), n, ctx);
    fanout.Register(ground_truth.get());
  }

  COMFEDSV_RETURN_IF_ERROR(trainer.Begin());

  uint64_t fingerprint = 0;
  std::unique_ptr<CheckpointManager> manager;
  CheckpointHealth health;
  if (checkpoint != nullptr) {
    CheckpointManagerOptions mgr_options;
    mgr_options.keep_generations = checkpoint->keep_generations;
    mgr_options.max_retries = checkpoint->max_retries;
    mgr_options.retry_backoff_ms = checkpoint->retry_backoff_ms;
    mgr_options.env = checkpoint->env;
    manager = std::make_unique<CheckpointManager>(checkpoint->path,
                                                  std::move(mgr_options));
    // Startup sweep: clear `.tmp` debris a previous crash left behind.
    // A failed sweep is not fatal — stale temps are inert.
    Result<int> swept = manager->SweepOrphans();
    health.orphans_swept = swept.value_or(0);

    fingerprint = ValuationFingerprint(trainer, request);
    if (checkpoint->resume) {
      Result<CheckpointManager::LoadInfo> loaded = manager->Load(
          ChunkTag::kValuationCheckpoint,
          [&](std::string_view payload, uint64_t /*sequence*/) {
            return RestoreValuationCheckpoint(payload, fingerprint,
                                              &trainer, fedsv.get(),
                                              comfedsv.get(),
                                              ground_truth.get());
          });
      if (loaded.ok()) {
        health.quarantined_on_resume = loaded.value().quarantined;
        health.resumed_sequence = loaded.value().sequence;
      } else if (loaded.status().code() != StatusCode::kNotFound) {
        // No checkpoint at all means a fresh run; anything else — every
        // generation corrupt (DataLoss), fingerprint mismatch
        // (FailedPrecondition), environment down — must not silently
        // recompute T rounds.
        return loaded.status();
      }
    }
  }

  // Spill-to-log: open lazily per round so a transient open failure
  // degrades (and retries) instead of aborting the run. A fresh run
  // starts a new log; a resumed run re-opens behind the restored round,
  // truncating frames the interrupted run appended past its last
  // durable checkpoint.
  std::unique_ptr<RoundLogWriter> round_log;
  const bool spill =
      checkpoint != nullptr && !checkpoint->round_log_path.empty();
  auto spill_degrade = [&](const Status& st) {
    health.degraded = true;
    ++health.round_log_failures;
    ++health.consecutive_failures;
    health.last_error = st.ToString();
  };
  auto spill_append = [&](const RoundRecord& record,
                          int completed) -> Status {
    if (round_log == nullptr) {
      RoundLogOptions log_options;
      log_options.compression = checkpoint->round_log_compression;
      log_options.index_every = checkpoint->round_log_index_every;
      log_options.env = checkpoint->env;
      Result<std::unique_ptr<RoundLogWriter>> opened =
          completed == 0
              ? RoundLogWriter::Create(checkpoint->round_log_path,
                                       log_options)
              : RoundLogWriter::OpenForAppend(checkpoint->round_log_path,
                                              completed, log_options);
      if (!opened.ok()) return opened.status();
      round_log = std::move(opened).value();
    }
    return round_log->Append(record);
  };

  while (!trainer.Done()) {
    const int before = trainer.next_round();
    const RoundRecord& record = trainer.Step();
    fanout.OnRound(record);
    if (spill) {
      Status appended = spill_append(record, before);
      if (!appended.ok()) {
        if (checkpoint->require_durable) return appended;
        spill_degrade(appended);
      }
    }
    if (checkpoint != nullptr) {
      const int completed = trainer.next_round();
      ++health.rounds_since_durable;
      if (completed % checkpoint->every_rounds == 0 || trainer.Done()) {
        // The log syncs before the checkpoint that references it — a
        // durable checkpoint must never point past the durable log.
        if (round_log != nullptr) {
          Status synced = round_log->Sync();
          if (!synced.ok()) {
            if (checkpoint->require_durable) return synced;
            spill_degrade(synced);
          }
        }
        Status saved = manager->Write(
            ChunkTag::kValuationCheckpoint,
            SerializeValuationCheckpoint(fingerprint, trainer, fedsv.get(),
                                         comfedsv.get(),
                                         ground_truth.get()));
        if (saved.ok()) {
          health.degraded = false;
          health.consecutive_failures = 0;
          health.rounds_since_durable = 0;
        } else {
          // Graceful degradation: the in-memory state is intact, so a
          // failed save costs durability, not correctness. Keep
          // training (the next cadence save retries from scratch) and
          // report the gap — unless the caller demanded durability.
          if (checkpoint->require_durable) return saved;
          health.degraded = true;
          ++health.write_failures;
          ++health.consecutive_failures;
          health.last_error = saved.ToString();
        }
      }
      if (checkpoint->inject_crash_after_round >= 0 &&
          completed >= checkpoint->inject_crash_after_round) {
        return Status::Internal("injected crash after round " +
                                std::to_string(completed));
      }
    }
  }

  Result<TrainingResult> training = trainer.Finish();
  if (!training.ok()) return training.status();

  ValuationOutcome outcome;
  outcome.training = std::move(training).value();
  if (round_log != nullptr) {
    health.round_log_rounds = round_log->rounds();
    health.round_log_bytes = round_log->data_size();
  }
  if (checkpoint != nullptr) outcome.checkpoint_health = health;
  if (fedsv != nullptr) {
    outcome.fedsv_values = fedsv->values();
    outcome.fedsv_loss_calls = fedsv->loss_calls();
    outcome.fedsv_seconds = fedsv_timed.seconds;
    outcome.fedsv_stats = fedsv->stats();
  }
  if (comfedsv != nullptr) {
    Result<ComFedSvOutput> finalized = comfedsv->Finalize();
    if (!finalized.ok()) return finalized.status();
    outcome.comfedsv = std::move(finalized).value();
  }
  if (ground_truth != nullptr) {
    Result<Vector> values = ground_truth->Finalize();
    if (!values.ok()) return values.status();
    outcome.ground_truth_values = std::move(values).value();
    outcome.ground_truth_loss_calls = ground_truth->loss_calls();
  }
  return outcome;
}

}  // namespace

Result<ValuationOutcome> RunValuation(const Model& model,
                                      std::vector<Dataset> client_data,
                                      Dataset test_data,
                                      const FedAvgConfig& fed_config,
                                      const ValuationRequest& request,
                                      ExecutionContext* ctx) {
  return RunValuationImpl(model, std::move(client_data),
                          std::move(test_data), fed_config, request,
                          nullptr, ctx);
}

Result<ValuationOutcome> RunValuationCheckpointed(
    const Model& model, std::vector<Dataset> client_data, Dataset test_data,
    const FedAvgConfig& fed_config, const ValuationRequest& request,
    const CheckpointConfig& checkpoint, ExecutionContext* ctx) {
  return RunValuationImpl(model, std::move(client_data),
                          std::move(test_data), fed_config, request,
                          &checkpoint, ctx);
}

Result<ValuationOutcome> RunValuationFromLog(
    const Model& model, const Dataset& test_data, int num_clients,
    const std::string& log_path, const ValuationRequest& request,
    const RoundLogReadOptions& read_options, ExecutionContext* ctx) {
  if (num_clients <= 0) {
    return Status::InvalidArgument("num_clients must be positive");
  }
  Result<std::unique_ptr<RoundLogReader>> reader =
      RoundLogReader::Open(log_path, read_options);
  if (!reader.ok()) return reader.status();

  // A streaming engine with no snapshots is exactly the batch pipeline
  // fed from disk: OnRound accumulates per record, Finalize() is the
  // cold batch-equivalent solve. Resident memory stays at one decoded
  // record plus the reader's window, whatever the trajectory length.
  StreamingConfig config;
  config.request = request;
  StreamingValuationEngine engine(&model, &test_data, num_clients, config,
                                  ctx);
  RoundRecord record;
  for (int pos = 0; pos < reader.value()->rounds(); ++pos) {
    COMFEDSV_RETURN_IF_ERROR(reader.value()->Read(pos, &record));
    engine.OnRound(record);
  }
  return engine.Finalize();
}

}  // namespace comfedsv
