// StreamingValuationEngine: valuation over rounds that arrive one at a
// time, instead of one batch pass after training ends.
//
// The paper's protocol (Fig. 4) trains T rounds and then values clients
// once; ComFedSV's structure is friendlier than that: per-round
// observations only accumulate, and the low-rank completion (Eq. 12) can
// be re-solved from them after any prefix of rounds. The engine exploits
// exactly that:
//
//   * OnRound(record) appends the round's observations incrementally —
//     running FedSV sums, ComFedSV recorder triplets, optional
//     ground-truth rows — at the same per-round cost the batch pipeline
//     pays.
//   * Snapshot() produces a ValuationOutcome for the consumed prefix at
//     any time. The expensive part (the completion solve) is re-run only
//     every `resolve_cadence` new rounds and warm-starts from the
//     previous solve's factors (CompleteMatrixWarm), which reaches the
//     same final objective in measurably fewer sweeps than a cold solve
//     (bench/streaming.cc records the gap).
//   * Finalize() is the batch-equivalent read: a cold solve exactly like
//     ComFedSvEvaluator::Finalize, so after the full round sequence its
//     outputs are bit-identical to RunValuation on the same trajectory
//     (tests/determinism_test.cc enforces this).
//   * SaveState/RestoreState checkpoint the whole engine mid-stream
//     (io chunk kStreamingEngineState), composing with the trainer's
//     checkpoint for crash-safe continuous valuation.
#ifndef COMFEDSV_CORE_STREAMING_H_
#define COMFEDSV_CORE_STREAMING_H_

#include <memory>
#include <optional>
#include <vector>

#include "common/execution_context.h"
#include "core/checkpointing.h"
#include "core/pipeline.h"
#include "io/round_log.h"

namespace comfedsv {

class CheckpointManager;  // io/checkpoint_manager.h

/// How the engine's fallible operations (snapshot re-solves, checkpoint
/// writes) have fared. The engine survives both failure kinds by
/// retaining its last good state; this reports how much trust that
/// state deserves right now.
struct StreamingHealth {
  /// True while the most recent fallible operation failed; clears as
  /// soon as one succeeds (the engine recovered).
  bool degraded = false;
  /// Snapshot() calls whose re-solve failed and were served from the
  /// previous solve's output instead.
  int64_t stale_snapshots = 0;
  /// SaveCheckpoint() calls that failed after the manager's retries.
  int64_t checkpoint_failures = 0;
  /// Failures since the last successful solve/save (0 when healthy).
  int64_t consecutive_failures = 0;
  /// Last error observed; empty when none ever occurred.
  std::string last_error;
  /// Rounds consumed since the last durable checkpoint (what a crash
  /// right now would lose). Counts from engine construction until the
  /// first successful SaveCheckpoint/RestoreCheckpoint.
  int64_t rounds_since_durable = 0;
  /// Round-log appends that failed (spill mode only). The engine keeps
  /// streaming — the record still fed the evaluators — but replaying
  /// the log will be missing those rounds until a later resume
  /// truncates back past the gap.
  int64_t spill_failures = 0;
};

/// Spill-to-log policy: mirror every consumed RoundRecord into an
/// on-disk round log (io/round_log.h) as it streams past, so the full
/// trajectory can be re-valued later (RunValuationFromLog) with bounded
/// resident memory.
struct RoundLogSpillConfig {
  bool enabled = false;
  /// Data file path; the footer index rides at `<path>.idx`.
  std::string path;
  RoundLogCompression compression = RoundLogCompression::kNone;
  /// Forwarded to RoundLogOptions::index_every.
  int index_every = 1;
  /// File system override for fault injection; nullptr = real.
  FileEnv* env = nullptr;
};

/// Streaming-engine policy around a ValuationRequest.
struct StreamingConfig {
  /// Which metrics to maintain; semantics identical to RunValuation.
  ValuationRequest request;
  /// Snapshot() re-solves the completion only once at least this many
  /// new rounds arrived since the last solve (1 = every snapshot sees
  /// fresh factors; larger amortizes the solve over more rounds).
  /// Snapshots in between reuse the previous ComFedSV output with
  /// up-to-date FedSV / ground-truth values.
  int resolve_cadence = 1;
  /// Warm-start each re-solve from the previous factors. Off = every
  /// snapshot solve is cold (only useful for measuring the warm-start
  /// advantage; Finalize() is always cold regardless).
  bool warm_start = true;
  /// Sweep cap for warm re-solves; 0 keeps the request's
  /// completion.max_iters.
  int warm_max_iters = 0;
  /// Arm the sampled recorder's factor-based utility surrogate after
  /// each completion solve: subsequent rounds can then skip the real
  /// BatchLoss call for coalitions whose predicted marginal is
  /// confidently below request.comfedsv.sampler.screen_threshold (which
  /// must also be > 0 for screening to engage — see SamplerConfig's
  /// screening knobs and SampledUtilityRecorder::SetSurrogatePredictor
  /// for the trust/audit/bias-bound contract). Only meaningful in
  /// ComFedSvConfig::Mode::kSampled.
  bool surrogate_screening = false;
  /// Mirror consumed rounds into an on-disk round log. The log stays
  /// aligned with checkpoints: SaveCheckpoint syncs it first, and the
  /// first OnRound after a restore truncates it back to the restored
  /// round, so kill/resume leaves the log byte-identical to an
  /// uninterrupted run's.
  RoundLogSpillConfig spill;
};

/// Consumes RoundRecords one at a time and serves valuation snapshots
/// after any prefix. Register as the trainer's RoundObserver (alone or
/// in a FanoutObserver).
class StreamingValuationEngine : public RoundObserver {
 public:
  /// `model` / `test_data` as for the evaluators (must outlive the
  /// engine; `test_data` is the server test set the trainer holds).
  /// `ctx` (optional) parallelizes recording and solves; outputs are
  /// bit-identical for any thread count.
  StreamingValuationEngine(const Model* model, const Dataset* test_data,
                           int num_clients, StreamingConfig config,
                           ExecutionContext* ctx = nullptr);

  void OnRound(const RoundRecord& record) override;

  /// Rounds consumed so far (including empty-selected rounds, which
  /// contribute zero everywhere).
  int rounds_consumed() const { return rounds_consumed_; }

  /// Valuation of the consumed prefix. `training` carries only the
  /// prefix view (rounds_run, per-round test losses); final_params and
  /// accuracy belong to the trainer. ComFedSV factors refresh per the
  /// resolve cadence and warm-start policy; FedSV and ground truth are
  /// always current. Requires at least one recorded (non-empty) round
  /// when ComFedSV or the ground truth is on.
  ///
  /// Graceful degradation: if the cadence re-solve fails but a previous
  /// solve's output exists, the snapshot is served from that last good
  /// output (FedSV / ground truth still current) and health() reports
  /// the failure instead of the call erroring out. The next successful
  /// solve clears the degraded state. A solve failure with no previous
  /// output to fall back on is still an error.
  Result<ValuationOutcome> Snapshot();

  /// Degraded-mode bookkeeping (stale snapshots, failed saves).
  const StreamingHealth& health() const { return health_; }

  /// Persists the engine state through `manager` (one
  /// kStreamingEngineState generation; rotation/retry per the manager's
  /// options). A failure is recorded in health() and returned, but
  /// leaves the engine fully usable — streaming continues on the
  /// in-memory state and the next save retries from scratch.
  Status SaveCheckpoint(CheckpointManager* manager);

  /// Restores the newest resumable generation from `manager`,
  /// quarantining corrupt ones on the way (salvage). NotFound means
  /// nothing to restore (the engine is untouched); on other errors
  /// discard the engine as for RestoreState.
  Status RestoreCheckpoint(CheckpointManager* manager);

  /// Batch-equivalent valuation of the consumed prefix: always a cold
  /// completion solve, bit-identical to RunValuation's outputs on the
  /// same rounds. Does not disturb the warm-start cache.
  Result<ValuationOutcome> Finalize() const;

  /// Factor-predicted utility of `coalition` at `round` from the last
  /// completion solve: w_round . h_col with `round` clamped to the last
  /// fitted round (temporal smoothness, Proposition 1). Returns 0 when
  /// no solve has happened yet, ComFedSV is off, or the coalition is not
  /// a column of the completion problem. This is the surrogate the
  /// screening path consults before spending a BatchLoss call.
  double PredictedUtility(int round, const Coalition& coalition) const;

  /// Spill mode only: fsyncs the round log and persists its footer
  /// index. No-op Ok when spill is off or no round has been spilled.
  Status SyncSpill();

  /// The spill writer, for observability (rounds, bytes). Null until
  /// the first spilled round, and always null when spill is off.
  const RoundLogWriter* spill_writer() const { return spill_writer_.get(); }

  /// Serializes the engine state (one kStreamingEngineState chunk):
  /// consumed-round count, per-metric accumulations, and the warm-start
  /// factor cache.
  void SaveState(BinaryWriter* out) const;

  /// Restores a SaveState snapshot taken by an engine with an identical
  /// (num_clients, request) — enforced via fingerprint. The first
  /// Snapshot() after a restore re-solves (warm from the restored
  /// factors). On an error Status the engine may be left partially
  /// restored: discard it and construct a fresh engine to retry.
  Status RestoreState(BinaryReader* in);

 private:
  uint64_t ConfigFingerprint() const;
  /// Points the sampled recorder's surrogate at the current factors
  /// (no-op unless config_.surrogate_screening and a sampled recorder
  /// and factors exist). Called after every solve and after a restore.
  void ArmSurrogate();
  /// Appends `record` to the round log, lazily opening the writer —
  /// Create on a fresh stream, OpenForAppend(rounds_consumed_) when
  /// resuming over an existing log. Failures degrade health instead of
  /// poisoning the stream.
  void SpillRound(const RoundRecord& record);

  const Model* model_;
  const Dataset* test_data_;
  int num_clients_;
  StreamingConfig config_;

  std::unique_ptr<FedSvEvaluator> fedsv_;
  std::unique_ptr<ComFedSvEvaluator> comfedsv_;
  std::unique_ptr<GroundTruthEvaluator> ground_truth_;

  int rounds_consumed_ = 0;
  std::vector<double> test_loss_history_;
  StreamingHealth health_;

  // Warm-start cache: factors and output of the last snapshot solve.
  std::optional<FactorPair> factors_;
  std::optional<ComFedSvOutput> last_output_;
  int last_solve_round_ = -1;

  // Spill mode: lazily opened round-log writer. After RestoreState the
  // writer is reset so the next spilled round realigns the log (via
  // OpenForAppend truncation) with the restored position.
  std::unique_ptr<RoundLogWriter> spill_writer_;
  // Log position recorded by the restored checkpoint: the realigned log
  // must land on exactly these bytes. -1 = no pending verification.
  int restored_spill_rounds_ = -1;
  uint64_t restored_spill_bytes_ = 0;
};

}  // namespace comfedsv

#endif  // COMFEDSV_CORE_STREAMING_H_
