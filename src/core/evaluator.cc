#include "core/evaluator.h"

#include "common/check.h"
#include "common/stopwatch.h"
#include "core/comfedsv_values.h"
#include "shapley/shapley.h"

namespace comfedsv {
namespace {

// U_t(empty) = 0 is a definition (u_t(w^t) = 0), and the downstream
// formulas read the empty coalition's *factor-predicted* value as their
// baseline — so the completed factors must honor the convention. Every
// round observes (t, empty, 0), which under the default ALS solver
// already forces the empty column's factor row to exactly zero (its
// ridge normal equations have a zero right-hand side, and the LDL^T
// substitutions of a zero vector are exact), but CCD++ and SGD only
// drive it toward zero. Zeroing the row here aligns every solver with
// MonteCarloShapley's and RoundUtility's hardcoded U(empty) = 0 — and is
// bit-identical for ALS, where the row is already +0.0.
void PinEmptyColumnFactor(int empty_col, Matrix* h) {
  COMFEDSV_CHECK_GE(empty_col, 0);
  COMFEDSV_CHECK_LT(static_cast<size_t>(empty_col), h->rows());
  double* row = h->RowPtr(empty_col);
  for (size_t k = 0; k < h->cols(); ++k) row[k] = 0.0;
}

}  // namespace

ComFedSvEvaluator::ComFedSvEvaluator(const Model* model,
                                     const Dataset* test_data,
                                     int num_clients, ComFedSvConfig config,
                                     ExecutionContext* ctx)
    : model_(model),
      test_data_(test_data),
      num_clients_(num_clients),
      config_(config),
      ctx_(ctx) {
  COMFEDSV_CHECK(model_ != nullptr);
  COMFEDSV_CHECK(test_data_ != nullptr);
  COMFEDSV_CHECK_GT(num_clients_, 0);
  if (config_.mode == ComFedSvConfig::Mode::kFull) {
    full_recorder_ = std::make_unique<ObservedUtilityRecorder>(
        model_, test_data_, num_clients_, ctx_);
  } else {
    const int budget =
        config_.num_permutations > 0
            ? config_.num_permutations
            : RoundBudgetForSampler(config_.sampler,
                                    DefaultPermutationBudget(num_clients_));
    sampled_recorder_ = std::make_unique<SampledUtilityRecorder>(
        model_, test_data_, num_clients_, budget, config_.seed,
        config_.sampler, ctx_);
  }
}

void ComFedSvEvaluator::OnRound(const RoundRecord& record) {
  if (full_recorder_ != nullptr) {
    full_recorder_->OnRound(record);
  } else {
    sampled_recorder_->OnRound(record);
  }
}

Result<ComFedSvOutput> ComFedSvEvaluator::Finalize() const {
  return FinalizeImpl(nullptr, 0);
}

Result<ComFedSvOutput> ComFedSvEvaluator::FinalizeWarm(
    const FactorPair& warm, int max_iters_override) const {
  return FinalizeImpl(&warm, max_iters_override);
}

Result<ComFedSvOutput> ComFedSvEvaluator::FinalizeImpl(
    const FactorPair* warm, int max_iters_override) const {
  Stopwatch timer;
  ComFedSvOutput out;
  CompletionConfig completion_config = config_.completion;
  if (max_iters_override > 0) {
    completion_config.max_iters = max_iters_override;
  }
  auto solve = [&](const ObservationSet& obs) {
    return warm != nullptr
               ? CompleteMatrixWarm(obs, completion_config, *warm, ctx_)
               : CompleteMatrix(obs, completion_config, ctx_);
  };

  if (full_recorder_ != nullptr) {
    if (full_recorder_->rounds_recorded() == 0) {
      return Status::FailedPrecondition("no rounds recorded");
    }
    ObservationSet obs = full_recorder_->BuildObservations();
    out.observed_density = obs.Density();
    out.num_columns = obs.num_cols();
    Stopwatch completion_timer;
    Result<CompletionResult> completion = solve(obs);
    out.completion_seconds = completion_timer.ElapsedSeconds();
    if (!completion.ok()) return completion.status();
    PinEmptyColumnFactor(
        full_recorder_->interner().Find(Coalition(num_clients_)),
        &completion.value().h);
    Result<Vector> values =
        ComFedSvFromFactors(completion.value().w, completion.value().h,
                            full_recorder_->interner(), num_clients_);
    if (!values.ok()) return values.status();
    out.values = std::move(values).value();
    out.completion = std::move(completion).value();
    out.loss_calls = full_recorder_->loss_calls();
    out.stats = full_recorder_->stats();
    out.seconds = full_recorder_->seconds() + timer.ElapsedSeconds();
    return out;
  }

  if (sampled_recorder_->rounds_recorded() == 0) {
    return Status::FailedPrecondition("no rounds recorded");
  }
  ObservationSet obs = sampled_recorder_->BuildObservations();
  out.observed_density = obs.Density();
  out.num_columns = obs.num_cols();
  Stopwatch completion_timer;
  Result<CompletionResult> completion = solve(obs);
  out.completion_seconds = completion_timer.ElapsedSeconds();
  if (!completion.ok()) return completion.status();
  PinEmptyColumnFactor(sampled_recorder_->prefix_columns()[0][0],
                       &completion.value().h);
  Result<Vector> values = ComFedSvSampled(
      completion.value().w, completion.value().h,
      sampled_recorder_->permutations(),
      sampled_recorder_->prefix_columns(), num_clients_);
  if (!values.ok()) return values.status();
  out.values = std::move(values).value();
  out.completion = std::move(completion).value();
  out.loss_calls = sampled_recorder_->loss_calls();
  out.stats = sampled_recorder_->stats();
  out.seconds = sampled_recorder_->seconds() + timer.ElapsedSeconds();
  return out;
}

GroundTruthEvaluator::GroundTruthEvaluator(const Model* model,
                                           const Dataset* test_data,
                                           int num_clients,
                                           ExecutionContext* ctx)
    : num_clients_(num_clients),
      recorder_(model, test_data, num_clients, ctx) {}

Result<Vector> GroundTruthEvaluator::Finalize() const {
  // Reachable when every round had an empty selected set (Bernoulli-style
  // selection): nothing was recorded, so there is nothing to evaluate.
  if (recorder_.rounds_recorded() == 0) {
    return Status::FailedPrecondition("no rounds recorded");
  }
  return ComFedSvFromFullMatrix(recorder_.ToMatrix(), num_clients_);
}

}  // namespace comfedsv
