// One-call valuation pipeline (Fig. 4 of the paper): run FedAvg once and
// compute any combination of FedSV, ComFedSV, and the ground truth on the
// *same* training trajectory — exactly the paper's comparison protocol
// ("the global models will be the same for all three metrics").
#ifndef COMFEDSV_CORE_PIPELINE_H_
#define COMFEDSV_CORE_PIPELINE_H_

#include <optional>
#include <vector>

#include "common/execution_context.h"
#include "core/checkpointing.h"
#include "core/evaluator.h"
#include "fl/fedavg.h"
#include "shapley/fedsv.h"

namespace comfedsv {

/// Which valuation metrics to compute during the run.
struct ValuationRequest {
  bool compute_fedsv = true;
  FedSvConfig fedsv;

  bool compute_comfedsv = true;
  ComFedSvConfig comfedsv;

  /// Ground truth needs num_clients <= 16 (full 2^N recording).
  bool compute_ground_truth = false;
};

/// Everything a valuation run produces.
struct ValuationOutcome {
  TrainingResult training;

  std::optional<Vector> fedsv_values;
  int64_t fedsv_loss_calls = 0;
  double fedsv_seconds = 0.0;
  /// Measured FedSV evaluation accounting (loss calls, batch passes,
  /// memo hits); ComFedSV's equivalent rides inside `comfedsv->stats`.
  UtilityStats fedsv_stats;

  std::optional<ComFedSvOutput> comfedsv;

  std::optional<Vector> ground_truth_values;
  int64_t ground_truth_loss_calls = 0;

  /// Populated by RunValuationCheckpointed only: how checkpoint I/O
  /// fared (failed saves survived in degraded mode, salvage activity at
  /// resume). See CheckpointHealth in core/checkpointing.h.
  std::optional<CheckpointHealth> checkpoint_health;
};

/// Runs FedAvg over `client_data` and evaluates the requested metrics.
/// `model` must outlive the call. When the request includes ComFedSV in
/// kFull mode or the ground truth, `fed_config.select_all_first_round`
/// must be true (Assumption 1).
///
/// `ctx` (optional) parallelizes the whole pipeline — local client
/// updates, per-round Shapley sampling and utility recording, and the
/// completion solve. All valuation outputs are bit-identical for any
/// thread count (tests/determinism_test.cc).
Result<ValuationOutcome> RunValuation(const Model& model,
                                      std::vector<Dataset> client_data,
                                      Dataset test_data,
                                      const FedAvgConfig& fed_config,
                                      const ValuationRequest& request,
                                      ExecutionContext* ctx = nullptr);

/// RunValuation with crash-safe checkpointing: the run saves its
/// complete state (trainer + every evaluator) to `checkpoint.path` every
/// `checkpoint.every_rounds` rounds, and — when `checkpoint.resume` is
/// set and the file exists — restarts from the checkpointed round
/// instead of round 0. A resumed run produces final values bit-identical
/// to an uninterrupted one (tests/determinism_test.cc): per-round
/// randomness derives from (seed, round, client), and every sequential
/// stream is part of the checkpoint. Resuming under a different
/// config/data/model/request is an error, not a silent restart.
Result<ValuationOutcome> RunValuationCheckpointed(
    const Model& model, std::vector<Dataset> client_data, Dataset test_data,
    const FedAvgConfig& fed_config, const ValuationRequest& request,
    const CheckpointConfig& checkpoint, ExecutionContext* ctx = nullptr);

/// Re-values a trajectory from a round log (io/round_log.h) instead of
/// training: every record is served from disk — one frame resident at a
/// time, plus the reader's mmap window — and fed through a streaming
/// engine whose Finalize() is the batch-equivalent read. On a log
/// written with lossless encoding (kNone, kXorDelta) the outputs are
/// bit-identical to the RunValuation that produced the trajectory, for
/// any thread count; kQuant16 drifts by the quantization step
/// (bench/roundlog.cc measures it). The log must be complete: a spill
/// run that degraded mid-stream leaves gaps that surface here as a
/// shorter round count.
Result<ValuationOutcome> RunValuationFromLog(
    const Model& model, const Dataset& test_data, int num_clients,
    const std::string& log_path, const ValuationRequest& request,
    const RoundLogReadOptions& read_options = {},
    ExecutionContext* ctx = nullptr);

}  // namespace comfedsv

#endif  // COMFEDSV_CORE_PIPELINE_H_
