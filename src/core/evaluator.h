// High-level valuation evaluators. Each plugs into FedAvgTrainer::Train
// as a RoundObserver and is finalized after training:
//
//   * ComFedSvEvaluator   — the paper's contribution. Records observable
//     utilities (full Def. 4 columns or Algorithm 1 sampled prefixes),
//     completes the utility matrix, and evaluates the ComFedSV formula.
//   * GroundTruthEvaluator — ComFedSV computed from the *fully observed*
//     utility matrix (Eq. 14), the reference the paper compares against.
//
// FedSvEvaluator (the baseline) lives in shapley/fedsv.h.
#ifndef COMFEDSV_CORE_EVALUATOR_H_
#define COMFEDSV_CORE_EVALUATOR_H_

#include <memory>
#include <optional>

#include "common/execution_context.h"
#include "completion/solver.h"
#include "core/recorders.h"
#include "fl/round_record.h"
#include "shapley/sampler.h"

namespace comfedsv {

/// Configuration of the ComFedSV pipeline.
struct ComFedSvConfig {
  enum class Mode {
    /// Exact Def. 4: columns for all 2^N coalitions. Needs N <= 16 and
    /// Assumption 1. The setting of the paper's 10-client experiments.
    kFull,
    /// Algorithm 1: Monte-Carlo permutation sampling; scales to 100+
    /// clients (Figs. 7, 8).
    kSampled,
  };
  Mode mode = Mode::kFull;
  CompletionConfig completion;
  /// Permutation count M for kSampled; 0 = DefaultPermutationBudget(N),
  /// the O(N log N) budget from Sec. VI-E.
  int num_permutations = 0;
  /// kSampled only: how Algorithm 1's permutations are drawn (uniform
  /// IID, antithetic pairs, position-stratified, or truncated per-round
  /// prefix recording — see shapley/sampler.h).
  SamplerConfig sampler;
  uint64_t seed = 0;
};

/// Output of a finalized ComFedSV evaluation.
struct ComFedSvOutput {
  Vector values;                ///< per-client ComFedSV
  CompletionResult completion;  ///< the fitted factors and diagnostics
  double observed_density = 0.0;  ///< fraction of matrix entries observed
  int num_columns = 0;            ///< columns in the completion problem
  int64_t loss_calls = 0;         ///< test-loss evaluations spent
  double seconds = 0.0;           ///< recording + completion + formula time
  double completion_seconds = 0.0;  ///< wall time inside CompleteMatrix
  /// Measured evaluation accounting from the active recorder: loss
  /// calls, batch passes, memo hits, and — under surrogate screening —
  /// skips and the accumulated skip-bias bound.
  UtilityStats stats;
};

/// Observer-plus-finalizer implementing ComFedSV end to end.
class ComFedSvEvaluator : public RoundObserver {
 public:
  /// `ctx` (optional; must outlive the evaluator) parallelizes both
  /// phases — per-round utility recording and the ALS completion solve —
  /// with outputs identical for any thread count.
  ComFedSvEvaluator(const Model* model, const Dataset* test_data,
                    int num_clients, ComFedSvConfig config,
                    ExecutionContext* ctx = nullptr);

  void OnRound(const RoundRecord& record) override;

  /// Completes the utility matrix and evaluates ComFedSV. May be called
  /// after any number of recorded rounds (the streaming engine calls it
  /// per snapshot); the classic pipeline calls it once, after training.
  Result<ComFedSvOutput> Finalize() const;

  /// As Finalize(), but warm-starting the completion solve from `warm`
  /// (CompleteMatrixWarm: factors of a previous snapshot's solve over a
  /// prefix of the current rounds/columns) and, when `max_iters_override`
  /// is positive, capping the solver sweeps at it. The streaming
  /// engine's cheap-refresh path.
  Result<ComFedSvOutput> FinalizeWarm(const FactorPair& warm,
                                      int max_iters_override) const;

  int num_clients() const { return num_clients_; }

  /// The active recorder, per config mode (the other getter returns
  /// null). Exposed for checkpoint save/restore and for the streaming
  /// engine's incremental observation access.
  ObservedUtilityRecorder* full_recorder() { return full_recorder_.get(); }
  const ObservedUtilityRecorder* full_recorder() const {
    return full_recorder_.get();
  }
  SampledUtilityRecorder* sampled_recorder() {
    return sampled_recorder_.get();
  }
  const SampledUtilityRecorder* sampled_recorder() const {
    return sampled_recorder_.get();
  }

 private:
  Result<ComFedSvOutput> FinalizeImpl(const FactorPair* warm,
                                      int max_iters_override) const;

  const Model* model_;
  const Dataset* test_data_;
  int num_clients_;
  ComFedSvConfig config_;
  ExecutionContext* ctx_;  // not owned; null = inline execution
  // Exactly one of these is active, per config_.mode.
  std::unique_ptr<ObservedUtilityRecorder> full_recorder_;
  std::unique_ptr<SampledUtilityRecorder> sampled_recorder_;
};

/// Ground-truth ComFedSV (Eq. 14) via exhaustive utility recording.
class GroundTruthEvaluator : public RoundObserver {
 public:
  /// `ctx` (optional) parallelizes the exhaustive per-round utility
  /// recording.
  GroundTruthEvaluator(const Model* model, const Dataset* test_data,
                       int num_clients, ExecutionContext* ctx = nullptr);

  void OnRound(const RoundRecord& record) override {
    recorder_.OnRound(record);
  }

  /// Per-client ground-truth values. Call after training.
  Result<Vector> Finalize() const;

  /// The full T x 2^N utility matrix (Figs. 2 and 3 analyse it directly).
  Matrix UtilityMatrix() const { return recorder_.ToMatrix(); }

  int64_t loss_calls() const { return recorder_.loss_calls(); }
  double seconds() const { return recorder_.seconds(); }

  /// The underlying recorder, exposed for checkpoint save/restore.
  FullUtilityRecorder* recorder() { return &recorder_; }
  const FullUtilityRecorder* recorder() const { return &recorder_; }

 private:
  int num_clients_;
  FullUtilityRecorder recorder_;
};

}  // namespace comfedsv

#endif  // COMFEDSV_CORE_EVALUATOR_H_
