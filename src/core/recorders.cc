#include "core/recorders.h"

#include <algorithm>
#include <unordered_set>

#include "common/check.h"
#include "common/stopwatch.h"
#include "shapley/utility.h"

namespace comfedsv {
namespace {
constexpr int kMaxFullClients = 16;
}  // namespace

FullUtilityRecorder::FullUtilityRecorder(const Model* model,
                                         const Dataset* test_data,
                                         int num_clients,
                                         ExecutionContext* ctx)
    : model_(model),
      test_data_(test_data),
      num_clients_(num_clients),
      ctx_(ctx) {
  COMFEDSV_CHECK(model_ != nullptr);
  COMFEDSV_CHECK(test_data_ != nullptr);
  COMFEDSV_CHECK_GT(num_clients_, 0);
  COMFEDSV_CHECK_LE(num_clients_, kMaxFullClients);
}

void FullUtilityRecorder::OnRound(const RoundRecord& record) {
  Stopwatch timer;
  RoundUtility utility(model_, test_data_, &record, &loss_calls_, ctx_);
  const uint32_t num_cols = 1u << num_clients_;
  // Submit all 2^N - 1 coalitions in mask order: the batched engine
  // evaluates whole chunks per pass over the test set (parallelized over
  // fixed sub-blocks), and the reads below are cache hits.
  std::vector<Coalition> coalitions;
  coalitions.reserve(num_cols - 1);
  for (uint32_t mask = 1; mask < num_cols; ++mask) {
    Coalition c(num_clients_);
    for (int k = 0; k < num_clients_; ++k) {
      if (mask & (1u << k)) c.Add(k);
    }
    coalitions.push_back(std::move(c));
  }
  utility.EvaluateBatch(coalitions);
  std::vector<double> row(num_cols, 0.0);
  for (uint32_t mask = 1; mask < num_cols; ++mask) {
    row[mask] = utility.Utility(coalitions[mask - 1]);
  }
  rows_.push_back(std::move(row));
  seconds_ += timer.ElapsedSeconds();
}

Matrix FullUtilityRecorder::ToMatrix() const {
  COMFEDSV_CHECK(!rows_.empty());
  const size_t cols = rows_[0].size();
  Matrix out(rows_.size(), cols);
  for (size_t t = 0; t < rows_.size(); ++t) {
    COMFEDSV_CHECK_EQ(rows_[t].size(), cols);
    std::copy(rows_[t].begin(), rows_[t].end(), out.RowPtr(t));
  }
  return out;
}

ObservedUtilityRecorder::ObservedUtilityRecorder(const Model* model,
                                                 const Dataset* test_data,
                                                 int num_clients,
                                                 ExecutionContext* ctx)
    : model_(model),
      test_data_(test_data),
      num_clients_(num_clients),
      ctx_(ctx) {
  COMFEDSV_CHECK(model_ != nullptr);
  COMFEDSV_CHECK(test_data_ != nullptr);
  COMFEDSV_CHECK_GT(num_clients_, 0);
  // Anchor the empty coalition as column 0.
  interner_.Intern(Coalition(num_clients_));
}

void ObservedUtilityRecorder::OnRound(const RoundRecord& record) {
  Stopwatch timer;
  const int t = rounds_recorded_;
  const int m = static_cast<int>(record.selected.size());
  COMFEDSV_CHECK_LE(m, 20);  // 2^m utility evaluations below
  RoundUtility utility(model_, test_data_, &record, &loss_calls_, ctx_);

  // Evaluate all 2^m - 1 non-empty observable utilities through the
  // batched engine (a few test-set passes instead of one per coalition),
  // then intern and append sequentially in mask order so column ids
  // never depend on thread scheduling.
  const int num_masks = (1 << m) - 1;
  std::vector<Coalition> coalitions;
  coalitions.reserve(num_masks);
  for (int i = 0; i < num_masks; ++i) {
    const uint32_t mask = static_cast<uint32_t>(i) + 1;
    Coalition c(num_clients_);
    for (int p = 0; p < m; ++p) {
      if (mask & (1u << p)) c.Add(record.selected[p]);
    }
    coalitions.push_back(std::move(c));
  }
  utility.EvaluateBatch(coalitions);

  // The empty coalition is observed at 0 every round (u_t(w^t) = 0).
  triplets_.reserve(triplets_.size() + static_cast<size_t>(num_masks) + 1);
  triplets_.push_back({t, 0, 0.0});
  for (int i = 0; i < num_masks; ++i) {
    const int col = interner_.Intern(coalitions[i]);
    triplets_.push_back({t, col, utility.Utility(coalitions[i])});
  }
  ++rounds_recorded_;
  seconds_ += timer.ElapsedSeconds();
}

ObservationSet ObservedUtilityRecorder::BuildObservations() const {
  COMFEDSV_CHECK_GT(rounds_recorded_, 0);
  ObservationSet obs(rounds_recorded_, interner_.size());
  obs.AddAll(triplets_);
  obs.Finalize();
  return obs;
}

SampledUtilityRecorder::SampledUtilityRecorder(const Model* model,
                                               const Dataset* test_data,
                                               int num_clients,
                                               int num_permutations,
                                               uint64_t seed,
                                               ExecutionContext* ctx)
    : model_(model),
      test_data_(test_data),
      num_clients_(num_clients),
      ctx_(ctx) {
  COMFEDSV_CHECK(model_ != nullptr);
  COMFEDSV_CHECK(test_data_ != nullptr);
  COMFEDSV_CHECK_GT(num_clients_, 0);
  COMFEDSV_CHECK_GT(num_permutations, 0);

  Rng rng(seed ^ 0x414C4731ULL);  // "ALG1"
  permutations_.reserve(num_permutations);
  prefix_columns_.reserve(num_permutations);
  for (int p = 0; p < num_permutations; ++p) {
    permutations_.push_back(rng.Permutation(num_clients_));
  }
  // Intern every prefix of every permutation; identical prefixes across
  // permutations (e.g. the empty prefix) share a column.
  for (const std::vector<int>& perm : permutations_) {
    std::vector<int> cols;
    cols.reserve(num_clients_ + 1);
    Coalition prefix(num_clients_);
    cols.push_back(interner_.Intern(prefix));
    for (int member : perm) {
      prefix.Add(member);
      cols.push_back(interner_.Intern(prefix));
    }
    prefix_columns_.push_back(std::move(cols));
  }
}

void SampledUtilityRecorder::OnRound(const RoundRecord& record) {
  Stopwatch timer;
  const int t = rounds_recorded_;
  RoundUtility utility(model_, test_data_, &record, &loss_calls_, ctx_);
  const Coalition selected =
      Coalition::FromMembers(num_clients_, record.selected);

  // Discover the distinct observable prefixes first (cheap — no loss
  // evaluations), deduped in permutation order: several permutations
  // share short prefixes. The discovery order is sequential, so the
  // recorded triplet order is deterministic for any thread count.
  struct PendingPrefix {
    int col = 0;
    Coalition coalition;
  };
  std::vector<PendingPrefix> pending;
  std::unordered_set<int> seen;
  seen.insert(prefix_columns_[0][0]);  // empty prefix, recorded at 0
  for (size_t m = 0; m < permutations_.size(); ++m) {
    Coalition prefix(num_clients_);
    for (int l = 0; l < num_clients_; ++l) {
      const int member = permutations_[m][l];
      if (!selected.Contains(member)) break;  // longer prefixes fail too
      prefix.Add(member);
      const int col = prefix_columns_[m][l + 1];
      if (seen.insert(col).second) pending.push_back({col, prefix});
    }
  }

  // Evaluate the distinct prefixes through the batched engine: a few
  // test-set passes instead of one per prefix.
  std::vector<Coalition> coalitions;
  coalitions.reserve(pending.size());
  for (const PendingPrefix& p : pending) coalitions.push_back(p.coalition);
  utility.EvaluateBatch(coalitions);

  triplets_.reserve(triplets_.size() + pending.size() + 1);
  triplets_.push_back({t, prefix_columns_[0][0], 0.0});
  for (size_t i = 0; i < pending.size(); ++i) {
    triplets_.push_back({t, pending[i].col, utility.Utility(coalitions[i])});
  }
  ++rounds_recorded_;
  seconds_ += timer.ElapsedSeconds();
}

ObservationSet SampledUtilityRecorder::BuildObservations() const {
  COMFEDSV_CHECK_GT(rounds_recorded_, 0);
  ObservationSet obs(rounds_recorded_, interner_.size());
  obs.AddAll(triplets_);
  obs.Finalize();
  return obs;
}

}  // namespace comfedsv
