#include "core/recorders.h"

#include <algorithm>
#include <cmath>
#include <unordered_set>

#include "common/check.h"
#include "common/stopwatch.h"
#include "shapley/utility.h"

namespace comfedsv {
namespace {
constexpr int kMaxFullClients = 16;
}  // namespace

FullUtilityRecorder::FullUtilityRecorder(const Model* model,
                                         const Dataset* test_data,
                                         int num_clients,
                                         ExecutionContext* ctx)
    : model_(model),
      test_data_(test_data),
      num_clients_(num_clients),
      ctx_(ctx) {
  COMFEDSV_CHECK(model_ != nullptr);
  COMFEDSV_CHECK(test_data_ != nullptr);
  COMFEDSV_CHECK_GT(num_clients_, 0);
  COMFEDSV_CHECK_LE(num_clients_, kMaxFullClients);
}

void FullUtilityRecorder::OnRound(const RoundRecord& record) {
  // A round with no selected clients contributes zero to every valuation
  // metric (the FedSV evaluators skip it too): record nothing.
  if (record.selected.empty()) return;
  Stopwatch timer;
  RoundUtility utility(model_, test_data_, &record, &loss_calls_, ctx_,
                       &stats_);
  const uint32_t num_cols = 1u << num_clients_;
  // Submit all 2^N - 1 coalitions in mask order: the batched engine
  // evaluates whole chunks per pass over the test set (parallelized over
  // fixed sub-blocks), and the reads below are cache hits.
  std::vector<Coalition> coalitions;
  coalitions.reserve(num_cols - 1);
  for (uint32_t mask = 1; mask < num_cols; ++mask) {
    Coalition c(num_clients_);
    for (int k = 0; k < num_clients_; ++k) {
      if (mask & (1u << k)) c.Add(k);
    }
    coalitions.push_back(std::move(c));
  }
  utility.EvaluateBatch(coalitions);
  std::vector<double> row(num_cols, 0.0);
  for (uint32_t mask = 1; mask < num_cols; ++mask) {
    row[mask] = utility.Utility(coalitions[mask - 1]);
  }
  rows_.push_back(std::move(row));
  seconds_ += timer.ElapsedSeconds();
}

FullRecorderState FullUtilityRecorder::SaveState() const {
  return {rows_, loss_calls_, seconds_};
}

Status FullUtilityRecorder::RestoreState(FullRecorderState state) {
  const size_t expected_cols = 1u << num_clients_;
  for (const std::vector<double>& row : state.rows) {
    if (row.size() != expected_cols) {
      return Status::InvalidArgument(
          "full recorder state row width does not match 2^num_clients");
    }
  }
  if (state.loss_calls < 0) {
    return Status::InvalidArgument("full recorder state loss_calls "
                                   "negative");
  }
  rows_ = std::move(state.rows);
  loss_calls_ = state.loss_calls;
  seconds_ = state.seconds;
  return Status::Ok();
}

Matrix FullUtilityRecorder::ToMatrix() const {
  COMFEDSV_CHECK(!rows_.empty());
  const size_t cols = rows_[0].size();
  Matrix out(rows_.size(), cols);
  for (size_t t = 0; t < rows_.size(); ++t) {
    COMFEDSV_CHECK_EQ(rows_[t].size(), cols);
    std::copy(rows_[t].begin(), rows_[t].end(), out.RowPtr(t));
  }
  return out;
}

ObservedUtilityRecorder::ObservedUtilityRecorder(const Model* model,
                                                 const Dataset* test_data,
                                                 int num_clients,
                                                 ExecutionContext* ctx)
    : model_(model),
      test_data_(test_data),
      num_clients_(num_clients),
      ctx_(ctx) {
  COMFEDSV_CHECK(model_ != nullptr);
  COMFEDSV_CHECK(test_data_ != nullptr);
  COMFEDSV_CHECK_GT(num_clients_, 0);
  // Anchor the empty coalition as column 0.
  interner_.Intern(Coalition(num_clients_));
}

void ObservedUtilityRecorder::OnRound(const RoundRecord& record) {
  // Nothing is observable in a round with no selected clients: skip it
  // (no triplets, no row) rather than emitting an all-empty row.
  if (record.selected.empty()) return;
  Stopwatch timer;
  const int t = rounds_recorded_;
  const int m = static_cast<int>(record.selected.size());
  COMFEDSV_CHECK_LE(m, 20);  // 2^m utility evaluations below
  RoundUtility utility(model_, test_data_, &record, &loss_calls_, ctx_,
                       &stats_);

  // Evaluate all 2^m - 1 non-empty observable utilities through the
  // batched engine (a few test-set passes instead of one per coalition),
  // then intern and append sequentially in mask order so column ids
  // never depend on thread scheduling.
  const int num_masks = (1 << m) - 1;
  std::vector<Coalition> coalitions;
  coalitions.reserve(num_masks);
  for (int i = 0; i < num_masks; ++i) {
    const uint32_t mask = static_cast<uint32_t>(i) + 1;
    Coalition c(num_clients_);
    for (int p = 0; p < m; ++p) {
      if (mask & (1u << p)) c.Add(record.selected[p]);
    }
    coalitions.push_back(std::move(c));
  }
  utility.EvaluateBatch(coalitions);

  // The empty coalition is observed at 0 every round (u_t(w^t) = 0).
  triplets_.reserve(triplets_.size() + static_cast<size_t>(num_masks) + 1);
  triplets_.push_back({t, 0, 0.0});
  for (int i = 0; i < num_masks; ++i) {
    const int col = interner_.Intern(coalitions[i]);
    triplets_.push_back({t, col, utility.Utility(coalitions[i])});
  }
  ++rounds_recorded_;
  seconds_ += timer.ElapsedSeconds();
}

ObservationSet ObservedUtilityRecorder::BuildObservations() const {
  COMFEDSV_CHECK_GT(rounds_recorded_, 0);
  ObservationSet obs(rounds_recorded_, interner_.size());
  obs.AddAll(triplets_);
  obs.Finalize();
  return obs;
}

ObservedRecorderState ObservedUtilityRecorder::SaveState() const {
  return {interner_, triplets_, rounds_recorded_, loss_calls_, seconds_};
}

Status ObservedUtilityRecorder::RestoreState(ObservedRecorderState state) {
  if (state.interner.size() < 1 ||
      state.interner.Get(0).universe_size() != num_clients_ ||
      !state.interner.Get(0).IsEmpty()) {
    return Status::InvalidArgument(
        "observed recorder state interner does not anchor the empty "
        "coalition of this client universe at column 0");
  }
  if (state.rounds_recorded < 0 || state.loss_calls < 0) {
    return Status::InvalidArgument(
        "observed recorder state counters negative");
  }
  for (const Observation& o : state.triplets) {
    if (o.row < 0 || o.row >= state.rounds_recorded || o.col < 0 ||
        o.col >= state.interner.size()) {
      return Status::InvalidArgument(
          "observed recorder state triplet out of range");
    }
  }
  interner_ = std::move(state.interner);
  triplets_ = std::move(state.triplets);
  rounds_recorded_ = state.rounds_recorded;
  loss_calls_ = state.loss_calls;
  seconds_ = state.seconds;
  return Status::Ok();
}

SampledUtilityRecorder::SampledUtilityRecorder(const Model* model,
                                               const Dataset* test_data,
                                               int num_clients,
                                               int num_permutations,
                                               uint64_t seed,
                                               SamplerConfig sampler,
                                               ExecutionContext* ctx)
    : model_(model),
      test_data_(test_data),
      num_clients_(num_clients),
      sampler_(sampler),
      ctx_(ctx),
      position_stats_(num_clients,
                      std::max(1, sampler.adaptive.min_cell_samples)) {
  COMFEDSV_CHECK(model_ != nullptr);
  COMFEDSV_CHECK(test_data_ != nullptr);
  COMFEDSV_CHECK_GT(num_clients_, 0);
  COMFEDSV_CHECK_GT(num_permutations, 0);
  if (sampler_.kind == SamplerKind::kTruncated) {
    COMFEDSV_CHECK_GE(sampler_.truncation_tolerance, 0.0);
  }

  Rng rng(seed ^ 0x414C4731ULL);  // "ALG1"
  std::vector<int> identity(num_clients_);
  for (int i = 0; i < num_clients_; ++i) identity[i] = i;
  // The reset-between-draws convention reproduces the pre-sampler
  // Rng::Permutation sequence bit for bit in uniform mode.
  permutations_ = DrawOrderings(sampler_, identity, num_permutations, &rng,
                                /*reset_between_draws=*/true);
  prefix_columns_.reserve(num_permutations);
  // Intern every prefix of every permutation; identical prefixes across
  // permutations (e.g. the empty prefix) share a column.
  for (const std::vector<int>& perm : permutations_) {
    std::vector<int> cols;
    cols.reserve(num_clients_ + 1);
    Coalition prefix(num_clients_);
    cols.push_back(interner_.Intern(prefix));
    for (int member : perm) {
      prefix.Add(member);
      cols.push_back(interner_.Intern(prefix));
    }
    prefix_columns_.push_back(std::move(cols));
  }
}

void SampledUtilityRecorder::OnRound(const RoundRecord& record) {
  // Nothing is observable in a round with no selected clients: skip it
  // (no triplets, no row), matching the FedSV evaluators' convention.
  if (record.selected.empty()) return;
  Stopwatch timer;
  const int t = rounds_recorded_;
  RoundUtility utility(model_, test_data_, &record, &loss_calls_, ctx_,
                       &stats_);
  const Coalition selected =
      Coalition::FromMembers(num_clients_, record.selected);

  if (sampler_.kind == SamplerKind::kTruncated) {
    RecordTruncatedRound(t, selected, &utility);
    ++rounds_recorded_;
    seconds_ += timer.ElapsedSeconds();
    return;
  }
  if (ScreeningActive()) {
    RecordScreenedRound(t, selected, &utility);
    ++rounds_recorded_;
    seconds_ += timer.ElapsedSeconds();
    return;
  }

  // Discover the distinct observable prefixes first (cheap — no loss
  // evaluations), deduped in permutation order: several permutations
  // share short prefixes. The discovery order is sequential, so the
  // recorded triplet order is deterministic for any thread count.
  struct PendingPrefix {
    int col = 0;
    Coalition coalition;
  };
  std::vector<PendingPrefix> pending;
  std::unordered_set<int> seen;
  seen.insert(prefix_columns_[0][0]);  // empty prefix, recorded at 0
  for (size_t m = 0; m < permutations_.size(); ++m) {
    Coalition prefix(num_clients_);
    for (int l = 0; l < num_clients_; ++l) {
      const int member = permutations_[m][l];
      if (!selected.Contains(member)) break;  // longer prefixes fail too
      prefix.Add(member);
      const int col = prefix_columns_[m][l + 1];
      if (seen.insert(col).second) pending.push_back({col, prefix});
    }
  }

  // Evaluate the distinct prefixes through the batched engine: a few
  // test-set passes instead of one per prefix.
  std::vector<Coalition> coalitions;
  coalitions.reserve(pending.size());
  for (const PendingPrefix& p : pending) coalitions.push_back(p.coalition);
  utility.EvaluateBatch(coalitions);

  triplets_.reserve(triplets_.size() + pending.size() + 1);
  triplets_.push_back({t, prefix_columns_[0][0], 0.0});
  for (size_t i = 0; i < pending.size(); ++i) {
    triplets_.push_back({t, pending[i].col, utility.Utility(coalitions[i])});
  }
  ++rounds_recorded_;
  seconds_ += timer.ElapsedSeconds();
}

void SampledUtilityRecorder::RecordTruncatedRound(int t,
                                                  const Coalition& selected,
                                                  RoundUtility* utility) {
  // TMC-style truncated recording: walk every permutation's observable
  // prefixes position-by-position in batched waves, and stop *measuring*
  // a permutation once its observed utility is within the tolerance of
  // U_t(I_t). The truncated tail's observable prefixes are still
  // recorded — at the U_t(I_t) reference value, which the truncation
  // premise bounds within the tolerance of their true utilities — but
  // their loss calls are never spent. Recording (rather than skipping)
  // the tail matters for the completion: under Assumption 1 every prefix
  // column is observable in round 0, and a column with no observations
  // at all would keep its random factor initialization and poison the
  // Eq. 12 walk. One extra loss call per round buys the reference. All
  // decisions depend only on utilities, so the recording is identical
  // for any thread count.
  const double selected_utility = utility->Utility(selected);

  struct Walk {
    Coalition prefix;
    bool truncated = false;  // past the tolerance point: record, don't measure
    bool active = true;      // still inside I_t
  };
  std::vector<Walk> walks(permutations_.size());
  for (Walk& w : walks) w.prefix = Coalition(num_clients_);

  std::unordered_set<int> seen;
  seen.insert(prefix_columns_[0][0]);  // empty prefix, recorded at 0
  triplets_.push_back({t, prefix_columns_[0][0], 0.0});

  std::vector<Coalition> wave;
  std::vector<uint8_t> measuring(walks.size());
  for (int l = 0; l < num_clients_; ++l) {
    wave.clear();
    bool any_active = false;
    for (size_t m = 0; m < permutations_.size(); ++m) {
      Walk& w = walks[m];
      measuring[m] = 0;
      if (!w.active) continue;
      const int member = permutations_[m][l];
      if (!selected.Contains(member)) {  // longer prefixes fail too
        w.active = false;
        continue;
      }
      any_active = true;
      w.prefix.Add(member);
      if (!w.truncated) {
        measuring[m] = 1;
        wave.push_back(w.prefix);
      }
    }
    if (!any_active) break;
    if (!wave.empty()) {
      utility->EvaluateBatch(wave);  // dedups within the wave & vs cache
    }

    // Read back in permutation order (deterministic), measuring walks
    // first so a column reached by both a measuring and a truncated walk
    // in the same wave records its measured value; record each column
    // the first time any permutation reaches it, then apply truncation.
    for (size_t m = 0; m < permutations_.size(); ++m) {
      if (!measuring[m]) continue;
      Walk& w = walks[m];
      const double u = utility->Utility(w.prefix);
      const int col = prefix_columns_[m][l + 1];
      if (seen.insert(col).second) triplets_.push_back({t, col, u});
      if (std::abs(selected_utility - u) <= sampler_.truncation_tolerance) {
        w.truncated = true;
      }
    }
    for (size_t m = 0; m < permutations_.size(); ++m) {
      const Walk& w = walks[m];
      if (!w.active || measuring[m]) continue;
      // Tail of a walk truncated in an earlier wave: approximate by the
      // reference value.
      const int col = prefix_columns_[m][l + 1];
      if (seen.insert(col).second) {
        triplets_.push_back({t, col, selected_utility});
      }
    }
  }
}

void SampledUtilityRecorder::SetSurrogatePredictor(
    SurrogatePredictorFn predictor) {
  predictor_ = std::move(predictor);
}

bool SampledUtilityRecorder::ScreeningActive() const {
  return predictor_ != nullptr && sampler_.screen_threshold > 0.0 &&
         sampler_.kind != SamplerKind::kTruncated;
}

void SampledUtilityRecorder::RecordScreenedRound(int t,
                                                 const Coalition& selected,
                                                 RoundUtility* utility) {
  // Surrogate-screened recording: walk every permutation's observable
  // prefixes position-by-position in waves. For each *new* column the
  // factor surrogate predicts U(t, col); if the predicted marginal is
  // confidently negligible and the surrogate is trusted, the column is
  // recorded at the predicted value and its loss call is never spent.
  // Everything else — untrusted bootstrap, large or uncertain marginals,
  // and every screen_audit_every-th eligible column (the audit cycle) —
  // is measured through the batched engine, and each measured column's
  // realized |predicted - measured| updates the error estimate that the
  // trust test and the bias bound are built from. All decisions run
  // sequentially in permutation order on the calling thread, so the
  // recording is identical for any thread count.
  struct Walk {
    Coalition prefix;
    double prev_value = 0.0;  // U of the previous prefix (measured or
                              // predicted); the marginal baseline
    bool active = true;       // still inside I_t
  };
  std::vector<Walk> walks(permutations_.size());
  for (Walk& w : walks) w.prefix = Coalition(num_clients_);

  std::unordered_set<int> seen;
  seen.insert(prefix_columns_[0][0]);  // empty prefix, recorded at 0
  triplets_.push_back({t, prefix_columns_[0][0], 0.0});

  // Per-walk wave bookkeeping: what was decided for the column this walk
  // reached (only the first walk to reach a column owns the decision).
  enum class Decision : uint8_t { kNone, kMeasure, kSkip };
  std::vector<Decision> decision(walks.size());
  std::vector<double> predicted(walks.size(), 0.0);
  std::vector<Coalition> wave;
  for (int l = 0; l < num_clients_; ++l) {
    wave.clear();
    bool any_active = false;
    // Decision pass (sequential): extend each walk, decide measure/skip
    // for columns first reached in this wave.
    for (size_t m = 0; m < permutations_.size(); ++m) {
      Walk& w = walks[m];
      decision[m] = Decision::kNone;
      if (!w.active) continue;
      const int member = permutations_[m][l];
      if (!selected.Contains(member)) {  // longer prefixes fail too
        w.active = false;
        continue;
      }
      any_active = true;
      w.prefix.Add(member);
      const int col = prefix_columns_[m][l + 1];
      if (!seen.insert(col).second) continue;  // another walk owns it
      const double pred = predictor_(t, col);
      predicted[m] = pred;
      const double pred_marginal = pred - w.prev_value;
      const bool trusted =
          audit_error_.count >= sampler_.screen_min_audits &&
          position_stats_.cell(l).count >=
              std::max(1, sampler_.adaptive.min_cell_samples);
      bool skip = false;
      if (trusted && std::abs(pred_marginal) +
                             sampler_.screen_confidence * audit_error_.mean <=
                         sampler_.screen_threshold) {
        ++screen_candidates_;
        // The audit cycle: every k-th eligible column is measured anyway.
        skip = sampler_.screen_audit_every <= 0 ||
               (screen_candidates_ % sampler_.screen_audit_every) != 0;
      }
      if (skip) {
        decision[m] = Decision::kSkip;
      } else {
        decision[m] = Decision::kMeasure;
        wave.push_back(w.prefix);
      }
    }
    if (!any_active) break;
    if (!wave.empty()) {
      utility->EvaluateBatch(wave);  // dedups within the wave & vs cache
    }

    // Read-back pass (sequential, permutation order). Owners record
    // their column — measured owners also feed the error estimate and
    // the position stats; skipped owners record the predicted value and
    // charge the bias bound. Non-owners take the cached value (measured
    // or predicted) as their marginal baseline.
    for (size_t m = 0; m < permutations_.size(); ++m) {
      Walk& w = walks[m];
      if (!w.active) continue;
      const int col = prefix_columns_[m][l + 1];
      switch (decision[m]) {
        case Decision::kMeasure: {
          const double u = utility->Utility(w.prefix);  // cache hit
          triplets_.push_back({t, col, u});
          audit_error_.Add(std::abs(predicted[m] - u));
          position_stats_.Record(l, u - w.prev_value);
          w.prev_value = u;
          break;
        }
        case Decision::kSkip: {
          const double bound =
              sampler_.screen_confidence * audit_error_.mean;
          utility->RecordPredicted(w.prefix, predicted[m], bound);
          triplets_.push_back({t, col, predicted[m]});
          w.prev_value = predicted[m];
          break;
        }
        case Decision::kNone:
          // Column recorded by an earlier walk (this round): the cached
          // value — measured or predicted — is this walk's baseline.
          w.prev_value = utility->Utility(w.prefix);
          break;
      }
    }
  }
}

ObservationSet SampledUtilityRecorder::BuildObservations() const {
  COMFEDSV_CHECK_GT(rounds_recorded_, 0);
  ObservationSet obs(rounds_recorded_, interner_.size());
  obs.AddAll(triplets_);
  obs.Finalize();
  return obs;
}

SampledRecorderState SampledUtilityRecorder::SaveState() const {
  SampledRecorderState state;
  state.triplets = triplets_;
  state.rounds_recorded = rounds_recorded_;
  state.loss_calls = loss_calls_;
  state.seconds = seconds_;
  // Screening decisions depend on this cross-round state, so it must
  // resume bit-identically whenever screening is configured (even if the
  // predictor is not currently armed).
  if (sampler_.screen_threshold > 0.0) {
    state.has_surrogate = true;
    state.audit_error = audit_error_;
    state.screen_candidates = screen_candidates_;
    state.position_cells = position_stats_.cells();
  }
  return state;
}

Status SampledUtilityRecorder::RestoreState(SampledRecorderState state) {
  if (state.rounds_recorded < 0 || state.loss_calls < 0) {
    return Status::InvalidArgument(
        "sampled recorder state counters negative");
  }
  for (const Observation& o : state.triplets) {
    if (o.row < 0 || o.row >= state.rounds_recorded || o.col < 0 ||
        o.col >= interner_.size()) {
      return Status::InvalidArgument(
          "sampled recorder state triplet out of range "
          "(was the recorder built with the same seed/budget/sampler?)");
    }
  }
  if (state.has_surrogate) {
    if (state.audit_error.count < 0 || state.screen_candidates < 0) {
      return Status::InvalidArgument(
          "sampled recorder surrogate state counters negative");
    }
    if (!position_stats_.RestoreCells(state.position_cells)) {
      return Status::InvalidArgument(
          "sampled recorder surrogate state has a different position-cell "
          "count (was the recorder built with the same num_clients?)");
    }
    audit_error_ = state.audit_error;
    screen_candidates_ = state.screen_candidates;
  }
  triplets_ = std::move(state.triplets);
  rounds_recorded_ = state.rounds_recorded;
  loss_calls_ = state.loss_calls;
  seconds_ = state.seconds;
  return Status::Ok();
}

}  // namespace comfedsv
