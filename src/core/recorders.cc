#include "core/recorders.h"

#include <unordered_map>

#include "common/check.h"
#include "common/stopwatch.h"
#include "shapley/utility.h"

namespace comfedsv {
namespace {
constexpr int kMaxFullClients = 16;
}  // namespace

FullUtilityRecorder::FullUtilityRecorder(const Model* model,
                                         const Dataset* test_data,
                                         int num_clients)
    : model_(model), test_data_(test_data), num_clients_(num_clients) {
  COMFEDSV_CHECK(model_ != nullptr);
  COMFEDSV_CHECK(test_data_ != nullptr);
  COMFEDSV_CHECK_GT(num_clients_, 0);
  COMFEDSV_CHECK_LE(num_clients_, kMaxFullClients);
}

void FullUtilityRecorder::OnRound(const RoundRecord& record) {
  Stopwatch timer;
  RoundUtility utility(model_, test_data_, &record, &loss_calls_);
  const uint32_t num_cols = 1u << num_clients_;
  std::vector<double> row(num_cols, 0.0);
  for (uint32_t mask = 1; mask < num_cols; ++mask) {
    Coalition c(num_clients_);
    for (int i = 0; i < num_clients_; ++i) {
      if (mask & (1u << i)) c.Add(i);
    }
    row[mask] = utility.Utility(c);
  }
  rows_.push_back(std::move(row));
  seconds_ += timer.ElapsedSeconds();
}

Matrix FullUtilityRecorder::ToMatrix() const {
  COMFEDSV_CHECK(!rows_.empty());
  const size_t cols = rows_[0].size();
  Matrix out(rows_.size(), cols);
  for (size_t t = 0; t < rows_.size(); ++t) {
    double* dst = out.RowPtr(t);
    for (size_t c = 0; c < cols; ++c) dst[c] = rows_[t][c];
  }
  return out;
}

ObservedUtilityRecorder::ObservedUtilityRecorder(const Model* model,
                                                 const Dataset* test_data,
                                                 int num_clients)
    : model_(model), test_data_(test_data), num_clients_(num_clients) {
  COMFEDSV_CHECK(model_ != nullptr);
  COMFEDSV_CHECK(test_data_ != nullptr);
  COMFEDSV_CHECK_GT(num_clients_, 0);
  // Anchor the empty coalition as column 0.
  interner_.Intern(Coalition(num_clients_));
}

void ObservedUtilityRecorder::OnRound(const RoundRecord& record) {
  Stopwatch timer;
  const int t = rounds_recorded_;
  const int m = static_cast<int>(record.selected.size());
  COMFEDSV_CHECK_LE(m, 20);  // 2^m utility evaluations below
  RoundUtility utility(model_, test_data_, &record, &loss_calls_);

  // The empty coalition is observed at 0 every round (u_t(w^t) = 0).
  triplets_.push_back({t, 0, 0.0});
  for (uint32_t mask = 1; mask < (1u << m); ++mask) {
    Coalition c(num_clients_);
    for (int p = 0; p < m; ++p) {
      if (mask & (1u << p)) c.Add(record.selected[p]);
    }
    const int col = interner_.Intern(c);
    triplets_.push_back({t, col, utility.Utility(c)});
  }
  ++rounds_recorded_;
  seconds_ += timer.ElapsedSeconds();
}

ObservationSet ObservedUtilityRecorder::BuildObservations() const {
  COMFEDSV_CHECK_GT(rounds_recorded_, 0);
  ObservationSet obs(rounds_recorded_, interner_.size());
  for (const Observation& o : triplets_) obs.Add(o.row, o.col, o.value);
  return obs;
}

SampledUtilityRecorder::SampledUtilityRecorder(const Model* model,
                                               const Dataset* test_data,
                                               int num_clients,
                                               int num_permutations,
                                               uint64_t seed)
    : model_(model), test_data_(test_data), num_clients_(num_clients) {
  COMFEDSV_CHECK(model_ != nullptr);
  COMFEDSV_CHECK(test_data_ != nullptr);
  COMFEDSV_CHECK_GT(num_clients_, 0);
  COMFEDSV_CHECK_GT(num_permutations, 0);

  Rng rng(seed ^ 0x414C4731ULL);  // "ALG1"
  permutations_.reserve(num_permutations);
  prefix_columns_.reserve(num_permutations);
  for (int p = 0; p < num_permutations; ++p) {
    permutations_.push_back(rng.Permutation(num_clients_));
  }
  // Intern every prefix of every permutation; identical prefixes across
  // permutations (e.g. the empty prefix) share a column.
  for (const std::vector<int>& perm : permutations_) {
    std::vector<int> cols;
    cols.reserve(num_clients_ + 1);
    Coalition prefix(num_clients_);
    cols.push_back(interner_.Intern(prefix));
    for (int member : perm) {
      prefix.Add(member);
      cols.push_back(interner_.Intern(prefix));
    }
    prefix_columns_.push_back(std::move(cols));
  }
}

void SampledUtilityRecorder::OnRound(const RoundRecord& record) {
  Stopwatch timer;
  const int t = rounds_recorded_;
  RoundUtility utility(model_, test_data_, &record, &loss_calls_);
  const Coalition selected =
      Coalition::FromMembers(num_clients_, record.selected);

  // Per-round dedup: several permutations share short prefixes.
  std::unordered_map<int, double> recorded;
  recorded.emplace(prefix_columns_[0][0], 0.0);  // empty prefix

  for (size_t m = 0; m < permutations_.size(); ++m) {
    Coalition prefix(num_clients_);
    for (int l = 0; l < num_clients_; ++l) {
      const int member = permutations_[m][l];
      if (!selected.Contains(member)) break;  // longer prefixes fail too
      prefix.Add(member);
      const int col = prefix_columns_[m][l + 1];
      if (recorded.count(col)) continue;
      recorded.emplace(col, utility.Utility(prefix));
    }
  }
  for (const auto& [col, value] : recorded) {
    triplets_.push_back({t, col, value});
  }
  ++rounds_recorded_;
  seconds_ += timer.ElapsedSeconds();
}

ObservationSet SampledUtilityRecorder::BuildObservations() const {
  COMFEDSV_CHECK_GT(rounds_recorded_, 0);
  ObservationSet obs(rounds_recorded_, interner_.size());
  for (const Observation& o : triplets_) obs.Add(o.row, o.col, o.value);
  return obs;
}

}  // namespace comfedsv
