#include "core/checkpointing.h"

#include <utility>

#include "common/fingerprint.h"
#include "core/pipeline.h"

namespace comfedsv {
namespace {

void MixSampler(uint64_t* hash, const SamplerConfig& sampler) {
  FingerprintMix(hash, static_cast<uint64_t>(sampler.kind));
  FingerprintMix(hash, sampler.truncation_tolerance);
  // Adaptive allocation and surrogate screening change which coalitions
  // are drawn/recorded, so their knobs must break fingerprint
  // compatibility — but only when the feature is on, so checkpoints from
  // before these knobs existed keep their fingerprints.
  if (sampler.adaptive.enabled) {
    FingerprintMix(hash, uint64_t{0x41444150});  // "ADAP"
    FingerprintMix(hash,
                   static_cast<uint64_t>(sampler.adaptive.pilot_permutations));
    FingerprintMix(hash, static_cast<uint64_t>(sampler.adaptive.waves));
    FingerprintMix(hash,
                   static_cast<uint64_t>(sampler.adaptive.min_cell_samples));
  }
  if (sampler.screen_threshold > 0.0) {
    FingerprintMix(hash, uint64_t{0x53435245});  // "SCRE"
    FingerprintMix(hash, sampler.screen_threshold);
    FingerprintMix(hash, sampler.screen_confidence);
    FingerprintMix(hash, static_cast<uint64_t>(sampler.screen_audit_every));
    FingerprintMix(hash, static_cast<uint64_t>(sampler.screen_min_audits));
  }
}

void MixCompletion(uint64_t* hash, const CompletionConfig& completion) {
  FingerprintMix(hash, static_cast<uint64_t>(completion.rank));
  FingerprintMix(hash, completion.lambda);
  FingerprintMix(hash, static_cast<uint64_t>(completion.max_iters));
  FingerprintMix(hash, completion.tolerance);
  FingerprintMix(hash, static_cast<uint64_t>(completion.solver));
  FingerprintMix(hash, completion.sgd_learning_rate);
  FingerprintMix(hash, completion.init_scale);
  FingerprintMix(hash, completion.temporal_smoothing);
  FingerprintMix(hash, completion.seed);
}

void SaveTriplets(const std::vector<Observation>& triplets,
                  BinaryWriter* out) {
  out->Reserve(triplets.size() * 16 + 8);
  out->U64(triplets.size());
  for (const Observation& o : triplets) {
    out->I32(o.row);
    out->I32(o.col);
    out->F64(o.value);
  }
}

Status LoadTriplets(BinaryReader* in, std::vector<Observation>* triplets) {
  uint64_t count = 0;
  COMFEDSV_RETURN_IF_ERROR(in->Count(16, &count));
  triplets->resize(count);
  for (uint64_t i = 0; i < count; ++i) {
    Observation& o = (*triplets)[i];
    COMFEDSV_RETURN_IF_ERROR(in->I32(&o.row));
    COMFEDSV_RETURN_IF_ERROR(in->I32(&o.col));
    COMFEDSV_RETURN_IF_ERROR(in->F64(&o.value));
  }
  return Status::Ok();
}

// Presence flag + state chunk for one optional evaluator. Restoring a
// checkpoint whose flags disagree with the current request is an error.
Status LoadPresence(BinaryReader* in, bool expected, const char* what) {
  uint8_t present = 0;
  COMFEDSV_RETURN_IF_ERROR(in->U8(&present));
  if (present > 1) {
    return Status::DataLoss("corrupt checkpoint: bad presence flag");
  }
  if ((present != 0) != expected) {
    return Status::FailedPrecondition(
        std::string("checkpoint was saved with a different request: ") +
        what + (expected ? " missing" : " unexpectedly present"));
  }
  return Status::Ok();
}

}  // namespace

uint64_t ValuationFingerprint(const FedAvgTrainer& trainer,
                              const ValuationRequest& request) {
  uint64_t hash = trainer.ConfigFingerprint();
  FingerprintMix(&hash, RequestFingerprint(request));
  return hash;
}

uint64_t RequestFingerprint(const ValuationRequest& request) {
  uint64_t hash = kFingerprintSeed;
  FingerprintMix(&hash, static_cast<uint64_t>(request.compute_fedsv));
  if (request.compute_fedsv) {
    FingerprintMix(&hash, static_cast<uint64_t>(request.fedsv.mode));
    FingerprintMix(&hash, static_cast<uint64_t>(
                              request.fedsv.permutations_per_round));
    MixSampler(&hash, request.fedsv.sampler);
    FingerprintMix(&hash, request.fedsv.seed);
  }
  FingerprintMix(&hash, static_cast<uint64_t>(request.compute_comfedsv));
  if (request.compute_comfedsv) {
    FingerprintMix(&hash, static_cast<uint64_t>(request.comfedsv.mode));
    MixCompletion(&hash, request.comfedsv.completion);
    FingerprintMix(&hash, static_cast<uint64_t>(
                              request.comfedsv.num_permutations));
    MixSampler(&hash, request.comfedsv.sampler);
    FingerprintMix(&hash, request.comfedsv.seed);
  }
  FingerprintMix(&hash,
                 static_cast<uint64_t>(request.compute_ground_truth));
  return hash;
}

void SaveFedSvState(const FedSvEvaluatorState& s, BinaryWriter* out) {
  const size_t handle = out->BeginChunk(ChunkTag::kFedSvState);
  SaveVector(s.values, out);
  SaveRngState(s.rng, out);
  out->I64(s.loss_calls);
  out->EndChunk(handle);
}

Status LoadFedSvState(BinaryReader* in, FedSvEvaluatorState* s) {
  size_t end = 0;
  COMFEDSV_RETURN_IF_ERROR(in->BeginChunk(ChunkTag::kFedSvState, &end));
  FedSvEvaluatorState loaded;
  COMFEDSV_RETURN_IF_ERROR(LoadVector(in, &loaded.values));
  COMFEDSV_RETURN_IF_ERROR(LoadRngState(in, &loaded.rng));
  COMFEDSV_RETURN_IF_ERROR(in->I64(&loaded.loss_calls));
  COMFEDSV_RETURN_IF_ERROR(in->EndChunk(end));
  if (loaded.loss_calls < 0) {
    return Status::DataLoss("corrupt FedSV state: negative "
                                   "loss_calls");
  }
  *s = std::move(loaded);
  return Status::Ok();
}

void SaveFullRecorderState(const FullRecorderState& s, BinaryWriter* out) {
  const size_t handle = out->BeginChunk(ChunkTag::kFullRecorderState);
  out->U64(s.rows.size());
  for (const std::vector<double>& row : s.rows) {
    out->U64(row.size());
    for (double v : row) out->F64(v);
  }
  out->I64(s.loss_calls);
  out->F64(s.seconds);
  out->EndChunk(handle);
}

Status LoadFullRecorderState(BinaryReader* in, FullRecorderState* s) {
  size_t end = 0;
  COMFEDSV_RETURN_IF_ERROR(
      in->BeginChunk(ChunkTag::kFullRecorderState, &end));
  FullRecorderState loaded;
  uint64_t num_rows = 0;
  COMFEDSV_RETURN_IF_ERROR(in->Count(8, &num_rows));
  loaded.rows.resize(num_rows);
  for (uint64_t t = 0; t < num_rows; ++t) {
    uint64_t width = 0;
    COMFEDSV_RETURN_IF_ERROR(in->Count(8, &width));
    loaded.rows[t].resize(width);
    for (uint64_t c = 0; c < width; ++c) {
      COMFEDSV_RETURN_IF_ERROR(in->F64(&loaded.rows[t][c]));
    }
    if (loaded.rows[t].size() != loaded.rows[0].size()) {
      return Status::DataLoss(
          "corrupt full-recorder state: ragged rows");
    }
  }
  COMFEDSV_RETURN_IF_ERROR(in->I64(&loaded.loss_calls));
  COMFEDSV_RETURN_IF_ERROR(in->F64(&loaded.seconds));
  COMFEDSV_RETURN_IF_ERROR(in->EndChunk(end));
  *s = std::move(loaded);
  return Status::Ok();
}

void SaveObservedRecorderState(const ObservedRecorderState& s,
                               BinaryWriter* out) {
  const size_t handle = out->BeginChunk(ChunkTag::kObservedRecorderState);
  SaveInterner(s.interner, out);
  SaveTriplets(s.triplets, out);
  out->I32(s.rounds_recorded);
  out->I64(s.loss_calls);
  out->F64(s.seconds);
  out->EndChunk(handle);
}

Status LoadObservedRecorderState(BinaryReader* in,
                                 ObservedRecorderState* s) {
  size_t end = 0;
  COMFEDSV_RETURN_IF_ERROR(
      in->BeginChunk(ChunkTag::kObservedRecorderState, &end));
  ObservedRecorderState loaded;
  COMFEDSV_RETURN_IF_ERROR(LoadInterner(in, &loaded.interner));
  COMFEDSV_RETURN_IF_ERROR(LoadTriplets(in, &loaded.triplets));
  COMFEDSV_RETURN_IF_ERROR(in->I32(&loaded.rounds_recorded));
  COMFEDSV_RETURN_IF_ERROR(in->I64(&loaded.loss_calls));
  COMFEDSV_RETURN_IF_ERROR(in->F64(&loaded.seconds));
  COMFEDSV_RETURN_IF_ERROR(in->EndChunk(end));
  // Structural validation (triplets against interner/rounds) happens in
  // ObservedUtilityRecorder::RestoreState, which owns the invariants.
  *s = std::move(loaded);
  return Status::Ok();
}

void SaveSampledRecorderState(const SampledRecorderState& s,
                              BinaryWriter* out) {
  const size_t handle = out->BeginChunk(ChunkTag::kSampledRecorderState);
  SaveTriplets(s.triplets, out);
  out->I32(s.rounds_recorded);
  out->I64(s.loss_calls);
  out->F64(s.seconds);
  // Surrogate-screening extension: written only when screening is
  // configured, so non-screening checkpoints keep the exact pre-existing
  // chunk layout (and old files load unchanged). The loader detects the
  // extension by chunk length; MixSampler folds the screening knobs into
  // the fingerprint, so the two layouts can never be confused for the
  // same config.
  if (s.has_surrogate) {
    out->U8(1);
    out->I64(s.audit_error.count);
    out->F64(s.audit_error.mean);
    out->F64(s.audit_error.m2);
    out->I64(s.screen_candidates);
    out->U64(s.position_cells.size());
    for (const WelfordStat& c : s.position_cells) {
      out->I64(c.count);
      out->F64(c.mean);
      out->F64(c.m2);
    }
  }
  out->EndChunk(handle);
}

Status LoadSampledRecorderState(BinaryReader* in,
                                SampledRecorderState* s) {
  size_t end = 0;
  COMFEDSV_RETURN_IF_ERROR(
      in->BeginChunk(ChunkTag::kSampledRecorderState, &end));
  SampledRecorderState loaded;
  COMFEDSV_RETURN_IF_ERROR(LoadTriplets(in, &loaded.triplets));
  COMFEDSV_RETURN_IF_ERROR(in->I32(&loaded.rounds_recorded));
  COMFEDSV_RETURN_IF_ERROR(in->I64(&loaded.loss_calls));
  COMFEDSV_RETURN_IF_ERROR(in->F64(&loaded.seconds));
  if (in->position() < end) {  // surrogate-screening extension present
    uint8_t has_surrogate = 0;
    COMFEDSV_RETURN_IF_ERROR(in->U8(&has_surrogate));
    if (has_surrogate != 1) {
      return Status::DataLoss(
          "corrupt sampled-recorder state: bad surrogate flag");
    }
    loaded.has_surrogate = true;
    COMFEDSV_RETURN_IF_ERROR(in->I64(&loaded.audit_error.count));
    COMFEDSV_RETURN_IF_ERROR(in->F64(&loaded.audit_error.mean));
    COMFEDSV_RETURN_IF_ERROR(in->F64(&loaded.audit_error.m2));
    COMFEDSV_RETURN_IF_ERROR(in->I64(&loaded.screen_candidates));
    uint64_t num_cells = 0;
    COMFEDSV_RETURN_IF_ERROR(in->Count(24, &num_cells));
    loaded.position_cells.resize(num_cells);
    for (WelfordStat& c : loaded.position_cells) {
      COMFEDSV_RETURN_IF_ERROR(in->I64(&c.count));
      COMFEDSV_RETURN_IF_ERROR(in->F64(&c.mean));
      COMFEDSV_RETURN_IF_ERROR(in->F64(&c.m2));
    }
  }
  COMFEDSV_RETURN_IF_ERROR(in->EndChunk(end));
  *s = std::move(loaded);
  return Status::Ok();
}

void SaveEvaluatorStates(const FedSvEvaluator* fedsv,
                         const ComFedSvEvaluator* comfedsv,
                         const GroundTruthEvaluator* ground_truth,
                         BinaryWriter* out) {
  out->U8(fedsv != nullptr ? 1 : 0);
  if (fedsv != nullptr) SaveFedSvState(fedsv->SaveState(), out);
  out->U8(comfedsv != nullptr ? 1 : 0);
  if (comfedsv != nullptr) {
    const bool is_full = comfedsv->full_recorder() != nullptr;
    out->U8(is_full ? 1 : 0);
    if (is_full) {
      SaveObservedRecorderState(comfedsv->full_recorder()->SaveState(),
                                out);
    } else {
      SaveSampledRecorderState(comfedsv->sampled_recorder()->SaveState(),
                               out);
    }
  }
  out->U8(ground_truth != nullptr ? 1 : 0);
  if (ground_truth != nullptr) {
    SaveFullRecorderState(ground_truth->recorder()->SaveState(), out);
  }
}

Status LoadEvaluatorStates(BinaryReader* in, FedSvEvaluator* fedsv,
                           ComFedSvEvaluator* comfedsv,
                           GroundTruthEvaluator* ground_truth) {
  COMFEDSV_RETURN_IF_ERROR(
      LoadPresence(in, fedsv != nullptr, "FedSV state"));
  FedSvEvaluatorState fedsv_state;
  if (fedsv != nullptr) {
    COMFEDSV_RETURN_IF_ERROR(LoadFedSvState(in, &fedsv_state));
  }

  COMFEDSV_RETURN_IF_ERROR(
      LoadPresence(in, comfedsv != nullptr, "ComFedSV state"));
  ObservedRecorderState observed_state;
  SampledRecorderState sampled_state;
  bool comfedsv_is_full = false;
  if (comfedsv != nullptr) {
    uint8_t is_full = 0;
    COMFEDSV_RETURN_IF_ERROR(in->U8(&is_full));
    if (is_full > 1) {
      return Status::DataLoss("corrupt checkpoint: bad mode flag");
    }
    comfedsv_is_full = is_full != 0;
    if (comfedsv_is_full != (comfedsv->full_recorder() != nullptr)) {
      return Status::FailedPrecondition(
          "checkpoint was saved under the other ComFedSV mode");
    }
    if (comfedsv_is_full) {
      COMFEDSV_RETURN_IF_ERROR(
          LoadObservedRecorderState(in, &observed_state));
    } else {
      COMFEDSV_RETURN_IF_ERROR(
          LoadSampledRecorderState(in, &sampled_state));
    }
  }

  COMFEDSV_RETURN_IF_ERROR(
      LoadPresence(in, ground_truth != nullptr, "ground-truth state"));
  FullRecorderState ground_truth_state;
  if (ground_truth != nullptr) {
    COMFEDSV_RETURN_IF_ERROR(
        LoadFullRecorderState(in, &ground_truth_state));
  }

  // Every state chunk parsed — apply. An apply-phase failure (see the
  // header contract) leaves earlier evaluators restored; callers
  // discard the components on any error.
  if (fedsv != nullptr) {
    COMFEDSV_RETURN_IF_ERROR(fedsv->RestoreState(fedsv_state));
  }
  if (comfedsv != nullptr) {
    if (comfedsv_is_full) {
      COMFEDSV_RETURN_IF_ERROR(comfedsv->full_recorder()->RestoreState(
          std::move(observed_state)));
    } else {
      COMFEDSV_RETURN_IF_ERROR(comfedsv->sampled_recorder()->RestoreState(
          std::move(sampled_state)));
    }
  }
  if (ground_truth != nullptr) {
    COMFEDSV_RETURN_IF_ERROR(ground_truth->recorder()->RestoreState(
        std::move(ground_truth_state)));
  }
  return Status::Ok();
}

std::string SerializeValuationCheckpoint(
    uint64_t fingerprint, const FedAvgTrainer& trainer,
    const FedSvEvaluator* fedsv, const ComFedSvEvaluator* comfedsv,
    const GroundTruthEvaluator* ground_truth) {
  BinaryWriter payload;
  const size_t handle =
      payload.BeginChunk(ChunkTag::kValuationCheckpoint);
  payload.U64(fingerprint);
  SaveTrainerState(trainer.SaveState(), &payload);
  SaveEvaluatorStates(fedsv, comfedsv, ground_truth, &payload);
  payload.EndChunk(handle);
  return payload.buffer();
}

Status RestoreValuationCheckpoint(std::string_view payload,
                                  uint64_t fingerprint,
                                  FedAvgTrainer* trainer,
                                  FedSvEvaluator* fedsv,
                                  ComFedSvEvaluator* comfedsv,
                                  GroundTruthEvaluator* ground_truth) {
  BinaryReader reader(payload);
  size_t end = 0;
  COMFEDSV_RETURN_IF_ERROR(
      reader.BeginChunk(ChunkTag::kValuationCheckpoint, &end));
  uint64_t saved_fingerprint = 0;
  COMFEDSV_RETURN_IF_ERROR(reader.U64(&saved_fingerprint));
  if (saved_fingerprint != fingerprint) {
    return Status::FailedPrecondition(
        "checkpoint was saved under a different "
        "config/data/model/request");
  }

  FedAvgTrainerState trainer_state;
  COMFEDSV_RETURN_IF_ERROR(LoadTrainerState(&reader, &trainer_state));
  COMFEDSV_RETURN_IF_ERROR(trainer->RestoreState(trainer_state));
  // Parse-then-apply per evaluator; on error the pipeline is partially
  // restored and the caller must abandon the resume or fully restore
  // another payload over it (the CheckpointManager salvage loop does the
  // latter — each older generation holds a complete state).
  COMFEDSV_RETURN_IF_ERROR(
      LoadEvaluatorStates(&reader, fedsv, comfedsv, ground_truth));
  return reader.EndChunk(end);
}

Status SaveValuationCheckpoint(const std::string& path, uint64_t fingerprint,
                               const FedAvgTrainer& trainer,
                               const FedSvEvaluator* fedsv,
                               const ComFedSvEvaluator* comfedsv,
                               const GroundTruthEvaluator* ground_truth) {
  return WriteCheckpointFile(
      path, ChunkTag::kValuationCheckpoint,
      SerializeValuationCheckpoint(fingerprint, trainer, fedsv, comfedsv,
                                   ground_truth));
}

Status LoadValuationCheckpoint(const std::string& path, uint64_t fingerprint,
                               FedAvgTrainer* trainer,
                               FedSvEvaluator* fedsv,
                               ComFedSvEvaluator* comfedsv,
                               GroundTruthEvaluator* ground_truth) {
  Result<std::string> payload =
      ReadCheckpointFile(path, ChunkTag::kValuationCheckpoint);
  if (!payload.ok()) return payload.status();
  return RestoreValuationCheckpoint(payload.value(), fingerprint, trainer,
                                    fedsv, comfedsv, ground_truth);
}

}  // namespace comfedsv
