// Umbrella header: include this to get the full public API of the
// comfedsv library.
//
// Quick tour (see README.md for a worked example):
//   * data/        — Dataset, synthetic & simulated-image generators,
//                    partitioners, noise injectors
//   * models/      — LogisticRegression, Mlp, Cnn behind the Model
//                    interface
//   * fl/          — FedAvgTrainer + client-selection strategies
//   * shapley/     — coalition utilities, exact & Monte-Carlo Shapley,
//                    the FedSV baseline
//   * completion/  — low-rank matrix completion (ALS / CCD++ / SGD)
//   * io/          — versioned binary serialization & checkpoint files
//   * core/        — ComFedSvEvaluator, GroundTruthEvaluator, the
//                    one-call RunValuation pipeline (plain and
//                    checkpointed), and the StreamingValuationEngine
//   * metrics/     — Spearman, Jaccard, ECDF, relative difference
#ifndef COMFEDSV_CORE_COMFEDSV_API_H_
#define COMFEDSV_CORE_COMFEDSV_API_H_

#include "common/combinatorics.h"
#include "common/execution_context.h"
#include "common/logging.h"
#include "common/rng.h"
#include "common/status.h"
#include "common/stopwatch.h"
#include "common/table.h"
#include "completion/solver.h"
#include "core/checkpointing.h"
#include "core/comfedsv_values.h"
#include "core/evaluator.h"
#include "core/pipeline.h"
#include "core/recorders.h"
#include "core/streaming.h"
#include "data/image_sim.h"
#include "data/noise.h"
#include "data/partition.h"
#include "data/synthetic.h"
#include "fl/adversary.h"
#include "fl/fedavg.h"
#include "io/checkpoint.h"
#include "metrics/fairness.h"
#include "io/serialize.h"
#include "linalg/eps_rank.h"
#include "linalg/svd.h"
#include "metrics/metrics.h"
#include "models/cnn.h"
#include "models/logistic.h"
#include "models/mlp.h"
#include "shapley/budget_allocator.h"
#include "shapley/fedsv.h"
#include "shapley/sampler.h"
#include "shapley/shapley.h"

#endif  // COMFEDSV_CORE_COMFEDSV_API_H_
