// Whole-pipeline checkpointing: composes the io/ building blocks into a
// single versioned checkpoint of a mid-flight valuation run — trainer
// state plus the accumulated state of every requested evaluator — so a
// run killed after round t resumes from the round-t file and produces
// bit-identical final values (tests/determinism_test.cc enforces this).
//
// File layout: the io/serialize.h container (magic "CFSV", version,
// checksum) around one kValuationCheckpoint chunk holding the
// config/data fingerprint, the trainer state, and one presence-flagged
// state chunk per evaluator. See README.md "Checkpointing & streaming
// valuation".
#ifndef COMFEDSV_CORE_CHECKPOINTING_H_
#define COMFEDSV_CORE_CHECKPOINTING_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "core/evaluator.h"
#include "fl/fedavg.h"
#include "io/checkpoint.h"
#include "io/checkpoint_manager.h"
#include "io/round_log.h"
#include "io/serialize.h"
#include "shapley/fedsv.h"

namespace comfedsv {

struct ValuationRequest;  // core/pipeline.h

/// Where and how often RunValuationCheckpointed persists its state.
struct CheckpointConfig {
  /// Checkpoint file (or, with keep_generations >= 2, the stem of the
  /// rotated generation files `path.<seq>`). Each save is atomic (write
  /// to a `.tmp`, fsync, rename), so a crash never corrupts the last
  /// good checkpoint.
  std::string path;
  /// Save after every k-th completed round (and always after the last).
  int every_rounds = 1;
  /// Load the newest resumable checkpoint before round 0 when one
  /// exists. A checkpoint written under a different config/data/model is
  /// an error, not a silent restart.
  bool resume = true;
  /// Test-only crash injection: abort the run (error Status) once this
  /// many rounds have completed, *after* the cadence save for that
  /// round. Negative disables. Lets tests exercise kill-at-round-t →
  /// resume without actually killing the process.
  int inject_crash_after_round = -1;

  // Durability policy, forwarded to the CheckpointManager (see
  // io/checkpoint_manager.h for the rotation / retry / salvage
  // contract).

  /// 1 (default) = the legacy single file at exactly `path`;
  /// >= 2 = rotated generations with salvage fallback on resume.
  int keep_generations = 1;
  /// Retries per transient (Unavailable) I/O failure.
  int max_retries = 2;
  /// Base of the deterministic exponential retry backoff, ms.
  int retry_backoff_ms = 5;
  /// When true, a cadence save that still fails after retries aborts
  /// the run. Default: the run degrades — it keeps training on the last
  /// good in-memory state and reports the failures in
  /// ValuationOutcome::checkpoint_health.
  bool require_durable = false;
  /// File system override for fault injection; nullptr = real.
  FileEnv* env = nullptr;

  // Spill-to-log (io/round_log.h): when round_log_path is non-empty,
  // every RoundRecord the run consumes is appended to a round log
  // there, fsynced before each cadence checkpoint. A resumed run
  // truncates the log back to the checkpointed round before appending,
  // so the final log is byte-identical to an uninterrupted run's —
  // RunValuationFromLog can then re-value the whole trajectory with
  // bounded resident memory.

  /// Round-log data file; `<path>.idx` holds the footer index. Empty =
  /// spill off.
  std::string round_log_path;
  /// On-disk encoding; kNone and kXorDelta replay bit-identically,
  /// kQuant16 trades bounded valuation drift for space (see
  /// BENCH_roundlog.json).
  RoundLogCompression round_log_compression = RoundLogCompression::kNone;
  /// Persist the footer index every k-th append.
  int round_log_index_every = 1;
};

/// How checkpoint I/O fared over a RunValuationCheckpointed call —
/// returned in ValuationOutcome::checkpoint_health so callers can tell
/// "completed, fully durable" from "completed, but the last k saves
/// failed and a crash would lose those rounds".
struct CheckpointHealth {
  /// True when the most recent save attempt failed (the engine is
  /// running on borrowed time; a crash loses rounds_since_durable
  /// rounds of progress).
  bool degraded = false;
  /// Cadence saves that failed after exhausting retries.
  int64_t write_failures = 0;
  /// Failed saves since the last successful one (0 when healthy).
  int64_t consecutive_failures = 0;
  /// Last I/O error observed, empty when none.
  std::string last_error;
  /// Completed rounds not yet covered by a durable checkpoint.
  int rounds_since_durable = 0;
  /// Corrupt generations quarantined to `*.corrupt` during resume.
  int quarantined_on_resume = 0;
  /// Orphaned `.tmp` files removed by the startup sweep.
  int orphans_swept = 0;
  /// Header sequence of the generation the run resumed from (0 when the
  /// run started fresh).
  uint64_t resumed_sequence = 0;
  /// Round-log appends/syncs that failed (spill mode only; the run kept
  /// training — replaying the log would miss those rounds until a
  /// resume truncates back past the gap).
  int64_t round_log_failures = 0;
  /// Rounds appended to the round log over this call (spill mode only).
  int round_log_rounds = 0;
  /// Bytes of the round log when the call finished (spill mode only).
  uint64_t round_log_bytes = 0;
};

/// Fingerprint of everything a checkpoint must agree on to be resumable:
/// the trainer's (config, full data contents, model identity)
/// fingerprint mixed with every field of the valuation request. Two
/// runs with equal fingerprints record identical per-round state.
uint64_t ValuationFingerprint(const FedAvgTrainer& trainer,
                              const ValuationRequest& request);

/// The request-only contribution to ValuationFingerprint — also the
/// compatibility key of StreamingValuationEngine state, which has no
/// trainer attached.
uint64_t RequestFingerprint(const ValuationRequest& request);

// State-chunk serializers for the evaluator states (io/checkpoint.h
// covers the lower-level types). Same contract: Save* writes one chunk,
// Load* validates tag/length/invariants and returns Status.
void SaveFedSvState(const FedSvEvaluatorState& s, BinaryWriter* out);
Status LoadFedSvState(BinaryReader* in, FedSvEvaluatorState* s);

void SaveFullRecorderState(const FullRecorderState& s, BinaryWriter* out);
Status LoadFullRecorderState(BinaryReader* in, FullRecorderState* s);

void SaveObservedRecorderState(const ObservedRecorderState& s,
                               BinaryWriter* out);
Status LoadObservedRecorderState(BinaryReader* in,
                                 ObservedRecorderState* s);

void SaveSampledRecorderState(const SampledRecorderState& s,
                              BinaryWriter* out);
Status LoadSampledRecorderState(BinaryReader* in, SampledRecorderState* s);

/// Presence-flagged state sequence for the three optional evaluators —
/// the shared middle section of both the pipeline's
/// kValuationCheckpoint chunk and the streaming engine's
/// kStreamingEngineState chunk. Save records each evaluator as
/// present/absent (plus the ComFedSV full-vs-sampled mode flag); Load
/// requires the flags to match the evaluators passed in, parses every
/// state chunk, and only then applies the restores. If an apply-phase
/// restore fails (a checksum-valid but structurally inconsistent
/// state), the evaluators may be left partially restored — callers must
/// treat any error as fatal and discard the components.
void SaveEvaluatorStates(const FedSvEvaluator* fedsv,
                         const ComFedSvEvaluator* comfedsv,
                         const GroundTruthEvaluator* ground_truth,
                         BinaryWriter* out);
Status LoadEvaluatorStates(BinaryReader* in, FedSvEvaluator* fedsv,
                           ComFedSvEvaluator* comfedsv,
                           GroundTruthEvaluator* ground_truth);

/// Serializes the composite checkpoint payload (one kValuationCheckpoint
/// chunk) for the given mid-run pipeline state — the bytes
/// SaveValuationCheckpoint writes and CheckpointManager::Write rotates.
std::string SerializeValuationCheckpoint(
    uint64_t fingerprint, const FedAvgTrainer& trainer,
    const FedSvEvaluator* fedsv, const ComFedSvEvaluator* comfedsv,
    const GroundTruthEvaluator* ground_truth);

/// Parses a SerializeValuationCheckpoint payload and applies it to the
/// components. Returns DataLoss for corrupt bytes, FailedPrecondition
/// for a fingerprint/request mismatch. On error the components may be
/// partially restored — retry only by restoring another (complete)
/// payload over them, or discard them.
Status RestoreValuationCheckpoint(std::string_view payload,
                                  uint64_t fingerprint,
                                  FedAvgTrainer* trainer,
                                  FedSvEvaluator* fedsv,
                                  ComFedSvEvaluator* comfedsv,
                                  GroundTruthEvaluator* ground_truth);

/// Writes the composite checkpoint for the given mid-run pipeline state.
/// Null evaluators are recorded as absent. `fingerprint` should be
/// ValuationFingerprint of the run.
Status SaveValuationCheckpoint(const std::string& path, uint64_t fingerprint,
                               const FedAvgTrainer& trainer,
                               const FedSvEvaluator* fedsv,
                               const ComFedSvEvaluator* comfedsv,
                               const GroundTruthEvaluator* ground_truth);

/// Restores a composite checkpoint into freshly constructed pipeline
/// components. Returns NotFound when no file exists (callers start
/// fresh), FailedPrecondition when the checkpoint's fingerprint or
/// evaluator presence flags do not match this run, and other error codes
/// for malformed bytes. On success the trainer is positioned at the
/// checkpointed round and every evaluator holds its saved accumulation.
Status LoadValuationCheckpoint(const std::string& path, uint64_t fingerprint,
                               FedAvgTrainer* trainer,
                               FedSvEvaluator* fedsv,
                               ComFedSvEvaluator* comfedsv,
                               GroundTruthEvaluator* ground_truth);

}  // namespace comfedsv

#endif  // COMFEDSV_CORE_CHECKPOINTING_H_
