// Round observers that materialize (parts of) the utility matrix
// U ∈ R^{T x 2^N} during training:
//
//   * FullUtilityRecorder     — every entry of every round (the paper's
//                               "ground truth" methodology; Figs. 2, 3, 6);
//   * ObservedUtilityRecorder — only the entries the server can actually
//                               observe, {(t, S) : S ⊆ I_t} (the input to
//                               the Def. 4 completion problem);
//   * SampledUtilityRecorder  — Algorithm 1: the observable entries whose
//                               columns are prefixes of M sampled
//                               permutations (problem (13)).
#ifndef COMFEDSV_CORE_RECORDERS_H_
#define COMFEDSV_CORE_RECORDERS_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "common/execution_context.h"
#include "common/status.h"
#include "completion/interner.h"
#include "completion/observations.h"
#include "data/dataset.h"
#include "fl/round_record.h"
#include "linalg/matrix.h"
#include "models/model.h"
#include "shapley/budget_allocator.h"
#include "shapley/coalition.h"
#include "shapley/sampler.h"
#include "shapley/utility.h"

namespace comfedsv {

/// Factor-based utility surrogate: predicted U(round, column). Armed on
/// the sampled recorder by the streaming engine once completed low-rank
/// factors exist (completion/solver.h PredictedUtility under the hood).
using SurrogatePredictorFn = std::function<double(int round, int col)>;

/// Checkpointable mid-run state of FullUtilityRecorder.
struct FullRecorderState {
  std::vector<std::vector<double>> rows;
  int64_t loss_calls = 0;
  double seconds = 0.0;
};

/// Checkpointable mid-run state of ObservedUtilityRecorder. The interner
/// is part of the state because column ids are assigned in discovery
/// order, which depends on the selected sets seen so far.
struct ObservedRecorderState {
  CoalitionInterner interner;
  std::vector<Observation> triplets;
  int rounds_recorded = 0;
  int64_t loss_calls = 0;
  double seconds = 0.0;
};

/// Checkpointable mid-run state of SampledUtilityRecorder. The
/// permutations, prefix columns, and interner are *not* part of the
/// state: they are re-derived bit-identically from the constructor's
/// (seed, budget, sampler) arguments, which the composite checkpoint
/// fingerprints. The surrogate-screening fields are decision-affecting
/// cross-round state (they steer future skip/audit choices), so resume
/// must carry them for bit-identical continuation; they are only
/// populated (and only serialized) when screening is configured.
struct SampledRecorderState {
  std::vector<Observation> triplets;
  int rounds_recorded = 0;
  int64_t loss_calls = 0;
  double seconds = 0.0;
  /// True when the saving recorder had surrogate screening configured
  /// (sampler.screen_threshold > 0); the fields below are live then.
  bool has_surrogate = false;
  /// Running |predicted - measured| over audited/measured columns.
  WelfordStat audit_error;
  /// Skip-eligible candidates seen (drives the every-k-th audit cycle).
  int64_t screen_candidates = 0;
  /// Per-prefix-position marginal statistics (the recorder's stratum
  /// allocator cells).
  std::vector<WelfordStat> position_cells;
};

/// Records the complete utility matrix: every coalition of the full client
/// set, every round with a non-empty selected set (a round in which no
/// client participates contributes zero to every valuation metric and is
/// skipped, matching the FedSV / observed-recorder convention).
/// Exponential in N — guarded to N <= 16; intended for the N = 10
/// analyses of the paper.
///
/// Column c corresponds to the coalition whose membership bitmask is c
/// (bit i set <=> client i in S); column 0 is the empty coalition.
class FullUtilityRecorder : public RoundObserver {
 public:
  /// Each round's 2^N - 1 coalitions are submitted to the batched
  /// utility engine in one shot (mask order), which evaluates them with
  /// a few Model::BatchLoss passes over the test set. `ctx` (optional)
  /// parallelizes those passes over fixed sub-blocks, so the recording
  /// is identical for any thread count.
  FullUtilityRecorder(const Model* model, const Dataset* test_data,
                      int num_clients, ExecutionContext* ctx = nullptr);

  void OnRound(const RoundRecord& record) override;

  /// The T x 2^N matrix recorded so far (row t = round t). Requires at
  /// least one recorded round.
  Matrix ToMatrix() const;

  /// Rounds recorded so far (empty-selected rounds are skipped).
  int rounds_recorded() const { return static_cast<int>(rows_.size()); }

  int num_clients() const { return num_clients_; }
  int64_t loss_calls() const { return loss_calls_; }
  double seconds() const { return seconds_; }

  /// Measured evaluation accounting (loss calls, batch passes, memo
  /// hits) accumulated across rounds. Diagnostic — not checkpointed, so
  /// after RestoreState it covers the resumed portion only.
  const UtilityStats& stats() const { return stats_; }

  /// Snapshot / resume of the recording after any number of rounds.
  FullRecorderState SaveState() const;
  Status RestoreState(FullRecorderState state);

 private:
  const Model* model_;
  const Dataset* test_data_;
  int num_clients_;
  ExecutionContext* ctx_;
  std::vector<std::vector<double>> rows_;
  int64_t loss_calls_ = 0;
  double seconds_ = 0.0;
  UtilityStats stats_;
};

/// Records only server-observable utilities: all subsets of the selected
/// set I_t each round (plus the empty coalition at value 0, which anchors
/// h_empty). Columns are interned lazily; under Assumption 1 the first
/// round interns all 2^N coalitions. Rounds with an empty selected set
/// observe nothing and are skipped.
class ObservedUtilityRecorder : public RoundObserver {
 public:
  /// Each round's 2^|I_t| - 1 observable coalitions go through the
  /// batched utility engine (`ctx` parallelizes its fixed sub-blocks);
  /// interning stays sequential in mask order, so column ids and triplet
  /// order are identical for any thread count.
  ObservedUtilityRecorder(const Model* model, const Dataset* test_data,
                          int num_clients, ExecutionContext* ctx = nullptr);

  void OnRound(const RoundRecord& record) override;

  /// Assembles the sparse completion input, finalized (CSR/CSC views
  /// built) and ready for CompleteMatrix. Call after training.
  ObservationSet BuildObservations() const;

  const CoalitionInterner& interner() const { return interner_; }
  int rounds_recorded() const { return rounds_recorded_; }
  int64_t loss_calls() const { return loss_calls_; }
  double seconds() const { return seconds_; }

  /// Measured evaluation accounting; diagnostic, not checkpointed.
  const UtilityStats& stats() const { return stats_; }

  /// Snapshot / resume of the recording after any number of rounds.
  ObservedRecorderState SaveState() const;
  Status RestoreState(ObservedRecorderState state);

 private:
  const Model* model_;
  const Dataset* test_data_;
  int num_clients_;
  ExecutionContext* ctx_;
  CoalitionInterner interner_;
  std::vector<Observation> triplets_;
  int rounds_recorded_ = 0;
  int64_t loss_calls_ = 0;
  double seconds_ = 0.0;
  UtilityStats stats_;
};

/// Algorithm 1's recorder: M permutations of the client set are sampled
/// up front by the configured PermutationSampler; the needed matrix
/// columns are exactly the permutation prefixes (deduped by the
/// interner). Each round records the utilities of the prefixes contained
/// in I_t.
class SampledUtilityRecorder : public RoundObserver {
 public:
  /// Each round's distinct observable prefixes are discovered
  /// sequentially (deduped in permutation order) and then evaluated
  /// through the batched utility engine (`ctx` parallelizes its fixed
  /// sub-blocks), so the recorded triplets are identical for any thread
  /// count.
  ///
  /// `sampler` selects the permutation-sampling strategy
  /// (shapley/sampler.h). Uniform IID reproduces the pre-sampler
  /// recorder bit for bit; antithetic/stratified draw variance-reduced
  /// orderings; kTruncated additionally stops *measuring* a
  /// permutation's per-round prefixes once the observed utility is
  /// within the tolerance of U_t(I_t) — the tail's observable prefixes
  /// are recorded at that reference value (within the tolerance by the
  /// truncation premise) without spending their loss calls, so every
  /// column observable under Assumption 1 stays anchored for the
  /// completion. Truncated rounds spend one extra loss call on the
  /// U_t(I_t) reference.
  SampledUtilityRecorder(const Model* model, const Dataset* test_data,
                         int num_clients, int num_permutations,
                         uint64_t seed, SamplerConfig sampler = {},
                         ExecutionContext* ctx = nullptr);

  void OnRound(const RoundRecord& record) override;

  ObservationSet BuildObservations() const;

  const CoalitionInterner& interner() const { return interner_; }
  const std::vector<std::vector<int>>& permutations() const {
    return permutations_;
  }
  /// prefix_columns()[m][l]: column id of the length-l prefix of
  /// permutation m.
  const std::vector<std::vector<int>>& prefix_columns() const {
    return prefix_columns_;
  }
  int rounds_recorded() const { return rounds_recorded_; }
  int64_t loss_calls() const { return loss_calls_; }
  double seconds() const { return seconds_; }

  /// Measured evaluation accounting, including surrogate skips and the
  /// accumulated skip-bias bound; diagnostic, not checkpointed.
  const UtilityStats& stats() const { return stats_; }

  /// Arms (or clears, with nullptr-like empty fn) the factor-based
  /// utility surrogate. Screening activates only while a predictor is
  /// armed AND sampler.screen_threshold > 0 AND the sampler is not
  /// kTruncated (truncation has its own skip rule): each round then
  /// walks the permutation prefixes in waves, and a *new* column whose
  /// predicted marginal is confidently below the threshold is recorded
  /// at its predicted utility without spending the BatchLoss call. The
  /// skip test requires the surrogate to be trusted — at least
  /// screen_min_audits realized-error audits overall and
  /// adaptive.min_cell_samples measured marginals at that prefix
  /// position (the recorder's stratum allocator steers the bootstrap) —
  /// and every screen_audit_every-th eligible column is measured anyway,
  /// feeding the realized |predicted - measured| error estimate. Each
  /// skip adds screen_confidence * mean-audit-error to the accumulated
  /// bias bound in stats(). All decisions run on the calling thread in
  /// permutation/wave order: bit-identical for any thread count.
  void SetSurrogatePredictor(SurrogatePredictorFn predictor);

  /// Snapshot / resume of the recording after any number of rounds. The
  /// restoring recorder must be constructed with the same (num_clients,
  /// num_permutations, seed, sampler) so its re-derived permutations and
  /// column ids match the saved triplets. Screening state (audit error,
  /// candidate counter, position cells) rides along when configured.
  SampledRecorderState SaveState() const;
  Status RestoreState(SampledRecorderState state);

 private:
  /// The kTruncated per-round recording path (wave-batched walks).
  void RecordTruncatedRound(int t, const Coalition& selected,
                            RoundUtility* utility);
  /// The surrogate-screening per-round recording path.
  void RecordScreenedRound(int t, const Coalition& selected,
                           RoundUtility* utility);
  bool ScreeningActive() const;

  const Model* model_;
  const Dataset* test_data_;
  int num_clients_;
  SamplerConfig sampler_;
  ExecutionContext* ctx_;
  std::vector<std::vector<int>> permutations_;
  /// prefix_columns_[m][l] is the column id of the length-l prefix of
  /// permutation m (l in [0, N]).
  std::vector<std::vector<int>> prefix_columns_;
  CoalitionInterner interner_;
  std::vector<Observation> triplets_;
  int rounds_recorded_ = 0;
  int64_t loss_calls_ = 0;
  double seconds_ = 0.0;
  UtilityStats stats_;
  SurrogatePredictorFn predictor_;
  /// Cross-round screening state (checkpointed when screening is
  /// configured): realized surrogate error, eligible-candidate counter,
  /// and per-prefix-position marginal stats steering bootstrap audits.
  WelfordStat audit_error_;
  int64_t screen_candidates_ = 0;
  AdaptiveBudgetAllocator position_stats_;
};

}  // namespace comfedsv

#endif  // COMFEDSV_CORE_RECORDERS_H_
