#include "core/streaming.h"

#include <utility>

#include "common/check.h"
#include "common/fingerprint.h"
#include "io/checkpoint_manager.h"

namespace comfedsv {

StreamingValuationEngine::StreamingValuationEngine(
    const Model* model, const Dataset* test_data, int num_clients,
    StreamingConfig config, ExecutionContext* ctx)
    : model_(model),
      test_data_(test_data),
      num_clients_(num_clients),
      config_(std::move(config)) {
  COMFEDSV_CHECK(model_ != nullptr);
  COMFEDSV_CHECK(test_data_ != nullptr);
  COMFEDSV_CHECK_GT(num_clients_, 0);
  COMFEDSV_CHECK_GE(config_.resolve_cadence, 1);
  if (config_.request.compute_fedsv) {
    fedsv_ = std::make_unique<FedSvEvaluator>(
        model_, test_data_, num_clients_, config_.request.fedsv, ctx);
  }
  if (config_.request.compute_comfedsv) {
    comfedsv_ = std::make_unique<ComFedSvEvaluator>(
        model_, test_data_, num_clients_, config_.request.comfedsv, ctx);
  }
  if (config_.request.compute_ground_truth) {
    ground_truth_ = std::make_unique<GroundTruthEvaluator>(
        model_, test_data_, num_clients_, ctx);
  }
}

void StreamingValuationEngine::OnRound(const RoundRecord& record) {
  if (config_.spill.enabled) SpillRound(record);
  if (fedsv_ != nullptr) fedsv_->OnRound(record);
  if (comfedsv_ != nullptr) comfedsv_->OnRound(record);
  if (ground_truth_ != nullptr) ground_truth_->OnRound(record);
  test_loss_history_.push_back(record.test_loss_before);
  ++rounds_consumed_;
  ++health_.rounds_since_durable;
}

void StreamingValuationEngine::SpillRound(const RoundRecord& record) {
  if (spill_writer_ == nullptr) {
    RoundLogOptions options;
    options.compression = config_.spill.compression;
    options.index_every = config_.spill.index_every;
    options.env = config_.spill.env;
    // Fresh stream: new log. Mid-stream (a restore, or an earlier open
    // failure): re-open behind the already-consumed rounds, truncating
    // whatever a crashed predecessor appended beyond them.
    Result<std::unique_ptr<RoundLogWriter>> opened =
        rounds_consumed_ == 0
            ? RoundLogWriter::Create(config_.spill.path, options)
            : RoundLogWriter::OpenForAppend(config_.spill.path,
                                            rounds_consumed_, options);
    if (!opened.ok()) {
      health_.degraded = true;
      ++health_.spill_failures;
      ++health_.consecutive_failures;
      health_.last_error = opened.status().ToString();
      return;
    }
    spill_writer_ = std::move(opened).value();
    // When the restored checkpoint recorded a log position for exactly
    // this round, the truncated log must match it byte for byte —
    // anything else means the log and the checkpoint diverged.
    if (restored_spill_rounds_ == rounds_consumed_ &&
        spill_writer_->data_size() != restored_spill_bytes_) {
      health_.degraded = true;
      ++health_.spill_failures;
      ++health_.consecutive_failures;
      health_.last_error =
          "round log size after realignment does not match the "
          "checkpointed position";
      spill_writer_.reset();
      return;
    }
    restored_spill_rounds_ = -1;
  }
  Status appended = spill_writer_->Append(record);
  if (!appended.ok()) {
    health_.degraded = true;
    ++health_.spill_failures;
    ++health_.consecutive_failures;
    health_.last_error = appended.ToString();
  }
}

Status StreamingValuationEngine::SyncSpill() {
  if (spill_writer_ == nullptr) return Status::Ok();
  Status synced = spill_writer_->Sync();
  if (!synced.ok()) {
    health_.degraded = true;
    ++health_.spill_failures;
    ++health_.consecutive_failures;
    health_.last_error = synced.ToString();
  }
  return synced;
}

Result<ValuationOutcome> StreamingValuationEngine::Snapshot() {
  ValuationOutcome out;
  out.training.rounds_run = rounds_consumed_;
  out.training.test_loss_history = test_loss_history_;
  if (fedsv_ != nullptr) {
    out.fedsv_values = fedsv_->values();
    out.fedsv_loss_calls = fedsv_->loss_calls();
    out.fedsv_stats = fedsv_->stats();
  }
  if (comfedsv_ != nullptr) {
    const bool stale_ok =
        last_output_.has_value() &&
        rounds_consumed_ - last_solve_round_ < config_.resolve_cadence;
    if (!stale_ok) {
      Result<ComFedSvOutput> solved =
          (config_.warm_start && factors_.has_value())
              ? comfedsv_->FinalizeWarm(*factors_, config_.warm_max_iters)
              : comfedsv_->Finalize();
      if (!solved.ok()) {
        // Degrade instead of poisoning the stream: the recorders are
        // untouched by a failed solve, so the last good output is still
        // a valid (stale) valuation of an earlier prefix. With nothing
        // to fall back on the error surfaces as before.
        if (!last_output_.has_value()) return solved.status();
        health_.degraded = true;
        ++health_.stale_snapshots;
        ++health_.consecutive_failures;
        health_.last_error = solved.status().ToString();
      } else {
        health_.degraded = false;
        health_.consecutive_failures = 0;
        last_output_ = std::move(solved).value();
        factors_ = FactorPair{last_output_->completion.w,
                              last_output_->completion.h};
        last_solve_round_ = rounds_consumed_;
        ArmSurrogate();
      }
    }
    out.comfedsv = *last_output_;
  }
  if (ground_truth_ != nullptr) {
    Result<Vector> values = ground_truth_->Finalize();
    if (!values.ok()) return values.status();
    out.ground_truth_values = std::move(values).value();
    out.ground_truth_loss_calls = ground_truth_->loss_calls();
  }
  return out;
}

Result<ValuationOutcome> StreamingValuationEngine::Finalize() const {
  ValuationOutcome out;
  out.training.rounds_run = rounds_consumed_;
  out.training.test_loss_history = test_loss_history_;
  if (fedsv_ != nullptr) {
    out.fedsv_values = fedsv_->values();
    out.fedsv_loss_calls = fedsv_->loss_calls();
    out.fedsv_stats = fedsv_->stats();
  }
  if (comfedsv_ != nullptr) {
    Result<ComFedSvOutput> solved = comfedsv_->Finalize();
    if (!solved.ok()) return solved.status();
    out.comfedsv = std::move(solved).value();
  }
  if (ground_truth_ != nullptr) {
    Result<Vector> values = ground_truth_->Finalize();
    if (!values.ok()) return values.status();
    out.ground_truth_values = std::move(values).value();
    out.ground_truth_loss_calls = ground_truth_->loss_calls();
  }
  return out;
}

double StreamingValuationEngine::PredictedUtility(
    int round, const Coalition& coalition) const {
  if (!factors_.has_value() || comfedsv_ == nullptr) return 0.0;
  const CoalitionInterner* interner = nullptr;
  if (comfedsv_->sampled_recorder() != nullptr) {
    interner = &comfedsv_->sampled_recorder()->interner();
  } else if (comfedsv_->full_recorder() != nullptr) {
    interner = &comfedsv_->full_recorder()->interner();
  }
  if (interner == nullptr) return 0.0;
  const int col = interner->Find(coalition);
  if (col < 0 || static_cast<size_t>(col) >= factors_->h.rows()) return 0.0;
  return ::comfedsv::PredictedUtility(*factors_, round, col);
}

void StreamingValuationEngine::ArmSurrogate() {
  if (!config_.surrogate_screening || comfedsv_ == nullptr) return;
  SampledUtilityRecorder* recorder = comfedsv_->sampled_recorder();
  if (recorder == nullptr || !factors_.has_value()) return;
  // The predictor reads factors_ at call time (not a snapshot), so every
  // re-solve refreshes the surrogate without re-arming.
  recorder->SetSurrogatePredictor([this](int round, int col) {
    if (!factors_.has_value() ||
        static_cast<size_t>(col) >= factors_->h.rows()) {
      return 0.0;
    }
    return ::comfedsv::PredictedUtility(*factors_, round, col);
  });
}

uint64_t StreamingValuationEngine::ConfigFingerprint() const {
  // The engine's own policy knobs (cadence, warm start) do not change
  // what OnRound accumulates, so the fingerprint covers only the
  // request-equivalent state — what a checkpoint must agree on for the
  // restored accumulations to mean the same thing — plus the client
  // count. (The training trajectory behind the consumed rounds is the
  // caller's concern: pair this with the trainer's checkpoint, as
  // RunValuationCheckpointed does.)
  uint64_t hash = kFingerprintSeed;
  FingerprintMix(&hash, static_cast<uint64_t>(num_clients_));
  FingerprintMix(&hash, RequestFingerprint(config_.request));
  // Screening changes what the sampled recorder accumulates, so it must
  // break fingerprint compatibility — but only when on, so checkpoints
  // from before the knob existed keep their fingerprints.
  if (config_.surrogate_screening) {
    FingerprintMix(&hash, uint64_t{0x5355524F});  // "SURO"
  }
  // Spill mode appends its log position to the engine state, so it must
  // break compatibility with non-spill checkpoints — but only when on,
  // keeping pre-existing fingerprints intact. The path is deliberately
  // excluded (a log may be relocated); the compression mode is not (the
  // resumed writer must keep appending in the same encoding).
  if (config_.spill.enabled) {
    FingerprintMix(&hash, uint64_t{0x524C4F47});  // "RLOG"
    FingerprintMix(&hash,
                   static_cast<uint64_t>(config_.spill.compression));
  }
  return hash;
}

void StreamingValuationEngine::SaveState(BinaryWriter* out) const {
  const size_t handle = out->BeginChunk(ChunkTag::kStreamingEngineState);
  out->U64(ConfigFingerprint());
  out->I32(rounds_consumed_);
  out->U64(test_loss_history_.size());
  for (double v : test_loss_history_) out->F64(v);
  SaveEvaluatorStates(fedsv_.get(), comfedsv_.get(), ground_truth_.get(),
                      out);
  out->U8(factors_.has_value() ? 1 : 0);
  if (factors_.has_value()) SaveFactorPair(*factors_, out);
  // Spill-gated tail (the fingerprint already separates the layouts):
  // the log position this state corresponds to, so a restore can verify
  // the realigned log matches byte-for-byte.
  if (config_.spill.enabled) {
    out->I32(spill_writer_ != nullptr ? spill_writer_->rounds() : 0);
    out->U64(spill_writer_ != nullptr ? spill_writer_->data_size() : 0);
  }
  out->EndChunk(handle);
}

Status StreamingValuationEngine::RestoreState(BinaryReader* in) {
  size_t end = 0;
  COMFEDSV_RETURN_IF_ERROR(
      in->BeginChunk(ChunkTag::kStreamingEngineState, &end));
  uint64_t fingerprint = 0;
  COMFEDSV_RETURN_IF_ERROR(in->U64(&fingerprint));
  if (fingerprint != ConfigFingerprint()) {
    return Status::FailedPrecondition(
        "streaming engine state was saved under a different "
        "request/client count");
  }
  int32_t rounds = 0;
  COMFEDSV_RETURN_IF_ERROR(in->I32(&rounds));
  if (rounds < 0) {
    return Status::DataLoss("corrupt engine state: negative rounds");
  }
  uint64_t history_len = 0;
  COMFEDSV_RETURN_IF_ERROR(in->Count(8, &history_len));
  if (history_len != static_cast<uint64_t>(rounds)) {
    return Status::DataLoss(
        "corrupt engine state: history length mismatch");
  }
  std::vector<double> history(history_len);
  for (double& v : history) {
    COMFEDSV_RETURN_IF_ERROR(in->F64(&v));
  }

  // The shared evaluator-state section (see checkpointing.h): parses
  // every state chunk, then applies. If anything from here on fails the
  // engine may be partially restored — per the RestoreState contract
  // the caller must discard it and construct a fresh engine to retry.
  COMFEDSV_RETURN_IF_ERROR(LoadEvaluatorStates(
      in, fedsv_.get(), comfedsv_.get(), ground_truth_.get()));

  uint8_t has_factors = 0;
  COMFEDSV_RETURN_IF_ERROR(in->U8(&has_factors));
  if (has_factors > 1) {
    return Status::DataLoss("corrupt engine state: factor flag");
  }
  FactorPair factors;
  if (has_factors != 0) {
    COMFEDSV_RETURN_IF_ERROR(LoadFactorPair(in, &factors));
  }
  int32_t spill_rounds = -1;
  uint64_t spill_bytes = 0;
  if (config_.spill.enabled) {
    COMFEDSV_RETURN_IF_ERROR(in->I32(&spill_rounds));
    COMFEDSV_RETURN_IF_ERROR(in->U64(&spill_bytes));
    if (spill_rounds < 0 || spill_rounds > rounds) {
      return Status::DataLoss(
          "corrupt engine state: spill position out of range");
    }
  }
  COMFEDSV_RETURN_IF_ERROR(in->EndChunk(end));

  rounds_consumed_ = rounds;
  test_loss_history_ = std::move(history);
  if (has_factors != 0) {
    factors_ = std::move(factors);
  } else {
    factors_.reset();
  }
  // Snapshot caches are not serialized: the first Snapshot() after a
  // restore re-solves, warm from the restored factors.
  last_output_.reset();
  last_solve_round_ = -1;
  // Realign the spill log lazily: dropping the writer makes the next
  // spilled round re-open with OpenForAppend(rounds_consumed_), which
  // truncates whatever the crashed run appended past this state. The
  // recorded position lets that re-open verify byte-exactness.
  spill_writer_.reset();
  restored_spill_rounds_ = spill_rounds;
  restored_spill_bytes_ = spill_bytes;
  // Screening resumes exactly where it left off: the restored factors
  // re-arm the surrogate (the recorder's audit/candidate state came back
  // through LoadEvaluatorStates).
  ArmSurrogate();
  return Status::Ok();
}

Status StreamingValuationEngine::SaveCheckpoint(CheckpointManager* manager) {
  COMFEDSV_CHECK(manager != nullptr);
  // Durability order: the log first, then the checkpoint that records
  // its position — a checkpoint must never reference log bytes that are
  // not on disk. A failed log sync fails the save (retried next time);
  // the engine's in-memory state is untouched either way.
  if (config_.spill.enabled && spill_writer_ != nullptr) {
    Status synced = SyncSpill();
    if (!synced.ok()) {
      ++health_.checkpoint_failures;
      return synced;
    }
  }
  BinaryWriter payload;
  SaveState(&payload);
  Status saved =
      manager->Write(ChunkTag::kStreamingEngineState, payload.buffer());
  if (saved.ok()) {
    health_.degraded = false;
    health_.consecutive_failures = 0;
    health_.rounds_since_durable = 0;
  } else {
    health_.degraded = true;
    ++health_.checkpoint_failures;
    ++health_.consecutive_failures;
    health_.last_error = saved.ToString();
  }
  return saved;
}

Status StreamingValuationEngine::RestoreCheckpoint(
    CheckpointManager* manager) {
  COMFEDSV_CHECK(manager != nullptr);
  Result<CheckpointManager::LoadInfo> loaded = manager->Load(
      ChunkTag::kStreamingEngineState,
      [this](std::string_view payload, uint64_t /*sequence*/) {
        BinaryReader reader(payload);
        return RestoreState(&reader);
      });
  if (!loaded.ok()) return loaded.status();
  health_.degraded = false;
  health_.consecutive_failures = 0;
  health_.rounds_since_durable = 0;
  return Status::Ok();
}

}  // namespace comfedsv
