#include "core/comfedsv_values.h"

#include <bit>

#include "common/check.h"
#include "common/combinatorics.h"

namespace comfedsv {
namespace {

constexpr int kMaxExactClients = 16;

// Shared implementation of the exact Def. 4 / Eq. (14) sum. For each
// coalition S (bitmask `mask` not containing client i):
//   s_i += (1/N) * [1 / C(N-1, |S|)] * (value(S + i) - value(S)),
// where value(.) is either sum_t w_t . h_S (factors) or sum_t U_t(S)
// (ground truth) — both provided as a per-column scalar `column_value`.
Vector ExactSumOverCoalitions(const std::vector<double>& column_value,
                              int num_clients) {
  const uint32_t num_cols = 1u << num_clients;
  COMFEDSV_CHECK_EQ(column_value.size(), num_cols);
  // Precompute the Shapley weights 1 / C(N-1, s).
  std::vector<double> weight(num_clients);
  for (int s = 0; s < num_clients; ++s) {
    weight[s] = 1.0 / Binomial(num_clients - 1, s);
  }
  Vector values(num_clients);
  for (int i = 0; i < num_clients; ++i) {
    const uint32_t bit = 1u << i;
    double acc = 0.0;
    for (uint32_t mask = 0; mask < num_cols; ++mask) {
      if (mask & bit) continue;
      const int s = std::popcount(mask);
      acc += weight[s] * (column_value[mask | bit] - column_value[mask]);
    }
    values[i] = acc / static_cast<double>(num_clients);
  }
  return values;
}

}  // namespace

Result<Vector> ComFedSvFromFactors(const Matrix& w, const Matrix& h,
                                   const CoalitionInterner& interner,
                                   int num_clients) {
  if (num_clients <= 0 || num_clients > kMaxExactClients) {
    return Status::InvalidArgument(
        "exact ComFedSV requires 1 <= num_clients <= 16");
  }
  if (w.cols() != h.cols()) {
    return Status::InvalidArgument("factor ranks do not match");
  }
  const uint32_t num_cols = 1u << num_clients;

  // sum_t w_t . h_S factors into wsum . h_S.
  Vector wsum(w.cols());
  for (size_t t = 0; t < w.rows(); ++t) {
    const double* row = w.RowPtr(t);
    for (size_t k = 0; k < w.cols(); ++k) wsum[k] += row[k];
  }

  std::vector<double> column_value(num_cols);
  for (uint32_t mask = 0; mask < num_cols; ++mask) {
    Coalition c(num_clients);
    for (int i = 0; i < num_clients; ++i) {
      if (mask & (1u << i)) c.Add(i);
    }
    const int col = interner.Find(c);
    if (col < 0) {
      return Status::FailedPrecondition(
          "coalition missing from the interner; was Assumption 1 "
          "(select_all_first_round) enabled?");
    }
    const double* hrow = h.RowPtr(col);
    double dot = 0.0;
    for (size_t k = 0; k < h.cols(); ++k) dot += wsum[k] * hrow[k];
    column_value[mask] = dot;
  }
  return ExactSumOverCoalitions(column_value, num_clients);
}

Result<Vector> ComFedSvFromFullMatrix(const Matrix& utility_matrix,
                                      int num_clients) {
  if (num_clients <= 0 || num_clients > kMaxExactClients) {
    return Status::InvalidArgument(
        "exact ComFedSV requires 1 <= num_clients <= 16");
  }
  const uint32_t num_cols = 1u << num_clients;
  if (utility_matrix.cols() != num_cols) {
    return Status::InvalidArgument(
        "utility matrix must have 2^num_clients columns");
  }
  std::vector<double> column_value(num_cols, 0.0);
  for (size_t t = 0; t < utility_matrix.rows(); ++t) {
    const double* row = utility_matrix.RowPtr(t);
    for (uint32_t c = 0; c < num_cols; ++c) column_value[c] += row[c];
  }
  return ExactSumOverCoalitions(column_value, num_clients);
}

Result<Vector> ComFedSvSampled(
    const Matrix& w, const Matrix& h,
    const std::vector<std::vector<int>>& permutations,
    const std::vector<std::vector<int>>& prefix_columns, int num_clients) {
  if (permutations.empty()) {
    return Status::InvalidArgument("no permutations");
  }
  if (permutations.size() != prefix_columns.size()) {
    return Status::InvalidArgument(
        "permutations and prefix_columns disagree");
  }
  if (w.cols() != h.cols()) {
    return Status::InvalidArgument("factor ranks do not match");
  }

  Vector wsum(w.cols());
  for (size_t t = 0; t < w.rows(); ++t) {
    const double* row = w.RowPtr(t);
    for (size_t k = 0; k < w.cols(); ++k) wsum[k] += row[k];
  }
  // Predicted total value of column c: wsum . h_c.
  auto column_value = [&](int col) {
    COMFEDSV_CHECK_GE(col, 0);
    COMFEDSV_CHECK_LT(static_cast<size_t>(col), h.rows());
    const double* hrow = h.RowPtr(col);
    double dot = 0.0;
    for (size_t k = 0; k < h.cols(); ++k) dot += wsum[k] * hrow[k];
    return dot;
  };

  Vector values(num_clients);
  for (size_t m = 0; m < permutations.size(); ++m) {
    const std::vector<int>& perm = permutations[m];
    const std::vector<int>& cols = prefix_columns[m];
    COMFEDSV_CHECK_EQ(perm.size(), static_cast<size_t>(num_clients));
    COMFEDSV_CHECK_EQ(cols.size(), perm.size() + 1);
    // The walk's baseline is the game's own empty value (generic Shapley
    // semantics, consistent with the Def. 4 sums above for any input).
    // The U(empty) = 0 convention of the pipeline is enforced upstream:
    // ComFedSvEvaluator::Finalize zeroes the completed factors' empty
    // row, so here the baseline is exactly 0 for pipeline inputs.
    double prev = column_value(cols[0]);
    for (int l = 0; l < num_clients; ++l) {
      const double cur = column_value(cols[l + 1]);
      values[perm[l]] += cur - prev;
      prev = cur;
    }
  }
  values.Scale(1.0 / static_cast<double>(permutations.size()));
  return values;
}

}  // namespace comfedsv
