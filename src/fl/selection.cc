#include "fl/selection.h"

#include <algorithm>
#include <numeric>

#include "common/check.h"

namespace comfedsv {

UniformSelector::UniformSelector(int clients_per_round)
    : clients_per_round_(clients_per_round) {
  COMFEDSV_CHECK_GT(clients_per_round_, 0);
}

std::vector<int> UniformSelector::Select(int /*round*/, int num_clients,
                                         Rng* rng) {
  COMFEDSV_CHECK(rng != nullptr);
  const int k = std::min(clients_per_round_, num_clients);
  return rng->SampleWithoutReplacement(num_clients, k);
}

BernoulliSelector::BernoulliSelector(double participation_prob)
    : participation_prob_(participation_prob) {
  COMFEDSV_CHECK_GE(participation_prob_, 0.0);
  COMFEDSV_CHECK_LE(participation_prob_, 1.0);
}

std::vector<int> BernoulliSelector::Select(int /*round*/, int num_clients,
                                           Rng* rng) {
  COMFEDSV_CHECK(rng != nullptr);
  std::vector<int> selected;
  for (int i = 0; i < num_clients; ++i) {
    if (rng->NextBernoulli(participation_prob_)) selected.push_back(i);
  }
  return selected;  // sorted by construction; may be empty
}

EveryoneHeardSelector::EveryoneHeardSelector(
    std::unique_ptr<ClientSelector> inner)
    : inner_(std::move(inner)) {
  COMFEDSV_CHECK(inner_ != nullptr);
}

std::vector<int> EveryoneHeardSelector::Select(int round, int num_clients,
                                               Rng* rng) {
  if (round == 0) {
    std::vector<int> all(num_clients);
    std::iota(all.begin(), all.end(), 0);
    return all;
  }
  return inner_->Select(round, num_clients, rng);
}

}  // namespace comfedsv
