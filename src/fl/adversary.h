// Adversarial-client injection layer: composable per-client behaviors
// wrapping the honest FedAvg update path, for the detection workloads of
// the robustness literature ("Data Valuation and Detections in Federated
// Learning", arXiv 2311.05304). The paper's own experiments (Figs. 6, 7)
// only degrade data quality; this layer additionally misbehaves on the
// *update* path — free-riders, gradient scalers, colluders, mid-round
// dropouts, and NaN/Inf corrupters — so FedSV / ComFedSV detection power
// can be benchmarked per attack (bench/detection.cc).
//
// Determinism contract: every behavior is stateless across rounds — all
// randomness derives from (adversary seed, round, client), and the
// transforms run sequentially on one thread — so adversarial runs stay
// bit-identical across thread counts and across checkpoint kill/resume
// (nothing beyond the trainer's existing state needs persisting).
#ifndef COMFEDSV_FL_ADVERSARY_H_
#define COMFEDSV_FL_ADVERSARY_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "common/rng.h"
#include "common/status.h"
#include "data/dataset.h"
#include "linalg/vector.h"

namespace comfedsv {

/// The behavior catalog. Every kind maps to one intervention point:
/// data poisoning (applied once, before training), the update path
/// (applied after honest local updates, before selection), or the
/// selection path (applied after the selector ran).
enum class AdversaryKind : int32_t {
  kHonest = 0,
  /// Submits `intensity * w^t + camouflage * N(0, I)` instead of
  /// training — a stale/rescaled copy of the broadcast global model
  /// (intensity 1, camouflage 0 is the pure free-rider).
  kFreeRider = 1,
  /// Submits `w^t + intensity * (w_i^{t+1} - w^t)`: scales its honest
  /// update delta. intensity >> 1 is the boosting/poisoning attack,
  /// intensity < 0 the sign-flip attack.
  kGradientScaler = 2,
  /// Submits `w^t + intensity * (w_a^{t+1} - w^t) + (1 - intensity) *
  /// (w_i^{t+1} - w^t)` where a = `accomplice`: duplicates another
  /// client's update (intensity 1 is a pure copy — the update-path
  /// equivalent of colluding duplicate-data clients). The accomplice's
  /// *honest* update is copied, independent of transform order.
  kColluder = 3,
  /// Trains honestly on data whose labels were flipped at rate
  /// `intensity` (FlipLabels, applied once before training).
  kLabelFlipper = 4,
  /// Straggler: when selected, drops out of the round (the server never
  /// hears it) independently with probability `intensity`.
  kDropout = 5,
  /// Overwrites a `max(1, intensity * dim)`-coordinate prefix slice of
  /// its update with alternating NaN / +-Inf — the malformed-update
  /// crash test for the aggregation guard.
  kNanCorrupter = 6,
};

/// One client's assigned behavior. At most one spec per client.
struct AdversarySpec {
  int client = -1;
  AdversaryKind kind = AdversaryKind::kHonest;
  /// Kind-specific knob; see the AdversaryKind comments. Rates
  /// (kLabelFlipper, kDropout) must lie in [0, 1]; scales must be
  /// finite; kNanCorrupter's fraction must lie in (0, 1].
  double intensity = 1.0;
  /// kFreeRider only: stddev of the Gaussian camouflage noise.
  double camouflage = 0.0;
  /// kColluder only: the client whose update is duplicated.
  int accomplice = -1;
};

/// The full adversarial population of a run. Rides inside FedAvgConfig,
/// so the pipeline, checkpointing, and streaming layers plumb it through
/// without new surface; an empty spec list is the honest default.
struct AdversaryConfig {
  std::vector<AdversarySpec> specs;
  /// Root seed of the adversary randomness (camouflage noise, dropout
  /// coin flips, label-flip positions); independent of the trainer seed.
  uint64_t seed = 0;

  bool any() const { return !specs.empty(); }
};

/// Compiled, validated adversarial population. Built by FedAvgTrainer
/// from FedAvgConfig::adversary; usable standalone in tests/benches.
class AdversaryModel {
 public:
  /// Validates `config` against the population size: clients in range
  /// and unique, accomplices valid (distinct existing clients),
  /// intensities within their kind's domain. Returns InvalidArgument
  /// with a message naming the offending spec otherwise.
  static Status Validate(const AdversaryConfig& config, int num_clients);

  /// Requires Validate(config, num_clients).ok().
  AdversaryModel(AdversaryConfig config, int num_clients);

  /// Applies the data-poisoning behaviors (kLabelFlipper) in place.
  /// Call exactly once, before training begins. Returns the number of
  /// labels flipped.
  int PoisonData(std::vector<Dataset>* client_data) const;

  /// Applies the update-path behaviors to this round's local models, in
  /// ascending client order. Colluders read their accomplice's honest
  /// (pre-transform) update. Deterministic in (seed, round, client).
  void TransformRound(int round, const Vector& global_before,
                      std::vector<Vector>* local_models) const;

  /// Removes this round's dropouts from the sorted selected set and
  /// returns them (sorted). Deterministic in (seed, round, client).
  std::vector<int> ApplyDropouts(int round,
                                 std::vector<int>* selected) const;

  /// Mixes the full adversarial population into a config fingerprint —
  /// a checkpoint saved under one attack scenario must not resume under
  /// another.
  void MixFingerprint(uint64_t* hash) const;

  /// The spec governing `client` (kHonest default for unlisted clients).
  const AdversarySpec& spec(int client) const;

  int num_clients() const { return num_clients_; }

 private:
  Rng ClientRoundRng(int round, int client) const;

  AdversaryConfig config_;
  int num_clients_;
  /// spec index per client; -1 = honest.
  std::vector<int> spec_of_client_;
};

}  // namespace comfedsv

#endif  // COMFEDSV_FL_ADVERSARY_H_
