#include "fl/adversary.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <string>

#include "common/check.h"
#include "common/fingerprint.h"
#include "data/noise.h"

namespace comfedsv {
namespace {

std::string SpecLabel(const AdversarySpec& spec) {
  return "adversary spec for client " + std::to_string(spec.client);
}

bool IsRate(double v) { return v >= 0.0 && v <= 1.0; }

}  // namespace

Status AdversaryModel::Validate(const AdversaryConfig& config,
                                int num_clients) {
  std::vector<bool> seen(static_cast<size_t>(num_clients), false);
  for (const AdversarySpec& spec : config.specs) {
    if (spec.client < 0 || spec.client >= num_clients) {
      return Status::InvalidArgument(SpecLabel(spec) +
                                     ": client out of range");
    }
    if (seen[spec.client]) {
      return Status::InvalidArgument(SpecLabel(spec) +
                                     ": duplicate spec for client");
    }
    seen[spec.client] = true;
    if (!std::isfinite(spec.intensity)) {
      return Status::InvalidArgument(SpecLabel(spec) +
                                     ": intensity must be finite");
    }
    switch (spec.kind) {
      case AdversaryKind::kHonest:
        break;
      case AdversaryKind::kFreeRider:
        if (!std::isfinite(spec.camouflage) || spec.camouflage < 0.0) {
          return Status::InvalidArgument(
              SpecLabel(spec) + ": camouflage must be finite and >= 0");
        }
        break;
      case AdversaryKind::kGradientScaler:
        break;
      case AdversaryKind::kColluder:
        if (spec.accomplice < 0 || spec.accomplice >= num_clients) {
          return Status::InvalidArgument(SpecLabel(spec) +
                                         ": accomplice out of range");
        }
        if (spec.accomplice == spec.client) {
          return Status::InvalidArgument(
              SpecLabel(spec) + ": accomplice must be another client");
        }
        break;
      case AdversaryKind::kLabelFlipper:
        if (!IsRate(spec.intensity)) {
          return Status::InvalidArgument(
              SpecLabel(spec) + ": flip rate must be in [0, 1]");
        }
        break;
      case AdversaryKind::kDropout:
        if (!IsRate(spec.intensity)) {
          return Status::InvalidArgument(
              SpecLabel(spec) + ": dropout probability must be in [0, 1]");
        }
        break;
      case AdversaryKind::kNanCorrupter:
        if (spec.intensity <= 0.0 || spec.intensity > 1.0) {
          return Status::InvalidArgument(
              SpecLabel(spec) + ": corrupt fraction must be in (0, 1]");
        }
        break;
      default:
        return Status::InvalidArgument(SpecLabel(spec) +
                                       ": unknown adversary kind");
    }
  }
  return Status::Ok();
}

AdversaryModel::AdversaryModel(AdversaryConfig config, int num_clients)
    : config_(std::move(config)),
      num_clients_(num_clients),
      spec_of_client_(static_cast<size_t>(num_clients), -1) {
  COMFEDSV_CHECK_OK(Validate(config_, num_clients));
  for (size_t s = 0; s < config_.specs.size(); ++s) {
    spec_of_client_[config_.specs[s].client] = static_cast<int>(s);
  }
}

const AdversarySpec& AdversaryModel::spec(int client) const {
  COMFEDSV_CHECK_GE(client, 0);
  COMFEDSV_CHECK_LT(client, num_clients_);
  static const AdversarySpec kHonestSpec;
  const int idx = spec_of_client_[client];
  return idx < 0 ? kHonestSpec : config_.specs[idx];
}

Rng AdversaryModel::ClientRoundRng(int round, int client) const {
  // (seed, round, client)-derived, mirroring the trainer's per-round
  // stream discipline: a resumed run re-derives identical draws without
  // replaying earlier rounds.
  return Rng(config_.seed)
      .Split(0x41445652)  // "ADVR"
      .Split(static_cast<uint64_t>(round))
      .Split(static_cast<uint64_t>(client));
}

int AdversaryModel::PoisonData(std::vector<Dataset>* client_data) const {
  COMFEDSV_CHECK(client_data != nullptr);
  COMFEDSV_CHECK_EQ(static_cast<int>(client_data->size()), num_clients_);
  int flipped = 0;
  for (const AdversarySpec& spec : config_.specs) {
    if (spec.kind != AdversaryKind::kLabelFlipper) continue;
    Rng rng = Rng(config_.seed)
                  .Split(0x464C4950)  // "FLIP"
                  .Split(static_cast<uint64_t>(spec.client));
    flipped +=
        FlipLabels(&(*client_data)[spec.client], spec.intensity, &rng);
  }
  return flipped;
}

void AdversaryModel::TransformRound(int round, const Vector& global_before,
                                    std::vector<Vector>* local_models) const {
  COMFEDSV_CHECK(local_models != nullptr);
  COMFEDSV_CHECK_EQ(static_cast<int>(local_models->size()), num_clients_);

  // Colluders duplicate their accomplice's *honest* update: snapshot the
  // deltas they may read before any transform rewrites them, so the
  // result does not depend on client ordering.
  std::vector<Vector> honest_snapshot(static_cast<size_t>(num_clients_));
  for (const AdversarySpec& spec : config_.specs) {
    if (spec.kind == AdversaryKind::kColluder) {
      honest_snapshot[spec.accomplice] = (*local_models)[spec.accomplice];
    }
  }

  for (int client = 0; client < num_clients_; ++client) {
    const int idx = spec_of_client_[client];
    if (idx < 0) continue;
    const AdversarySpec& spec = config_.specs[idx];
    Vector& update = (*local_models)[client];
    switch (spec.kind) {
      case AdversaryKind::kHonest:
      case AdversaryKind::kLabelFlipper:  // poisoned at the data layer
      case AdversaryKind::kDropout:       // intervenes at selection
        break;
      case AdversaryKind::kFreeRider: {
        update = global_before;
        if (spec.intensity != 1.0) update.Scale(spec.intensity);
        if (spec.camouflage > 0.0) {
          Rng rng = ClientRoundRng(round, client);
          for (size_t i = 0; i < update.size(); ++i) {
            update[i] += rng.NextGaussian(0.0, spec.camouflage);
          }
        }
        break;
      }
      case AdversaryKind::kGradientScaler: {
        // w^t + s * (w_i - w^t), in place.
        update.Scale(spec.intensity);
        update.Axpy(1.0 - spec.intensity, global_before);
        break;
      }
      case AdversaryKind::kColluder: {
        const Vector& accomplice = honest_snapshot[spec.accomplice];
        if (spec.intensity == 1.0) {
          update = accomplice;
        } else {
          update.Scale(1.0 - spec.intensity);
          update.Axpy(spec.intensity, accomplice);
        }
        break;
      }
      case AdversaryKind::kNanCorrupter: {
        const size_t dim = update.size();
        const size_t corrupt = std::max<size_t>(
            1, static_cast<size_t>(spec.intensity *
                                   static_cast<double>(dim)));
        for (size_t i = 0; i < std::min(corrupt, dim); ++i) {
          switch (i % 3) {
            case 0:
              update[i] = std::numeric_limits<double>::quiet_NaN();
              break;
            case 1:
              update[i] = std::numeric_limits<double>::infinity();
              break;
            default:
              update[i] = -std::numeric_limits<double>::infinity();
              break;
          }
        }
        break;
      }
    }
  }
}

std::vector<int> AdversaryModel::ApplyDropouts(
    int round, std::vector<int>* selected) const {
  COMFEDSV_CHECK(selected != nullptr);
  std::vector<int> dropped;
  for (int client : *selected) {
    const int idx = spec_of_client_[client];
    if (idx < 0) continue;
    const AdversarySpec& spec = config_.specs[idx];
    if (spec.kind != AdversaryKind::kDropout) continue;
    Rng rng = ClientRoundRng(round, client);
    if (rng.NextBernoulli(spec.intensity)) dropped.push_back(client);
  }
  if (!dropped.empty()) {
    std::vector<int> kept;
    kept.reserve(selected->size() - dropped.size());
    std::set_difference(selected->begin(), selected->end(),
                        dropped.begin(), dropped.end(),
                        std::back_inserter(kept));
    *selected = std::move(kept);
  }
  return dropped;
}

void AdversaryModel::MixFingerprint(uint64_t* hash) const {
  FingerprintMix(hash, config_.seed);
  FingerprintMix(hash, static_cast<uint64_t>(config_.specs.size()));
  for (const AdversarySpec& spec : config_.specs) {
    FingerprintMix(hash, static_cast<uint64_t>(spec.client));
    FingerprintMix(hash, static_cast<uint64_t>(spec.kind));
    FingerprintMix(hash, spec.intensity);
    FingerprintMix(hash, spec.camouflage);
    FingerprintMix(hash, static_cast<uint64_t>(spec.accomplice));
  }
}

}  // namespace comfedsv
