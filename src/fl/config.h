// Configuration types for the federated-averaging simulator.
#ifndef COMFEDSV_FL_CONFIG_H_
#define COMFEDSV_FL_CONFIG_H_

#include <cstdint>

#include "common/check.h"
#include "fl/adversary.h"

namespace comfedsv {

/// Server-side aggregation hardening (see README "Adversarial
/// robustness & detection" for the full contract). The guard runs after
/// local updates, adversarial transforms, and client selection, in one
/// deterministic sequential pass over the selected set:
///
///   1. A selected update containing any NaN/Inf is *rejected*: it is
///      excluded from the aggregate, the client's recorded local model
///      is sanitized to the round's broadcast global (a zero-information
///      update, so every downstream valuation stays finite and scores
///      the client near zero), and the client's quarantine counter is
///      incremented. The client stays in RoundRecord::selected (so
///      Assumption 1 and the completion layer are unaffected) but is
///      listed in RoundRecord::rejected.
///   2. A finite update whose delta-vs-global L2 norm exceeds
///      `clip_norm` (when > 0) is scaled back onto the clip sphere; the
///      clipped update is what both the aggregate and the valuation
///      observers see.
///   3. A client whose quarantine counter has reached
///      `quarantine_after` (when > 0) is preemptively dropped from the
///      selected set of every later round (RoundRecord::dropped).
///
/// If every selected update is rejected the round degrades to the
/// empty-selection path: the global model carries over unchanged. All
/// guard state (per-client counters) is part of FedAvgTrainerState, so
/// degraded runs checkpoint/resume bit-identically.
struct AggregationGuardConfig {
  /// Reject non-finite updates (rule 1). Defaults on: a single NaN
  /// update would otherwise silently poison the aggregate and every
  /// valuation downstream.
  bool reject_nonfinite = true;
  /// Maximum L2 norm of a client's update delta vs the broadcast global
  /// (rule 2); 0 disables clipping.
  double clip_norm = 0.0;
  /// Rejections before a client is quarantined (rule 3); 0 disables
  /// auto-quarantine (rejected updates are still excluded per round).
  int quarantine_after = 0;
};

/// Learning-rate schedule for local SGD steps.
struct LearningRateSchedule {
  enum class Kind {
    kConstant,       ///< eta_t = base
    kInverseDecay,   ///< eta_t = 2 / (mu * (gamma + t)) — the Prop. 2 rate
  };

  Kind kind = Kind::kConstant;
  double base = 0.1;   ///< used by kConstant
  double mu = 1.0;     ///< strong-convexity constant, used by kInverseDecay
  double gamma = 1.0;  ///< offset, used by kInverseDecay

  /// Learning rate for round t (0-based).
  double At(int t) const {
    COMFEDSV_CHECK_GE(t, 0);
    switch (kind) {
      case Kind::kConstant:
        return base;
      case Kind::kInverseDecay:
        return 2.0 / (mu * (gamma + static_cast<double>(t) + 1.0));
    }
    return base;
  }

  static LearningRateSchedule Constant(double base) {
    LearningRateSchedule s;
    s.kind = Kind::kConstant;
    s.base = base;
    return s;
  }

  /// The schedule from Proposition 2: eta_t = 2 / (mu (gamma + t)) with
  /// gamma = max(8 L2 / mu, 1). (The paper's print shows 8 mu / L2; the
  /// convergence theorem it cites, Li et al. 2019, uses gamma = 8 L / mu.)
  static LearningRateSchedule InverseDecay(double mu, double smoothness) {
    LearningRateSchedule s;
    s.kind = Kind::kInverseDecay;
    s.mu = mu;
    s.gamma = (8.0 * smoothness / mu > 1.0) ? 8.0 * smoothness / mu : 1.0;
    return s;
  }
};

/// Which default client-selection strategy the trainer builds when no
/// custom ClientSelector is passed to Train/Begin.
enum class SelectorKind {
  kUniform,    ///< `clients_per_round` clients uniformly without replacement
  kBernoulli,  ///< each client independently with `participation_prob`
};

/// Configuration of a FedAvg run.
struct FedAvgConfig {
  int num_rounds = 10;
  /// Default selector built by the trainer (both kinds are wrapped in
  /// EveryoneHeardSelector when `select_all_first_round` is set).
  SelectorKind selector = SelectorKind::kUniform;
  /// K: clients selected (aggregated) per round. kUniform only.
  int clients_per_round = 3;
  /// Per-round participation probability, in [0, 1]. kBernoulli only;
  /// rounds may select no one (the trainer then skips aggregation).
  double participation_prob = 0.5;
  /// Local SGD steps per client per round (paper's theory uses 1).
  int local_steps = 1;
  /// Mini-batch size for local steps; 0 = full local batch (deterministic
  /// given the seed; the paper's theory assumes deterministic updates).
  int batch_size = 0;
  LearningRateSchedule lr = LearningRateSchedule::Constant(0.1);
  /// Assumption 1 ("Everyone Being Heard"): select every client in the
  /// first round. Required by the ComFedSV completion path.
  bool select_all_first_round = true;
  /// Adversarial-client population (fl/adversary.h); empty = all honest.
  /// Lives in the config so the pipeline, streaming, and checkpoint
  /// layers plumb attack scenarios through without new surface — the
  /// trainer compiles it into an AdversaryModel at construction and
  /// mixes it into ConfigFingerprint().
  AdversaryConfig adversary;
  /// Server-side aggregation hardening against malformed updates.
  AggregationGuardConfig guard;
  /// Parallelism is no longer configured here: pass an ExecutionContext
  /// (common/execution_context.h) to FedAvgTrainer / RunValuation instead.
  uint64_t seed = 0;
};

}  // namespace comfedsv

#endif  // COMFEDSV_FL_CONFIG_H_
