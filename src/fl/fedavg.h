// FedAvg trainer (McMahan et al. 2017), as described in Sec. III of the
// paper: broadcast w^t, every client runs local SGD, the server selects
// I_t and averages the selected local models.
//
// Every client computes its local update each round even when unselected —
// that is how Algorithm 1 of the paper obtains the observable utility
// entries, and it costs no server communication for unselected clients.
//
// The trainer exposes two equivalent driving styles:
//   * `Train(observer)` — the original one-call batch run;
//   * the streaming lifecycle `Begin` / `Step` / `Finish`, which yields
//     one RoundRecord at a time and supports mid-run checkpointing
//     (`SaveState` / `RestoreState`): a run killed after round t and
//     restored from the round-t state continues bit-identically, because
//     per-round randomness is derived from (seed, round, client) and the
//     only sequentially advancing stream — client selection — is part of
//     the saved state.
#ifndef COMFEDSV_FL_FEDAVG_H_
#define COMFEDSV_FL_FEDAVG_H_

#include <memory>
#include <vector>

#include "common/execution_context.h"
#include "common/status.h"
#include "data/dataset.h"
#include "fl/config.h"
#include "fl/round_record.h"
#include "fl/selection.h"
#include "models/model.h"

namespace comfedsv {

/// Per-client accounting of the aggregation guard
/// (AggregationGuardConfig): how often each client's update was
/// rejected as non-finite, norm-clipped, or preemptively dropped under
/// quarantine, plus round-level degradation counters. A run containing
/// a NaN-corrupting client completes and reports here instead of
/// aborting.
struct QuarantineReport {
  /// Non-finite updates rejected, per client (length num_clients).
  std::vector<int64_t> rejected;
  /// Updates norm-clipped onto the clip sphere, per client.
  std::vector<int64_t> clipped;
  /// Rounds in which the client was preemptively dropped because its
  /// rejection count had reached AggregationGuardConfig::quarantine_after.
  std::vector<int64_t> quarantine_drops;
  /// Rounds where at least one selected update was rejected or dropped.
  int64_t rounds_degraded = 0;
  /// Rounds where *every* selected update was rejected — the global
  /// model carried over unchanged (the empty-round degradation path).
  int64_t rounds_fully_rejected = 0;

  /// True if client i is currently quarantined under `quarantine_after`
  /// (0 = never).
  bool IsQuarantined(int client, int quarantine_after) const {
    return quarantine_after > 0 &&
           rejected[static_cast<size_t>(client)] >= quarantine_after;
  }
};

/// Outcome of a FedAvg run.
struct TrainingResult {
  Vector final_params;
  /// Test loss of the global model before each round (length num_rounds),
  /// plus the final model's loss appended (length num_rounds + 1).
  std::vector<double> test_loss_history;
  /// Test accuracy of the final global model.
  double final_test_accuracy = 0.0;
  int rounds_run = 0;
  /// Aggregation-guard accounting for the whole run (all-zero when the
  /// guard never fired).
  QuarantineReport quarantine;
};

/// Checkpointable mid-training state: everything Step() consumes that is
/// not re-derivable from the (config, data, model) triple. Serialized by
/// io/checkpoint.h; restored via FedAvgTrainer::RestoreState.
struct FedAvgTrainerState {
  /// Fingerprint of the (config, data shape, model dim) the state was
  /// saved under; RestoreState rejects a mismatch instead of silently
  /// resuming a different run.
  uint64_t config_fingerprint = 0;
  /// Rounds already completed; Step() runs this round next.
  int next_round = 0;
  /// Global model w^{next_round}.
  Vector params;
  /// Test loss before each completed round (length next_round).
  std::vector<double> test_loss_history;
  /// The client-selection stream, advanced by `next_round` selections.
  RngState select_rng;
  /// Aggregation-guard accounting accumulated over the completed
  /// rounds. Part of the state so degraded (quarantine-active) runs
  /// resume bit-identically: the preemptive-drop decision of round t
  /// depends on the rejection counts accumulated before t.
  QuarantineReport quarantine;
};

/// Simulates FedAvg over in-memory client datasets.
class FedAvgTrainer {
 public:
  /// `model` must outlive the trainer. `client_data` entry i is client i's
  /// local dataset D_i; `test_data` is the server's test set D_c. `ctx`
  /// (optional; must outlive the trainer) parallelizes per-client local
  /// updates; results are identical for any thread count because every
  /// client draws from its own pre-split RNG stream and writes its own
  /// slot of the round record.
  FedAvgTrainer(const Model* model, std::vector<Dataset> client_data,
                Dataset test_data, FedAvgConfig config,
                ExecutionContext* ctx = nullptr);

  /// Runs the configured number of rounds. `observer` may be null; when
  /// given, OnRound fires once per round with all local updates.
  /// A custom `selector` may be passed; by default the trainer builds the
  /// config's SelectorKind, wrapped in EveryoneHeardSelector when
  /// config.select_all_first_round is set. Equivalent to Begin + Step
  /// loop + Finish.
  Result<TrainingResult> Train(RoundObserver* observer = nullptr,
                               ClientSelector* selector = nullptr);

  // --- Streaming lifecycle ---------------------------------------------

  /// Validates the config, (re)initializes the global model and the RNG
  /// streams, and arms Step(). `selector` as in Train; it must outlive
  /// the run. Calling Begin again restarts from round 0.
  Status Begin(ClientSelector* selector = nullptr);

  /// True between Begin/RestoreState and the final Step.
  bool begun() const { return begun_; }
  /// Rounds completed so far (the round Step() would run next).
  int next_round() const { return next_round_; }
  bool Done() const { return next_round_ >= config_.num_rounds; }

  /// Runs one round — local updates, selection, aggregation — and
  /// returns its record (valid until the next Step/Begin call). Requires
  /// Begin() and !Done().
  const RoundRecord& Step();

  /// Final model metrics (including the quarantine report). Requires
  /// all rounds stepped (Done()). Returns NumericalError if the global
  /// model became non-finite during the run — possible only with
  /// `config.guard.reject_nonfinite` disabled (or honest numerical
  /// divergence); the guarded path degrades gracefully instead.
  Result<TrainingResult> Finish() const;

  /// Aggregation-guard accounting accumulated so far. Requires Begin().
  const QuarantineReport& quarantine_report() const {
    COMFEDSV_CHECK_MSG(begun_, "quarantine_report() before Begin()");
    return quarantine_;
  }

  // --- Checkpointing ---------------------------------------------------

  /// Snapshot of the mid-run state after any number of Step()s.
  /// Requires Begin().
  FedAvgTrainerState SaveState() const;

  /// Rewinds/forwards the run to `state` (saved from a trainer with an
  /// identical config/data/model fingerprint). Implies Begin(selector).
  /// After a successful restore the trainer continues from
  /// state.next_round bit-identically to the run that saved it.
  Status RestoreState(const FedAvgTrainerState& state,
                      ClientSelector* selector = nullptr);

  /// Fingerprint of this trainer's (config, full data contents, model
  /// identity incl. hyperparameters — Model::MixFingerprint) — the
  /// compatibility key checked by RestoreState: a checkpoint saved
  /// under different data or a different model must not resume.
  uint64_t ConfigFingerprint() const;

  int num_clients() const { return static_cast<int>(client_data_.size()); }
  const Dataset& test_data() const { return test_data_; }
  const FedAvgConfig& config() const { return config_; }

 private:
  // One client's local training from `start` for config_.local_steps.
  Vector LocalUpdate(int client, const Vector& start, double lr,
                     Rng* client_rng) const;

  // Validates the config and installs the run's selector (building the
  // config default when `selector` is null).
  Status Arm(ClientSelector* selector);

  const Model* model_;
  std::vector<Dataset> client_data_;
  Dataset test_data_;
  FedAvgConfig config_;
  ExecutionContext* ctx_;  // not owned; null = inline execution
  /// Content hash of (client_data, test_data): O(data) to compute, so
  /// it is evaluated lazily on the first ConfigFingerprint() call and
  /// cached (the datasets are immutable after construction).
  mutable uint64_t data_fingerprint_ = 0;
  mutable bool data_fingerprint_computed_ = false;

  // Applies the aggregation guard (quarantine drops, non-finite
  // rejection, norm clipping) to the freshly selected round; runs
  // sequentially so results are thread-count invariant.
  void ApplyAggregationGuard();

  /// Compiled adversarial population (null when config.adversary is
  /// empty or invalid); built once at construction, which is also when
  /// the data-poisoning behaviors are applied to client_data_.
  std::unique_ptr<AdversaryModel> adversary_;
  /// Validation outcome of config.adversary/config.guard at
  /// construction; surfaced by Begin()/Train() instead of crashing.
  Status adversary_status_ = Status::Ok();

  // Lifecycle state (valid while begun_).
  bool begun_ = false;
  int next_round_ = 0;
  Vector params_;
  std::vector<double> test_loss_history_;
  Rng select_rng_{0};
  ClientSelector* selector_ = nullptr;  // not owned (may be default_...)
  std::unique_ptr<ClientSelector> default_selector_;
  RoundRecord record_;
  QuarantineReport quarantine_;
  /// Set when aggregation produced a non-finite global model (only
  /// reachable with the guard disabled); Finish() turns it into a
  /// NumericalError instead of handing poisoned params downstream.
  int poisoned_at_round_ = -1;
};

}  // namespace comfedsv

#endif  // COMFEDSV_FL_FEDAVG_H_
