// FedAvg trainer (McMahan et al. 2017), as described in Sec. III of the
// paper: broadcast w^t, every client runs local SGD, the server selects
// I_t and averages the selected local models.
//
// Every client computes its local update each round even when unselected —
// that is how Algorithm 1 of the paper obtains the observable utility
// entries, and it costs no server communication for unselected clients.
#ifndef COMFEDSV_FL_FEDAVG_H_
#define COMFEDSV_FL_FEDAVG_H_

#include <vector>

#include "common/execution_context.h"
#include "common/status.h"
#include "data/dataset.h"
#include "fl/config.h"
#include "fl/round_record.h"
#include "fl/selection.h"
#include "models/model.h"

namespace comfedsv {

/// Outcome of a FedAvg run.
struct TrainingResult {
  Vector final_params;
  /// Test loss of the global model before each round (length num_rounds),
  /// plus the final model's loss appended (length num_rounds + 1).
  std::vector<double> test_loss_history;
  /// Test accuracy of the final global model.
  double final_test_accuracy = 0.0;
  int rounds_run = 0;
};

/// Simulates FedAvg over in-memory client datasets.
class FedAvgTrainer {
 public:
  /// `model` must outlive the trainer. `client_data` entry i is client i's
  /// local dataset D_i; `test_data` is the server's test set D_c. `ctx`
  /// (optional; must outlive the trainer) parallelizes per-client local
  /// updates; results are identical for any thread count because every
  /// client draws from its own pre-split RNG stream and writes its own
  /// slot of the round record.
  FedAvgTrainer(const Model* model, std::vector<Dataset> client_data,
                Dataset test_data, FedAvgConfig config,
                ExecutionContext* ctx = nullptr);

  /// Runs the configured number of rounds. `observer` may be null; when
  /// given, OnRound fires once per round with all local updates.
  /// A custom `selector` may be passed; by default the trainer uses
  /// UniformSelector wrapped in EveryoneHeardSelector when
  /// config.select_all_first_round is set.
  Result<TrainingResult> Train(RoundObserver* observer = nullptr,
                               ClientSelector* selector = nullptr);

  int num_clients() const { return static_cast<int>(client_data_.size()); }
  const Dataset& test_data() const { return test_data_; }
  const FedAvgConfig& config() const { return config_; }

 private:
  // One client's local training from `start` for config_.local_steps.
  Vector LocalUpdate(int client, const Vector& start, double lr,
                     Rng* client_rng) const;

  const Model* model_;
  std::vector<Dataset> client_data_;
  Dataset test_data_;
  FedAvgConfig config_;
  ExecutionContext* ctx_;  // not owned; null = inline execution
};

}  // namespace comfedsv

#endif  // COMFEDSV_FL_FEDAVG_H_
