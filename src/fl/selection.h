// Client-selection strategies for FedAvg. The paper's server selects a
// uniform random subset each round; Assumption 1 additionally requires one
// round (WLOG the first) in which every client participates.
#ifndef COMFEDSV_FL_SELECTION_H_
#define COMFEDSV_FL_SELECTION_H_

#include <memory>
#include <vector>

#include "common/rng.h"

namespace comfedsv {

/// Strategy interface: produces the selected-client set for a round.
class ClientSelector {
 public:
  virtual ~ClientSelector() = default;

  /// Returns the sorted indices of clients selected for `round` (0-based).
  virtual std::vector<int> Select(int round, int num_clients, Rng* rng) = 0;
};

/// Selects `clients_per_round` clients uniformly without replacement.
class UniformSelector : public ClientSelector {
 public:
  explicit UniformSelector(int clients_per_round);
  std::vector<int> Select(int round, int num_clients, Rng* rng) override;

 private:
  int clients_per_round_;
};

/// Includes each client independently with probability p (the other
/// common cross-device selection model). Unlike UniformSelector the
/// selected set size varies round to round and **can be empty** — the
/// trainer then skips aggregation for that round and every valuation
/// observer records zero contribution for it.
class BernoulliSelector : public ClientSelector {
 public:
  /// Requires p in [0, 1].
  explicit BernoulliSelector(double participation_prob);
  std::vector<int> Select(int round, int num_clients, Rng* rng) override;

 private:
  double participation_prob_;
};

/// Decorator implementing Assumption 1: round 0 selects everyone, later
/// rounds delegate to the wrapped selector.
class EveryoneHeardSelector : public ClientSelector {
 public:
  explicit EveryoneHeardSelector(std::unique_ptr<ClientSelector> inner);
  std::vector<int> Select(int round, int num_clients, Rng* rng) override;

 private:
  std::unique_ptr<ClientSelector> inner_;
};

}  // namespace comfedsv

#endif  // COMFEDSV_FL_SELECTION_H_
