#include "fl/fedavg.h"

#include <memory>
#include <numeric>

#include "common/check.h"

namespace comfedsv {

FedAvgTrainer::FedAvgTrainer(const Model* model,
                             std::vector<Dataset> client_data,
                             Dataset test_data, FedAvgConfig config,
                             ExecutionContext* ctx)
    : model_(model),
      client_data_(std::move(client_data)),
      test_data_(std::move(test_data)),
      config_(config),
      ctx_(ctx) {
  COMFEDSV_CHECK(model_ != nullptr);
  COMFEDSV_CHECK(!client_data_.empty());
  for (const Dataset& d : client_data_) {
    COMFEDSV_CHECK_EQ(d.dim(), model_->input_dim());
    COMFEDSV_CHECK(!d.empty());
  }
  COMFEDSV_CHECK_EQ(test_data_.dim(), model_->input_dim());
}

Vector FedAvgTrainer::LocalUpdate(int client, const Vector& start, double lr,
                                  Rng* client_rng) const {
  const Dataset& data = client_data_[client];
  Vector params = start;
  Vector grad;
  for (int step = 0; step < config_.local_steps; ++step) {
    if (config_.batch_size > 0 &&
        static_cast<size_t>(config_.batch_size) < data.num_samples()) {
      const std::vector<int> picks = client_rng->SampleWithoutReplacement(
          static_cast<int>(data.num_samples()), config_.batch_size);
      std::vector<size_t> idx(picks.begin(), picks.end());
      Dataset batch = data.Subset(idx);
      model_->LossAndGradient(params, batch, &grad);
    } else {
      model_->LossAndGradient(params, data, &grad);
    }
    params.Axpy(-lr, grad);
  }
  return params;
}

Result<TrainingResult> FedAvgTrainer::Train(RoundObserver* observer,
                                            ClientSelector* selector) {
  if (config_.num_rounds <= 0) {
    return Status::InvalidArgument("num_rounds must be positive");
  }
  if (config_.clients_per_round <= 0 ||
      config_.clients_per_round > num_clients()) {
    return Status::InvalidArgument(
        "clients_per_round must be in [1, num_clients]");
  }

  std::unique_ptr<ClientSelector> default_selector;
  if (selector == nullptr) {
    auto uniform = std::make_unique<UniformSelector>(
        config_.clients_per_round);
    if (config_.select_all_first_round) {
      default_selector =
          std::make_unique<EveryoneHeardSelector>(std::move(uniform));
    } else {
      default_selector = std::move(uniform);
    }
    selector = default_selector.get();
  }

  Rng root(config_.seed);
  Rng init_rng = root.Split(0x494E4954);  // "INIT"
  Rng select_rng = root.Split(0x53454C43);  // "SELC"

  Vector params;
  model_->InitializeParams(&params, &init_rng);

  const int n = num_clients();

  TrainingResult result;
  result.test_loss_history.reserve(config_.num_rounds + 1);

  RoundRecord record;
  record.local_models.resize(n);
  for (int t = 0; t < config_.num_rounds; ++t) {
    const double lr = config_.lr.At(t);
    record.round = t;
    record.global_before = params;
    record.test_loss_before = model_->Loss(params, test_data_);
    result.test_loss_history.push_back(record.test_loss_before);

    // Per-client RNG streams are split from (seed, round, client) so runs
    // are reproducible regardless of thread scheduling.
    Rng round_rng = root.Split(0x524F554E).Split(static_cast<uint64_t>(t));
    std::vector<Rng> client_rngs;
    client_rngs.reserve(n);
    for (int i = 0; i < n; ++i) {
      client_rngs.push_back(round_rng.Split(static_cast<uint64_t>(i)));
    }
    ParallelFor(ctx_, n, [&](int i) {
      record.local_models[i] = LocalUpdate(i, params, lr, &client_rngs[i]);
    });

    record.selected = selector->Select(t, n, &select_rng);

    if (observer != nullptr) observer->OnRound(record);

    // Aggregate the selected local models into the next global model.
    // Bernoulli-style selectors can produce an empty round: the server
    // heard nobody, so the global model simply carries over (observers
    // record zero contribution for such rounds).
    if (!record.selected.empty()) {
      Vector next(params.size());
      for (int i : record.selected) {
        COMFEDSV_CHECK_GE(i, 0);
        COMFEDSV_CHECK_LT(i, n);
        next.Axpy(1.0, record.local_models[i]);
      }
      next.Scale(1.0 / static_cast<double>(record.selected.size()));
      params = std::move(next);
    }
  }

  result.test_loss_history.push_back(model_->Loss(params, test_data_));
  result.final_test_accuracy = model_->Accuracy(params, test_data_);
  result.rounds_run = config_.num_rounds;
  result.final_params = std::move(params);
  return result;
}

}  // namespace comfedsv
