#include "fl/fedavg.h"

#include <algorithm>
#include <cmath>
#include <memory>
#include <numeric>
#include <string>

#include "common/check.h"
#include "common/fingerprint.h"

namespace comfedsv {
namespace {

bool AllFinite(const Vector& v) {
  for (size_t i = 0; i < v.size(); ++i) {
    if (!std::isfinite(v[i])) return false;
  }
  return true;
}

// Full-content dataset hash: a checkpoint must refuse to resume when
// the data changed, not just when its shape did — the recorded rounds
// would belong to a different trajectory.
void MixDataset(uint64_t* hash, const Dataset& d) {
  FingerprintMix(hash, static_cast<uint64_t>(d.num_samples()));
  FingerprintMix(hash, static_cast<uint64_t>(d.dim()));
  FingerprintMix(hash, static_cast<uint64_t>(d.num_classes()));
  const double* features = d.features().data();
  const size_t entries = d.num_samples() * d.dim();
  for (size_t i = 0; i < entries; ++i) FingerprintMix(hash, features[i]);
  for (int label : d.labels()) {
    FingerprintMix(hash, static_cast<uint64_t>(label));
  }
}

}  // namespace

FedAvgTrainer::FedAvgTrainer(const Model* model,
                             std::vector<Dataset> client_data,
                             Dataset test_data, FedAvgConfig config,
                             ExecutionContext* ctx)
    : model_(model),
      client_data_(std::move(client_data)),
      test_data_(std::move(test_data)),
      config_(config),
      ctx_(ctx) {
  COMFEDSV_CHECK(model_ != nullptr);
  COMFEDSV_CHECK(!client_data_.empty());
  for (const Dataset& d : client_data_) {
    COMFEDSV_CHECK_EQ(d.dim(), model_->input_dim());
    COMFEDSV_CHECK(!d.empty());
  }
  COMFEDSV_CHECK_EQ(test_data_.dim(), model_->input_dim());

  // Compile the adversarial population (if any) and apply its
  // data-poisoning behaviors exactly once, before the data fingerprint
  // is computed and before any training touches the datasets. Invalid
  // specs surface as a Status from Begin()/Train(), not a crash here.
  adversary_status_ = AdversaryModel::Validate(config_.adversary,
                                               num_clients());
  if (adversary_status_.ok() && config_.adversary.any()) {
    adversary_ = std::make_unique<AdversaryModel>(config_.adversary,
                                                  num_clients());
    adversary_->PoisonData(&client_data_);
  }
}

Vector FedAvgTrainer::LocalUpdate(int client, const Vector& start, double lr,
                                  Rng* client_rng) const {
  const Dataset& data = client_data_[client];
  Vector params = start;
  Vector grad;
  for (int step = 0; step < config_.local_steps; ++step) {
    if (config_.batch_size > 0 &&
        static_cast<size_t>(config_.batch_size) < data.num_samples()) {
      const std::vector<int> picks = client_rng->SampleWithoutReplacement(
          static_cast<int>(data.num_samples()), config_.batch_size);
      std::vector<size_t> idx(picks.begin(), picks.end());
      Dataset batch = data.Subset(idx);
      model_->LossAndGradient(params, batch, &grad);
    } else {
      model_->LossAndGradient(params, data, &grad);
    }
    params.Axpy(-lr, grad);
  }
  return params;
}

uint64_t FedAvgTrainer::ConfigFingerprint() const {
  uint64_t hash = kFingerprintSeed;
  FingerprintMix(&hash, static_cast<uint64_t>(config_.num_rounds));
  FingerprintMix(&hash, static_cast<uint64_t>(config_.selector));
  FingerprintMix(&hash, static_cast<uint64_t>(config_.clients_per_round));
  FingerprintMix(&hash, config_.participation_prob);
  FingerprintMix(&hash, static_cast<uint64_t>(config_.local_steps));
  FingerprintMix(&hash, static_cast<uint64_t>(config_.batch_size));
  FingerprintMix(&hash, static_cast<uint64_t>(config_.lr.kind));
  FingerprintMix(&hash, config_.lr.base);
  FingerprintMix(&hash, config_.lr.mu);
  FingerprintMix(&hash, config_.lr.gamma);
  FingerprintMix(&hash,
                 static_cast<uint64_t>(config_.select_all_first_round));
  FingerprintMix(&hash, config_.seed);
  FingerprintMix(&hash, static_cast<uint64_t>(num_clients()));
  // Guard + adversary scenario: a checkpoint saved under one attack /
  // hardening configuration must not resume under another — the guard
  // changes selection (quarantine drops) and the aggregate itself.
  FingerprintMix(&hash,
                 static_cast<uint64_t>(config_.guard.reject_nonfinite));
  FingerprintMix(&hash, config_.guard.clip_norm);
  FingerprintMix(&hash,
                 static_cast<uint64_t>(config_.guard.quarantine_after));
  if (adversary_ != nullptr) adversary_->MixFingerprint(&hash);
  // The data-content hash is O(data): computed on the first fingerprint
  // request (plain non-checkpointed runs never pay it) and cached — the
  // datasets are immutable after construction.
  if (!data_fingerprint_computed_) {
    data_fingerprint_ = kFingerprintSeed;
    for (const Dataset& d : client_data_) {
      MixDataset(&data_fingerprint_, d);
    }
    MixDataset(&data_fingerprint_, test_data_);
    data_fingerprint_computed_ = true;
  }
  FingerprintMix(&hash, data_fingerprint_);
  model_->MixFingerprint(&hash);
  return hash;
}

Status FedAvgTrainer::Arm(ClientSelector* selector) {
  COMFEDSV_RETURN_IF_ERROR(adversary_status_);
  if (config_.num_rounds <= 0) {
    return Status::InvalidArgument("num_rounds must be positive");
  }
  if (!std::isfinite(config_.guard.clip_norm) ||
      config_.guard.clip_norm < 0.0) {
    return Status::InvalidArgument(
        "guard.clip_norm must be finite and >= 0");
  }
  if (config_.guard.quarantine_after < 0) {
    return Status::InvalidArgument("guard.quarantine_after must be >= 0");
  }
  if (config_.selector == SelectorKind::kUniform &&
      (config_.clients_per_round <= 0 ||
       config_.clients_per_round > num_clients())) {
    return Status::InvalidArgument(
        "clients_per_round must be in [1, num_clients]");
  }
  if (config_.selector == SelectorKind::kBernoulli &&
      (config_.participation_prob < 0.0 ||
       config_.participation_prob > 1.0)) {
    return Status::InvalidArgument("participation_prob must be in [0, 1]");
  }

  default_selector_.reset();
  if (selector == nullptr) {
    std::unique_ptr<ClientSelector> inner;
    if (config_.selector == SelectorKind::kBernoulli) {
      inner =
          std::make_unique<BernoulliSelector>(config_.participation_prob);
    } else {
      inner = std::make_unique<UniformSelector>(config_.clients_per_round);
    }
    if (config_.select_all_first_round) {
      default_selector_ =
          std::make_unique<EveryoneHeardSelector>(std::move(inner));
    } else {
      default_selector_ = std::move(inner);
    }
    selector = default_selector_.get();
  }
  selector_ = selector;
  return Status::Ok();
}

Status FedAvgTrainer::Begin(ClientSelector* selector) {
  COMFEDSV_RETURN_IF_ERROR(Arm(selector));

  Rng root(config_.seed);
  Rng init_rng = root.Split(0x494E4954);  // "INIT"
  select_rng_ = root.Split(0x53454C43);   // "SELC"
  model_->InitializeParams(&params_, &init_rng);

  next_round_ = 0;
  test_loss_history_.clear();
  test_loss_history_.reserve(config_.num_rounds + 1);
  record_ = RoundRecord();
  record_.local_models.resize(num_clients());
  quarantine_ = QuarantineReport();
  quarantine_.rejected.assign(num_clients(), 0);
  quarantine_.clipped.assign(num_clients(), 0);
  quarantine_.quarantine_drops.assign(num_clients(), 0);
  poisoned_at_round_ = -1;
  begun_ = true;
  return Status::Ok();
}

void FedAvgTrainer::ApplyAggregationGuard() {
  record_.rejected.clear();

  // Rule 3 first: a client already quarantined (from earlier rounds'
  // rejections) is dropped before its update is even looked at.
  if (config_.guard.quarantine_after > 0) {
    std::vector<int> kept;
    kept.reserve(record_.selected.size());
    for (int i : record_.selected) {
      if (quarantine_.IsQuarantined(i, config_.guard.quarantine_after)) {
        record_.dropped.push_back(i);
        ++quarantine_.quarantine_drops[i];
      } else {
        kept.push_back(i);
      }
    }
    if (kept.size() != record_.selected.size()) {
      record_.selected = std::move(kept);
      std::sort(record_.dropped.begin(), record_.dropped.end());
    }
  }

  const size_t selected_before = record_.selected.size();
  for (int i : record_.selected) {
    Vector& update = record_.local_models[i];
    // Rule 1: non-finite updates never reach the aggregate. The
    // recorded local model is sanitized to the broadcast global — a
    // zero-information update — so valuation arithmetic downstream
    // stays finite and scores the client near zero.
    if (config_.guard.reject_nonfinite && !AllFinite(update)) {
      update = record_.global_before;
      record_.rejected.push_back(i);
      ++quarantine_.rejected[i];
      continue;
    }
    // Rule 2: norm-clip the update delta. The clipped update is
    // canonical — aggregate and observers see the same vector.
    if (config_.guard.clip_norm > 0.0) {
      Vector delta = update;
      delta.Axpy(-1.0, record_.global_before);
      const double norm = delta.Norm2();
      if (norm > config_.guard.clip_norm) {
        update = record_.global_before;
        update.Axpy(config_.guard.clip_norm / norm, delta);
        ++quarantine_.clipped[i];
      }
    }
  }

  if (!record_.rejected.empty() || !record_.dropped.empty()) {
    ++quarantine_.rounds_degraded;
  }
  if (selected_before > 0 &&
      record_.rejected.size() == selected_before) {
    ++quarantine_.rounds_fully_rejected;
  }
}

const RoundRecord& FedAvgTrainer::Step() {
  COMFEDSV_CHECK_MSG(begun_, "Step() before Begin()");
  COMFEDSV_CHECK_MSG(!Done(), "Step() past the last round");
  const int t = next_round_;
  const int n = num_clients();
  const double lr = config_.lr.At(t);
  record_.round = t;
  record_.global_before = params_;
  record_.test_loss_before = model_->Loss(params_, test_data_);
  test_loss_history_.push_back(record_.test_loss_before);

  // Per-client RNG streams are split from (seed, round, client) so runs
  // are reproducible regardless of thread scheduling — and so a resumed
  // run re-derives the identical streams without replaying earlier
  // rounds.
  Rng round_rng =
      Rng(config_.seed).Split(0x524F554E).Split(static_cast<uint64_t>(t));
  std::vector<Rng> client_rngs;
  client_rngs.reserve(n);
  for (int i = 0; i < n; ++i) {
    client_rngs.push_back(round_rng.Split(static_cast<uint64_t>(i)));
  }
  ParallelFor(ctx_, n, [&](int i) {
    record_.local_models[i] = LocalUpdate(i, params_, lr, &client_rngs[i]);
  });

  // Adversarial transforms rewrite the updates the server *receives*;
  // they run sequentially after the parallel honest computation, so the
  // round stays thread-count invariant.
  if (adversary_ != nullptr) {
    adversary_->TransformRound(t, record_.global_before,
                               &record_.local_models);
  }

  record_.selected = selector_->Select(t, n, &select_rng_);
  record_.dropped.clear();
  if (adversary_ != nullptr) {
    record_.dropped = adversary_->ApplyDropouts(t, &record_.selected);
  }
  ApplyAggregationGuard();

  // Aggregate the surviving selected local models into the next global
  // model. Empty rounds (Bernoulli selectors hearing nobody, or every
  // update rejected by the guard) carry the global model over unchanged;
  // observers record zero contribution for such rounds.
  std::vector<int> aggregated;
  aggregated.reserve(record_.selected.size());
  std::set_difference(record_.selected.begin(), record_.selected.end(),
                      record_.rejected.begin(), record_.rejected.end(),
                      std::back_inserter(aggregated));
  if (!aggregated.empty()) {
    Vector next(params_.size());
    for (int i : aggregated) {
      COMFEDSV_CHECK_GE(i, 0);
      COMFEDSV_CHECK_LT(i, n);
      next.Axpy(1.0, record_.local_models[i]);
    }
    next.Scale(1.0 / static_cast<double>(aggregated.size()));
    params_ = std::move(next);
    // Only reachable with the guard disabled (or honest divergence):
    // remember the first poisoned round and surface it from Finish().
    if (poisoned_at_round_ < 0 && !AllFinite(params_)) {
      poisoned_at_round_ = t;
    }
  }
  ++next_round_;
  return record_;
}

Result<TrainingResult> FedAvgTrainer::Finish() const {
  if (!begun_) {
    return Status::FailedPrecondition("Finish() before Begin()");
  }
  if (!Done()) {
    return Status::FailedPrecondition("Finish() before the last round");
  }
  if (poisoned_at_round_ >= 0) {
    return Status::NumericalError(
        "global model became non-finite at round " +
        std::to_string(poisoned_at_round_) +
        " (enable guard.reject_nonfinite to degrade gracefully)");
  }
  TrainingResult result;
  result.test_loss_history = test_loss_history_;
  result.test_loss_history.push_back(model_->Loss(params_, test_data_));
  result.final_test_accuracy = model_->Accuracy(params_, test_data_);
  result.rounds_run = config_.num_rounds;
  result.final_params = params_;
  result.quarantine = quarantine_;
  return result;
}

FedAvgTrainerState FedAvgTrainer::SaveState() const {
  COMFEDSV_CHECK_MSG(begun_, "SaveState() before Begin()");
  FedAvgTrainerState state;
  state.config_fingerprint = ConfigFingerprint();
  state.next_round = next_round_;
  state.params = params_;
  state.test_loss_history = test_loss_history_;
  state.select_rng = select_rng_.SaveState();
  state.quarantine = quarantine_;
  return state;
}

Status FedAvgTrainer::RestoreState(const FedAvgTrainerState& state,
                                   ClientSelector* selector) {
  COMFEDSV_RETURN_IF_ERROR(Begin(selector));
  if (state.config_fingerprint != ConfigFingerprint()) {
    return Status::FailedPrecondition(
        "trainer state was saved under a different config/data/model");
  }
  if (state.next_round < 0 || state.next_round > config_.num_rounds) {
    return Status::InvalidArgument("trainer state round out of range");
  }
  if (state.params.size() != params_.size()) {
    return Status::InvalidArgument(
        "trainer state parameter dimension mismatch");
  }
  if (state.test_loss_history.size() !=
      static_cast<size_t>(state.next_round)) {
    return Status::InvalidArgument(
        "trainer state loss history length mismatch");
  }
  const size_t n = static_cast<size_t>(num_clients());
  if (state.quarantine.rejected.size() != n ||
      state.quarantine.clipped.size() != n ||
      state.quarantine.quarantine_drops.size() != n) {
    return Status::InvalidArgument(
        "trainer state quarantine counters length mismatch");
  }
  for (size_t i = 0; i < n; ++i) {
    if (state.quarantine.rejected[i] < 0 ||
        state.quarantine.clipped[i] < 0 ||
        state.quarantine.quarantine_drops[i] < 0) {
      return Status::InvalidArgument(
          "trainer state quarantine counters must be non-negative");
    }
  }
  if (state.quarantine.rounds_degraded < 0 ||
      state.quarantine.rounds_fully_rejected < 0 ||
      state.quarantine.rounds_degraded > state.next_round ||
      state.quarantine.rounds_fully_rejected >
          state.quarantine.rounds_degraded) {
    return Status::InvalidArgument(
        "trainer state quarantine round counters out of range");
  }
  next_round_ = state.next_round;
  params_ = state.params;
  test_loss_history_ = state.test_loss_history;
  select_rng_ = Rng::FromState(state.select_rng);
  quarantine_ = state.quarantine;
  return Status::Ok();
}

Result<TrainingResult> FedAvgTrainer::Train(RoundObserver* observer,
                                            ClientSelector* selector) {
  COMFEDSV_RETURN_IF_ERROR(Begin(selector));
  while (!Done()) {
    const RoundRecord& record = Step();
    if (observer != nullptr) observer->OnRound(record);
  }
  return Finish();
}

}  // namespace comfedsv
