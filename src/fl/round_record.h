// Per-round snapshot handed to observers: the global model before the
// round, every client's local update (Algorithm 1 has all clients compute
// updates each round), and the selected set I_t.
#ifndef COMFEDSV_FL_ROUND_RECORD_H_
#define COMFEDSV_FL_ROUND_RECORD_H_

#include <vector>

#include "linalg/vector.h"

namespace comfedsv {

/// Immutable view of one FedAvg round, from the server's perspective.
struct RoundRecord {
  int round = 0;
  /// Global model w^t broadcast at the start of the round.
  Vector global_before;
  /// Local models w_i^{t+1} for every client i (indexed by client id).
  std::vector<Vector> local_models;
  /// Sorted selected set I_t: the clients the server *heard* this round.
  /// With the aggregation guard active this is the valuation-facing set;
  /// the aggregate averages `selected` minus `rejected`.
  std::vector<int> selected;
  /// Sorted subset of `selected` whose updates the aggregation guard
  /// rejected as non-finite this round. Their entries in `local_models`
  /// are sanitized to `global_before` (a zero-information update), so
  /// downstream valuation arithmetic stays finite and scores them near
  /// zero; the server aggregate excludes them entirely.
  std::vector<int> rejected;
  /// Sorted clients removed from the selected set before aggregation:
  /// adversarial mid-round dropouts plus quarantined clients. Disjoint
  /// from `selected`; observers treat them exactly like unselected
  /// clients (zero contribution this round).
  std::vector<int> dropped;
  /// Test loss of the global model before the round: l(w^t; D_c). The
  /// per-round utility is u_t(w) = test_loss_before - l(w; D_c).
  double test_loss_before = 0.0;
};

/// Observer hook invoked by the trainer after local updates and selection
/// but before (conceptually: independently of) aggregation.
class RoundObserver {
 public:
  virtual ~RoundObserver() = default;
  virtual void OnRound(const RoundRecord& record) = 0;
};

/// Fans each round record out to several observers, in registration
/// order. Used to evaluate several valuation metrics on one training run.
class FanoutObserver : public RoundObserver {
 public:
  /// Registers an observer; null is ignored. Does not take ownership.
  void Register(RoundObserver* observer) {
    if (observer != nullptr) observers_.push_back(observer);
  }

  void OnRound(const RoundRecord& record) override {
    for (RoundObserver* o : observers_) o->OnRound(record);
  }

 private:
  std::vector<RoundObserver*> observers_;
};

}  // namespace comfedsv

#endif  // COMFEDSV_FL_ROUND_RECORD_H_
