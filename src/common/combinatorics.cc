#include "common/combinatorics.h"

#include <cmath>
#include <limits>

#include "common/check.h"

namespace comfedsv {

double LogFactorial(int n) {
  COMFEDSV_CHECK_GE(n, 0);
  return std::lgamma(static_cast<double>(n) + 1.0);
}

double LogBinomial(int n, int k) {
  if (k < 0 || k > n) return -std::numeric_limits<double>::infinity();
  return LogFactorial(n) - LogFactorial(k) - LogFactorial(n - k);
}

double Binomial(int n, int k) {
  if (k < 0 || k > n) return 0.0;
  return std::round(std::exp(LogBinomial(n, k)));
}

double LogMultinomial(int n, const std::vector<int>& parts) {
  int total = 0;
  double log_denominator = 0.0;
  for (int k : parts) {
    COMFEDSV_CHECK_GE(k, 0);
    total += k;
    log_denominator += LogFactorial(k);
  }
  COMFEDSV_CHECK_EQ(total, n);
  return LogFactorial(n) - log_denominator;
}

double Observation1TailProbability(int num_rounds, double p, int s,
                                   bool paper_literal_form) {
  COMFEDSV_CHECK_GE(num_rounds, 1);
  COMFEDSV_CHECK_GE(s, 0);
  COMFEDSV_CHECK_GE(p, 0.0);
  COMFEDSV_CHECK_LE(p, 0.5);
  const int T = num_rounds;
  if (s == 0) return 1.0;

  // P(sum >= s) where each of the T rounds contributes +1 w.p. p, -1 w.p. p,
  // 0 w.p. (1-2p). With a = net sum and b = number of -1 steps, the number
  // of +1 steps is a+b and of 0 steps is T-a-2b.
  const double log_p = (p > 0.0) ? std::log(p)
                                 : -std::numeric_limits<double>::infinity();
  const double zero_prob = paper_literal_form ? (1.0 - p) : (1.0 - 2.0 * p);
  const double log_zero =
      (zero_prob > 0.0) ? std::log(zero_prob)
                        : -std::numeric_limits<double>::infinity();

  double upper_tail = 0.0;
  for (int a = s; a <= T; ++a) {
    for (int b = 0; 2 * b + a <= T; ++b) {
      const int zeros = T - a - 2 * b;
      double log_term = LogMultinomial(T, {b, zeros, b + a}) +
                        (2 * b + a) * log_p + zeros * log_zero;
      if (std::isfinite(log_term)) upper_tail += std::exp(log_term);
    }
  }
  // |sum| >= s is twice the upper tail by symmetry (for s >= 1 the events
  // sum >= s and sum <= -s are disjoint).
  return std::min(1.0, 2.0 * upper_tail);
}

double SelectionSplitProbability(int num_clients, int num_selected) {
  COMFEDSV_CHECK_GE(num_clients, 2);
  COMFEDSV_CHECK_GE(num_selected, 0);
  COMFEDSV_CHECK_LE(num_selected, num_clients);
  const double n = num_clients;
  const double m = num_selected;
  return m * (n - m) / (n * (n - 1.0));
}

}  // namespace comfedsv
