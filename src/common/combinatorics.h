// Combinatorial primitives shared by the Shapley machinery and the
// Observation-1 probability bound (Fig. 1): log-factorials, (log-)binomial
// and multinomial coefficients, and the exact P_s series.
#ifndef COMFEDSV_COMMON_COMBINATORICS_H_
#define COMFEDSV_COMMON_COMBINATORICS_H_

#include <cstdint>
#include <vector>

namespace comfedsv {

/// log(n!) computed via lgamma; exact enough for n up to millions.
double LogFactorial(int n);

/// log C(n, k); returns -inf if k < 0 or k > n.
double LogBinomial(int n, int k);

/// C(n, k) as a double (may round for very large n); 0 outside the range.
double Binomial(int n, int k);

/// log of the multinomial coefficient n! / (k_1! ... k_m!).
/// Requires all k_i >= 0 and sum k_i == n.
double LogMultinomial(int n, const std::vector<int>& parts);

/// Exact P(|s_i - s_j| >= s·δ) from Observation 1 of the paper.
///
/// Over T rounds, each round independently increments the gap by +1 with
/// probability p (client i selected, j not), by -1 with probability p
/// (j selected, i not), else 0. Returns P(|gap| >= s).
///
/// The paper's printed series uses (1-p)^{T-a-2b} for the zero-step factor;
/// the exact multinomial derivation requires (1-2p). Pass
/// `paper_literal_form = true` to evaluate the formula exactly as printed
/// (used for comparison in the Fig. 1 bench).
double Observation1TailProbability(int num_rounds, double p, int s,
                                   bool paper_literal_form = false);

/// Selection-collision probability p = m(N-m) / (N(N-1)) from Observation 1:
/// the probability that a uniformly random size-m subset of N clients
/// contains client i but not client j.
double SelectionSplitProbability(int num_clients, int num_selected);

}  // namespace comfedsv

#endif  // COMFEDSV_COMMON_COMBINATORICS_H_
