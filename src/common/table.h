// Aligned-text table and CSV emitters used by the per-figure bench binaries
// to print the same rows/series the paper plots.
#ifndef COMFEDSV_COMMON_TABLE_H_
#define COMFEDSV_COMMON_TABLE_H_

#include <string>
#include <vector>

namespace comfedsv {

/// Collects rows of string cells and renders them as an aligned text table
/// or as CSV. The first added row is treated as the header.
class Table {
 public:
  explicit Table(std::vector<std::string> header);

  /// Adds a data row; must have the same arity as the header.
  void AddRow(std::vector<std::string> cells);

  /// Convenience: formats doubles with `precision` significant digits.
  static std::string Num(double v, int precision = 6);

  /// Renders an aligned, pipe-separated text table.
  std::string ToText() const;

  /// Renders RFC-4180-ish CSV (cells containing commas/quotes are quoted).
  std::string ToCsv() const;

  size_t num_rows() const { return rows_.size(); }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace comfedsv

#endif  // COMFEDSV_COMMON_TABLE_H_
