#include "common/rng.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"

namespace comfedsv {
namespace {

// SplitMix64: used only to expand seeds into full generator state.
uint64_t SplitMix64(uint64_t* x) {
  uint64_t z = (*x += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t s = seed;
  for (auto& word : state_) word = SplitMix64(&s);
}

uint64_t Rng::NextUint64() {
  const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
  const uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = Rotl(state_[3], 45);
  return result;
}

uint64_t Rng::NextUint64(uint64_t n) {
  COMFEDSV_CHECK_GT(n, 0u);
  // Rejection sampling to avoid modulo bias.
  const uint64_t threshold = (0ULL - n) % n;  // == 2^64 mod n
  for (;;) {
    uint64_t r = NextUint64();
    if (r >= threshold) return r % n;
  }
}

int Rng::NextInt(int lo, int hi) {
  COMFEDSV_CHECK_LE(lo, hi);
  uint64_t span = static_cast<uint64_t>(hi) - static_cast<uint64_t>(lo) + 1;
  return lo + static_cast<int>(NextUint64(span));
}

double Rng::NextDouble() {
  return static_cast<double>(NextUint64() >> 11) * 0x1.0p-53;
}

double Rng::NextDouble(double lo, double hi) {
  return lo + (hi - lo) * NextDouble();
}

double Rng::NextGaussian() {
  if (has_cached_gaussian_) {
    has_cached_gaussian_ = false;
    return cached_gaussian_;
  }
  // Box–Muller; u1 in (0,1] to avoid log(0).
  double u1 = 1.0 - NextDouble();
  double u2 = NextDouble();
  double radius = std::sqrt(-2.0 * std::log(u1));
  double theta = 2.0 * M_PI * u2;
  cached_gaussian_ = radius * std::sin(theta);
  has_cached_gaussian_ = true;
  return radius * std::cos(theta);
}

double Rng::NextGaussian(double mean, double stddev) {
  return mean + stddev * NextGaussian();
}

bool Rng::NextBernoulli(double p) { return NextDouble() < p; }

Rng Rng::Split(uint64_t salt) const {
  // Mix current state words with the salt through SplitMix64; the child's
  // seed depends only on (state, salt), so distinct salts give independent
  // streams regardless of creation order.
  uint64_t mix = state_[0] ^ Rotl(state_[1], 13) ^ Rotl(state_[2], 29) ^
                 Rotl(state_[3], 41);
  uint64_t s = mix ^ (salt * 0x9e3779b97f4a7c15ULL + 0x2545f4914f6cdd1dULL);
  return Rng(SplitMix64(&s));
}

RngState Rng::SaveState() const {
  RngState s;
  for (int i = 0; i < 4; ++i) s.words[i] = state_[i];
  s.has_cached_gaussian = has_cached_gaussian_;
  s.cached_gaussian = cached_gaussian_;
  return s;
}

Rng Rng::FromState(const RngState& state) {
  // xoshiro256** is stuck at zero forever from the all-zero state. No
  // SaveState() of a live generator can produce it (seeding always
  // yields non-zero words), so hitting it means the caller built the
  // state by hand or loaded it unvalidated — the checkpoint loader
  // (io/checkpoint.cc) rejects it as corrupt; enforce the same here.
  COMFEDSV_CHECK_MSG((state.words[0] | state.words[1] | state.words[2] |
                      state.words[3]) != 0,
                     "Rng::FromState: all-zero xoshiro state");
  Rng rng(0);
  for (int i = 0; i < 4; ++i) rng.state_[i] = state.words[i];
  rng.has_cached_gaussian_ = state.has_cached_gaussian;
  rng.cached_gaussian_ = state.cached_gaussian;
  return rng;
}

std::vector<int> Rng::Permutation(int n) {
  COMFEDSV_CHECK_GE(n, 0);
  std::vector<int> perm(n);
  for (int i = 0; i < n; ++i) perm[i] = i;
  Shuffle(&perm);
  return perm;
}

std::vector<int> Rng::SampleWithoutReplacement(int n, int k) {
  COMFEDSV_CHECK_GE(k, 0);
  COMFEDSV_CHECK_LE(k, n);
  // Floyd's algorithm: O(k) expected insertions, uniform over subsets.
  std::vector<int> chosen;
  chosen.reserve(k);
  for (int j = n - k; j < n; ++j) {
    int t = NextInt(0, j);
    if (std::find(chosen.begin(), chosen.end(), t) == chosen.end()) {
      chosen.push_back(t);
    } else {
      chosen.push_back(j);
    }
  }
  std::sort(chosen.begin(), chosen.end());
  return chosen;
}

}  // namespace comfedsv
