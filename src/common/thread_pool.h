// Fixed-size worker pool used to parallelise per-client local updates,
// coalition utility evaluation, and ALS row solves.
//
// A pool of size 0 or 1 executes tasks inline on the calling thread, which
// keeps unit tests deterministic.
#ifndef COMFEDSV_COMMON_THREAD_POOL_H_
#define COMFEDSV_COMMON_THREAD_POOL_H_

#include <deque>
#include <functional>
#include <thread>
#include <vector>

#include "common/thread_annotations.h"

namespace comfedsv {

/// A minimal fixed-size thread pool with a blocking Wait() barrier.
class ThreadPool {
 public:
  /// Creates a pool with `num_threads` workers. 0 or 1 means inline
  /// execution (no worker threads are spawned).
  explicit ThreadPool(int num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task. Tasks must not throw; use ParallelFor for work that
  /// may fail.
  void Submit(std::function<void()> task);

  /// Blocks until all submitted tasks have completed.
  void Wait();

  /// Number of worker threads (0 for inline pools).
  int num_threads() const { return static_cast<int>(workers_.size()); }

  /// Runs `fn(i)` for i in [0, n), distributing across the pool, and waits.
  /// With an inline pool this is a plain loop. If any invocation throws,
  /// remaining indices are abandoned as soon as possible and the first
  /// captured exception is rethrown on the calling thread after all
  /// in-flight work has drained.
  void ParallelFor(int n, const std::function<void(int)>& fn);

  /// Runs `fn(begin, end)` over a fixed partition of [0, n) into
  /// contiguous blocks of `block_size` indices (the last block may be
  /// shorter) and waits. The partition depends only on n and block_size —
  /// never on the thread count — so per-block scratch reuse and
  /// per-block accumulation stay deterministic. Exceptions propagate as
  /// in ParallelFor.
  void ParallelForBlocked(int n, int block_size,
                          const std::function<void(int, int)>& fn);

 private:
  void WorkerLoop();

  std::vector<std::thread> workers_;  // immutable after construction
  Mutex mu_;
  std::deque<std::function<void()>> queue_ GUARDED_BY(mu_);
  CondVar work_available_;
  CondVar all_done_;
  int in_flight_ GUARDED_BY(mu_) = 0;  // queued + running tasks
  bool shutting_down_ GUARDED_BY(mu_) = false;
};

}  // namespace comfedsv

#endif  // COMFEDSV_COMMON_THREAD_POOL_H_
