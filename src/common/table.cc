#include "common/table.h"

#include <algorithm>
#include <cstdio>
#include <sstream>

#include "common/check.h"

namespace comfedsv {

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {
  COMFEDSV_CHECK(!header_.empty());
}

void Table::AddRow(std::vector<std::string> cells) {
  COMFEDSV_CHECK_EQ(cells.size(), header_.size());
  rows_.push_back(std::move(cells));
}

std::string Table::Num(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*g", precision, v);
  return buf;
}

std::string Table::ToText() const {
  std::vector<size_t> widths(header_.size());
  for (size_t c = 0; c < header_.size(); ++c) widths[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  std::ostringstream out;
  auto emit_row = [&](const std::vector<std::string>& row) {
    for (size_t c = 0; c < row.size(); ++c) {
      out << (c == 0 ? "| " : " ") << row[c]
          << std::string(widths[c] - row[c].size(), ' ') << " |";
    }
    out << "\n";
  };
  emit_row(header_);
  for (size_t c = 0; c < header_.size(); ++c) {
    out << (c == 0 ? "|" : "") << std::string(widths[c] + 2, '-') << "|";
  }
  out << "\n";
  for (const auto& row : rows_) emit_row(row);
  return out.str();
}

std::string Table::ToCsv() const {
  auto quote = [](const std::string& s) {
    if (s.find_first_of(",\"\n") == std::string::npos) return s;
    std::string q = "\"";
    for (char ch : s) {
      if (ch == '"') q += "\"\"";
      else q += ch;
    }
    q += "\"";
    return q;
  };
  std::ostringstream out;
  auto emit_row = [&](const std::vector<std::string>& row) {
    for (size_t c = 0; c < row.size(); ++c) {
      if (c) out << ",";
      out << quote(row[c]);
    }
    out << "\n";
  };
  emit_row(header_);
  for (const auto& row : rows_) emit_row(row);
  return out.str();
}

}  // namespace comfedsv
