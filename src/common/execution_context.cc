#include "common/execution_context.h"

namespace comfedsv {

ExecutionContext::ExecutionContext(int num_threads, uint64_t seed,
                                   LogLevel log_level)
    : pool_(num_threads <= 1 ? 0 : num_threads),
      root_(seed),
      seed_(seed),
      log_level_(log_level) {}

Rng ExecutionContext::MakeRng(uint64_t salt) const {
  return root_.Split(salt);
}

std::vector<Rng> ExecutionContext::MakeTaskRngs(uint64_t salt, int n) const {
  std::vector<Rng> streams;
  streams.reserve(n > 0 ? static_cast<size_t>(n) : 0);
  const Rng region = root_.Split(salt);
  for (int i = 0; i < n; ++i) {
    streams.push_back(region.Split(static_cast<uint64_t>(i)));
  }
  return streams;
}

void ExecutionContext::Log(LogLevel level, const std::string& message) const {
  if (!ShouldLog(level)) return;
  internal::EmitLog(level, message);
}

void ParallelFor(ExecutionContext* ctx, int n,
                 const std::function<void(int)>& fn) {
  if (ctx != nullptr) {
    ctx->ParallelFor(n, fn);
    return;
  }
  for (int i = 0; i < n; ++i) fn(i);
}

}  // namespace comfedsv
