// Deterministic fault-injection points.
//
// A *failpoint* is a named hook compiled into production code (today:
// every FileEnv operation, see io/file_env.h). Tests and benches arm a
// failpoint with a deterministic *trigger policy* plus an opaque action
// code; the instrumented code calls FailpointRegistry::Hit(name) and, if
// the policy fires, performs the armed action (inject an error, tear a
// write, simulate a crash — the action semantics belong to the call
// site, the registry only decides *when*).
//
// Determinism contract: every policy is a pure function of the armed
// spec and the per-name hit counter, and counters advance under a lock
// in call order. All checkpoint I/O runs on the driver thread, so a
// fault schedule replays identically across runs and thread counts —
// the crash-sweep harness (tests/io_recovery_test.cc) depends on this
// to enumerate "crash at the k-th fsync" style schedules exhaustively.
//
// When nothing is armed and tracing is off, Hit() is a single relaxed
// atomic load — cheap enough to leave in release builds.
#ifndef COMFEDSV_COMMON_FAILPOINT_H_
#define COMFEDSV_COMMON_FAILPOINT_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "common/thread_annotations.h"

namespace comfedsv {

/// What a firing failpoint tells the instrumented call site to do.
/// `action` is an opaque code owned by the call site (e.g.
/// io/file_env.h's FaultAction); `arg` is an action-specific operand
/// (byte offset for short writes / torn renames, etc.).
struct FailpointFire {
  int action = 0;
  int64_t arg = 0;
};

/// When an armed failpoint fires, as a function of its per-name hit
/// counter (1-based: the first Hit() after arming is hit 1).
struct FailpointTrigger {
  enum class Policy {
    kOnHit,        ///< fire exactly on hit `n`
    kEveryN,       ///< fire on hits n, 2n, 3n, ...
    kProbability,  ///< fire when hash(seed, hit) < probability — a
                   ///< seeded, replayable coin flip per hit
  };
  Policy policy = Policy::kOnHit;
  int64_t n = 1;
  double probability = 0.0;
  uint64_t seed = 0;
  /// Disarm after the first fire (the "one-shot kill" schedule: fault
  /// once, then let recovery run clean).
  bool one_shot = false;

  static FailpointTrigger OnHit(int64_t hit, bool one_shot = true);
  static FailpointTrigger EveryN(int64_t n);
  static FailpointTrigger WithProbability(double p, uint64_t seed);
};

/// Process-wide registry of named failpoints. All methods are
/// thread-safe; arming/clearing mid-run is allowed (the crash harness
/// disarms everything between "crash" and recovery).
class FailpointRegistry {
 public:
  static FailpointRegistry& Global();

  /// Arms `name`. Re-arming replaces the spec and resets the hit
  /// counter for the name, so schedules compose per test case.
  void Arm(const std::string& name, FailpointTrigger trigger, int action,
           int64_t arg = 0);
  void Clear(const std::string& name);
  /// Disarms every failpoint, zeroes all hit counters, clears tracing
  /// state. Call between test cases.
  void ClearAll();

  /// The instrumentation hook: counts the hit (when armed or tracing)
  /// and returns the armed action if the trigger fires.
  std::optional<FailpointFire> Hit(const std::string& name);

  /// Hit-count bookkeeping — with tracing on, every Hit() is counted
  /// even for unarmed names. A pilot run with tracing enumerates the
  /// fault surface of a workload (which failpoints, how many chances
  /// each), which the crash sweep then schedules against.
  void set_tracing(bool tracing);
  int64_t hits(const std::string& name) const;
  /// Every name seen since ClearAll, with its hit count, in name order.
  std::vector<std::pair<std::string, int64_t>> HitCounts() const;

 private:
  struct Armed {
    FailpointTrigger trigger;
    int action = 0;
    int64_t arg = 0;
  };

  bool Fires(Armed* armed, int64_t hit) REQUIRES(mu_);

  mutable Mutex mu_;
  std::map<std::string, Armed> armed_ GUARDED_BY(mu_);
  std::map<std::string, int64_t> counts_ GUARDED_BY(mu_);
  // Fast-path gate (armed_ non-empty or tracing_): read without mu_ so an
  // unarmed Hit() stays one relaxed load; always written under mu_.
  std::atomic<bool> enabled_{false};
  bool tracing_ GUARDED_BY(mu_) = false;
};

}  // namespace comfedsv

#endif  // COMFEDSV_COMMON_FAILPOINT_H_
