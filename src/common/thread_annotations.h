// Clang thread-safety-analysis annotations plus the annotated lock
// primitives the library's lock-holding classes use.
//
// The macros expand to Clang `capability` attributes under Clang and to
// nothing elsewhere, so GCC builds are unaffected. The dedicated
// `thread-safety` CI job compiles with clang and
// `-Wthread-safety -Werror=thread-safety` (-DCOMFEDSV_THREAD_SAFETY=ON),
// turning every unguarded access to a GUARDED_BY member into a build
// failure — the compile-time leg of the determinism contract that
// tests/determinism_test.cc checks dynamically.
//
// Conventions (README "Static analysis & correctness tooling"):
//   * every mutex-protected member is declared GUARDED_BY(mu_) (or
//     PT_GUARDED_BY for pointees mutated under the lock);
//   * lock-holding classes use comfedsv::Mutex / MutexLock below, never
//     raw std::mutex — std::mutex carries no capability annotations on
//     libstdc++, so the analysis cannot see it being acquired;
//   * condition waits use CondVar (std::condition_variable_any) with the
//     Mutex passed directly and an explicit while-loop predicate, so the
//     guarded reads in the predicate sit in annotated scope;
//   * helper functions called with the lock held are annotated
//     REQUIRES(mu_); functions that must not be called with it held are
//     EXCLUDES(mu_).
#ifndef COMFEDSV_COMMON_THREAD_ANNOTATIONS_H_
#define COMFEDSV_COMMON_THREAD_ANNOTATIONS_H_

#include <condition_variable>
#include <mutex>

#if defined(__clang__) && !defined(SWIG)
#define COMFEDSV_THREAD_ANNOTATION__(x) __attribute__((x))
#else
#define COMFEDSV_THREAD_ANNOTATION__(x)  // no-op outside Clang
#endif

#define CAPABILITY(x) COMFEDSV_THREAD_ANNOTATION__(capability(x))

#define SCOPED_CAPABILITY COMFEDSV_THREAD_ANNOTATION__(scoped_lockable)

#define GUARDED_BY(x) COMFEDSV_THREAD_ANNOTATION__(guarded_by(x))

#define PT_GUARDED_BY(x) COMFEDSV_THREAD_ANNOTATION__(pt_guarded_by(x))

#define ACQUIRED_BEFORE(...) \
  COMFEDSV_THREAD_ANNOTATION__(acquired_before(__VA_ARGS__))

#define ACQUIRED_AFTER(...) \
  COMFEDSV_THREAD_ANNOTATION__(acquired_after(__VA_ARGS__))

#define REQUIRES(...) \
  COMFEDSV_THREAD_ANNOTATION__(requires_capability(__VA_ARGS__))

#define REQUIRES_SHARED(...) \
  COMFEDSV_THREAD_ANNOTATION__(requires_shared_capability(__VA_ARGS__))

#define ACQUIRE(...) \
  COMFEDSV_THREAD_ANNOTATION__(acquire_capability(__VA_ARGS__))

#define ACQUIRE_SHARED(...) \
  COMFEDSV_THREAD_ANNOTATION__(acquire_shared_capability(__VA_ARGS__))

#define RELEASE(...) \
  COMFEDSV_THREAD_ANNOTATION__(release_capability(__VA_ARGS__))

#define RELEASE_SHARED(...) \
  COMFEDSV_THREAD_ANNOTATION__(release_shared_capability(__VA_ARGS__))

#define TRY_ACQUIRE(...) \
  COMFEDSV_THREAD_ANNOTATION__(try_acquire_capability(__VA_ARGS__))

#define EXCLUDES(...) COMFEDSV_THREAD_ANNOTATION__(locks_excluded(__VA_ARGS__))

#define ASSERT_CAPABILITY(x) \
  COMFEDSV_THREAD_ANNOTATION__(assert_capability(x))

#define RETURN_CAPABILITY(x) COMFEDSV_THREAD_ANNOTATION__(lock_returned(x))

#define NO_THREAD_SAFETY_ANALYSIS \
  COMFEDSV_THREAD_ANNOTATION__(no_thread_safety_analysis)

namespace comfedsv {

/// std::mutex wrapped as a Clang capability. BasicLockable (lowercase
/// lock/unlock), so it also works with std::lock_guard, std::unique_lock
/// and std::condition_variable_any — though annotated code should prefer
/// MutexLock, which the analysis tracks.
class CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() ACQUIRE() { mu_.lock(); }
  void unlock() RELEASE() { mu_.unlock(); }
  bool try_lock() TRY_ACQUIRE(true) { return mu_.try_lock(); }

 private:
  std::mutex mu_;
};

/// RAII lock the analysis understands (std::lock_guard is unannotated on
/// libstdc++, so guarded accesses under it would still warn).
class SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) ACQUIRE(mu) : mu_(mu) { mu_.lock(); }
  ~MutexLock() RELEASE() { mu_.unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mu_;
};

/// Condition variable compatible with Mutex. Waits pass the Mutex itself:
///
///   MutexLock lock(mu_);
///   while (!wake_condition_) cv_.wait(mu_);
///
/// wait() releases and reacquires the capability internally (inside a
/// system header the analysis does not flag); from the caller's point of
/// view the capability is held across the wait, which is exactly the
/// invariant the predicate re-check relies on.
using CondVar = std::condition_variable_any;

}  // namespace comfedsv

#endif  // COMFEDSV_COMMON_THREAD_ANNOTATIONS_H_
