// Fatal invariant checks (Google style CHECK). Use for programmer errors
// and internal invariants only; recoverable conditions use Status.
#ifndef COMFEDSV_COMMON_CHECK_H_
#define COMFEDSV_COMMON_CHECK_H_

#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <string>

namespace comfedsv {
namespace internal {

[[noreturn]] inline void CheckFailed(const char* file, int line,
                                     const char* condition,
                                     const std::string& message) {
  std::fprintf(stderr, "CHECK failed at %s:%d: %s%s%s\n", file, line,
               condition, message.empty() ? "" : " — ", message.c_str());
  std::fflush(stderr);
  std::abort();
}

// Stream sink that materializes a message only on failure paths.
class CheckMessageBuilder {
 public:
  template <typename T>
  CheckMessageBuilder& operator<<(const T& v) {
    stream_ << v;
    return *this;
  }
  std::string str() const { return stream_.str(); }

 private:
  std::ostringstream stream_;
};

}  // namespace internal
}  // namespace comfedsv

#define COMFEDSV_CHECK(cond)                                               \
  do {                                                                     \
    if (!(cond)) {                                                         \
      ::comfedsv::internal::CheckFailed(__FILE__, __LINE__, #cond, "");    \
    }                                                                      \
  } while (0)

#define COMFEDSV_CHECK_MSG(cond, msg_expr)                                 \
  do {                                                                     \
    if (!(cond)) {                                                         \
      ::comfedsv::internal::CheckMessageBuilder _cmb;                      \
      _cmb << msg_expr;                                                    \
      ::comfedsv::internal::CheckFailed(__FILE__, __LINE__, #cond,         \
                                        _cmb.str());                       \
    }                                                                      \
  } while (0)

#define COMFEDSV_CHECK_EQ(a, b) COMFEDSV_CHECK_MSG((a) == (b), (a) << " vs " << (b))
#define COMFEDSV_CHECK_NE(a, b) COMFEDSV_CHECK_MSG((a) != (b), (a) << " vs " << (b))
#define COMFEDSV_CHECK_LT(a, b) COMFEDSV_CHECK_MSG((a) < (b), (a) << " vs " << (b))
#define COMFEDSV_CHECK_LE(a, b) COMFEDSV_CHECK_MSG((a) <= (b), (a) << " vs " << (b))
#define COMFEDSV_CHECK_GT(a, b) COMFEDSV_CHECK_MSG((a) > (b), (a) << " vs " << (b))
#define COMFEDSV_CHECK_GE(a, b) COMFEDSV_CHECK_MSG((a) >= (b), (a) << " vs " << (b))
#define COMFEDSV_CHECK_OK(status_expr)                                     \
  do {                                                                     \
    ::comfedsv::Status _st = (status_expr);                                \
    COMFEDSV_CHECK_MSG(_st.ok(), _st.ToString());                          \
  } while (0)

#endif  // COMFEDSV_COMMON_CHECK_H_
