// Status and Result<T>: the library's error-handling idiom.
//
// Fallible operations across the public API return Status (or Result<T>
// when they produce a value). Exceptions are never thrown across module
// boundaries; programmer errors are handled by COMFEDSV_CHECK (see
// common/check.h).
#ifndef COMFEDSV_COMMON_STATUS_H_
#define COMFEDSV_COMMON_STATUS_H_

#include <string>
#include <utility>
#include <variant>

namespace comfedsv {

/// Error category for a failed operation.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument = 1,
  kOutOfRange = 2,
  kFailedPrecondition = 3,
  kNotFound = 4,
  kInternal = 5,
  kNotImplemented = 6,
  kNumericalError = 7,
  /// Stored state is unreadable or fails validation (truncation,
  /// checksum mismatch, invariant violations in decoded bytes). Callers
  /// salvage: quarantine the artifact and fall back to an older copy.
  kDataLoss = 8,
  /// A transient environment failure (I/O error, resource exhaustion).
  /// Callers retry: the same operation may succeed later.
  kUnavailable = 9,
};

/// Returns a human-readable name for a status code ("InvalidArgument", ...).
const char* StatusCodeName(StatusCode code);

/// Outcome of a fallible operation: a code plus, on failure, a message.
///
/// An Ok status carries no allocation. Statuses are cheap to copy and move.
///
/// [[nodiscard]]: silently dropping a Status return hides failures, so the
/// compiler flags every discard. Intentional drops must be written as
/// `(void)Fn();` with a comment saying why failure is ignorable — detlint's
/// discarded-status rule is the backstop for files built without warnings.
class [[nodiscard]] Status {
 public:
  /// Constructs an Ok status.
  Status() : code_(StatusCode::kOk) {}

  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status Ok() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status NotImplemented(std::string msg) {
    return Status(StatusCode::kNotImplemented, std::move(msg));
  }
  static Status NumericalError(std::string msg) {
    return Status(StatusCode::kNumericalError, std::move(msg));
  }
  static Status DataLoss(std::string msg) {
    return Status(StatusCode::kDataLoss, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "OK" or "<CodeName>: <message>".
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && message_ == other.message_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

/// A value or an error Status. Accessing the value of a failed Result is a
/// checked fatal error.
template <typename T>
class [[nodiscard]] Result {
 public:
  /// Implicit construction from a value (success).
  Result(T value) : storage_(std::move(value)) {}  // NOLINT

  /// Implicit construction from a non-Ok status (failure). Constructing a
  /// Result from an Ok status is a programmer error reported as kInternal.
  Result(Status status) : storage_(std::move(status)) {  // NOLINT
    if (std::get<Status>(storage_).ok()) {
      storage_ = Status::Internal("Result constructed from Ok status");
    }
  }

  bool ok() const { return std::holds_alternative<T>(storage_); }

  /// Status of the operation; Ok if a value is held.
  Status status() const {
    if (ok()) return Status::Ok();
    return std::get<Status>(storage_);
  }

  /// The held value. Must only be called when ok().
  const T& value() const& { return std::get<T>(storage_); }
  T& value() & { return std::get<T>(storage_); }
  T&& value() && { return std::get<T>(std::move(storage_)); }

  /// Returns the value, or `fallback` if this Result holds an error.
  T value_or(T fallback) const {
    return ok() ? std::get<T>(storage_) : std::move(fallback);
  }

 private:
  std::variant<T, Status> storage_;
};

/// Propagates a non-Ok status out of the enclosing function.
#define COMFEDSV_RETURN_IF_ERROR(expr)            \
  do {                                            \
    ::comfedsv::Status _st = (expr);              \
    if (!_st.ok()) return _st;                    \
  } while (0)

}  // namespace comfedsv

#endif  // COMFEDSV_COMMON_STATUS_H_
