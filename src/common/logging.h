// Minimal leveled logging to stderr. Benches and examples use the table
// printer (common/table.h) for structured output; logging is for progress
// and diagnostics only.
#ifndef COMFEDSV_COMMON_LOGGING_H_
#define COMFEDSV_COMMON_LOGGING_H_

#include <sstream>
#include <string>

namespace comfedsv {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3 };

/// Sets the global minimum level; messages below it are dropped.
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

namespace internal {

void EmitLog(LogLevel level, const std::string& message);

class LogLine {
 public:
  explicit LogLine(LogLevel level) : level_(level) {}
  ~LogLine() { EmitLog(level_, stream_.str()); }
  template <typename T>
  LogLine& operator<<(const T& v) {
    stream_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace internal
}  // namespace comfedsv

#define COMFEDSV_LOG(level) \
  ::comfedsv::internal::LogLine(::comfedsv::LogLevel::level)

#endif  // COMFEDSV_COMMON_LOGGING_H_
