#include "common/failpoint.h"

#include "common/check.h"
#include "common/fingerprint.h"

namespace comfedsv {

FailpointTrigger FailpointTrigger::OnHit(int64_t hit, bool one_shot) {
  FailpointTrigger t;
  t.policy = Policy::kOnHit;
  t.n = hit;
  t.one_shot = one_shot;
  return t;
}

FailpointTrigger FailpointTrigger::EveryN(int64_t n) {
  FailpointTrigger t;
  t.policy = Policy::kEveryN;
  t.n = n;
  return t;
}

FailpointTrigger FailpointTrigger::WithProbability(double p, uint64_t seed) {
  FailpointTrigger t;
  t.policy = Policy::kProbability;
  t.probability = p;
  t.seed = seed;
  return t;
}

FailpointRegistry& FailpointRegistry::Global() {
  static FailpointRegistry* registry = new FailpointRegistry();
  return *registry;
}

void FailpointRegistry::Arm(const std::string& name,
                            FailpointTrigger trigger, int action,
                            int64_t arg) {
  COMFEDSV_CHECK_GT(trigger.n, 0);
  MutexLock lock(mu_);
  armed_[name] = Armed{trigger, action, arg};
  counts_[name] = 0;
  enabled_.store(true, std::memory_order_release);
}

void FailpointRegistry::Clear(const std::string& name) {
  MutexLock lock(mu_);
  armed_.erase(name);
  enabled_.store(!armed_.empty() || tracing_, std::memory_order_release);
}

void FailpointRegistry::ClearAll() {
  MutexLock lock(mu_);
  armed_.clear();
  counts_.clear();
  tracing_ = false;
  enabled_.store(false, std::memory_order_release);
}

void FailpointRegistry::set_tracing(bool tracing) {
  MutexLock lock(mu_);
  tracing_ = tracing;
  enabled_.store(!armed_.empty() || tracing_, std::memory_order_release);
}

std::optional<FailpointFire> FailpointRegistry::Hit(
    const std::string& name) {
  if (!enabled_.load(std::memory_order_acquire)) return std::nullopt;
  MutexLock lock(mu_);
  auto it = armed_.find(name);
  if (it == armed_.end()) {
    if (tracing_) ++counts_[name];
    return std::nullopt;
  }
  const int64_t hit = ++counts_[name];
  Armed& armed = it->second;
  if (!Fires(&armed, hit)) return std::nullopt;
  FailpointFire fire{armed.action, armed.arg};
  if (armed.trigger.one_shot) {
    armed_.erase(it);
    enabled_.store(!armed_.empty() || tracing_, std::memory_order_release);
  }
  return fire;
}

bool FailpointRegistry::Fires(Armed* armed, int64_t hit) {
  bool fires = false;
  switch (armed->trigger.policy) {
    case FailpointTrigger::Policy::kOnHit:
      fires = hit == armed->trigger.n;
      break;
    case FailpointTrigger::Policy::kEveryN:
      fires = hit % armed->trigger.n == 0;
      break;
    case FailpointTrigger::Policy::kProbability: {
      // A replayable coin flip: hash (seed, hit index) to a uniform in
      // [0, 1) — the same schedule fires on the same hits every run.
      uint64_t h = kFingerprintSeed;
      FingerprintMix(&h, armed->trigger.seed);
      FingerprintMix(&h, static_cast<uint64_t>(hit));
      const double u =
          static_cast<double>(h >> 11) * 0x1.0p-53;  // top 53 bits
      fires = u < armed->trigger.probability;
      break;
    }
  }
  return fires;
}

int64_t FailpointRegistry::hits(const std::string& name) const {
  MutexLock lock(mu_);
  auto it = counts_.find(name);
  return it == counts_.end() ? 0 : it->second;
}

std::vector<std::pair<std::string, int64_t>> FailpointRegistry::HitCounts()
    const {
  MutexLock lock(mu_);
  return {counts_.begin(), counts_.end()};
}

}  // namespace comfedsv
