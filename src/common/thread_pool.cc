#include "common/thread_pool.h"

#include <atomic>
#include <exception>
#include <memory>

#include "common/check.h"

namespace comfedsv {

ThreadPool::ThreadPool(int num_threads) {
  COMFEDSV_CHECK_GE(num_threads, 0);
  if (num_threads <= 1) return;  // inline mode
  workers_.reserve(num_threads);
  for (int i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    MutexLock lock(mu_);
    shutting_down_ = true;
  }
  work_available_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  if (workers_.empty()) {
    task();
    return;
  }
  {
    MutexLock lock(mu_);
    queue_.push_back(std::move(task));
    ++in_flight_;
  }
  work_available_.notify_one();
}

void ThreadPool::Wait() {
  if (workers_.empty()) return;
  MutexLock lock(mu_);
  while (in_flight_ != 0) all_done_.wait(mu_);
}

void ThreadPool::ParallelFor(int n, const std::function<void(int)>& fn) {
  if (n <= 0) return;
  if (workers_.empty() || n == 1) {
    for (int i = 0; i < n; ++i) fn(i);
    return;
  }
  // Dynamic chunking: workers pull the next index from a shared counter so
  // uneven task costs (e.g. coalition sizes) balance automatically.
  struct SharedState {
    std::atomic<int> counter{0};
    std::atomic<bool> failed{false};
    Mutex error_mu;
    std::exception_ptr first_error GUARDED_BY(error_mu);
  };
  auto state = std::make_shared<SharedState>();
  int shards = std::min<int>(n, num_threads());
  for (int s = 0; s < shards; ++s) {
    Submit([state, n, &fn] {
      for (;;) {
        if (state->failed.load(std::memory_order_relaxed)) break;
        int i = state->counter.fetch_add(1, std::memory_order_relaxed);
        if (i >= n) break;
        try {
          fn(i);
        } catch (...) {
          MutexLock lock(state->error_mu);
          if (!state->failed.exchange(true)) {
            state->first_error = std::current_exception();
          }
        }
      }
    });
  }
  Wait();
  // Wait() is a full barrier, but read the error slot under its lock
  // anyway: the thread-safety analysis can't see the barrier, and the
  // lock is uncontended here.
  std::exception_ptr first_error;
  {
    MutexLock lock(state->error_mu);
    first_error = state->first_error;
  }
  if (first_error != nullptr) std::rethrow_exception(first_error);
}

void ThreadPool::ParallelForBlocked(int n, int block_size,
                                    const std::function<void(int, int)>& fn) {
  COMFEDSV_CHECK_GT(block_size, 0);
  if (n <= 0) return;
  const int num_blocks = (n + block_size - 1) / block_size;
  ParallelFor(num_blocks, [&](int b) {
    const int begin = b * block_size;
    const int end = begin + block_size < n ? begin + block_size : n;
    fn(begin, end);
  });
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      MutexLock lock(mu_);
      while (!shutting_down_ && queue_.empty()) work_available_.wait(mu_);
      if (queue_.empty()) {
        if (shutting_down_) return;
        continue;
      }
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
    {
      MutexLock lock(mu_);
      --in_flight_;
      if (in_flight_ == 0) all_done_.notify_all();
    }
  }
}

}  // namespace comfedsv
