#include "common/thread_pool.h"

#include <atomic>

#include "common/check.h"

namespace comfedsv {

ThreadPool::ThreadPool(int num_threads) {
  COMFEDSV_CHECK_GE(num_threads, 0);
  if (num_threads <= 1) return;  // inline mode
  workers_.reserve(num_threads);
  for (int i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::unique_lock<std::mutex> lock(mu_);
    shutting_down_ = true;
  }
  work_available_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  if (workers_.empty()) {
    task();
    return;
  }
  {
    std::unique_lock<std::mutex> lock(mu_);
    queue_.push_back(std::move(task));
    ++in_flight_;
  }
  work_available_.notify_one();
}

void ThreadPool::Wait() {
  if (workers_.empty()) return;
  std::unique_lock<std::mutex> lock(mu_);
  all_done_.wait(lock, [this] { return in_flight_ == 0; });
}

void ThreadPool::ParallelFor(int n, const std::function<void(int)>& fn) {
  if (n <= 0) return;
  if (workers_.empty() || n == 1) {
    for (int i = 0; i < n; ++i) fn(i);
    return;
  }
  // Dynamic chunking: workers pull the next index from a shared counter so
  // uneven task costs (e.g. coalition sizes) balance automatically.
  auto counter = std::make_shared<std::atomic<int>>(0);
  int shards = std::min<int>(n, num_threads());
  for (int s = 0; s < shards; ++s) {
    Submit([counter, n, &fn] {
      for (;;) {
        int i = counter->fetch_add(1, std::memory_order_relaxed);
        if (i >= n) break;
        fn(i);
      }
    });
  }
  Wait();
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_available_.wait(
          lock, [this] { return shutting_down_ || !queue_.empty(); });
      if (queue_.empty()) {
        if (shutting_down_) return;
        continue;
      }
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
    {
      std::unique_lock<std::mutex> lock(mu_);
      --in_flight_;
      if (in_flight_ == 0) all_done_.notify_all();
    }
  }
}

}  // namespace comfedsv
