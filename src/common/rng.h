// Deterministic random number generation.
//
// Every stochastic component in the library takes an explicit 64-bit seed.
// Rng wraps xoshiro256** seeded through SplitMix64 so that (a) a seed of 0
// is safe, (b) streams can be split hierarchically (per client, per round)
// without correlation, and (c) results are identical across platforms —
// unlike std::mt19937 + std::*_distribution, whose outputs are not
// standardized across standard libraries.
#ifndef COMFEDSV_COMMON_RNG_H_
#define COMFEDSV_COMMON_RNG_H_

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace comfedsv {

/// Snapshot of a generator's complete state: the four xoshiro256** state
/// words plus the Box–Muller Gaussian cache. A generator restored from a
/// saved state continues its output sequence bit for bit — the unit the
/// checkpoint layer (src/io/) persists for every stateful RNG stream.
struct RngState {
  uint64_t words[4] = {0, 0, 0, 0};
  bool has_cached_gaussian = false;
  double cached_gaussian = 0.0;

  bool operator==(const RngState& other) const {
    return words[0] == other.words[0] && words[1] == other.words[1] &&
           words[2] == other.words[2] && words[3] == other.words[3] &&
           has_cached_gaussian == other.has_cached_gaussian &&
           cached_gaussian == other.cached_gaussian;
  }
};

/// Deterministic, splittable pseudo-random generator (xoshiro256**).
class Rng {
 public:
  /// Creates a generator from a seed. Any seed (including 0) is valid.
  explicit Rng(uint64_t seed);

  /// Next raw 64-bit value.
  uint64_t NextUint64();

  /// Uniform in [0, n). Requires n > 0. Uses rejection sampling, unbiased.
  uint64_t NextUint64(uint64_t n);

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  int NextInt(int lo, int hi);

  /// Uniform double in [0, 1) with 53 bits of precision.
  double NextDouble();

  /// Uniform double in [lo, hi).
  double NextDouble(double lo, double hi);

  /// Standard normal N(0, 1) via Box–Muller (cached pair).
  double NextGaussian();

  /// Normal N(mean, stddev^2).
  double NextGaussian(double mean, double stddev);

  /// Bernoulli(p).
  bool NextBernoulli(double p);

  /// Derives an independent child stream; deterministic in (state, salt).
  /// Splitting does not advance this generator's own sequence in a way
  /// dependent on how many children were created with distinct salts.
  Rng Split(uint64_t salt) const;

  /// Snapshot of the complete generator state (including the Gaussian
  /// cache); FromState resumes the sequence bit for bit.
  RngState SaveState() const;
  static Rng FromState(const RngState& state);

  /// Fisher–Yates shuffles `v` in place.
  template <typename T>
  void Shuffle(std::vector<T>* v) {
    for (size_t i = v->size(); i > 1; --i) {
      size_t j = static_cast<size_t>(NextUint64(i));
      std::swap((*v)[i - 1], (*v)[j]);
    }
  }

  /// A uniformly random permutation of {0, ..., n-1}.
  std::vector<int> Permutation(int n);

  /// Samples k distinct indices from {0, ..., n-1}, uniformly over subsets.
  /// Returned indices are sorted. Requires 0 <= k <= n.
  std::vector<int> SampleWithoutReplacement(int n, int k);

 private:
  uint64_t state_[4];
  bool has_cached_gaussian_ = false;
  double cached_gaussian_ = 0.0;
};

}  // namespace comfedsv

#endif  // COMFEDSV_COMMON_RNG_H_
