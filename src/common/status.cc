#include "common/status.h"

namespace comfedsv {

const char* StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kOutOfRange:
      return "OutOfRange";
    case StatusCode::kFailedPrecondition:
      return "FailedPrecondition";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kNotImplemented:
      return "NotImplemented";
    case StatusCode::kNumericalError:
      return "NumericalError";
    case StatusCode::kDataLoss:
      return "DataLoss";
    case StatusCode::kUnavailable:
      return "Unavailable";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = StatusCodeName(code_);
  if (!message_.empty()) {
    out += ": ";
    out += message_;
  }
  return out;
}

}  // namespace comfedsv
