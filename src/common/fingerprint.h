// FNV-1a 64 fingerprint mixing: the one hash primitive behind every
// checkpoint-compatibility key (trainer config/data, valuation request,
// streaming-engine config). Fingerprints are persisted on disk, so all
// producers must share this exact mixing — do not fork local copies.
#ifndef COMFEDSV_COMMON_FINGERPRINT_H_
#define COMFEDSV_COMMON_FINGERPRINT_H_

#include <bit>
#include <cstdint>

namespace comfedsv {

inline constexpr uint64_t kFingerprintSeed = 0xcbf29ce484222325ULL;

/// Mixes the 8 bytes of `value` into `*hash` (FNV-1a, little-endian
/// byte order — matches io/serialize.h's Fnv1a64 over the same bytes).
inline void FingerprintMix(uint64_t* hash, uint64_t value) {
  for (int b = 0; b < 8; ++b) {
    *hash ^= (value >> (8 * b)) & 0xFFu;
    *hash *= 0x100000001b3ULL;
  }
}

/// Mixes a double by bit pattern (distinguishes -0.0 from 0.0 and every
/// NaN payload; fingerprints care about representation, not value).
inline void FingerprintMix(uint64_t* hash, double value) {
  FingerprintMix(hash, std::bit_cast<uint64_t>(value));
}

}  // namespace comfedsv

#endif  // COMFEDSV_COMMON_FINGERPRINT_H_
