// ExecutionContext: the shared execution handle threaded through every
// hot path of the library — FedAvg local updates, Monte-Carlo Shapley
// permutation sampling, utility recording, and ALS row solves.
//
// It bundles three concerns that used to be ad hoc per call site:
//   * a ThreadPool sized once by the caller (replacing the retired
//     FedAvgConfig::num_threads knob);
//   * deterministic per-task RNG sub-streams split from one root seed, so
//     stochastic components draw identical randomness regardless of how
//     work is scheduled across threads;
//   * leveled logging scoped to the context.
//
// Determinism contract: every parallel loop in the library either writes
// disjoint slots or reduces partial results in a fixed order, so running
// the same workload under ExecutionContext(1) and ExecutionContext(k)
// produces bit-identical outputs (tests/determinism_test.cc enforces
// this for the full valuation pipeline).
#ifndef COMFEDSV_COMMON_EXECUTION_CONTEXT_H_
#define COMFEDSV_COMMON_EXECUTION_CONTEXT_H_

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "common/logging.h"
#include "common/rng.h"
#include "common/thread_pool.h"

namespace comfedsv {

/// Shared handle bundling a thread pool, deterministic RNG sub-streams,
/// and a logger. Passed by raw pointer; a null context everywhere means
/// "inline, single-threaded" and is always safe.
class ExecutionContext {
 public:
  /// `num_threads <= 1` yields an inline (caller-thread) context. `seed`
  /// roots the context's RNG sub-streams; components that carry their own
  /// config seed keep using it, so outputs never depend on whether a
  /// context was supplied.
  explicit ExecutionContext(int num_threads = 1, uint64_t seed = 0,
                            LogLevel log_level = GetLogLevel());

  ExecutionContext(const ExecutionContext&) = delete;
  ExecutionContext& operator=(const ExecutionContext&) = delete;

  ThreadPool& pool() { return pool_; }

  /// Degree of parallelism: number of workers, or 1 for inline contexts.
  int parallelism() const {
    return pool_.num_threads() > 0 ? pool_.num_threads() : 1;
  }

  uint64_t seed() const { return seed_; }

  /// ParallelFor on this context's pool (inline when single-threaded).
  /// Rethrows the first exception any task raised.
  void ParallelFor(int n, const std::function<void(int)>& fn) {
    pool_.ParallelFor(n, fn);
  }

  /// An independent deterministic stream for component `salt`. Depends
  /// only on (seed, salt) — never on thread scheduling or call order.
  Rng MakeRng(uint64_t salt) const;

  /// `n` independent deterministic streams for the tasks of one parallel
  /// region: stream i depends only on (seed, salt, i).
  std::vector<Rng> MakeTaskRngs(uint64_t salt, int n) const;

  /// True if `level` passes this context's log filter.
  bool ShouldLog(LogLevel level) const { return level >= log_level_; }

  /// Emits `message` at `level` if it passes the context's filter and the
  /// global one.
  void Log(LogLevel level, const std::string& message) const;

 private:
  ThreadPool pool_;
  Rng root_;
  uint64_t seed_;
  LogLevel log_level_;
};

/// Runs `fn(i)` for i in [0, n) on `ctx`'s pool, or as a plain inline
/// loop when `ctx` is null. The uniform spelling for optional-context
/// call sites.
void ParallelFor(ExecutionContext* ctx, int n,
                 const std::function<void(int)>& fn);

}  // namespace comfedsv

#endif  // COMFEDSV_COMMON_EXECUTION_CONTEXT_H_
