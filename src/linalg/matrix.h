// Dense row-major matrix with the BLAS-2/3 kernels used by the models,
// the matrix-completion solvers, and the spectrum analysis.
#ifndef COMFEDSV_LINALG_MATRIX_H_
#define COMFEDSV_LINALG_MATRIX_H_

#include <cstddef>
#include <vector>

#include "linalg/vector.h"

namespace comfedsv {

/// Dense row-major matrix of doubles.
class Matrix {
 public:
  Matrix() : rows_(0), cols_(0) {}

  /// A rows x cols matrix of zeros.
  Matrix(size_t rows, size_t cols) : rows_(rows), cols_(cols),
                                     data_(rows * cols, 0.0) {}

  /// A rows x cols matrix filled with `value`.
  Matrix(size_t rows, size_t cols, double value)
      : rows_(rows), cols_(cols), data_(rows * cols, value) {}

  /// The n x n identity.
  static Matrix Identity(size_t n);

  size_t rows() const { return rows_; }
  size_t cols() const { return cols_; }

  double operator()(size_t i, size_t j) const {
    return data_[i * cols_ + j];
  }
  double& operator()(size_t i, size_t j) { return data_[i * cols_ + j]; }

  /// Pointer to the start of row `i`.
  const double* RowPtr(size_t i) const { return data_.data() + i * cols_; }
  double* RowPtr(size_t i) { return data_.data() + i * cols_; }

  /// Contiguous row-major view of all rows*cols entries (no padding) —
  /// the POD view the serialization layer (src/io/) reads and writes.
  const double* data() const { return data_.data(); }
  double* data() { return data_.data(); }

  /// Copy of row `i` as a Vector.
  Vector Row(size_t i) const;

  /// Copy of column `j` as a Vector.
  Vector Col(size_t j) const;

  /// Overwrites row `i`. `v.size()` must equal cols().
  void SetRow(size_t i, const Vector& v);

  /// this = A * B (sizes must conform). Blocked over the inner dimension
  /// so B's active row panel stays cache-resident; every output entry
  /// still accumulates its terms in ascending-k order, so the result is
  /// bit-identical to the naive triple loop.
  static Matrix Multiply(const Matrix& a, const Matrix& b);

  /// A * B^T for row-major A (m x k) and B (n x k) — the GEMM shape of
  /// a batched logits computation (logits = X * W^T). Row-times-row dot
  /// products are naturally cache-friendly for row-major storage; each
  /// output entry accumulates in ascending-k order. Reference/bench
  /// kernel: the production coalition-loss engine uses the specialized
  /// tile kernels in src/models/batch_kernels*.
  static Matrix MultiplyTransposedB(const Matrix& a, const Matrix& b);

  /// Row-major pack helper. Treats each of the `row_count` source rows
  /// starting at `row_begin` as containing `num_slices` contiguous
  /// slices of length `slice_len` beginning at column `offset`, and
  /// interleaves them slice-major:
  ///
  ///   out(s, r * slice_len + t) = src(row_begin + r, offset + s * slice_len + t)
  ///
  /// For B stacked parameter rows with layout [W row-major (d x C) | b],
  /// PackRowSlices(src, 0, B, 0, C, d) yields a d x (B*C) matrix whose
  /// row j holds the j-th weight row of every batch member back to back.
  /// Reference/bench form of the pack; the engine's hot path fuses this
  /// re-tiling into internal::PackAffineBlock (models/batch_kernels.cc).
  static Matrix PackRowSlices(const Matrix& src, size_t row_begin,
                              size_t row_count, size_t offset,
                              size_t slice_len, size_t num_slices);

  /// y = this * x.
  Vector MultiplyVec(const Vector& x) const;

  /// y = this^T * x.
  Vector MultiplyTransposeVec(const Vector& x) const;

  /// Returns the transpose.
  Matrix Transpose() const;

  /// this += alpha * other (same shape).
  void Add(double alpha, const Matrix& other);

  /// this *= alpha.
  void Scale(double alpha);

  /// Gram matrix this * this^T (rows x rows, symmetric PSD).
  Matrix GramRows() const;

  /// Frobenius norm.
  double FrobeniusNorm() const;

  /// Largest absolute entry.
  double MaxAbs() const;

  /// Maximum absolute column sum (the operator 1-norm; Def. 5 in the paper
  /// writes it as ||X||_1).
  double MaxAbsColumnSum() const;

  /// ||this - other||_F (same shape).
  double FrobeniusDistance(const Matrix& other) const;

  bool operator==(const Matrix& other) const {
    return rows_ == other.rows_ && cols_ == other.cols_ &&
           data_ == other.data_;
  }

 private:
  size_t rows_;
  size_t cols_;
  std::vector<double> data_;
};

}  // namespace comfedsv

#endif  // COMFEDSV_LINALG_MATRIX_H_
