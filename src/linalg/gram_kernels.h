// Register-tiled kernels for the ALS normal equations of the completion
// solver: gather the factor rows touched by one observed row/column into
// a contiguous panel and accumulate the rank x rank Gram matrix plus the
// right-hand side in a single pass.
//
// Same design rules as the batched-loss kernels (models/batch_kernels*):
// rank-specialized variants keep every accumulator live in registers
// across the entry loop, and every accumulator adds its terms in
// ascending entry order — so the computed doubles are bit-identical to a
// scalar per-entry loop for every rank, panel size, and thread count.
// The gather is the indexed-row analog of Matrix::PackRowSlices, fused
// into the accumulation pass so the panel is read while cache-hot.
#ifndef COMFEDSV_LINALG_GRAM_KERNELS_H_
#define COMFEDSV_LINALG_GRAM_KERNELS_H_

#include <vector>

#include "linalg/matrix.h"

namespace comfedsv {

/// Reusable scratch for AccumulateGramRhs. `panel` holds the most recent
/// gather (count x rank, row-major) and stays valid until the next call,
/// so callers can compute per-entry residuals against it without touching
/// the scattered factor rows again.
struct GramRhsScratch {
  std::vector<double> panel;
};

/// One fused pack + normal-equation pass over the `count` rows of `f`
/// (rank = f.cols() columns) named by `idx`:
///
///   gram = diag_init * I + sum_e f_{idx[e]} f_{idx[e]}^T
///   rhs  = sum_e values[e] * f_{idx[e]}
///
/// `gram` (rank x rank, row-major, fully written symmetric) and `rhs`
/// (rank) are overwritten. Rows are gathered into scratch->panel as they
/// are consumed. `count` may be 0 (gram = diag_init * I, rhs = 0).
void AccumulateGramRhs(const Matrix& f, const int* idx, const double* values,
                       int count, double diag_init, GramRhsScratch* scratch,
                       double* gram, double* rhs);

/// The whole ALS row solve in one register-resident kernel, for the
/// ranks the completion problem uses (rank <= 8; callers fall back to
/// AccumulateGramRhs + SolveSpdInPlace above that). Accumulates the
/// normal equations exactly like AccumulateGramRhs, adds `rhs_extra`
/// (optional, e.g. the temporal-smoothing neighbour terms) to the RHS,
/// and solves by an unrolled LDL^T factorization — no square roots, one
/// reciprocal per pivot — without ever materializing the Gram matrix in
/// memory. The solution lands in `x` (length rank).
///
/// `panel`, when non-null, receives the gathered factor rows
/// (count x rank, row-major; caller allocates) for residual reuse;
/// passing null skips the panel stores.
///
/// Deterministic: a fixed operation order for every (rank, count).
/// Returns false if the system is not (numerically) positive definite —
/// impossible for diag_init > 0.
bool SolveRidgeRow(const Matrix& f, const int* idx, const double* values,
                   int count, double diag_init, const double* rhs_extra,
                   double* panel, double* x);

/// Max rank SolveRidgeRow handles (the unrolled-kernel dispatch bound).
inline constexpr int kMaxRidgeRank = 8;

/// Residual sum of squares of a solved factor row `x` (length `rank`)
/// against the gathered panel: sum_e (values[e] - panel_e . x)^2, with
/// each dot product accumulated in ascending coordinate order and the
/// squares summed in ascending entry order.
double PanelResidualSq(const double* panel, const double* values, int count,
                       int rank, const double* x);

}  // namespace comfedsv

#endif  // COMFEDSV_LINALG_GRAM_KERNELS_H_
