#include "linalg/matrix.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"

namespace comfedsv {

Matrix Matrix::Identity(size_t n) {
  Matrix m(n, n);
  for (size_t i = 0; i < n; ++i) m(i, i) = 1.0;
  return m;
}

Vector Matrix::Row(size_t i) const {
  COMFEDSV_CHECK_LT(i, rows_);
  Vector out(cols_);
  const double* src = RowPtr(i);
  for (size_t j = 0; j < cols_; ++j) out[j] = src[j];
  return out;
}

Vector Matrix::Col(size_t j) const {
  COMFEDSV_CHECK_LT(j, cols_);
  Vector out(rows_);
  for (size_t i = 0; i < rows_; ++i) out[i] = (*this)(i, j);
  return out;
}

void Matrix::SetRow(size_t i, const Vector& v) {
  COMFEDSV_CHECK_LT(i, rows_);
  COMFEDSV_CHECK_EQ(v.size(), cols_);
  double* dst = RowPtr(i);
  for (size_t j = 0; j < cols_; ++j) dst[j] = v[j];
}

Matrix Matrix::Multiply(const Matrix& a, const Matrix& b) {
  COMFEDSV_CHECK_EQ(a.cols(), b.rows());
  Matrix out(a.rows(), b.cols());
  // k-blocked i-k-j order: the active panel of b (kKBlock rows) is reused
  // across every row of a before moving on, instead of streaming all of b
  // once per output row. Each out(i, j) still receives its terms in
  // ascending-k order (k blocks ascend, k ascends within a block), so the
  // result is bit-identical to the unblocked loop.
  constexpr size_t kKBlock = 64;
  for (size_t k0 = 0; k0 < a.cols(); k0 += kKBlock) {
    const size_t k1 = std::min(k0 + kKBlock, a.cols());
    for (size_t i = 0; i < a.rows(); ++i) {
      double* out_row = out.RowPtr(i);
      const double* a_row = a.RowPtr(i);
      for (size_t k = k0; k < k1; ++k) {
        const double aik = a_row[k];
        if (aik == 0.0) continue;
        const double* b_row = b.RowPtr(k);
        for (size_t j = 0; j < b.cols(); ++j) out_row[j] += aik * b_row[j];
      }
    }
  }
  return out;
}

Matrix Matrix::MultiplyTransposedB(const Matrix& a, const Matrix& b) {
  COMFEDSV_CHECK_EQ(a.cols(), b.cols());
  const size_t inner = a.cols();
  Matrix out(a.rows(), b.rows());
  // Four independent dot-product accumulators per pass share one stream
  // over a's row; each out(i, j) is its own ascending-k chain.
  constexpr size_t kJBlock = 4;
  for (size_t i = 0; i < a.rows(); ++i) {
    const double* a_row = a.RowPtr(i);
    double* out_row = out.RowPtr(i);
    size_t j = 0;
    for (; j + kJBlock <= b.rows(); j += kJBlock) {
      const double* b0 = b.RowPtr(j);
      const double* b1 = b.RowPtr(j + 1);
      const double* b2 = b.RowPtr(j + 2);
      const double* b3 = b.RowPtr(j + 3);
      double acc0 = 0.0, acc1 = 0.0, acc2 = 0.0, acc3 = 0.0;
      for (size_t k = 0; k < inner; ++k) {
        const double aik = a_row[k];
        acc0 += aik * b0[k];
        acc1 += aik * b1[k];
        acc2 += aik * b2[k];
        acc3 += aik * b3[k];
      }
      out_row[j] = acc0;
      out_row[j + 1] = acc1;
      out_row[j + 2] = acc2;
      out_row[j + 3] = acc3;
    }
    for (; j < b.rows(); ++j) {
      const double* b_row = b.RowPtr(j);
      double acc = 0.0;
      for (size_t k = 0; k < inner; ++k) acc += a_row[k] * b_row[k];
      out_row[j] = acc;
    }
  }
  return out;
}

Matrix Matrix::PackRowSlices(const Matrix& src, size_t row_begin,
                             size_t row_count, size_t offset,
                             size_t slice_len, size_t num_slices) {
  COMFEDSV_CHECK_LE(row_begin + row_count, src.rows());
  COMFEDSV_CHECK_LE(offset + num_slices * slice_len, src.cols());
  Matrix out(num_slices, row_count * slice_len);
  for (size_t s = 0; s < num_slices; ++s) {
    double* dst = out.RowPtr(s);
    for (size_t r = 0; r < row_count; ++r) {
      const double* piece =
          src.RowPtr(row_begin + r) + offset + s * slice_len;
      std::copy(piece, piece + slice_len, dst + r * slice_len);
    }
  }
  return out;
}

Vector Matrix::MultiplyVec(const Vector& x) const {
  COMFEDSV_CHECK_EQ(x.size(), cols_);
  Vector y(rows_);
  for (size_t i = 0; i < rows_; ++i) {
    const double* row = RowPtr(i);
    double acc = 0.0;
    for (size_t j = 0; j < cols_; ++j) acc += row[j] * x[j];
    y[i] = acc;
  }
  return y;
}

Vector Matrix::MultiplyTransposeVec(const Vector& x) const {
  COMFEDSV_CHECK_EQ(x.size(), rows_);
  Vector y(cols_);
  for (size_t i = 0; i < rows_; ++i) {
    const double* row = RowPtr(i);
    const double xi = x[i];
    if (xi == 0.0) continue;
    for (size_t j = 0; j < cols_; ++j) y[j] += row[j] * xi;
  }
  return y;
}

Matrix Matrix::Transpose() const {
  Matrix out(cols_, rows_);
  for (size_t i = 0; i < rows_; ++i) {
    const double* row = RowPtr(i);
    for (size_t j = 0; j < cols_; ++j) out(j, i) = row[j];
  }
  return out;
}

void Matrix::Add(double alpha, const Matrix& other) {
  COMFEDSV_CHECK_EQ(rows_, other.rows_);
  COMFEDSV_CHECK_EQ(cols_, other.cols_);
  for (size_t i = 0; i < data_.size(); ++i) {
    data_[i] += alpha * other.data_[i];
  }
}

void Matrix::Scale(double alpha) {
  for (double& v : data_) v *= alpha;
}

Matrix Matrix::GramRows() const {
  Matrix g(rows_, rows_);
  for (size_t i = 0; i < rows_; ++i) {
    const double* ri = RowPtr(i);
    for (size_t j = i; j < rows_; ++j) {
      const double* rj = RowPtr(j);
      double acc = 0.0;
      for (size_t k = 0; k < cols_; ++k) acc += ri[k] * rj[k];
      g(i, j) = acc;
      g(j, i) = acc;
    }
  }
  return g;
}

double Matrix::FrobeniusNorm() const {
  double acc = 0.0;
  for (double v : data_) acc += v * v;
  return std::sqrt(acc);
}

double Matrix::MaxAbs() const {
  double m = 0.0;
  for (double v : data_) m = std::max(m, std::fabs(v));
  return m;
}

double Matrix::MaxAbsColumnSum() const {
  double best = 0.0;
  for (size_t j = 0; j < cols_; ++j) {
    double sum = 0.0;
    for (size_t i = 0; i < rows_; ++i) sum += std::fabs((*this)(i, j));
    best = std::max(best, sum);
  }
  return best;
}

double Matrix::FrobeniusDistance(const Matrix& other) const {
  COMFEDSV_CHECK_EQ(rows_, other.rows_);
  COMFEDSV_CHECK_EQ(cols_, other.cols_);
  double acc = 0.0;
  for (size_t i = 0; i < data_.size(); ++i) {
    double d = data_[i] - other.data_[i];
    acc += d * d;
  }
  return std::sqrt(acc);
}

}  // namespace comfedsv
