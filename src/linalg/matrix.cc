#include "linalg/matrix.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"

namespace comfedsv {

Matrix Matrix::Identity(size_t n) {
  Matrix m(n, n);
  for (size_t i = 0; i < n; ++i) m(i, i) = 1.0;
  return m;
}

Vector Matrix::Row(size_t i) const {
  COMFEDSV_CHECK_LT(i, rows_);
  Vector out(cols_);
  const double* src = RowPtr(i);
  for (size_t j = 0; j < cols_; ++j) out[j] = src[j];
  return out;
}

Vector Matrix::Col(size_t j) const {
  COMFEDSV_CHECK_LT(j, cols_);
  Vector out(rows_);
  for (size_t i = 0; i < rows_; ++i) out[i] = (*this)(i, j);
  return out;
}

void Matrix::SetRow(size_t i, const Vector& v) {
  COMFEDSV_CHECK_LT(i, rows_);
  COMFEDSV_CHECK_EQ(v.size(), cols_);
  double* dst = RowPtr(i);
  for (size_t j = 0; j < cols_; ++j) dst[j] = v[j];
}

Matrix Matrix::Multiply(const Matrix& a, const Matrix& b) {
  COMFEDSV_CHECK_EQ(a.cols(), b.rows());
  Matrix out(a.rows(), b.cols());
  // i-k-j loop order: streams through b's rows, cache-friendly for
  // row-major storage.
  for (size_t i = 0; i < a.rows(); ++i) {
    double* out_row = out.RowPtr(i);
    const double* a_row = a.RowPtr(i);
    for (size_t k = 0; k < a.cols(); ++k) {
      const double aik = a_row[k];
      if (aik == 0.0) continue;
      const double* b_row = b.RowPtr(k);
      for (size_t j = 0; j < b.cols(); ++j) out_row[j] += aik * b_row[j];
    }
  }
  return out;
}

Vector Matrix::MultiplyVec(const Vector& x) const {
  COMFEDSV_CHECK_EQ(x.size(), cols_);
  Vector y(rows_);
  for (size_t i = 0; i < rows_; ++i) {
    const double* row = RowPtr(i);
    double acc = 0.0;
    for (size_t j = 0; j < cols_; ++j) acc += row[j] * x[j];
    y[i] = acc;
  }
  return y;
}

Vector Matrix::MultiplyTransposeVec(const Vector& x) const {
  COMFEDSV_CHECK_EQ(x.size(), rows_);
  Vector y(cols_);
  for (size_t i = 0; i < rows_; ++i) {
    const double* row = RowPtr(i);
    const double xi = x[i];
    if (xi == 0.0) continue;
    for (size_t j = 0; j < cols_; ++j) y[j] += row[j] * xi;
  }
  return y;
}

Matrix Matrix::Transpose() const {
  Matrix out(cols_, rows_);
  for (size_t i = 0; i < rows_; ++i) {
    const double* row = RowPtr(i);
    for (size_t j = 0; j < cols_; ++j) out(j, i) = row[j];
  }
  return out;
}

void Matrix::Add(double alpha, const Matrix& other) {
  COMFEDSV_CHECK_EQ(rows_, other.rows_);
  COMFEDSV_CHECK_EQ(cols_, other.cols_);
  for (size_t i = 0; i < data_.size(); ++i) {
    data_[i] += alpha * other.data_[i];
  }
}

void Matrix::Scale(double alpha) {
  for (double& v : data_) v *= alpha;
}

Matrix Matrix::GramRows() const {
  Matrix g(rows_, rows_);
  for (size_t i = 0; i < rows_; ++i) {
    const double* ri = RowPtr(i);
    for (size_t j = i; j < rows_; ++j) {
      const double* rj = RowPtr(j);
      double acc = 0.0;
      for (size_t k = 0; k < cols_; ++k) acc += ri[k] * rj[k];
      g(i, j) = acc;
      g(j, i) = acc;
    }
  }
  return g;
}

double Matrix::FrobeniusNorm() const {
  double acc = 0.0;
  for (double v : data_) acc += v * v;
  return std::sqrt(acc);
}

double Matrix::MaxAbs() const {
  double m = 0.0;
  for (double v : data_) m = std::max(m, std::fabs(v));
  return m;
}

double Matrix::MaxAbsColumnSum() const {
  double best = 0.0;
  for (size_t j = 0; j < cols_; ++j) {
    double sum = 0.0;
    for (size_t i = 0; i < rows_; ++i) sum += std::fabs((*this)(i, j));
    best = std::max(best, sum);
  }
  return best;
}

double Matrix::FrobeniusDistance(const Matrix& other) const {
  COMFEDSV_CHECK_EQ(rows_, other.rows_);
  COMFEDSV_CHECK_EQ(cols_, other.cols_);
  double acc = 0.0;
  for (size_t i = 0; i < data_.size(); ++i) {
    double d = data_[i] - other.data_[i];
    acc += d * d;
  }
  return std::sqrt(acc);
}

}  // namespace comfedsv
