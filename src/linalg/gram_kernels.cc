#include "linalg/gram_kernels.h"

#include <cmath>

#include "common/check.h"

namespace comfedsv {
namespace {

// Rank-specialized pass: the packed upper triangle (R(R+1)/2 doubles)
// and the RHS (R doubles) live in locals the compiler keeps in registers
// for the small ranks the completion problem uses (Propositions 1/2
// bound the useful rank by O(log T)). Each accumulator receives its
// terms in ascending entry order, matching the scalar loop bit for bit.
template <int R>
void GramRhsFixed(const Matrix& f, const int* idx, const double* values,
                  int count, double diag_init, double* panel, double* gram,
                  double* rhs) {
  constexpr int kTri = R * (R + 1) / 2;
  double g[kTri];
  double b[R];
  {
    int u = 0;
    for (int a = 0; a < R; ++a) {
      b[a] = 0.0;
      for (int c = a; c < R; ++c) g[u++] = (c == a) ? diag_init : 0.0;
    }
  }
  for (int e = 0; e < count; ++e) {
    const double* src = f.RowPtr(idx[e]);
    double* p = panel + e * R;
    for (int a = 0; a < R; ++a) p[a] = src[a];
    const double v = values[e];
    int u = 0;
    for (int a = 0; a < R; ++a) {
      const double pa = p[a];
      b[a] += v * pa;
      for (int c = a; c < R; ++c) g[u++] += pa * p[c];
    }
  }
  int u = 0;
  for (int a = 0; a < R; ++a) {
    rhs[a] = b[a];
    for (int c = a; c < R; ++c) {
      gram[a * R + c] = g[u];
      gram[c * R + a] = g[u];
      ++u;
    }
  }
}

// Runtime-rank fallback: same pass, accumulators in the output buffers.
void GramRhsGeneric(const Matrix& f, const int* idx, const double* values,
                    int count, int rank, double diag_init, double* panel,
                    double* gram, double* rhs) {
  for (int a = 0; a < rank; ++a) {
    rhs[a] = 0.0;
    for (int c = a; c < rank; ++c) {
      gram[a * rank + c] = (c == a) ? diag_init : 0.0;
    }
  }
  for (int e = 0; e < count; ++e) {
    const double* src = f.RowPtr(idx[e]);
    double* p = panel + static_cast<size_t>(e) * rank;
    for (int a = 0; a < rank; ++a) p[a] = src[a];
    const double v = values[e];
    for (int a = 0; a < rank; ++a) {
      const double pa = p[a];
      rhs[a] += v * pa;
      for (int c = a; c < rank; ++c) gram[a * rank + c] += pa * p[c];
    }
  }
  for (int a = 0; a < rank; ++a) {
    for (int c = a + 1; c < rank; ++c) {
      gram[c * rank + a] = gram[a * rank + c];
    }
  }
}

// Fused accumulate + LDL^T solve. The packed triangle, RHS, unit-lower
// factor, and pivots all live in fixed-size locals; for the small R the
// compiler unrolls every loop and keeps the hot values in registers.
//
// The normal equations accumulate in two passes over the entries — RHS +
// diagonal first (2R accumulators), then the strict upper triangle
// (R(R-1)/2 accumulators) — so each pass's working set fits the register
// file instead of spilling ~R^2/2 running sums per entry. The factor
// rows are re-read on the second pass (L1-resident for any realistic
// row). Every accumulator still adds its terms in ascending entry
// order, so the result is bit-identical to the one-pass scalar loop.
template <int R>
bool SolveRidgeFixed(const Matrix& f, const int* idx, const double* values,
                     int count, double diag_init, const double* rhs_extra,
                     double* panel, double* x) {
  constexpr int kOff = R * (R - 1) / 2;
  double diag[R];
  double b[R];
  for (int a = 0; a < R; ++a) {
    b[a] = 0.0;
    diag[a] = diag_init;
  }
  for (int e = 0; e < count; ++e) {
    const double* src = f.RowPtr(idx[e]);
    const double v = values[e];
    if (panel != nullptr) {
      double* out = panel + e * R;
      for (int a = 0; a < R; ++a) out[a] = src[a];
    }
    for (int a = 0; a < R; ++a) {
      const double pa = src[a];
      b[a] += v * pa;
      diag[a] += pa * pa;
    }
  }
  double off[kOff > 0 ? kOff : 1];
  for (int u = 0; u < kOff; ++u) off[u] = 0.0;
  for (int e = 0; e < count; ++e) {
    const double* src = f.RowPtr(idx[e]);
    int u = 0;
    for (int a = 0; a < R; ++a) {
      const double pa = src[a];
      for (int c = a + 1; c < R; ++c) off[u++] += pa * src[c];
    }
  }
  if (rhs_extra != nullptr) {
    for (int a = 0; a < R; ++a) b[a] += rhs_extra[a];
  }

  // Assemble the full symmetric matrix and factor M = L D L^T (L unit
  // lower).
  double m[R][R];
  {
    int u = 0;
    for (int a = 0; a < R; ++a) {
      m[a][a] = diag[a];
      for (int c = a + 1; c < R; ++c) {
        m[a][c] = off[u];
        m[c][a] = off[u];
        ++u;
      }
    }
  }
  double d[R], invd[R];
  for (int j = 0; j < R; ++j) {
    double dj = m[j][j];
    for (int k = 0; k < j; ++k) dj -= m[j][k] * m[j][k] * d[k];
    if (dj <= 0.0 || !std::isfinite(dj)) return false;
    d[j] = dj;
    invd[j] = 1.0 / dj;
    for (int i = j + 1; i < R; ++i) {
      double acc = m[i][j];
      for (int k = 0; k < j; ++k) acc -= m[i][k] * m[j][k] * d[k];
      m[i][j] = acc * invd[j];
    }
  }
  // z = L^{-1} b, then scale by D^{-1}, then x = L^{-T} z.
  for (int i = 0; i < R; ++i) {
    double acc = b[i];
    for (int k = 0; k < i; ++k) acc -= m[i][k] * b[k];
    b[i] = acc;
  }
  for (int i = 0; i < R; ++i) b[i] *= invd[i];
  for (int i = R - 1; i >= 0; --i) {
    double acc = b[i];
    for (int k = i + 1; k < R; ++k) acc -= m[k][i] * b[k];
    b[i] = acc;
  }
  for (int a = 0; a < R; ++a) x[a] = b[a];
  return true;
}

template <int R>
double PanelResidualSqFixed(const double* panel, const double* values,
                            int count, const double* x) {
  double acc = 0.0;
  for (int e = 0; e < count; ++e) {
    const double* p = panel + e * R;
    double pred = 0.0;
    for (int a = 0; a < R; ++a) pred += p[a] * x[a];
    const double d = values[e] - pred;
    acc += d * d;
  }
  return acc;
}

}  // namespace

void AccumulateGramRhs(const Matrix& f, const int* idx, const double* values,
                       int count, double diag_init, GramRhsScratch* scratch,
                       double* gram, double* rhs) {
  const int rank = static_cast<int>(f.cols());
  COMFEDSV_CHECK_GT(rank, 0);
  COMFEDSV_CHECK_GE(count, 0);
  scratch->panel.resize(static_cast<size_t>(count) * rank);
  double* panel = scratch->panel.data();
  switch (rank) {
    case 1:
      GramRhsFixed<1>(f, idx, values, count, diag_init, panel, gram, rhs);
      return;
    case 2:
      GramRhsFixed<2>(f, idx, values, count, diag_init, panel, gram, rhs);
      return;
    case 3:
      GramRhsFixed<3>(f, idx, values, count, diag_init, panel, gram, rhs);
      return;
    case 4:
      GramRhsFixed<4>(f, idx, values, count, diag_init, panel, gram, rhs);
      return;
    case 5:
      GramRhsFixed<5>(f, idx, values, count, diag_init, panel, gram, rhs);
      return;
    case 6:
      GramRhsFixed<6>(f, idx, values, count, diag_init, panel, gram, rhs);
      return;
    case 7:
      GramRhsFixed<7>(f, idx, values, count, diag_init, panel, gram, rhs);
      return;
    case 8:
      GramRhsFixed<8>(f, idx, values, count, diag_init, panel, gram, rhs);
      return;
    default:
      GramRhsGeneric(f, idx, values, count, rank, diag_init, panel, gram,
                     rhs);
      return;
  }
}

bool SolveRidgeRow(const Matrix& f, const int* idx, const double* values,
                   int count, double diag_init, const double* rhs_extra,
                   double* panel, double* x) {
  const int rank = static_cast<int>(f.cols());
  COMFEDSV_CHECK_LE(rank, kMaxRidgeRank);
  switch (rank) {
    case 1:
      return SolveRidgeFixed<1>(f, idx, values, count, diag_init, rhs_extra,
                                panel, x);
    case 2:
      return SolveRidgeFixed<2>(f, idx, values, count, diag_init, rhs_extra,
                                panel, x);
    case 3:
      return SolveRidgeFixed<3>(f, idx, values, count, diag_init, rhs_extra,
                                panel, x);
    case 4:
      return SolveRidgeFixed<4>(f, idx, values, count, diag_init, rhs_extra,
                                panel, x);
    case 5:
      return SolveRidgeFixed<5>(f, idx, values, count, diag_init, rhs_extra,
                                panel, x);
    case 6:
      return SolveRidgeFixed<6>(f, idx, values, count, diag_init, rhs_extra,
                                panel, x);
    case 7:
      return SolveRidgeFixed<7>(f, idx, values, count, diag_init, rhs_extra,
                                panel, x);
    case 8:
      return SolveRidgeFixed<8>(f, idx, values, count, diag_init, rhs_extra,
                                panel, x);
    default:
      return false;  // unreachable: guarded by the CHECK above
  }
}

double PanelResidualSq(const double* panel, const double* values, int count,
                       int rank, const double* x) {
  switch (rank) {
    case 1:
      return PanelResidualSqFixed<1>(panel, values, count, x);
    case 2:
      return PanelResidualSqFixed<2>(panel, values, count, x);
    case 3:
      return PanelResidualSqFixed<3>(panel, values, count, x);
    case 4:
      return PanelResidualSqFixed<4>(panel, values, count, x);
    case 5:
      return PanelResidualSqFixed<5>(panel, values, count, x);
    case 6:
      return PanelResidualSqFixed<6>(panel, values, count, x);
    case 7:
      return PanelResidualSqFixed<7>(panel, values, count, x);
    case 8:
      return PanelResidualSqFixed<8>(panel, values, count, x);
    default: {
      double acc = 0.0;
      for (int e = 0; e < count; ++e) {
        const double* p = panel + static_cast<size_t>(e) * rank;
        double pred = 0.0;
        for (int a = 0; a < rank; ++a) pred += p[a] * x[a];
        const double d = values[e] - pred;
        acc += d * d;
      }
      return acc;
    }
  }
}

}  // namespace comfedsv
