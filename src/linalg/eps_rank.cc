#include "linalg/eps_rank.h"

#include <algorithm>
#include <cmath>

#include "linalg/svd.h"

namespace comfedsv {

Result<int> EpsRankUpperBound(const Matrix& a, double eps) {
  if (eps <= 0.0) return Status::InvalidArgument("eps must be positive");
  Result<SvdDecomposition> svd = ThinSvd(a);
  if (!svd.ok()) return svd.status();
  const SvdDecomposition& d = svd.value();
  const size_t kmax = d.singular.size();

  // Incrementally accumulate the rank-k reconstruction and test the
  // max-entry error after each added component.
  Matrix approx(a.rows(), a.cols());
  auto max_error = [&] {
    double m = 0.0;
    for (size_t i = 0; i < a.rows(); ++i) {
      for (size_t j = 0; j < a.cols(); ++j) {
        m = std::max(m, std::fabs(a(i, j) - approx(i, j)));
      }
    }
    return m;
  };
  if (max_error() <= eps) return 0;
  for (size_t c = 0; c < kmax; ++c) {
    const double s = d.singular[c];
    for (size_t i = 0; i < a.rows(); ++i) {
      const double uis = d.u(i, c) * s;
      double* row = approx.RowPtr(i);
      for (size_t j = 0; j < a.cols(); ++j) row[j] += uis * d.v(j, c);
    }
    if (max_error() <= eps) return static_cast<int>(c) + 1;
  }
  return static_cast<int>(kmax);
}

Result<int> EpsRankSpectralBound(const Matrix& a, double eps) {
  if (eps <= 0.0) return Status::InvalidArgument("eps must be positive");
  Result<Vector> sv = SingularValues(a);
  if (!sv.ok()) return sv.status();
  const Vector& s = sv.value();
  for (size_t k = 0; k < s.size(); ++k) {
    if (s[k] <= eps) return static_cast<int>(k);
  }
  return static_cast<int>(s.size());
}

}  // namespace comfedsv
