#include "linalg/svd.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"
#include "linalg/eigen.h"

namespace comfedsv {
namespace {

// Decides whether to form A A^T (rows <= cols) or A^T A (cols < rows).
bool UseRowGram(const Matrix& a) { return a.rows() <= a.cols(); }

}  // namespace

Result<Vector> SingularValues(const Matrix& a) {
  if (a.rows() == 0 || a.cols() == 0) {
    return Status::InvalidArgument("SVD of an empty matrix");
  }
  Matrix gram = UseRowGram(a) ? a.GramRows() : a.Transpose().GramRows();
  Result<EigenDecomposition> eig = SymmetricEigen(gram);
  if (!eig.ok()) return eig.status();
  const Vector& values = eig.value().values;
  Vector out(values.size());
  for (size_t i = 0; i < values.size(); ++i) {
    out[i] = std::sqrt(std::max(0.0, values[i]));
  }
  return out;
}

Result<SvdDecomposition> ThinSvd(const Matrix& a) {
  if (a.rows() == 0 || a.cols() == 0) {
    return Status::InvalidArgument("SVD of an empty matrix");
  }
  const bool row_side = UseRowGram(a);
  Matrix gram = row_side ? a.GramRows() : a.Transpose().GramRows();
  Result<EigenDecomposition> eig = SymmetricEigen(gram);
  if (!eig.ok()) return eig.status();
  const EigenDecomposition& ed = eig.value();
  const size_t k = gram.rows();

  SvdDecomposition out;
  out.singular = Vector(k);
  for (size_t i = 0; i < k; ++i) {
    out.singular[i] = std::sqrt(std::max(0.0, ed.values[i]));
  }

  // The Gram eigenvectors are the singular vectors of the smaller side; the
  // other side follows from A v / sigma (or A^T u / sigma).
  const double eps = 1e-12 * std::max(1.0, out.singular.empty()
                                               ? 0.0
                                               : out.singular[0]);
  if (row_side) {
    out.u = ed.vectors;  // rows x k
    out.v = Matrix(a.cols(), k);
    for (size_t j = 0; j < k; ++j) {
      if (out.singular[j] <= eps) continue;
      Vector uj = out.u.Col(j);
      Vector vj = a.MultiplyTransposeVec(uj);
      vj.Scale(1.0 / out.singular[j]);
      for (size_t i = 0; i < a.cols(); ++i) out.v(i, j) = vj[i];
    }
  } else {
    out.v = ed.vectors;  // cols x k
    out.u = Matrix(a.rows(), k);
    for (size_t j = 0; j < k; ++j) {
      if (out.singular[j] <= eps) continue;
      Vector vj = out.v.Col(j);
      Vector uj = a.MultiplyVec(vj);
      uj.Scale(1.0 / out.singular[j]);
      for (size_t i = 0; i < a.rows(); ++i) out.u(i, j) = uj[i];
    }
  }
  return out;
}

Result<Matrix> TruncatedSvdApproximation(const Matrix& a, int rank) {
  if (rank < 0) return Status::InvalidArgument("rank must be non-negative");
  Result<SvdDecomposition> svd = ThinSvd(a);
  if (!svd.ok()) return svd.status();
  const SvdDecomposition& d = svd.value();
  const size_t k = std::min<size_t>(rank, d.singular.size());
  Matrix out(a.rows(), a.cols());
  for (size_t c = 0; c < k; ++c) {
    const double s = d.singular[c];
    if (s == 0.0) break;
    for (size_t i = 0; i < a.rows(); ++i) {
      const double uis = d.u(i, c) * s;
      if (uis == 0.0) continue;
      double* out_row = out.RowPtr(i);
      for (size_t j = 0; j < a.cols(); ++j) {
        out_row[j] += uis * d.v(j, c);
      }
    }
  }
  return out;
}

}  // namespace comfedsv
